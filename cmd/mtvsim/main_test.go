package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mtvec"
)

const testScale = 5e-5

// opts returns a baseline flag set at test scale.
func opts() simOpts {
	return simOpts{
		programs: "tf",
		contexts: 1,
		latency:  50,
		scalarL:  4,
		xbar:     2,
		policy:   "unfair",
		issue:    1,
		mode:     "solo",
		scale:    testScale,
		jobs:     2,
	}
}

func runWith(t *testing.T, o simOpts) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(context.Background(), &buf, o)
	return buf.String(), err
}

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"solo", "group", "queue"} {
		o := opts()
		o.programs = "tf,sd"
		o.mode = mode
		o.spans = true
		o.states = true
		if mode != "solo" {
			o.contexts = 2
		}
		out, err := runWith(t, o)
		if err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
		if !strings.Contains(out, "cycles:") || !strings.Contains(out, "execution profile:") {
			t.Errorf("mode %s: incomplete output:\n%s", mode, out)
		}
	}
}

func TestRunDualScalar(t *testing.T) {
	o := opts()
	o.programs = "tf,sd"
	o.contexts = 2
	o.dual = true
	o.mode = "queue"
	if _, err := runWith(t, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		programs, policy, mode string
		contexts               int
		want                   string
	}{
		{"zz", "unfair", "solo", 1, "unknown program"},
		{"tf", "nope", "solo", 1, "unknown policy"},
		{"tf", "unfair", "warp", 1, "unknown mode"},
		{"tf,sw", "unfair", "group", 1, "contexts"},
	}
	for _, c := range cases {
		o := opts()
		o.programs, o.policy, o.mode, o.contexts = c.programs, c.policy, c.mode, c.contexts
		_, err := runWith(t, o)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: err = %v, want containing %q", c, err, c.want)
		}
	}
}

// writeTestTrace builds a benchmark workload and exports its trace as
// RVV text, returning the file path.
func writeTestTrace(t *testing.T, short, name string) string {
	t.Helper()
	spec := mtvec.WorkloadByShort(short)
	if spec == nil {
		t.Fatalf("unknown workload %q", short)
	}
	w, err := spec.Build(testScale)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mtvec.ExportRVVTrace(f, w.Trace); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBenchSuiteProgram(t *testing.T) {
	o := opts()
	o.programs = "ax,bs"
	o.contexts = 2
	o.mode = "queue"
	out, err := runWith(t, o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ax") || !strings.Contains(out, "bs") {
		t.Fatalf("bench threads missing from report:\n%s", out)
	}
}

func TestRunImportedTrace(t *testing.T) {
	path := writeTestTrace(t, "ax", "axpy.rvv")
	o := opts()
	o.traces = path
	// programsSet is false, so the -programs default must not sneak in:
	// the only thread is the imported trace, named after its file.
	out, err := runWith(t, o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "axpy") || strings.Contains(out, "tf") {
		t.Fatalf("trace-only run ran the wrong workloads:\n%s", out)
	}
}

func TestRunTraceAlongsidePrograms(t *testing.T) {
	path := writeTestTrace(t, "dp", "dot.rvv")
	o := opts()
	o.traces = path
	o.programsSet = true
	o.contexts = 2
	o.mode = "queue"
	out, err := runWith(t, o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tf") || !strings.Contains(out, "dot") {
		t.Fatalf("mixed program/trace run missing a thread:\n%s", out)
	}
}

func TestRunTraceErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.rvv")
	if err := os.WriteFile(bad, []byte("format: mtvrvv/1\nbogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ traces, want string }{
		{filepath.Join(dir, "missing.mtvt"), "no such file"},
		{bad, "line 2:"},
	} {
		o := opts()
		o.traces = c.traces
		if _, err := runWith(t, o); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("traces %q: err = %v, want containing %q", c.traces, err, c.want)
		}
	}
}

func TestRunByFullName(t *testing.T) {
	o := opts()
	o.programs = "flo52"
	o.latency = 20
	if _, err := runWith(t, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeout(t *testing.T) {
	o := opts()
	o.timeout = time.Nanosecond
	out, err := runWith(t, o)
	// A 1ns deadline cancels during the build phase; either way the
	// error reports where the run stopped and no report is printed.
	if err == nil || !strings.Contains(err.Error(), "stopped") {
		t.Fatalf("timeout err = %v, want progress report", err)
	}
	if out != "" {
		t.Fatalf("cancelled run printed a report:\n%s", out)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, &buf, opts())
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
