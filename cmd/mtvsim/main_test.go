package main

import (
	"strings"
	"testing"
)

const testScale = 5e-5

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"solo", "group", "queue"} {
		contexts := 1
		if mode != "solo" {
			contexts = 2
		}
		err := run("tf,sd", contexts, 50, 4, 2, "unfair", false, 1, mode, testScale, 2, true, true)
		if err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunDualScalar(t *testing.T) {
	if err := run("tf,sd", 2, 50, 4, 2, "unfair", true, 1, "queue", testScale, 2, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		programs, policy, mode string
		contexts               int
		want                   string
	}{
		{"zz", "unfair", "solo", 1, "unknown program"},
		{"tf", "nope", "solo", 1, "unknown policy"},
		{"tf", "unfair", "warp", 1, "unknown mode"},
		{"tf,sw", "unfair", "group", 1, "contexts"},
	}
	for _, c := range cases {
		err := run(c.programs, c.contexts, 50, 4, 2, c.policy, false, 1, c.mode, testScale, 2, false, false)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: err = %v, want containing %q", c, err, c.want)
		}
	}
}

func TestRunByFullName(t *testing.T) {
	if err := run("flo52", 1, 20, 4, 2, "unfair", false, 1, "solo", testScale, 2, false, false); err != nil {
		t.Fatal(err)
	}
}
