package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

const testScale = 5e-5

// opts returns a baseline flag set at test scale.
func opts() simOpts {
	return simOpts{
		programs: "tf",
		contexts: 1,
		latency:  50,
		scalarL:  4,
		xbar:     2,
		policy:   "unfair",
		issue:    1,
		mode:     "solo",
		scale:    testScale,
		jobs:     2,
	}
}

func runWith(t *testing.T, o simOpts) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(context.Background(), &buf, o)
	return buf.String(), err
}

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"solo", "group", "queue"} {
		o := opts()
		o.programs = "tf,sd"
		o.mode = mode
		o.spans = true
		o.states = true
		if mode != "solo" {
			o.contexts = 2
		}
		out, err := runWith(t, o)
		if err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
		if !strings.Contains(out, "cycles:") || !strings.Contains(out, "execution profile:") {
			t.Errorf("mode %s: incomplete output:\n%s", mode, out)
		}
	}
}

func TestRunDualScalar(t *testing.T) {
	o := opts()
	o.programs = "tf,sd"
	o.contexts = 2
	o.dual = true
	o.mode = "queue"
	if _, err := runWith(t, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		programs, policy, mode string
		contexts               int
		want                   string
	}{
		{"zz", "unfair", "solo", 1, "unknown program"},
		{"tf", "nope", "solo", 1, "unknown policy"},
		{"tf", "unfair", "warp", 1, "unknown mode"},
		{"tf,sw", "unfair", "group", 1, "contexts"},
	}
	for _, c := range cases {
		o := opts()
		o.programs, o.policy, o.mode, o.contexts = c.programs, c.policy, c.mode, c.contexts
		_, err := runWith(t, o)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: err = %v, want containing %q", c, err, c.want)
		}
	}
}

func TestRunByFullName(t *testing.T) {
	o := opts()
	o.programs = "flo52"
	o.latency = 20
	if _, err := runWith(t, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeout(t *testing.T) {
	o := opts()
	o.timeout = time.Nanosecond
	out, err := runWith(t, o)
	// A 1ns deadline cancels during the build phase; either way the
	// error reports where the run stopped and no report is printed.
	if err == nil || !strings.Contains(err.Error(), "stopped") {
		t.Fatalf("timeout err = %v, want progress report", err)
	}
	if out != "" {
		t.Fatalf("cancelled run printed a report:\n%s", out)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, &buf, opts())
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
