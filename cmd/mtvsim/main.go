// Command mtvsim runs one simulation of the (multithreaded) vector
// architecture on a set of benchmark programs and prints its metrics.
//
// Modes:
//
//	-mode solo   run the first program alone (reference methodology)
//	-mode group  program 1 on thread 0, the rest restart as companions
//	             until it completes (Section 4.1 methodology)
//	-mode queue  all programs form a job queue drained by the contexts
//	             (Section 7 methodology)
//
// Runs are cancellable: -timeout bounds the simulation with a context
// deadline, and Ctrl-C (SIGINT) stops it gracefully; either way the
// last streamed progress point is reported.
//
// The machine shape is configurable (docs/ARCH.md): -arch selects a
// preset, and the register-file flags (-vlen, -vregs, -regs-per-bank,
// -bank-rports, -bank-wports, -partition-regs) sweep individual
// dimensions; workloads are recompiled for the requested organization.
//
// Examples:
//
//	mtvsim -programs tf,sw -contexts 2 -latency 50 -mode group -timeout 30s
//	mtvsim -programs tf,sw -vlen 256 -bank-rports 1 -contexts 2 -mode queue
//	mtvsim -programs tf,sw -arch cray-ports -contexts 2 -mode queue
//
// Besides the built-in reconstructions (including the vectorizable
// benchmark suite, docs/BENCHMARKS.md), -trace replays trace files:
// binary .mtvt from tracegen, or externally generated RVV-flavoured
// mtvrvv text (.rvv/.txt/.trace). A text trace declares its vector
// register length; when it differs from the machine's and -vlen was
// not given, the machine is resized to match.
//
//	mtvsim -trace theirs.rvv -latency 100
//	mtvsim -trace a.mtvt,b.mtvt -contexts 2 -mode queue
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mtvec"
)

// simOpts carries the command's flags.
type simOpts struct {
	programs string
	traces   string
	contexts int
	latency  int
	scalarL  int
	xbar     int
	policy   string
	dual     bool
	issue    int
	mode     string
	scale    float64
	jobs     int
	spans    bool
	states   bool
	timeout  time.Duration
	storeDir string

	// Machine shape (docs/ARCH.md). archName selects a preset; the
	// register-file flags override individual dimensions of it.
	archName    string
	vlen        int
	vregs       int
	regsPerBank int
	bankRPorts  int
	bankWPorts  int
	partition   bool

	// scalarLSet / xbarSet record explicit flag use, so a preset's own
	// scalar-cache and crossbar values survive unless overridden.
	// programsSet distinguishes the -programs default from an explicit
	// request, so -trace alone replays only the traces. vlenSet lets a
	// text trace's declared register length stand unless -vlen overrides.
	scalarLSet, xbarSet, programsSet, vlenSet bool
}

func main() {
	var o simOpts
	flag.StringVar(&o.programs, "programs", "tf", "comma-separated program tags (sw,hy,sr,tf,a7,su,to,na,ti,sd; bench suite ax,dp,gm,sp,s1,s2,bs)")
	flag.StringVar(&o.traces, "trace", "", "comma-separated trace files to replay (.mtvt binary, or .rvv/.txt/.trace mtvrvv text)")
	flag.IntVar(&o.contexts, "contexts", 1, "hardware contexts (1-8)")
	flag.IntVar(&o.latency, "latency", 50, "main memory latency in cycles")
	flag.IntVar(&o.scalarL, "scalar-latency", 4, "scalar cache latency (0 = main memory latency)")
	flag.IntVar(&o.xbar, "xbar", 2, "vector register file crossbar latency")
	flag.StringVar(&o.policy, "policy", "unfair", "thread policy: "+strings.Join(mtvec.PolicyNames(), ","))
	flag.BoolVar(&o.dual, "dual-scalar", false, "Fujitsu VP2000 dual-scalar mode (2 contexts)")
	flag.IntVar(&o.issue, "issue", 1, "decode slots per cycle")
	flag.StringVar(&o.mode, "mode", "solo", "solo | group | queue")
	flag.Float64Var(&o.scale, "scale", mtvec.DefaultScale, "workload scale relative to Table 3 millions")
	flag.IntVar(&o.jobs, "jobs", runtime.NumCPU(), "max concurrent workload builds")
	flag.BoolVar(&o.spans, "spans", false, "print the per-thread execution profile")
	flag.BoolVar(&o.states, "states", false, "print the 8-state breakdown")
	flag.DurationVar(&o.timeout, "timeout", 0, "abort the simulation after this long (0 = no limit)")
	flag.StringVar(&o.storeDir, "store", "", "persistent result store directory: a run any process already simulated is served from disk")
	flag.StringVar(&o.archName, "arch", "", "machine-shape preset: "+strings.Join(archNames(), " | ")+" (default reference)")
	flag.IntVar(&o.vlen, "vlen", 0, "vector register length in elements (0 = shape default)")
	flag.IntVar(&o.vregs, "vregs", 0, "vector registers per context (0 = shape default)")
	flag.IntVar(&o.regsPerBank, "regs-per-bank", 0, "vector registers per bank (0 = shape default)")
	flag.IntVar(&o.bankRPorts, "bank-rports", 0, "read ports per register bank (0 = shape default)")
	flag.IntVar(&o.bankWPorts, "bank-wports", 0, "write ports per register bank (0 = shape default)")
	flag.BoolVar(&o.partition, "partition-regs", false, "split one physical register file across the contexts (Section 8) instead of replicating it")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "scalar-latency":
			o.scalarLSet = true
		case "xbar":
			o.xbarSet = true
		case "programs":
			o.programsSet = true
		case "vlen":
			o.vlenSet = true
		}
	})

	// Ctrl-C cancels the run via the context; a second Ctrl-C kills the
	// process the usual way once stop() restores default handling.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "mtvsim:", err)
		os.Exit(1)
	}
}

// archNames lists the machine-shape preset names.
func archNames() []string {
	var names []string
	for _, s := range mtvec.ArchPresets() {
		names = append(names, s.Name)
	}
	return names
}

// resolveShape turns the -arch preset and register-file flags into the
// spec and the compiler-visible organization. shaped reports whether any
// register-file dimension departs from the preset's own (requiring a
// WithRegFile on top of the preset).
func (o simOpts) resolveShape() (spec mtvec.ArchSpec, rf mtvec.RegFile, shaped bool, err error) {
	spec = mtvec.ArchConvexC3400()
	if o.archName != "" {
		var ok bool
		if spec, ok = mtvec.ArchByName(o.archName); !ok {
			return spec, rf, false, fmt.Errorf("unknown arch preset %q (have %s)", o.archName, strings.Join(archNames(), ", "))
		}
	}
	rf = spec.RegFile
	if o.vlen > 0 {
		rf.VLen, shaped = o.vlen, true
	}
	if o.vregs > 0 {
		rf.VRegs, shaped = o.vregs, true
	}
	if o.regsPerBank > 0 {
		rf.VRegsPerBank, shaped = o.regsPerBank, true
	}
	if o.bankRPorts > 0 {
		rf.BankReadPorts, shaped = o.bankRPorts, true
	}
	if o.bankWPorts > 0 {
		rf.BankWritePorts, shaped = o.bankWPorts, true
	}
	if o.partition {
		// Without an explicit per-context share the pooled file would
		// equal the replicated default — a silent no-op.
		if o.vregs <= 0 {
			return spec, rf, false, fmt.Errorf("-partition-regs needs -vregs (the per-context share, e.g. -vregs 4 with -contexts 2)")
		}
		shaped = true
	}
	return spec, rf, shaped, nil
}

// rfMachine derives the machine-side organization from the
// compiler-visible one: partitioning pools every context's share into
// one physical file.
func rfMachine(rf mtvec.RegFile, o simOpts) mtvec.RegFile {
	if o.partition {
		rf.VRegs *= o.contexts
		rf.PartitionPerContext = true
	}
	return rf
}

// loadTraces reads each trace file into a replayable workload, picking
// the format by extension (.rvv/.txt/.trace -> mtvrvv text, else binary
// .mtvt). The second result is the vector register length the text
// traces declare (0 when none does — binary traces carry no cap);
// conflicting declarations are an error.
func loadTraces(paths []string) ([]*mtvec.Workload, int64, error) {
	var ws []*mtvec.Workload
	var vlen int64
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		var tr *mtvec.Trace
		switch filepath.Ext(path) {
		case ".rvv", ".txt", ".trace":
			tr, err = mtvec.ImportRVVTrace(f)
		default:
			tr, err = mtvec.DecodeTrace(f)
		}
		f.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		w, err := mtvec.WorkloadFromTrace(name, tr)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", path, err)
		}
		if tr.MaxVL > 0 {
			if vlen > 0 && vlen != tr.MaxVL {
				return nil, 0, fmt.Errorf("%s: declares vlen %d, but an earlier trace declared %d", path, tr.MaxVL, vlen)
			}
			vlen = tr.MaxVL
		}
		ws = append(ws, w)
	}
	return ws, vlen, nil
}

// progressMeter is the run Observer behind partial-progress reporting:
// it remembers the last coarse-stride progress point the simulator
// streamed, so a cancelled run can still say how far it got.
type progressMeter struct {
	mtvec.ProgressFunc // reuse the no-op ThreadSwitch/Span methods
	cycle              int64
	insts              int64
}

func newProgressMeter() *progressMeter {
	m := &progressMeter{}
	m.ProgressFunc = func(now, insts int64) { m.cycle, m.insts = now, insts }
	return m
}

func run(ctx context.Context, w io.Writer, o simOpts) error {
	var tags []string
	for _, tag := range strings.Split(o.programs, ",") {
		if tag = strings.TrimSpace(tag); tag != "" {
			tags = append(tags, tag)
		}
	}
	var traceFiles []string
	for _, p := range strings.Split(o.traces, ",") {
		if p = strings.TrimSpace(p); p != "" {
			traceFiles = append(traceFiles, p)
		}
	}
	// -trace alone replays only the traces; the -programs default kicks
	// in only when it was asked for (or no traces were given).
	if len(traceFiles) > 0 && !o.programsSet {
		tags = nil
	}
	if len(tags) == 0 && len(traceFiles) == 0 {
		return fmt.Errorf("no programs given")
	}
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	traced, traceVL, err := loadTraces(traceFiles)
	if err != nil {
		return err
	}

	// Resolve the machine shape: preset (if any) plus register-file
	// overrides. The workloads are compiled for the same organization,
	// so the machine runs code its compiler would have produced.
	shape, rf, shaped, err := o.resolveShape()
	if err != nil {
		return err
	}
	// A text trace declares the register length it was generated for;
	// resize the machine to match unless -vlen explicitly overrides.
	if traceVL > 0 && !o.vlenSet && int(traceVL) != rf.VLen {
		rf.VLen, shaped = int(traceVL), true
	}

	// Trace reconstruction is the expensive part of a short run; build
	// the programs concurrently, off the main goroutine so Ctrl-C and
	// -timeout stay responsive during the build phase too (the process
	// exits right after a cancelled build, so the detached work is moot).
	type buildResult struct {
		ws  []*mtvec.Workload
		err error
	}
	built := make(chan buildResult, 1)
	go func() {
		var ws []*mtvec.Workload
		var err error
		if len(tags) > 0 {
			ws, err = mtvec.BuildWorkloadsRegFile(tags, o.scale, o.jobs, rf)
		}
		built <- buildResult{ws, err}
	}()
	var ws []*mtvec.Workload
	select {
	case <-ctx.Done():
		return fmt.Errorf("%w (stopped during workload build)", ctx.Err())
	case r := <-built:
		if r.err != nil {
			return r.err
		}
		ws = r.ws
	}
	ws = append(ws, traced...)

	meter := newProgressMeter()
	var opts []mtvec.RunOption
	if o.archName != "" {
		opts = append(opts, mtvec.WithArch(shape))
	}
	opts = append(opts,
		mtvec.WithContexts(o.contexts),
		mtvec.WithMemLatency(o.latency),
	)
	// A preset's own scalar-cache and crossbar values stand unless the
	// flag was given explicitly; without a preset the flag defaults
	// reproduce the reference machine as before.
	if o.archName == "" || o.scalarLSet {
		opts = append(opts, mtvec.WithScalarLatency(o.scalarL))
	}
	if o.archName == "" || o.xbarSet {
		opts = append(opts, mtvec.WithXbar(o.xbar))
	}
	if shaped {
		opts = append(opts, mtvec.WithRegFile(rfMachine(rf, o)))
	}
	opts = append(opts,
		mtvec.WithPolicy(o.policy),
		mtvec.WithDualScalar(o.dual),
		mtvec.WithIssueWidth(o.issue),
		mtvec.WithObserver(meter),
	)
	if o.spans {
		opts = append(opts, mtvec.WithSpans())
	}

	var spec mtvec.RunSpec
	switch o.mode {
	case "solo":
		spec = mtvec.Solo(ws[0], opts...)
	case "group":
		spec = mtvec.Group(ws[0], ws[1:], opts...)
	case "queue":
		spec = mtvec.Queue(ws, opts...)
	default:
		return fmt.Errorf("unknown mode %q", o.mode)
	}

	ses := mtvec.NewSession()
	if o.storeDir != "" {
		st, err := mtvec.OpenStore(o.storeDir)
		if err != nil {
			return err
		}
		ses.SetStore(st)
	}
	rep, src, err := ses.RunTracked(ctx, spec)
	if err != nil {
		if mtvec.IsContextErr(err) {
			return fmt.Errorf("%w (stopped at cycle %d, %d instructions dispatched)",
				err, meter.cycle, meter.insts)
		}
		return err
	}
	if o.storeDir != "" {
		// A store hit skips the simulation entirely, so the progress
		// meter stays silent on served runs — say which happened.
		fmt.Fprintf(w, "result:            %s\n", src)
	}

	fmt.Fprintf(w, "cycles:            %d\n", rep.Cycles)
	fmt.Fprintf(w, "instructions:      %d\n", rep.Insts)
	fmt.Fprintf(w, "lost decode:       %d\n", rep.LostDecode)
	fmt.Fprintf(w, "mem occupation:    %.1f%% (%d requests, %d ports)\n",
		100*rep.MemOccupation(), rep.MemRequests, rep.MemPorts)
	fmt.Fprintf(w, "mem-port idle:     %.1f%% of cycles\n", 100*rep.MemIdleFraction())
	fmt.Fprintf(w, "VOPC:              %.3f\n", rep.VOPC())
	for i, th := range rep.Threads {
		fmt.Fprintf(w, "thread %d:          %s  completions=%d partial=%d dispatched=%d\n",
			i, th.Program, th.Completions, th.PartialInsts, th.Dispatched)
	}
	if o.states {
		fmt.Fprintln(w, "state breakdown:")
		for s := 0; s < 8; s++ {
			fmt.Fprintf(w, "  state %d: %6.2f%%\n", s, 100*float64(rep.Breakdown[s])/float64(rep.Cycles))
		}
	}
	if o.spans {
		fmt.Fprintln(w, "execution profile:")
		for _, sp := range rep.Spans {
			fmt.Fprintf(w, "  ctx%d %-8s [%d, %d)\n", sp.Thread, sp.Program, sp.Start, sp.End)
		}
	}
	return nil
}
