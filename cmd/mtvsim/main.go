// Command mtvsim runs one simulation of the (multithreaded) vector
// architecture on a set of benchmark programs and prints its metrics.
//
// Modes:
//
//	-mode solo   run the first program alone (reference methodology)
//	-mode group  program 1 on thread 0, the rest restart as companions
//	             until it completes (Section 4.1 methodology)
//	-mode queue  all programs form a job queue drained by the contexts
//	             (Section 7 methodology)
//
// Example:
//
//	mtvsim -programs tf,sw -contexts 2 -latency 50 -mode group
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"mtvec"
)

func main() {
	var (
		programs = flag.String("programs", "tf", "comma-separated program tags (sw,hy,sr,tf,a7,su,to,na,ti,sd)")
		contexts = flag.Int("contexts", 1, "hardware contexts (1-8)")
		latency  = flag.Int("latency", 50, "main memory latency in cycles")
		scalarL  = flag.Int("scalar-latency", 4, "scalar cache latency (0 = main memory latency)")
		xbar     = flag.Int("xbar", 2, "vector register file crossbar latency")
		policy   = flag.String("policy", "unfair", "thread policy: "+strings.Join(mtvec.PolicyNames(), ","))
		dual     = flag.Bool("dual-scalar", false, "Fujitsu VP2000 dual-scalar mode (2 contexts)")
		issue    = flag.Int("issue", 1, "decode slots per cycle")
		mode     = flag.String("mode", "solo", "solo | group | queue")
		scale    = flag.Float64("scale", mtvec.DefaultScale, "workload scale relative to Table 3 millions")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "max concurrent workload builds")
		spans    = flag.Bool("spans", false, "print the per-thread execution profile")
		states   = flag.Bool("states", false, "print the 8-state breakdown")
	)
	flag.Parse()

	if err := run(*programs, *contexts, *latency, *scalarL, *xbar, *policy, *dual, *issue, *mode, *scale, *jobs, *spans, *states); err != nil {
		fmt.Fprintln(os.Stderr, "mtvsim:", err)
		os.Exit(1)
	}
}

func run(programs string, contexts, latency, scalarL, xbar int, policy string, dual bool, issue int, mode string, scale float64, jobs int, spans, states bool) error {
	var tags []string
	for _, tag := range strings.Split(programs, ",") {
		if tag = strings.TrimSpace(tag); tag != "" {
			tags = append(tags, tag)
		}
	}
	if len(tags) == 0 {
		return fmt.Errorf("no programs given")
	}
	// Trace reconstruction is the expensive part of a short run; build
	// the programs concurrently.
	ws, err := mtvec.BuildWorkloads(tags, scale, jobs)
	if err != nil {
		return err
	}

	cfg := mtvec.DefaultConfig()
	cfg.Contexts = contexts
	cfg.Mem.Latency = latency
	cfg.Mem.ScalarLatency = scalarL
	cfg.Lat.ReadXbar, cfg.Lat.WriteXbar = xbar, xbar
	cfg.DualScalar = dual
	cfg.IssueWidth = issue
	cfg.RecordSpans = spans
	if p := mtvec.PolicyByName(policy); p != nil {
		cfg.Policy = p
	} else {
		return fmt.Errorf("unknown policy %q", policy)
	}

	var rep *mtvec.Report
	switch mode {
	case "solo":
		rep, err = mtvec.RunSolo(ws[0], cfg)
	case "group":
		rep, err = mtvec.RunGroup(ws[0], ws[1:], cfg)
	case "queue":
		rep, err = mtvec.RunQueue(ws, cfg)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	if err != nil {
		return err
	}

	fmt.Printf("cycles:            %d\n", rep.Cycles)
	fmt.Printf("instructions:      %d\n", rep.Insts)
	fmt.Printf("lost decode:       %d\n", rep.LostDecode)
	fmt.Printf("mem occupation:    %.1f%% (%d requests, %d ports)\n",
		100*rep.MemOccupation(), rep.MemRequests, rep.MemPorts)
	fmt.Printf("mem-port idle:     %.1f%% of cycles\n", 100*rep.MemIdleFraction())
	fmt.Printf("VOPC:              %.3f\n", rep.VOPC())
	for i, th := range rep.Threads {
		fmt.Printf("thread %d:          %s  completions=%d partial=%d dispatched=%d\n",
			i, th.Program, th.Completions, th.PartialInsts, th.Dispatched)
	}
	if states {
		fmt.Println("state breakdown:")
		for s := 0; s < 8; s++ {
			fmt.Printf("  state %d: %6.2f%%\n", s, 100*float64(rep.Breakdown[s])/float64(rep.Cycles))
		}
	}
	if spans {
		fmt.Println("execution profile:")
		for _, sp := range rep.Spans {
			fmt.Printf("  ctx%d %-8s [%d, %d)\n", sp.Thread, sp.Program, sp.Start, sp.End)
		}
	}
	return nil
}
