// Command mtvstat prints the Table 3 dynamic profile of the benchmark
// reconstructions, or of a trace file written by tracegen.
//
//	mtvstat                      # all ten programs
//	mtvstat -program sw          # one program
//	mtvstat -program bench       # the vectorizable benchmark suite
//	mtvstat -trace swm256.mtvt   # a trace file
//	mtvstat -trace theirs.rvv    # imported mtvrvv text (docs/BENCHMARKS.md)
//
// In -trace mode the catalog flags do not apply: giving -program or
// -scale alongside -trace is a usage error, not a silent no-op (a trace
// file's content is fixed; neither flag could affect the analysis).
//
// Exit codes distinguish the failure class: 2 for usage errors (unknown
// program, conflicting flags), 1 for analysis failures (unreadable or
// corrupt trace file).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mtvec"
)

// usageError marks a failure of invocation rather than analysis; main
// maps it to exit code 2 (the flag package's own convention).
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	var (
		program = flag.String("program", "all", "program tag, 'all' (Table 3) or 'bench' (benchmark suite)")
		traceF  = flag.String("trace", "", "trace file to analyze instead (.mtvt binary or mtvrvv text)")
		scale   = flag.Float64("scale", mtvec.DefaultScale, "workload scale")
	)
	flag.Parse()
	// Record which flags were given explicitly: in trace mode the
	// catalog flags are meaningless and must be rejected, not ignored.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if err := run(*program, *traceF, *scale, set["program"], set["scale"]); err != nil {
		fmt.Fprintln(os.Stderr, "mtvstat:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// createFile is a seam for tests.
func createFile(path string) (*os.File, error) { return os.Create(path) }

func header() {
	fmt.Printf("%-9s %-6s %12s %12s %14s %8s %7s %9s\n",
		"program", "suite", "scalar insts", "vector insts", "vector ops", "%vect", "avg VL", "ideal cyc")
}

func printStats(name, suite string, st mtvec.ProgramStats) {
	fmt.Printf("%-9s %-6s %12d %12d %14d %8.1f %7.1f %9d\n",
		name, suite, st.ScalarInsts, st.VectorInsts, st.VectorOps,
		st.PctVectorized(), st.AvgVL(), st.IdealCycles())
}

// run analyzes either the catalog (programSet/scaleSet report explicit
// flag use) or a trace file. Usage problems return a usageError.
func run(program, traceF string, scale float64, programSet, scaleSet bool) error {
	if traceF != "" {
		// Explicit catalog flags contradict trace mode; error instead of
		// silently ignoring them.
		switch {
		case programSet:
			return usagef("-program has no effect with -trace (the trace file fixes the program)")
		case scaleSet:
			return usagef("-scale has no effect with -trace (the trace was generated at a fixed scale)")
		}
		f, err := os.Open(traceF)
		if err != nil {
			return err
		}
		defer f.Close()
		var tr *mtvec.Trace
		switch filepath.Ext(traceF) {
		case ".rvv", ".txt", ".trace":
			tr, err = mtvec.ImportRVVTrace(f)
		default:
			tr, err = mtvec.DecodeTrace(f)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", traceF, err)
		}
		st, n, err := mtvec.TraceStats(tr)
		if err != nil {
			return fmt.Errorf("%s: %w", traceF, err)
		}
		fmt.Printf("trace: %s (%d dynamic instructions, %d blocks)\n",
			tr.Prog.Name, n, len(tr.Prog.Blocks))
		header()
		printStats(tr.Prog.Name, "-", st)
		return nil
	}

	if scale <= 0 {
		return usagef("-scale %g out of range (need > 0)", scale)
	}
	var specs []*mtvec.WorkloadSpec
	switch program {
	case "all":
		specs = mtvec.Workloads()
	case "bench":
		specs = mtvec.BenchWorkloads()
	default:
		s := mtvec.WorkloadByShort(program)
		if s == nil {
			s = mtvec.WorkloadByName(program)
		}
		if s == nil {
			return usagef("unknown program %q", program)
		}
		specs = append(specs, s)
	}
	header()
	for _, spec := range specs {
		w, err := spec.Build(scale)
		if err != nil {
			return err
		}
		printStats(spec.Name, spec.Suite, w.Stats)
	}
	return nil
}
