// Command mtvstat prints the Table 3 dynamic profile of the benchmark
// reconstructions, or of a trace file written by tracegen.
//
//	mtvstat                      # all ten programs
//	mtvstat -program sw          # one program
//	mtvstat -trace swm256.mtvt   # a trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"mtvec"
)

func main() {
	var (
		program = flag.String("program", "all", "program tag or 'all'")
		traceF  = flag.String("trace", "", "trace file to analyze instead")
		scale   = flag.Float64("scale", mtvec.DefaultScale, "workload scale")
	)
	flag.Parse()
	if err := run(*program, *traceF, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "mtvstat:", err)
		os.Exit(1)
	}
}

// createFile is a seam for tests.
func createFile(path string) (*os.File, error) { return os.Create(path) }

func header() {
	fmt.Printf("%-9s %-6s %12s %12s %14s %8s %7s %9s\n",
		"program", "suite", "scalar insts", "vector insts", "vector ops", "%vect", "avg VL", "ideal cyc")
}

func printStats(name, suite string, st mtvec.ProgramStats) {
	fmt.Printf("%-9s %-6s %12d %12d %14d %8.1f %7.1f %9d\n",
		name, suite, st.ScalarInsts, st.VectorInsts, st.VectorOps,
		st.PctVectorized(), st.AvgVL(), st.IdealCycles())
}

func run(program, traceF string, scale float64) error {
	if traceF != "" {
		f, err := os.Open(traceF)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := mtvec.DecodeTrace(f)
		if err != nil {
			return err
		}
		st, n, err := mtvec.TraceStats(tr)
		if err != nil {
			return err
		}
		fmt.Printf("trace: %s (%d dynamic instructions, %d blocks)\n",
			tr.Prog.Name, n, len(tr.Prog.Blocks))
		header()
		printStats(tr.Prog.Name, "-", st)
		return nil
	}

	var specs []*mtvec.WorkloadSpec
	if program == "all" {
		specs = mtvec.Workloads()
	} else {
		s := mtvec.WorkloadByShort(program)
		if s == nil {
			s = mtvec.WorkloadByName(program)
		}
		if s == nil {
			return fmt.Errorf("unknown program %q", program)
		}
		specs = append(specs, s)
	}
	header()
	for _, spec := range specs {
		w, err := spec.Build(scale)
		if err != nil {
			return err
		}
		printStats(spec.Name, spec.Suite, w.Stats)
	}
	return nil
}
