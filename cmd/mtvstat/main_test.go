package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mtvec"
)

func TestStatsAll(t *testing.T) {
	if err := run("all", "", 2e-5, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run("sw", "", 2e-5, true, true); err != nil {
		t.Fatal(err)
	}
	err := run("zz", "", 2e-5, true, true)
	if err == nil {
		t.Fatal("unknown program accepted")
	}
	var ue usageError
	if !errors.As(err, &ue) {
		t.Fatalf("unknown program is not a usage error: %v", err)
	}
}

func TestStatsBenchSuite(t *testing.T) {
	if err := run("bench", "", 2e-5, true, true); err != nil {
		t.Fatal(err)
	}
	if err := run("sp", "", 2e-5, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFromRVVTrace(t *testing.T) {
	w, err := mtvec.WorkloadByShort("ax").Build(5e-5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "axpy.rvv")
	f, err := createFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mtvec.ExportRVVTrace(f, w.Trace); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("all", path, 1, false, false); err != nil {
		t.Fatal(err)
	}
}

func writeTrace(t *testing.T) string {
	t.Helper()
	w, err := mtvec.WorkloadByShort("sd").Build(5e-5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sd.mtvt")
	f, err := createFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mtvec.EncodeTrace(f, w.Trace); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestStatsFromTraceFile(t *testing.T) {
	path := writeTrace(t)
	if err := run("all", path, 1, false, false); err != nil {
		t.Fatal(err)
	}
	err := run("all", filepath.Join(t.TempDir(), "missing.mtvt"), 1, false, false)
	if err == nil {
		t.Fatal("missing trace file accepted")
	}
	// I/O and decode problems are analysis failures, not usage errors.
	var ue usageError
	if errors.As(err, &ue) {
		t.Fatalf("missing file classified as usage error: %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.mtvt")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("all", bad, 1, false, false); err == nil || errors.As(err, &ue) {
		t.Fatalf("corrupt trace: err = %v, want non-usage failure", err)
	}
}

// TestTraceModeRejectsCatalogFlags: flags that cannot affect trace
// analysis must error (as usage), not be silently ignored.
func TestTraceModeRejectsCatalogFlags(t *testing.T) {
	path := writeTrace(t)
	var ue usageError
	if err := run("sw", path, 1, true, false); err == nil || !errors.As(err, &ue) {
		t.Fatalf("-program with -trace: err = %v, want usage error", err)
	}
	if err := run("all", path, 5e-5, false, true); err == nil || !errors.As(err, &ue) {
		t.Fatalf("-scale with -trace: err = %v, want usage error", err)
	}
	// Default (unset) flag values remain fine.
	if err := run("all", path, mtvec.DefaultScale, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestBadScaleIsUsageError(t *testing.T) {
	var ue usageError
	if err := run("all", "", -1, false, true); err == nil || !errors.As(err, &ue) {
		t.Fatalf("negative scale: err = %v, want usage error", err)
	}
}
