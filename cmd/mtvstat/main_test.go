package main

import (
	"path/filepath"
	"testing"

	"mtvec"
)

func TestStatsAll(t *testing.T) {
	if err := run("all", "", 2e-5); err != nil {
		t.Fatal(err)
	}
	if err := run("sw", "", 2e-5); err != nil {
		t.Fatal(err)
	}
	if err := run("zz", "", 2e-5); err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestStatsFromTraceFile(t *testing.T) {
	w, err := mtvec.WorkloadByShort("sd").Build(5e-5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sd.mtvt")
	f, err := createFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mtvec.EncodeTrace(f, w.Trace); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("all", path, 1); err != nil {
		t.Fatal(err)
	}
	if err := run("all", filepath.Join(t.TempDir(), "missing.mtvt"), 1); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
