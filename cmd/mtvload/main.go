// Command mtvload load-tests an mtvserve endpoint (standalone server
// or cluster coordinator): N concurrent clients each submit sweep
// requests over disjoint slices of a latency axis, and the tool
// reports throughput, latency percentiles and the cache-tier mix as
// JSON on stdout.
//
//	mtvload -url http://localhost:8372 -clients 4 -sweeps 8 \
//	        -program tf -points 8
//
// Each client's sweeps use a latency band disjoint from every other
// client's, so a cold-store run measures simulation throughput (every
// point distinct) rather than cache-hit throughput; pass -overlap to
// make all clients request the same band instead, measuring coalescing
// and cache behaviour. The cache mix in the report tells you which
// measurement you actually took.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// sweepRequest mirrors the POST /api/v1/sweep schema (the subset the
// load generator uses); kept local so the tool exercises the server
// purely over the wire, like any external client.
type sweepRequest struct {
	Base      map[string]any `json:"base"`
	Latencies []int          `json:"latencies"`
}

// sweepReply is the subset of the sweep response the tool accounts.
type sweepReply struct {
	Points []struct {
		Cache string `json:"cache"`
		Error string `json:"error,omitempty"`
	} `json:"points"`
	Simulated int `json:"simulated"`
	MemoHits  int `json:"memo_hits"`
	StoreHits int `json:"store_hits"`
	PeerHits  int `json:"peer_hits"`
	Failed    int `json:"failed"`
	Coalesced int `json:"coalesced,omitempty"`
	Retries   int `json:"retries,omitempty"`
	Hedges    int `json:"hedges,omitempty"`
}

// result is one sweep request's measurement.
type result struct {
	elapsed time.Duration
	reply   sweepReply
	err     error
}

// report is the tool's stdout JSON.
type report struct {
	URL        string  `json:"url"`
	Clients    int     `json:"clients"`
	SweepsEach int     `json:"sweeps_per_client"`
	PointsEach int     `json:"points_per_sweep"`
	Overlap    bool    `json:"overlap"`
	WallS      float64 `json:"wall_s"`

	Sweeps        int      `json:"sweeps"`
	SweepErrors   int      `json:"sweep_errors"`
	Points        int      `json:"points"`
	PointsPerS    float64  `json:"points_per_s"`
	P50MS         float64  `json:"p50_ms"`
	P90MS         float64  `json:"p90_ms"`
	P99MS         float64  `json:"p99_ms"`
	MaxMS         float64  `json:"max_ms"`
	Simulated     int      `json:"simulated"`
	MemoHits      int      `json:"memo_hits"`
	StoreHits     int      `json:"store_hits"`
	PeerHits      int      `json:"peer_hits"`
	FailedPoints  int      `json:"failed_points"`
	Coalesced     int      `json:"coalesced"`
	ShardRetries  int      `json:"shard_retries"`
	ShardHedges   int      `json:"shard_hedges"`
	ErrorExamples []string `json:"error_examples,omitempty"`
}

func main() {
	var (
		base    = flag.String("url", "http://localhost:8372", "mtvserve base URL (server or coordinator)")
		clients = flag.Int("clients", 4, "concurrent sweep clients")
		sweeps  = flag.Int("sweeps", 4, "sweep requests per client")
		points  = flag.Int("points", 8, "latency points per sweep")
		program = flag.String("program", "tf", "program tag for every point")
		mode    = flag.String("mode", "solo", "run mode: solo | queue")
		latency = flag.Int("latency0", 10, "first latency of the axis (cycles)")
		overlap = flag.Bool("overlap", false, "all clients request the same band (cache/coalescing test) instead of disjoint bands")
		timeout = flag.Duration("timeout", 10*time.Minute, "per-sweep HTTP timeout")
	)
	flag.Parse()

	programs := []string{*program}
	if *mode == "queue" {
		programs = []string{*program, "sw"}
	}
	httpc := &http.Client{Timeout: *timeout}

	// Client c, sweep s asks for points in a band no other (c, s)
	// repeats — unless -overlap, where every client walks the same
	// bands and the server's coalescing/caching takes the load.
	band := func(c, s int) []int {
		lats := make([]int, *points)
		start := *latency + s*(*points)
		if !*overlap {
			start = *latency + (c*(*sweeps)+s)*(*points)
		}
		for i := range lats {
			lats[i] = start + i
		}
		return lats
	}

	results := make([][]result, *clients)
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = make([]result, *sweeps)
			for s := 0; s < *sweeps; s++ {
				results[c][s] = oneSweep(httpc, *base, sweepRequest{
					Base:      map[string]any{"mode": *mode, "programs": programs},
					Latencies: band(c, s),
				})
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0)

	rep := report{
		URL: *base, Clients: *clients, SweepsEach: *sweeps, PointsEach: *points,
		Overlap: *overlap, WallS: wall.Seconds(),
	}
	var lat []float64
	for _, rs := range results {
		for _, r := range rs {
			rep.Sweeps++
			if r.err != nil {
				rep.SweepErrors++
				if len(rep.ErrorExamples) < 3 {
					rep.ErrorExamples = append(rep.ErrorExamples, r.err.Error())
				}
				continue
			}
			lat = append(lat, float64(r.elapsed.Nanoseconds())/1e6)
			rep.Points += len(r.reply.Points)
			rep.Simulated += r.reply.Simulated
			rep.MemoHits += r.reply.MemoHits
			rep.StoreHits += r.reply.StoreHits
			rep.PeerHits += r.reply.PeerHits
			rep.FailedPoints += r.reply.Failed
			rep.Coalesced += r.reply.Coalesced
			rep.ShardRetries += r.reply.Retries
			rep.ShardHedges += r.reply.Hedges
		}
	}
	if wall > 0 {
		rep.PointsPerS = float64(rep.Points) / wall.Seconds()
	}
	sort.Float64s(lat)
	rep.P50MS = percentile(lat, 50)
	rep.P90MS = percentile(lat, 90)
	rep.P99MS = percentile(lat, 99)
	if n := len(lat); n > 0 {
		rep.MaxMS = lat[n-1]
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatalln("mtvload:", err)
	}
	if rep.SweepErrors > 0 || rep.FailedPoints > 0 {
		os.Exit(1)
	}
}

func oneSweep(httpc *http.Client, base string, rq sweepRequest) result {
	body, err := json.Marshal(rq)
	if err != nil {
		return result{err: err}
	}
	start := time.Now()
	resp, err := httpc.Post(base+"/api/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return result{elapsed: time.Since(start), err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	elapsed := time.Since(start)
	if err != nil {
		return result{elapsed: elapsed, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return result{elapsed: elapsed, err: fmt.Errorf("%s: %s", resp.Status, truncate(data, 200))}
	}
	var reply sweepReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return result{elapsed: elapsed, err: err}
	}
	return result{elapsed: elapsed, reply: reply}
}

// percentile interpolates the p-th percentile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
