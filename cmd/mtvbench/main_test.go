package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	for _, format := range []string{"text", "markdown"} {
		if err := run("table1,table2", 1e-4, format, true); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 1e-4, "text", true); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
	if err := run("table1", 1e-4, "pdf", true); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Errorf("err = %v", err)
	}
}
