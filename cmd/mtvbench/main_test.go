package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mtvec"
)

func TestRunSingleExperiment(t *testing.T) {
	for _, format := range []string{"text", "markdown"} {
		var buf bytes.Buffer
		if err := run(context.Background(), &buf, "table1,table2", 1e-4, format, 2, true, ""); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %s: no output", format)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, "nope", 1e-4, "text", 1, true, ""); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
	if err := run(context.Background(), &buf, "table1", 1e-4, "pdf", 1, true, ""); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Errorf("err = %v", err)
	}
}

// TestWarmStoreByteIdenticalZeroSimulations is the tentpole acceptance
// check in miniature (CI runs the full -all version): a second pass of
// the suite subset over the same store directory must simulate nothing
// and render byte-identical output — the golden fixture doubles as the
// store's round-trip fixture.
func TestWarmStoreByteIdenticalZeroSimulations(t *testing.T) {
	const exps = "table2,fig5,fig9,fig10,ext-banks"
	dir := t.TempDir()
	var cold, warm bytes.Buffer
	if err := run(context.Background(), &cold, exps, 1e-4, "text", 4, true, dir); err != nil {
		t.Fatal(err)
	}
	// A fresh Env per run() call models a fresh process; only the store
	// directory is shared.
	if err := run(context.Background(), &warm, exps, 1e-4, "text", 4, true, dir); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatal("warm-store output differs from cold run")
	}
	if cold.Len() == 0 {
		t.Fatal("no output")
	}

	// Third pass, instrumented: the store must answer every run.
	st, err := mtvec.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	env := mtvec.NewEnv(1e-4)
	env.SetStore(st)
	var ids []mtvec.Experiment
	for _, id := range strings.Split(exps, ",") {
		ids = append(ids, *mtvec.ExperimentByID(id))
	}
	if _, stats, err := mtvec.RunExperiments(env, ids, 4); err != nil {
		t.Fatal(err)
	} else if stats.Simulations != 0 {
		t.Fatalf("warm store still simulated %d points", stats.Simulations)
	}
	if env.StoreHits() == 0 {
		t.Fatal("no store hits recorded")
	}
}

// TestParallelOutputByteIdentical is the acceptance check: the same
// experiment subset rendered with -jobs 1 and -jobs 8 must produce
// byte-identical stdout.
func TestParallelOutputByteIdentical(t *testing.T) {
	const exps = "table3,fig4,fig5,fig9,ext-banks,ext-regfile"
	var serial, parallel bytes.Buffer
	if err := run(context.Background(), &serial, exps, 1e-4, "text", 1, true, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &parallel, exps, 1e-4, "text", 8, true, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatal("-jobs 8 output differs from -jobs 1")
	}
	if serial.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestCatalogListsEveryExperiment(t *testing.T) {
	var buf bytes.Buffer
	writeCatalog(&buf)
	out := buf.String()
	ids := []string{
		"table1", "table2", "table3",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"ext-policies", "ext-ports", "ext-banks", "ext-issue", "ext-compiler",
		"ext-regfile", "ext-benchsuite",
	}
	for _, id := range ids {
		if !strings.Contains(out, "## `"+id+"`") {
			t.Errorf("catalog missing experiment %q", id)
		}
		if !strings.Contains(out, "-exp "+id) {
			t.Errorf("catalog missing regen command for %q", id)
		}
	}
	if !strings.Contains(out, "mtvbench -catalog") {
		t.Error("catalog missing its own regeneration note")
	}
}

// TestBenchDocMatchesCommitted regenerates the docs/BENCHMARKS.md
// generated section and diffs it against the committed document — the
// same freshness gate the CI golden job applies.
func TestBenchDocMatchesCommitted(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "BENCHMARKS.md"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeBenchDoc(&buf); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{benchdocBegin, benchdocEnd} {
		if !strings.Contains(buf.String(), marker) {
			t.Fatalf("generated section missing marker %q", marker)
		}
	}
	if !bytes.Contains(doc, buf.Bytes()) {
		t.Fatal("docs/BENCHMARKS.md generated section is stale (run: go run ./cmd/mtvbench -benchdoc)")
	}
}

// TestGoldenPrefixByteIdentical is the arch-layer golden-equivalence
// gate in test form: every machine in the suite is now built through
// arch.ConvexC3400() (the default spec), and the rendered output must
// still match the committed docs/GOLDEN.txt byte for byte. Running the
// full suite here would double the CI golden job, so the test pins the
// leading experiments and leaves the full-file diff to that job; the
// golden file renders experiments in registry order, so a subset is an
// exact prefix.
func TestGoldenPrefixByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden prefix needs default-scale simulations")
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "docs", "GOLDEN.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, "table1,table2,table3,fig4,fig5", mtvec.DefaultScale, "text", 0, true, ""); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || buf.Len() > len(golden) {
		t.Fatalf("prefix length %d vs golden %d", buf.Len(), len(golden))
	}
	if !bytes.Equal(buf.Bytes(), golden[:buf.Len()]) {
		t.Fatal("default arch spec no longer reproduces docs/GOLDEN.txt (run: go run ./cmd/mtvbench -golden)")
	}
}

func TestRunHonorsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	var buf bytes.Buffer
	err := run(ctx, &buf, "table3", 1e-4, "text", 2, true, "")
	if err == nil || !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("cancelled suite rendered output:\n%s", buf.String())
	}
}
