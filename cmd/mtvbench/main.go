// Command mtvbench regenerates the paper's evaluation: every table and
// figure (Tables 1-3, Figures 4-12) plus the ablation extensions, at a
// configurable workload scale. Independent simulation points fan out
// over a worker pool; results are identical for any -jobs value.
//
//	mtvbench -all                 # run everything on all cores
//	mtvbench -all -jobs 1         # same results, serially
//	mtvbench -all -store DIR      # persist results; a second run simulates nothing
//	mtvbench -exp fig10           # one experiment
//	mtvbench -format markdown     # EXPERIMENTS.md-ready output
//	mtvbench -list                # available experiment ids
//	mtvbench -catalog             # emit the docs/EXPERIMENTS.md catalog
//	mtvbench -golden              # byte-exact suite output (docs/GOLDEN.txt)
//	mtvbench -benchdoc            # generated section of docs/BENCHMARKS.md
//
// mtvbench is also the repository's perf-artifact harness (see
// docs/PERF.md and scripts/bench.sh):
//
//	mtvbench -bench-json -o BENCH_PR.json          # measure, record
//	mtvbench -bench-compare BENCH_baseline.json BENCH_PR.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mtvec"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all' (see -list)")
		all     = flag.Bool("all", false, "run every experiment (same as -exp all)")
		jobs    = flag.Int("jobs", runtime.NumCPU(), "max concurrent simulations (1 = serial)")
		scale   = flag.Float64("scale", mtvec.DefaultScale, "workload scale relative to Table 3 millions")
		format  = flag.String("format", "text", "text | markdown")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		catalog = flag.Bool("catalog", false, "emit the experiment catalog (docs/EXPERIMENTS.md) and exit")
		quiet   = flag.Bool("q", false, "suppress progress on stderr")
		timeout = flag.Duration("timeout", 0, "abort the suite after this long (0 = no limit)")
		stored  = flag.String("store", "", "persistent result store directory: reuse results across runs and processes")

		golden   = flag.Bool("golden", false, "emit the byte-exact full-suite output (docs/GOLDEN.txt) and exit")
		benchdoc = flag.Bool("benchdoc", false, "emit the generated section of docs/BENCHMARKS.md and exit")

		benchJSON       = flag.Bool("bench-json", false, "measure the benchmark suite and emit a BENCH JSON artifact")
		benchOut        = flag.String("o", "", "output file for -bench-json / -bench-compare (default stdout / none)")
		benchRef        = flag.String("bench-ref", "local", "ref label recorded in the -bench-json artifact")
		benchTime       = flag.Duration("benchtime", 300*time.Millisecond, "minimum measuring time per benchmark (-bench-json)")
		benchCount      = flag.Int("bench-count", 3, "samples per benchmark, fastest wins (-bench-json)")
		benchJobs       = flag.Int("bench-jobs", runtime.NumCPU(), "session gate width for the sweep benchmark cases (-bench-json)")
		benchCompare    = flag.Bool("bench-compare", false, "compare two BENCH JSON files: mtvbench -bench-compare OLD NEW")
		maxRegress      = flag.Float64("max-regress", 0.10, "fail -bench-compare when geomean ns/op regresses more than this fraction")
		maxRegressBytes = flag.Float64("max-regress-bytes", 0.10, "fail -bench-compare when geomean B/op regresses more than this fraction")
		cpuprofile      = flag.String("cpuprofile", "", "write a CPU profile of the -bench-json run to this file")
		memprofile      = flag.String("memprofile", "", "write an allocation profile of the -bench-json run to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range mtvec.Experiments() {
			fmt.Printf("%-13s %s\n", e.ID, e.Title)
		}
		return
	}
	if *catalog {
		writeCatalog(os.Stdout)
		return
	}
	if *benchdoc {
		if err := writeBenchDoc(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mtvbench:", err)
			os.Exit(1)
		}
		return
	}
	if *golden {
		// The golden gate depends on every byte: pin all experiments at
		// the default scale in deterministic text form, progress off. A
		// -store passes through — golden output must be identical served
		// from disk or simulated, which is what the CI store job proves.
		if err := run(context.Background(), os.Stdout, "all", mtvec.DefaultScale, "text", *jobs, true, *stored); err != nil {
			fmt.Fprintln(os.Stderr, "mtvbench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchJSON {
		out := io.Writer(os.Stdout)
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mtvbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		var progress io.Writer
		if !*quiet {
			progress = os.Stderr
		}
		stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtvbench:", err)
			os.Exit(1)
		}
		err = runBenchJSON(out, *benchRef, *benchTime, *benchCount, *benchJobs, progress)
		if perr := stopProfiles(); err == nil {
			err = perr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtvbench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchCompare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "mtvbench: -bench-compare needs exactly two files: OLD NEW")
			os.Exit(2)
		}
		if err := runBenchCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *benchOut, *maxRegress, *maxRegressBytes); err != nil {
			fmt.Fprintln(os.Stderr, "mtvbench:", err)
			os.Exit(1)
		}
		return
	}
	expID := *exp
	if *all {
		expID = "all"
	}

	// Ctrl-C cancels in-flight simulations gracefully; -timeout adds a
	// deadline. Either way the partial-progress line still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, os.Stdout, expID, *scale, *format, *jobs, *quiet, *stored); err != nil {
		fmt.Fprintln(os.Stderr, "mtvbench:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges the allocation
// profile (either may be ""); the returned stop writes and closes them.
// Profiling the bench run itself is the documented workflow for hunting
// sweep-path regressions (docs/PERF.md, "Profiling the sweep path").
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func run(ctx context.Context, w io.Writer, expID string, scale float64, format string, jobs int, quiet bool, storeDir string) error {
	var exps []mtvec.Experiment
	if expID == "all" {
		exps = mtvec.Experiments()
	} else {
		for _, id := range strings.Split(expID, ",") {
			e := mtvec.ExperimentByID(strings.TrimSpace(id))
			if e == nil {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			exps = append(exps, *e)
		}
	}
	render := mtvec.RenderResult
	switch format {
	case "text":
	case "markdown":
		render = mtvec.RenderResultMarkdown
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if jobs <= 0 {
		jobs = runtime.NumCPU() // match the engine's normalization in the progress line
	}

	if !quiet {
		fmt.Fprintf(os.Stderr, "running %d experiment(s), jobs=%d ...\n", len(exps), jobs)
	}
	env := mtvec.NewEnv(scale)
	if storeDir != "" {
		st, err := mtvec.OpenStore(storeDir)
		if err != nil {
			return err
		}
		env.SetStore(st)
	}
	results, stats, err := mtvec.RunExperimentsContext(ctx, env, exps, jobs)
	if err != nil {
		if mtvec.IsContextErr(err) {
			return fmt.Errorf("interrupted after %d simulations (%v of simulation time): %w",
				env.Simulations(), env.BusyTime().Round(time.Millisecond), ctx.Err())
		}
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr,
			"%d experiment(s), %d simulations in %v (jobs=%d, busy %v, ~%.1fx effective parallelism)\n",
			len(exps), stats.Simulations, stats.Wall.Round(time.Millisecond),
			stats.Jobs, stats.Busy.Round(time.Millisecond), stats.Parallelism())
		if storeDir != "" {
			fmt.Fprintf(os.Stderr, "store: %d hits, %d simulations persisted to %s\n",
				env.StoreHits(), stats.Simulations, storeDir)
		}
	}
	for _, res := range results {
		if err := render(w, res); err != nil {
			return err
		}
		if format == "text" {
			fmt.Fprintln(w)
		}
	}
	return nil
}

// writeCatalog emits the generated experiment catalog committed as
// docs/EXPERIMENTS.md.
func writeCatalog(w io.Writer) {
	fmt.Fprint(w, `# Experiment catalog

Generated by `+"`go run ./cmd/mtvbench -catalog`"+` — do not edit by hand.

Each experiment reproduces one artifact of Espasa & Valero,
"Multithreaded Vector Architectures" (HPCA-3, 1997), or quantifies one
of its stated extensions. "Paper shape" states what the paper reports,
so a regenerated table can be compared at a glance.

Regenerate everything (all cores, identical results at any job count):

    go run ./cmd/mtvbench -all
    go run ./cmd/mtvbench -all -jobs 1       # serial, byte-identical
    go run ./cmd/mtvbench -all -format markdown

`)
	for _, e := range mtvec.Experiments() {
		fmt.Fprintf(w, "## `%s` — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(w, "**Paper shape:** %s\n\n", e.PaperShape)
		fmt.Fprintf(w, "```\ngo run ./cmd/mtvbench -exp %s\n```\n\n", e.ID)
	}
}
