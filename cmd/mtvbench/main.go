// Command mtvbench regenerates the paper's evaluation: every table and
// figure (Tables 1-3, Figures 4-12) plus the ablation extensions, at a
// configurable workload scale.
//
//	mtvbench                      # run everything, aligned text
//	mtvbench -exp fig10           # one experiment
//	mtvbench -format markdown     # EXPERIMENTS.md-ready output
//	mtvbench -list                # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mtvec"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id or 'all' (see -list)")
		scale  = flag.Float64("scale", mtvec.DefaultScale, "workload scale relative to Table 3 millions")
		format = flag.String("format", "text", "text | markdown")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		quiet  = flag.Bool("q", false, "suppress progress on stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range mtvec.Experiments() {
			fmt.Printf("%-13s %s\n", e.ID, e.Title)
		}
		return
	}
	if err := run(*exp, *scale, *format, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "mtvbench:", err)
		os.Exit(1)
	}
}

func run(expID string, scale float64, format string, quiet bool) error {
	var exps []mtvec.Experiment
	if expID == "all" {
		exps = mtvec.Experiments()
	} else {
		for _, id := range strings.Split(expID, ",") {
			e := mtvec.ExperimentByID(strings.TrimSpace(id))
			if e == nil {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			exps = append(exps, *e)
		}
	}

	env := mtvec.NewEnv(scale)
	for _, e := range exps {
		start := time.Now()
		if !quiet {
			fmt.Fprintf(os.Stderr, "running %s ...", e.ID)
		}
		res, err := e.Run(env)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, " %v\n", time.Since(start).Round(time.Millisecond))
		}
		switch format {
		case "text":
			if err := mtvec.RenderResult(os.Stdout, res); err != nil {
				return err
			}
			fmt.Println()
		case "markdown":
			if err := mtvec.RenderResultMarkdown(os.Stdout, res); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q", format)
		}
	}
	return nil
}
