package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeBenchFile writes a synthetic artifact for compare tests.
func writeBenchFile(t *testing.T, dir, name, ref string, ns map[string]float64) string {
	t.Helper()
	f := BenchFile{Schema: benchSchema, Ref: ref, Scale: 3e-5, Count: 1}
	for n, v := range ns {
		f.Benchmarks = append(f.Benchmarks, BenchResult{Name: n, Iters: 1, NsPerOp: v})
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchCompareGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBenchFile(t, dir, "old.json", "old", map[string]float64{"a": 100, "b": 200})
	fast := writeBenchFile(t, dir, "fast.json", "fast", map[string]float64{"a": 50, "b": 100})
	slow := writeBenchFile(t, dir, "slow.json", "slow", map[string]float64{"a": 150, "b": 300})

	cmp, err := compareBench(oldP, fast, 0.10, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.GeomeanRatio-0.5) > 1e-9 {
		t.Errorf("geomean ratio = %v, want 0.5", cmp.GeomeanRatio)
	}
	var buf bytes.Buffer
	if err := runBenchCompare(&buf, oldP, fast, "", 0.10, 0.10); err != nil {
		t.Errorf("2x speedup failed the gate: %v", err)
	}
	if !strings.Contains(buf.String(), "2.00x") {
		t.Errorf("missing speedup column in %q", buf.String())
	}

	// A 50% regression must fail a 10% gate and still write -o.
	out := filepath.Join(dir, "cmp.json")
	buf.Reset()
	err = runBenchCompare(&buf, oldP, slow, out, 0.10, 0.10)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("regression passed the gate: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("comparison JSON not written: %v", err)
	}
	var rec CompareFile
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if math.Abs(rec.GeomeanRatio-1.5) > 1e-9 || rec.BaselineRef != "old" || rec.NewRef != "slow" {
		t.Errorf("recorded comparison = %+v", rec)
	}
}

// TestBenchCompareIntersection: mismatched benchmark sets and
// unusable ns/op entries must be excluded from the geomean and listed
// by name, not skew (or NaN-poison) the ratio.
func TestBenchCompareIntersection(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBenchFile(t, dir, "old.json", "old", map[string]float64{
		"a": 100, "b": 200, "gone": 70, "zero": 0,
	})
	newP := writeBenchFile(t, dir, "new.json", "new", map[string]float64{
		"a": 100, "b": 200, "added": 30, "zero": 50, "neg": -5,
	})
	cmp, err := compareBench(oldP, newP, 0.10, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Only a and b are comparable; their ratio is exactly 1.
	if len(cmp.Benchmarks) != 2 || math.Abs(cmp.GeomeanRatio-1.0) > 1e-9 {
		t.Fatalf("compared %d benchmarks, geomean %v; want 2 at 1.0", len(cmp.Benchmarks), cmp.GeomeanRatio)
	}
	if math.IsNaN(cmp.GeomeanRatio) {
		t.Fatal("geomean poisoned by unusable entry")
	}
	wantDropped := []string{"added", "gone", "zero", "neg"}
	if len(cmp.Dropped) != len(wantDropped) {
		t.Fatalf("dropped %v, want %d entries", cmp.Dropped, len(wantDropped))
	}
	joined := strings.Join(cmp.Dropped, "\n")
	for _, name := range wantDropped {
		if !strings.Contains(joined, name) {
			t.Errorf("dropped list missing %q: %v", name, cmp.Dropped)
		}
	}
	// The rendered table reports them too, and the gate still applies.
	var buf bytes.Buffer
	if err := runBenchCompare(&buf, oldP, newP, "", 0.10, 0.10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped: gone (missing from") {
		t.Errorf("dropped names not rendered:\n%s", buf.String())
	}

	// Unusable values in every common benchmark must fail loudly, not
	// divide by zero or pass vacuously. (NaN/Inf cannot survive a JSON
	// artifact, but usableNs guards them anyway for robustness.)
	allBad := writeBenchFile(t, dir, "bad.json", "bad", map[string]float64{
		"a": 0, "b": -5,
	})
	if _, err := compareBench(oldP, allBad, 0.10, 0.10); err == nil || !strings.Contains(err.Error(), "no common") {
		t.Errorf("all-unusable artifact: err = %v", err)
	}
}

// writeBenchResults writes an artifact with explicit BenchResults, for
// tests that need B/op alongside ns/op.
func writeBenchResults(t *testing.T, dir, name, ref string, results []BenchResult) string {
	t.Helper()
	f := BenchFile{Schema: benchSchema, Ref: ref, Scale: 3e-5, Count: 1, Benchmarks: results}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchCompareBytesGate: the B/op geomean gates independently of
// ns/op, over only the benchmarks where both artifacts recorded
// positive byte counts.
func TestBenchCompareBytesGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBenchResults(t, dir, "old.json", "old", []BenchResult{
		{Name: "a", Iters: 1, NsPerOp: 100, BytesPerOp: 1000},
		{Name: "b", Iters: 1, NsPerOp: 100, BytesPerOp: 0}, // legit zero: not in bytes geomean
	})
	// Faster but allocating 4x: passes the ns gate, fails the bytes gate.
	hungry := writeBenchResults(t, dir, "hungry.json", "hungry", []BenchResult{
		{Name: "a", Iters: 1, NsPerOp: 50, BytesPerOp: 4000},
		{Name: "b", Iters: 1, NsPerOp: 50, BytesPerOp: 0},
	})
	cmp, err := compareBench(oldP, hungry, 0.10, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.GeomeanBytesRatio-4.0) > 1e-9 {
		t.Errorf("bytes geomean = %v, want 4.0 over the single positive pair", cmp.GeomeanBytesRatio)
	}
	var buf bytes.Buffer
	err = runBenchCompare(&buf, oldP, hungry, "", 0.10, 0.10)
	if err == nil || !strings.Contains(err.Error(), "allocation regression") {
		t.Errorf("4x B/op passed the bytes gate: %v", err)
	}
	if !strings.Contains(buf.String(), "geomean B/op ratio") {
		t.Errorf("bytes geomean not rendered:\n%s", buf.String())
	}

	// No positive pairs at all: the bytes gate passes vacuously (ns/op
	// still judges) and the recorded ratio stays zero.
	lean := writeBenchResults(t, dir, "lean.json", "lean", []BenchResult{
		{Name: "b", Iters: 1, NsPerOp: 100, BytesPerOp: 0},
	})
	buf.Reset()
	if err := runBenchCompare(&buf, oldP, lean, "", 0.10, 0.10); err != nil {
		t.Errorf("bytes-free comparison failed: %v", err)
	}

	// A raised bytes allowance admits what the default rejects.
	if err := runBenchCompare(io.Discard, oldP, hungry, "", 0.10, 5.0); err != nil {
		t.Errorf("4x B/op failed a 5.0 bytes gate: %v", err)
	}
}

func TestBenchCompareErrors(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBenchFile(t, dir, "old.json", "old", map[string]float64{"a": 100})
	if _, err := compareBench(oldP, filepath.Join(dir, "missing.json"), 0.1, 0.1); err == nil {
		t.Error("missing file accepted")
	}
	other := writeBenchFile(t, dir, "other.json", "x", map[string]float64{"z": 1})
	if _, err := compareBench(oldP, other, 0.1, 0.1); err == nil || !strings.Contains(err.Error(), "no common") {
		t.Errorf("disjoint benchmark sets: err = %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":99}`), 0o644)
	if _, err := loadBenchFile(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema accepted: %v", err)
	}
}

// TestBenchJSONSmoke measures a tiny sliver of the suite and checks the
// artifact is well-formed and self-describing (scale recorded).
func TestBenchJSONSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall time")
	}
	cases, err := benchCases(1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 20 {
		t.Fatalf("only %d bench cases", len(cases))
	}
	// Measure just one cheap case end to end.
	res, err := measure(cases[0], 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters < 1 || res.NsPerOp <= 0 {
		t.Errorf("bad measurement %+v", res)
	}

	var buf bytes.Buffer
	// Full runBenchJSON is exercised in CI via scripts/bench.sh; here we
	// only validate the encoding shape with a stubbed file.
	f := BenchFile{Schema: benchSchema, Ref: "t", Scale: 1e-5, Benchmarks: []BenchResult{res}}
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(f); err != nil {
		t.Fatal(err)
	}
	var back BenchFile
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Scale != 1e-5 || len(back.Benchmarks) != 1 || back.Benchmarks[0].Name != cases[0].name {
		t.Errorf("round trip = %+v", back)
	}
}
