package main

// Benchmark-artifact mode: mtvbench doubles as a reproducible perf
// harness. -bench-json measures every experiment regeneration plus the
// raw engine throughput and emits a machine-readable BENCH_<ref>.json;
// -bench-compare diffs two such files and enforces a geomean ns/op
// regression gate. scripts/bench.sh and the CI bench job drive both.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"mtvec"
)

// benchSchema versions the BENCH_*.json format.
const benchSchema = 1

// BenchFile is the on-disk benchmark artifact.
type BenchFile struct {
	Schema      int     `json:"schema"`
	Ref         string  `json:"ref"`
	GoVersion   string  `json:"go"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	Scale       float64 `json:"scale"`
	BenchtimeMS int64   `json:"benchtime_ms"`
	Count       int     `json:"count"`
	// Jobs is the gate width the sweep cases ran under (-bench-jobs).
	// Compare artifacts recorded at the same width: parallel lanes make
	// jobs part of the measurement, not just the machine environment.
	Jobs int `json:"jobs,omitempty"`

	Benchmarks []BenchResult `json:"benchmarks"`
}

// BenchResult is one benchmark's best sample.
type BenchResult struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// McyclesPerS reports simulated-cycle throughput for the engine
	// benchmarks (0 elsewhere).
	McyclesPerS float64 `json:"mcycles_per_s,omitempty"`
}

// benchCase is one measurable unit: fn runs a single iteration and
// returns the simulated cycles it covered (0 if not an engine case).
type benchCase struct {
	name string
	fn   func() (int64, error)
}

// benchCases builds the suite: one case per registered experiment (fresh
// environment per iteration, mirroring the repository's testing.B suite)
// plus the raw engine throughput cases. jobs is the session gate width
// the sweep cases run under: 1 measures work per core, >1 additionally
// measures the parallel lane engine.
func benchCases(scale float64, jobs int) ([]benchCase, error) {
	var cases []benchCase
	for _, e := range mtvec.Experiments() {
		exp := e
		cases = append(cases, benchCase{
			name: exp.ID,
			fn: func() (int64, error) {
				env := mtvec.NewEnv(scale)
				res, err := exp.Run(env)
				if err != nil {
					return 0, err
				}
				if len(res.Tables) == 0 {
					return 0, fmt.Errorf("%s: empty result", exp.ID)
				}
				return 0, nil
			},
		})
	}

	var suite []*mtvec.Workload
	for _, spec := range mtvec.QueueOrder() {
		w, err := spec.Build(scale)
		if err != nil {
			return nil, err
		}
		suite = append(suite, w)
	}
	engine := func(contexts int) func() (int64, error) {
		return func() (int64, error) {
			cfg := mtvec.DefaultConfig()
			cfg.Contexts = contexts
			rep, err := mtvec.RunQueue(suite, cfg)
			if err != nil {
				return 0, err
			}
			return rep.Cycles, nil
		}
	}
	cases = append(cases,
		benchCase{name: "engine/reference", fn: engine(1)},
		benchCase{name: "engine/4threads", fn: engine(4)},
	)

	// The vectorizable benchmark suite (docs/BENCHMARKS.md): all seven
	// kernels drained through a 4-context job queue, and the mtvrvv text
	// frontend importing one exported kernel per iteration.
	var bench []*mtvec.Workload
	for _, spec := range mtvec.BenchWorkloads() {
		w, err := spec.Build(scale)
		if err != nil {
			return nil, err
		}
		bench = append(bench, w)
	}
	cases = append(cases, benchCase{
		name: "benchsuite/queue4",
		fn: func() (int64, error) {
			cfg := mtvec.DefaultConfig()
			cfg.Contexts = 4
			rep, err := mtvec.RunQueue(bench, cfg)
			if err != nil {
				return 0, err
			}
			return rep.Cycles, nil
		},
	})
	var rvv bytes.Buffer
	if err := mtvec.ExportRVVTrace(&rvv, bench[0].Trace); err != nil {
		return nil, err
	}
	rvvText := rvv.Bytes()
	cases = append(cases, benchCase{
		name: "trace/import-rvv",
		fn: func() (int64, error) {
			if _, err := mtvec.ImportRVVTrace(bytes.NewReader(rvvText)); err != nil {
				return 0, err
			}
			return 0, nil
		},
	})

	// Per-run API overhead, mirroring the testing.B suite: the direct
	// machine path, a memo-less Session, and the memoized cache hit.
	solo, err := mtvec.WorkloadByShort("tf").Build(scale)
	if err != nil {
		return nil, err
	}
	cases = append(cases, benchCase{
		name: "machine/direct",
		fn: func() (int64, error) {
			m, err := mtvec.NewMachine(mtvec.DefaultConfig())
			if err != nil {
				return 0, err
			}
			if err := m.SetThreadStream(0, solo.Spec.Short, solo.Stream()); err != nil {
				return 0, err
			}
			rep, err := m.Run(mtvec.Stop{})
			if err != nil {
				return 0, err
			}
			return rep.Cycles, nil
		},
	})
	plain := mtvec.NewSession(mtvec.WithoutMemo())
	memo := mtvec.NewSession()
	ctx := context.Background()
	sessionCase := func(name string, ses *mtvec.Session, simulates bool) benchCase {
		return benchCase{
			name: name,
			fn: func() (int64, error) {
				rep, err := ses.Run(ctx, mtvec.Solo(solo))
				if err != nil {
					return 0, err
				}
				if !simulates {
					return 0, nil // cache hit: no cycles simulated
				}
				return rep.Cycles, nil
			},
		}
	}
	cases = append(cases,
		sessionCase("session/run", plain, true),
		sessionCase("session/memoized", memo, false),
	)

	// Lockstep batch engine vs per-point dispatch: the same memo-missed
	// eight-point latency sweep over one compiled kernel, under the
	// -bench-jobs gate width either way. At jobs=1 the comparison is
	// work per core; at jobs>1 the batch side also exercises parallel
	// lanes and adaptive shaping. sweep/perpoint ns/op over
	// sweep/batch8 ns/op is the recorded batch speedup (docs/PERF.md,
	// "Lockstep batching" and "Parallel lanes").
	sweepKernel, err := compileSweepKernel()
	if err != nil {
		return nil, err
	}
	sweepSched := []mtvec.Invocation{
		{Unit: 1, N: 1 << 14},
		{Unit: 0, N: 1 << 14},
		{Unit: 1, N: 1 << 14},
	}
	runSweep := func(specs []mtvec.RunSpec, batching bool) (int64, error) {
		opts := []mtvec.SessionOption{mtvec.WithJobs(jobs)}
		if !batching {
			opts = append(opts, mtvec.WithoutBatching())
		}
		ses := mtvec.NewSession(opts...)
		reps, err := ses.RunAll(ctx, specs...)
		if err != nil {
			return 0, err
		}
		var cycles int64
		for _, rep := range reps {
			cycles += rep.Cycles
		}
		return cycles, nil
	}
	sweep := func(batching bool) func() (int64, error) {
		return func() (int64, error) {
			specs := make([]mtvec.RunSpec, 8)
			for k := range specs {
				specs[k] = mtvec.CompiledRun(sweepKernel, sweepSched, mtvec.WithMemLatency(30+10*k))
			}
			return runSweep(specs, batching)
		}
	}
	cases = append(cases,
		benchCase{name: "sweep/batch8", fn: sweep(true)},
		benchCase{name: "sweep/perpoint", fn: sweep(false)},
	)

	// Long-vector sweep: the gemm and spmv bench-suite supplies are
	// simulation-dominated (high cycles per instruction), the regime the
	// adaptive model shapes narrow-but-parallel — the opposite corner
	// from the scalar-heavy daxpy-setup sweep above. Two provenance
	// groups of four latency points each.
	var gemmW, spmvW *mtvec.Workload
	for i, spec := range mtvec.BenchWorkloads() {
		switch spec.Short {
		case "gm":
			gemmW = bench[i]
		case "sp":
			spmvW = bench[i]
		}
	}
	if gemmW == nil || spmvW == nil {
		return nil, fmt.Errorf("bench suite is missing the gemm or spmv workload")
	}
	longvec := func(batching bool) func() (int64, error) {
		return func() (int64, error) {
			var specs []mtvec.RunSpec
			for _, w := range []*mtvec.Workload{gemmW, spmvW} {
				for k := 0; k < 4; k++ {
					specs = append(specs, mtvec.Solo(w, mtvec.WithMemLatency(30+30*k)))
				}
			}
			return runSweep(specs, batching)
		}
	}
	cases = append(cases,
		benchCase{name: "sweep/longvec-batch", fn: longvec(true)},
		benchCase{name: "sweep/longvec-perpoint", fn: longvec(false)},
	)
	return cases, nil
}

// compileSweepKernel builds the daxpy-plus-setup kernel the batch-sweep
// cases run, mirroring the repository's BenchmarkBatchSweep.
func compileSweepKernel() (*mtvec.Compiled, error) {
	x := &mtvec.Array{Name: "x", Base: 0x10000, Stride: 8}
	y := &mtvec.Array{Name: "y", Base: 0x20000, Stride: 8}
	kern := &mtvec.Kernel{Name: "daxpy-setup"}
	kern.Units = append(kern.Units,
		&mtvec.VectorLoop{
			Name: "daxpy",
			Body: []mtvec.Stmt{{
				Dst: y,
				E: &mtvec.Bin{Op: mtvec.Add,
					L: &mtvec.Bin{Op: mtvec.Mul, L: &mtvec.ScalarArg{Name: "a"}, R: &mtvec.Ref{Arr: x}},
					R: &mtvec.Ref{Arr: y}},
			}},
		},
		&mtvec.ScalarLoop{Name: "setup", Loads: 2, Stores: 1, IntOps: 3, FPOps: 1},
	)
	return mtvec.CompileKernel(kern)
}

// measure runs one case for at least benchtime and returns its stats.
func measure(c benchCase, benchtime time.Duration) (BenchResult, error) {
	if _, err := c.fn(); err != nil { // warm-up + error check
		return BenchResult{}, fmt.Errorf("%s: %w", c.name, err)
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var iters, cycles int64
	start := time.Now()
	for iters == 0 || time.Since(start) < benchtime {
		cy, err := c.fn()
		if err != nil {
			return BenchResult{}, fmt.Errorf("%s: %w", c.name, err)
		}
		cycles += cy
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	res := BenchResult{
		Name:        c.name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / iters,
		AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / iters,
	}
	if cycles > 0 {
		res.McyclesPerS = float64(cycles) / elapsed.Seconds() / 1e6
	}
	return res, nil
}

// runBenchJSON measures the suite and writes the artifact to w.
func runBenchJSON(w io.Writer, ref string, benchtime time.Duration, count, jobs int, progress io.Writer) error {
	scale, err := mtvec.BenchScale()
	if err != nil {
		return err
	}
	if jobs < 1 {
		jobs = runtime.NumCPU()
	}
	cases, err := benchCases(scale, jobs)
	if err != nil {
		return err
	}
	if count < 1 {
		count = 1
	}
	file := BenchFile{
		Schema:      benchSchema,
		Ref:         ref,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Scale:       scale,
		BenchtimeMS: benchtime.Milliseconds(),
		Count:       count,
		Jobs:        jobs,
	}
	for _, c := range cases {
		best := BenchResult{}
		for s := 0; s < count; s++ {
			r, err := measure(c, benchtime)
			if err != nil {
				return err
			}
			if best.Iters == 0 || r.NsPerOp < best.NsPerOp {
				best = r
			}
		}
		if progress != nil {
			fmt.Fprintf(progress, "%-18s %12.0f ns/op  %8d allocs/op\n", c.name, best.NsPerOp, best.AllocsPerOp)
		}
		file.Benchmarks = append(file.Benchmarks, best)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// CompareFile is the machine-readable output of -bench-compare: the
// recorded speedup (or regression) of new over old.
type CompareFile struct {
	Schema       int     `json:"schema"`
	BaselineRef  string  `json:"baseline_ref"`
	NewRef       string  `json:"new_ref"`
	GeomeanRatio float64 `json:"geomean_ratio"` // new/old ns per op; <1 is faster
	MaxRegress   float64 `json:"max_regress"`

	// The allocation gate, alongside the time gate: geomean new/old
	// B/op over the benchmarks where both artifacts recorded a positive
	// byte count (a legitimate zero cannot enter a geometric mean).
	// Zero when no benchmark qualified — the bytes gate then passes
	// vacuously rather than failing a comparison ns/op already covers.
	GeomeanBytesRatio float64 `json:"geomean_bytes_ratio,omitempty"`
	MaxRegressBytes   float64 `json:"max_regress_bytes"`

	// Dropped lists benchmarks excluded from the geomean, with the
	// reason: present in only one artifact, or a non-positive/non-finite
	// ns/op that would poison the ratio. The gate compares the
	// intersection only, but never silently.
	Dropped []string `json:"dropped,omitempty"`

	Benchmarks []CompareResult `json:"benchmarks"`
}

// CompareResult is one benchmark's old-vs-new comparison.
type CompareResult struct {
	Name    string  `json:"name"`
	OldNs   float64 `json:"old_ns_per_op"`
	NewNs   float64 `json:"new_ns_per_op"`
	Ratio   float64 `json:"ratio"`   // new/old
	Speedup float64 `json:"speedup"` // old/new
	// Bytes per op on each side; BytesRatio is 0 (not in the bytes
	// geomean) unless both sides are positive.
	OldBytes   int64   `json:"old_bytes_per_op,omitempty"`
	NewBytes   int64   `json:"new_bytes_per_op,omitempty"`
	BytesRatio float64 `json:"bytes_ratio,omitempty"`
}

func loadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return nil, fmt.Errorf("%s: unsupported bench schema %d", path, f.Schema)
	}
	return &f, nil
}

// usableNs reports whether an ns/op sample can participate in a
// geometric mean: positive and finite. A zero, negative, NaN or Inf
// entry (a hand-edited or truncated artifact) would otherwise skew the
// ratio — log(NaN) poisons the whole geomean silently.
func usableNs(ns float64) bool {
	return ns > 0 && !math.IsInf(ns, 0) && !math.IsNaN(ns)
}

// compareBench diffs two bench files over the intersection of their
// benchmarks and returns the comparison plus an error when the geomean
// ns/op regression exceeds maxRegress. Benchmarks present in only one
// artifact, or carrying unusable ns/op values, are excluded from the
// geomean and reported by name in Dropped — a mismatched set narrows
// the comparison, visibly, instead of skewing or crashing it.
func compareBench(oldPath, newPath string, maxRegress, maxRegressBytes float64) (*CompareFile, error) {
	oldF, err := loadBenchFile(oldPath)
	if err != nil {
		return nil, err
	}
	newF, err := loadBenchFile(newPath)
	if err != nil {
		return nil, err
	}
	oldBy := make(map[string]BenchResult, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}
	cmp := &CompareFile{
		Schema:          benchSchema,
		BaselineRef:     oldF.Ref,
		NewRef:          newF.Ref,
		MaxRegress:      maxRegress,
		MaxRegressBytes: maxRegressBytes,
	}
	newNames := make(map[string]bool, len(newF.Benchmarks))
	var logSum, bytesLogSum float64
	var bytesN int
	for _, nb := range newF.Benchmarks {
		newNames[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		switch {
		case !ok:
			cmp.Dropped = append(cmp.Dropped, nb.Name+" (missing from "+oldPath+")")
			continue
		case !usableNs(ob.NsPerOp) || !usableNs(nb.NsPerOp):
			cmp.Dropped = append(cmp.Dropped, fmt.Sprintf("%s (unusable ns/op: old %v, new %v)", nb.Name, ob.NsPerOp, nb.NsPerOp))
			continue
		}
		ratio := nb.NsPerOp / ob.NsPerOp
		res := CompareResult{
			Name: nb.Name, OldNs: ob.NsPerOp, NewNs: nb.NsPerOp,
			Ratio: ratio, Speedup: 1 / ratio,
			OldBytes: ob.BytesPerOp, NewBytes: nb.BytesPerOp,
		}
		if ob.BytesPerOp > 0 && nb.BytesPerOp > 0 {
			res.BytesRatio = float64(nb.BytesPerOp) / float64(ob.BytesPerOp)
			bytesLogSum += math.Log(res.BytesRatio)
			bytesN++
		}
		cmp.Benchmarks = append(cmp.Benchmarks, res)
		logSum += math.Log(ratio)
	}
	for _, ob := range oldF.Benchmarks {
		if !newNames[ob.Name] {
			cmp.Dropped = append(cmp.Dropped, ob.Name+" (missing from "+newPath+")")
		}
	}
	sort.Strings(cmp.Dropped)
	if len(cmp.Benchmarks) == 0 {
		return nil, fmt.Errorf("no common comparable benchmarks between %s and %s (%d dropped)", oldPath, newPath, len(cmp.Dropped))
	}
	sort.Slice(cmp.Benchmarks, func(i, j int) bool { return cmp.Benchmarks[i].Name < cmp.Benchmarks[j].Name })
	cmp.GeomeanRatio = math.Exp(logSum / float64(len(cmp.Benchmarks)))
	if bytesN > 0 {
		cmp.GeomeanBytesRatio = math.Exp(bytesLogSum / float64(bytesN))
	}
	return cmp, nil
}

// runBenchCompare prints the comparison table and applies the ns/op and
// B/op gates.
func runBenchCompare(w io.Writer, oldPath, newPath, outPath string, maxRegress, maxRegressBytes float64) error {
	cmp, err := compareBench(oldPath, newPath, maxRegress, maxRegressBytes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s %14s %14s %9s %12s %12s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "old B/op", "new B/op")
	for _, b := range cmp.Benchmarks {
		fmt.Fprintf(w, "%-22s %14.0f %14.0f %8.2fx %12d %12d\n", b.Name, b.OldNs, b.NewNs, b.Speedup, b.OldBytes, b.NewBytes)
	}
	for _, d := range cmp.Dropped {
		fmt.Fprintf(w, "dropped: %s\n", d)
	}
	fmt.Fprintf(w, "\ngeomean over %d benchmark(s): %.3fx speedup (ratio %.3f, gate: ratio <= %.3f)\n",
		len(cmp.Benchmarks), 1/cmp.GeomeanRatio, cmp.GeomeanRatio, 1+maxRegress)
	if cmp.GeomeanBytesRatio > 0 {
		fmt.Fprintf(w, "geomean B/op ratio: %.3f (gate: ratio <= %.3f)\n", cmp.GeomeanBytesRatio, 1+maxRegressBytes)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if cmp.GeomeanRatio > 1+maxRegress {
		return fmt.Errorf("benchmark regression: geomean ns/op ratio %.3f exceeds gate %.3f (baseline %s)",
			cmp.GeomeanRatio, 1+maxRegress, oldPath)
	}
	if cmp.GeomeanBytesRatio > 1+maxRegressBytes {
		return fmt.Errorf("allocation regression: geomean B/op ratio %.3f exceeds gate %.3f (baseline %s)",
			cmp.GeomeanBytesRatio, 1+maxRegressBytes, oldPath)
	}
	return nil
}
