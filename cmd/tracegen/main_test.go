package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndVerify(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sd.mtvt")
	if err := run("sd", "mtvt", out, dir, 5e-5, true); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil || info.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
}

func TestGenerateAllToDir(t *testing.T) {
	dir := t.TempDir()
	if err := run("all", "mtvt", "", dir, 2e-5, false); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.mtvt"))
	if len(files) != 10 {
		t.Fatalf("trace files = %d, want 10", len(files))
	}
}

func TestGenerateBenchSuiteRVV(t *testing.T) {
	dir := t.TempDir()
	if err := run("bench", "rvv", "", dir, 1e-4, true); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.rvv"))
	if len(files) != 7 {
		t.Fatalf("trace files = %d, want 7", len(files))
	}
}

func TestImportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rvv := filepath.Join(dir, "axpy.rvv")
	if err := run("ax", "rvv", rvv, dir, 1e-4, true); err != nil {
		t.Fatal(err)
	}
	if err := runImport(rvv, "", true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "axpy.mtvt")); err != nil {
		t.Fatalf("default .mtvt output missing: %v", err)
	}
}

func TestImportCorrupt(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.rvv")
	if err := os.WriteFile(bad, []byte("format: mtvrvv/1\nbogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runImport(bad, "", false)
	if err == nil || !strings.Contains(err.Error(), "line 2:") {
		t.Fatalf("corrupt import error = %v, want line diagnostic", err)
	}
}

func TestUnknownProgram(t *testing.T) {
	if err := run("zz", "mtvt", "", t.TempDir(), 1e-4, false); err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestUnknownFormat(t *testing.T) {
	if err := run("sd", "elf", "", t.TempDir(), 1e-4, false); err == nil {
		t.Fatal("unknown format accepted")
	}
}
