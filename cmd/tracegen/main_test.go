package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndVerify(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sd.mtvt")
	if err := run("sd", out, dir, 5e-5, true); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil || info.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
}

func TestGenerateAllToDir(t *testing.T) {
	dir := t.TempDir()
	if err := run("all", "", dir, 2e-5, false); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.mtvt"))
	if len(files) != 10 {
		t.Fatalf("trace files = %d, want 10", len(files))
	}
}

func TestUnknownProgram(t *testing.T) {
	if err := run("zz", "", t.TempDir(), 1e-4, false); err == nil {
		t.Fatal("unknown program accepted")
	}
}
