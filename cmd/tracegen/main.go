// Command tracegen writes Dixie-style trace files for the benchmark
// reconstructions — the instrumentation step of the paper's methodology
// (Figure 2): the trace fully describes an execution, and any simulator
// in this repository can replay it.
//
//	tracegen -program sw -o swm256.mtvt
//	tracegen -program all -dir traces/
//	tracegen -program axpy -format rvv -o axpy.rvv
//
// It is also the ingest path for externally generated RVV-flavoured
// text traces (the mtvrvv format, docs/BENCHMARKS.md): -import parses
// and validates a text trace — LMUL register groups and masked ops are
// lowered onto the engine's forms — and writes the binary .mtvt any
// simulator here replays:
//
//	tracegen -import theirs.rvv -o theirs.mtvt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mtvec"
)

func main() {
	var (
		program = flag.String("program", "", "program tag or name (sw, axpy, ...) or 'all'")
		imp     = flag.String("import", "", "ingest an RVV-flavoured text trace instead of building a program")
		format  = flag.String("format", "mtvt", "export format: mtvt (binary) or rvv (mtvrvv text)")
		out     = flag.String("o", "", "output file (single program or -import)")
		dir     = flag.String("dir", ".", "output directory for -program all")
		scale   = flag.Float64("scale", mtvec.DefaultScale, "workload scale")
		verify  = flag.Bool("verify", true, "read the file back and check the stats match")
	)
	flag.Parse()

	var err error
	switch {
	case *imp != "":
		err = runImport(*imp, *out, *verify)
	case *program == "":
		fmt.Fprintln(os.Stderr, "tracegen: -program or -import required")
		os.Exit(2)
	default:
		err = run(*program, *format, *out, *dir, *scale, *verify)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// runImport ingests an mtvrvv text trace and writes it as binary .mtvt.
func runImport(in, out string, verify bool) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	tr, err := mtvec.ImportRVVTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	st, n, err := mtvec.TraceStats(tr)
	if err != nil {
		return fmt.Errorf("%s: imported trace does not replay: %w", in, err)
	}
	if out == "" {
		out = strings.TrimSuffix(in, filepath.Ext(in)) + ".mtvt"
	}
	if err := writeTrace(out, tr); err != nil {
		return err
	}
	fmt.Printf("%s: imported %d dynamic instructions (%.1f%% vectorized, avg VL %.1f) -> %s\n",
		in, n, st.PctVectorized(), st.AvgVL(), out)
	if tr.MaxVL != 0 && tr.MaxVL != int64(mtvec.DefaultRegFile().VLen) {
		fmt.Printf("note: trace vlen %d differs from the reference register length; replay with a matching -vlen\n", tr.MaxVL)
	}
	if verify {
		return verifyTrace(out, st, tr.MaxVL)
	}
	return nil
}

func run(program, format, out, dir string, scale float64, verify bool) error {
	if format != "mtvt" && format != "rvv" {
		return fmt.Errorf("unknown format %q (want mtvt or rvv)", format)
	}
	var specs []*mtvec.WorkloadSpec
	switch program {
	case "all":
		specs = mtvec.Workloads()
	case "bench":
		specs = mtvec.BenchWorkloads()
	default:
		s := mtvec.WorkloadByShort(program)
		if s == nil {
			s = mtvec.WorkloadByName(program)
		}
		if s == nil {
			return fmt.Errorf("unknown program %q", program)
		}
		specs = append(specs, s)
	}

	for _, spec := range specs {
		w, err := spec.Build(scale)
		if err != nil {
			return err
		}
		path := out
		if path == "" || program == "all" || program == "bench" {
			path = filepath.Join(dir, spec.Name+"."+format)
		}
		if err := writeTrace(path, w.Trace); err != nil {
			return err
		}
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d dynamic instructions, %d bytes\n", path, w.Stats.Insts(), info.Size())

		if verify {
			if err := verifyTrace(path, w.Stats, w.Trace.MaxVL); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeTrace writes the trace in the format implied by the path's
// extension (.rvv or other text-y suffixes -> mtvrvv text, else binary).
func writeTrace(path string, tr *mtvec.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if isText(path) {
		err = mtvec.ExportRVVTrace(f, tr)
	} else {
		err = mtvec.EncodeTrace(f, tr)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func isText(path string) bool {
	switch filepath.Ext(path) {
	case ".rvv", ".txt", ".trace":
		return true
	}
	return false
}

// verifyTrace reads the file back and checks the replayed statistics
// match the original build. maxVL restores the register-length cap for
// binary files (the .mtvt container does not carry it; the text format
// does, in its vlen header).
func verifyTrace(path string, want mtvec.ProgramStats, maxVL int64) error {
	g, err := os.Open(path)
	if err != nil {
		return err
	}
	defer g.Close()
	var tr *mtvec.Trace
	if isText(path) {
		tr, err = mtvec.ImportRVVTrace(g)
	} else {
		tr, err = mtvec.DecodeTrace(g)
		if err == nil {
			tr.MaxVL = maxVL
		}
	}
	if err != nil {
		return fmt.Errorf("%s: verification read failed: %w", path, err)
	}
	st, _, err := mtvec.TraceStats(tr)
	if err != nil {
		return fmt.Errorf("%s: replay failed: %w", path, err)
	}
	if st != want {
		return fmt.Errorf("%s: replayed statistics differ from the original", path)
	}
	return nil
}
