// Command tracegen writes Dixie-style trace files for the benchmark
// reconstructions — the instrumentation step of the paper's methodology
// (Figure 2): the trace fully describes an execution, and any simulator
// in this repository can replay it.
//
//	tracegen -program sw -o swm256.mtvt
//	tracegen -program all -dir traces/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mtvec"
)

func main() {
	var (
		program = flag.String("program", "", "program tag (sw, hy, ...) or 'all'")
		out     = flag.String("o", "", "output file (single program)")
		dir     = flag.String("dir", ".", "output directory for -program all")
		scale   = flag.Float64("scale", mtvec.DefaultScale, "workload scale")
		verify  = flag.Bool("verify", true, "decode the file back and check the stats match")
	)
	flag.Parse()

	if *program == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -program required (or 'all')")
		os.Exit(2)
	}
	if err := run(*program, *out, *dir, *scale, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(program, out, dir string, scale float64, verify bool) error {
	var specs []*mtvec.WorkloadSpec
	if program == "all" {
		specs = mtvec.Workloads()
	} else {
		s := mtvec.WorkloadByShort(program)
		if s == nil {
			s = mtvec.WorkloadByName(program)
		}
		if s == nil {
			return fmt.Errorf("unknown program %q", program)
		}
		specs = append(specs, s)
	}

	for _, spec := range specs {
		w, err := spec.Build(scale)
		if err != nil {
			return err
		}
		path := out
		if path == "" || program == "all" {
			path = filepath.Join(dir, spec.Name+".mtvt")
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := mtvec.EncodeTrace(f, w.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d dynamic instructions, %d bytes\n", path, w.Stats.Insts(), info.Size())

		if verify {
			g, err := os.Open(path)
			if err != nil {
				return err
			}
			tr, err := mtvec.DecodeTrace(g)
			g.Close()
			if err != nil {
				return fmt.Errorf("%s: verification decode failed: %w", path, err)
			}
			st, _, err := mtvec.TraceStats(tr)
			if err != nil {
				return fmt.Errorf("%s: replay failed: %w", path, err)
			}
			if st != w.Stats {
				return fmt.Errorf("%s: replayed statistics differ from the original", path)
			}
		}
	}
	return nil
}
