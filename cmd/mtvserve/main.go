// Command mtvserve serves the reproduction's simulation results over
// HTTP/JSON: submit single runs and batch sweeps, stream run progress
// as server-sent events, and regenerate whole experiments — all backed
// by the session engine's cache tiers, so anything simulated before
// (by this process, or by any process sharing the -store directory, or
// by any -peers worker) is served with zero simulations and explicit
// cache-hit metadata.
//
//	mtvserve -addr :8372 -store /var/lib/mtvec/store
//
// The same binary serves three roles (see docs/CLUSTER.md):
//
//	standalone  the single-node server (default)
//	worker      a standalone node behind a coordinator; -peers lets its
//	            store warm-start from the other workers' records
//	coordinator shards sweeps across -peers workers by store persist
//	            key, with retries, hedging and cluster-wide coalescing
//
// Endpoints (see docs/API.md for request/response schemas):
//
//	GET  /healthz                  liveness + cache counters
//	GET  /readyz                   readiness (503 while draining)
//	GET  /metrics                  Prometheus text metrics
//	GET  /api/v1/workloads         the Table 3 program catalog
//	GET  /api/v1/experiments       the paper's experiment catalog
//	GET  /api/v1/experiments/{id}  regenerate one experiment (text|markdown)
//	POST /api/v1/run               one simulation point -> Report + cache metadata
//	POST /api/v1/sweep             batch: base spec x {contexts, latencies, policies}
//	GET  /api/v1/stream            one point as SSE: progress/span events, then the result
//	GET  /api/v1/cluster           topology + worker health (coordinator only)
//	GET  /api/v1/store/record      record exchange for peer warm-start (-store nodes)
//
// Run and stream responses carry X-Mtvec-Cache: sim | memo | store |
// peer; sweeps report the tier per point in the body, and experiment
// responses report their actual cost in X-Mtvec-Simulations — so
// callers (and load tests) can always tell computed results from
// served ones.
//
// On SIGINT/SIGTERM the server drains: /readyz flips to 503 (so
// coordinators stop routing to it), in-flight requests get
// -drain-timeout to finish, then the rest are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mtvec"
	"mtvec/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8372", "listen address")
		role     = flag.String("role", "standalone", "serving role: standalone | worker | coordinator")
		peers    = flag.String("peers", "", "comma-separated base URLs: the coordinator's workers, or a worker's warm-start peers")
		storeDir = flag.String("store", "", "persistent result store directory (empty = in-memory caches only)")
		scale    = flag.Float64("scale", mtvec.DefaultScale, "workload scale relative to Table 3 millions (must match across the cluster)")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "max concurrent simulations")
		stealAge = flag.Duration("store-steal-age", 0, "age after which another process's store lock is presumed dead (0 = default)")
		pace     = flag.Duration("pace", 0, "pad every simulation slot to at least this wall duration (capacity emulation for load tests)")
		hedge    = flag.Duration("hedge-after", 30*time.Second, "coordinator: race a duplicate sub-sweep against shards slower than this (0 = off)")
		probe    = flag.Duration("probe-interval", time.Second, "coordinator: worker readiness probe interval")
		drainFor = flag.Duration("drain-timeout", 10*time.Second, "how long in-flight requests may finish after SIGTERM")
	)
	flag.Parse()

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}

	// Both roles expose the same trio: routes, a drain switch, and a
	// final close once the listener is down.
	var (
		handler http.Handler
		drain   func()
		finish  func()
	)
	switch *role {
	case "standalone", "worker":
		srv, err := cluster.NewServer(cluster.Config{
			Scale:    *scale,
			Jobs:     *jobs,
			StoreDir: *storeDir,
			StealAge: *stealAge,
			Peers:    peerList,
			Pace:     *pace,
		})
		if err != nil {
			log.Fatalln("mtvserve:", err)
		}
		handler, drain, finish = srv.Handler(), srv.StartDraining, func() {}
	case "coordinator":
		if len(peerList) == 0 {
			log.Fatalln("mtvserve: -role coordinator requires -peers")
		}
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Scale:         *scale,
			Workers:       peerList,
			HedgeAfter:    *hedge,
			ProbeInterval: *probe,
		})
		if err != nil {
			log.Fatalln("mtvserve:", err)
		}
		handler, drain, finish = coord.Handler(), coord.StartDraining, coord.Close
	default:
		log.Fatalf("mtvserve: unknown role %q (standalone | worker | coordinator)", *role)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("mtvserve: %s listening on %s (scale %g, jobs %d, store %q, peers %d)",
		*role, *addr, *scale, *jobs, *storeDir, len(peerList))

	select {
	case err := <-errc:
		log.Fatalln("mtvserve:", err)
	case <-ctx.Done():
	}

	// Graceful drain: readiness goes down first so coordinators stop
	// routing here, in-flight requests get the drain window, and
	// whatever is still running after it is cancelled outright.
	drain()
	log.Printf("mtvserve: draining (up to %s)", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Println("mtvserve: drain deadline hit, cancelling in-flight requests")
		} else {
			log.Println("mtvserve: shutdown:", err)
		}
		hs.Close()
	}
	finish()
	fmt.Fprintln(os.Stderr, "mtvserve: stopped")
}
