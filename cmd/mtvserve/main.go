// Command mtvserve serves the reproduction's simulation results over
// HTTP/JSON: submit single runs and batch sweeps, stream run progress
// as server-sent events, and regenerate whole experiments — all backed
// by the session engine's two cache tiers, so anything simulated before
// (by this process, or by any process sharing the -store directory) is
// served with zero simulations and explicit cache-hit metadata.
//
//	mtvserve -addr :8372 -store /var/lib/mtvec/store
//
// Endpoints (see docs/API.md for request/response schemas):
//
//	GET  /healthz                  liveness + cache counters
//	GET  /api/v1/workloads         the Table 3 program catalog
//	GET  /api/v1/experiments       the paper's experiment catalog
//	GET  /api/v1/experiments/{id}  regenerate one experiment (text|markdown)
//	POST /api/v1/run               one simulation point -> Report + cache metadata
//	POST /api/v1/sweep             batch: base spec x {contexts, latencies, policies}
//	GET  /api/v1/stream            one point as SSE: progress/span events, then the result
//
// Run and stream responses carry X-Mtvec-Cache: sim | memo | store;
// sweeps report the tier per point in the body, and experiment
// responses report their actual cost in X-Mtvec-Simulations — so
// callers (and load tests) can always tell computed results from
// served ones.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	"mtvec"
)

func main() {
	var (
		addr     = flag.String("addr", ":8372", "listen address")
		storeDir = flag.String("store", "", "persistent result store directory (empty = in-memory caches only)")
		scale    = flag.Float64("scale", mtvec.DefaultScale, "workload scale relative to Table 3 millions")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "max concurrent simulations")
	)
	flag.Parse()

	srv, err := newServer(*scale, *jobs, *storeDir)
	if err != nil {
		log.Fatalln("mtvserve:", err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("mtvserve: listening on %s (scale %g, jobs %d, store %q)", *addr, *scale, *jobs, *storeDir)

	select {
	case err := <-errc:
		log.Fatalln("mtvserve:", err)
	case <-ctx.Done():
	}
	// Graceful drain: in-flight simulations keep their own request
	// contexts; new connections are refused.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Println("mtvserve: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "mtvserve: stopped")
}
