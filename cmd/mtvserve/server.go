package main

// The HTTP layer: request/response schemas and handlers. All simulation
// goes through one shared Env/Session pair, so concurrent requests for
// one point simulate it once (singleflight), repeated requests answer
// from the in-memory memo, and — with -store — any point simulated by
// any process sharing the directory answers from disk. Responses carry
// the tier that answered in X-Mtvec-Cache and in the JSON body.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mtvec"
)

// maxSweepPoints bounds one sweep request's cross product.
const maxSweepPoints = 4096

type server struct {
	env   *mtvec.Env
	ses   *mtvec.Session
	store *mtvec.Store
	scale float64
	jobs  int
	start time.Time
}

func newServer(scale float64, jobs int, storeDir string) (*server, error) {
	env := mtvec.NewEnv(scale)
	env.SetJobs(jobs)
	s := &server{env: env, ses: env.Session(), scale: scale, jobs: env.Jobs(), start: time.Now()}
	if storeDir != "" {
		st, err := mtvec.OpenStore(storeDir)
		if err != nil {
			return nil, err
		}
		env.SetStore(st)
		s.store = st
	}
	return s, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /api/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /api/v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /api/v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("POST /api/v1/run", s.handleRun)
	mux.HandleFunc("POST /api/v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /api/v1/stream", s.handleStream)
	return mux
}

// runRequest declares one simulation point over the paper's main axes.
// Zero values keep the session defaults (the reference machine at
// 50-cycle latency).
type runRequest struct {
	// Mode is solo (default), group, or queue — the paper's three run
	// methodologies.
	Mode string `json:"mode,omitempty"`
	// Programs are catalog tags or names (tf, swm256, ...). Solo takes
	// exactly one; group runs the first as primary with the rest as
	// restarting companions; queue drains them all.
	Programs   []string `json:"programs"`
	Contexts   int      `json:"contexts,omitempty"`
	Latency    int      `json:"latency,omitempty"`
	Xbar       int      `json:"xbar,omitempty"`
	Policy     string   `json:"policy,omitempty"`
	DualScalar bool     `json:"dual_scalar,omitempty"`
	IssueWidth int      `json:"issue_width,omitempty"`
	LoadPorts  int      `json:"load_ports,omitempty"`
	StorePorts int      `json:"store_ports,omitempty"`
	Banks      int      `json:"banks,omitempty"`
	BankBusy   int      `json:"bank_busy,omitempty"`
	Spans      bool     `json:"spans,omitempty"`
	MaxCycles  int64    `json:"max_cycles,omitempty"`
	// ProgressStride sets the simulated-cycle interval between progress
	// events on the stream endpoint (0 = the engine default, 65536).
	ProgressStride int64 `json:"progress_stride,omitempty"`
}

// options translates the request's machine axes into run options.
func (rq runRequest) options() []mtvec.RunOption {
	var opts []mtvec.RunOption
	if rq.Contexts > 0 {
		opts = append(opts, mtvec.WithContexts(rq.Contexts))
	}
	if rq.Latency > 0 {
		opts = append(opts, mtvec.WithMemLatency(rq.Latency))
	}
	if rq.Xbar > 0 {
		opts = append(opts, mtvec.WithXbar(rq.Xbar))
	}
	if rq.Policy != "" {
		opts = append(opts, mtvec.WithPolicy(rq.Policy))
	}
	if rq.DualScalar {
		opts = append(opts, mtvec.WithDualScalar(true))
	}
	if rq.IssueWidth > 0 {
		opts = append(opts, mtvec.WithIssueWidth(rq.IssueWidth))
	}
	if rq.LoadPorts > 0 || rq.StorePorts > 0 {
		opts = append(opts, mtvec.WithMemPorts(rq.LoadPorts, rq.StorePorts))
	}
	if rq.Banks > 0 || rq.BankBusy > 0 {
		opts = append(opts, mtvec.WithMemBanks(rq.Banks, rq.BankBusy))
	}
	if rq.Spans {
		opts = append(opts, mtvec.WithSpans())
	}
	if rq.MaxCycles > 0 {
		opts = append(opts, mtvec.WithMaxCycles(rq.MaxCycles))
	}
	if rq.ProgressStride > 0 {
		opts = append(opts, mtvec.WithProgressStride(rq.ProgressStride))
	}
	return opts
}

// spec resolves the request into a validated RunSpec, building (or
// reusing) the named workloads through the Env's memoized cache.
func (s *server) spec(rq runRequest, extra ...mtvec.RunOption) (mtvec.RunSpec, error) {
	var zero mtvec.RunSpec
	if len(rq.Programs) == 0 {
		return zero, errors.New("programs: need at least one catalog tag or name")
	}
	ws := make([]*mtvec.Workload, len(rq.Programs))
	for i, tag := range rq.Programs {
		wspec := mtvec.WorkloadByShort(tag)
		if wspec == nil {
			wspec = mtvec.WorkloadByName(tag)
		}
		if wspec == nil {
			return zero, fmt.Errorf("unknown program %q", tag)
		}
		w, err := s.env.W(wspec.Short)
		if err != nil {
			return zero, err
		}
		ws[i] = w
	}
	opts := append(rq.options(), extra...)
	var spec mtvec.RunSpec
	switch rq.Mode {
	case "", "solo":
		if len(ws) != 1 {
			return zero, fmt.Errorf("solo mode takes exactly one program, have %d", len(ws))
		}
		spec = mtvec.Solo(ws[0], opts...)
	case "group":
		spec = mtvec.Group(ws[0], ws[1:], opts...)
	case "queue":
		spec = mtvec.Queue(ws, opts...)
	default:
		return zero, fmt.Errorf("unknown mode %q (solo | group | queue)", rq.Mode)
	}
	if err := spec.Validate(); err != nil {
		return zero, err
	}
	return spec, nil
}

// runResponse is one answered simulation point.
type runResponse struct {
	// Cache names the tier that answered: sim | memo | store.
	Cache     string        `json:"cache"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Report    *mtvec.Report `json:"report"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var rq runRequest
	if err := decodeJSON(w, r, &rq); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	spec, err := s.spec(rq)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	rep, src, err := s.ses.RunTracked(r.Context(), spec)
	if err != nil {
		if mtvec.IsContextErr(err) {
			return // client went away; nothing to answer
		}
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("X-Mtvec-Cache", src.String())
	writeJSON(w, http.StatusOK, runResponse{
		Cache:     src.String(),
		ElapsedMS: msSince(start),
		Report:    rep,
	})
}

// sweepRequest fans one base request out over explicit axis values; the
// cross product of all non-empty axes runs as a batch. An empty axis
// keeps the base value.
type sweepRequest struct {
	Base      runRequest `json:"base"`
	Contexts  []int      `json:"contexts,omitempty"`
	Latencies []int      `json:"latencies,omitempty"`
	Policies  []string   `json:"policies,omitempty"`
}

// sweepPoint is one point of a sweep response, tagged with the axis
// values that produced it.
type sweepPoint struct {
	Contexts  int           `json:"contexts,omitempty"`
	Latency   int           `json:"latency,omitempty"`
	Policy    string        `json:"policy,omitempty"`
	Cache     string        `json:"cache,omitempty"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Report    *mtvec.Report `json:"report,omitempty"`
	Error     string        `json:"error,omitempty"`
}

type sweepResponse struct {
	Points []sweepPoint `json:"points"`
	// Simulated / MemoHits / StoreHits partition the answered points by
	// tier; Failed counts points whose run errored.
	Simulated int     `json:"simulated"`
	MemoHits  int     `json:"memo_hits"`
	StoreHits int     `json:"store_hits"`
	Failed    int     `json:"failed"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var rq sweepRequest
	if err := decodeJSON(w, r, &rq); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// Empty axes keep the base value (a one-point sweep is legal).
	ctxs, lats, pols := rq.Contexts, rq.Latencies, rq.Policies
	if len(ctxs) == 0 {
		ctxs = []int{0}
	}
	if len(lats) == 0 {
		lats = []int{0}
	}
	if len(pols) == 0 {
		pols = []string{""}
	}
	n := len(ctxs) * len(lats) * len(pols)
	if n > maxSweepPoints {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("sweep of %d points exceeds the %d-point limit", n, maxSweepPoints))
		return
	}

	// Resolve every point's spec up front so a malformed sweep fails
	// whole, before any simulation starts.
	points := make([]sweepPoint, 0, n)
	specs := make([]mtvec.RunSpec, 0, n)
	var bad []error
	for _, c := range ctxs {
		for _, l := range lats {
			for _, pol := range pols {
				pr := rq.Base
				if c > 0 {
					pr.Contexts = c
				}
				if l > 0 {
					pr.Latency = l
				}
				if pol != "" {
					pr.Policy = pol
				}
				spec, err := s.spec(pr)
				if err != nil {
					bad = append(bad, fmt.Errorf("point (ctx=%d, lat=%d, policy=%q): %w", c, l, pol, err))
					continue
				}
				points = append(points, sweepPoint{Contexts: c, Latency: l, Policy: pol})
				specs = append(specs, spec)
			}
		}
	}
	if len(bad) > 0 {
		s.fail(w, http.StatusBadRequest, errors.Join(bad...))
		return
	}

	// Fan out through the session's batched sweep engine: memo-missed
	// points sharing a workload simulate as lockstep batch lanes, the
	// jobs gate bounds actual simulation concurrency, and shared points
	// collapse onto one simulation. Per-point cache metadata is
	// unchanged; a batched point's elapsed time is the wall time until
	// its whole batch resolved.
	start := time.Now()
	results := s.ses.RunAllTracked(r.Context(), specs...)
	for i, res := range results {
		points[i].ElapsedMS = res.Elapsed.Seconds() * 1e3
		if res.Err != nil {
			points[i].Error = res.Err.Error()
			continue
		}
		points[i].Cache = res.Source.String()
		points[i].Report = res.Report
	}
	if r.Context().Err() != nil {
		return // client went away mid-sweep
	}

	resp := sweepResponse{Points: points, ElapsedMS: msSince(start)}
	for i := range points {
		switch {
		case points[i].Error != "":
			resp.Failed++
		case points[i].Cache == mtvec.RunFromSim.String():
			resp.Simulated++
		case points[i].Cache == mtvec.RunFromMemo.String():
			resp.MemoHits++
		case points[i].Cache == mtvec.RunFromStore.String():
			resp.StoreHits++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// sseObserver forwards run events as server-sent events. The simulator
// calls it synchronously on the handler goroutine, so writes need no
// locking; a failed write just stops further events (the client is
// gone, and the run is cancelled through the request context).
type sseObserver struct {
	w        io.Writer
	fl       http.Flusher
	spans    bool
	switches bool
	dead     bool
}

func (o *sseObserver) event(name string, v any) {
	if o.dead {
		return
	}
	data, err := json.Marshal(v)
	if err == nil {
		_, err = fmt.Fprintf(o.w, "event: %s\ndata: %s\n\n", name, data)
	}
	if err != nil {
		o.dead = true
		return
	}
	o.fl.Flush()
}

func (o *sseObserver) Progress(now int64, dispatched int64) {
	o.event("progress", map[string]int64{"cycle": now, "dispatched": dispatched})
}

func (o *sseObserver) ThreadSwitch(now int64, from, to int) {
	if o.switches {
		o.event("switch", map[string]int64{"cycle": now, "from": int64(from), "to": int64(to)})
	}
}

func (o *sseObserver) Span(sp mtvec.Span) {
	if o.spans {
		o.event("span", sp)
	}
}

// streamParams are the query keys the stream endpoint accepts — the
// POST body schema flattened, plus the SSE-only switches toggle.
var streamParams = map[string]bool{
	"mode": true, "programs": true, "policy": true, "contexts": true,
	"latency": true, "xbar": true, "issue_width": true, "load_ports": true,
	"store_ports": true, "banks": true, "bank_busy": true, "max_cycles": true,
	"progress_stride": true, "dual_scalar": true, "spans": true, "switches": true,
}

// queryRunRequest builds a runRequest (plus the SSE-only switches
// toggle) from the stream endpoint's query parameters — the POST body
// schema, flattened. Unknown parameters and malformed values are
// rejected, mirroring the POST decoder's strict field checking — a
// typo'd axis must not silently simulate the default machine.
func queryRunRequest(r *http.Request) (rq runRequest, switches bool, err error) {
	q := r.URL.Query()
	for name := range q {
		if !streamParams[name] {
			return runRequest{}, false, fmt.Errorf("unknown query parameter %q", name)
		}
	}
	rq = runRequest{Mode: q.Get("mode"), Policy: q.Get("policy")}
	for _, tag := range strings.Split(q.Get("programs"), ",") {
		if tag = strings.TrimSpace(tag); tag != "" {
			rq.Programs = append(rq.Programs, tag)
		}
	}
	atoi := func(name string) int {
		v := q.Get(name)
		if v == "" {
			return 0
		}
		n, aerr := strconv.Atoi(v)
		if aerr != nil && err == nil {
			err = fmt.Errorf("%s: %w", name, aerr)
		}
		return n
	}
	rq.Contexts = atoi("contexts")
	rq.Latency = atoi("latency")
	rq.Xbar = atoi("xbar")
	rq.IssueWidth = atoi("issue_width")
	rq.LoadPorts = atoi("load_ports")
	rq.StorePorts = atoi("store_ports")
	rq.Banks = atoi("banks")
	rq.BankBusy = atoi("bank_busy")
	rq.MaxCycles = int64(atoi("max_cycles"))
	rq.ProgressStride = int64(atoi("progress_stride"))
	abool := func(name string) bool {
		v := q.Get(name)
		if v == "" {
			return false
		}
		b, berr := strconv.ParseBool(v)
		if berr != nil && err == nil {
			err = fmt.Errorf("%s: %w", name, berr)
		}
		return b
	}
	rq.DualScalar = abool("dual_scalar")
	rq.Spans = abool("spans")
	switches = abool("switches")
	return rq, switches, err
}

// handleStream answers one run as an SSE stream: progress (and
// optionally span/switch) events while the simulation executes, then a
// final result event carrying the runResponse. A cached result skips
// straight to the result event — no simulation, no progress.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, errors.New("streaming unsupported by connection"))
		return
	}
	rq, switches, err := queryRunRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	spec, err := s.spec(rq)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	start := time.Now()
	obs := &sseObserver{w: w, fl: fl, spans: rq.Spans, switches: switches}
	sse := func(cache string) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Mtvec-Cache", cache)
		w.WriteHeader(http.StatusOK)
	}

	// A result some tier already holds streams as just its result event.
	if rep, src, ok := s.ses.Cached(spec); ok {
		sse(src.String())
		obs.event("result", runResponse{Cache: src.String(), ElapsedMS: msSince(start), Report: rep})
		return
	}

	sse(mtvec.RunFromSim.String())
	rep, src, err := s.ses.RunTracked(r.Context(), spec.With(mtvec.WithObserver(obs)))
	if err != nil {
		if !mtvec.IsContextErr(err) {
			obs.event("error", map[string]string{"error": err.Error()})
		}
		return
	}
	obs.event("result", runResponse{Cache: src.String(), ElapsedMS: msSince(start), Report: rep})
}

// experimentInfo is one catalog entry.
type experimentInfo struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	PaperShape string `json:"paper_shape"`
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var list []experimentInfo
	for _, e := range mtvec.Experiments() {
		list = append(list, experimentInfo{ID: e.ID, Title: e.Title, PaperShape: e.PaperShape})
	}
	writeJSON(w, http.StatusOK, list)
}

// handleExperiment regenerates one experiment (every table/figure of
// it) against the shared Env. With a warm store this is pure serving:
// the X-Mtvec-Simulations header reports how many machine runs the
// request actually cost (0 on a fully cached regeneration; approximate
// under concurrent requests, which share the Env's counters).
//
// Unlike the point endpoints, regeneration runs under the Env's own
// context, not the request's: its simulation points land in the shared
// memo/store tiers where any later request is served from them, so
// finishing after a client disconnect is deliberate (cache warming).
// Swapping the shared Env's context per request would also let one
// client's disconnect cancel another's runs.
func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	exp := mtvec.ExperimentByID(id)
	if exp == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
		return
	}
	render := mtvec.RenderResult
	contentType := "text/plain; charset=utf-8"
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
	case "markdown":
		render = mtvec.RenderResultMarkdown
		contentType = "text/markdown; charset=utf-8"
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (text | markdown)", format))
		return
	}
	sims0, hits0 := s.env.Simulations(), s.env.StoreHits()
	start := time.Now()
	res, err := exp.Run(s.env)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	var buf strings.Builder
	if err := render(&buf, res); err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("X-Mtvec-Simulations", strconv.FormatInt(s.env.Simulations()-sims0, 10))
	h.Set("X-Mtvec-Store-Hits", strconv.FormatInt(s.env.StoreHits()-hits0, 10))
	h.Set("X-Mtvec-Elapsed-Ms", strconv.FormatFloat(msSince(start), 'f', 1, 64))
	io.WriteString(w, buf.String())
}

// workloadInfo is one program-catalog entry.
type workloadInfo struct {
	Name  string `json:"name"`
	Short string `json:"short"`
	Suite string `json:"suite"`
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var list []workloadInfo
	for _, spec := range mtvec.Workloads() {
		list = append(list, workloadInfo{Name: spec.Name, Short: spec.Short, Suite: spec.Suite})
	}
	writeJSON(w, http.StatusOK, list)
}

type healthResponse struct {
	Status      string  `json:"status"`
	UptimeS     float64 `json:"uptime_s"`
	Scale       float64 `json:"scale"`
	Jobs        int     `json:"jobs"`
	Simulations int64   `json:"simulations"`
	StoreHits   int64   `json:"store_hits"`
	// Store carries the persistent tier's counters; null without -store.
	Store *mtvec.StoreStats `json:"store,omitempty"`
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:      "ok",
		UptimeS:     time.Since(s.start).Seconds(),
		Scale:       s.scale,
		Jobs:        s.jobs,
		Simulations: s.env.Simulations(),
		StoreHits:   s.env.StoreHits(),
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) fail(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// decodeJSON reads one JSON request body with a size bound and strict
// field checking, so typo'd axis names fail loudly instead of silently
// running the default machine.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Nanoseconds()) / 1e6
}
