package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONSmoke drives run over the deliberately-broken testdata
// package and checks the machine-readable output end to end: exit
// status 1, a parseable array, and the expected single slotpair
// finding.
func TestJSONSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./testdata/jsonsmoke"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var findings []finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want exactly one", findings)
	}
	f := findings[0]
	if f.Analyzer != "slotpair" {
		t.Errorf("analyzer = %q, want slotpair", f.Analyzer)
	}
	if !strings.HasSuffix(f.File, "j.go") || f.Line == 0 || f.Col == 0 {
		t.Errorf("position = %s:%d:%d, want a real j.go position", f.File, f.Line, f.Col)
	}
	if !strings.Contains(f.Message, "g.TryAcquire") {
		t.Errorf("message = %q, want the unmatched acquire named", f.Message)
	}
}

// TestTextOutput checks the default human format on the same fixture.
func TestTextOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/jsonsmoke"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.Contains(line, "slotpair:") || !strings.Contains(line, "j.go:") {
		t.Fatalf("text output = %q, want file:line:col: slotpair: message", line)
	}
}

// TestBadPattern pins the load-error exit status.
func TestBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if stderr.Len() == 0 {
		t.Fatal("load error produced no stderr")
	}
}

// TestCleanPackage: a package with no findings exits 0 and, in JSON
// mode, still emits a well-formed (empty) array.
func TestCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	var findings []finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("clean JSON output invalid: %v\n%s", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Fatalf("findings = %+v, want none", findings)
	}
}
