// Command mtvlint runs the repository's static-analysis suite
// (internal/lint) over the packages matching its arguments — ./... by
// default — and exits nonzero if any invariant is violated.
//
// Usage:
//
//	mtvlint [-json] [packages]
//
// With -json the findings are emitted as a JSON array of objects with
// "analyzer", "file", "line", "col" and "message" fields (an empty
// array when the tree is clean), for machine consumption in CI.
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mtvec/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtvlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: mtvlint [-json] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "mtvlint: %v\n", err)
		return 2
	}
	pkgs, ix, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mtvlint: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, ix, lint.All())

	if *jsonOut {
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "mtvlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
