// Package jsonsmoke is a deliberately-broken fixture for the -json
// output test: the unmatched TryAcquire below must surface as exactly
// one slotpair finding.
package jsonsmoke

type gate struct{}

func (g *gate) TryAcquire(max int) int { return max }
func (g *gate) Release(n int)          {}

func leak(g *gate) int {
	return g.TryAcquire(2)
}
