// Package vcomp compiles kernel IR into ISA programs, standing in for the
// Convex Fortran compiler of the paper's methodology. It strip-mines
// vector loops by the hardware vector length, allocates vector registers
// with awareness of the 2-registers-per-bank port structure (the paper
// notes the compiler is responsible for avoiding register-port
// conflicts), tracks the vector-stride register across mixed-stride
// bodies, and lowers scalar loops to representative scalar code.
//
// Compilation is static and happens once per kernel; dynamic behaviour is
// produced by emitting the four Dixie-style trace streams for an
// invocation schedule (trip counts per loop).
package vcomp

import (
	"fmt"

	"mtvec/internal/arch"
	"mtvec/internal/kernel"
	"mtvec/internal/prog"
	"mtvec/internal/trace"
)

// Compiled is a kernel lowered to a static program plus the metadata
// needed to emit traces for arbitrary invocation schedules.
type Compiled struct {
	Prog   *prog.Program
	Kernel *kernel.Kernel

	units []*unitCode

	// rf is the register-file organization the code was compiled for;
	// vlen caches its strip length.
	rf   arch.RegFile
	vlen int64
}

// RegFile returns the register-file organization the kernel was compiled
// for (the strip-mining length, register count and banking the code
// assumes).
func (c *Compiled) RegFile() arch.RegFile { return c.rf }

// unitCode records the lowering of one kernel unit.
type unitCode struct {
	name string

	// Absolute block indices within Prog (-1 when absent).
	entry, body, tail int

	entrySlots []slot
	bodySlots  []slot
	tailSlots  []slot

	// Exact per-block instruction counts for estimation.
	entryScalar, bodyScalar, tailScalar int64
	bodyVec, tailVec                    int64
}

// slot is one dynamic value the trace must supply for a block execution,
// in instruction order.
type slotKind uint8

const (
	slotVL     slotKind = iota // SetVL: full strip or remainder, per context
	slotStride                 // SetVS: fixed value
	slotAddr                   // memory base address, offset by strip/iteration
)

type slot struct {
	kind   slotKind
	stride int64  // slotStride: value to install; slotAddr: bytes/element
	base   uint64 // slotAddr: array base
	walk   bool   // slotAddr: true if the address advances with strip/iter
}

// Invocation requests one execution of a unit with trip count N.
type Invocation struct {
	Unit int
	N    int64
}

// Options tunes the compiler.
type Options struct {
	// NoHoist disables load hoisting, modelling a naive compiler that
	// places each load immediately before its first use. The paper's
	// Convex compiler scheduled loads early because the machine cannot
	// chain loads into functional units; the ext-compiler experiment
	// quantifies how much that scheduling is worth.
	NoHoist bool

	// RegFile targets the compilation at a vector register file
	// organization: loops strip-mine by its VLen, and the register
	// allocator spreads across its banks within its register count. The
	// zero value targets the default (Convex) organization; traces from
	// a non-default compilation carry the matching hardware vector
	// length (trace.Trace.MaxVL), and machines must be configured with
	// the same organization (session.WithRegFile) to run them.
	RegFile arch.RegFile
}

// Compile lowers k with default options.
func Compile(k *kernel.Kernel) (*Compiled, error) {
	return CompileOpts(k, Options{})
}

// CompileOpts lowers k. The resulting program contains one
// entry/body/tail block group per unit.
func CompileOpts(k *kernel.Kernel, opts Options) (*Compiled, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	opts.RegFile = opts.RegFile.Normalize()
	if err := opts.RegFile.Validate(); err != nil {
		return nil, fmt.Errorf("vcomp: %s: %w", k.Name, err)
	}
	c := &Compiled{
		Prog:   &prog.Program{Name: k.Name},
		Kernel: k,
		rf:     opts.RegFile,
		vlen:   int64(opts.RegFile.VLen),
	}
	for _, u := range k.Units {
		var uc *unitCode
		var err error
		switch l := u.(type) {
		case *kernel.VectorLoop:
			uc, err = lowerVector(c.Prog, l, opts)
		case *kernel.ScalarLoop:
			uc, err = lowerScalar(c.Prog, l)
		default:
			err = fmt.Errorf("vcomp: unknown unit type %T", u)
		}
		if err != nil {
			return nil, fmt.Errorf("vcomp: %s: %w", k.Name, err)
		}
		c.units = append(c.units, uc)
	}
	if err := c.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("vcomp: %s: generated invalid program: %w", k.Name, err)
	}
	return c, nil
}

// NumUnits returns the number of compiled units.
func (c *Compiled) NumUnits() int { return len(c.units) }

// UnitIndex returns the index of the named unit, or -1.
func (c *Compiled) UnitIndex(name string) int {
	for i, u := range c.units {
		if u.name == name {
			return i
		}
	}
	return -1
}

// AppendTrace appends the dynamic streams for one invocation to tr.
func (c *Compiled) AppendTrace(tr *trace.Trace, inv Invocation) error {
	if inv.Unit < 0 || inv.Unit >= len(c.units) {
		return fmt.Errorf("vcomp: invocation names unit %d of %d", inv.Unit, len(c.units))
	}
	if inv.N < 0 {
		return fmt.Errorf("vcomp: negative trip count %d", inv.N)
	}
	if inv.N == 0 {
		return nil
	}
	// Replays must run at the compilation's hardware vector length;
	// record the largest one contributing to the trace.
	if tr.MaxVL < c.vlen {
		tr.MaxVL = c.vlen
	}
	u := c.units[inv.Unit]
	if isVectorUnit(u) {
		c.emitVectorUnit(tr, u, inv.N)
	} else {
		emitScalarUnit(tr, u, inv.N)
	}
	return nil
}

// Trace builds a complete trace for the schedule. The stream lengths are
// computed exactly up front so the emission loop never reallocates.
func (c *Compiled) Trace(schedule []Invocation) (*trace.Trace, error) {
	var bbs, vls, strides, addrs int64
	for _, inv := range schedule {
		if inv.Unit < 0 || inv.Unit >= len(c.units) || inv.N <= 0 {
			continue // AppendTrace reports invalid invocations below
		}
		b, v, s, a := c.sizeInvocation(c.units[inv.Unit], inv.N)
		bbs, vls, strides, addrs = bbs+b, vls+v, strides+s, addrs+a
	}
	tr := &trace.Trace{
		Prog:    c.Prog,
		BBs:     make([]int32, 0, bbs),
		VLs:     make([]int64, 0, vls),
		Strides: make([]int64, 0, strides),
		Addrs:   make([]uint64, 0, addrs),
		MaxVL:   c.vlen,
	}
	for _, inv := range schedule {
		if err := c.AppendTrace(tr, inv); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// countSlots tallies a slot list by kind.
func countSlots(slots []slot) (vls, strides, addrs int64) {
	for _, s := range slots {
		switch s.kind {
		case slotVL:
			vls++
		case slotStride:
			strides++
		case slotAddr:
			addrs++
		}
	}
	return
}

// sizeInvocation returns the exact stream entry counts one invocation of
// u appends, mirroring emitVectorUnit/emitScalarUnit.
func (c *Compiled) sizeInvocation(u *unitCode, n int64) (bbs, vls, strides, addrs int64) {
	ev, es, ea := countSlots(u.entrySlots)
	bv, bs, ba := countSlots(u.bodySlots)
	if !isVectorUnit(u) {
		return 1 + n, ev + n*bv, es + n*bs, ea + n*ba
	}
	f := n / c.vlen
	rem := n % c.vlen
	bbs, vls, strides, addrs = 1+f, ev+f*bv, es+f*bs, ea+f*ba
	if rem > 0 {
		tv, ts, ta := countSlots(u.tailSlots)
		bbs, vls, strides, addrs = bbs+1, vls+tv, strides+ts, addrs+ta
	}
	return
}

func isVectorUnit(u *unitCode) bool { return u.tail >= 0 }

// emitVectorUnit emits entry, f full strips and an optional remainder.
func (c *Compiled) emitVectorUnit(tr *trace.Trace, u *unitCode, n int64) {
	f := n / c.vlen
	rem := n % c.vlen

	entryVL := c.vlen
	if f == 0 {
		entryVL = rem
	}
	tr.BBs = append(tr.BBs, int32(u.entry))
	emitSlots(tr, u.entrySlots, entryVL, 0)

	for k := int64(0); k < f; k++ {
		tr.BBs = append(tr.BBs, int32(u.body))
		emitSlots(tr, u.bodySlots, c.vlen, k*c.vlen)
	}
	if rem > 0 {
		tr.BBs = append(tr.BBs, int32(u.tail))
		emitSlots(tr, u.tailSlots, rem, f*c.vlen)
	}
}

// emitScalarUnit emits entry and n body iterations.
func emitScalarUnit(tr *trace.Trace, u *unitCode, n int64) {
	tr.BBs = append(tr.BBs, int32(u.entry))
	emitSlots(tr, u.entrySlots, 0, 0)
	for i := int64(0); i < n; i++ {
		tr.BBs = append(tr.BBs, int32(u.body))
		emitSlots(tr, u.bodySlots, 0, i)
	}
}

// emitSlots resolves a block's slots: vl is the value any SetVL takes,
// elem is the element offset (strip start or scalar iteration index).
func emitSlots(tr *trace.Trace, slots []slot, vl int64, elem int64) {
	for _, s := range slots {
		switch s.kind {
		case slotVL:
			tr.VLs = append(tr.VLs, vl)
		case slotStride:
			tr.Strides = append(tr.Strides, s.stride)
		case slotAddr:
			a := s.base
			if s.walk {
				a += uint64(elem * s.stride)
			}
			tr.Addrs = append(tr.Addrs, a)
		}
	}
}

// EstimateInvocation returns the exact dynamic instruction counts one
// invocation of the unit produces: scalar instructions, vector
// instructions and vector operations. The workload calibration planner
// uses these to hit Table 3 targets analytically.
func (c *Compiled) EstimateInvocation(unit int, n int64) (scalar, vec, vecOps int64) {
	if unit < 0 || unit >= len(c.units) || n <= 0 {
		return 0, 0, 0
	}
	u := c.units[unit]
	if !isVectorUnit(u) {
		return u.entryScalar + n*u.bodyScalar, 0, 0
	}
	f := n / c.vlen
	rem := n % c.vlen
	scalar = u.entryScalar + f*u.bodyScalar
	vec = f * u.bodyVec
	vecOps = f * u.bodyVec * c.vlen
	if rem > 0 {
		scalar += u.tailScalar
		vec += u.tailVec
		vecOps += u.tailVec * rem
	}
	return scalar, vec, vecOps
}

// countBlock tallies vector and scalar instructions of a block.
func countBlock(b *prog.BasicBlock) (scalar, vec int64) {
	for _, in := range b.Insts {
		if in.Op.IsVector() {
			vec++
		} else {
			scalar++
		}
	}
	return scalar, vec
}
