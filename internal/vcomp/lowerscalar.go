package vcomp

import (
	"mtvec/internal/isa"
	"mtvec/internal/kernel"
	"mtvec/internal/prog"
)

// lowerScalar lowers a scalar loop to a representative basic block with
// the requested per-iteration operation mix plus standard loop control
// (cursor bump, count decrement, branch). The paper observes such loops
// issue one instruction per cycle with roughly 2 memory references per
// 6-8 instructions, bounding memory-port occupation near 1/3; this
// lowering reproduces that shape.
func lowerScalar(p *prog.Program, l *kernel.ScalarLoop) (*unitCode, error) {
	// Synthetic address spaces for the loop's load and store streams,
	// derived from the block position so different loops do not collide.
	loadBase := uint64(0x4000_0000) + uint64(len(p.Blocks))<<24
	storeBase := loadBase + 1<<20

	entry := prog.BasicBlock{Label: l.Name + ".entry", Insts: []isa.Inst{
		{Op: isa.OpMovI, Dst: isa.A(regCount), Src2: isa.Imm()},
		{Op: isa.OpMovI, Dst: isa.A(regIndex), Src2: isa.Imm()},
	}}

	body := prog.BasicBlock{Label: l.Name + ".body"}
	var slots []slot

	// Loads alternate between s2 and s3 so later arithmetic has two
	// producers to draw from.
	for i := 0; i < l.Loads; i++ {
		dst := isa.S(uint8(2 + i%2))
		body.Insts = append(body.Insts, isa.Inst{Op: isa.OpSLoad, Dst: dst, Src1: isa.A(regIndex)})
		slots = append(slots, slot{kind: slotAddr, base: loadBase + uint64(i)<<16, stride: isa.ElemBytes, walk: true})
	}
	// Integer work: address-style arithmetic on a2.
	for i := 0; i < l.IntOps; i++ {
		body.Insts = append(body.Insts, isa.Inst{Op: isa.OpSAddI, Dst: isa.A(2), Src1: isa.A(2), Src2: isa.A(regIndex)})
	}
	// Floating-point work: a short dependence chain off the loads.
	for i := 0; i < l.FPOps; i++ {
		dst := isa.S(uint8(4 + i%3))
		src1 := isa.S(2)
		if i > 0 {
			src1 = isa.S(uint8(4 + (i-1)%3))
		}
		body.Insts = append(body.Insts, isa.Inst{Op: isa.OpSAdd, Dst: dst, Src1: src1, Src2: isa.S(3)})
	}
	for i := 0; i < l.FPDivs; i++ {
		body.Insts = append(body.Insts, isa.Inst{Op: isa.OpSDiv, Dst: isa.S(7), Src1: isa.S(2), Src2: isa.S(3)})
	}
	// Stores write back the last fp result (or a loaded value).
	src := isa.S(2)
	if l.FPOps > 0 {
		src = isa.S(uint8(4 + (l.FPOps-1)%3))
	}
	for i := 0; i < l.Stores; i++ {
		body.Insts = append(body.Insts, isa.Inst{Op: isa.OpSStore, Src1: src, Src2: isa.A(regIndex)})
		slots = append(slots, slot{kind: slotAddr, base: storeBase + uint64(i)<<16, stride: isa.ElemBytes, walk: true})
	}
	// Loop control.
	body.Insts = append(body.Insts,
		isa.Inst{Op: isa.OpAAdd, Dst: isa.A(regIndex), Src1: isa.A(regIndex), Src2: isa.Imm(), Imm: isa.ElemBytes},
		isa.Inst{Op: isa.OpAAdd, Dst: isa.A(regCount), Src1: isa.A(regCount), Src2: isa.Imm(), Imm: -1},
		isa.Inst{Op: isa.OpBr, Src1: isa.A(regCount)},
	)

	base := len(p.Blocks)
	p.Blocks = append(p.Blocks, entry, body)
	uc := &unitCode{
		name:      l.Name,
		entry:     base,
		body:      base + 1,
		tail:      -1,
		bodySlots: slots,
	}
	uc.entryScalar, _ = countBlock(&p.Blocks[base])
	uc.bodyScalar, uc.bodyVec = countBlock(&p.Blocks[base+1])
	return uc, nil
}
