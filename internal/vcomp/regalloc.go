package vcomp

import (
	"fmt"

	"mtvec/internal/arch"
	"mtvec/internal/isa"
)

// vregAlloc hands out the target shape's vector registers. Allocation
// prefers the register bank with the fewest live registers so that
// concurrently-live operands spread across banks — banks have few read
// ports and fewer write ports, and the paper makes the compiler
// responsible for keeping port conflicts rare. The zero value allocates
// the default (Convex) file; setShape retargets it.
type vregAlloc struct {
	live    [arch.MaxVRegs]bool
	n       int // registers in the file (0 = default isa.NumV)
	perBank int
}

// setShape retargets the allocator to the given register file.
func (a *vregAlloc) setShape(rf arch.RegFile) {
	a.n, a.perBank = rf.VRegs, rf.VRegsPerBank
}

func (a *vregAlloc) shape() (n, perBank int) {
	if a.n == 0 {
		return isa.NumV, isa.VRegsPerBank
	}
	return a.n, a.perBank
}

func (a *vregAlloc) alloc() (uint8, error) {
	n, perBank := a.shape()
	best := -1
	bestBankLoad := perBank + 1
	for r := 0; r < n; r++ {
		if a.live[r] {
			continue
		}
		load := 0
		bank := r / perBank
		for q := bank * perBank; q < (bank+1)*perBank && q < n; q++ {
			if a.live[q] {
				load++
			}
		}
		if load < bestBankLoad {
			best, bestBankLoad = r, load
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("vector register pressure exceeds %d registers; split the statement", n)
	}
	a.live[best] = true
	return uint8(best), nil
}

func (a *vregAlloc) free(r uint8) {
	if !a.live[r] {
		panic(fmt.Sprintf("vcomp: double free of v%d", r))
	}
	a.live[r] = false
}

func (a *vregAlloc) liveCount() int {
	n := 0
	for _, l := range a.live {
		if l {
			n++
		}
	}
	return n
}

// sregAlloc hands out S registers for loop-invariant scalar arguments and
// reduction targets; they stay allocated for the whole unit.
type sregAlloc struct {
	next  uint8
	names map[string]uint8
}

func newSRegAlloc() *sregAlloc {
	// s0 is reserved as the always-zero/ready register convention used
	// by lowered control code.
	return &sregAlloc{next: 1, names: make(map[string]uint8)}
}

func (a *sregAlloc) get(name string) (uint8, error) {
	if r, ok := a.names[name]; ok {
		return r, nil
	}
	if a.next >= isa.NumS {
		return 0, fmt.Errorf("more than %d scalar arguments", isa.NumS-1)
	}
	r := a.next
	a.next++
	a.names[name] = r
	return r, nil
}
