package vcomp

import (
	"fmt"

	"mtvec/internal/isa"
)

// vregAlloc hands out the eight vector registers. Allocation prefers the
// register bank with the fewest live registers so that concurrently-live
// operands spread across banks — each bank has only two read ports and
// one write port, and the paper makes the compiler responsible for
// keeping port conflicts rare.
type vregAlloc struct {
	live [isa.NumV]bool
}

func (a *vregAlloc) alloc() (uint8, error) {
	best := -1
	bestBankLoad := isa.VRegsPerBank + 1
	for r := 0; r < isa.NumV; r++ {
		if a.live[r] {
			continue
		}
		load := 0
		bank := isa.VBank(uint8(r))
		for q := bank * isa.VRegsPerBank; q < (bank+1)*isa.VRegsPerBank; q++ {
			if a.live[q] {
				load++
			}
		}
		if load < bestBankLoad {
			best, bestBankLoad = r, load
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("vector register pressure exceeds %d registers; split the statement", isa.NumV)
	}
	a.live[best] = true
	return uint8(best), nil
}

func (a *vregAlloc) free(r uint8) {
	if !a.live[r] {
		panic(fmt.Sprintf("vcomp: double free of v%d", r))
	}
	a.live[r] = false
}

func (a *vregAlloc) liveCount() int {
	n := 0
	for _, l := range a.live {
		if l {
			n++
		}
	}
	return n
}

// sregAlloc hands out S registers for loop-invariant scalar arguments and
// reduction targets; they stay allocated for the whole unit.
type sregAlloc struct {
	next  uint8
	names map[string]uint8
}

func newSRegAlloc() *sregAlloc {
	// s0 is reserved as the always-zero/ready register convention used
	// by lowered control code.
	return &sregAlloc{next: 1, names: make(map[string]uint8)}
}

func (a *sregAlloc) get(name string) (uint8, error) {
	if r, ok := a.names[name]; ok {
		return r, nil
	}
	if a.next >= isa.NumS {
		return 0, fmt.Errorf("more than %d scalar arguments", isa.NumS-1)
	}
	r := a.next
	a.next++
	a.names[name] = r
	return r, nil
}
