package vcomp

import (
	"testing"

	"mtvec/internal/isa"
	"mtvec/internal/kernel"
)

// opSequence extracts the body block's opcode list.
func opSequence(c *Compiled) []isa.Op {
	var ops []isa.Op
	for _, in := range c.Prog.Blocks[1].Insts {
		ops = append(ops, in.Op)
	}
	return ops
}

func TestLoadsHoistedAboveCompute(t *testing.T) {
	// Two-statement stencil: all three input loads must precede the
	// first arithmetic instruction.
	in0 := arrS("in0", 0x1000, 8)
	in1 := arrS("in1", 0x2000, 8)
	in2 := arrS("in2", 0x3000, 8)
	o0 := arrS("o0", 0x4000, 8)
	o1 := arrS("o1", 0x5000, 8)
	k := &kernel.Kernel{Name: "h", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "h", Body: []kernel.Stmt{
			{Dst: o0, E: &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: in0}, R: &kernel.Ref{Arr: in1}}},
			{Dst: o1, E: &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: in1}, R: &kernel.Ref{Arr: in2}}},
		}},
	}}
	c := mustCompile(t, k)
	ops := opSequence(c)
	loads, firstArith := 0, -1
	for i, op := range ops {
		if op == isa.OpVLoad && firstArith < 0 {
			loads++
		}
		if op == isa.OpVAdd && firstArith < 0 {
			firstArith = i
		}
	}
	if loads != 3 {
		t.Fatalf("loads before first arithmetic = %d, want 3 (hoisted): %v", loads, ops)
	}
}

func TestHoistRespectsStoreOrdering(t *testing.T) {
	// y is stored by statement 1 and read by statement 2: the second
	// read must NOT be hoisted above the store.
	y := arrS("y", 0x1000, 8)
	z := arrS("z", 0x2000, 8)
	o := arrS("o", 0x3000, 8)
	k := &kernel.Kernel{Name: "ord", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "ord", Body: []kernel.Stmt{
			{Dst: y, E: &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: y}, R: &kernel.Ref{Arr: z}}},
			{Dst: o, E: &kernel.Ref{Arr: y}},
		}},
	}}
	c := mustCompile(t, k)
	ops := opSequence(c)
	storeIdx, reloadIdx := -1, -1
	for i, op := range ops {
		if op == isa.OpVStore && storeIdx < 0 {
			storeIdx = i
		}
		if op == isa.OpVLoad && storeIdx >= 0 && reloadIdx < 0 {
			reloadIdx = i
		}
	}
	if storeIdx < 0 || reloadIdx < 0 || reloadIdx < storeIdx {
		t.Fatalf("post-store reload misplaced (store@%d reload@%d): %v", storeIdx, reloadIdx, ops)
	}
}

func TestHoistBoundedByRegisterPressure(t *testing.T) {
	// A 9-statement stencil references 10 input arrays; only
	// hoistBudget loads may be lifted, and compilation must succeed.
	l := &kernel.VectorLoop{Name: "wide"}
	var ins []*kernel.Array
	for i := 0; i < 10; i++ {
		ins = append(ins, arrS("in", uint64(0x1000*(i+1)), 8))
	}
	for kk := 0; kk < 9; kk++ {
		out := arrS("out", uint64(0x100000*(kk+1)), 8)
		l.Body = append(l.Body, kernel.Stmt{
			Dst: out,
			E:   &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: ins[kk]}, R: &kernel.Ref{Arr: ins[kk+1]}},
		})
	}
	c := mustCompile(t, &kernel.Kernel{Name: "wide", Units: []kernel.Unit{l}})
	ops := opSequence(c)
	leading := 0
	for _, op := range ops {
		if op != isa.OpVLoad {
			break
		}
		leading++
	}
	if leading != hoistBudget {
		t.Fatalf("leading hoisted loads = %d, want %d", leading, hoistBudget)
	}
	// The full trace still replays and covers all statements.
	tr, err := c.Trace([]Invocation{{Unit: 0, N: 256}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Stream().Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestHoistImprovesPortOverlap(t *testing.T) {
	// Structural check that motivates the hoist: in the emitted body the
	// number of memory instructions before the first arithmetic op is at
	// least 2 for a 2-statement loop (without hoisting it would be 2
	// loads for statement 1 only, interleaved with its compute).
	in0 := arrS("a", 0x1000, 8)
	in1 := arrS("b", 0x2000, 8)
	o0 := arrS("c", 0x3000, 8)
	o1 := arrS("d", 0x4000, 8)
	k := &kernel.Kernel{Name: "ov", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "ov", Body: []kernel.Stmt{
			{Dst: o0, E: &kernel.Bin{Op: kernel.Mul, L: &kernel.Ref{Arr: in0}, R: &kernel.Ref{Arr: in0}}},
			{Dst: o1, E: &kernel.Bin{Op: kernel.Mul, L: &kernel.Ref{Arr: in1}, R: &kernel.Ref{Arr: in1}}},
		}},
	}}
	c := mustCompile(t, k)
	ops := opSequence(c)
	if ops[0] != isa.OpVLoad || ops[1] != isa.OpVLoad {
		t.Fatalf("both loads should lead the body: %v", ops)
	}
}
