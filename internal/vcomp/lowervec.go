package vcomp

import (
	"fmt"
	"sort"
	"strings"

	"mtvec/internal/arch"
	"mtvec/internal/isa"
	"mtvec/internal/kernel"
	"mtvec/internal/prog"
)

// Register conventions in lowered code:
//
//	a0  strip counter (decremented each strip)
//	a1  element index cursor
//	a2+ array base registers (cycling)
//	s0  reserved (always ready)
//	s1+ scalar arguments and reduction targets
const (
	regCount = 0
	regIndex = 1
	aBaseLo  = 2
)

var binOpTable = map[kernel.BinOp]isa.Op{
	kernel.Add:   isa.OpVAdd,
	kernel.Sub:   isa.OpVSub,
	kernel.Mul:   isa.OpVMul,
	kernel.Div:   isa.OpVDiv,
	kernel.And:   isa.OpVAnd,
	kernel.Or:    isa.OpVOr,
	kernel.Xor:   isa.OpVXor,
	kernel.CmpGT: isa.OpVCmp,
	kernel.Merge: isa.OpVMerge,
}

var unOpTable = map[kernel.UnOp]isa.Op{
	kernel.Sqrt: isa.OpVSqrt,
	kernel.Shl:  isa.OpVShl,
	kernel.Shr:  isa.OpVShr,
}

// value is an operand produced during expression lowering.
type value struct {
	reg    uint8
	temp   bool          // freshly-allocated temporary, freed on release
	arr    *kernel.Array // cached load, refcounted via uses
	scalar bool          // S register broadcast
}

type vlower struct {
	loop  *kernel.VectorLoop
	insts []isa.Inst
	slots []slot

	rf     arch.RegFile
	budget int // registers hoisted loads may hold (hoistBudget at default shape)

	regs  vregAlloc
	sregs *sregAlloc

	uses  map[*kernel.Array]int   // remaining Ref consumptions
	cache map[*kernel.Array]uint8 // materialized loads

	abase map[*kernel.Array]uint8
	anext uint8

	curVS       int64
	firstStride int64
	haveStride  bool
}

// lowerVector lowers one vector loop, appending its entry/body/tail blocks
// to p.
func lowerVector(p *prog.Program, l *kernel.VectorLoop, opts Options) (*unitCode, error) {
	rf := opts.RegFile.Normalize()
	lo := &vlower{
		loop:   l,
		rf:     rf,
		budget: rf.VRegs - (isa.NumV - hoistBudget),
		sregs:  newSRegAlloc(),
		uses:   make(map[*kernel.Array]int),
		cache:  make(map[*kernel.Array]uint8),
		abase:  make(map[*kernel.Array]uint8),
		anext:  aBaseLo,
	}
	lo.regs.setShape(rf)
	if lo.budget < 0 {
		lo.budget = 0
	}
	lo.countUses()

	// The Convex compiler scheduled vector instructions "taking the lack
	// of load chaining into account" (Section 3): loads are hoisted to
	// the top of the strip body, as far as register pressure and
	// store-load orderings allow, so later statements' memory traffic
	// overlaps earlier statements' compute.
	if !opts.NoHoist {
		if err := lo.hoistLoads(); err != nil {
			return nil, fmt.Errorf("%s: hoisting loads: %w", l.Name, err)
		}
	}

	for i := range l.Body {
		if err := lo.stmt(&l.Body[i]); err != nil {
			return nil, fmt.Errorf("%s: stmt %d: %w", l.Name, i, err)
		}
	}
	if err := lo.checkDrained(); err != nil {
		return nil, fmt.Errorf("%s: %w", l.Name, err)
	}

	// Stride wrap rule: if the body leaves VS different from what its
	// first memory instruction needs, re-establish it at the loop top so
	// iterations after the first see the right stride.
	if lo.haveStride && lo.curVS != lo.firstStride {
		lo.insts = append([]isa.Inst{{Op: isa.OpSetVS, Src1: isa.A(regIndex)}}, lo.insts...)
		lo.slots = append([]slot{{kind: slotStride, stride: lo.firstStride}}, lo.slots...)
	}

	// Entry: base-register setup, stride, vector length, loop counters.
	var entry prog.BasicBlock
	entry.Label = l.Name + ".entry"
	entry.Insts = append(entry.Insts,
		isa.Inst{Op: isa.OpMovI, Dst: isa.A(regCount), Src2: isa.Imm()},
		isa.Inst{Op: isa.OpMovI, Dst: isa.A(regIndex), Src2: isa.Imm()},
	)
	seenBase := make(map[uint8]bool)
	for _, a := range l.Arrays() {
		r, ok := lo.abase[a]
		if !ok || seenBase[r] {
			continue
		}
		seenBase[r] = true
		entry.Insts = append(entry.Insts,
			isa.Inst{Op: isa.OpMovI, Dst: isa.A(r), Src2: isa.Imm(), Imm: int64(a.Base)})
	}
	var entrySlots []slot
	if lo.haveStride {
		entry.Insts = append(entry.Insts, isa.Inst{Op: isa.OpSetVS, Src1: isa.A(regIndex)})
		entrySlots = append(entrySlots, slot{kind: slotStride, stride: lo.firstStride})
	}
	entry.Insts = append(entry.Insts, isa.Inst{Op: isa.OpSetVL, Src1: isa.A(regIndex)})
	entrySlots = append(entrySlots, slot{kind: slotVL})

	// Body: lowered vector code plus strip control.
	body := prog.BasicBlock{Label: l.Name + ".body"}
	body.Insts = append(body.Insts, lo.insts...)
	body.Insts = append(body.Insts,
		isa.Inst{Op: isa.OpAAdd, Dst: isa.A(regIndex), Src1: isa.A(regIndex), Src2: isa.Imm(), Imm: int64(rf.VLen) * isa.ElemBytes},
		isa.Inst{Op: isa.OpAAdd, Dst: isa.A(regCount), Src1: isa.A(regCount), Src2: isa.Imm(), Imm: -1},
		isa.Inst{Op: isa.OpBr, Src1: isa.A(regCount)},
	)

	// Tail: remainder strip under a reduced vector length.
	tail := prog.BasicBlock{Label: l.Name + ".tail"}
	tail.Insts = append(tail.Insts, isa.Inst{Op: isa.OpSetVL, Src1: isa.A(regIndex)})
	tail.Insts = append(tail.Insts, lo.insts...)
	tailSlots := append([]slot{{kind: slotVL}}, lo.slots...)

	base := len(p.Blocks)
	p.Blocks = append(p.Blocks, entry, body, tail)

	uc := &unitCode{
		name:       l.Name,
		entry:      base,
		body:       base + 1,
		tail:       base + 2,
		entrySlots: entrySlots,
		bodySlots:  lo.slots,
		tailSlots:  tailSlots,
	}
	uc.entryScalar, _ = countBlock(&p.Blocks[base])
	uc.bodyScalar, uc.bodyVec = countBlock(&p.Blocks[base+1])
	uc.tailScalar, uc.tailVec = countBlock(&p.Blocks[base+2])
	return uc, nil
}

// hoistBudget caps registers held by hoisted loads on the default
// register file, leaving 3 registers for expression temporaries; other
// shapes scale the budget with their register count (vlower.budget).
const hoistBudget = isa.NumV - 3

// hoistLoads materializes statement operands early, in statement order.
// A load is hoisted only if no earlier statement stores to its array
// (the later read must see the stored value, which the cache-invalidation
// logic provides by reloading after the store).
func (lo *vlower) hoistLoads() error {
	stored := make(map[*kernel.Array]bool)
	var err error
	hoist := func(a *kernel.Array) {
		if err != nil || stored[a] || lo.regs.liveCount() >= lo.budget {
			return
		}
		if _, ok := lo.cache[a]; ok {
			return
		}
		if _, e := lo.evalRefArr(a); e != nil {
			err = e
		}
	}
	for i := range lo.loop.Body {
		st := &lo.loop.Body[i]
		st.E.Walk(func(e kernel.Expr) {
			switch n := e.(type) {
			case *kernel.Ref:
				hoist(n.Arr)
			case *kernel.Gather:
				hoist(n.Index)
			}
		})
		if st.ScatterIdx != nil {
			hoist(st.ScatterIdx)
		}
		if err != nil {
			return err
		}
		if st.Dst != nil {
			stored[st.Dst] = true
		}
	}
	return nil
}

// countUses tallies how many times each array is consumed as a vector
// load so cached load registers free exactly at their last use.
func (lo *vlower) countUses() {
	for i := range lo.loop.Body {
		st := &lo.loop.Body[i]
		st.E.Walk(func(e kernel.Expr) {
			switch n := e.(type) {
			case *kernel.Ref:
				lo.uses[n.Arr]++
			case *kernel.Gather:
				lo.uses[n.Index]++
			}
		})
		if st.ScatterIdx != nil {
			lo.uses[st.ScatterIdx]++
		}
	}
}

func (lo *vlower) stmt(st *kernel.Stmt) error {
	v, err := lo.eval(st.E)
	if err != nil {
		return err
	}
	if v.scalar {
		return fmt.Errorf("statement value is scalar; nothing to vectorize")
	}
	switch {
	case st.Reduce != "":
		s, err := lo.sregs.get(st.Reduce)
		if err != nil {
			return err
		}
		lo.emit(isa.Inst{Op: isa.OpVRedAdd, Dst: isa.S(s), Src1: isa.V(v.reg)})
		lo.release(v)
	case st.ScatterIdx != nil:
		iv, err := lo.evalRefArr(st.ScatterIdx)
		if err != nil {
			return err
		}
		lo.emit(isa.Inst{Op: isa.OpVScatter, Src1: isa.V(v.reg), Src2: isa.V(iv.reg)})
		lo.addrSlot(st.Dst, false)
		lo.release(v)
		lo.release(iv)
		lo.invalidate(st.Dst)
	default:
		if err := lo.ensureVS(st.Dst.Stride); err != nil {
			return err
		}
		lo.emit(isa.Inst{Op: isa.OpVStore, Src1: isa.V(v.reg), Src2: isa.A(lo.base(st.Dst))})
		lo.addrSlot(st.Dst, true)
		lo.release(v)
		lo.invalidate(st.Dst)
	}
	return nil
}

func (lo *vlower) eval(e kernel.Expr) (value, error) {
	switch n := e.(type) {
	case *kernel.Ref:
		return lo.evalRefArr(n.Arr)
	case *kernel.Gather:
		return lo.evalGather(n)
	case *kernel.ScalarArg:
		s, err := lo.sregs.get(n.Name)
		if err != nil {
			return value{}, err
		}
		return value{reg: s, scalar: true}, nil
	case *kernel.Bin:
		return lo.evalBin(n)
	case *kernel.Un:
		return lo.evalUn(n)
	}
	return value{}, fmt.Errorf("unknown expression type %T", e)
}

func (lo *vlower) evalRefArr(a *kernel.Array) (value, error) {
	if r, ok := lo.cache[a]; ok {
		return value{reg: r, arr: a}, nil
	}
	if err := lo.ensureVS(a.Stride); err != nil {
		return value{}, err
	}
	r, err := lo.regs.alloc()
	if err != nil {
		return value{}, err
	}
	lo.emit(isa.Inst{Op: isa.OpVLoad, Dst: isa.V(r), Src1: isa.A(lo.base(a))})
	lo.addrSlot(a, true)
	lo.cache[a] = r
	return value{reg: r, arr: a}, nil
}

func (lo *vlower) evalGather(g *kernel.Gather) (value, error) {
	iv, err := lo.evalRefArr(g.Index)
	if err != nil {
		return value{}, err
	}
	r, err := lo.regs.alloc()
	if err != nil {
		return value{}, err
	}
	lo.emit(isa.Inst{Op: isa.OpVGather, Dst: isa.V(r), Src1: isa.V(iv.reg), Src2: isa.A(lo.base(g.Data))})
	lo.addrSlotBase(g.Data)
	lo.release(iv)
	return value{reg: r, temp: true}, nil
}

func (lo *vlower) evalBin(b *kernel.Bin) (value, error) {
	lv, err := lo.eval(b.L)
	if err != nil {
		return value{}, err
	}
	rv, err := lo.eval(b.R)
	if err != nil {
		return value{}, err
	}
	if lv.scalar && rv.scalar {
		return value{}, fmt.Errorf("scalar%sscalar is not a vector expression", b.Op)
	}
	if lv.scalar || rv.scalar {
		var op isa.Op
		switch b.Op {
		case kernel.Add:
			op = isa.OpVAddS
		case kernel.Mul:
			op = isa.OpVMulS
		default:
			return value{}, fmt.Errorf("scalar operand requires + or *, have %s", b.Op)
		}
		vec, sc := lv, rv
		if lv.scalar {
			vec, sc = rv, lv
		}
		dst, err := lo.regs.alloc()
		if err != nil {
			return value{}, err
		}
		lo.emit(isa.Inst{Op: op, Dst: isa.V(dst), Src1: isa.V(vec.reg), Src2: isa.S(sc.reg)})
		lo.release(vec)
		return value{reg: dst, temp: true}, nil
	}
	op, ok := binOpTable[b.Op]
	if !ok {
		return value{}, fmt.Errorf("unsupported binary operator %s", b.Op)
	}
	dst, err := lo.regs.alloc()
	if err != nil {
		return value{}, err
	}
	lo.emit(isa.Inst{Op: op, Dst: isa.V(dst), Src1: isa.V(lv.reg), Src2: isa.V(rv.reg)})
	lo.release(lv)
	lo.release(rv)
	return value{reg: dst, temp: true}, nil
}

func (lo *vlower) evalUn(u *kernel.Un) (value, error) {
	xv, err := lo.eval(u.X)
	if err != nil {
		return value{}, err
	}
	if xv.scalar {
		return value{}, fmt.Errorf("unary %s of a scalar is not a vector expression", u.Op)
	}
	op, ok := unOpTable[u.Op]
	if !ok {
		return value{}, fmt.Errorf("unsupported unary operator %s", u.Op)
	}
	dst, err := lo.regs.alloc()
	if err != nil {
		return value{}, err
	}
	lo.emit(isa.Inst{Op: op, Dst: isa.V(dst), Src1: isa.V(xv.reg)})
	lo.release(xv)
	return value{reg: dst, temp: true}, nil
}

func (lo *vlower) emit(in isa.Inst) { lo.insts = append(lo.insts, in) }

func (lo *vlower) addrSlot(a *kernel.Array, walk bool) {
	lo.slots = append(lo.slots, slot{kind: slotAddr, base: a.Base, stride: a.Stride, walk: walk})
}

func (lo *vlower) addrSlotBase(a *kernel.Array) {
	lo.slots = append(lo.slots, slot{kind: slotAddr, base: a.Base})
}

// ensureVS makes the vector stride register hold stride at this point of
// the body, emitting a SetVS if it changed.
func (lo *vlower) ensureVS(stride int64) error {
	if !lo.haveStride {
		lo.haveStride = true
		lo.firstStride = stride
		lo.curVS = stride
		return nil // the entry block installs the first stride
	}
	if lo.curVS != stride {
		lo.emit(isa.Inst{Op: isa.OpSetVS, Src1: isa.A(regIndex)})
		lo.slots = append(lo.slots, slot{kind: slotStride, stride: stride})
		lo.curVS = stride
	}
	return nil
}

// release returns a value's register when its last consumer is done.
func (lo *vlower) release(v value) {
	switch {
	case v.scalar:
	case v.temp:
		lo.regs.free(v.reg)
	case v.arr != nil:
		lo.uses[v.arr]--
		if lo.uses[v.arr] == 0 {
			if r, ok := lo.cache[v.arr]; ok {
				lo.regs.free(r)
				delete(lo.cache, v.arr)
			}
		}
	}
}

// invalidate drops a cached load after its array is stored to; later
// reads must reload.
func (lo *vlower) invalidate(a *kernel.Array) {
	if r, ok := lo.cache[a]; ok {
		lo.regs.free(r)
		delete(lo.cache, a)
	}
}

// checkDrained asserts the allocator invariant: after lowering the whole
// body every vector register is free and every counted use was consumed.
func (lo *vlower) checkDrained() error {
	if n := lo.regs.liveCount(); n != 0 {
		return fmt.Errorf("internal: %d vector registers leaked", n)
	}
	var bad []string
	for a, n := range lo.uses {
		if n != 0 {
			bad = append(bad, fmt.Sprintf("array %s has %d unconsumed uses", a.Name, n))
		}
	}
	if len(bad) > 0 {
		// Sorted so the diagnostic does not depend on map iteration order.
		sort.Strings(bad)
		return fmt.Errorf("internal: %s", strings.Join(bad, "; "))
	}
	return nil
}

// base returns (assigning on first use) the A register holding a's base.
func (lo *vlower) base(a *kernel.Array) uint8 {
	if r, ok := lo.abase[a]; ok {
		return r
	}
	r := lo.anext
	lo.abase[a] = r
	lo.anext++
	if lo.anext >= isa.NumA {
		lo.anext = aBaseLo
	}
	return r
}
