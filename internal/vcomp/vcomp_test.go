package vcomp

import (
	"strings"
	"testing"

	"mtvec/internal/isa"
	"mtvec/internal/kernel"
	"mtvec/internal/prog"
)

func arrS(name string, base uint64, stride int64) *kernel.Array {
	return &kernel.Array{Name: name, Base: base, Stride: stride}
}

// axpy: y[i] = a*x[i] + y[i]
func axpyKernel() *kernel.Kernel {
	x := arrS("x", 0x10000, 8)
	y := arrS("y", 0x20000, 8)
	return &kernel.Kernel{Name: "axpy", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "axpy", Body: []kernel.Stmt{{
			Dst: y,
			E: &kernel.Bin{Op: kernel.Add,
				L: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "a"}, R: &kernel.Ref{Arr: x}},
				R: &kernel.Ref{Arr: y}},
		}}},
	}}
}

func mustCompile(t *testing.T, k *kernel.Kernel) *Compiled {
	t.Helper()
	c, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileAxpyShape(t *testing.T) {
	c := mustCompile(t, axpyKernel())
	if c.NumUnits() != 1 {
		t.Fatalf("units = %d", c.NumUnits())
	}
	if len(c.Prog.Blocks) != 3 {
		t.Fatalf("blocks = %d, want entry/body/tail", len(c.Prog.Blocks))
	}
	body := c.Prog.Blocks[1]
	var ops []string
	for _, in := range body.Insts {
		ops = append(ops, in.Op.String())
	}
	joined := strings.Join(ops, " ")
	// Two loads, a vector-scalar multiply, an add, a store, then control.
	for _, want := range []string{"vload", "vmuls", "vadd", "vstore", "aadd", "br"} {
		if !strings.Contains(joined, want) {
			t.Errorf("body %q missing %s", joined, want)
		}
	}
	// Single uniform stride: no SetVS inside the body.
	if strings.Contains(joined, "setvs") {
		t.Errorf("uniform-stride body should not re-set VS: %q", joined)
	}
	// 5 vector instructions, 3 control scalars.
	var uc = c.units[0]
	if uc.bodyVec != 5 || uc.bodyScalar != 3 {
		t.Errorf("body counts: vec=%d scalar=%d, want 5/3", uc.bodyVec, uc.bodyScalar)
	}
}

func TestTraceEmissionFullAndRemainder(t *testing.T) {
	c := mustCompile(t, axpyKernel())
	tr, err := c.Trace([]Invocation{{Unit: 0, N: 300}})
	if err != nil {
		t.Fatal(err)
	}
	// 300 = 2 full strips + remainder 44: entry + 2 bodies + tail.
	if len(tr.BBs) != 4 {
		t.Fatalf("BBs = %v", tr.BBs)
	}
	if tr.BBs[0] != 0 || tr.BBs[1] != 1 || tr.BBs[2] != 1 || tr.BBs[3] != 2 {
		t.Fatalf("BBs = %v", tr.BBs)
	}
	// VL trace: entry 128, tail 44.
	if len(tr.VLs) != 2 || tr.VLs[0] != 128 || tr.VLs[1] != 44 {
		t.Fatalf("VLs = %v", tr.VLs)
	}
	// One stride install (uniform).
	if len(tr.Strides) != 1 || tr.Strides[0] != 8 {
		t.Fatalf("Strides = %v", tr.Strides)
	}
	// 3 memory instructions per strip execution × 3 strips.
	if len(tr.Addrs) != 9 {
		t.Fatalf("Addrs = %v", tr.Addrs)
	}
	// Strip 1 addresses advance by 128 elements.
	if tr.Addrs[3] != 0x10000+128*8 {
		t.Fatalf("strip-1 x address = %#x", tr.Addrs[3])
	}
	// Tail addresses advance by 256 elements.
	if tr.Addrs[6] != 0x10000+256*8 {
		t.Fatalf("tail x address = %#x", tr.Addrs[6])
	}
}

func TestTraceShortLoop(t *testing.T) {
	// N < MaxVL: entry + tail only, both at VL=N.
	c := mustCompile(t, axpyKernel())
	tr, err := c.Trace([]Invocation{{Unit: 0, N: 22}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.BBs) != 2 || tr.BBs[0] != 0 || tr.BBs[1] != 2 {
		t.Fatalf("BBs = %v", tr.BBs)
	}
	if len(tr.VLs) != 2 || tr.VLs[0] != 22 || tr.VLs[1] != 22 {
		t.Fatalf("VLs = %v", tr.VLs)
	}
}

func TestTraceExactMultiple(t *testing.T) {
	// N divisible by MaxVL: no tail.
	c := mustCompile(t, axpyKernel())
	tr, err := c.Trace([]Invocation{{Unit: 0, N: 256}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.BBs) != 3 {
		t.Fatalf("BBs = %v", tr.BBs)
	}
	for _, b := range tr.BBs[1:] {
		if b != 1 {
			t.Fatalf("BBs = %v, want body blocks only", tr.BBs)
		}
	}
}

func TestTraceZeroAndNegative(t *testing.T) {
	c := mustCompile(t, axpyKernel())
	tr, err := c.Trace([]Invocation{{Unit: 0, N: 0}})
	if err != nil || len(tr.BBs) != 0 {
		t.Fatalf("N=0 should emit nothing: %v %v", tr.BBs, err)
	}
	if _, err := c.Trace([]Invocation{{Unit: 0, N: -5}}); err == nil {
		t.Fatal("negative trip count accepted")
	}
	if _, err := c.Trace([]Invocation{{Unit: 3, N: 5}}); err == nil {
		t.Fatal("bad unit index accepted")
	}
}

func TestExpandedStreamIsValid(t *testing.T) {
	// The emitted trace must expand cleanly and match the estimates.
	c := mustCompile(t, axpyKernel())
	for _, n := range []int64{1, 22, 127, 128, 129, 300, 1000} {
		tr, err := c.Trace([]Invocation{{Unit: 0, N: n}})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := tr.Stream().Drain()
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		sc, vec, vops := c.EstimateInvocation(0, n)
		if st.ScalarInsts != sc || st.VectorInsts != vec || st.VectorOps != vops {
			t.Errorf("N=%d: measured s=%d v=%d ops=%d, estimated s=%d v=%d ops=%d",
				n, st.ScalarInsts, st.VectorInsts, st.VectorOps, sc, vec, vops)
		}
		// Vector ops must cover exactly N elements per vector instruction
		// position: 5 vector insts per strip * N elements total.
		if st.VectorOps != 5*n {
			t.Errorf("N=%d: vector ops = %d, want %d", n, st.VectorOps, 5*n)
		}
	}
}

func TestMixedStrideBodyTracksVS(t *testing.T) {
	// Row walk (stride 8) and column walk (stride 1024) in one body:
	// the compiler must switch VS between the loads and wrap it back.
	row := arrS("row", 0x1000, 8)
	col := arrS("col", 0x100000, 1024)
	out := arrS("out", 0x200000, 8)
	k := &kernel.Kernel{Name: "mixed", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "mixed", Body: []kernel.Stmt{{
			Dst: out,
			E:   &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: row}, R: &kernel.Ref{Arr: col}},
		}}},
	}}
	c := mustCompile(t, k)
	tr, err := c.Trace([]Invocation{{Unit: 0, N: 256}})
	if err != nil {
		t.Fatal(err)
	}
	// Expand and verify each memory instruction executes under its
	// array's stride.
	s := tr.Stream()
	var d isa.DynInst
	wantByAddr := map[uint64]int64{}
	for i := int64(0); i < 2; i++ {
		wantByAddr[0x1000+uint64(i*128*8)] = 8
		wantByAddr[0x100000+uint64(i*128*1024)] = 1024
		wantByAddr[0x200000+uint64(i*128*8)] = 8
	}
	checked := 0
	for s.Next(&d) {
		if d.Op.IsVectorMem() {
			want, ok := wantByAddr[d.Addr]
			if !ok {
				t.Fatalf("unexpected address %#x", d.Addr)
			}
			if d.Stride != want {
				t.Errorf("addr %#x executed under stride %d, want %d", d.Addr, d.Stride, want)
			}
			checked++
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if checked != 6 {
		t.Fatalf("checked %d memory instructions, want 6", checked)
	}
}

func TestGatherScatterReduction(t *testing.T) {
	data := arrS("data", 0x1000, 8)
	idx := arrS("idx", 0x8000, 8)
	out := arrS("out", 0x10000, 8)
	k := &kernel.Kernel{Name: "irr", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "gath", Body: []kernel.Stmt{{
			Dst: out,
			E:   &kernel.Gather{Data: data, Index: idx},
		}}},
		&kernel.VectorLoop{Name: "scat", Body: []kernel.Stmt{{
			Dst: out, ScatterIdx: idx,
			E: &kernel.Ref{Arr: data},
		}}},
		&kernel.VectorLoop{Name: "red", Body: []kernel.Stmt{{
			Reduce: "sum",
			E:      &kernel.Bin{Op: kernel.Mul, L: &kernel.Ref{Arr: data}, R: &kernel.Ref{Arr: out}},
		}}},
	}}
	c := mustCompile(t, k)
	tr, err := c.Trace([]Invocation{{Unit: 0, N: 128}, {Unit: 1, N: 128}, {Unit: 2, N: 128}})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := tr.Stream().Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.PerOp[isa.OpVGather] != 1 || st.PerOp[isa.OpVScatter] != 1 || st.PerOp[isa.OpVRedAdd] != 1 {
		t.Fatalf("per-op: gather=%d scatter=%d red=%d",
			st.PerOp[isa.OpVGather], st.PerOp[isa.OpVScatter], st.PerOp[isa.OpVRedAdd])
	}
}

func TestStoreInvalidatesCachedLoad(t *testing.T) {
	// y read, y written, y read again: the second read must reload.
	y := arrS("y", 0x1000, 8)
	z := arrS("z", 0x2000, 8)
	k := &kernel.Kernel{Name: "inv", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "inv", Body: []kernel.Stmt{
			{Dst: y, E: &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: y}, R: &kernel.Ref{Arr: z}}},
			{Dst: z, E: &kernel.Ref{Arr: y}},
		}},
	}}
	c := mustCompile(t, k)
	body := c.Prog.Blocks[1]
	loads := 0
	for _, in := range body.Insts {
		if in.Op == isa.OpVLoad {
			loads++
		}
	}
	if loads != 3 {
		t.Fatalf("loads in body = %d, want 3 (y reloaded after store)", loads)
	}
}

func TestLoadCachingWithinStatement(t *testing.T) {
	// x used twice in one statement: loaded once.
	x := arrS("x", 0x1000, 8)
	out := arrS("out", 0x2000, 8)
	k := &kernel.Kernel{Name: "sq", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "sq", Body: []kernel.Stmt{{
			Dst: out,
			E:   &kernel.Bin{Op: kernel.Mul, L: &kernel.Ref{Arr: x}, R: &kernel.Ref{Arr: x}},
		}}},
	}}
	c := mustCompile(t, k)
	loads := 0
	for _, in := range c.Prog.Blocks[1].Insts {
		if in.Op == isa.OpVLoad {
			loads++
		}
	}
	if loads != 1 {
		t.Fatalf("loads = %d, want 1", loads)
	}
}

func TestRegisterPressureError(t *testing.T) {
	// 9 simultaneously-live values cannot fit 8 registers.
	var refs []*kernel.Array
	for i := 0; i < 9; i++ {
		refs = append(refs, arrS(strings.Repeat("a", i+1), uint64(0x1000*(i+1)), 8))
	}
	e := kernel.Expr(&kernel.Ref{Arr: refs[0]})
	for i := 1; i < 9; i++ {
		e = &kernel.Bin{Op: kernel.Mul, L: e, R: &kernel.Ref{Arr: refs[i]}}
	}
	// Build a right-deep tree instead: all 9 loads live before any mul.
	e2 := kernel.Expr(&kernel.Ref{Arr: refs[8]})
	for i := 7; i >= 0; i-- {
		e2 = &kernel.Bin{Op: kernel.Mul, L: &kernel.Ref{Arr: refs[i]}, R: e2}
	}
	k := &kernel.Kernel{Name: "press", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "press", Body: []kernel.Stmt{{Dst: refs[0], E: e2}}},
	}}
	if _, err := Compile(k); err == nil || !strings.Contains(err.Error(), "register pressure") {
		t.Fatalf("err = %v, want register pressure", err)
	}
	// The left-deep tree fits: temporaries are consumed eagerly.
	k2 := &kernel.Kernel{Name: "ok", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "ok", Body: []kernel.Stmt{{Dst: refs[0], E: e}}},
	}}
	if _, err := Compile(k2); err != nil {
		t.Fatalf("left-deep tree should compile: %v", err)
	}
}

func TestBankSpreadingHeuristic(t *testing.T) {
	// Allocating four registers with none freed must land them in four
	// distinct banks.
	var a vregAlloc
	banks := make(map[int]bool)
	for i := 0; i < 4; i++ {
		r, err := a.alloc()
		if err != nil {
			t.Fatal(err)
		}
		banks[isa.VBank(r)] = true
	}
	if len(banks) != 4 {
		t.Fatalf("4 live registers span %d banks, want 4", len(banks))
	}
}

func TestScalarScalarRejected(t *testing.T) {
	out := arrS("out", 0x1000, 8)
	k := &kernel.Kernel{Name: "ss", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "ss", Body: []kernel.Stmt{{
			Dst: out,
			E:   &kernel.Bin{Op: kernel.Add, L: &kernel.ScalarArg{Name: "a"}, R: &kernel.ScalarArg{Name: "b"}},
		}}},
	}}
	if _, err := Compile(k); err == nil {
		t.Fatal("scalar-scalar expression accepted")
	}
	// Scalar with unsupported operator.
	k2 := &kernel.Kernel{Name: "sd", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "sd", Body: []kernel.Stmt{{
			Dst: out,
			E:   &kernel.Bin{Op: kernel.Div, L: &kernel.Ref{Arr: out}, R: &kernel.ScalarArg{Name: "a"}},
		}}},
	}}
	if _, err := Compile(k2); err == nil {
		t.Fatal("scalar divide accepted")
	}
}

func TestScalarLoopLowering(t *testing.T) {
	k := &kernel.Kernel{Name: "s", Units: []kernel.Unit{
		&kernel.ScalarLoop{Name: "s", Loads: 2, Stores: 1, IntOps: 2, FPOps: 1, FPDivs: 1},
	}}
	c := mustCompile(t, k)
	if len(c.Prog.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(c.Prog.Blocks))
	}
	// Body: 2+1+2+1+1 ops + 3 control = 10 instructions.
	if got := len(c.Prog.Blocks[1].Insts); got != 10 {
		t.Fatalf("body insts = %d, want 10", got)
	}
	tr, err := c.Trace([]Invocation{{Unit: 0, N: 100}})
	if err != nil {
		t.Fatal(err)
	}
	n, st, err := tr.Stream().Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2+100*10 {
		t.Fatalf("dynamic insts = %d", n)
	}
	if st.VectorInsts != 0 || st.ScalarMemRefs != 300 {
		t.Fatalf("stats: %+v", st)
	}
	// Addresses advance per iteration.
	if tr.Addrs[3] != tr.Addrs[0]+8 {
		t.Fatalf("iteration addresses: %#x then %#x", tr.Addrs[0], tr.Addrs[3])
	}
}

func TestEstimateMatchesForScalarLoop(t *testing.T) {
	k := &kernel.Kernel{Name: "s", Units: []kernel.Unit{
		&kernel.ScalarLoop{Name: "s", Loads: 1, Stores: 1, IntOps: 1, FPOps: 1},
	}}
	c := mustCompile(t, k)
	sc, vec, vops := c.EstimateInvocation(0, 50)
	tr, _ := c.Trace([]Invocation{{Unit: 0, N: 50}})
	_, st, err := tr.Stream().Drain()
	if err != nil {
		t.Fatal(err)
	}
	if sc != st.ScalarInsts || vec != st.VectorInsts || vops != st.VectorOps {
		t.Fatalf("estimate (%d,%d,%d) != measured (%d,%d,%d)",
			sc, vec, vops, st.ScalarInsts, st.VectorInsts, st.VectorOps)
	}
}

func TestUnitIndex(t *testing.T) {
	c := mustCompile(t, axpyKernel())
	if c.UnitIndex("axpy") != 0 || c.UnitIndex("nope") != -1 {
		t.Fatal("UnitIndex lookup broken")
	}
}

func TestCompiledProgramValidates(t *testing.T) {
	// Every generated program must pass prog.Validate (Compile already
	// checks, but assert the invariant explicitly on a complex kernel).
	data := arrS("d", 0x1000, 8)
	idx := arrS("i", 0x8000, 8)
	out := arrS("o", 0x10000, 8)
	k := &kernel.Kernel{Name: "big", Units: []kernel.Unit{
		&kernel.VectorLoop{Name: "v1", Body: []kernel.Stmt{
			{Dst: out, E: &kernel.Un{Op: kernel.Sqrt, X: &kernel.Ref{Arr: data}}},
			{Reduce: "acc", E: &kernel.Gather{Data: data, Index: idx}},
		}},
		&kernel.ScalarLoop{Name: "s1", Loads: 2, Stores: 1, IntOps: 3, FPOps: 2},
	}}
	c := mustCompile(t, k)
	var p *prog.Program = c.Prog
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
