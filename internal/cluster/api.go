package cluster

// The wire schema shared by every mtvserve role: request/response
// shapes for runs and sweeps, plus the helpers that resolve them into
// engine RunSpecs. The coordinator speaks the same /api/v1/sweep shape
// to workers that clients speak to it — a sub-sweep is just a sweep
// whose points are listed explicitly instead of spanned by axes.

import (
	"errors"
	"fmt"

	"mtvec"
)

// MaxSweepPoints bounds one sweep request's point count (explicit or
// cross-product).
const MaxSweepPoints = 4096

// RunRequest declares one simulation point over the paper's main axes.
// Zero values keep the session defaults (the reference machine at
// 50-cycle latency).
type RunRequest struct {
	// Mode is solo (default), group, or queue — the paper's three run
	// methodologies.
	Mode string `json:"mode,omitempty"`
	// Programs are catalog tags or names (tf, swm256, ...). Solo takes
	// exactly one; group runs the first as primary with the rest as
	// restarting companions; queue drains them all.
	Programs   []string `json:"programs"`
	Contexts   int      `json:"contexts,omitempty"`
	Latency    int      `json:"latency,omitempty"`
	Xbar       int      `json:"xbar,omitempty"`
	Policy     string   `json:"policy,omitempty"`
	DualScalar bool     `json:"dual_scalar,omitempty"`
	IssueWidth int      `json:"issue_width,omitempty"`
	LoadPorts  int      `json:"load_ports,omitempty"`
	StorePorts int      `json:"store_ports,omitempty"`
	Banks      int      `json:"banks,omitempty"`
	BankBusy   int      `json:"bank_busy,omitempty"`
	Spans      bool     `json:"spans,omitempty"`
	MaxCycles  int64    `json:"max_cycles,omitempty"`
	// ProgressStride sets the simulated-cycle interval between progress
	// events on the stream endpoint (0 = the engine default, 65536).
	ProgressStride int64 `json:"progress_stride,omitempty"`
}

// options translates the request's machine axes into run options.
func (rq RunRequest) options() []mtvec.RunOption {
	var opts []mtvec.RunOption
	if rq.Contexts > 0 {
		opts = append(opts, mtvec.WithContexts(rq.Contexts))
	}
	if rq.Latency > 0 {
		opts = append(opts, mtvec.WithMemLatency(rq.Latency))
	}
	if rq.Xbar > 0 {
		opts = append(opts, mtvec.WithXbar(rq.Xbar))
	}
	if rq.Policy != "" {
		opts = append(opts, mtvec.WithPolicy(rq.Policy))
	}
	if rq.DualScalar {
		opts = append(opts, mtvec.WithDualScalar(true))
	}
	if rq.IssueWidth > 0 {
		opts = append(opts, mtvec.WithIssueWidth(rq.IssueWidth))
	}
	if rq.LoadPorts > 0 || rq.StorePorts > 0 {
		opts = append(opts, mtvec.WithMemPorts(rq.LoadPorts, rq.StorePorts))
	}
	if rq.Banks > 0 || rq.BankBusy > 0 {
		opts = append(opts, mtvec.WithMemBanks(rq.Banks, rq.BankBusy))
	}
	if rq.Spans {
		opts = append(opts, mtvec.WithSpans())
	}
	if rq.MaxCycles > 0 {
		opts = append(opts, mtvec.WithMaxCycles(rq.MaxCycles))
	}
	if rq.ProgressStride > 0 {
		opts = append(opts, mtvec.WithProgressStride(rq.ProgressStride))
	}
	return opts
}

// at returns a copy of the request with the point's axes applied (zero
// axis values keep the base).
func (rq RunRequest) at(pt PointAxes) RunRequest {
	if pt.Contexts > 0 {
		rq.Contexts = pt.Contexts
	}
	if pt.Latency > 0 {
		rq.Latency = pt.Latency
	}
	if pt.Policy != "" {
		rq.Policy = pt.Policy
	}
	return rq
}

// ResolveSpec resolves the request into a validated RunSpec, building
// (or reusing) the named workloads through the Env's memoized cache.
func ResolveSpec(env *mtvec.Env, rq RunRequest, extra ...mtvec.RunOption) (mtvec.RunSpec, error) {
	var zero mtvec.RunSpec
	if len(rq.Programs) == 0 {
		return zero, errors.New("programs: need at least one catalog tag or name")
	}
	ws := make([]*mtvec.Workload, len(rq.Programs))
	for i, tag := range rq.Programs {
		wspec := mtvec.WorkloadByShort(tag)
		if wspec == nil {
			wspec = mtvec.WorkloadByName(tag)
		}
		if wspec == nil {
			return zero, fmt.Errorf("unknown program %q", tag)
		}
		w, err := env.W(wspec.Short)
		if err != nil {
			return zero, err
		}
		ws[i] = w
	}
	opts := append(rq.options(), extra...)
	var spec mtvec.RunSpec
	switch rq.Mode {
	case "", "solo":
		if len(ws) != 1 {
			return zero, fmt.Errorf("solo mode takes exactly one program, have %d", len(ws))
		}
		spec = mtvec.Solo(ws[0], opts...)
	case "group":
		spec = mtvec.Group(ws[0], ws[1:], opts...)
	case "queue":
		spec = mtvec.Queue(ws, opts...)
	default:
		return zero, fmt.Errorf("unknown mode %q (solo | group | queue)", rq.Mode)
	}
	if err := spec.Validate(); err != nil {
		return zero, err
	}
	return spec, nil
}

// RunResponse is one answered simulation point.
type RunResponse struct {
	// Cache names the tier that answered: sim | memo | store | peer.
	Cache     string        `json:"cache"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Report    *mtvec.Report `json:"report"`
}

// PointAxes identifies one sweep point by its axis values; a zero axis
// keeps the base request's value.
type PointAxes struct {
	Contexts int    `json:"contexts,omitempty"`
	Latency  int    `json:"latency,omitempty"`
	Policy   string `json:"policy,omitempty"`
}

// SweepRequest fans one base request out over points: either the cross
// product of the non-empty axis lists, or — for sub-sweeps the
// coordinator sends its workers — an explicit point list. An empty axis
// keeps the base value; Points and axes are mutually exclusive.
type SweepRequest struct {
	Base      RunRequest `json:"base"`
	Contexts  []int      `json:"contexts,omitempty"`
	Latencies []int      `json:"latencies,omitempty"`
	Policies  []string   `json:"policies,omitempty"`
	// Points lists the sweep's points explicitly. Arbitrary coordinator
	// shards are not expressible as a cross product, so sub-sweeps
	// always use this form; clients may too.
	Points []PointAxes `json:"points,omitempty"`
}

// Expand returns the sweep's points in request order.
func (rq SweepRequest) Expand() ([]PointAxes, error) {
	if len(rq.Points) > 0 {
		if len(rq.Contexts) > 0 || len(rq.Latencies) > 0 || len(rq.Policies) > 0 {
			return nil, errors.New("sweep: points and axis lists are mutually exclusive")
		}
		if len(rq.Points) > MaxSweepPoints {
			return nil, fmt.Errorf("sweep of %d points exceeds the %d-point limit", len(rq.Points), MaxSweepPoints)
		}
		return rq.Points, nil
	}
	ctxs, lats, pols := rq.Contexts, rq.Latencies, rq.Policies
	if len(ctxs) == 0 {
		ctxs = []int{0}
	}
	if len(lats) == 0 {
		lats = []int{0}
	}
	if len(pols) == 0 {
		pols = []string{""}
	}
	n := len(ctxs) * len(lats) * len(pols)
	if n > MaxSweepPoints {
		return nil, fmt.Errorf("sweep of %d points exceeds the %d-point limit", n, MaxSweepPoints)
	}
	points := make([]PointAxes, 0, n)
	for _, c := range ctxs {
		for _, l := range lats {
			for _, p := range pols {
				points = append(points, PointAxes{Contexts: c, Latency: l, Policy: p})
			}
		}
	}
	return points, nil
}

// SweepPoint is one point of a sweep response, tagged with the axis
// values that produced it.
type SweepPoint struct {
	Contexts  int           `json:"contexts,omitempty"`
	Latency   int           `json:"latency,omitempty"`
	Policy    string        `json:"policy,omitempty"`
	Cache     string        `json:"cache,omitempty"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Report    *mtvec.Report `json:"report,omitempty"`
	Error     string        `json:"error,omitempty"`
	// Worker is the base URL of the worker that answered the point
	// (coordinator responses only).
	Worker string `json:"worker,omitempty"`
}

// SweepResponse is an answered sweep.
type SweepResponse struct {
	Points []SweepPoint `json:"points"`
	// Simulated / MemoHits / StoreHits / PeerHits partition the answered
	// points by tier; Failed counts points whose run errored.
	Simulated int     `json:"simulated"`
	MemoHits  int     `json:"memo_hits"`
	StoreHits int     `json:"store_hits"`
	PeerHits  int     `json:"peer_hits,omitempty"`
	Failed    int     `json:"failed"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Coordinator-only bookkeeping: points coalesced onto another
	// in-flight request, sub-sweep retries after worker failures, and
	// hedged sub-sweeps raced against slow shards.
	Coalesced int `json:"coalesced,omitempty"`
	Retries   int `json:"retries,omitempty"`
	Hedges    int `json:"hedges,omitempty"`
}

// tally folds the points' cache tags into the response counters.
func (resp *SweepResponse) tally() {
	resp.Simulated, resp.MemoHits, resp.StoreHits, resp.PeerHits, resp.Failed = 0, 0, 0, 0, 0
	for i := range resp.Points {
		switch {
		case resp.Points[i].Error != "":
			resp.Failed++
		case resp.Points[i].Cache == mtvec.RunFromSim.String():
			resp.Simulated++
		case resp.Points[i].Cache == mtvec.RunFromMemo.String():
			resp.MemoHits++
		case resp.Points[i].Cache == mtvec.RunFromStore.String():
			resp.StoreHits++
		case resp.Points[i].Cache == mtvec.RunFromPeer.String():
			resp.PeerHits++
		}
	}
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}
