// Package cluster is the distributed serving tier over the session
// engine: the mtvserve HTTP server (standalone or worker role) and the
// coordinator that shards sweeps across a pool of workers by store
// persist key. See docs/CLUSTER.md for topology, hashing, and failure
// semantics.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mtvec"
	"mtvec/internal/metrics"
	"mtvec/internal/store"
)

// Config configures a standalone or worker Server.
type Config struct {
	// Scale is the workload scale relative to Table 3 millions. Every
	// node of a cluster must run the same scale: the store persist keys
	// the coordinator shards by include it.
	Scale float64
	// Jobs bounds concurrent simulations (<= 0 selects NumCPU).
	Jobs int
	// StoreDir roots the persistent result store ("" = in-memory caches
	// only; such a worker still serves, it just re-simulates after a
	// restart and has no record API for peers to warm from).
	StoreDir string
	// StealAge overrides the store's lock-file steal age (0 = default).
	StealAge time.Duration
	// Peers lists other workers' base URLs; the store becomes a tiered
	// backend that warm-starts from their record APIs before simulating.
	Peers []string
	// Pace pads every gated simulation slot to a minimum wall duration —
	// the capacity-emulation knob for load tests (0 = off; see
	// Session.SetPace and docs/CLUSTER.md).
	Pace time.Duration
}

// Server is one serving node: the full single-node mtvserve API, plus
// the peer record API (with a store) and Prometheus metrics. A
// coordinator treats Servers as workers; standalone deployments expose
// exactly the same surface.
type Server struct {
	env   *mtvec.Env
	ses   *mtvec.Session
	dir   *mtvec.Store // local disk tier; nil without StoreDir
	back  mtvec.StoreBackend
	scale float64
	jobs  int
	start time.Time

	// draining flips readiness: a draining server answers in-flight work
	// and liveness probes but reports 503 on /readyz, so coordinators
	// stop routing new sweeps to it.
	draining atomic.Bool

	reg     *metrics.Registry
	runsBy  *metrics.CounterVec // mtvec_runs_total{source}
	httpReq *metrics.CounterVec // mtvec_http_requests_total{endpoint, code}
	runSec  *metrics.Histogram  // mtvec_run_seconds
}

// NewServer builds a serving node.
func NewServer(cfg Config) (*Server, error) {
	env := mtvec.NewEnv(cfg.Scale)
	env.SetJobs(cfg.Jobs)
	s := &Server{
		env:   env,
		ses:   env.Session(),
		scale: cfg.Scale,
		jobs:  env.Jobs(),
		start: time.Now(),
	}
	if cfg.StoreDir != "" {
		dir, err := mtvec.OpenStoreOptions(cfg.StoreDir, mtvec.StoreOptions{StealAge: cfg.StealAge})
		if err != nil {
			return nil, err
		}
		s.dir = dir
		s.back = dir
	}
	if len(cfg.Peers) > 0 {
		peers := make([]mtvec.StoreBackend, 0, len(cfg.Peers))
		for _, base := range cfg.Peers {
			p, err := mtvec.NewPeerStore(base, nil)
			if err != nil {
				return nil, fmt.Errorf("peer %q: %w", base, err)
			}
			peers = append(peers, p)
		}
		s.back = mtvec.NewTieredStore(s.dir, peers...)
	}
	if s.back != nil {
		env.SetStore(s.back)
	}
	if cfg.Pace > 0 {
		s.ses.SetPace(cfg.Pace)
	}
	s.initMetrics()
	return s, nil
}

// initMetrics builds the node's registry (see docs/CLUSTER.md for the
// catalog).
func (s *Server) initMetrics() {
	r := metrics.NewRegistry()
	s.reg = r
	s.runsBy = r.CounterVec("mtvec_runs_total",
		"Simulation points answered, by cache tier.", "source")
	s.httpReq = r.CounterVec("mtvec_http_requests_total",
		"HTTP requests served, by endpoint and status code.", "endpoint", "code")
	s.runSec = r.Histogram("mtvec_run_seconds",
		"Wall time of answered points (all tiers).", nil)
	r.CounterFunc("mtvec_simulations_total",
		"Machine runs actually executed (cache misses).",
		func() float64 { return float64(s.env.Simulations()) })
	r.GaugeFunc("mtvec_gate_active",
		"Simulations inside the worker gate right now.",
		func() float64 { return float64(s.ses.Active()) })
	r.GaugeFunc("mtvec_gate_limit",
		"Worker gate admission limit (jobs).",
		func() float64 { return float64(s.jobs) })
	r.GaugeFunc("mtvec_draining",
		"1 while the server is draining (readiness down), else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	if s.back != nil {
		stat := func(get func(store.Stats) int64) func() float64 {
			return func() float64 { return float64(get(s.back.Stats())) }
		}
		r.CounterFunc("mtvec_store_hits_total",
			"Store lookups served a verified record.",
			stat(func(st store.Stats) int64 { return st.Hits }))
		r.CounterFunc("mtvec_store_misses_total",
			"Store lookups that missed.",
			stat(func(st store.Stats) int64 { return st.Misses }))
		r.CounterFunc("mtvec_store_writes_total",
			"Records written to the store.",
			stat(func(st store.Stats) int64 { return st.Writes }))
		r.CounterFunc("mtvec_store_corrupt_total",
			"Records dropped for failing verification.",
			stat(func(st store.Stats) int64 { return st.Corrupt }))
		r.CounterFunc("mtvec_store_peer_hits_total",
			"Store hits served by a remote peer tier.",
			stat(func(st store.Stats) int64 { return st.PeerHits }))
	}
}

// Env returns the server's experiment environment (tests and embedding
// callers).
func (s *Server) Env() *mtvec.Env { return s.env }

// Session returns the server's run session.
func (s *Server) Session() *mtvec.Session { return s.ses }

// Metrics returns the server's registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// StartDraining flips the server to draining: /readyz answers 503 from
// now on (so coordinators stop routing to it), while in-flight and even
// new requests still complete — the HTTP shutdown deadline, not this
// flag, bounds them.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// track wraps a handler with the request counter, labelled by a stable
// endpoint name (not the raw path — unbounded label values would leak
// series).
func (s *Server) track(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return instrument(s.httpReq, endpoint, h)
}

// instrument counts one endpoint's requests by status code.
func instrument(reqs *metrics.CounterVec, endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		reqs.With(endpoint, strconv.Itoa(rec.code)).Inc()
	}
}

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (SSE handlers need the flusher).
func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// Handler returns the server's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.track("healthz", s.handleHealth))
	mux.HandleFunc("GET /readyz", s.track("readyz", s.handleReady))
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /api/v1/workloads", s.track("workloads", s.handleWorkloads))
	mux.HandleFunc("GET /api/v1/experiments", s.track("experiments", s.handleExperiments))
	mux.HandleFunc("GET /api/v1/experiments/{id}", s.track("experiment", s.handleExperiment))
	mux.HandleFunc("POST /api/v1/run", s.track("run", s.handleRun))
	mux.HandleFunc("POST /api/v1/sweep", s.track("sweep", s.handleSweep))
	mux.HandleFunc("GET /api/v1/stream", s.track("stream", s.handleStream))
	if s.dir != nil {
		// The peer record API serves the local disk tier only: peers
		// warm-start from what this node has verified on its own disk,
		// never transitively through this node's own peers.
		mux.Handle(store.RecordPath, store.RecordHandler(s.dir))
	}
	return mux
}

// observe records one answered point in the metrics.
func (s *Server) observe(src string, elapsed time.Duration) {
	s.runsBy.With(src).Inc()
	s.runSec.Observe(elapsed.Seconds())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var rq RunRequest
	if err := decodeJSON(w, r, &rq); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	spec, err := ResolveSpec(s.env, rq)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	rep, src, err := s.ses.RunTracked(r.Context(), spec)
	if err != nil {
		if mtvec.IsContextErr(err) {
			return // client went away; nothing to answer
		}
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.observe(src.String(), time.Since(start))
	w.Header().Set("X-Mtvec-Cache", src.String())
	writeJSON(w, http.StatusOK, RunResponse{
		Cache:     src.String(),
		ElapsedMS: msSince(start),
		Report:    rep,
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var rq SweepRequest
	if err := decodeJSON(w, r, &rq); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	axes, err := rq.Expand()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	// Resolve every point's spec up front so a malformed sweep fails
	// whole, before any simulation starts.
	points := make([]SweepPoint, 0, len(axes))
	specs := make([]mtvec.RunSpec, 0, len(axes))
	var bad []error
	for _, pt := range axes {
		spec, err := ResolveSpec(s.env, rq.Base.at(pt))
		if err != nil {
			bad = append(bad, fmt.Errorf("point (ctx=%d, lat=%d, policy=%q): %w", pt.Contexts, pt.Latency, pt.Policy, err))
			continue
		}
		points = append(points, SweepPoint{Contexts: pt.Contexts, Latency: pt.Latency, Policy: pt.Policy})
		specs = append(specs, spec)
	}
	if len(bad) > 0 {
		s.fail(w, http.StatusBadRequest, errors.Join(bad...))
		return
	}

	// Fan out through the session's batched sweep engine: memo-missed
	// points sharing a workload simulate as lockstep batch lanes, the
	// jobs gate bounds actual simulation concurrency, and shared points
	// collapse onto one simulation. Per-point cache metadata is
	// unchanged; a batched point's elapsed time is the wall time until
	// its whole batch resolved.
	start := time.Now()
	results := s.ses.RunAllTracked(r.Context(), specs...)
	for i, res := range results {
		points[i].ElapsedMS = res.Elapsed.Seconds() * 1e3
		if res.Err != nil {
			points[i].Error = res.Err.Error()
			continue
		}
		points[i].Cache = res.Source.String()
		points[i].Report = res.Report
		s.observe(points[i].Cache, res.Elapsed)
	}
	if r.Context().Err() != nil {
		return // client went away mid-sweep
	}

	resp := SweepResponse{Points: points, ElapsedMS: msSince(start)}
	resp.tally()
	writeJSON(w, http.StatusOK, resp)
}

// sseObserver forwards run events as server-sent events. The simulator
// calls it synchronously on the handler goroutine, so writes need no
// locking; a failed write just stops further events (the client is
// gone, and the run is cancelled through the request context).
type sseObserver struct {
	w        io.Writer
	fl       http.Flusher
	spans    bool
	switches bool
	dead     bool
}

func (o *sseObserver) event(name string, v any) {
	if o.dead {
		return
	}
	data, err := json.Marshal(v)
	if err == nil {
		_, err = fmt.Fprintf(o.w, "event: %s\ndata: %s\n\n", name, data)
	}
	if err != nil {
		o.dead = true
		return
	}
	o.fl.Flush()
}

func (o *sseObserver) Progress(now int64, dispatched int64) {
	o.event("progress", map[string]int64{"cycle": now, "dispatched": dispatched})
}

func (o *sseObserver) ThreadSwitch(now int64, from, to int) {
	if o.switches {
		o.event("switch", map[string]int64{"cycle": now, "from": int64(from), "to": int64(to)})
	}
}

func (o *sseObserver) Span(sp mtvec.Span) {
	if o.spans {
		o.event("span", sp)
	}
}

// streamParams are the query keys the stream endpoint accepts — the
// POST body schema flattened, plus the SSE-only switches toggle.
var streamParams = map[string]bool{
	"mode": true, "programs": true, "policy": true, "contexts": true,
	"latency": true, "xbar": true, "issue_width": true, "load_ports": true,
	"store_ports": true, "banks": true, "bank_busy": true, "max_cycles": true,
	"progress_stride": true, "dual_scalar": true, "spans": true, "switches": true,
}

// queryRunRequest builds a RunRequest (plus the SSE-only switches
// toggle) from the stream endpoint's query parameters — the POST body
// schema, flattened. Unknown parameters and malformed values are
// rejected, mirroring the POST decoder's strict field checking — a
// typo'd axis must not silently simulate the default machine.
func queryRunRequest(r *http.Request) (rq RunRequest, switches bool, err error) {
	q := r.URL.Query()
	var unknown []string
	for name := range q {
		if !streamParams[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		// Sorted so the diagnostic does not depend on map iteration order.
		sort.Strings(unknown)
		return RunRequest{}, false, fmt.Errorf("unknown query parameter %q", unknown[0])
	}
	rq = RunRequest{Mode: q.Get("mode"), Policy: q.Get("policy")}
	for _, tag := range strings.Split(q.Get("programs"), ",") {
		if tag = strings.TrimSpace(tag); tag != "" {
			rq.Programs = append(rq.Programs, tag)
		}
	}
	atoi := func(name string) int {
		v := q.Get(name)
		if v == "" {
			return 0
		}
		n, aerr := strconv.Atoi(v)
		if aerr != nil && err == nil {
			err = fmt.Errorf("%s: %w", name, aerr)
		}
		return n
	}
	rq.Contexts = atoi("contexts")
	rq.Latency = atoi("latency")
	rq.Xbar = atoi("xbar")
	rq.IssueWidth = atoi("issue_width")
	rq.LoadPorts = atoi("load_ports")
	rq.StorePorts = atoi("store_ports")
	rq.Banks = atoi("banks")
	rq.BankBusy = atoi("bank_busy")
	rq.MaxCycles = int64(atoi("max_cycles"))
	rq.ProgressStride = int64(atoi("progress_stride"))
	abool := func(name string) bool {
		v := q.Get(name)
		if v == "" {
			return false
		}
		b, berr := strconv.ParseBool(v)
		if berr != nil && err == nil {
			err = fmt.Errorf("%s: %w", name, berr)
		}
		return b
	}
	rq.DualScalar = abool("dual_scalar")
	rq.Spans = abool("spans")
	switches = abool("switches")
	return rq, switches, err
}

// handleStream answers one run as an SSE stream: progress (and
// optionally span/switch) events while the simulation executes, then a
// final result event carrying the RunResponse. A cached result skips
// straight to the result event — no simulation, no progress.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, errors.New("streaming unsupported by connection"))
		return
	}
	rq, switches, err := queryRunRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	spec, err := ResolveSpec(s.env, rq)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	start := time.Now()
	obs := &sseObserver{w: w, fl: fl, spans: rq.Spans, switches: switches}
	sse := func(cache string) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Mtvec-Cache", cache)
		w.WriteHeader(http.StatusOK)
	}

	// A result some tier already holds streams as just its result event.
	if rep, src, ok := s.ses.Cached(spec); ok {
		s.observe(src.String(), time.Since(start))
		sse(src.String())
		obs.event("result", RunResponse{Cache: src.String(), ElapsedMS: msSince(start), Report: rep})
		return
	}

	sse(mtvec.RunFromSim.String())
	rep, src, err := s.ses.RunTracked(r.Context(), spec.With(mtvec.WithObserver(obs)))
	if err != nil {
		if !mtvec.IsContextErr(err) {
			obs.event("error", map[string]string{"error": err.Error()})
		}
		return
	}
	s.observe(src.String(), time.Since(start))
	obs.event("result", RunResponse{Cache: src.String(), ElapsedMS: msSince(start), Report: rep})
}

// experimentInfo is one catalog entry.
type experimentInfo struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	PaperShape string `json:"paper_shape"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var list []experimentInfo
	for _, e := range mtvec.Experiments() {
		list = append(list, experimentInfo{ID: e.ID, Title: e.Title, PaperShape: e.PaperShape})
	}
	writeJSON(w, http.StatusOK, list)
}

// handleExperiment regenerates one experiment (every table/figure of
// it) against the shared Env. With a warm store this is pure serving:
// the X-Mtvec-Simulations header reports how many machine runs the
// request actually cost (0 on a fully cached regeneration; approximate
// under concurrent requests, which share the Env's counters).
//
// Unlike the point endpoints, regeneration runs under the Env's own
// context, not the request's: its simulation points land in the shared
// memo/store tiers where any later request is served from them, so
// finishing after a client disconnect is deliberate (cache warming).
// Swapping the shared Env's context per request would also let one
// client's disconnect cancel another's runs.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	exp := mtvec.ExperimentByID(id)
	if exp == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
		return
	}
	render := mtvec.RenderResult
	contentType := "text/plain; charset=utf-8"
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
	case "markdown":
		render = mtvec.RenderResultMarkdown
		contentType = "text/markdown; charset=utf-8"
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (text | markdown)", format))
		return
	}
	sims0, hits0 := s.env.Simulations(), s.env.StoreHits()
	start := time.Now()
	res, err := exp.Run(s.env)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	var buf strings.Builder
	if err := render(&buf, res); err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("X-Mtvec-Simulations", strconv.FormatInt(s.env.Simulations()-sims0, 10))
	h.Set("X-Mtvec-Store-Hits", strconv.FormatInt(s.env.StoreHits()-hits0, 10))
	h.Set("X-Mtvec-Elapsed-Ms", strconv.FormatFloat(msSince(start), 'f', 1, 64))
	io.WriteString(w, buf.String())
}

// workloadInfo is one program-catalog entry.
type workloadInfo struct {
	Name  string `json:"name"`
	Short string `json:"short"`
	Suite string `json:"suite"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workloadCatalog())
}

// workloadCatalog lists every runnable program: the Table 3
// reconstructions followed by the vectorizable benchmark suite
// (docs/BENCHMARKS.md) — the same union the run endpoints resolve.
func workloadCatalog() []workloadInfo {
	var list []workloadInfo
	for _, spec := range mtvec.Workloads() {
		list = append(list, workloadInfo{Name: spec.Name, Short: spec.Short, Suite: spec.Suite})
	}
	for _, spec := range mtvec.BenchWorkloads() {
		list = append(list, workloadInfo{Name: spec.Name, Short: spec.Short, Suite: spec.Suite})
	}
	return list
}

// healthResponse is the /healthz body: liveness plus cache counters.
type healthResponse struct {
	Status      string  `json:"status"`
	UptimeS     float64 `json:"uptime_s"`
	Scale       float64 `json:"scale"`
	Jobs        int     `json:"jobs"`
	Simulations int64   `json:"simulations"`
	StoreHits   int64   `json:"store_hits"`
	PeerHits    int64   `json:"peer_hits,omitempty"`
	Draining    bool    `json:"draining,omitempty"`
	// Store carries the persistent tier's counters; null without -store.
	Store *mtvec.StoreStats `json:"store,omitempty"`
}

// handleHealth is liveness: it answers 200 as long as the process
// serves, draining or not. Readiness is /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:      "ok",
		UptimeS:     time.Since(s.start).Seconds(),
		Scale:       s.scale,
		Jobs:        s.jobs,
		Simulations: s.env.Simulations(),
		StoreHits:   s.env.StoreHits(),
		PeerHits:    s.ses.PeerHits(),
		Draining:    s.draining.Load(),
	}
	if s.back != nil {
		st := s.back.Stats()
		resp.Store = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReady is readiness: 200 while accepting new work, 503 once
// draining. Coordinators probe it to stop routing to a worker that is
// shutting down before its listener actually closes.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// decodeJSON reads one JSON request body with a size bound and strict
// field checking, so typo'd axis names fail loudly instead of silently
// running the default machine.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Nanoseconds()) / 1e6
}
