package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOwnersDeterministicAndComplete(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c"}
	r1, err := newRing(workers)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := newRing(workers)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := r1.owners(key), r2.owners(key)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("owners(%q) differ across rebuilds: %v vs %v", key, o1, o2)
		}
		if len(o1) != len(workers) {
			t.Fatalf("owners(%q) = %v, want all %d workers", key, o1, len(workers))
		}
		seen := map[string]bool{}
		for _, w := range o1 {
			if seen[w] {
				t.Fatalf("owners(%q) repeats %q: %v", key, w, o1)
			}
			seen[w] = true
		}
	}
}

func TestRingBalancesAndRemapsMinimally(t *testing.T) {
	full, _ := newRing([]string{"http://a", "http://b", "http://c"})
	shrunk, _ := newRing([]string{"http://a", "http://b"})
	load := map[string]int{}
	moved := 0
	const n = 3000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("point-%d", i)
		home := full.owners(key)[0]
		load[home]++
		if after := shrunk.owners(key)[0]; after != home {
			// Only keys whose home was the removed worker may move.
			if home != "http://c" {
				t.Fatalf("key %q moved %s -> %s though its home survived", key, home, after)
			}
			moved++
		}
	}
	for w, got := range load {
		if got < n/3/2 || got > n/3*2 {
			t.Errorf("worker %s owns %d of %d keys — imbalance beyond 2x", w, got, n)
		}
	}
	if moved != load["http://c"] {
		t.Errorf("moved %d keys, want exactly c's %d", moved, load["http://c"])
	}
}

func TestRingRejectsBadWorkerSets(t *testing.T) {
	if _, err := newRing(nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := newRing([]string{"http://a", "http://a"}); err == nil {
		t.Error("duplicate worker accepted")
	}
}
