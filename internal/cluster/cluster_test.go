package cluster

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testCluster is a coordinator over live worker servers.
type testCluster struct {
	coord   *Coordinator
	workers []*Server
	servers []*httptest.Server
}

// newTestCluster starts n workers (each with its own store directory)
// and a coordinator over them.
func newTestCluster(t *testing.T, n int, cfg CoordinatorConfig) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		w := newTestServer(t, t.TempDir())
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(ts.Close)
		tc.workers = append(tc.workers, w)
		tc.servers = append(tc.servers, ts)
		cfg.Workers = append(cfg.Workers, ts.URL)
	}
	cfg.Scale = testScale
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	tc.coord = coord
	return tc
}

// sweep64 is the differential workload: 8 latencies x 8 context counts
// of the tf program, 64 distinct points.
const sweep64 = `{"base":{"mode":"queue","programs":["tf","sw"]},` +
	`"latencies":[10,20,30,40,50,60,70,80],"contexts":[1,2,3,4,5,6,7,8]}`

// diffSweep asserts the coordinator answers body field-identically to
// a fresh standalone server, and returns the coordinator's response.
func diffSweep(t *testing.T, tc *testCluster, body string) *SweepResponse {
	t.Helper()
	var want SweepResponse
	if rec := do(t, newTestServer(t, "").Handler(), "POST", "/api/v1/sweep", body, &want); rec.Code != 200 {
		t.Fatalf("standalone sweep = %d: %s", rec.Code, rec.Body.String())
	}
	var got SweepResponse
	if rec := do(t, tc.coord.Handler(), "POST", "/api/v1/sweep", body, &got); rec.Code != 200 {
		t.Fatalf("coordinator sweep = %d: %s", rec.Code, rec.Body.String())
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("coordinator answered %d points, standalone %d", len(got.Points), len(want.Points))
	}
	for i := range want.Points {
		w, g := want.Points[i], got.Points[i]
		if g.Contexts != w.Contexts || g.Latency != w.Latency || g.Policy != w.Policy {
			t.Fatalf("point %d axes differ: %+v vs %+v", i, g, w)
		}
		if g.Error != "" || w.Error != "" {
			t.Fatalf("point %d errored: %q / %q", i, g.Error, w.Error)
		}
		wb, _ := json.Marshal(w.Report)
		gb, _ := json.Marshal(g.Report)
		if string(wb) != string(gb) {
			t.Fatalf("point %d report differs from standalone:\n%s\nvs\n%s", i, gb, wb)
		}
	}
	return &got
}

func TestCoordinatorSweepMatchesStandalone(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{})
	resp := diffSweep(t, tc, sweep64)

	// The ring must actually have sharded the work: both workers
	// answered points, and the split is exactly the workers' own
	// simulation counts (every point was cold).
	byWorker := map[string]int{}
	for _, p := range resp.Points {
		byWorker[p.Worker]++
	}
	if len(byWorker) != 2 {
		t.Fatalf("points answered by %d workers, want 2: %v", len(byWorker), byWorker)
	}
	if resp.Simulated != 64 {
		t.Fatalf("cold cluster sweep simulated = %d, want 64", resp.Simulated)
	}

	// Replaying the same sweep costs zero simulations anywhere.
	sims := tc.workers[0].Env().Simulations() + tc.workers[1].Env().Simulations()
	var again SweepResponse
	do(t, tc.coord.Handler(), "POST", "/api/v1/sweep", sweep64, &again)
	if again.Failed != 0 || again.Simulated != 0 {
		t.Fatalf("replay sweep %+v, want all cache hits", again)
	}
	after := tc.workers[0].Env().Simulations() + tc.workers[1].Env().Simulations()
	if after != sims {
		t.Fatalf("replay cost %d simulations, want 0", after-sims)
	}
	if tc.coord.Env().Simulations() != 0 {
		t.Fatal("coordinator simulated locally")
	}
}

func TestCoordinatorSurvivesWorkerKilledMidSweep(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{ProbeInterval: time.Hour}) // no prober help: the failure path alone must recover
	// Pace the victim so its shard is still in flight when we kill it.
	tc.workers[0].Session().SetPace(300 * time.Millisecond)

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/api/v1/sweep", strings.NewReader(sweep64))
		req.Header.Set("Content-Type", "application/json")
		tc.coord.Handler().ServeHTTP(rec, req)
		done <- rec
	}()
	time.Sleep(100 * time.Millisecond)
	// Kill worker 0 mid-sweep: in-flight sub-sweeps die with the
	// connection, and the coordinator must re-route its points.
	tc.servers[0].CloseClientConnections()
	tc.servers[0].Close()

	rec := <-done
	if rec.Code != 200 {
		t.Fatalf("sweep with killed worker = %d: %s", rec.Code, rec.Body.String())
	}
	var got SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Failed != 0 {
		t.Fatalf("sweep failed %d points after worker death: %+v", got.Failed, got)
	}
	if got.Retries == 0 {
		t.Fatal("no retries recorded though a worker died mid-sweep")
	}
	// Every point must match the standalone answer bit for bit.
	var want SweepResponse
	do(t, newTestServer(t, "").Handler(), "POST", "/api/v1/sweep", sweep64, &want)
	for i := range want.Points {
		wb, _ := json.Marshal(want.Points[i].Report)
		gb, _ := json.Marshal(got.Points[i].Report)
		if string(wb) != string(gb) {
			t.Fatalf("point %d differs from standalone after failover", i)
		}
	}
}

func TestCoordinatorCoalescesDuplicatePoints(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{})
	body := `{"base":{"programs":["tf"]},"points":[{"latency":35},{"latency":35},{"latency":35}]}`
	var resp SweepResponse
	if rec := do(t, tc.coord.Handler(), "POST", "/api/v1/sweep", body, &resp); rec.Code != 200 {
		t.Fatalf("sweep = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", resp.Coalesced)
	}
	if sims := tc.workers[0].Env().Simulations() + tc.workers[1].Env().Simulations(); sims != 1 {
		t.Fatalf("cluster simulated %d times for one distinct point", sims)
	}
	for _, p := range resp.Points {
		if p.Report == nil || p.Error != "" {
			t.Fatalf("point %+v incomplete", p)
		}
	}
}

func TestCoordinatorHedgesSlowShard(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{HedgeAfter: 100 * time.Millisecond})
	// Worker 0 is pathologically slow: every cold simulation slot is
	// padded to 30s, so nothing it owns can come back within this test.
	// Only the hedge onto worker 1 lets the sweep finish.
	tc.workers[0].Session().SetPace(30 * time.Second)

	start := time.Now()
	var resp SweepResponse
	if rec := do(t, tc.coord.Handler(), "POST", "/api/v1/sweep", sweep64, &resp); rec.Code != 200 {
		t.Fatalf("sweep = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Failed != 0 {
		t.Fatalf("hedged sweep failed points: %+v", resp)
	}
	if resp.Hedges == 0 {
		t.Fatal("no hedges recorded though one shard was pathologically slow")
	}
	// Every point — worker 0's own shard included — must have been
	// answered by worker 1, far inside worker 0's 30s pace floor.
	for i, p := range resp.Points {
		if p.Worker != tc.servers[1].URL {
			t.Fatalf("point %d answered by %s, want the hedge target %s", i, p.Worker, tc.servers[1].URL)
		}
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("sweep took %s despite hedging", elapsed)
	}
}

func TestCoordinatorRunAndSSE(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{})
	h := tc.coord.Handler()

	var run RunResponse
	rec := do(t, h, "POST", "/api/v1/run", `{"programs":["tf"],"latency":25}`, &run)
	if rec.Code != 200 || run.Cache != "sim" || run.Report == nil {
		t.Fatalf("run = %d, %+v", rec.Code, run)
	}
	if rec.Header().Get("X-Mtvec-Worker") == "" {
		t.Fatal("run response missing worker attribution")
	}
	// Same point again: the owning worker's memo answers.
	var again RunResponse
	do(t, h, "POST", "/api/v1/run", `{"programs":["tf"],"latency":25}`, &again)
	if again.Cache != "memo" {
		t.Fatalf("repeat run cache = %q, want memo", again.Cache)
	}

	// Sweep with SSE progress: one point event per point, then the
	// merged result.
	req := httptest.NewRequest("POST", "/api/v1/sweep",
		strings.NewReader(`{"base":{"programs":["tf"]},"latencies":[25,45]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, req)
	body := srec.Body.String()
	if srec.Code != 200 || srec.Header().Get("Content-Type") != "text/event-stream" {
		t.Fatalf("sse sweep = %d (%s)", srec.Code, srec.Header().Get("Content-Type"))
	}
	if strings.Count(body, "event: point") != 2 || !strings.Contains(body, "event: result") {
		t.Fatalf("sse stream malformed:\n%s", body)
	}

	// Stream proxying: the SSE run endpoint passes through to a worker.
	prec := do(t, h, "GET", "/api/v1/stream?programs=tf&latency=25", "", nil)
	if prec.Code != 200 || !strings.Contains(prec.Body.String(), "event: result") {
		t.Fatalf("proxied stream = %d:\n%s", prec.Code, prec.Body.String())
	}
}

func TestCoordinatorTopologyHealthAndDrain(t *testing.T) {
	tc := newTestCluster(t, 2, CoordinatorConfig{})
	h := tc.coord.Handler()

	var topo clusterResponse
	if rec := do(t, h, "GET", "/api/v1/cluster", "", &topo); rec.Code != 200 {
		t.Fatalf("cluster = %d", rec.Code)
	}
	if len(topo.Workers) != 2 || topo.Scale != testScale || topo.Vnodes != ringVnodes {
		t.Fatalf("topology %+v", topo)
	}
	for _, w := range topo.Workers {
		if !w.Healthy {
			t.Fatalf("worker %s unhealthy at start", w.URL)
		}
	}

	var health coordHealth
	do(t, h, "GET", "/healthz", "", &health)
	if health.Role != "coordinator" || health.Workers != 2 {
		t.Fatalf("health %+v", health)
	}
	if rec := do(t, h, "GET", "/readyz", "", nil); rec.Code != 200 {
		t.Fatalf("readyz = %d", rec.Code)
	}

	// A draining worker fails its readiness probe and drops from the
	// healthy count.
	tc.workers[0].StartDraining()
	deadline := time.Now().Add(3 * time.Second)
	for tc.coord.healthyCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("prober never noticed the draining worker")
		}
		time.Sleep(10 * time.Millisecond)
	}

	tc.coord.StartDraining()
	if rec := do(t, h, "GET", "/readyz", "", nil); rec.Code != 503 {
		t.Fatalf("coordinator readyz while draining = %d, want 503", rec.Code)
	}

	// Metrics surface the cluster counters.
	mrec := do(t, h, "GET", "/metrics", "", nil)
	for _, want := range []string{"mtvec_worker_healthy", "mtvec_coord_sweeps_total", "mtvec_draining 1"} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}
}
