package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ringVnodes is the number of virtual nodes each worker contributes to
// the hash ring. 64 keeps the worst-case load imbalance across a
// handful of workers in the few-percent range while the ring stays
// small enough to rebuild on every topology change.
const ringVnodes = 64

// ring consistent-hashes persist keys over a set of workers. Points
// hash to the first vnode clockwise from the key; owners() walks on to
// further distinct workers, giving every key a stable failover chain —
// adding or removing one worker remaps only the keys that hashed to
// it, so a cluster resize keeps most of every worker's warm store
// relevant.
type ring struct {
	vnodes  []ringVnode // sorted by hash
	workers []string
}

type ringVnode struct {
	hash   uint64
	worker int // index into workers
}

// newRing builds the ring over the workers in the given order. The
// worker list must be non-empty and duplicate-free.
func newRing(workers []string) (*ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("ring: no workers")
	}
	seen := make(map[string]bool, len(workers))
	r := &ring{
		vnodes:  make([]ringVnode, 0, len(workers)*ringVnodes),
		workers: append([]string(nil), workers...),
	}
	for wi, w := range workers {
		if seen[w] {
			return nil, fmt.Errorf("ring: duplicate worker %q", w)
		}
		seen[w] = true
		for v := 0; v < ringVnodes; v++ {
			r.vnodes = append(r.vnodes, ringVnode{hash: ringHash(fmt.Sprintf("%s#%d", w, v)), worker: wi})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.worker < b.worker // deterministic order on (vanishingly rare) hash ties
	})
	return r, nil
}

// ringHash positions a string on the ring. SHA-256 (truncated) rather
// than a fast non-cryptographic hash: vnode keys differ only in a
// short suffix, and weaker hashes measurably skew the ring for exactly
// that shape of input. One hash per lookup is nothing next to a
// simulation.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// owners returns the key's failover chain: every worker, deduplicated,
// in ring order starting from the key's position. owners(key)[0] is the
// key's home; retries and hedges walk the tail.
func (r *ring) owners(key string) []string {
	start := sort.Search(len(r.vnodes), func(i int) bool {
		return r.vnodes[i].hash >= ringHash(key)
	})
	out := make([]string, 0, len(r.workers))
	used := make([]bool, len(r.workers))
	for i := 0; i < len(r.vnodes) && len(out) < len(r.workers); i++ {
		vn := r.vnodes[(start+i)%len(r.vnodes)]
		if !used[vn.worker] {
			used[vn.worker] = true
			out = append(out, r.workers[vn.worker])
		}
	}
	return out
}
