package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// testScale keeps server-test simulations fast; results are still full
// deterministic runs.
const testScale = 5e-5

func newTestServer(t *testing.T, storeDir string) *Server {
	t.Helper()
	s, err := NewServer(Config{Scale: testScale, Jobs: 4, StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do performs one request against the mux and decodes a JSON body.
func do(t *testing.T, h http.Handler, method, target, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec
}

func TestHealthAndCatalogs(t *testing.T) {
	h := newTestServer(t, "").Handler()

	var health healthResponse
	if rec := do(t, h, "GET", "/healthz", "", &health); rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if health.Status != "ok" || health.Scale != testScale {
		t.Fatalf("health %+v", health)
	}

	var ws []workloadInfo
	do(t, h, "GET", "/api/v1/workloads", "", &ws)
	// Ten Table 3 reconstructions plus the seven-kernel benchmark suite.
	if len(ws) != 17 {
		t.Fatalf("workloads = %d, want 17", len(ws))
	}
	bench := 0
	for _, w := range ws {
		if w.Suite == "Bench" {
			bench++
		}
	}
	if bench != 7 {
		t.Fatalf("bench-suite catalog entries = %d, want 7", bench)
	}

	var exps []experimentInfo
	do(t, h, "GET", "/api/v1/experiments", "", &exps)
	if len(exps) < 18 {
		t.Fatalf("experiments = %d, want >= 18", len(exps))
	}
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	s := newTestServer(t, "")
	h := s.Handler()
	if rec := do(t, h, "GET", "/readyz", "", nil); rec.Code != 200 {
		t.Fatalf("readyz before drain = %d", rec.Code)
	}
	s.StartDraining()
	if rec := do(t, h, "GET", "/readyz", "", nil); rec.Code != 503 {
		t.Fatalf("readyz during drain = %d, want 503", rec.Code)
	}
	// Liveness and actual serving stay up throughout the drain.
	if rec := do(t, h, "GET", "/healthz", "", nil); rec.Code != 200 {
		t.Fatalf("healthz during drain = %d", rec.Code)
	}
	var resp RunResponse
	if rec := do(t, h, "POST", "/api/v1/run", `{"programs":["tf"]}`, &resp); rec.Code != 200 {
		t.Fatalf("run during drain = %d", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	h := newTestServer(t, dir).Handler()
	do(t, h, "POST", "/api/v1/run", `{"programs":["tf"],"latency":80}`, nil)

	rec := do(t, h, "GET", "/metrics", "", nil)
	if rec.Code != 200 {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`mtvec_runs_total{source="sim"} 1`,
		"mtvec_simulations_total 1",
		"mtvec_store_writes_total 1",
		"mtvec_gate_limit 4",
		"mtvec_draining 0",
		`mtvec_http_requests_total{endpoint="run",code="200"} 1`,
		"mtvec_run_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestRunEndpointCacheTiers(t *testing.T) {
	h := newTestServer(t, "").Handler()
	body := `{"mode":"solo","programs":["tf"],"latency":80}`

	var first RunResponse
	rec := do(t, h, "POST", "/api/v1/run", body, &first)
	if rec.Code != 200 {
		t.Fatalf("run = %d: %s", rec.Code, rec.Body.String())
	}
	if first.Cache != "sim" {
		t.Fatalf("first run cache = %q, want sim", first.Cache)
	}
	if first.Report == nil || first.Report.Cycles <= 0 {
		t.Fatalf("first run report %+v", first.Report)
	}
	if rec.Header().Get("X-Mtvec-Cache") != "sim" {
		t.Fatalf("cache header = %q", rec.Header().Get("X-Mtvec-Cache"))
	}

	var second RunResponse
	do(t, h, "POST", "/api/v1/run", body, &second)
	if second.Cache != "memo" {
		t.Fatalf("second run cache = %q, want memo", second.Cache)
	}
	if second.Report.Cycles != first.Report.Cycles {
		t.Fatal("memoized report differs")
	}
}

func TestRunEndpointServedFromStoreAcrossServers(t *testing.T) {
	dir := t.TempDir()
	body := `{"mode":"queue","programs":["tf","sw"],"contexts":2}`

	var cold RunResponse
	h1 := newTestServer(t, dir).Handler()
	if rec := do(t, h1, "POST", "/api/v1/run", body, &cold); rec.Code != 200 {
		t.Fatalf("cold run = %d: %s", rec.Code, rec.Body.String())
	}
	if cold.Cache != "sim" {
		t.Fatalf("cold cache = %q", cold.Cache)
	}

	// A brand-new server over the same store directory models a restart
	// (or another replica): the result must come from disk, bit-equal.
	srv2 := newTestServer(t, dir)
	var warm RunResponse
	do(t, srv2.Handler(), "POST", "/api/v1/run", body, &warm)
	if warm.Cache != "store" {
		t.Fatalf("warm cache = %q, want store", warm.Cache)
	}
	cb, _ := json.Marshal(cold.Report)
	wb, _ := json.Marshal(warm.Report)
	if string(cb) != string(wb) {
		t.Fatal("store-served report differs from the simulated one")
	}
	if sims := srv2.Env().Simulations(); sims != 0 {
		t.Fatalf("replica simulated %d times, want 0", sims)
	}
}

func TestServerWarmStartsFromPeer(t *testing.T) {
	// Warm a "remote" worker's store, serve it over HTTP, and point a
	// diskless-dir new server at it via Peers: the run must come from
	// the peer tier, not a fresh simulation.
	remoteDir := t.TempDir()
	remote := newTestServer(t, remoteDir)
	body := `{"programs":["tf"],"latency":70}`
	if rec := do(t, remote.Handler(), "POST", "/api/v1/run", body, nil); rec.Code != 200 {
		t.Fatalf("warm-up run = %d", rec.Code)
	}
	ts := httptest.NewServer(remote.Handler())
	defer ts.Close()

	local, err := NewServer(Config{Scale: testScale, Jobs: 4, StoreDir: t.TempDir(), Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	var resp RunResponse
	if rec := do(t, local.Handler(), "POST", "/api/v1/run", body, &resp); rec.Code != 200 {
		t.Fatalf("peer run = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Cache != "peer" {
		t.Fatalf("cache = %q, want peer", resp.Cache)
	}
	if sims := local.Env().Simulations(); sims != 0 {
		t.Fatalf("peer-served run simulated %d times, want 0", sims)
	}
}

func TestSweepEndpoint(t *testing.T) {
	h := newTestServer(t, "").Handler()
	body := `{"base":{"mode":"solo","programs":["tf"]},"latencies":[20,50],"contexts":[1]}`

	var resp SweepResponse
	if rec := do(t, h, "POST", "/api/v1/sweep", body, &resp); rec.Code != 200 {
		t.Fatalf("sweep = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Points) != 2 || resp.Failed != 0 {
		t.Fatalf("sweep %+v", resp)
	}
	if resp.Simulated != 2 {
		t.Fatalf("cold sweep simulated = %d, want 2", resp.Simulated)
	}
	for _, p := range resp.Points {
		if p.Report == nil || p.Report.Cycles <= 0 {
			t.Fatalf("point %+v missing report", p)
		}
	}

	// Rerunning the sweep answers entirely from memo.
	var again SweepResponse
	do(t, h, "POST", "/api/v1/sweep", body, &again)
	if again.MemoHits != 2 || again.Simulated != 0 {
		t.Fatalf("warm sweep %+v, want 2 memo hits", again)
	}
	// The two latencies must really differ.
	if resp.Points[0].Report.Cycles == resp.Points[1].Report.Cycles {
		t.Fatal("latency sweep points identical")
	}
}

func TestSweepExplicitPoints(t *testing.T) {
	h := newTestServer(t, "").Handler()
	// The sub-sweep form: explicit points instead of axis lists.
	body := `{"base":{"mode":"solo","programs":["tf"]},"points":[{"latency":20},{"latency":50}]}`
	var resp SweepResponse
	if rec := do(t, h, "POST", "/api/v1/sweep", body, &resp); rec.Code != 200 {
		t.Fatalf("sweep = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Points) != 2 || resp.Failed != 0 || resp.Simulated != 2 {
		t.Fatalf("sweep %+v", resp)
	}
	if resp.Points[0].Latency != 20 || resp.Points[1].Latency != 50 {
		t.Fatalf("points out of order: %+v", resp.Points)
	}
	// Points and axis lists together are rejected.
	both := `{"base":{"programs":["tf"]},"points":[{"latency":20}],"latencies":[50]}`
	if rec := do(t, h, "POST", "/api/v1/sweep", both, nil); rec.Code != 400 {
		t.Fatalf("points+axes sweep = %d, want 400", rec.Code)
	}
}

func TestStreamEndpoint(t *testing.T) {
	h := newTestServer(t, "").Handler()
	target := "/api/v1/stream?mode=solo&programs=tf&progress_stride=512"

	rec := do(t, h, "GET", target, "", nil)
	if rec.Code != 200 {
		t.Fatalf("stream = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "event: progress") {
		t.Fatalf("no progress events in stream:\n%s", body)
	}
	if !strings.Contains(body, "event: result") {
		t.Fatalf("no result event in stream:\n%s", body)
	}
	if !strings.Contains(body, `"cache":"sim"`) {
		t.Fatalf("cold stream not marked sim:\n%s", body)
	}

	// Second stream of the same point: served from cache, result only.
	rec2 := do(t, h, "GET", target, "", nil)
	body2 := rec2.Body.String()
	if strings.Contains(body2, "event: progress") {
		t.Fatalf("cached stream still emitted progress:\n%s", body2)
	}
	if !strings.Contains(body2, "event: result") || !strings.Contains(body2, `"cache":"memo"`) {
		t.Fatalf("cached stream missing memo result:\n%s", body2)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	h := newTestServer(t, "").Handler()
	rec := do(t, h, "GET", "/api/v1/experiments/table1", "", nil)
	if rec.Code != 200 {
		t.Fatalf("experiment = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "Table 1") {
		t.Fatalf("unexpected body:\n%s", rec.Body.String())
	}
	if rec.Header().Get("X-Mtvec-Simulations") == "" {
		t.Fatal("missing simulations header")
	}
	if rec := do(t, h, "GET", "/api/v1/experiments/table1?format=markdown", "", nil); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), "###") {
		t.Fatalf("markdown render = %d:\n%s", rec.Code, rec.Body.String())
	}
	if rec := do(t, h, "GET", "/api/v1/experiments/nope", "", nil); rec.Code != 404 {
		t.Fatalf("unknown experiment = %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/api/v1/experiments/table1?format=pdf", "", nil); rec.Code != 400 {
		t.Fatalf("unknown format = %d", rec.Code)
	}
}

func TestBadRequests(t *testing.T) {
	h := newTestServer(t, "").Handler()
	cases := []struct {
		method, target, body string
		want                 int
	}{
		{"POST", "/api/v1/run", `{`, 400},                                 // malformed JSON
		{"POST", "/api/v1/run", `{"programs":[]}`, 400},                   // no programs
		{"POST", "/api/v1/run", `{"programs":["zz"]}`, 400},               // unknown program
		{"POST", "/api/v1/run", `{"programs":["tf"],"mode":"warp"}`, 400}, // unknown mode
		{"POST", "/api/v1/run", `{"programs":["tf"],"lateency":80}`, 400}, // typo'd field
		{"POST", "/api/v1/run", `{"programs":["tf","sw"]}`, 400},          // solo with 2 programs
		{"POST", "/api/v1/run", `{"programs":["tf"],"contexts":99}`, 400}, // over MaxContexts
		{"POST", "/api/v1/run", `{"programs":["tf"],"banks":64}`, 400},    // bank no-op shape
		{"POST", "/api/v1/sweep", `{"base":{"programs":["tf"],"mode":"solo"},"contexts":[1,99]}`, 400},
		{"GET", "/api/v1/stream?programs=tf&contexts=nope", "", 400},
		{"GET", "/api/v1/stream?programs=", "", 400},
		{"GET", "/api/v1/stream?programs=tf&lateency=80", "", 400}, // typo'd query param
	}
	for _, tc := range cases {
		rec := do(t, h, tc.method, tc.target, tc.body, nil)
		if rec.Code != tc.want {
			t.Errorf("%s %s %s = %d, want %d (%s)", tc.method, tc.target, tc.body, rec.Code, tc.want, rec.Body.String())
		}
		if tc.want >= 400 && !strings.Contains(rec.Body.String(), `"error"`) {
			t.Errorf("%s %s: error body missing: %s", tc.method, tc.target, rec.Body.String())
		}
	}
	// Oversized sweep: 70^2 > MaxSweepPoints with two long axes.
	var lats, ctxs []string
	for i := 0; i < 70; i++ {
		lats = append(lats, fmt.Sprint(i+1))
	}
	for i := 0; i < 70; i++ {
		ctxs = append(ctxs, "1")
	}
	body := fmt.Sprintf(`{"base":{"programs":["tf"]},"latencies":[%s],"contexts":[%s]}`,
		strings.Join(lats, ","), strings.Join(ctxs, ","))
	if rec := do(t, h, "POST", "/api/v1/sweep", body, nil); rec.Code != 400 {
		t.Errorf("oversized sweep = %d, want 400", rec.Code)
	}
}
