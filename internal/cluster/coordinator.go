package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtvec"
	"mtvec/internal/metrics"
)

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Scale must match the workers': persist keys include it, and the
	// coordinator shards points by the keys it computes locally.
	Scale float64
	// Workers are the worker base URLs (http://host:port).
	Workers []string
	// Client issues sub-sweeps; nil selects a default with no timeout
	// (cold sub-sweeps legitimately run for minutes — hedging, not a
	// blanket timeout, covers slow shards).
	Client *http.Client
	// HedgeAfter races a duplicate sub-sweep against any shard still
	// unanswered after this long; first answer per point wins. 0
	// disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval paces the /readyz health prober (<= 0 selects 1s).
	ProbeInterval time.Duration
}

// Coordinator shards sweeps across a pool of workers. Points route by
// store persist key on a consistent-hash ring, so a point always lands
// on the worker whose disk store already holds it; duplicate in-flight
// points coalesce cluster-wide onto one sub-sweep; failed shards retry
// down each point's owner chain, and slow shards race a hedged
// duplicate. The external API is the worker API — clients cannot tell
// a coordinator from a big worker, except that it's faster.
type Coordinator struct {
	env        *mtvec.Env
	ring       *ring
	workers    []string
	targets    map[string]*url.URL
	client     *http.Client
	probe      *http.Client
	hedgeAfter time.Duration
	start      time.Time

	mu     sync.Mutex
	flight map[string]*flightEntry
	health map[string]*atomic.Bool

	nonce    atomic.Int64
	rr       atomic.Int64 // round-robin cursor for proxied endpoints
	draining atomic.Bool

	ctx    context.Context
	cancel context.CancelFunc

	reg        *metrics.Registry
	httpReq    *metrics.CounterVec
	pointsBy   *metrics.CounterVec
	shardSec   *metrics.HistogramVec
	healthyG   *metrics.GaugeVec
	mSweeps    *metrics.Counter
	mCoalesced *metrics.Counter
	mRetries   *metrics.Counter
	mHedges    *metrics.Counter
}

// NewCoordinator builds a coordinator and starts its health prober.
// Close releases the prober and aborts in-flight sub-sweeps.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	ring, err := newRing(cfg.Workers)
	if err != nil {
		return nil, err
	}
	targets := make(map[string]*url.URL, len(cfg.Workers))
	for _, w := range cfg.Workers {
		u, err := url.Parse(w)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("worker %q: need an absolute http(s) base URL", w)
		}
		targets[w] = u
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	probeEvery := cfg.ProbeInterval
	if probeEvery <= 0 {
		probeEvery = time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		env:     mtvec.NewEnv(cfg.Scale),
		ring:    ring,
		workers: append([]string(nil), cfg.Workers...),
		targets: targets,
		client:  client,
		// The probe timeout is generous on purpose: a worker saturated
		// with simulations can be slow to answer /readyz, and a timed-out
		// probe would wrongly un-route it, destabilizing the shard map.
		probe:      &http.Client{Timeout: 2 * time.Second},
		hedgeAfter: cfg.HedgeAfter,
		start:      time.Now(),
		flight:     make(map[string]*flightEntry),
		health:     make(map[string]*atomic.Bool, len(cfg.Workers)),
		ctx:        ctx,
		cancel:     cancel,
	}
	c.initMetrics()
	for _, w := range c.workers {
		b := new(atomic.Bool)
		b.Store(true) // optimistic until the first probe says otherwise
		c.health[w] = b
		c.healthyG.With(w).Set(1)
	}
	go c.probeLoop(probeEvery)
	return c, nil
}

func (c *Coordinator) initMetrics() {
	r := metrics.NewRegistry()
	c.reg = r
	c.httpReq = r.CounterVec("mtvec_http_requests_total",
		"HTTP requests served, by endpoint and status code.", "endpoint", "code")
	c.pointsBy = r.CounterVec("mtvec_coord_points_total",
		"Sweep points answered, by cache tier (or error).", "source")
	c.shardSec = r.HistogramVec("mtvec_coord_shard_seconds",
		"Sub-sweep wall time, by worker.", nil, "worker")
	c.healthyG = r.GaugeVec("mtvec_worker_healthy",
		"1 while the worker's readiness probe passes, else 0.", "worker")
	c.mSweeps = r.Counter("mtvec_coord_sweeps_total",
		"Sweep requests fanned out.")
	c.mCoalesced = r.Counter("mtvec_coord_coalesced_total",
		"Points coalesced onto an already in-flight identical point.")
	c.mRetries = r.Counter("mtvec_coord_retries_total",
		"Points re-routed to the next owner after a shard failure.")
	c.mHedges = r.Counter("mtvec_coord_hedges_total",
		"Hedged sub-sweeps raced against slow shards.")
	r.GaugeFunc("mtvec_draining",
		"1 while the coordinator is draining (readiness down), else 0.",
		func() float64 {
			if c.draining.Load() {
				return 1
			}
			return 0
		})
}

// Close stops the health prober and cancels in-flight sub-sweeps.
func (c *Coordinator) Close() { c.cancel() }

// Env returns the coordinator's local environment (spec resolution and
// persist-key computation only; it never simulates).
func (c *Coordinator) Env() *mtvec.Env { return c.env }

// Metrics returns the coordinator's registry.
func (c *Coordinator) Metrics() *metrics.Registry { return c.reg }

// StartDraining flips /readyz to 503; in-flight sweeps still complete.
func (c *Coordinator) StartDraining() { c.draining.Store(true) }

// --- health ---

func (c *Coordinator) isHealthy(worker string) bool {
	return c.health[worker].Load()
}

func (c *Coordinator) setHealthy(worker string, ok bool) {
	if c.health[worker].Swap(ok) != ok {
		if ok {
			c.healthyG.With(worker).Set(1)
		} else {
			c.healthyG.With(worker).Set(0)
		}
	}
}

func (c *Coordinator) healthyCount() int {
	n := 0
	for _, w := range c.workers {
		if c.isHealthy(w) {
			n++
		}
	}
	return n
}

// probeLoop polls every worker's /readyz. A worker that fails a probe
// (or answers 503 because it is draining) drops out of owner chains
// until a later probe passes; a shard failure marks it unhealthy
// immediately, without waiting for the prober.
func (c *Coordinator) probeLoop(every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-tick.C:
		}
		for _, w := range c.workers {
			req, err := http.NewRequestWithContext(c.ctx, http.MethodGet, w+"/readyz", nil)
			if err != nil {
				c.setHealthy(w, false)
				continue
			}
			resp, err := c.probe.Do(req)
			if err != nil {
				c.setHealthy(w, false)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			c.setHealthy(w, resp.StatusCode == http.StatusOK)
		}
	}
}

// --- sweep fan-out ---

// flightEntry is one in-flight point, shared by every request that
// asked for it; the first shard answer resolves it for all of them.
type flightEntry struct {
	key  string
	done chan struct{}
	once sync.Once
	pt   SweepPoint // cache/report/error/worker metadata (no axes)
}

func (c *Coordinator) resolveEntry(e *flightEntry, pt SweepPoint) {
	e.once.Do(func() {
		e.pt = pt
		c.mu.Lock()
		delete(c.flight, e.key)
		c.mu.Unlock()
		close(e.done)
	})
}

// acquire joins or creates the flight entry for key. The second return
// is true when the caller is the leader who must dispatch the point.
func (c *Coordinator) acquire(key string) (*flightEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.flight[key]; ok {
		return e, false
	}
	e := &flightEntry{key: key, done: make(chan struct{})}
	c.flight[key] = e
	return e, true
}

// pointTask is one point of one sweep request: its flight entry plus
// the routing state the retry/hedge paths walk.
type pointTask struct {
	idx     int
	axes    PointAxes
	entry   *flightEntry
	owners  []string
	attempt atomic.Int32 // owner index of the current (non-hedged) attempt
}

func (t *pointTask) resolved() bool {
	select {
	case <-t.entry.done:
		return true
	default:
		return false
	}
}

// pickOwner returns the first healthy owner at or after index from; if
// every remaining owner looks unhealthy it returns owners[from] anyway
// (an optimistic last resort beats failing while probes are stale).
func (c *Coordinator) pickOwner(t *pointTask, from int) (string, int, bool) {
	if from >= len(t.owners) {
		return "", 0, false
	}
	for i := from; i < len(t.owners); i++ {
		if c.isHealthy(t.owners[i]) {
			return t.owners[i], i, true
		}
	}
	return t.owners[from], from, true
}

// sweepRun is one client sweep's fan-out state: the shared base
// request and this request's retry/hedge accounting.
type sweepRun struct {
	c       *Coordinator
	base    RunRequest
	retries atomic.Int64
	hedges  atomic.Int64
}

// dispatch groups unresolved tasks by their current owner and launches
// one sub-sweep per worker. It runs under the coordinator's lifetime,
// not the client request's: a coalesced waiter from another request may
// depend on these points, and resolved points warm the owner's store
// either way (the same rationale as experiment regeneration).
func (r *sweepRun) dispatch(tasks []*pointTask) {
	groups := make(map[string][]*pointTask)
	for _, t := range tasks {
		if t.resolved() {
			continue
		}
		w, idx, ok := r.c.pickOwner(t, int(t.attempt.Load()))
		if !ok {
			r.c.resolveEntry(t.entry, SweepPoint{Error: "every worker in the point's owner chain failed"})
			continue
		}
		t.attempt.Store(int32(idx))
		groups[w] = append(groups[w], t)
	}
	for w, g := range groups {
		go r.subSweep(w, g, false)
	}
}

// subSweep answers one shard. Infra failures (unreachable worker, 5xx)
// mark the worker unhealthy and walk every point to its next owner;
// 4xx answers are terminal (the request itself is wrong — most likely
// a scale mismatch between coordinator and worker — and no other
// worker would answer differently). A non-hedged sub-sweep still
// unanswered after HedgeAfter races a duplicate against the next
// owners; resolveEntry's first-wins makes the duplicate harmless.
func (r *sweepRun) subSweep(worker string, tasks []*pointTask, hedged bool) {
	if !hedged && r.c.hedgeAfter > 0 {
		timer := time.AfterFunc(r.c.hedgeAfter, func() { r.hedge(tasks) })
		defer timer.Stop()
	}
	start := time.Now()
	pts, terminal, err := r.c.postSweep(worker, r.base, tasks)
	r.c.shardSec.With(worker).Observe(time.Since(start).Seconds())
	if err != nil {
		if terminal {
			for _, t := range tasks {
				r.c.resolveEntry(t.entry, SweepPoint{Error: fmt.Sprintf("worker %s: %v", worker, err)})
			}
			return
		}
		if hedged {
			return // hedges are best-effort; the original path owns retries
		}
		r.c.setHealthy(worker, false)
		var live []*pointTask
		for _, t := range tasks {
			if !t.resolved() {
				t.attempt.Add(1)
				live = append(live, t)
			}
		}
		if len(live) > 0 {
			r.retries.Add(int64(len(live)))
			r.c.mRetries.Add(int64(len(live)))
			r.dispatch(live)
		}
		return
	}
	for i, t := range tasks {
		pt := pts[i]
		pt.Worker = worker
		r.c.resolveEntry(t.entry, pt)
	}
}

// hedge launches one duplicate sub-sweep per next-owner for the tasks
// the slow shard has not answered yet.
func (r *sweepRun) hedge(tasks []*pointTask) {
	groups := make(map[string][]*pointTask)
	for _, t := range tasks {
		if t.resolved() {
			continue
		}
		w, _, ok := r.c.pickOwner(t, int(t.attempt.Load())+1)
		if !ok {
			continue // no further owner to race; the original attempt stands
		}
		groups[w] = append(groups[w], t)
	}
	for w, g := range groups {
		r.hedges.Add(1)
		r.c.mHedges.Inc()
		go r.subSweep(w, g, true)
	}
}

// postSweep sends one explicit-points sub-sweep. terminal reports that
// the error is the request's own fault and retrying elsewhere is
// pointless.
func (c *Coordinator) postSweep(worker string, base RunRequest, tasks []*pointTask) (pts []SweepPoint, terminal bool, err error) {
	sub := SweepRequest{Base: base, Points: make([]PointAxes, len(tasks))}
	for i, t := range tasks {
		sub.Points[i] = t.axes
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, true, err
	}
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, worker+"/api/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, true, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = fmt.Sprintf("%s: %s", resp.Status, e.Error)
		}
		return nil, resp.StatusCode >= 400 && resp.StatusCode < 500, errors.New(msg)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, false, fmt.Errorf("sub-sweep response: %w", err)
	}
	if len(sr.Points) != len(tasks) {
		return nil, false, fmt.Errorf("sub-sweep answered %d of %d points", len(sr.Points), len(tasks))
	}
	return sr.Points, false, nil
}

// sweep answers one client sweep: resolve every point, coalesce with
// whatever is already in flight cluster-wide, shard the rest by
// persist key, and collect. onPoint (optional) observes each point as
// it resolves, in completion order — the SSE progress hook.
func (c *Coordinator) sweep(ctx context.Context, rq SweepRequest, onPoint func(int, SweepPoint)) (*SweepResponse, int, error) {
	axes, err := rq.Expand()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	c.mSweeps.Inc()
	start := time.Now()

	// Resolve every point's spec locally so a malformed sweep fails
	// whole before any worker sees it, and so sharding can use the same
	// persist keys the workers' stores file results under.
	tasks := make([]*pointTask, len(axes))
	var leaders []*pointTask
	var bad []error
	var coalesced int64
	for i, pt := range axes {
		spec, err := ResolveSpec(c.env, rq.Base.at(pt))
		if err != nil {
			bad = append(bad, fmt.Errorf("point (ctx=%d, lat=%d, policy=%q): %w", pt.Contexts, pt.Latency, pt.Policy, err))
			continue
		}
		key, stable := c.env.Session().PersistKey(spec)
		routeKey := key
		if !stable {
			// Unpersistable points still route deterministically (by the
			// resolved request itself) but never coalesce: nothing
			// guarantees two executions produce one shareable answer.
			j, _ := json.Marshal(rq.Base.at(pt))
			routeKey = "unstable:" + string(j)
			key = fmt.Sprintf("once-%d", c.nonce.Add(1))
		}
		entry, leader := c.acquire(key)
		if !leader {
			coalesced++
			c.mCoalesced.Inc()
		}
		tasks[i] = &pointTask{idx: i, axes: pt, entry: entry, owners: c.ring.owners(routeKey)}
		if leader {
			leaders = append(leaders, tasks[i])
		}
	}
	if len(bad) > 0 {
		// Orphaned leader entries must not strand later identical points.
		for _, t := range leaders {
			c.resolveEntry(t.entry, SweepPoint{Error: "sweep aborted before dispatch"})
		}
		return nil, http.StatusBadRequest, errors.Join(bad...)
	}

	run := &sweepRun{c: c, base: rq.Base}
	run.dispatch(leaders)

	// Collect in completion order. Entry resolution runs under the
	// coordinator's lifetime, so a client disconnect abandons the wait
	// without cancelling the shards — their answers still warm worker
	// stores and feed coalesced requests.
	done := make(chan int, len(tasks))
	for i, t := range tasks {
		go func(i int, t *pointTask) {
			<-t.entry.done
			done <- i
		}(i, t)
	}
	resp := &SweepResponse{Points: make([]SweepPoint, len(tasks))}
	for remaining := len(tasks); remaining > 0; remaining-- {
		select {
		case i := <-done:
			t := tasks[i]
			pt := t.entry.pt
			pt.Contexts, pt.Latency, pt.Policy = t.axes.Contexts, t.axes.Latency, t.axes.Policy
			resp.Points[i] = pt
			if pt.Error != "" {
				c.pointsBy.With("error").Inc()
			} else {
				c.pointsBy.With(pt.Cache).Inc()
			}
			if onPoint != nil {
				onPoint(i, pt)
			}
		case <-ctx.Done():
			return nil, http.StatusServiceUnavailable, ctx.Err()
		}
	}
	resp.Coalesced = int(coalesced)
	resp.Retries = int(run.retries.Load())
	resp.Hedges = int(run.hedges.Load())
	resp.tally()
	resp.ElapsedMS = msSince(start)
	return resp, http.StatusOK, nil
}

// --- HTTP surface ---

// Handler returns the coordinator's routes: the worker API shape, plus
// the cluster topology endpoint. Run/sweep shard across workers;
// streams and experiment regeneration proxy to one healthy worker;
// the static catalogs answer locally.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", instrument(c.httpReq, "healthz", c.handleHealth))
	mux.HandleFunc("GET /readyz", instrument(c.httpReq, "readyz", c.handleReady))
	mux.Handle("GET /metrics", c.reg.Handler())
	mux.HandleFunc("GET /api/v1/cluster", instrument(c.httpReq, "cluster", c.handleCluster))
	mux.HandleFunc("POST /api/v1/run", instrument(c.httpReq, "run", c.handleRun))
	mux.HandleFunc("POST /api/v1/sweep", instrument(c.httpReq, "sweep", c.handleSweep))
	mux.HandleFunc("GET /api/v1/workloads", instrument(c.httpReq, "workloads", c.handleWorkloads))
	mux.HandleFunc("GET /api/v1/experiments", instrument(c.httpReq, "experiments", c.handleExperiments))
	mux.HandleFunc("GET /api/v1/experiments/{id}", instrument(c.httpReq, "experiment", c.proxyHandler))
	mux.HandleFunc("GET /api/v1/stream", instrument(c.httpReq, "stream", c.proxyHandler))
	return mux
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var rq SweepRequest
	if err := decodeJSON(w, r, &rq); err != nil {
		httpFail(w, http.StatusBadRequest, err)
		return
	}
	if !strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		resp, code, err := c.sweep(r.Context(), rq, nil)
		if err != nil {
			if mtvec.IsContextErr(err) {
				return
			}
			httpFail(w, code, err)
			return
		}
		writeJSON(w, code, resp)
		return
	}

	// SSE: one "point" event per resolved point, in completion order,
	// then the merged response as the "result" event.
	fl, ok := w.(http.Flusher)
	if !ok {
		httpFail(w, http.StatusInternalServerError, errors.New("streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	obs := &sseObserver{w: w, fl: fl}
	type pointEvent struct {
		Index int `json:"index"`
		SweepPoint
	}
	resp, _, err := c.sweep(r.Context(), rq, func(i int, pt SweepPoint) {
		obs.event("point", pointEvent{Index: i, SweepPoint: pt})
	})
	if err != nil {
		if !mtvec.IsContextErr(err) {
			obs.event("error", map[string]string{"error": err.Error()})
		}
		return
	}
	obs.event("result", resp)
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	var rq RunRequest
	if err := decodeJSON(w, r, &rq); err != nil {
		httpFail(w, http.StatusBadRequest, err)
		return
	}
	// A run is a one-point sweep: same routing, coalescing and retries.
	resp, code, err := c.sweep(r.Context(), SweepRequest{Base: rq}, nil)
	if err != nil {
		if mtvec.IsContextErr(err) {
			return
		}
		httpFail(w, code, err)
		return
	}
	pt := resp.Points[0]
	if pt.Error != "" {
		httpFail(w, http.StatusInternalServerError, errors.New(pt.Error))
		return
	}
	w.Header().Set("X-Mtvec-Cache", pt.Cache)
	w.Header().Set("X-Mtvec-Worker", pt.Worker)
	writeJSON(w, http.StatusOK, RunResponse{Cache: pt.Cache, ElapsedMS: resp.ElapsedMS, Report: pt.Report})
}

// proxyHandler forwards the request to one healthy worker (round
// robin). Streams flush immediately, so SSE passes through live.
func (c *Coordinator) proxyHandler(w http.ResponseWriter, r *http.Request) {
	worker, ok := c.pickProxyTarget()
	if !ok {
		httpFail(w, http.StatusServiceUnavailable, errors.New("no healthy worker"))
		return
	}
	target := c.targets[worker]
	proxy := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(target)
			pr.Out.Host = target.Host
		},
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			c.setHealthy(worker, false)
			httpFail(w, http.StatusBadGateway, fmt.Errorf("worker %s: %v", worker, err))
		},
	}
	proxy.ServeHTTP(w, r)
}

func (c *Coordinator) pickProxyTarget() (string, bool) {
	n := len(c.workers)
	start := int(c.rr.Add(1))
	for i := 0; i < n; i++ {
		w := c.workers[(start+i)%n]
		if c.isHealthy(w) {
			return w, true
		}
	}
	return "", false
}

func (c *Coordinator) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workloadCatalog())
}

func (c *Coordinator) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var list []experimentInfo
	for _, e := range mtvec.Experiments() {
		list = append(list, experimentInfo{ID: e.ID, Title: e.Title, PaperShape: e.PaperShape})
	}
	writeJSON(w, http.StatusOK, list)
}

// workerStatus is one /api/v1/cluster topology row.
type workerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// clusterResponse is the /api/v1/cluster body.
type clusterResponse struct {
	Scale        float64        `json:"scale"`
	Vnodes       int            `json:"vnodes_per_worker"`
	HedgeAfterMS float64        `json:"hedge_after_ms,omitempty"`
	Workers      []workerStatus `json:"workers"`
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	resp := clusterResponse{
		Scale:        c.env.Scale,
		Vnodes:       ringVnodes,
		HedgeAfterMS: float64(c.hedgeAfter.Nanoseconds()) / 1e6,
	}
	for _, worker := range c.workers {
		resp.Workers = append(resp.Workers, workerStatus{URL: worker, Healthy: c.isHealthy(worker)})
	}
	writeJSON(w, http.StatusOK, resp)
}

// coordHealth is the coordinator's /healthz body.
type coordHealth struct {
	Status         string  `json:"status"`
	Role           string  `json:"role"`
	UptimeS        float64 `json:"uptime_s"`
	Scale          float64 `json:"scale"`
	Workers        int     `json:"workers"`
	HealthyWorkers int     `json:"healthy_workers"`
	Draining       bool    `json:"draining,omitempty"`
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, coordHealth{
		Status:         "ok",
		Role:           "coordinator",
		UptimeS:        time.Since(c.start).Seconds(),
		Scale:          c.env.Scale,
		Workers:        len(c.workers),
		HealthyWorkers: c.healthyCount(),
		Draining:       c.draining.Load(),
	})
}

// handleReady reports readiness: draining or a fully-dead worker pool
// both mean new sweeps should go elsewhere.
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	switch {
	case c.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
	case c.healthyCount() == 0:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no healthy workers"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func httpFail(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
