package store

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mtvec/internal/stats"
)

// sampleReport builds a fully-populated report so round-trips cover
// every field, including nested slices.
func sampleReport() *stats.Report {
	return &stats.Report{
		Cycles:         123456,
		Breakdown:      stats.Breakdown{10, 20, 30, 40, 50, 60, 70, 80},
		MemBusyCycles:  999,
		MemRequests:    888,
		MemPorts:       1,
		VectorArithOps: 777,
		VectorOps:      1777,
		Insts:          555,
		LostDecode:     44,
		Threads: []stats.ThreadReport{
			{Program: "tf", Completions: 1, PartialInsts: 0, Dispatched: 555},
			{Program: "sw", Completions: 3, PartialInsts: 17, Dispatched: 444},
		},
		Spans: []stats.Span{
			{Thread: 0, Program: "tf", Start: 0, End: 1000},
			{Thread: 1, Program: "sw", Start: 5, End: 950},
		},
	}
}

func TestRoundTripByteIdentical(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "mode=1,|ws=tf@0.001,|policy=default|ctx=1,"
	if _, tier := s.Get(key); tier.Hit() {
		t.Fatal("empty store reported a hit")
	}
	want := sampleReport()
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, tier := s.Get(key)
	if tier != TierLocal {
		t.Fatalf("stored record not found (tier %v)", tier)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// Byte-identical: the canonical JSON of the reread report matches
	// the original's exactly.
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Fatalf("JSON round trip differs:\ngot  %s\nwant %s", gb, wb)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 write", st)
	}
}

func TestReopenSurvivesProcessBoundary(t *testing.T) {
	dir := t.TempDir()
	key := "some-key"
	want := sampleReport()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(key, want); err != nil {
		t.Fatal(err)
	}
	// A second Store over the same directory models a new process.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, tier := s2.Get(key)
	if !tier.Hit() {
		t.Fatal("record invisible after reopen")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reopened record differs")
	}
}

// corruptions lists the ways a record file can go bad; each must read
// as a miss and be deleted, never served.
func TestCorruptRecordsRecovered(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(path string, t *testing.T)
	}{
		{"truncated", func(p string, t *testing.T) {
			data, _ := os.ReadFile(p)
			os.WriteFile(p, data[:len(data)/2], 0o644)
		}},
		{"bitflip-payload", func(p string, t *testing.T) {
			data, _ := os.ReadFile(p)
			// Flip a digit inside the report payload without breaking
			// the JSON: the integrity hash must catch it.
			var rec record
			if err := json.Unmarshal(data, &rec); err != nil {
				t.Fatal(err)
			}
			rec.Report = []byte(`{"Cycles":1}`)
			out, _ := json.Marshal(rec)
			os.WriteFile(p, out, 0o644)
		}},
		{"wrong-schema", func(p string, t *testing.T) {
			data, _ := os.ReadFile(p)
			var rec record
			if err := json.Unmarshal(data, &rec); err != nil {
				t.Fatal(err)
			}
			rec.Schema = Schema + 1
			out, _ := json.Marshal(rec)
			os.WriteFile(p, out, 0o644)
		}},
		{"wrong-key", func(p string, t *testing.T) {
			data, _ := os.ReadFile(p)
			var rec record
			if err := json.Unmarshal(data, &rec); err != nil {
				t.Fatal(err)
			}
			rec.Key = "someone-else"
			out, _ := json.Marshal(rec)
			os.WriteFile(p, out, 0o644)
		}},
		{"not-json", func(p string, t *testing.T) {
			os.WriteFile(p, []byte("hello\x00world"), 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			const key = "k"
			if err := s.Put(key, sampleReport()); err != nil {
				t.Fatal(err)
			}
			tc.mangle(s.path(key), t)
			if _, tier := s.Get(key); tier.Hit() {
				t.Fatal("corrupt record served")
			}
			if s.Stats().Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", s.Stats().Corrupt)
			}
			if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
				t.Error("corrupt record not deleted")
			}
			// The slot heals: a rewrite serves again.
			if err := s.Put(key, sampleReport()); err != nil {
				t.Fatal(err)
			}
			if _, tier := s.Get(key); !tier.Hit() {
				t.Fatal("healed record not served")
			}
		})
	}
}

func TestDoComputesOnceAcrossStores(t *testing.T) {
	// Two Stores on one directory model two processes: under Do only one
	// computes per key, the rest serve the winner's record.
	dir := t.TempDir()
	var stores []*Store
	for i := 0; i < 2; i++ {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.SetLockTuning(time.Minute, time.Millisecond)
		stores = append(stores, s)
	}
	var computes atomic.Int64
	var wg sync.WaitGroup
	const key = "shared"
	reps := make([]*stats.Report, 8)
	for i := 0; i < len(reps); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, _, err := stores[i%2].Do(context.Background(), key, func() (*stats.Report, error) {
				computes.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the race window
				return sampleReport(), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			reps[i] = rep
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	// Counters tally one event per logical Do: 1 miss (the computer) and
	// 7 hits across the two stores, regardless of internal re-checks.
	var hits, misses int64
	for _, s := range stores {
		hits += s.Stats().Hits
		misses += s.Stats().Misses
	}
	if hits != 7 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 7/1", hits, misses)
	}
	want, _ := json.Marshal(sampleReport())
	for i, rep := range reps {
		got, _ := json.Marshal(rep)
		if string(got) != string(want) {
			t.Errorf("caller %d got a different report", i)
		}
	}
}

func TestDoFailedComputeNotPersisted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetLockTuning(time.Minute, time.Millisecond)
	boom := errors.New("boom")
	if _, _, err := s.Do(context.Background(), "k", func() (*stats.Report, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, tier := s.Get("k"); tier.Hit() {
		t.Fatal("failed compute persisted")
	}
	// The lock must be released: a follow-up compute proceeds promptly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, err := s.Do(context.Background(), "k", func() (*stats.Report, error) {
			return sampleReport(), nil
		}); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lock leaked by failed compute")
	}
}

func TestDoCancelledWhileWaiting(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetLockTuning(time.Minute, 5*time.Millisecond)
	// Hold the lock from a fake peer.
	unlock, err := s.lock(context.Background(), "k")
	if err != nil || unlock == nil {
		t.Fatalf("seed lock: %v", err)
	}
	defer unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err = s.Do(ctx, "k", func() (*stats.Report, error) {
		t.Error("compute ran despite held lock")
		return sampleReport(), nil
	})
	if !IsContextErr(err) {
		t.Fatalf("err = %v, want context error", err)
	}
}

func TestStaleLockStolen(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetLockTuning(50*time.Millisecond, 5*time.Millisecond)
	// Plant a lock and age it: a holder that never returns.
	lockPath := s.path("k") + ".lock"
	os.MkdirAll(filepath.Dir(lockPath), 0o755)
	if err := os.WriteFile(lockPath, []byte("dead\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	os.Chtimes(lockPath, old, old)

	rep, tier, err := s.Do(context.Background(), "k", func() (*stats.Report, error) {
		return sampleReport(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tier.Hit() || rep == nil {
		t.Fatal("stale lock not stolen")
	}
}

func TestTryLock(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	release := s.TryLock("k")
	if release == nil {
		t.Fatal("TryLock on a free key failed")
	}
	lockPath := s.path("k") + ".lock"
	if _, err := os.Stat(lockPath); err != nil {
		t.Fatalf("no lock file after TryLock: %v", err)
	}
	// Held: a second claim must not block, just miss.
	if again := s.TryLock("k"); again != nil {
		again()
		t.Fatal("TryLock succeeded on a held key")
	}
	release()
	if _, err := os.Stat(lockPath); !os.IsNotExist(err) {
		t.Fatalf("lock file survived release: %v", err)
	}
	// Released: claimable again; release is idempotent-safe to call once.
	if release = s.TryLock("k"); release == nil {
		t.Fatal("TryLock after release failed")
	}
	release()
}

func TestTryLockStealsStale(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetLockTuning(50*time.Millisecond, 5*time.Millisecond)
	lockPath := s.path("k") + ".lock"
	os.MkdirAll(filepath.Dir(lockPath), 0o755)
	if err := os.WriteFile(lockPath, []byte("dead\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	os.Chtimes(lockPath, old, old)

	release := s.TryLock("k")
	if release == nil {
		t.Fatal("stale lock not stolen")
	}
	release()
	if _, err := os.Stat(lockPath); !os.IsNotExist(err) {
		t.Fatal("lock file survived release after steal")
	}
	// A fresh foreign lock is respected, and release never removes a
	// lock the releaser does not own.
	if err := os.WriteFile(lockPath, []byte("alive\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := s.TryLock("k"); got != nil {
		got()
		t.Fatal("fresh foreign lock stolen")
	}
	release() // second call: token no longer matches anything of ours
	if data, err := os.ReadFile(lockPath); err != nil || string(data) != "alive\n" {
		t.Fatalf("foreign lock disturbed: %q, %v", data, err)
	}
}

func TestTieredTryLock(t *testing.T) {
	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(local)
	release := tiered.TryLock("k")
	if release == nil {
		t.Fatal("tiered TryLock with a local tier failed")
	}
	if local.TryLock("k") != nil {
		t.Fatal("tiered lock did not reach the local tier")
	}
	release()

	if NewTiered(nil).TryLock("k") != nil {
		t.Fatal("diskless tiered composite claimed a lock")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty directory accepted")
	}
}

func TestPathSharding(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := s.path("some-key")
	rel, err := filepath.Rel(s.root, p)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Base(filepath.Dir(p))
	base := filepath.Base(p)
	if len(dir) != 2 || base[:2] != dir {
		t.Errorf("path %q not sharded by leading hash byte", rel)
	}
}
