package store

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtvec/internal/stats"
)

// RecordPath is the HTTP path of the peer-to-peer record API that
// RecordHandler serves and HTTPPeer consumes. Workers mount it so
// peers (and fresh replicas) can warm-start from their store.
const RecordPath = "/api/v1/store/record"

// maxRecordBytes bounds one record on the wire. Reports are a few KB;
// the bound only exists so a confused peer cannot make us buffer
// arbitrary data.
const maxRecordBytes = 8 << 20

// HTTPPeer is a Backend over another process's record API: Get fetches
// and re-verifies the peer's record envelope, Put uploads one. It is
// how a fresh worker warm-starts from the fleet (usually wrapped in a
// Tiered together with a local Dir).
//
// Network and peer failures are misses, never errors: a peer going away
// degrades the backend to recomputing, exactly like a cold local store.
type HTTPPeer struct {
	url    string // <base>/api/v1/store/record
	client *http.Client

	// flight single-flights concurrent Do calls per key within this
	// process; cross-process single-flight is the serving Dir's job.
	mu     sync.Mutex
	flight map[string]*peerCall

	hits    atomic.Int64
	misses  atomic.Int64
	writes  atomic.Int64
	corrupt atomic.Int64
}

type peerCall struct {
	done chan struct{}
	rep  *stats.Report
	tier Tier
	err  error
}

// NewHTTPPeer builds a peer backend for a worker's base URL (e.g.
// "http://host:8372"); the record API path is appended. A nil client
// selects a default with a 30s timeout.
func NewHTTPPeer(base string, client *http.Client) (*HTTPPeer, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("store: peer url %q: %w", base, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("store: peer url %q: need http or https", base)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("store: peer url %q: missing host", base)
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPPeer{
		url:    strings.TrimSuffix(base, "/") + RecordPath,
		client: client,
		flight: make(map[string]*peerCall),
	}, nil
}

// URL returns the record-API endpoint this peer talks to.
func (p *HTTPPeer) URL() string { return p.url }

// Stats returns a snapshot of the peer's counters. Hits are by
// definition peer hits, so PeerHits mirrors Hits.
func (p *HTTPPeer) Stats() Stats {
	h := p.hits.Load()
	return Stats{
		Hits:     h,
		Misses:   p.misses.Load(),
		Writes:   p.writes.Load(),
		Corrupt:  p.corrupt.Load(),
		PeerHits: h,
	}
}

// Get fetches the record for key from the peer and re-verifies the
// envelope locally — a peer is trusted no more than the local disk. Any
// failure (network, HTTP status, verification) is a miss.
func (p *HTTPPeer) Get(key string) (*stats.Report, Tier) {
	req, err := http.NewRequest(http.MethodGet, p.url+"?key="+url.QueryEscape(key), nil)
	if err != nil {
		p.misses.Add(1)
		return nil, TierMiss
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.misses.Add(1)
		return nil, TierMiss
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		p.misses.Add(1)
		return nil, TierMiss
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRecordBytes))
	if err != nil {
		p.misses.Add(1)
		return nil, TierMiss
	}
	rep, err := DecodeRecord(data, key)
	if err != nil {
		// The peer answered, but with bytes that do not verify: that is
		// corruption (or a hostile peer), not a plain miss.
		p.corrupt.Add(1)
		p.misses.Add(1)
		return nil, TierMiss
	}
	p.hits.Add(1)
	return rep, TierPeer
}

// Put uploads the record for key to the peer (the peer re-verifies the
// envelope before persisting it).
func (p *HTTPPeer) Put(key string, rep *stats.Report) error {
	data, err := EncodeRecord(key, rep)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, p.url+"?key="+url.QueryEscape(key), strings.NewReader(string(data)))
	if err != nil {
		return fmt.Errorf("store: peer put: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return fmt.Errorf("store: peer put: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("store: peer put: %s", resp.Status)
	}
	p.writes.Add(1)
	return nil
}

// Do returns the peer's record for key, computing and uploading it on a
// miss. Concurrent Do calls for one key on this HTTPPeer single-flight
// in-process (the leader computes, followers share); cancelled leaders
// are forgotten so live followers retry, mirroring the session cache's
// forget-on-cancel rule. Cross-process single-flight belongs to the
// Dir behind the serving peer, not to this client.
func (p *HTTPPeer) Do(ctx context.Context, key string, compute func() (*stats.Report, error)) (*stats.Report, Tier, error) {
	for {
		p.mu.Lock()
		if c, ok := p.flight[key]; ok {
			p.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, TierMiss, ctx.Err()
			}
			if c.err != nil && IsContextErr(c.err) {
				// Leader was cancelled; retry under our own context.
				continue
			}
			return c.rep, c.tier, c.err
		}
		c := &peerCall{done: make(chan struct{})}
		p.flight[key] = c
		p.mu.Unlock()

		c.rep, c.tier, c.err = p.do(ctx, key, compute)
		p.mu.Lock()
		delete(p.flight, key)
		p.mu.Unlock()
		close(c.done)
		return c.rep, c.tier, c.err
	}
}

// do is one un-deduplicated Do attempt.
func (p *HTTPPeer) do(ctx context.Context, key string, compute func() (*stats.Report, error)) (*stats.Report, Tier, error) {
	if rep, tier := p.Get(key); tier.Hit() {
		return rep, tier, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, TierMiss, err
	}
	rep, err := compute()
	if err != nil {
		return nil, TierMiss, err
	}
	// Best-effort upload: a failed write degrades the peer to a miss
	// next time, never the computed result.
	_ = p.Put(key, rep)
	return rep, TierMiss, nil
}

// RecordHandler serves the peer-to-peer record API over a Dir:
//
//	GET  <path>?key=K  -> 200 record envelope | 404
//	PUT  <path>?key=K  -> 204 after verifying the envelope | 400
//
// Every served and accepted record is verified — the handler never
// relays bytes it cannot vouch for, and never persists bytes that do
// not verify against the requested key.
func RecordHandler(d *Dir) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			httpError(w, http.StatusBadRequest, "missing key parameter")
			return
		}
		switch r.Method {
		case http.MethodGet:
			rep, tier := d.Get(key)
			if !tier.Hit() {
				httpError(w, http.StatusNotFound, "no record")
				return
			}
			data, err := EncodeRecord(key, rep)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(append(data, '\n'))
		case http.MethodPut:
			data, err := io.ReadAll(io.LimitReader(r.Body, maxRecordBytes))
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			rep, err := DecodeRecord(data, key)
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			if err := d.Put(key, rep); err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			httpError(w, http.StatusMethodNotAllowed, "GET or PUT")
		}
	})
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
