package store

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mtvec/internal/stats"
)

// backendFixture is one Backend implementation under conformance test.
type backendFixture struct {
	name string
	// build returns the backend, the tier a Put-then-Get hit reports,
	// and a corrupt func that mangles the stored record for a key
	// wherever it physically lives.
	build func(t *testing.T) (b Backend, hitTier Tier, corrupt func(key string))
}

// fixtures enumerates every Backend implementation. All of them must
// satisfy the same contract: verified round trips, misses for unknown
// keys, corruption read as a miss and healed by recompute, and
// single-flight Do.
func fixtures() []backendFixture {
	return []backendFixture{
		{"Dir", func(t *testing.T) (Backend, Tier, func(string)) {
			d, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			d.SetLockTuning(time.Minute, time.Millisecond)
			return d, TierLocal, func(key string) { mangle(t, d, key) }
		}},
		{"HTTPPeer", func(t *testing.T) (Backend, Tier, func(string)) {
			remote, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(RecordHandler(remote))
			t.Cleanup(srv.Close)
			p, err := NewHTTPPeer(srv.URL, srv.Client())
			if err != nil {
				t.Fatal(err)
			}
			return p, TierPeer, func(key string) { mangle(t, remote, key) }
		}},
		{"Tiered", func(t *testing.T) (Backend, Tier, func(string)) {
			local, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			local.SetLockTuning(time.Minute, time.Millisecond)
			remote, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(RecordHandler(remote))
			t.Cleanup(srv.Close)
			p, err := NewHTTPPeer(srv.URL, srv.Client())
			if err != nil {
				t.Fatal(err)
			}
			tiered := NewTiered(local, p)
			// Writes land locally, so corruption must hit the local tier.
			return tiered, TierLocal, func(key string) { mangle(t, local, key) }
		}},
	}
}

// mangle overwrites the record file for key in d with garbage.
func mangle(t *testing.T, d *Dir, key string) {
	t.Helper()
	if err := os.WriteFile(d.path(key), []byte("garbage\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBackendConformanceRoundTrip(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			b, hitTier, _ := fx.build(t)
			const key = "conf-roundtrip"
			if _, tier := b.Get(key); tier.Hit() {
				t.Fatal("empty backend reported a hit")
			}
			want := sampleReport()
			if err := b.Put(key, want); err != nil {
				t.Fatal(err)
			}
			got, tier := b.Get(key)
			if tier != hitTier {
				t.Fatalf("hit tier = %v, want %v", tier, hitTier)
			}
			gb, _ := json.Marshal(got)
			wb, _ := json.Marshal(want)
			if string(gb) != string(wb) {
				t.Fatalf("round trip not byte-identical:\ngot  %s\nwant %s", gb, wb)
			}
		})
	}
}

func TestBackendConformanceCorruptRecovery(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			b, _, corrupt := fx.build(t)
			const key = "conf-corrupt"
			if err := b.Put(key, sampleReport()); err != nil {
				t.Fatal(err)
			}
			corrupt(key)
			if _, tier := b.Get(key); tier.Hit() {
				t.Fatal("corrupt record served")
			}
			// Do heals the slot: compute runs once, and the result serves
			// from then on.
			var computes atomic.Int64
			rep, tier, err := b.Do(context.Background(), key, func() (*stats.Report, error) {
				computes.Add(1)
				return sampleReport(), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if tier.Hit() {
				t.Fatalf("Do over a corrupt record reported tier %v, want miss", tier)
			}
			if computes.Load() != 1 || rep == nil {
				t.Fatalf("compute ran %d times, want 1", computes.Load())
			}
			if _, tier := b.Get(key); !tier.Hit() {
				t.Fatal("healed record not served")
			}
		})
	}
}

func TestBackendConformanceSingleFlight(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			b, _, _ := fx.build(t)
			const key = "conf-flight"
			var computes atomic.Int64
			var wg sync.WaitGroup
			reps := make([]*stats.Report, 8)
			for i := range reps {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rep, _, err := b.Do(context.Background(), key, func() (*stats.Report, error) {
						computes.Add(1)
						time.Sleep(20 * time.Millisecond) // widen the race window
						return sampleReport(), nil
					})
					if err != nil {
						t.Error(err)
						return
					}
					reps[i] = rep
				}()
			}
			wg.Wait()
			if n := computes.Load(); n != 1 {
				t.Errorf("compute ran %d times, want 1", n)
			}
			want, _ := json.Marshal(sampleReport())
			for i, rep := range reps {
				got, _ := json.Marshal(rep)
				if string(got) != string(want) {
					t.Errorf("caller %d got a different report", i)
				}
			}
		})
	}
}

// TestTieredPeerWarmStart is the warm-start property the cluster tier
// depends on: a record that exists only on a peer is served (TierPeer)
// and written back to the local tier, so the next lookup is local.
func TestTieredPeerWarmStart(t *testing.T) {
	remote, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(RecordHandler(remote))
	defer srv.Close()
	// RecordHandler only reads the query string, so serving it at "/"
	// works for a peer whose URL has the path baked in.
	p, err := NewHTTPPeer(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	local, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(local, p)

	const key = "warm-start"
	want := sampleReport()
	if err := remote.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, tier := tiered.Get(key)
	if tier != TierPeer {
		t.Fatalf("tier = %v, want peer", tier)
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Fatal("peer round trip differs")
	}
	// Written back: the local tier now serves it without the peer.
	if _, tier := local.Get(key); tier != TierLocal {
		t.Fatal("peer hit not written back to local tier")
	}
	if st := tiered.Stats(); st.PeerHits != 1 {
		t.Errorf("PeerHits = %d, want 1", st.PeerHits)
	}
}

// TestTieredDiskless covers the degenerate composite: no local tier,
// peers only.
func TestTieredDiskless(t *testing.T) {
	remote, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(RecordHandler(remote))
	defer srv.Close()
	p, err := NewHTTPPeer(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(nil, p)
	const key = "diskless"
	if err := tiered.Put(key, sampleReport()); err != nil {
		t.Fatalf("diskless Put must be a no-op, got %v", err)
	}
	rep, tier, err := tiered.Do(context.Background(), key, func() (*stats.Report, error) {
		return sampleReport(), nil
	})
	if err != nil || rep == nil || tier.Hit() {
		t.Fatalf("diskless Do = (%v, %v, %v), want computed miss", rep, tier, err)
	}
	if err := remote.Put(key, sampleReport()); err != nil {
		t.Fatal(err)
	}
	if _, tier := tiered.Get(key); tier != TierPeer {
		t.Fatalf("tier = %v, want peer", tier)
	}
}

// TestHTTPPeerDownIsMiss pins the degradation contract: an unreachable
// peer is a miss (and a failed Put an error), never a crash or a hang.
func TestHTTPPeerDownIsMiss(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens anymore
	p, err := NewHTTPPeer(url, &http.Client{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, tier := p.Get("k"); tier.Hit() {
		t.Fatal("dead peer reported a hit")
	}
	if err := p.Put("k", sampleReport()); err == nil {
		t.Fatal("dead peer accepted a Put")
	}
	// Do still computes: the peer going away degrades to recomputing.
	rep, tier, err := p.Do(context.Background(), "k", func() (*stats.Report, error) {
		return sampleReport(), nil
	})
	if err != nil || rep == nil || tier.Hit() {
		t.Fatalf("Do against dead peer = (%v, %v, %v), want computed miss", rep, tier, err)
	}
	if st := p.Stats(); st.Misses == 0 {
		t.Error("dead-peer lookups not counted as misses")
	}
}

// TestHTTPPeerCorruptCounted pins client-side re-verification: a peer
// serving bytes that do not verify is counted corrupt and read as a
// miss.
func TestHTTPPeerCorruptCounted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"schema":1,"key":"k","sum":"deadbeef","report":{}}`))
	}))
	defer srv.Close()
	p, err := NewHTTPPeer(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, tier := p.Get("k"); tier.Hit() {
		t.Fatal("unverifiable peer record served")
	}
	if st := p.Stats(); st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
}

// TestNewHTTPPeerRejectsBadURL pins constructor validation.
func TestNewHTTPPeerRejectsBadURL(t *testing.T) {
	for _, bad := range []string{"", "ftp://x", "http://", ":\x00:"} {
		if _, err := NewHTTPPeer(bad, nil); err == nil {
			t.Errorf("NewHTTPPeer(%q) accepted", bad)
		}
	}
}

// TestOpenOptionsValidation pins Options handling.
func TestOpenOptionsValidation(t *testing.T) {
	if _, err := OpenOptions(t.TempDir(), Options{StealAge: -1}); err == nil {
		t.Error("negative StealAge accepted")
	}
	if _, err := OpenOptions(t.TempDir(), Options{LockPoll: -1}); err == nil {
		t.Error("negative LockPoll accepted")
	}
	d, err := OpenOptions(t.TempDir(), Options{StealAge: time.Hour, LockPoll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if d.lockStale != time.Hour || d.lockPoll != time.Millisecond {
		t.Errorf("options not applied: stale %v poll %v", d.lockStale, d.lockPoll)
	}
}
