package store

import (
	"context"

	"mtvec/internal/stats"
)

// Tier identifies which side of a backend served a lookup.
type Tier int

const (
	// TierMiss: the backend did not serve the result (absent, or Do
	// computed it fresh).
	TierMiss Tier = iota
	// TierLocal: served from this process's on-disk tier.
	TierLocal
	// TierPeer: served by a remote peer backend.
	TierPeer
)

// Hit reports whether the tier represents a served result.
func (t Tier) Hit() bool { return t != TierMiss }

// String names the tier ("miss", "local", "peer").
func (t Tier) String() string {
	switch t {
	case TierMiss:
		return "miss"
	case TierLocal:
		return "local"
	case TierPeer:
		return "peer"
	}
	return "unknown"
}

// Backend is a persistent result tier the session engine can sit on: a
// content-addressed table of verified Reports. Implementations must be
// safe for concurrent use and must never serve a record that fails
// verification — a corrupt or stale entry is a miss, recomputed rather
// than trusted.
//
// The package provides three: Dir (on-disk, cross-process
// single-flight), HTTPPeer (a remote worker's record API) and Tiered
// (local disk warmed from peers). All of them satisfy the same
// conformance suite (see conformance_test.go).
type Backend interface {
	// Get returns the verified report for key and the tier that served
	// it, or (nil, TierMiss).
	Get(key string) (*stats.Report, Tier)
	// Put persists the report under key. Writers of one key all write
	// identical bytes (simulations are pure functions of their key), so
	// concurrent Puts are harmless.
	Put(key string, rep *stats.Report) error
	// Do returns the report for key, computing and persisting it with
	// compute on a verified miss; the tier is TierMiss when compute ran.
	// Concurrent Do calls for one key on one backend compute at most
	// once (and at most once per process fleet, for backends with
	// cross-process single-flight). Do returns an error only from ctx
	// or compute, never from storage I/O.
	Do(ctx context.Context, key string, compute func() (*stats.Report, error)) (*stats.Report, Tier, error)
	// Stats snapshots the backend's process-local counters.
	Stats() Stats
}

// Compile-time interface checks.
var (
	_ Backend = (*Dir)(nil)
	_ Backend = (*HTTPPeer)(nil)
	_ Backend = (*Tiered)(nil)
)

// Tiered composes a local Dir with remote peer backends: lookups try
// local disk first, then each peer in order, and a peer hit is written
// back to the local tier — so a fresh worker warm-starts from the
// fleet's results instead of re-simulating them. Writes go to the local
// tier only; peers are read-only from here (each peer persists its own
// work).
//
// local may be nil (a diskless worker serving purely from peers); Put
// is then a no-op and Do degrades to per-call compute after the peer
// check.
type Tiered struct {
	local *Dir
	peers []Backend
}

// NewTiered builds the composite. Nil peers are skipped.
func NewTiered(local *Dir, peers ...Backend) *Tiered {
	t := &Tiered{local: local}
	for _, p := range peers {
		if p != nil {
			t.peers = append(t.peers, p)
		}
	}
	return t
}

// Local returns the composite's on-disk tier (nil when diskless).
func (t *Tiered) Local() *Dir { return t.local }

// Get tries local disk, then each peer in order. A peer hit is written
// through to the local tier (best-effort) so the next lookup is local.
func (t *Tiered) Get(key string) (*stats.Report, Tier) {
	if t.local != nil {
		if rep, tier := t.local.Get(key); tier.Hit() {
			return rep, tier
		}
	}
	for _, p := range t.peers {
		if rep, tier := p.Get(key); tier.Hit() {
			if t.local != nil {
				_ = t.local.Put(key, rep)
			}
			return rep, TierPeer
		}
	}
	return nil, TierMiss
}

// Put persists to the local tier (no-op when diskless).
func (t *Tiered) Put(key string, rep *stats.Report) error {
	if t.local == nil {
		return nil
	}
	return t.local.Put(key, rep)
}

// Do checks every tier once, then computes under the local Dir's
// cross-process single-flight (or directly, when diskless). Peers are
// not re-checked under the lock: the single pre-check bounds remote
// round trips at one per tier per call.
func (t *Tiered) Do(ctx context.Context, key string, compute func() (*stats.Report, error)) (*stats.Report, Tier, error) {
	if rep, tier := t.Get(key); tier.Hit() {
		return rep, tier, nil
	}
	if t.local != nil {
		return t.local.Do(ctx, key, compute)
	}
	if err := ctx.Err(); err != nil {
		return nil, TierMiss, err
	}
	rep, err := compute()
	if err != nil {
		return nil, TierMiss, err
	}
	return rep, TierMiss, nil
}

// TryLock delegates to the local tier's non-blocking per-key lock (see
// Dir.TryLock); a diskless composite cannot lock and returns nil.
func (t *Tiered) TryLock(key string) (release func()) {
	if t.local == nil {
		return nil
	}
	return t.local.TryLock(key)
}

// Compile-time checks: the lockable backends expose TryLock.
var (
	_ TryLocker = (*Dir)(nil)
	_ TryLocker = (*Tiered)(nil)
)

// Stats aggregates the composite's children: local counters plus every
// peer's, with PeerHits carrying the peers' combined hit count.
func (t *Tiered) Stats() Stats {
	var s Stats
	if t.local != nil {
		s.add(t.local.Stats())
	}
	for _, p := range t.peers {
		ps := p.Stats()
		ps.PeerHits = ps.Hits
		s.add(ps)
	}
	return s
}
