// Package store is the persistent second tier under the session memo
// cache: a content-addressed table of simulation Reports behind a small
// Backend interface with three implementations — Dir (on-disk), HTTPPeer
// (a remote worker's record API) and Tiered (local disk warmed from
// peers).
//
// Every record is keyed by the session's canonical persist key — the
// full (mode, workload provenance, policy, machine shape, stop rule)
// encoding, covering the arch/register-file/VLen dimensions — hashed
// with SHA-256 into a sharded file path under a format-versioned root:
//
//	<dir>/v1/<hh>/<sha256>.json
//
// Records are self-describing JSON envelopes carrying the format
// schema, the full key (so hash collisions and cross-key file moves are
// detected, never trusted), and an integrity hash of the report
// payload. A record that fails any of those checks — truncated write,
// bit rot, schema from a future version, key mismatch — is treated as a
// miss and deleted, so corrupt or stale entries are recomputed rather
// than served. The same envelope travels the wire between peers, and
// HTTPPeer re-verifies it on receipt: a peer is trusted no more than
// the local disk.
//
// # Concurrency
//
// A Dir is safe for concurrent use by any number of goroutines and
// processes sharing the directory. Writes are atomic (temp file +
// rename), and because every simulation is a pure function of its key,
// concurrent writers of one key write byte-identical records — last
// writer wins harmlessly. Do adds cross-process single-flight on top: a
// lock file elects one computing process per key while the others poll
// for its result, so a fleet of processes warming one store directory
// simulates each point once. Lock holders that die are detected by age
// and their locks stolen (the bound is Options.StealAge); a cancelled
// compute releases the lock without writing, preserving the engine's
// forget-on-cancel semantics on disk.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"mtvec/internal/runner"
	"mtvec/internal/stats"
)

// Schema versions the record envelope. Readers reject records with a
// different schema (treated as a miss, recomputed); the layout version
// in the directory path isolates incompatible path schemes.
const Schema = 1

// layoutVersion names the on-disk layout root. Bump it together with
// Schema when the path scheme or envelope changes incompatibly: old and
// new binaries then share a directory without serving each other's
// records.
const layoutVersion = "v1"

// Options tunes a Dir. The zero value selects every default.
type Options struct {
	// StealAge is the age after which another process's lock file is
	// presumed abandoned (its holder crashed) and stolen. Zero selects
	// DefaultStealAge. Set it below the longest simulation a deployment
	// can run and a healthy holder will be displaced — the loser only
	// duplicates work, never corrupts it, but the single-flight is gone.
	StealAge time.Duration
	// LockPoll is the interval at which lock waiters re-check for the
	// holder's result. Zero selects 25ms.
	LockPoll time.Duration
}

// DefaultStealAge is the default lock-file steal age.
const DefaultStealAge = 10 * time.Minute

// Dir is one on-disk result store rooted at a directory.
type Dir struct {
	root string // <dir>/<layoutVersion>

	// lockStale is the age after which another process's lock file is
	// presumed abandoned (its holder crashed) and stolen.
	lockStale time.Duration
	// lockPoll is the interval at which lock waiters re-check for the
	// holder's result.
	lockPoll time.Duration

	hits    atomic.Int64
	misses  atomic.Int64
	writes  atomic.Int64
	corrupt atomic.Int64
}

// Store is the historical name of the on-disk tier.
//
// Deprecated: use Dir (the Backend interface has other implementations
// now). The alias is permanent; existing code keeps compiling.
type Store = Dir

// Stats is a snapshot of a backend's counters (process-local, not
// persisted).
type Stats struct {
	Hits    int64 `json:"hits"`    // Get/Do served a verified record
	Misses  int64 `json:"misses"`  // no record (or none that verified)
	Writes  int64 `json:"writes"`  // records written
	Corrupt int64 `json:"corrupt"` // records dropped for failing verification
	// PeerHits counts the subset of Hits served by a remote peer rather
	// than local disk (Tiered and HTTPPeer backends; always 0 on a Dir).
	PeerHits int64 `json:"peer_hits,omitempty"`
}

// add accumulates o into s (Tiered aggregates its children).
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Writes += o.Writes
	s.Corrupt += o.Corrupt
	s.PeerHits += o.PeerHits
}

// Open creates (if needed) and opens the store rooted at dir with
// default Options.
func Open(dir string) (*Dir, error) { return OpenOptions(dir, Options{}) }

// OpenOptions creates (if needed) and opens the store rooted at dir.
func OpenOptions(dir string, o Options) (*Dir, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if o.StealAge < 0 || o.LockPoll < 0 {
		return nil, fmt.Errorf("store: negative lock tuning (steal age %v, poll %v)", o.StealAge, o.LockPoll)
	}
	root := filepath.Join(dir, layoutVersion)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Dir{
		root:      root,
		lockStale: DefaultStealAge,
		lockPoll:  25 * time.Millisecond,
	}
	d.SetLockTuning(o.StealAge, o.LockPoll)
	return d, nil
}

// Dir returns the store's root directory (the one passed to Open).
func (s *Dir) Dir() string { return filepath.Dir(s.root) }

// Stats returns a snapshot of the store's counters.
func (s *Dir) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// record is the on-disk (and on-wire) envelope.
type record struct {
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	// Sum is the SHA-256 of the Report payload bytes, hex-encoded.
	Sum    string          `json:"sum"`
	Report json.RawMessage `json:"report"`
}

// EncodeRecord builds the self-describing envelope for a report — the
// exact bytes Dir persists and the record API serves. Envelope bytes
// are a pure function of (key, report), so every encoder of one result
// produces identical bytes.
func EncodeRecord(key string, rep *stats.Report) ([]byte, error) {
	payload, err := json.Marshal(rep)
	if err != nil {
		return nil, fmt.Errorf("store: encode report: %w", err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(record{
		Schema: Schema,
		Key:    key,
		Sum:    hex.EncodeToString(sum[:]),
		Report: payload,
	})
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	return data, nil
}

// DecodeRecord verifies an envelope against the key it was requested
// under — schema, key echo, payload integrity hash — and decodes the
// report. It is the single verification path for records read from
// disk and records received from peers.
func DecodeRecord(data []byte, key string) (*stats.Report, error) {
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("store: envelope: %w", err)
	}
	if rec.Schema != Schema {
		return nil, fmt.Errorf("store: schema %d, want %d", rec.Schema, Schema)
	}
	if rec.Key != key {
		return nil, errors.New("store: key mismatch")
	}
	sum := sha256.Sum256(rec.Report)
	if hex.EncodeToString(sum[:]) != rec.Sum {
		return nil, errors.New("store: integrity hash mismatch")
	}
	rep := new(stats.Report)
	if err := json.Unmarshal(rec.Report, rep); err != nil {
		return nil, fmt.Errorf("store: report payload: %w", err)
	}
	return rep, nil
}

// path returns the sharded record path for a key.
func (s *Dir) path(key string) string {
	h := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(h[:])
	return filepath.Join(s.root, name[:2], name+".json")
}

// Get returns the stored report for key (tier TierLocal), or TierMiss.
// A record that fails verification (schema, key, integrity hash, or
// malformed JSON) is deleted and reported as a miss — corruption is
// recomputed, never trusted.
func (s *Dir) Get(key string) (*stats.Report, Tier) {
	rep, ok := s.load(key)
	if ok {
		s.hits.Add(1)
		return rep, TierLocal
	}
	s.misses.Add(1)
	return nil, TierMiss
}

// load is Get without the hit/miss accounting (corrupt records are
// still counted and deleted): Do re-checks the record several times per
// logical lookup and must not inflate the counters.
func (s *Dir) load(key string) (*stats.Report, bool) {
	path := s.path(key)
	rep, err := readRecord(path, key)
	if err == nil {
		return rep, true
	}
	if !os.IsNotExist(err) {
		// Present but unusable: drop it so the slot heals on rewrite.
		s.corrupt.Add(1)
		os.Remove(path)
	}
	return nil, false
}

// readRecord loads and verifies one record file.
func readRecord(path, key string) (*stats.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := DecodeRecord(data, key)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Put writes the report under key. The write is atomic: readers see
// either the old record or the complete new one, never a torn file.
// Concurrent writers of one key write identical bytes (simulations are
// pure functions of their key), so last-writer-wins is harmless.
func (s *Dir) Put(key string, rep *stats.Report) error {
	data, err := EncodeRecord(key, rep)
	if err != nil {
		return err
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", path, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Do returns the stored report for key, computing and persisting it
// with compute on a verified miss. The returned tier is TierLocal when
// the result was served from disk (by this call's own read — a compute
// that raced another process still reports TierMiss).
//
// Across processes Do is single-flight: a lock file elects one computer
// per key and the others poll, re-checking for the winner's record. A
// compute that fails — including ctx cancellation — releases the lock
// without writing, so errors are never persisted and a cancelled run is
// recomputed by the next requester (the on-disk mirror of the session
// cache's forget-on-cancel rule). Lock files older than the staleness
// bound are presumed abandoned and stolen.
//
// Do returns an error only from ctx or from compute itself: store I/O
// failures (unwritable lock, failed record write) degrade to computing
// without the single-flight or to a plain miss next time, never to a
// failed call — so callers may safely memoize what Do returns.
func (s *Dir) Do(ctx context.Context, key string, compute func() (*stats.Report, error)) (rep *stats.Report, tier Tier, err error) {
	// One logical lookup counts exactly one hit (served from disk at any
	// of the checks below) or one miss (computed).
	if rep, ok := s.load(key); ok {
		s.hits.Add(1)
		return rep, TierLocal, nil
	}
	unlock, err := s.lock(ctx, key)
	if err != nil {
		if IsContextErr(err) {
			return nil, TierMiss, err
		}
		// Lock bookkeeping failed — a full or read-only store volume.
		// The lock is pure work-deduplication, so degrade to computing
		// without it rather than failing the run: a concurrent process
		// may duplicate the simulation, never corrupt it. Crucially the
		// caller's memo must not get poisoned by a transient I/O error
		// that a retry would not reproduce.
		unlock = nil
	}
	if unlock == nil {
		// The lock holder finished while we waited; its record must be
		// there now. If it isn't (holder failed), compute without the
		// lock: correctness never depends on the single-flight.
		if rep, ok := s.load(key); ok {
			s.hits.Add(1)
			return rep, TierLocal, nil
		}
	} else {
		defer unlock()
		// Double-check under the lock: another process may have written
		// between our miss and the acquisition.
		if rep, ok := s.load(key); ok {
			s.hits.Add(1)
			return rep, TierLocal, nil
		}
	}
	s.misses.Add(1)
	rep, err = compute()
	if err != nil {
		return nil, TierMiss, err
	}
	if perr := s.Put(key, rep); perr != nil {
		// A failed write degrades the store to a cache miss next time;
		// the computed result is still good.
		return rep, TierMiss, nil
	}
	return rep, TierMiss, nil
}

// lockSeq disambiguates lock tokens taken by one process at one
// instant (two goroutines can lock different keys concurrently).
var lockSeq atomic.Int64

// lock acquires the cross-process lock for key. It returns a release
// function on acquisition, or (nil, nil) when the previous holder
// released while we waited (the caller should re-check the store), or
// ctx.Err() when cancelled while waiting.
//
// The lock is advisory work-deduplication, not a correctness
// mechanism: record writes are atomic and all writers of one key write
// identical bytes, so the worst a lost race can cost is a duplicate
// simulation. Staleness handling is therefore built to never break
// another holder's lock by accident: a stale lock is stolen by atomic
// rename (exactly one stealer wins; the losers just re-poll), and
// release deletes the lock file only while it still carries this
// acquisition's unique token — a holder displaced for exceeding the
// staleness bound will not remove its usurper's lock.
func (s *Dir) lock(ctx context.Context, key string) (func(), error) {
	path := s.path(key) + ".lock"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			token := fmt.Sprintf("%d.%d %s\n", os.Getpid(), lockSeq.Add(1), time.Now().UTC().Format(time.RFC3339Nano))
			_, werr := f.WriteString(token)
			f.Close()
			if werr != nil {
				os.Remove(path)
				return nil, fmt.Errorf("store: lock %s: %w", path, werr)
			}
			return func() {
				if data, rerr := os.ReadFile(path); rerr == nil && string(data) == token {
					os.Remove(path)
				}
			}, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("store: lock %s: %w", path, err)
		}
		// Someone else is computing. Wait for the lock to clear, stealing
		// it if its holder looks dead.
		info, serr := os.Stat(path)
		if serr == nil && time.Since(info.ModTime()) > s.lockStale {
			// Steal atomically: rename sideways, then delete the moved
			// file. Concurrent stealers race on the rename and exactly
			// one wins; a lock re-acquired between our stat and rename is
			// younger than the staleness bound only if the filesystem
			// clock jumped, and even then the loser merely recomputes.
			stale := fmt.Sprintf("%s.stale.%d.%d", path, os.Getpid(), lockSeq.Add(1))
			if os.Rename(path, stale) == nil {
				os.Remove(stale)
			}
			continue
		}
		if serr != nil && os.IsNotExist(serr) {
			// Released between our open and stat: the holder finished.
			return nil, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.lockPoll):
		}
		if _, serr := os.Stat(path); os.IsNotExist(serr) {
			return nil, nil
		}
	}
}

// TryLocker is the optional non-blocking face of a backend's
// cross-process single-flight. TryLock claims key's lock without
// waiting and returns its release function, or nil when the lock is
// held elsewhere (or the backend cannot lock). Batched sweeps use it:
// they claim every missed key before simulating so concurrent
// processes skip work they can see in flight, but never wait — the
// locks stay advisory, exactly like Do's (all writers of one key write
// identical bytes).
type TryLocker interface {
	TryLock(key string) (release func())
}

// TryLock claims key's lock file without blocking: one creation
// attempt, plus one steal-and-retry when the existing lock is older
// than the staleness bound (its holder crashed — without this, an
// abandoned lock would disable batched-sweep coordination for the key
// forever). Returns nil when the lock is live elsewhere.
func (s *Dir) TryLock(key string) (release func()) {
	path := s.path(key) + ".lock"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil
	}
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			token := fmt.Sprintf("%d.%d %s\n", os.Getpid(), lockSeq.Add(1), time.Now().UTC().Format(time.RFC3339Nano))
			_, werr := f.WriteString(token)
			f.Close()
			if werr != nil {
				os.Remove(path)
				return nil
			}
			return func() {
				if data, rerr := os.ReadFile(path); rerr == nil && string(data) == token {
					os.Remove(path)
				}
			}
		}
		if !os.IsExist(err) {
			return nil
		}
		info, serr := os.Stat(path)
		if serr != nil || time.Since(info.ModTime()) <= s.lockStale {
			return nil // live lock (or vanished: holder just released)
		}
		// Stale: steal by atomic rename, then retry the creation once.
		stale := fmt.Sprintf("%s.stale.%d.%d", path, os.Getpid(), lockSeq.Add(1))
		if os.Rename(path, stale) == nil {
			os.Remove(stale)
		}
	}
	return nil
}

// IsContextErr mirrors the engine's cancellation predicate for callers
// that hold only a store.
func IsContextErr(err error) bool { return runner.IsContextErr(err) }

// SetLockTuning overrides the cross-process lock's staleness bound and
// poll interval (zero keeps the current value). Equivalent to opening
// with Options; kept as a method so tests and long-lived processes can
// retune a live store.
func (s *Dir) SetLockTuning(stale, poll time.Duration) {
	if stale > 0 {
		s.lockStale = stale
	}
	if poll > 0 {
		s.lockPoll = poll
	}
}
