package kernel

import (
	"strings"
	"testing"
)

func arr(name string) *Array { return &Array{Name: name, Base: 0x1000, Stride: 8} }

func axpyLoop() *VectorLoop {
	x, y := arr("x"), arr("y")
	return &VectorLoop{
		Name: "axpy",
		Body: []Stmt{{
			Dst: y,
			E:   &Bin{Op: Add, L: &Bin{Op: Mul, L: &ScalarArg{Name: "a"}, R: &Ref{Arr: x}}, R: &Ref{Arr: y}},
		}},
	}
}

func TestValidateGoodKernel(t *testing.T) {
	k := &Kernel{Name: "k", Units: []Unit{
		axpyLoop(),
		&ScalarLoop{Name: "sweep", Loads: 2, Stores: 1, IntOps: 2, FPOps: 1},
	}}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	x := arr("x")
	cases := []struct {
		name string
		k    *Kernel
		want string
	}{
		{"noname", &Kernel{Units: []Unit{axpyLoop()}}, "no name"},
		{"nounits", &Kernel{Name: "k"}, "no units"},
		{"dupunit", &Kernel{Name: "k", Units: []Unit{axpyLoop(), axpyLoop()}}, "duplicate"},
		{"emptyvec", &Kernel{Name: "k", Units: []Unit{&VectorLoop{Name: "v"}}}, "empty vector loop"},
		{"bothdst", &Kernel{Name: "k", Units: []Unit{&VectorLoop{Name: "v", Body: []Stmt{
			{Dst: x, Reduce: "s", E: &Ref{Arr: x}},
		}}}}, "exactly one"},
		{"nodst", &Kernel{Name: "k", Units: []Unit{&VectorLoop{Name: "v", Body: []Stmt{
			{E: &Ref{Arr: x}},
		}}}}, "exactly one"},
		{"nilexpr", &Kernel{Name: "k", Units: []Unit{&VectorLoop{Name: "v", Body: []Stmt{
			{Dst: x},
		}}}}, "nil expression"},
		{"nilref", &Kernel{Name: "k", Units: []Unit{&VectorLoop{Name: "v", Body: []Stmt{
			{Dst: x, E: &Ref{}},
		}}}}, "nil array"},
		{"scatterwithoutdst", &Kernel{Name: "k", Units: []Unit{&VectorLoop{Name: "v", Body: []Stmt{
			{Reduce: "r", ScatterIdx: x, E: &Ref{Arr: x}},
		}}}}, "ScatterIdx"},
		{"emptyscalar", &Kernel{Name: "k", Units: []Unit{&ScalarLoop{Name: "s"}}}, "empty scalar loop"},
		{"negscalar", &Kernel{Name: "k", Units: []Unit{&ScalarLoop{Name: "s", Loads: -1}}}, "negative"},
	}
	for _, c := range cases {
		err := c.k.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestWalkOrder(t *testing.T) {
	// Walk visits children before parents (evaluation order).
	x, y := arr("x"), arr("y")
	e := &Bin{Op: Add, L: &Ref{Arr: x}, R: &Un{Op: Sqrt, X: &Ref{Arr: y}}}
	var order []string
	e.Walk(func(n Expr) {
		switch v := n.(type) {
		case *Ref:
			order = append(order, v.Arr.Name)
		case *Un:
			order = append(order, "sqrt")
		case *Bin:
			order = append(order, "add")
		}
	})
	want := "x y sqrt add"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("walk order = %q, want %q", got, want)
	}
}

func TestArraysFirstUseOrder(t *testing.T) {
	x, y, z, idx := arr("x"), arr("y"), arr("z"), arr("idx")
	l := &VectorLoop{Name: "v", Body: []Stmt{
		{Dst: z, E: &Bin{Op: Add, L: &Ref{Arr: x}, R: &Gather{Data: y, Index: idx}}},
		{Dst: x, E: &Ref{Arr: x}}, // repeats: no duplicates
	}}
	got := l.Arrays()
	want := []string{"x", "idx", "y", "z"}
	if len(got) != len(want) {
		t.Fatalf("Arrays() = %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i] {
			t.Errorf("Arrays()[%d] = %s, want %s", i, got[i].Name, want[i])
		}
	}
}

func TestOpStrings(t *testing.T) {
	if Add.String() != "+" || Div.String() != "/" || Sqrt.String() != "sqrt" {
		t.Error("operator names wrong")
	}
	if BinOp(200).String() == "" || UnOp(200).String() == "" {
		t.Error("out-of-range ops should still print")
	}
}
