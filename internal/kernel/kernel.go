// Package kernel is the loop-nest intermediate representation every
// workload is written in: a "little Fortran" of vectorizable loops over
// arrays, indexed (gather/scatter) accesses, reductions, predicated
// compare-merge selects and non-vectorizable scalar loops.
//
// A Kernel is a named set of Units. The vectorizable ones are
// VectorLoops — each Stmt an element-wise expression tree (Bin/Un over
// Ref, Gather, ScalarArg) assigned to a destination Array or folded
// through a named reduction — and ScalarLoops model the serial code
// between them as load/store/integer/FP operation counts. internal/vcomp
// compiles a Kernel into an ISA program; an invocation schedule then
// instantiates loop trip counts at run time.
//
// Two workload catalogs build on the IR (internal/workload): the
// paper's ten Perfect Club / SPECfp92 programs reconstructed as
// synthetic kernels calibrated to Table 3 — the real programs cannot be
// traced without a Convex C3480 and its Fortran compiler — and the real
// vectorizable benchmark suite (axpy, dot, blocked gemm, CSR spmv,
// stencils, Black-Scholes), scheduled from actual problem sizes and
// documented in docs/BENCHMARKS.md.
package kernel

import "fmt"

// Array names a memory operand: a base address and the byte stride between
// consecutive elements as the loop walks it (8 for row walks, the row size
// for column walks of a matrix).
type Array struct {
	Name   string
	Base   uint64
	Stride int64
}

// Expr is a vectorizable expression tree evaluated element-wise.
type Expr interface {
	expr()
	// Walk visits the node and its children in evaluation order.
	Walk(func(Expr))
}

// Ref reads Arr at the loop index: Arr[i].
type Ref struct{ Arr *Array }

// Gather reads Data at positions given by Index: Data[Index[i]].
type Gather struct{ Data, Index *Array }

// ScalarArg is a loop-invariant scalar broadcast from an S register.
type ScalarArg struct{ Name string }

// BinOp enumerates element-wise binary operators.
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	And
	Or
	Xor
	CmpGT
	Merge
)

var binOpNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", And: "&", Or: "|", Xor: "^",
	CmpGT: ">", Merge: "?:",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("BinOp(%d)", uint8(op))
}

// Bin applies Op element-wise to L and R.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// UnOp enumerates element-wise unary operators.
type UnOp uint8

const (
	Sqrt UnOp = iota
	Shl
	Shr
)

var unOpNames = [...]string{Sqrt: "sqrt", Shl: "<<", Shr: ">>"}

func (op UnOp) String() string {
	if int(op) < len(unOpNames) {
		return unOpNames[op]
	}
	return fmt.Sprintf("UnOp(%d)", uint8(op))
}

// Un applies Op element-wise to X.
type Un struct {
	Op UnOp
	X  Expr
}

func (*Ref) expr()       {}
func (*Gather) expr()    {}
func (*ScalarArg) expr() {}
func (*Bin) expr()       {}
func (*Un) expr()        {}

func (e *Ref) Walk(f func(Expr))       { f(e) }
func (e *Gather) Walk(f func(Expr))    { f(e) }
func (e *ScalarArg) Walk(f func(Expr)) { f(e) }
func (e *Bin) Walk(f func(Expr)) {
	e.L.Walk(f)
	e.R.Walk(f)
	f(e)
}
func (e *Un) Walk(f func(Expr)) {
	e.X.Walk(f)
	f(e)
}

// Stmt is one statement of a vector loop body. Exactly one of the three
// destination forms is used:
//
//   - Dst != nil, ScatterIdx == nil:  Dst[i] = E
//   - Dst != nil, ScatterIdx != nil:  Dst[ScatterIdx[i]] = E
//   - Reduce != "":                   scalar Reduce += E (sum reduction)
type Stmt struct {
	Dst        *Array
	ScatterIdx *Array
	Reduce     string
	E          Expr
}

// VectorLoop is a 1-dimensional vectorizable loop; the trip count is
// supplied at invocation time (internal/vcomp strip-mines it by MaxVL).
type VectorLoop struct {
	Name string
	Body []Stmt
}

// ScalarLoop is a non-vectorizable loop described by its per-iteration
// operation mix; internal/vcomp lowers it to a representative scalar
// basic block. Trip count is supplied at invocation time.
type ScalarLoop struct {
	Name   string
	Loads  int
	Stores int
	IntOps int
	FPOps  int
	FPDivs int
}

// Unit is one loop of a kernel: a VectorLoop or a ScalarLoop.
type Unit interface {
	unit()
	UnitName() string
	Validate() error
}

func (l *VectorLoop) unit() {}
func (l *ScalarLoop) unit() {}

func (l *VectorLoop) UnitName() string { return l.Name }
func (l *ScalarLoop) UnitName() string { return l.Name }

// Kernel is a named straight-line sequence of loops. Dynamic behaviour
// (trip counts, repetitions) is supplied by the invocation schedule at
// trace-generation time.
type Kernel struct {
	Name  string
	Units []Unit
}

// Validate checks structural well-formedness.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernel: kernel has no name")
	}
	if len(k.Units) == 0 {
		return fmt.Errorf("kernel: %s: no units", k.Name)
	}
	seen := make(map[string]bool)
	for _, u := range k.Units {
		if u.UnitName() == "" {
			return fmt.Errorf("kernel: %s: unit has no name", k.Name)
		}
		if seen[u.UnitName()] {
			return fmt.Errorf("kernel: %s: duplicate unit name %q", k.Name, u.UnitName())
		}
		seen[u.UnitName()] = true
		if err := u.Validate(); err != nil {
			return fmt.Errorf("kernel: %s: %w", k.Name, err)
		}
	}
	return nil
}

// Validate checks the loop body.
func (l *VectorLoop) Validate() error {
	if len(l.Body) == 0 {
		return fmt.Errorf("%s: empty vector loop body", l.Name)
	}
	for i, st := range l.Body {
		forms := 0
		if st.Dst != nil {
			forms++
		}
		if st.Reduce != "" {
			forms++
		}
		if forms != 1 {
			return fmt.Errorf("%s: stmt %d: need exactly one of Dst or Reduce", l.Name, i)
		}
		if st.ScatterIdx != nil && st.Dst == nil {
			return fmt.Errorf("%s: stmt %d: ScatterIdx without Dst", l.Name, i)
		}
		if st.E == nil {
			return fmt.Errorf("%s: stmt %d: nil expression", l.Name, i)
		}
		var bad error
		st.E.Walk(func(e Expr) {
			switch n := e.(type) {
			case *Ref:
				if n.Arr == nil {
					bad = fmt.Errorf("%s: stmt %d: Ref with nil array", l.Name, i)
				}
			case *Gather:
				if n.Data == nil || n.Index == nil {
					bad = fmt.Errorf("%s: stmt %d: Gather with nil arrays", l.Name, i)
				}
			case *ScalarArg:
				if n.Name == "" {
					bad = fmt.Errorf("%s: stmt %d: unnamed scalar argument", l.Name, i)
				}
			}
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}

// Validate checks the operation mix.
func (l *ScalarLoop) Validate() error {
	if l.Loads < 0 || l.Stores < 0 || l.IntOps < 0 || l.FPOps < 0 || l.FPDivs < 0 {
		return fmt.Errorf("%s: negative operation count", l.Name)
	}
	if l.Loads+l.Stores+l.IntOps+l.FPOps+l.FPDivs == 0 {
		return fmt.Errorf("%s: empty scalar loop body", l.Name)
	}
	return nil
}

// Arrays returns every distinct array the unit touches, in first-use order.
func (l *VectorLoop) Arrays() []*Array {
	var out []*Array
	seen := make(map[*Array]bool)
	add := func(a *Array) {
		if a != nil && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, st := range l.Body {
		st.E.Walk(func(e Expr) {
			switch n := e.(type) {
			case *Ref:
				add(n.Arr)
			case *Gather:
				add(n.Index)
				add(n.Data)
			}
		})
		add(st.ScatterIdx)
		add(st.Dst)
	}
	return out
}
