package core

import (
	"testing"

	"mtvec/internal/isa"
	"mtvec/internal/memsys"
	"mtvec/internal/prog"
	"mtvec/internal/stats"
)

// Deeper timing coverage of the vector-memory paths: gathers, scatters,
// chained indices, reductions feeding scalars, and the banked/multi-port
// memory extensions interacting with dispatch.

func TestGatherTimingMatchesLoad(t *testing.T) {
	// A gather with a ready index register behaves like a vector load on
	// the port and LD pipe (Section 3.1: gathers pay the same latency).
	load := runSingle(t, testConfig(1), mkProgram("l",
		isa.Inst{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)},
	), 1, manyAddrs(1))
	gather := runSingle(t, testConfig(1), mkProgram("g",
		isa.Inst{Op: isa.OpVGather, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.A(0)},
	), 1, manyAddrs(1))
	if load.Cycles != gather.Cycles {
		t.Fatalf("gather %d cycles vs load %d", gather.Cycles, load.Cycles)
	}
}

func TestGatherIndexChainsFromFU(t *testing.T) {
	// The index register is produced by an FU op: the gather chains off
	// its first element (dispatch blocked until fw+1 = 10).
	p := mkProgram("gc",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(2), Src1: isa.V(3), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVGather, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.A(0)},
	)
	rep := runSingle(t, testConfig(1), p, 1, manyAddrs(1))
	// Gather at t=10: first datum 10+50=60, write +1+2: lw=63+127=190 -> 191.
	if rep.Cycles != 191 {
		t.Fatalf("cycles = %d, want 191", rep.Cycles)
	}
}

func TestGatherIndexFromLoadWaits(t *testing.T) {
	// Index produced by a LOAD cannot chain: gather waits for the full
	// index register (load lw = 180), dispatches at 181.
	p := mkProgram("gl",
		isa.Inst{Op: isa.OpVLoad, Dst: isa.V(2), Src1: isa.A(1)},
		isa.Inst{Op: isa.OpVGather, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.A(0)},
	)
	rep := runSingle(t, testConfig(1), p, 1, manyAddrs(2))
	// Gather at 181: first datum 231, lw = 231+3+127 = 361 -> 362.
	if rep.Cycles != 362 {
		t.Fatalf("cycles = %d, want 362", rep.Cycles)
	}
}

func TestScatterReadsTwoRegisters(t *testing.T) {
	// A scatter chains from an FU-produced data register while reading a
	// ready index register; it holds the LD pipe and port like a store.
	p := mkProgram("sc",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(1), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVScatter, Src1: isa.V(1), Src2: isa.V(6)},
	)
	rep := runSingle(t, testConfig(1), p, 1, manyAddrs(1))
	// Scatter dispatches at 10 (chain), port busy [10,138) -> 138.
	if rep.Cycles != 138 {
		t.Fatalf("cycles = %d, want 138", rep.Cycles)
	}
	if rep.MemBusyCycles != 128 {
		t.Fatalf("port busy = %d", rep.MemBusyCycles)
	}
}

func TestReductionChainsIntoVectorScalarOp(t *testing.T) {
	// vredadd writes s1 at 137; the dependent vmuls must wait for it.
	p := mkProgram("rc",
		isa.Inst{Op: isa.OpVRedAdd, Dst: isa.S(1), Src1: isa.V(2)},
		isa.Inst{Op: isa.OpVMulS, Dst: isa.V(4), Src1: isa.V(6), Src2: isa.S(1)},
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// vmuls at 137 on FU2 (depth 12): lw = 137+12+127 = 276 -> 277.
	if rep.Cycles != 277 {
		t.Fatalf("cycles = %d, want 277", rep.Cycles)
	}
}

func TestBankConflictSlowsStridedLoad(t *testing.T) {
	// Banked memory: a pathological stride makes the LD pipe hold the
	// port for factor x VL cycles, delaying everything downstream.
	cfg := testConfig(1)
	cfg.Mem.Banks, cfg.Mem.BankBusy = 16, 8
	prog16 := mkProgram("bank",
		isa.Inst{Op: isa.OpSetVS, Src1: isa.A(1)},
		isa.Inst{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)},
	)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.NewStream(prog16, &prog.SliceSource{BBs: []int{0}, Strides: []int64{16 * 8}, Addrs: manyAddrs(1)})
	if err := m.SetThreadStream(0, "bank", s); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(Stop{})
	if err != nil {
		t.Fatal(err)
	}
	// Stride 16 elements on 16 banks with busy 8: 8 cycles/element.
	// LD busy 8*128 = 1024 from t=1.
	if got := rep.Breakdown[1<<stats.UnitLD]; got != 1024 {
		t.Fatalf("LD busy = %d, want 1024", got)
	}
}

func TestDedicatedPortsOverlapLoads(t *testing.T) {
	// Cray-like memory: two loads to different registers proceed on
	// separate load ports; the LD pipe is still single, so they
	// serialize there — the pipe, not the port, becomes the bottleneck.
	cfg := testConfig(1)
	cfg.Mem = memsys.Config{Latency: 50, ScalarLatency: 4, LoadPorts: 2, StorePorts: 1}
	p := mkProgram("2p",
		isa.Inst{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)},
		isa.Inst{Op: isa.OpVLoad, Dst: isa.V(4), Src1: isa.A(1)},
	)
	rep := runSingle(t, cfg, p, 1, manyAddrs(2))
	// Identical to the single-port case because the LD unit serializes:
	// second load at 128, lw = 128+53+127 = 308 -> 309.
	if rep.Cycles != 309 {
		t.Fatalf("cycles = %d, want 309 (LD pipe serializes)", rep.Cycles)
	}
}

func TestMultiIssueVectorPlusScalar(t *testing.T) {
	// Issue width 2: thread 1's scalar work issues in the same cycles as
	// thread 0's vector stream, shrinking total time.
	vecProg := mkProgram("v",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(6), Src1: isa.V(3), Src2: isa.V(5)},
	)
	scalProg := mkProgram("s",
		isa.Inst{Op: isa.OpSAddI, Dst: isa.S(1), Src1: isa.S(2), Src2: isa.S(3)},
	)
	run := func(width int) Cycle {
		cfg := testConfig(2)
		cfg.IssueWidth = width
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetThreadStream(0, "v", streamOf(vecProg, 40, nil, nil, nil))
		m.SetThreadStream(1, "s", streamOf(scalProg, 2000, nil, nil, nil))
		rep, err := m.Run(Stop{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles
	}
	w1, w2 := run(1), run(2)
	if w2 >= w1 {
		t.Fatalf("issue width 2 (%d) not faster than 1 (%d)", w2, w1)
	}
}

func TestQuiesceIncludesScalarTail(t *testing.T) {
	// A run ending in a long-latency scalar op counts its completion.
	p := mkProgram("q", isa.Inst{Op: isa.OpSDivI, Dst: isa.S(1), Src1: isa.S(2), Src2: isa.S(3)})
	rep := runSingle(t, testConfig(1), p, 1, nil)
	if rep.Cycles != 34 {
		t.Fatalf("cycles = %d, want 34 (integer divide latency)", rep.Cycles)
	}
}
