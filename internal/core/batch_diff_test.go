package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mtvec/internal/arch"
	"mtvec/internal/prog"
	"mtvec/internal/sched"
)

// batch_diff_test.go is the differential gate for the lockstep batch
// engine: across seeded-random machine shapes, policies, context
// counts, latencies, stop rules and thread-supply modes, a Batch lane
// must produce byte-identical Reports and observer event streams to the
// same configuration run solo on its own Machine. A wrong batched
// engine would silently corrupt every sweep, so the fast path is
// trusted only because this harness proves it equivalent.

// diffPoint is one randomized configuration. attach is deterministic
// and re-invokable: calling it on two machines installs byte-identical
// instruction supplies, so the solo and batched runs see the same
// input.
type diffPoint struct {
	name   string
	cfg    Config
	stop   Stop
	attach func(m *Machine) error
}

// randPoint derives a configuration from seed. The space covers the
// three machine-shape presets with mutated latencies, vector lengths
// and bank ports, all four switch policies, 1–4 contexts, dual-scalar
// mode, issue widths, both engine modes (fast-forward and
// cycle-stepped), the three thread-supply modes, and every stop rule.
// A few points are deliberately out of shape (VLen below the streamed
// vector lengths) so the error path diverges lanes early.
func randPoint(seed int64) diffPoint {
	r := rand.New(rand.NewSource(seed))
	cfg := DefaultConfig()
	archName := "c3400"
	switch r.Intn(4) {
	case 1:
		cfg.Spec = arch.VP2000()
		archName = "vp2000"
	case 2:
		cfg.Spec = arch.CrayLikePorts()
		archName = "cray"
	}
	maxCtx := cfg.Spec.MaxContexts
	if maxCtx > 4 {
		maxCtx = 4
	}
	cfg.Contexts = 1 + r.Intn(maxCtx)
	policy := sched.Names()[r.Intn(len(sched.Names()))]
	cfg.Policy = sched.ByName(policy)
	cfg.Mem.Latency = []int{1, 10, 30, 50, 70, 100}[r.Intn(6)]
	cfg.Mem.ScalarLatency = []int{0, 4, 8}[r.Intn(3)]
	xbar := 1 + r.Intn(3)
	cfg.Lat.ReadXbar, cfg.Lat.WriteXbar = xbar, xbar
	if r.Intn(4) == 0 {
		cfg.RegFile = cfg.RegFile.Normalize()
		cfg.BankReadPorts = 1 + r.Intn(2)
	}
	if r.Intn(20) == 0 {
		// Out of shape: the streams carry 128-element vectors, so a
		// 64-element register file errors the run (in batch and solo
		// alike, identically).
		cfg.RegFile = cfg.RegFile.Normalize()
		cfg.VLen = 64
	}
	if cfg.Contexts == 2 && r.Intn(4) == 0 {
		cfg.DualScalar = true
	}
	if cfg.Contexts > 1 && r.Intn(5) == 0 {
		cfg.IssueWidth = 2
	}
	cfg.DisableFastForward = r.Intn(5) == 0
	cfg.RecordSpans = r.Intn(3) == 0
	cfg.ProgressStride = []Cycle{256, 1024, 4096}[r.Intn(3)]

	// Per-context supply parameters, captured as values so attach can
	// rebuild identical fresh streams for each machine it is called on.
	variants := make([]int, cfg.Contexts)
	reps := make([]int, cfg.Contexts)
	for i := range variants {
		variants[i] = r.Intn(3)
		reps[i] = 2 + r.Intn(6)
	}

	var stop Stop
	mode := r.Intn(3)
	if cfg.Contexts == 1 && mode == 1 {
		mode = 0
	}
	var attach func(m *Machine) error
	switch mode {
	case 0: // dedicated stream per context
		attach = func(m *Machine) error {
			for i := 0; i < cfg.Contexts; i++ {
				if err := m.SetThreadStream(i, fmt.Sprintf("mix%d", i), mixedStream(variants[i], reps[i])); err != nil {
					return err
				}
			}
			return nil
		}
	case 1: // primary + restarting companions (Section 4.1 shape)
		stop.Thread0Complete = true
		attach = func(m *Machine) error {
			if err := m.SetThreadStream(0, "primary", mixedStream(variants[0], reps[0])); err != nil {
				return err
			}
			for i := 1; i < cfg.Contexts; i++ {
				i := i
				err := m.SetThread(i, Repeat("comp", func() *prog.Stream {
					return mixedStream(variants[i], reps[i])
				}))
				if err != nil {
					return err
				}
			}
			return nil
		}
	default: // shared job queue (Section 7 shape)
		attach = func(m *Machine) error {
			q := NewJobQueue()
			for i := 0; i < cfg.Contexts+1; i++ {
				i := i
				q.Add(fmt.Sprintf("job%d", i), func() *prog.Stream {
					return mixedStream(variants[i%len(variants)], reps[i%len(reps)])
				})
			}
			src := q.Source()
			for i := 0; i < cfg.Contexts; i++ {
				if err := m.SetThread(i, src); err != nil {
					return err
				}
			}
			return nil
		}
	}
	switch r.Intn(6) {
	case 0:
		stop.MaxCycles = Cycle(500 + r.Intn(4000))
	case 1:
		if !stop.Thread0Complete {
			stop.MaxThread0Insts = int64(10 + r.Intn(40))
		}
	}
	name := fmt.Sprintf("seed%d/%s/ctx%d/%s/lat%d", seed, archName, cfg.Contexts, policy, cfg.Mem.Latency)
	return diffPoint{name: name, cfg: cfg, stop: stop, attach: attach}
}

// soloResult is everything a run observably produces.
type soloResult struct {
	rendered string // fmt-rendered Report (byte-identity witness)
	log      *eventLog
	err      error
}

func runSolo(t *testing.T, pt diffPoint) soloResult {
	t.Helper()
	log := &eventLog{}
	cfg := pt.cfg
	cfg.Observers = []Observer{log}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("%s: New: %v", pt.name, err)
	}
	if err := pt.attach(m); err != nil {
		t.Fatalf("%s: attach: %v", pt.name, err)
	}
	rep, err := m.Run(pt.stop)
	if err != nil {
		return soloResult{err: err, log: log}
	}
	return soloResult{rendered: fmt.Sprintf("%#v", *rep), log: log}
}

// TestBatchDifferential proves per-lane == solo across 208 randomized
// configurations, batched 8 lanes at a time (the session layer's
// maximum), comparing rendered Reports byte for byte and observer event
// streams value for value. It runs under -race in CI.
func TestBatchDifferential(t *testing.T) {
	const (
		numConfigs = 208
		laneWidth  = 8
	)
	for base := 0; base < numConfigs; base += laneWidth {
		points := make([]diffPoint, laneWidth)
		solo := make([]soloResult, laneWidth)
		cfgs := make([]Config, laneWidth)
		stops := make([]Stop, laneWidth)
		logs := make([]*eventLog, laneWidth)
		for i := range points {
			points[i] = randPoint(int64(base + i))
			solo[i] = runSolo(t, points[i])
			cfgs[i] = points[i].cfg
			logs[i] = &eventLog{}
			cfgs[i].Observers = []Observer{logs[i]}
			stops[i] = points[i].stop
		}
		b, err := NewBatch(cfgs)
		if err != nil {
			t.Fatalf("batch %d: NewBatch: %v", base, err)
		}
		for i := range points {
			if err := points[i].attach(b.Machine(i)); err != nil {
				t.Fatalf("%s: batch attach: %v", points[i].name, err)
			}
		}
		reps, errs := b.Run(stops)
		for i := range points {
			pt := points[i]
			if (errs[i] == nil) != (solo[i].err == nil) {
				t.Fatalf("%s: lane err = %v, solo err = %v", pt.name, errs[i], solo[i].err)
			}
			if errs[i] != nil {
				if errs[i].Error() != solo[i].err.Error() {
					t.Errorf("%s: lane err %q != solo err %q", pt.name, errs[i], solo[i].err)
				}
				continue
			}
			if got := fmt.Sprintf("%#v", *reps[i]); got != solo[i].rendered {
				t.Errorf("%s: lane report differs from solo:\nlane: %s\nsolo: %s", pt.name, got, solo[i].rendered)
			}
			if !reflect.DeepEqual(logs[i], solo[i].log) {
				t.Errorf("%s: lane event stream differs from solo:\nlane: %+v\nsolo: %+v", pt.name, logs[i], solo[i].log)
			}
		}
	}
}

// testSlotPool is a balance-checked SlotPool: TryAcquire hands out at
// most its capacity, Release returns slots, and the test asserts every
// claimed slot came back.
type testSlotPool struct {
	mu   sync.Mutex
	free int
	out  int
	over bool // a release exceeded the claims
}

func (p *testSlotPool) TryAcquire(max int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := max
	if n > p.free {
		n = p.free
	}
	if n < 0 {
		n = 0
	}
	p.free -= n
	p.out += n
	return n
}

func (p *testSlotPool) Release(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.out -= n
	p.free += n
	if p.out < 0 {
		p.over = true
	}
}

// TestBatchDifferentialParallel proves parallel rounds ≡ sequential
// rounds ≡ solo across randomized batch shapes: lane width 2–12, window
// 64–8192, parallelism 2–8, with and without a borrowed slot pool
// (including a zero-capacity pool, which must degrade to the caller's
// own goroutine). Run under -race, this is also the data-race proof for
// the round loop.
func TestBatchDifferentialParallel(t *testing.T) {
	const chunks = 18
	seed := int64(5000)
	shape := rand.New(rand.NewSource(41))
	for c := 0; c < chunks; c++ {
		width := 2 + shape.Intn(11)
		window := int64(64 << shape.Intn(8)) // 64..8192
		par := 2 + shape.Intn(7)
		var pool *testSlotPool
		if shape.Intn(3) > 0 {
			pool = &testSlotPool{free: shape.Intn(par + 2)}
		}
		points := make([]diffPoint, width)
		solo := make([]soloResult, width)
		cfgs := make([]Config, width)
		stops := make([]Stop, width)
		logs := make([]*eventLog, width)
		for i := range points {
			points[i] = randPoint(seed)
			seed++
			solo[i] = runSolo(t, points[i])
			cfgs[i] = points[i].cfg
			logs[i] = &eventLog{}
			cfgs[i].Observers = []Observer{logs[i]}
			stops[i] = points[i].stop
		}
		b, err := NewBatch(cfgs)
		if err != nil {
			t.Fatalf("chunk %d: NewBatch: %v", c, err)
		}
		b.SetWindow(window)
		b.SetParallel(par)
		if pool != nil {
			b.SetSlots(pool)
		}
		for i := range points {
			if err := points[i].attach(b.Machine(i)); err != nil {
				t.Fatalf("%s: batch attach: %v", points[i].name, err)
			}
		}
		reps, errs := b.Run(stops)
		if pool != nil {
			pool.mu.Lock()
			out, over := pool.out, pool.over
			pool.mu.Unlock()
			if out != 0 || over {
				t.Fatalf("chunk %d: slot pool imbalance: %d outstanding (over-release: %v)", c, out, over)
			}
		}
		for i := range points {
			pt := points[i]
			if (errs[i] == nil) != (solo[i].err == nil) {
				t.Fatalf("%s (w%d win%d par%d): lane err = %v, solo err = %v", pt.name, width, window, par, errs[i], solo[i].err)
			}
			if errs[i] != nil {
				if errs[i].Error() != solo[i].err.Error() {
					t.Errorf("%s: lane err %q != solo err %q", pt.name, errs[i], solo[i].err)
				}
				continue
			}
			if got := fmt.Sprintf("%#v", *reps[i]); got != solo[i].rendered {
				t.Errorf("%s (w%d win%d par%d): parallel lane report differs from solo:\nlane: %s\nsolo: %s",
					pt.name, width, window, par, got, solo[i].rendered)
			}
			if !reflect.DeepEqual(logs[i], solo[i].log) {
				t.Errorf("%s (w%d win%d par%d): parallel lane event stream differs from solo", pt.name, width, window, par)
			}
		}
	}
}

// TestBatchMisuse pins the batch engine's error contract: lane/stop
// count mismatches and reuse fail every lane with a diagnostic instead
// of panicking or running.
func TestBatchMisuse(t *testing.T) {
	if _, err := NewBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	bad := testConfig(1)
	bad.Contexts = 99
	if _, err := NewBatch([]Config{testConfig(1), bad}); err == nil {
		t.Error("invalid lane config accepted")
	}

	b, err := NewBatch([]Config{testConfig(1)})
	if err != nil {
		t.Fatal(err)
	}
	if reps, errs := b.Run(nil); reps[0] != nil || errs[0] == nil {
		t.Error("stop-count mismatch not diagnosed")
	}
	b2, err := NewBatch([]Config{testConfig(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Machine(0).SetThreadStream(0, "m", mixedStream(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, errs := b2.Run([]Stop{{}}); errs[0] != nil {
		t.Fatalf("first run failed: %v", errs[0])
	}
	if _, errs := b2.Run([]Stop{{}}); errs[0] == nil {
		t.Error("batch reuse accepted")
	}
}
