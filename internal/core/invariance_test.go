package core

import (
	"reflect"
	"testing"

	"mtvec/internal/isa"
	"mtvec/internal/prog"
	"mtvec/internal/sched"
	"mtvec/internal/stats"
)

// mixedProgram builds a program exercising every dispatch kind: vector
// memory, chained vector arithmetic on both FUs, a reduction, scalar
// dependence chains, scalar memory and control. Variants reorder and
// reshape the block so different contexts genuinely contend for the
// shared units and block at different times.
func mixedProgram(variant int) *prog.Program {
	base := []isa.Inst{
		{Op: isa.OpSetVL, Src1: isa.A(7)},
		{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)},
		{Op: isa.OpVMul, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(0)}, // FU2-only
		{Op: isa.OpVAdd, Dst: isa.V(4), Src1: isa.V(0), Src2: isa.V(2)},
		{Op: isa.OpVStore, Src1: isa.V(4), Src2: isa.A(1)},
		{Op: isa.OpVRedAdd, Dst: isa.S(1), Src1: isa.V(2)},
		{Op: isa.OpSLoad, Dst: isa.S(2), Src1: isa.A(2)},
		{Op: isa.OpSAdd, Dst: isa.S(3), Src1: isa.S(1), Src2: isa.S(2)},
		{Op: isa.OpAAdd, Dst: isa.A(0), Src1: isa.A(0), Src2: isa.Imm()},
		{Op: isa.OpBr, Src1: isa.S(3)},
	}
	switch variant % 3 {
	case 1: // scalar-heavy: stretch the serial section
		extra := []isa.Inst{
			{Op: isa.OpSMul, Dst: isa.S(4), Src1: isa.S(3), Src2: isa.S(2)},
			{Op: isa.OpSDiv, Dst: isa.S(5), Src1: isa.S(4), Src2: isa.S(2)},
			{Op: isa.OpSStore, Src1: isa.S(5), Src2: isa.A(2)},
		}
		base = append(base[:9:9], append(extra, base[9:]...)...)
	case 2: // memory-heavy: a second load stream and a gather
		extra := []isa.Inst{
			{Op: isa.OpVLoad, Dst: isa.V(6), Src1: isa.A(3)},
			{Op: isa.OpVGather, Dst: isa.V(1), Src1: isa.A(4), Src2: isa.V(6)},
			{Op: isa.OpVSub, Dst: isa.V(3), Src1: isa.V(1), Src2: isa.V(6)},
		}
		base = append(base[:5:5], append(extra, base[5:]...)...)
	}
	return mkProgram("mix", base...)
}

// mixedStream replays variant's program reps times with varying vector
// lengths and distinct address streams per context.
func mixedStream(variant, reps int) *prog.Stream {
	p := mixedProgram(variant)
	memOps := 0
	for _, in := range p.Blocks[0].Insts {
		if in.Op.IsMem() {
			memOps++
		}
	}
	vls := make([]int64, reps)
	for i := range vls {
		vls[i] = []int64{128, 64, 17, 96, 5}[i%5]
	}
	addrs := make([]uint64, reps*memOps)
	for i := range addrs {
		addrs[i] = uint64(0x10000 + variant*0x100000 + i*512)
	}
	return streamOf(p, reps, vls, nil, addrs)
}

// runMixed runs the mixed workload and returns the report plus the first
// attached eventLog (nil when none).
func runMixed(t *testing.T, policy string, contexts int, disableFF bool, observers ...Observer) (*stats.Report, *eventLog) {
	t.Helper()
	cfg := testConfig(contexts)
	cfg.Policy = sched.ByName(policy)
	cfg.DisableFastForward = disableFF
	cfg.ProgressStride = 512
	cfg.Observers = observers
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed supply: dedicated streams on the first contexts, a shared
	// job queue on the last so exhaustion and job-pull paths run too.
	q := NewJobQueue()
	q.Add("qa", func() *prog.Stream { return mixedStream(2, 6) })
	q.Add("qb", func() *prog.Stream { return mixedStream(0, 4) })
	for i := 0; i < contexts; i++ {
		if i == contexts-1 && contexts > 1 {
			if err := m.SetThread(i, q.Source()); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := m.SetThreadStream(i, "mix", mixedStream(i, 8+2*i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.Run(Stop{})
	if err != nil {
		t.Fatal(err)
	}
	return rep, firstLog(observers)
}

func firstLog(obs []Observer) *eventLog {
	for _, o := range obs {
		if l, ok := o.(*eventLog); ok {
			return l
		}
	}
	return nil
}

// TestObserverInvariance is the fast-forward-era observation contract:
// attaching observers never perturbs the simulated outcome, and the
// event sequence itself does not depend on which other observers are
// attached — across every policy, 1-4 contexts, and both engine modes
// (event-driven fast-forward and cycle-by-cycle stepping).
func TestObserverInvariance(t *testing.T) {
	for _, policy := range sched.Names() {
		for contexts := 1; contexts <= 4; contexts++ {
			for _, disableFF := range []bool{false, true} {
				bare, _ := runMixed(t, policy, contexts, disableFF)
				logB := &eventLog{}
				observed, gotB := runMixed(t, policy, contexts, disableFF, logB)
				logC := &eventLog{}
				crowded, gotC := runMixed(t, policy, contexts, disableFF,
					logC, &SwitchCounter{}, &SpanRecorder{})

				if !reflect.DeepEqual(bare, observed) {
					t.Errorf("%s/%d-ctx/ff=%t: attaching an observer changed the report",
						policy, contexts, !disableFF)
				}
				if !reflect.DeepEqual(bare, crowded) {
					t.Errorf("%s/%d-ctx/ff=%t: attaching three observers changed the report",
						policy, contexts, !disableFF)
				}
				if !reflect.DeepEqual(gotB, gotC) {
					t.Errorf("%s/%d-ctx/ff=%t: event sequence depends on the observer set",
						policy, contexts, !disableFF)
				}
				if len(gotB.spans) == 0 || len(gotB.progress) == 0 {
					t.Errorf("%s/%d-ctx/ff=%t: expected spans and progress events, got %d/%d",
						policy, contexts, !disableFF, len(gotB.spans), len(gotB.progress))
				}
			}
		}
	}
}
