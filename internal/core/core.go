// Package core implements the paper's contribution: a cycle-by-cycle
// model of a Convex C3400-class vector processor (the reference
// architecture) and its multithreaded extension with up to four hardware
// contexts sharing the fetch/decode unit, the two vector functional
// units, the memory pipe and the single address port (Section 3).
//
// The decode unit examines exactly one thread per cycle and dispatches at
// most one instruction; a thread runs until it blocks on a data
// dependence or resource conflict, then the switch logic picks another
// thread (policy-selectable, default the paper's "unfair" lowest-numbered
// scheme). Chaining is fully flexible between functional units and into
// the store path, but memory loads never chain into consumers. Vector
// register banks expose two read ports and one write port each, and the
// register-file crossbar latencies are configurable to reproduce the
// Section 8 study.
//
// The Fujitsu VP2000-style comparison machine of Section 9 (two scalar
// decode units sharing one vector facility) and the paper's future-work
// knobs (multi-thread issue, multiple memory ports via memsys) are
// included.
//
// # Concurrency and determinism
//
// A Machine is single-use and not safe for concurrent use, but a run is
// a pure function of its Config and input streams: the same inputs
// always produce the same Report, cycle for cycle. Distinct Machines
// share no mutable state: New clones Config.Policy (policies may carry
// per-run state), so one Config value can be reused across concurrent
// runs, and the session engine (internal/session, internal/runner)
// simulates many Machines in parallel and still gets byte-identical
// results at any worker count.
//
// RunContext plumbs context.Context cancellation into the simulation
// loop. The deadline is checked on a coarse iteration stride, so an
// uncancelled run is exactly as fast and exactly as deterministic as
// Run; a cancelled run returns ctx.Err() and no report.
package core

import (
	"context"
	"fmt"

	"mtvec/internal/arch"
	"mtvec/internal/isa"
	"mtvec/internal/memsys"
	"mtvec/internal/prog"
	"mtvec/internal/sched"
	"mtvec/internal/stats"
)

// Config selects a machine variant: a machine shape (the embedded
// arch.Spec — register file, functional-unit mix, latency table Lat,
// memory system Mem, default IssueWidth) plus the per-run knobs below.
// The zero Spec resolves to arch.ConvexC3400(), the paper's reference
// shape, so Config values that predate the arch layer keep their
// meaning.
type Config struct {
	// Contexts is the number of hardware contexts; 1 models the
	// reference architecture. The upper bound is the shape's
	// Spec.MaxContexts (8 on the reference machine).
	Contexts int

	// Spec is the machine shape. Its Lat, Mem and IssueWidth fields are
	// promoted, so cfg.Mem.Latency and friends read as they always did.
	arch.Spec

	// Policy is the thread-switch policy; nil selects the paper's
	// "unfair" scheme.
	Policy sched.Policy

	// DualScalar models the Fujitsu VP2000 Dual Scalar Processing
	// configuration of Section 9: one decode/scalar unit per context
	// (requires exactly 2 contexts), sharing the vector facility.
	DualScalar bool

	// Observers receive streaming run events (progress, thread
	// switches, program spans). Observers do not affect the simulated
	// outcome; see Observer for the determinism contract.
	Observers []Observer

	// ProgressStride is the simulated-cycle interval between
	// Observer.Progress events; 0 selects DefaultProgressStride.
	ProgressStride Cycle

	// RecordSpans enables Figure 9 execution-profile capture in
	// Report.Spans.
	//
	// Deprecated: span capture is an Observer concern now; RecordSpans
	// is kept as a shorthand that attaches a built-in SpanRecorder and
	// copies its spans into the Report.
	RecordSpans bool

	// DisableFastForward turns off the all-threads-blocked clock skip.
	// The skip is part of the engine's defined semantics: it is fully
	// deterministic, observation-invariant (attaching observers never
	// changes a run), and equivalent to cycle-by-cycle stepping on
	// single-context machines and the homogeneous configurations the
	// tests verify. On heterogeneous multi-context runs the skip's
	// retry hints may overshoot a register-bank port conflict that a
	// sliding dispatch window would have escaped, so cycle-stepped runs
	// can differ slightly; the golden-output gate (docs/GOLDEN.txt)
	// pins the fast-forward behaviour byte-for-byte. This knob exists
	// for that verification and for debugging.
	DisableFastForward bool
}

// DefaultConfig returns the reference architecture at 50-cycle memory
// latency.
func DefaultConfig() Config {
	return Config{Contexts: 1, Spec: arch.ConvexC3400()}
}

// Normalized resolves the config's defaulting rules without running
// anything: a zero Spec becomes arch.ConvexC3400(), and a zero
// IssueWidth takes the shape's default. Validate, New and the session
// memo key all operate on the normalized form, so a defaulted config and
// its explicit spelling are the same machine.
func (c Config) Normalized() Config {
	if c.Spec.IsZero() {
		c.Spec = arch.ConvexC3400()
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.Normalized()
	if _, err := c.Spec.Derive(c.Contexts); err != nil {
		return err
	}
	if c.DualScalar && c.Contexts != 2 {
		return fmt.Errorf("core: dual-scalar mode requires exactly 2 contexts, have %d", c.Contexts)
	}
	if c.IssueWidth < 1 || c.IssueWidth > c.Contexts {
		return fmt.Errorf("core: issue width %d out of range 1..contexts", c.IssueWidth)
	}
	return nil
}

// JobSource supplies a context's successive program runs: each call
// returns the next program's dynamic stream and name, or ok=false when
// the context has no further work.
type JobSource func() (*prog.Stream, string, bool)

// fuState is one pipelined unit's availability.
type fuState struct{ freeAt Cycle }

// Machine is one simulation instance. Machines are single-use: configure
// threads, Run once, read the report.
type Machine struct {
	cfg Config
	lat isa.LatencyTable
	mem *memsys.System

	fu1, fu2 fuState // the default 1-restricted + 1-general FU pair
	ld       fuState
	// fus holds the lanes of a non-default mix (restricted lanes first);
	// nil when pairFU selects the devirtualized fu1/fu2 fast path.
	fus    []fuState
	pairFU bool

	// Machine-shape tables resolved from cfg.Spec (arch.Derived),
	// flattened into the machine for branch-free hot-path access.
	bankOf   [arch.MaxVRegs]uint8
	ctxVRegs int
	numBanks int
	bankRP   int
	bankWP   int
	vlMax    uint16
	fuRestr  int

	ctxs []hwContext // contiguous: one cache-friendly block

	now        Cycle
	cur        int
	curBlocked bool
	lastDisp   int // context of the previous dispatch (-1 at start)

	// Hot-path decode tables, flattened from the latency table and the
	// static opcode infos at construction so the dispatch path is pure
	// array indexing (no Info copies, no per-dispatch recomputation).
	scalarLat [isa.NumOps]Cycle // scalar-unit completion latency per op
	vecDepth  [isa.NumOps]Cycle // startup+read-xbar+FU+write-xbar per vector op

	// unfair devirtualizes the default thread-switch policy; dual caches
	// Config.DualScalar for the step dispatcher.
	unfair bool
	dual   bool

	// bookSeq increments on every resource booking (dispatch commit).
	// Together with the cycle number it keys the per-context dispatch
	// memo: a probe result is reused only while nothing has been booked
	// since, which makes the memo provably identical to recomputation.
	bookSeq uint64

	// exhaustedCtxs counts contexts that drained their job source;
	// needRefill flags that some context consumed its head this cycle.
	exhaustedCtxs int
	needRefill    bool

	tl             stats.UnitTimeline
	lost           int64
	dispatched     int64
	vectorArithOps int64
	vectorOps      int64

	obs            []Observer
	hasObs         bool
	spanRec        *SpanRecorder // backs Config.RecordSpans
	progressStride Cycle
	nextProgress   Cycle

	ran    bool
	primed bool
}

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) { return newMachine(cfg, nil) }

// newMachine builds a machine, carving its mutable state out of slab
// when non-nil (batch lanes share one structure-of-arrays allocation
// per state kind) and self-allocating otherwise.
func newMachine(cfg Config, slab *batchSlab) (*Machine, error) {
	cfg = cfg.Normalized()
	// Derive runs the spec- and context-level validation; only the two
	// cross-knob checks of Config.Validate remain.
	der, err := cfg.Spec.Derive(cfg.Contexts)
	if err != nil {
		return nil, err
	}
	if cfg.DualScalar && cfg.Contexts != 2 {
		return nil, fmt.Errorf("core: dual-scalar mode requires exactly 2 contexts, have %d", cfg.Contexts)
	}
	if cfg.IssueWidth < 1 || cfg.IssueWidth > cfg.Contexts {
		return nil, fmt.Errorf("core: issue width %d out of range 1..contexts", cfg.IssueWidth)
	}
	mem, err := memsys.New(cfg.Mem)
	if err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.Unfair{}
	}
	// Take ownership of the policy: cloning makes sharing one Config
	// (or one policy value) across concurrent runs safe by construction.
	cfg.Policy = cfg.Policy.Clone()
	m := &Machine{cfg: cfg, lat: cfg.Lat, mem: mem, cur: -1, lastDisp: -1}
	// Released by report on the success path, and by runLoop/finish on
	// every error path; ReleaseBacking is idempotent, so the paths may
	// overlap safely.
	//mtvlint:allow slotpair -- protocol spans functions: report/runLoop/finish release on every terminal path
	m.tl.AcquireBacking()
	_, m.unfair = cfg.Policy.(sched.Unfair)
	m.dual = cfg.DualScalar
	m.bookSeq = 1
	for op := isa.Op(0); op < isa.NumOps; op++ {
		m.scalarLat[op] = Cycle(m.lat.Scalar(op))
		m.vecDepth[op] = Cycle(m.lat.VectorStartup + m.lat.ReadXbar + m.lat.VectorFU(op) + m.lat.WriteXbar)
	}

	// Machine-shape tables. The default 1-restricted + 1-general FU pair
	// keeps its devirtualized fu1/fu2 fast path; other mixes go through
	// the fus lane slice.
	m.bankOf = der.BankOf
	m.ctxVRegs = der.CtxVRegs
	m.numBanks = der.NumBanks
	m.bankRP = der.BankReadPorts
	m.bankWP = der.BankWritePorts
	m.vlMax = der.VLMax
	m.fuRestr = der.RestrictedFUs
	m.pairFU = der.RestrictedFUs == 1 && der.TotalFUs == 2
	if !m.pairFU {
		m.fus = make([]fuState, der.TotalFUs)
	}

	m.obs = append(m.obs, cfg.Observers...)
	if cfg.RecordSpans {
		m.spanRec = &SpanRecorder{}
		m.obs = append(m.obs, m.spanRec)
	}
	m.hasObs = len(m.obs) > 0
	m.progressStride = cfg.ProgressStride
	if m.progressStride <= 0 {
		m.progressStride = DefaultProgressStride
	}
	m.nextProgress = m.progressStride

	// One contiguous block per state kind: the contexts themselves, then
	// every context's register and bank windows, sliced out of shared
	// backing arrays so multi-context scans stay cache-friendly. Batch
	// lanes take their blocks from one batch-wide slab instead, keeping
	// all lanes' state dense for the lockstep loop.
	var (
		vregs []vregState
		banks []bankState
		wins  []portWindow
	)
	if slab != nil {
		m.ctxs = slab.takeCtxs(cfg.Contexts)
		vregs = slab.takeVRegs(cfg.Contexts * der.CtxVRegs)
		banks = slab.takeBanks(cfg.Contexts * der.NumBanks)
		wins = slab.takeWins(2 * bankWinReserve * cfg.Contexts * der.NumBanks)
	} else {
		m.ctxs = make([]hwContext, cfg.Contexts)
		vregs = make([]vregState, cfg.Contexts*der.CtxVRegs)
		banks = make([]bankState, cfg.Contexts*der.NumBanks)
		wins = make([]portWindow, 2*bankWinReserve*cfg.Contexts*der.NumBanks)
	}
	// Seed every bank's port-window lists with a slab-backed reserve:
	// pruning keeps live windows to a few in-flight instructions, so
	// bankWinReserve covers the steady state and only a genuinely deep
	// window list spills to an append-grown heap slice. The chunks are
	// capacity-capped and disjoint, so lanes sharing one slab never
	// alias each other's windows.
	for i := range banks {
		o := 2 * bankWinReserve * i
		banks[i].reads = wins[o : o : o+bankWinReserve]
		banks[i].writes = wins[o+bankWinReserve : o+bankWinReserve : o+2*bankWinReserve]
	}
	for i := range m.ctxs {
		c := &m.ctxs[i]
		c.vregs = vregs[i*der.CtxVRegs : (i+1)*der.CtxVRegs : (i+1)*der.CtxVRegs]
		c.banks = banks[i*der.NumBanks : (i+1)*der.NumBanks : (i+1)*der.NumBanks]
		c.init(i)
	}
	return m, nil
}

// SetThread installs the job source of context id.
func (m *Machine) SetThread(id int, src JobSource) error {
	if id < 0 || id >= len(m.ctxs) {
		return fmt.Errorf("core: thread %d out of range", id)
	}
	m.ctxs[id].next = jobSource(src)
	return nil
}

// SetThreadStream installs a single-run stream on context id.
func (m *Machine) SetThreadStream(id int, name string, s *prog.Stream) error {
	done := false
	return m.SetThread(id, func() (*prog.Stream, string, bool) {
		if done {
			return nil, "", false
		}
		done = true
		return s, name, true
	})
}

// Repeat builds a JobSource that restarts the program indefinitely —
// the paper's companion-thread rule ("we restart them as many times as
// necessary").
func Repeat(name string, open func() *prog.Stream) JobSource {
	return func() (*prog.Stream, string, bool) {
		return open(), name, true
	}
}

// Queue builds a JobSource draining a shared job list; used by the
// Section 7 methodology where each finishing thread takes the next
// program from a fixed order.
type JobQueue struct {
	jobs []queuedJob
	next int
}

type queuedJob struct {
	name string
	open func() *prog.Stream
}

// NewJobQueue creates an empty queue.
func NewJobQueue() *JobQueue { return &JobQueue{} }

// Add appends a job.
func (q *JobQueue) Add(name string, open func() *prog.Stream) {
	q.jobs = append(q.jobs, queuedJob{name, open})
}

// Source returns the shared JobSource; attach it to every context.
func (q *JobQueue) Source() JobSource {
	return func() (*prog.Stream, string, bool) {
		if q.next >= len(q.jobs) {
			return nil, "", false
		}
		j := q.jobs[q.next]
		q.next++
		return j.open(), j.name, true
	}
}

// Stop tells Run when to finish.
type Stop struct {
	// Thread0Complete stops when context 0 exhausts its job source
	// (the grouped-run rule of Section 4.1).
	Thread0Complete bool

	// MaxThread0Insts stops once context 0 has dispatched this many
	// dynamic instructions (partial reference runs for the speedup
	// formula). 0 disables.
	MaxThread0Insts int64

	// MaxCycles is a safety bound; 0 disables.
	MaxCycles Cycle
}

// sched.MachineView implementation.

// NumThreads implements sched.MachineView.
func (m *Machine) NumThreads() int { return len(m.ctxs) }

// HasWork implements sched.MachineView.
func (m *Machine) HasWork(t int) bool { return m.ctxs[t].refill(m) }

// Dispatchable implements sched.MachineView.
func (m *Machine) Dispatchable(t int) bool {
	c := &m.ctxs[t]
	if !c.refill(m) {
		return false
	}
	ok, _ := m.tryDispatch(c, false)
	return ok
}

// Run simulates until the stop condition triggers or all work drains,
// returning the collected metrics.
func (m *Machine) Run(stop Stop) (*stats.Report, error) {
	return m.RunContext(context.Background(), stop)
}

// cancelCheckStride is how many simulated cycles pass between context
// checks. Coarse enough to cost nothing (one comparison per loop
// iteration, one ctx.Err() per stride), fine enough that a cancelled
// run stops within microseconds of wall time.
const cancelCheckStride Cycle = 1 << 12

// RunContext is Run with cancellation: when ctx is cancelled or its
// deadline passes, the run stops and returns ctx.Err() with no report.
// Cancellation never yields partial results — a Report always describes
// a run that reached its stop condition — and an uncancelled RunContext
// is byte-identical to Run.
func (m *Machine) RunContext(ctx context.Context, stop Stop) (*stats.Report, error) {
	if err := m.begin(); err != nil {
		return nil, err
	}
	if _, err := m.runLoop(ctx, stop, 0); err != nil {
		return nil, err
	}
	return m.finish(stop)
}

// begin marks the single-use machine as consumed.
func (m *Machine) begin() error {
	if m.ran {
		return fmt.Errorf("core: machine already ran; build a new one")
	}
	m.ran = true
	return nil
}

// runLoop is the simulation loop in resumable form. It advances the
// machine until the stop condition triggers or all work drains
// (finished=true), or — when paceTarget > 0 — until the machine has
// dispatched at least paceTarget dynamic instructions (finished=false),
// in which case a later call with a higher target resumes exactly where
// this one paused. Pausing happens only between cycles and every check
// is a pure function of machine state, so a paced run steps through the
// same cycles, in the same order, as a single uninterrupted call: this
// is what makes Batch lanes byte-identical to solo runs by construction.
func (m *Machine) runLoop(ctx context.Context, stop Stop, paceTarget int64) (bool, error) {
	done := ctx.Done()
	if done != nil {
		if err := ctx.Err(); err != nil {
			// An error abandons the lane in every caller: report never
			// runs, so return the pooled timeline storage here.
			m.tl.ReleaseBacking()
			return false, err
		}
	}
	// Prime every context once; afterwards only contexts that consumed
	// their head (dispatched) are re-examined, flagged via needRefill.
	// A context's refill is a no-op while its head is pending and
	// permanent once its job source drains, so the incremental pass is
	// step-for-step identical to re-probing every context every cycle.
	if !m.primed {
		m.primed = true
		for i := range m.ctxs {
			m.ctxs[i].refill(m)
		}
	}
	var (
		nextCheck = m.now + cancelCheckStride
		maxCycles = stop.MaxCycles
		maxInsts  = stop.MaxThread0Insts
		t0done    = stop.Thread0Complete
		c0        = &m.ctxs[0]
		nctx      = len(m.ctxs)
	)
	for {
		if paceTarget > 0 && m.dispatched >= paceTarget {
			return false, nil
		}
		if done != nil && m.now >= nextCheck {
			nextCheck = m.now + cancelCheckStride
			if err := ctx.Err(); err != nil {
				m.tl.ReleaseBacking() // cancelled: report never runs
				return false, err
			}
		}
		if maxCycles > 0 && m.now >= maxCycles {
			break
		}
		if t0done && c0.exhausted {
			break
		}
		if maxInsts > 0 && c0.dispatched >= maxInsts {
			break
		}

		if m.needRefill {
			m.needRefill = false
			for i := range m.ctxs {
				if c := &m.ctxs[i]; !c.headValid && !c.exhausted {
					c.refill(m)
				}
			}
			if t0done && c0.exhausted {
				break
			}
		}
		if m.exhaustedCtxs == nctx {
			break
		}

		if m.dual {
			m.stepDualScalar()
		} else {
			m.stepShared()
		}
		m.now++
		if m.hasObs && m.nextProgress <= m.now {
			m.notifyProgress()
		}
	}
	return true, nil
}

// finish surfaces stream errors and assembles the run's Report.
func (m *Machine) finish(stop Stop) (*stats.Report, error) {
	if err := m.streamErrors(); err != nil {
		m.tl.ReleaseBacking() // failed run: report never runs
		return nil, err
	}
	return m.report(stop), nil
}

// stepShared is the paper's machine: one decode unit, one thread
// examined per cycle, IssueWidth extra slots for the future-work
// simultaneous-issue study.
func (m *Machine) stepShared() {
	var th int
	if m.unfair {
		th = m.pickUnfair()
	} else {
		th = m.cfg.Policy.Pick(m, m.cur, m.curBlocked)
	}
	if th < 0 {
		return
	}
	c := &m.ctxs[th]
	if ok, hint := m.tryDispatch(c, true); ok {
		if th != m.lastDisp {
			if m.hasObs {
				m.notifySwitch(m.lastDisp, th)
			}
			m.lastDisp = th
		}
		m.completeDispatch(c)
		m.cur, m.curBlocked = th, false
	} else {
		m.lost++
		m.cur, m.curBlocked = th, true
		m.maybeSkipAhead(th, hint)
		return
	}
	// Extra issue slots from other threads (extension; IssueWidth=1 on
	// the paper's machine).
	for w := 1; w < m.cfg.IssueWidth; w++ {
		picked := -1
		for t := 0; t < len(m.ctxs); t++ {
			if t == th || !m.ctxs[t].refill(m) {
				continue
			}
			if ok, _ := m.tryDispatch(&m.ctxs[t], false); ok {
				picked = t
				break
			}
		}
		if picked < 0 {
			break
		}
		if ok, _ := m.tryDispatch(&m.ctxs[picked], true); ok {
			m.completeDispatch(&m.ctxs[picked])
		}
	}
}

// pickUnfair is the devirtualized fast path for the paper's default
// policy: it makes exactly the picks sched.Unfair.Pick makes (run the
// current thread until it blocks, then switch to the lowest-numbered
// thread known not to be blocked) without the MachineView indirection.
func (m *Machine) pickUnfair() int {
	if cur := m.cur; cur >= 0 && !m.curBlocked {
		if c := &m.ctxs[cur]; c.headValid || c.refill(m) {
			return cur
		}
	}
	first := -1
	for t := range m.ctxs {
		c := &m.ctxs[t]
		if !c.headValid && !c.refill(m) {
			continue
		}
		if first < 0 {
			first = t
		}
		if ok, _ := m.tryDispatch(c, false); ok {
			return t
		}
	}
	return first // everyone blocked (or no work): attempt the lowest
}

// stepDualScalar is the Fujitsu VP2000 mode: each context has its own
// decode/scalar unit; both attempt a dispatch every cycle, sharing the
// vector units and memory port (lower context wins ties by going first).
func (m *Machine) stepDualScalar() {
	blockedAll := true
	blocked := int64(0)
	minHint := Cycle(1<<62 - 1)
	for i := range m.ctxs {
		c := &m.ctxs[i]
		if !c.refill(m) {
			continue
		}
		if ok, hint := m.tryDispatch(c, true); ok {
			m.completeDispatch(c)
			blockedAll = false
		} else {
			m.lost++
			blocked++
			if hint < minHint {
				minHint = hint
			}
		}
	}
	if blockedAll && minHint < 1<<61 && !m.cfg.DisableFastForward {
		m.skipTo(minHint, blocked)
	}
}

// completeDispatch consumes the head instruction after a successful
// dispatch. Bumping bookSeq invalidates every memoized probe (resources
// were just booked); needRefill schedules the head re-pull for the top of
// the next cycle, exactly when the eager engine would have pulled it.
func (m *Machine) completeDispatch(c *hwContext) {
	c.headValid = false
	c.dispatched++
	m.dispatched++
	m.bookSeq++
	m.needRefill = true
}

// maybeSkipAhead fast-forwards the clock when every thread with work is
// blocked: no dispatch can happen before the earliest retry hint, so the
// intermediate cycles are all lost decode cycles. This changes nothing
// observable — interval-based accounting covers the gap. The retry hints
// were almost always just computed by the policy's scan this same cycle,
// so the probes below are memo hits (see tryDispatch), not recomputation.
func (m *Machine) maybeSkipAhead(failed int, hint Cycle) {
	if m.cfg.DisableFastForward {
		return
	}
	minHint := hint
	for t := range m.ctxs {
		c := &m.ctxs[t]
		if t == failed || !c.refill(m) {
			continue
		}
		ok, h := m.tryDispatch(c, false)
		if ok {
			return // someone can dispatch next cycle; no skip
		}
		if h < minHint {
			minHint = h
		}
	}
	m.skipTo(minHint, 1)
}

// skipTo advances the clock so the next loop iteration lands on target.
// lostPerCycle is the number of decode slots each skipped cycle would
// have wasted (1 for the shared decoder, one per blocked unit in
// dual-scalar mode), keeping the lost-decode counter identical to
// cycle-by-cycle stepping.
func (m *Machine) skipTo(target Cycle, lostPerCycle int64) {
	if target <= m.now+1 {
		return
	}
	skipped := target - m.now - 1
	m.lost += skipped * lostPerCycle
	m.now += skipped
}

// closeSpan records the end of a context's current program segment and
// streams it to the observers.
func (m *Machine) closeSpan(c *hwContext) {
	if !c.spanOpen {
		return
	}
	c.spanOpen = false
	if len(m.obs) == 0 {
		return
	}
	s := stats.Span{Thread: c.id, Program: c.program, Start: c.spanStart, End: m.now}
	for _, o := range m.obs {
		o.Span(s)
	}
}

// streamErrors surfaces trace replay failures.
func (m *Machine) streamErrors() error {
	for i := range m.ctxs {
		c := &m.ctxs[i]
		if c.err != nil {
			return fmt.Errorf("core: thread %d: %w", c.id, c.err)
		}
		if c.stream != nil {
			if err := c.stream.Err(); err != nil {
				return fmt.Errorf("core: thread %d: %w", c.id, err)
			}
		}
	}
	return nil
}

// report assembles the run's metrics.
func (m *Machine) report(stop Stop) *stats.Report {
	cycles := m.now
	switch {
	case stop.MaxThread0Insts > 0:
		// Partial runs measure to the dispatch point.
	case stop.Thread0Complete:
		if q := m.ctxs[0].quiesce(m.now); q > cycles {
			cycles = q
		}
	default:
		for i := range m.ctxs {
			if q := m.ctxs[i].quiesce(m.now); q > cycles {
				cycles = q
			}
		}
	}

	breakdown := m.tl.Sweep(cycles)
	m.tl.ReleaseBacking() // report runs once; the timeline is dead now
	rep := &stats.Report{
		Cycles:         cycles,
		Breakdown:      breakdown,
		MemBusyCycles:  m.mem.BusyCycles(),
		MemRequests:    m.mem.Requests(),
		MemPorts:       m.mem.Ports(),
		VectorArithOps: m.vectorArithOps,
		VectorOps:      m.vectorOps,
		Insts:          m.dispatched,
		LostDecode:     m.lost,
	}
	for i := range m.ctxs {
		c := &m.ctxs[i]
		m.closeSpan(c)
		rep.Threads = append(rep.Threads, stats.ThreadReport{
			Program:      c.program,
			Completions:  c.completions,
			PartialInsts: c.partialInsts(),
			Dispatched:   c.dispatched,
		})
	}
	if m.spanRec != nil {
		rep.Spans = m.spanRec.Spans
	}
	return rep
}

// IdealCycles merges workload demand statistics and returns the paper's
// IDEAL execution-time lower bound (Figure 10): the busy time of the most
// saturated resource, with all dependences and latencies removed.
func IdealCycles(all ...prog.Stats) int64 {
	var merged prog.Stats
	for i := range all {
		merged.Merge(&all[i])
	}
	return merged.IdealCycles()
}
