package core

import (
	"reflect"
	"strings"
	"testing"

	"mtvec/internal/arch"
	"mtvec/internal/isa"
	"mtvec/internal/prog"
	"mtvec/internal/stats"
)

// vecProgram is a small chained vector kernel touching two banks.
func vecProgram() *prog.Program {
	return mkProgram("vp",
		isa.Inst{Op: isa.OpSetVL, Src1: isa.A(0)},
		isa.Inst{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(1)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVMul, Dst: isa.V(6), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVStore, Src1: isa.V(6), Src2: isa.A(1)},
	)
}

func runVec(t *testing.T, cfg Config, reps int) *stats.Report {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := vecProgram()
	vls := make([]int64, reps)
	addrs := make([]uint64, 2*reps)
	for i := range vls {
		vls[i] = 128
	}
	for i := range addrs {
		addrs[i] = uint64(0x1000 + 1024*i)
	}
	if err := m.SetThreadStream(0, p.Name, streamOf(p, reps, vls, nil, addrs)); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(Stop{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestExplicitReferenceSpecIsByteIdentical is the arch layer's core
// contract: a machine built from an explicit arch.ConvexC3400() spec is
// indistinguishable from one built from the pre-arch defaulted Config.
func TestExplicitReferenceSpecIsByteIdentical(t *testing.T) {
	implicit := Config{Contexts: 1} // zero Spec: normalizes to the reference
	explicit := Config{Contexts: 1, Spec: arch.ConvexC3400()}
	a := runVec(t, implicit, 64)
	b := runVec(t, explicit, 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("explicit reference spec drifted:\n defaulted: %+v\n explicit:  %+v", a, b)
	}
}

// TestContextCapComesFromSpec replaces the old core.MaxContexts test:
// the cap is per-shape now.
func TestContextCapComesFromSpec(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Contexts = 9 // reference shape supports 8
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("9 contexts on an 8-context shape: err = %v", err)
	}
	cfg.MaxContexts = 16
	if _, err := New(cfg); err != nil {
		t.Fatalf("raised cap rejected: %v", err)
	}
}

// TestSingleBankSerializesReads pins the bank-geometry semantics: the
// same program on a single-bank file must cost strictly more cycles than
// on the reference 4-bank file (operand reads compete for 2 ports).
func TestSingleBankSerializesReads(t *testing.T) {
	ref := runVec(t, DefaultConfig(), 64)

	cfg := DefaultConfig()
	cfg.VRegsPerBank = 8 // one bank holds all 8 registers
	one := runVec(t, cfg, 64)

	if one.Cycles <= ref.Cycles {
		t.Fatalf("single-bank file not slower: %d vs %d cycles", one.Cycles, ref.Cycles)
	}
}

// TestStructurallyImpossibleDispatchErrors: an instruction whose two
// sources share a 1-read-port bank can never dispatch; the machine must
// reject it instead of spinning forever.
func TestStructurallyImpossibleDispatchErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VRegsPerBank, cfg.BankReadPorts, cfg.BankWritePorts = 8, 1, 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := mkProgram("imp",
		isa.Inst{Op: isa.OpSetVL, Src1: isa.A(0)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(1)},
	)
	if err := m.SetThreadStream(0, p.Name, streamOf(p, 1, []int64{64}, nil, nil)); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(Stop{})
	if err == nil || !strings.Contains(err.Error(), "read port") {
		t.Fatalf("err = %v, want a bank read-port rejection", err)
	}
}

// TestPartitionedFileRejectsOutOfRangeRegisters: a context of a
// partitioned file sees only its share; code compiled for the full file
// fails loudly.
func TestPartitionedFileRejectsOutOfRangeRegisters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Contexts = 2
	cfg.PartitionPerContext = true // 4 registers per context
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := vecProgram() // uses v6
	if err := m.SetThreadStream(0, p.Name, streamOf(p, 1, []int64{64}, nil, manyAddrs(2))); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(Stop{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want register out-of-range", err)
	}
}

// TestVLBeyondShapeRejected: a trace carrying vector lengths the shape's
// registers cannot hold is rejected, not silently clamped.
func TestVLBeyondShapeRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VLen = 64
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := mkProgram("long",
		isa.Inst{Op: isa.OpSetVL, Src1: isa.A(0)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(4)},
	)
	// The stream clamps SetVL at the reference 128, above the machine's 64.
	if err := m.SetThreadStream(0, p.Name, streamOf(p, 1, []int64{128}, nil, nil)); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(Stop{})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want vector-length rejection", err)
	}
}

// TestGeneralFUMixRunsEverywhere: with two general lanes, FU2-only ops
// (mul) can run concurrently — a program alternating muls must finish
// faster than on the reference 1-restricted + 1-general pair, where they
// serialize on FU2.
func TestGeneralFUMixRunsEverywhere(t *testing.T) {
	// Distinct banks throughout (destinations 0/1, sources 2/3), so the
	// only shared resource between the two muls is the FU pool.
	p := mkProgram("mm",
		isa.Inst{Op: isa.OpSetVL, Src1: isa.A(0)},
		isa.Inst{Op: isa.OpVMul, Dst: isa.V(0), Src1: isa.V(4), Src2: isa.V(6)},
		isa.Inst{Op: isa.OpVMul, Dst: isa.V(2), Src1: isa.V(5), Src2: isa.V(7)},
	)
	run := func(cfg Config) Cycle {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		vls := make([]int64, 32)
		for i := range vls {
			vls[i] = 128
		}
		if err := m.SetThreadStream(0, p.Name, streamOf(p, 32, vls, nil, nil)); err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(Stop{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles
	}
	pair := run(DefaultConfig())
	cfg := DefaultConfig()
	cfg.RestrictedFUs, cfg.GeneralFUs = 0, 2
	dual := run(cfg)
	if dual >= pair {
		t.Fatalf("two general lanes not faster for muls: %d vs %d cycles", dual, pair)
	}
}
