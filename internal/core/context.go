package core

import (
	"mtvec/internal/isa"
	"mtvec/internal/prog"
)

// Cycle counts processor cycles.
type Cycle = int64

// vregState tracks the in-flight producer and consumers of one vector
// register. Times are inclusive element-write cycles for the writer and
// half-open read windows for readers.
type vregState struct {
	// Writer: the register is being written while now <= wLast. wFirst
	// is the cycle its first element lands (chaining point). Chainable
	// is false for memory loads — the paper's machine does not chain
	// loads into functional units because elements may return out of
	// order.
	wFirst    Cycle
	wLast     Cycle
	chainable bool

	// Active read windows [start, end); a slot is free when end <= now.
	readEnd [maxReaders]Cycle
}

// maxReaders bounds concurrent readers of one register: FU1, FU2, the
// store path and slack for back-to-back windows whose tails overlap.
const maxReaders = 6

func (v *vregState) writerActive(now Cycle) bool { return v.wLast >= now }

func (v *vregState) readersActive(now Cycle) bool {
	for _, e := range v.readEnd {
		if e > now {
			return true
		}
	}
	return false
}

// lastReadEnd returns the latest active read window end (or now).
func (v *vregState) lastReadEnd(now Cycle) Cycle {
	last := now
	for _, e := range v.readEnd {
		if e > last {
			last = e
		}
	}
	return last
}

// addReader records a read window, reusing an expired slot.
func (v *vregState) addReader(now, end Cycle) bool {
	for i, e := range v.readEnd {
		if e <= now {
			v.readEnd[i] = end
			return true
		}
	}
	return false
}

// portWindow is a busy window [S, E) on a register-bank port.
type portWindow struct{ S, E Cycle }

// bankState tracks the port occupancy of one two-register bank: two read
// ports and one write port into the crossbars (Section 3).
type bankState struct {
	reads  []portWindow
	writes []portWindow
}

// prune drops expired windows.
func (b *bankState) prune(now Cycle) {
	keep := func(ws []portWindow) []portWindow {
		out := ws[:0]
		for _, w := range ws {
			if w.E > now {
				out = append(out, w)
			}
		}
		return out
	}
	b.reads = keep(b.reads)
	b.writes = keep(b.writes)
}

// readPortFree reports whether a read port is available for the whole
// window [s, e), i.e. no instant within it already has 2 active reads.
// On failure it returns the earliest cycle the conflict could clear.
func (b *bankState) readPortFree(s, e Cycle) (bool, Cycle) {
	return portFree(b.reads, s, e, isa.BankReadPorts)
}

// writePortFree is the analogous single-write-port check.
func (b *bankState) writePortFree(s, e Cycle) (bool, Cycle) {
	return portFree(b.writes, s, e, isa.BankWritePorts)
}

// portFree counts the maximum overlap of existing windows with [s, e) and
// checks it stays below capacity. Window lists are tiny (a handful of
// in-flight instructions per context), so the quadratic sweep is cheap.
func portFree(ws []portWindow, s, e Cycle, capacity int) (bool, Cycle) {
	var overlapping []portWindow
	for _, w := range ws {
		if w.S < e && w.E > s {
			overlapping = append(overlapping, w)
		}
	}
	if len(overlapping) < capacity {
		return true, 0
	}
	// Count concurrency at each overlapping window's start (maximum
	// overlap is attained at some window start or at s).
	minEnd := Cycle(1<<62 - 1)
	points := make([]Cycle, 0, len(overlapping)+1)
	points = append(points, s)
	for _, w := range overlapping {
		if w.S > s {
			points = append(points, w.S)
		}
		if w.E < minEnd {
			minEnd = w.E
		}
	}
	for _, p := range points {
		n := 0
		for _, w := range overlapping {
			if w.S <= p && p < w.E {
				n++
			}
		}
		if n >= capacity {
			return false, minEnd
		}
	}
	return true, 0
}

// jobSource supplies a context's successive program runs.
type jobSource func() (*prog.Stream, string, bool)

// newContext builds an idle context: no register has an in-flight writer
// (wLast = -1 marks the writer inactive from cycle 0 on).
func newContext(id int) *hwContext {
	c := &hwContext{id: id}
	for i := range c.vregs {
		c.vregs[i].wFirst = -1
		c.vregs[i].wLast = -1
	}
	return c
}

// context is one hardware context: its registers, its instruction stream
// and its progress accounting.
type hwContext struct {
	id int

	// Architectural state timing.
	aReady [isa.NumA]Cycle
	sReady [isa.NumS]Cycle
	vregs  [isa.NumV]vregState
	banks  [isa.NumVBanks]bankState

	// Instruction supply.
	stream    *prog.Stream
	next      jobSource
	head      isa.DynInst
	headValid bool
	exhausted bool

	// Accounting.
	program     string
	completions int64
	dispatched  int64
	spanStart   Cycle
	spanOpen    bool
	err         error
}

// refill fetches the next head instruction, pulling a new job when the
// current stream ends. It reports whether the context has work.
func (c *hwContext) refill(m *Machine) bool {
	if c.headValid {
		return true
	}
	for {
		if c.stream != nil && c.stream.Next(&c.head) {
			c.headValid = true
			return true
		}
		if c.stream != nil {
			// Stream ended: account a completion and close the span.
			if err := c.stream.Err(); err != nil && c.err == nil {
				c.err = err
			}
			c.completions++
			m.closeSpan(c)
			c.stream = nil
		}
		if c.next == nil {
			c.exhausted = true
			return false
		}
		s, name, ok := c.next()
		if !ok {
			c.exhausted = true
			return false
		}
		c.stream = s
		c.program = name
		c.spanStart = m.now
		c.spanOpen = true
	}
}

// partialInsts returns how far into the current (unfinished) run the
// context is, in dynamic instructions.
func (c *hwContext) partialInsts() int64 {
	if c.stream == nil {
		return 0
	}
	n := c.stream.Count()
	if c.headValid {
		// The head was pulled from the stream but not yet dispatched.
		n--
	}
	return n
}

// quiesce returns the cycle by which all of the context's in-flight
// register activity has drained.
func (c *hwContext) quiesce(now Cycle) Cycle {
	q := now
	for i := range c.vregs {
		v := &c.vregs[i]
		if v.wLast+1 > q {
			q = v.wLast + 1
		}
		if e := v.lastReadEnd(now); e > q {
			q = e
		}
	}
	for _, r := range c.aReady {
		if r > q {
			q = r
		}
	}
	for _, r := range c.sReady {
		if r > q {
			q = r
		}
	}
	return q
}
