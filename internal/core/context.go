package core

import (
	"mtvec/internal/isa"
	"mtvec/internal/prog"
)

// Cycle counts processor cycles.
type Cycle = int64

// vregState tracks the in-flight producer and consumers of one vector
// register. Times are inclusive element-write cycles for the writer and
// half-open read windows for readers.
type vregState struct {
	// Writer: the register is being written while now <= wLast. wFirst
	// is the cycle its first element lands (chaining point). Chainable
	// is false for memory loads — the paper's machine does not chain
	// loads into functional units because elements may return out of
	// order.
	wFirst    Cycle
	wLast     Cycle
	chainable bool

	// Active read windows [start, end); a slot is free when end <= now.
	readEnd [maxReaders]Cycle

	// maxReadEnd caches the maximum of readEnd so the hot activity
	// checks are a single comparison instead of a slot scan.
	maxReadEnd Cycle
}

// maxReaders bounds concurrent readers of one register: FU1, FU2, the
// store path and slack for back-to-back windows whose tails overlap.
const maxReaders = 6

func (v *vregState) writerActive(now Cycle) bool { return v.wLast >= now }

func (v *vregState) readersActive(now Cycle) bool { return v.maxReadEnd > now }

// lastReadEnd returns the latest active read window end (or now).
func (v *vregState) lastReadEnd(now Cycle) Cycle {
	if v.maxReadEnd > now {
		return v.maxReadEnd
	}
	return now
}

// addReader records a read window, reusing an expired slot.
func (v *vregState) addReader(now, end Cycle) bool {
	for i, e := range v.readEnd {
		if e <= now {
			v.readEnd[i] = end
			if end > v.maxReadEnd {
				v.maxReadEnd = end
			}
			return true
		}
	}
	return false
}

// portWindow is a busy window [S, E) on a register-bank port.
type portWindow struct{ S, E Cycle }

// bankWinReserve is the slab-backed initial capacity of each bank's
// read and write window lists (see newMachine). Pruning keeps the live
// window count near the in-flight instruction depth, so a small reserve
// covers the steady state without growth while keeping the slab cheap.
const bankWinReserve = 4

// bankState tracks the port occupancy of one two-register bank: two read
// ports and one write port into the crossbars (Section 3).
type bankState struct {
	reads  []portWindow
	writes []portWindow
}

// prune drops expired windows.
func (b *bankState) prune(now Cycle) {
	keep := func(ws []portWindow) []portWindow {
		out := ws[:0]
		for _, w := range ws {
			if w.E > now {
				out = append(out, w)
			}
		}
		return out
	}
	b.reads = keep(b.reads)
	b.writes = keep(b.writes)
}

// writePortFree reports whether the bank has a write port free for the
// whole window [s, e); ports is the bank's write-port count from the
// machine shape. On failure it returns the earliest cycle the conflict
// could clear. (The read-port check goes through checkBankReads, which
// groups sources sharing a bank before calling portFree.)
func (b *bankState) writePortFree(s, e Cycle, ports int) (bool, Cycle) {
	return portFree(b.writes, s, e, ports)
}

// portFree counts the maximum overlap of existing windows with [s, e) and
// checks it stays below capacity. Window lists are tiny (a handful of
// in-flight instructions per context), so the quadratic sweep is cheap —
// and allocation-free: maximum overlap is attained at s or at some
// overlapping window's start, so each candidate point is evaluated with a
// rescan instead of materializing the overlap set.
func portFree(ws []portWindow, s, e Cycle, capacity int) (bool, Cycle) {
	if len(ws) < capacity {
		return true, 0 // fewer windows than ports: no conflict possible
	}
	overlapping := 0
	minEnd := Cycle(1<<62 - 1)
	for _, w := range ws {
		if w.S < e && w.E > s {
			overlapping++
			if w.E < minEnd {
				minEnd = w.E
			}
		}
	}
	if overlapping < capacity {
		return true, 0
	}
	// Count concurrency at each candidate point: s itself and every
	// overlapping window's start within (s, e).
	if countAt(ws, s, e, s) >= capacity {
		return false, minEnd
	}
	for _, w := range ws {
		if w.S > s && w.S < e && w.E > s {
			if countAt(ws, s, e, w.S) >= capacity {
				return false, minEnd
			}
		}
	}
	return true, 0
}

// countAt returns how many windows overlapping [s, e) contain point p.
func countAt(ws []portWindow, s, e, p Cycle) int {
	n := 0
	for _, w := range ws {
		if w.S < e && w.E > s && w.S <= p && p < w.E {
			n++
		}
	}
	return n
}

// numRegClasses covers isa.ClassNone..isa.ClassImm as scoreboard rows.
const numRegClasses = int(isa.ClassImm) + 1

// The flat scoreboard assumes the A and S register files are the same
// size; rows are sized by isa.NumA.
var _ [isa.NumA]struct{} = [isa.NumS]struct{}{}

// jobSource supplies a context's successive program runs.
type jobSource func() (*prog.Stream, string, bool)

// init resets a context to idle: no register has an in-flight writer
// (wLast = -1 marks the writer inactive from cycle 0 on) and no dispatch
// probe is memoized.
func (c *hwContext) init(id int) {
	c.id = id
	for i := range c.vregs {
		c.vregs[i].wFirst = -1
		c.vregs[i].wLast = -1
	}
	c.probeCyc = -1
}

// context is one hardware context: its registers, its instruction stream
// and its progress accounting.
type hwContext struct {
	id int

	// Architectural state timing. The scalar scoreboard is indexed by
	// operand class then register, so the ready check is unconditional
	// array math: rows ClassA and ClassS carry the A/S scoreboards, the
	// rows for ClassNone, ClassV and ClassImm are never written and read
	// as always-ready — exactly the branchy per-class semantics, minus
	// the branches. The vector register and bank state are sized by the
	// machine shape (arch.Derived) and slice into machine-wide backing
	// arrays (see New).
	scoreb [numRegClasses][isa.NumA]Cycle
	vregs  []vregState
	banks  []bankState

	// Instruction supply. head points at the stream's current decoded
	// instruction — shared immutable predecode entries for cached
	// replays, a stream-owned buffer otherwise — valid while headValid
	// and never written by the machine.
	stream    *prog.Stream
	next      jobSource
	head      *prog.DecodedInst
	headValid bool
	exhausted bool

	// Within-cycle dispatch memo (see Machine.tryDispatch): the result
	// of checking this context's head at probeCyc with machine booking
	// sequence probeSeq. Valid only while both match — any booking
	// anywhere invalidates it — so a memoized answer is exactly what
	// recomputation would return.
	probeCyc  Cycle
	probeSeq  uint64
	probeOK   bool
	probeHint Cycle

	// Accounting.
	program     string
	completions int64
	dispatched  int64
	spanStart   Cycle
	spanOpen    bool
	err         error
}

// refill fetches the next head instruction, pulling a new job when the
// current stream ends. It reports whether the context has work.
// Exhaustion is permanent: per the JobSource contract, ok=false means the
// context has no further work, so an exhausted context is never probed
// again.
func (c *hwContext) refill(m *Machine) bool {
	if c.headValid {
		return true
	}
	if c.exhausted {
		return false
	}
	for {
		if c.stream != nil {
			if d := c.stream.NextDec(); d != nil {
				if d.Kind == isa.KindVector || d.Kind == isa.KindVectorMem {
					if err := m.checkShape(d); err != nil {
						if c.err == nil {
							c.err = err
						}
						c.markExhausted(m)
						return false
					}
				}
				c.head = d
				c.headValid = true
				return true
			}
		}
		if c.stream != nil {
			// Stream ended: account a completion and close the span.
			if err := c.stream.Err(); err != nil && c.err == nil {
				c.err = err
			}
			c.completions++
			m.closeSpan(c)
			c.stream = nil
		}
		if c.next == nil {
			c.markExhausted(m)
			return false
		}
		s, name, ok := c.next()
		if !ok {
			c.markExhausted(m)
			return false
		}
		c.stream = s
		c.program = name
		c.spanStart = m.now
		c.spanOpen = true
	}
}

// markExhausted records that the context has drained its job source.
func (c *hwContext) markExhausted(m *Machine) {
	if !c.exhausted {
		c.exhausted = true
		m.exhaustedCtxs++
	}
}

// partialInsts returns how far into the current (unfinished) run the
// context is, in dynamic instructions.
func (c *hwContext) partialInsts() int64 {
	if c.stream == nil {
		return 0
	}
	n := c.stream.Count()
	if c.headValid {
		// The head was pulled from the stream but not yet dispatched.
		n--
	}
	return n
}

// quiesce returns the cycle by which all of the context's in-flight
// register activity has drained.
func (c *hwContext) quiesce(now Cycle) Cycle {
	q := now
	for i := range c.vregs {
		v := &c.vregs[i]
		if v.wLast+1 > q {
			q = v.wLast + 1
		}
		if e := v.lastReadEnd(now); e > q {
			q = e
		}
	}
	for _, r := range c.scoreb[isa.ClassA] {
		if r > q {
			q = r
		}
	}
	for _, r := range c.scoreb[isa.ClassS] {
		if r > q {
			q = r
		}
	}
	return q
}
