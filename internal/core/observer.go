package core

import (
	"mtvec/internal/stats"
)

// DefaultProgressStride is the simulated-cycle interval between Progress
// events when Config.ProgressStride is zero. It is coarse enough that
// observation never measurably slows a run.
const DefaultProgressStride Cycle = 1 << 16

// Observer receives streaming events from one run. Observers are called
// synchronously from the simulation loop, in Config.Observers order, and
// must not retain the machine or block; an observer instance belongs to
// one run at a time unless it synchronizes internally.
//
// Event timing is deterministic in simulated cycles: the same Config and
// input streams produce the same event sequence, with or without the
// all-threads-blocked fast-forward.
type Observer interface {
	// Progress fires once per ProgressStride simulated cycles, with the
	// stride boundary and the instructions dispatched so far.
	Progress(now Cycle, dispatched int64)

	// ThreadSwitch fires when the primary decode slot dispatches from a
	// different context than its previous primary dispatch (from is -1
	// on the first dispatch). Examinations that fail to dispatch are
	// not switches — they are visible as lost decode cycles instead —
	// which keeps the event stream identical with and without the
	// all-threads-blocked fast-forward. Extra simultaneous-issue slots
	// (IssueWidth > 1) neither emit nor affect switch events, and the
	// dual-scalar machine has per-context decode units and emits none.
	ThreadSwitch(now Cycle, from, to int)

	// Span fires when a program segment closes on a context — the
	// Figure 9 execution-profile event.
	Span(s stats.Span)
}

// SpanRecorder is the built-in Figure 9 observer: it collects every
// program span of a run. A machine whose Config sets RecordSpans
// attaches one internally and copies its spans into the Report.
type SpanRecorder struct {
	Spans []stats.Span
}

func (r *SpanRecorder) Progress(Cycle, int64)        {}
func (r *SpanRecorder) ThreadSwitch(Cycle, int, int) {}
func (r *SpanRecorder) Span(s stats.Span)            { r.Spans = append(r.Spans, s) }

// ProgressFunc adapts a function to an Observer that only handles
// Progress events — the typical shape of a CLI progress meter.
type ProgressFunc func(now Cycle, dispatched int64)

func (f ProgressFunc) Progress(now Cycle, dispatched int64) { f(now, dispatched) }
func (f ProgressFunc) ThreadSwitch(Cycle, int, int)         {}
func (f ProgressFunc) Span(stats.Span)                      {}

// SwitchCounter counts decode thread switches — a cheap instrument for
// policy studies.
type SwitchCounter struct {
	Switches int64
}

func (c *SwitchCounter) Progress(Cycle, int64) {}
func (c *SwitchCounter) ThreadSwitch(now Cycle, from, to int) {
	if from >= 0 {
		c.Switches++
	}
}
func (c *SwitchCounter) Span(stats.Span) {}

// notifyProgress emits Progress events for every stride boundary the
// clock has reached. Boundaries are emitted with the boundary cycle, not
// the current one, so a fast-forwarded run reports the same sequence as
// a cycle-stepped one (no dispatch happens inside a skipped window).
func (m *Machine) notifyProgress() {
	for m.nextProgress <= m.now {
		at := m.nextProgress
		for _, o := range m.obs {
			o.Progress(at, m.dispatched)
		}
		m.nextProgress += m.progressStride
	}
}

// notifySwitch emits a ThreadSwitch event.
func (m *Machine) notifySwitch(from, to int) {
	for _, o := range m.obs {
		o.ThreadSwitch(m.now, from, to)
	}
}
