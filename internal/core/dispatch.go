package core

import (
	"fmt"

	"mtvec/internal/isa"
	"mtvec/internal/prog"
	"mtvec/internal/stats"
)

// tryDispatch attempts to dispatch context c's head instruction at m.now.
// With commit=false it only probes (the switch logic's "known not to be
// blocked" test and the skip-ahead estimator use this). On failure it
// returns a sound lower bound on the cycle the dispatch could first
// succeed, used to fast-forward when every thread is blocked.
//
// Results are memoized per context for the current (cycle, bookSeq)
// pair: within one cycle the machine probes the same head several times —
// the policy's switch scan, the committed attempt, the skip-ahead
// estimator — against unchanged state, so the memo answer is exactly what
// recomputation would return. Any booking anywhere bumps bookSeq and
// invalidates every memo, so a stale answer is never reused.
//
// The three execution paths cover the three dispatch situations:
//   - probe (commit=false): run the checks once, memoize the outcome;
//   - commit after a successful same-cycle probe (memo hit): book via
//     apply without re-running the checks;
//   - commit with no prior probe (the steady run-until-block state):
//     fused single-pass check+book, walking the constraints once.
func (m *Machine) tryDispatch(c *hwContext, commit bool) (bool, Cycle) {
	if c.probeCyc == m.now && c.probeSeq == m.bookSeq {
		if !c.probeOK {
			return false, c.probeHint
		}
		if commit {
			m.applyDispatch(c)
		}
		return true, 0
	}
	if commit {
		ok, hint := m.commitDispatch(c)
		if !ok {
			// A failed commit attempt books nothing, so the outcome is
			// memoizable exactly like a probe.
			c.probeCyc, c.probeSeq = m.now, m.bookSeq
			c.probeOK, c.probeHint = false, hint
		}
		return ok, hint
	}
	ok, hint := m.checkDispatch(c)
	c.probeCyc, c.probeSeq = m.now, m.bookSeq
	c.probeOK, c.probeHint = ok, hint
	return ok, hint
}

// commitDispatch is the fused single-pass dispatch: identical checks in
// identical order to checkDispatch, booking resources on success.
func (m *Machine) commitDispatch(c *hwContext) (bool, Cycle) {
	switch c.head.Kind {
	case isa.KindScalar, isa.KindBranch, isa.KindVLVS:
		if ok, hint := m.checkScalar(c); !ok {
			return false, hint
		}
		m.applyScalar(c)
	case isa.KindScalarMem:
		if ok, hint := m.checkScalarMem(c); !ok {
			return false, hint
		}
		m.applyScalarMem(c)
	case isa.KindVector:
		return m.commitVectorArith(c)
	case isa.KindVectorMem:
		return m.commitVectorMem(c)
	default:
		return false, m.now + 1
	}
	return true, 0
}

// checkDispatch verifies every dispatch constraint of c's head without
// booking anything. Constraints are evaluated in the same order the
// original single-pass dispatcher used, so the failure hint (first
// failing constraint's clear cycle) is bit-identical.
func (m *Machine) checkDispatch(c *hwContext) (bool, Cycle) {
	switch c.head.Kind {
	case isa.KindScalar, isa.KindBranch, isa.KindVLVS:
		return m.checkScalar(c)
	case isa.KindScalarMem:
		return m.checkScalarMem(c)
	case isa.KindVector:
		return m.checkVectorArith(c)
	case isa.KindVectorMem:
		return m.checkVectorMem(c)
	}
	return false, m.now + 1
}

// applyDispatch books the resources of a dispatch whose checks passed
// this cycle. State is unchanged since the check (guarded by bookSeq), so
// the cheap schedule arithmetic recomputed here reproduces the check's
// values exactly; only the expensive constraint scans are skipped.
func (m *Machine) applyDispatch(c *hwContext) {
	switch c.head.Kind {
	case isa.KindScalar, isa.KindBranch, isa.KindVLVS:
		m.applyScalar(c)
	case isa.KindScalarMem:
		m.applyScalarMem(c)
	case isa.KindVector:
		m.applyVectorArith(c)
	case isa.KindVectorMem:
		m.applyVectorMem(c)
	}
}

// scalarReady checks an A/S operand's scoreboard entry. The flat
// class-indexed scoreboard makes this branch-free for the other operand
// classes: their rows are never written, so they always read as ready.
func (c *hwContext) scalarReady(o isa.Operand, now Cycle) (bool, Cycle) {
	if r := c.scoreb[o.Class][o.Reg]; r > now {
		return false, r
	}
	return true, 0
}

// setScalarReady books a result into the scalar scoreboard. The class
// switch is kept on the write side so only the A and S rows are ever
// dirtied (a vector or immediate destination must not poison its row).
func (c *hwContext) setScalarReady(o isa.Operand, at Cycle) {
	switch o.Class {
	case isa.ClassA, isa.ClassS:
		c.scoreb[o.Class][o.Reg] = at
	}
}

func (m *Machine) checkScalar(c *hwContext) (bool, Cycle) {
	d := c.head
	now := m.now
	if ok, r := c.scalarReady(d.Src1, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Src2, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Dst, now); !ok { // WAW on a pending result
		return false, r
	}
	return true, 0
}

func (m *Machine) applyScalar(c *hwContext) {
	d := c.head
	if d.Dst.IsReg() {
		c.setScalarReady(d.Dst, m.now+m.scalarLat[d.Op])
	}
}

func (m *Machine) checkScalarMem(c *hwContext) (bool, Cycle) {
	d := c.head
	now := m.now
	if ok, r := c.scalarReady(d.Src1, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Src2, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Dst, now); !ok {
		return false, r
	}
	if pf := m.mem.PortFreeAt(c.head.Load); pf > now {
		return false, pf
	}
	return true, 0
}

func (m *Machine) applyScalarMem(c *hwContext) {
	d := c.head
	load := c.head.Load
	_, data := m.mem.ScheduleScalar(m.now, load)
	if load && d.Dst.IsReg() {
		c.setScalarReady(d.Dst, data)
	}
}

// chainReady reports whether vector register r can start being read at
// cycle now. A consumer of an in-flight FU result chains once the first
// element has been written (flexible chaining, Section 3); a consumer of
// an in-flight load waits for the last element. The paper's in-order
// decode loses the cycle ("the instruction can not proceed") until then,
// so dispatch blocks rather than reserving resources ahead of time.
func chainReady(v *vregState, now Cycle) (bool, Cycle) {
	if !v.writerActive(now) {
		return true, 0
	}
	if !v.chainable {
		// Memory loads do not chain into consumers; wait for the last
		// element (Section 3).
		return false, v.wLast + 1
	}
	if s := v.wFirst + 1; s > now {
		return false, s
	}
	return true, 0
}

// destFree checks WAW/WAR on a vector destination register.
func destFree(v *vregState, now Cycle) (bool, Cycle) {
	if v.writerActive(now) {
		return false, v.wLast + 1
	}
	if v.readersActive(now) {
		return false, v.lastReadEnd(now)
	}
	return true, 0
}

// checkShape rejects an instruction that does not fit the machine shape:
// a vector register beyond the context's (possibly partitioned) file, or
// a vector length beyond the shape's register length. Programs compiled
// for the default shape never trip it; the check exists so a trace built
// for one register-file organization fails loudly — not silently — on a
// machine with a smaller one.
func (m *Machine) checkShape(d *prog.DecodedInst) error {
	if d.Dst.Class == isa.ClassV && int(d.Dst.Reg) >= m.ctxVRegs {
		return fmt.Errorf("vector register v%d out of range: this context sees %d registers", d.Dst.Reg, m.ctxVRegs)
	}
	for _, r := range d.VSrcs[:d.NVSrc] {
		if int(r) >= m.ctxVRegs {
			return fmt.Errorf("vector register v%d out of range: this context sees %d registers", r, m.ctxVRegs)
		}
	}
	if d.VL > m.vlMax {
		return fmt.Errorf("vector length %d exceeds the machine's %d-element registers (rebuild the workload for this shape)", d.VL, m.vlMax)
	}
	// An instruction whose two vector sources live in one bank needs two
	// simultaneous read ports there; on a shape without them it could
	// never dispatch, so reject it instead of stalling forever. Code
	// compiled for the shape (vcomp spreads operands across banks)
	// avoids this by construction.
	if d.NVSrc == 2 && m.bankRP < 2 && m.bankOf[d.VSrcs[0]] == m.bankOf[d.VSrcs[1]] {
		return fmt.Errorf("both vector sources (v%d, v%d) live in bank %d, which has only %d read port(s); 1-read-port organizations need one register per bank (VRegsPerBank=1)",
			d.VSrcs[0], d.VSrcs[1], m.bankOf[d.VSrcs[0]], m.bankRP)
	}
	return nil
}

// checkBankReads verifies read-port capacity for the given source
// registers over [s, e), counting sources that share a bank together.
// Banks are examined in ascending index order so the failure hint (the
// first failing bank's clear cycle) is stable. An instruction has at
// most two vector sources, so the two unrolled cases below cover every
// dispatch; the general loop is a guard for hypothetical wider forms.
func (m *Machine) checkBankReads(c *hwContext, srcs []uint8, s, e Cycle) (bool, Cycle) {
	switch len(srcs) {
	case 0:
		return true, 0
	case 1:
		return m.checkBankRead(c, int(m.bankOf[srcs[0]]), 1, s, e)
	case 2:
		b0, b1 := int(m.bankOf[srcs[0]]), int(m.bankOf[srcs[1]])
		if b0 == b1 {
			return m.checkBankRead(c, b0, 2, s, e)
		}
		if b0 > b1 {
			b0, b1 = b1, b0
		}
		if ok, retry := m.checkBankRead(c, b0, 1, s, e); !ok {
			return false, retry
		}
		return m.checkBankRead(c, b1, 1, s, e)
	}
	for bank := 0; bank < m.numBanks; bank++ {
		k := 0
		for _, r := range srcs {
			if int(m.bankOf[r]) == bank {
				k++
			}
		}
		if k == 0 {
			continue
		}
		if ok, retry := m.checkBankRead(c, bank, k, s, e); !ok {
			return false, retry
		}
	}
	return true, 0
}

// checkBankRead verifies that bank can serve k more concurrent readers
// over [s, e) within its read-port capacity.
func (m *Machine) checkBankRead(c *hwContext, bank, k int, s, e Cycle) (bool, Cycle) {
	need := m.bankRP - k + 1
	if need < 1 {
		// More simultaneous readers than ports in one bank: the
		// compiler avoids this, but guard anyway.
		return false, s + 1
	}
	return portFree(c.banks[bank].reads, s, e, need)
}

// commitReads records read windows and port usage for sources.
func (m *Machine) commitReads(c *hwContext, srcs []uint8, s, e Cycle, now Cycle) {
	for _, r := range srcs {
		c.vregs[r].addReader(now, e)
		bank := &c.banks[m.bankOf[r]]
		bank.prune(now)
		bank.reads = append(bank.reads, portWindow{s, e})
	}
}

// pickVectorFU selects the functional unit for c's head vector arithmetic
// op: a restricted lane when allowed and free, else a general lane (on
// the paper's machine: FU1 when allowed and free, else FU2). On failure
// it returns the earliest retry cycle. The default 1+1 mix runs on the
// devirtualized fu1/fu2 pair; other mixes scan the lane slice in fixed
// order, restricted lanes first.
func (m *Machine) pickVectorFU(c *hwContext) (fu *fuState, unit int, retry Cycle) {
	now := m.now
	if m.pairFU {
		if !c.head.FU1OK { // mul/div/sqrt run on FU2 only (Section 3)
			if m.fu2.freeAt > now {
				return nil, 0, m.fu2.freeAt
			}
			return &m.fu2, stats.UnitFU2, 0
		}
		switch {
		case m.fu1.freeAt <= now:
			return &m.fu1, stats.UnitFU1, 0
		case m.fu2.freeAt <= now:
			return &m.fu2, stats.UnitFU2, 0
		default:
			retry = m.fu1.freeAt
			if m.fu2.freeAt < retry {
				retry = m.fu2.freeAt
			}
			return nil, 0, retry
		}
	}
	start := 0
	if !c.head.FU1OK {
		start = m.fuRestr // restricted lanes cannot run mul/div/sqrt
	}
	retry = Cycle(1<<62 - 1)
	for i := start; i < len(m.fus); i++ {
		if m.fus[i].freeAt <= now {
			return &m.fus[i], m.fuUnit(i), 0
		}
		if m.fus[i].freeAt < retry {
			retry = m.fus[i].freeAt
		}
	}
	return nil, 0, retry
}

// fuUnit maps a lane index to its timeline unit: restricted lanes share
// the FU1 lane of the paper's ⟨FU2,FU1,LD⟩ state tuple, general lanes
// the FU2 lane, so the Figure 4 breakdown keeps its meaning ("some lane
// of this class is busy") on any mix.
func (m *Machine) fuUnit(i int) int {
	if i < m.fuRestr {
		return stats.UnitFU1
	}
	return stats.UnitFU2
}

func (m *Machine) checkVectorArith(c *hwContext) (bool, Cycle) {
	d := c.head
	now := m.now
	vl := Cycle(d.VL)

	if fu, _, retry := m.pickVectorFU(c); fu == nil {
		return false, retry
	}

	// Scalar operand (vector-scalar forms) must be ready at dispatch.
	if d.Src2.Class == isa.ClassS {
		if ok, r := c.scalarReady(d.Src2, now); !ok {
			return false, r
		}
	}

	// Vector sources: chaining constraints.
	srcs := c.head.VSrcs[:c.head.NVSrc]
	for _, r := range srcs {
		if ok, retry := chainReady(&c.vregs[r], now); !ok {
			return false, retry
		}
	}
	s := now

	// Destination.
	redDest := d.Dst.Class == isa.ClassS // reduction writes an S register
	if redDest {
		if ok, r := c.scalarReady(d.Dst, now); !ok {
			return false, r
		}
	} else {
		if ok, retry := destFree(&c.vregs[d.Dst.Reg], now); !ok {
			return false, retry
		}
	}

	readEnd := s + vl
	fw := s + m.vecDepth[d.Op]
	lw := fw + vl - 1

	// Register-bank ports.
	if ok, retry := m.checkBankReads(c, srcs, s, readEnd); !ok {
		return false, retry
	}
	if !redDest {
		ok, retry := c.banks[m.bankOf[d.Dst.Reg]].writePortFree(fw, lw+1, m.bankWP)
		if !ok {
			return false, retry
		}
	}
	return true, 0
}

// commitVectorArith is the fused form of checkVectorArith followed by
// applyVectorArith: one constraint walk, booking on success with the
// values already in hand.
func (m *Machine) commitVectorArith(c *hwContext) (bool, Cycle) {
	d := c.head
	now := m.now
	vl := Cycle(d.VL)

	fu, unit, retry := m.pickVectorFU(c)
	if fu == nil {
		return false, retry
	}

	if d.Src2.Class == isa.ClassS {
		if ok, r := c.scalarReady(d.Src2, now); !ok {
			return false, r
		}
	}

	srcs := c.head.VSrcs[:c.head.NVSrc]
	for _, r := range srcs {
		if ok, retry := chainReady(&c.vregs[r], now); !ok {
			return false, retry
		}
	}
	s := now

	redDest := d.Dst.Class == isa.ClassS
	var dv *vregState
	if redDest {
		if ok, r := c.scalarReady(d.Dst, now); !ok {
			return false, r
		}
	} else {
		dv = &c.vregs[d.Dst.Reg]
		if ok, retry := destFree(dv, now); !ok {
			return false, retry
		}
	}

	readEnd := s + vl
	fw := s + m.vecDepth[d.Op]
	lw := fw + vl - 1

	if ok, retry := m.checkBankReads(c, srcs, s, readEnd); !ok {
		return false, retry
	}
	if !redDest {
		ok, retry := c.banks[m.bankOf[d.Dst.Reg]].writePortFree(fw, lw+1, m.bankWP)
		if !ok {
			return false, retry
		}
	}

	fu.freeAt = s + vl
	m.tl.AddBusy(unit, s, s+vl)
	m.commitReads(c, srcs, s, readEnd, now)
	if redDest {
		c.setScalarReady(d.Dst, lw+1)
	} else {
		dv.wFirst, dv.wLast, dv.chainable = fw, lw, true
		bank := &c.banks[m.bankOf[d.Dst.Reg]]
		bank.prune(now)
		bank.writes = append(bank.writes, portWindow{fw, lw + 1})
	}
	m.vectorArithOps += int64(vl)
	m.vectorOps += int64(vl)
	return true, 0
}

// commitVectorMem is the fused form of checkVectorMem followed by
// applyVectorMem.
func (m *Machine) commitVectorMem(c *hwContext) (bool, Cycle) {
	d := c.head
	info := c.head
	now := m.now
	vl := int(d.VL)

	if m.ld.freeAt > now {
		return false, m.ld.freeAt
	}
	if pf := m.mem.PortFreeAt(info.Load); pf > now {
		return false, pf
	}

	for _, o := range [...]isa.Operand{d.Src1, d.Src2} {
		if o.Class == isa.ClassA {
			if ok, r := c.scalarReady(o, now); !ok {
				return false, r
			}
		}
	}

	srcs := c.head.VSrcs[:c.head.NVSrc]
	for _, r := range srcs {
		if ok, retry := chainReady(&c.vregs[r], now); !ok {
			return false, retry
		}
	}
	s := now

	var dv *vregState
	if info.Load {
		dv = &c.vregs[d.Dst.Reg]
		if ok, retry := destFree(dv, now); !ok {
			return false, retry
		}
	}

	start, firstData, busyFor := m.mem.ProbeVector(s, vl, d.Stride, info.Load)
	readEnd := start + busyFor
	var fw, lw Cycle
	if info.Load {
		fw = firstData + Cycle(m.lat.VectorStartup+m.lat.WriteXbar)
		lw = fw + busyFor - 1
	}

	if ok, retry := m.checkBankReads(c, srcs, start, readEnd); !ok {
		return false, retry
	}
	if info.Load {
		ok, retry := c.banks[m.bankOf[d.Dst.Reg]].writePortFree(fw, lw+1, m.bankWP)
		if !ok {
			return false, retry
		}
	}

	m.mem.ScheduleVector(s, vl, d.Stride, info.Load)
	m.ld.freeAt = start + busyFor
	m.tl.AddBusy(stats.UnitLD, start, start+busyFor)
	m.commitReads(c, srcs, start, readEnd, now)
	if info.Load {
		dv.wFirst, dv.wLast, dv.chainable = fw, lw, false
		bank := &c.banks[m.bankOf[d.Dst.Reg]]
		bank.prune(now)
		bank.writes = append(bank.writes, portWindow{fw, lw + 1})
	}
	m.vectorOps += int64(vl)
	return true, 0
}

func (m *Machine) applyVectorArith(c *hwContext) {
	d := c.head
	now := m.now
	vl := Cycle(d.VL)
	fu, unit, _ := m.pickVectorFU(c)

	s := now
	readEnd := s + vl
	fw := s + m.vecDepth[d.Op]
	lw := fw + vl - 1
	redDest := d.Dst.Class == isa.ClassS
	srcs := c.head.VSrcs[:c.head.NVSrc]

	fu.freeAt = s + vl
	m.tl.AddBusy(unit, s, s+vl)
	m.commitReads(c, srcs, s, readEnd, now)
	if redDest {
		c.setScalarReady(d.Dst, lw+1)
	} else {
		dv := &c.vregs[d.Dst.Reg]
		dv.wFirst, dv.wLast, dv.chainable = fw, lw, true
		bank := &c.banks[m.bankOf[d.Dst.Reg]]
		bank.prune(now)
		bank.writes = append(bank.writes, portWindow{fw, lw + 1})
	}
	m.vectorArithOps += int64(vl)
	m.vectorOps += int64(vl)
}

func (m *Machine) checkVectorMem(c *hwContext) (bool, Cycle) {
	d := c.head
	info := c.head
	now := m.now
	vl := int(d.VL)

	if m.ld.freeAt > now {
		return false, m.ld.freeAt
	}
	if pf := m.mem.PortFreeAt(info.Load); pf > now {
		return false, pf
	}

	// Base-address register (loads/stores carry it; structural read).
	for _, o := range [...]isa.Operand{d.Src1, d.Src2} {
		if o.Class == isa.ClassA {
			if ok, r := c.scalarReady(o, now); !ok {
				return false, r
			}
		}
	}

	// Vector sources: store data and gather/scatter index registers.
	srcs := c.head.VSrcs[:c.head.NVSrc]
	for _, r := range srcs {
		if ok, retry := chainReady(&c.vregs[r], now); !ok {
			return false, retry
		}
	}
	s := now

	if info.Load {
		if ok, retry := destFree(&c.vregs[d.Dst.Reg], now); !ok {
			return false, retry
		}
	}

	start, firstData, busyFor := m.mem.ProbeVector(s, vl, d.Stride, info.Load)
	readEnd := start + busyFor
	var fw, lw Cycle
	if info.Load {
		fw = firstData + Cycle(m.lat.VectorStartup+m.lat.WriteXbar)
		lw = fw + busyFor - 1
	}

	if ok, retry := m.checkBankReads(c, srcs, start, readEnd); !ok {
		return false, retry
	}
	if info.Load {
		ok, retry := c.banks[m.bankOf[d.Dst.Reg]].writePortFree(fw, lw+1, m.bankWP)
		if !ok {
			return false, retry
		}
	}
	return true, 0
}

func (m *Machine) applyVectorMem(c *hwContext) {
	d := c.head
	info := c.head
	now := m.now
	vl := int(d.VL)
	srcs := c.head.VSrcs[:c.head.NVSrc]

	start, firstData, busyFor := m.mem.ScheduleVector(now, vl, d.Stride, info.Load)
	readEnd := start + busyFor
	m.ld.freeAt = start + busyFor
	m.tl.AddBusy(stats.UnitLD, start, start+busyFor)
	m.commitReads(c, srcs, start, readEnd, now)
	if info.Load {
		fw := firstData + Cycle(m.lat.VectorStartup+m.lat.WriteXbar)
		lw := fw + busyFor - 1
		dv := &c.vregs[d.Dst.Reg]
		dv.wFirst, dv.wLast, dv.chainable = fw, lw, false
		bank := &c.banks[m.bankOf[d.Dst.Reg]]
		bank.prune(now)
		bank.writes = append(bank.writes, portWindow{fw, lw + 1})
	}
	m.vectorOps += int64(vl)
}
