package core

import (
	"mtvec/internal/isa"
	"mtvec/internal/stats"
)

// tryDispatch attempts to dispatch context c's head instruction at m.now.
// With commit=false it only probes (the switch logic's "known not to be
// blocked" test and the skip-ahead estimator use this). On failure it
// returns a sound lower bound on the cycle the dispatch could first
// succeed, used to fast-forward when every thread is blocked.
//
// Results are memoized per context for the current (cycle, bookSeq)
// pair: within one cycle the machine probes the same head several times —
// the policy's switch scan, the committed attempt, the skip-ahead
// estimator — against unchanged state, so the memo answer is exactly what
// recomputation would return. Any booking anywhere bumps bookSeq and
// invalidates every memo, so a stale answer is never reused.
//
// The three execution paths cover the three dispatch situations:
//   - probe (commit=false): run the checks once, memoize the outcome;
//   - commit after a successful same-cycle probe (memo hit): book via
//     apply without re-running the checks;
//   - commit with no prior probe (the steady run-until-block state):
//     fused single-pass check+book, walking the constraints once.
func (m *Machine) tryDispatch(c *hwContext, commit bool) (bool, Cycle) {
	if c.probeCyc == m.now && c.probeSeq == m.bookSeq {
		if !c.probeOK {
			return false, c.probeHint
		}
		if commit {
			m.applyDispatch(c)
		}
		return true, 0
	}
	if commit {
		ok, hint := m.commitDispatch(c)
		if !ok {
			// A failed commit attempt books nothing, so the outcome is
			// memoizable exactly like a probe.
			c.probeCyc, c.probeSeq = m.now, m.bookSeq
			c.probeOK, c.probeHint = false, hint
		}
		return ok, hint
	}
	ok, hint := m.checkDispatch(c)
	c.probeCyc, c.probeSeq = m.now, m.bookSeq
	c.probeOK, c.probeHint = ok, hint
	return ok, hint
}

// commitDispatch is the fused single-pass dispatch: identical checks in
// identical order to checkDispatch, booking resources on success.
func (m *Machine) commitDispatch(c *hwContext) (bool, Cycle) {
	switch c.head.Kind {
	case isa.KindScalar, isa.KindBranch, isa.KindVLVS:
		if ok, hint := m.checkScalar(c); !ok {
			return false, hint
		}
		m.applyScalar(c)
	case isa.KindScalarMem:
		if ok, hint := m.checkScalarMem(c); !ok {
			return false, hint
		}
		m.applyScalarMem(c)
	case isa.KindVector:
		return m.commitVectorArith(c)
	case isa.KindVectorMem:
		return m.commitVectorMem(c)
	default:
		return false, m.now + 1
	}
	return true, 0
}

// checkDispatch verifies every dispatch constraint of c's head without
// booking anything. Constraints are evaluated in the same order the
// original single-pass dispatcher used, so the failure hint (first
// failing constraint's clear cycle) is bit-identical.
func (m *Machine) checkDispatch(c *hwContext) (bool, Cycle) {
	switch c.head.Kind {
	case isa.KindScalar, isa.KindBranch, isa.KindVLVS:
		return m.checkScalar(c)
	case isa.KindScalarMem:
		return m.checkScalarMem(c)
	case isa.KindVector:
		return m.checkVectorArith(c)
	case isa.KindVectorMem:
		return m.checkVectorMem(c)
	}
	return false, m.now + 1
}

// applyDispatch books the resources of a dispatch whose checks passed
// this cycle. State is unchanged since the check (guarded by bookSeq), so
// the cheap schedule arithmetic recomputed here reproduces the check's
// values exactly; only the expensive constraint scans are skipped.
func (m *Machine) applyDispatch(c *hwContext) {
	switch c.head.Kind {
	case isa.KindScalar, isa.KindBranch, isa.KindVLVS:
		m.applyScalar(c)
	case isa.KindScalarMem:
		m.applyScalarMem(c)
	case isa.KindVector:
		m.applyVectorArith(c)
	case isa.KindVectorMem:
		m.applyVectorMem(c)
	}
}

// scalarReady checks an A/S operand's scoreboard entry. The flat
// class-indexed scoreboard makes this branch-free for the other operand
// classes: their rows are never written, so they always read as ready.
func (c *hwContext) scalarReady(o isa.Operand, now Cycle) (bool, Cycle) {
	if r := c.scoreb[o.Class][o.Reg]; r > now {
		return false, r
	}
	return true, 0
}

// setScalarReady books a result into the scalar scoreboard. The class
// switch is kept on the write side so only the A and S rows are ever
// dirtied (a vector or immediate destination must not poison its row).
func (c *hwContext) setScalarReady(o isa.Operand, at Cycle) {
	switch o.Class {
	case isa.ClassA, isa.ClassS:
		c.scoreb[o.Class][o.Reg] = at
	}
}

func (m *Machine) checkScalar(c *hwContext) (bool, Cycle) {
	d := c.head
	now := m.now
	if ok, r := c.scalarReady(d.Src1, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Src2, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Dst, now); !ok { // WAW on a pending result
		return false, r
	}
	return true, 0
}

func (m *Machine) applyScalar(c *hwContext) {
	d := c.head
	if d.Dst.IsReg() {
		c.setScalarReady(d.Dst, m.now+m.scalarLat[d.Op])
	}
}

func (m *Machine) checkScalarMem(c *hwContext) (bool, Cycle) {
	d := c.head
	now := m.now
	if ok, r := c.scalarReady(d.Src1, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Src2, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Dst, now); !ok {
		return false, r
	}
	if pf := m.mem.PortFreeAt(c.head.Load); pf > now {
		return false, pf
	}
	return true, 0
}

func (m *Machine) applyScalarMem(c *hwContext) {
	d := c.head
	load := c.head.Load
	_, data := m.mem.ScheduleScalar(m.now, load)
	if load && d.Dst.IsReg() {
		c.setScalarReady(d.Dst, data)
	}
}

// chainReady reports whether vector register r can start being read at
// cycle now. A consumer of an in-flight FU result chains once the first
// element has been written (flexible chaining, Section 3); a consumer of
// an in-flight load waits for the last element. The paper's in-order
// decode loses the cycle ("the instruction can not proceed") until then,
// so dispatch blocks rather than reserving resources ahead of time.
func chainReady(v *vregState, now Cycle) (bool, Cycle) {
	if !v.writerActive(now) {
		return true, 0
	}
	if !v.chainable {
		// Memory loads do not chain into consumers; wait for the last
		// element (Section 3).
		return false, v.wLast + 1
	}
	if s := v.wFirst + 1; s > now {
		return false, s
	}
	return true, 0
}

// destFree checks WAW/WAR on a vector destination register.
func destFree(v *vregState, now Cycle) (bool, Cycle) {
	if v.writerActive(now) {
		return false, v.wLast + 1
	}
	if v.readersActive(now) {
		return false, v.lastReadEnd(now)
	}
	return true, 0
}

// checkBankReads verifies read-port capacity for the given source
// registers over [s, e), counting sources that share a bank together.
func (c *hwContext) checkBankReads(srcs []uint8, s, e Cycle) (bool, Cycle) {
	if len(srcs) == 0 {
		return true, 0
	}
	var perBank [isa.NumVBanks]int
	for _, r := range srcs {
		perBank[isa.VBank(r)]++
	}
	for bank, k := range perBank {
		if k == 0 {
			continue
		}
		need := isa.BankReadPorts - k + 1
		if need < 1 {
			// More simultaneous readers than ports in one bank: the
			// compiler avoids this, but guard anyway.
			return false, s + 1
		}
		ok, retry := portFree(c.banks[bank].reads, s, e, need)
		if !ok {
			return false, retry
		}
	}
	return true, 0
}

// commitReads records read windows and port usage for sources.
func (c *hwContext) commitReads(srcs []uint8, s, e Cycle, now Cycle) {
	for _, r := range srcs {
		c.vregs[r].addReader(now, e)
		bank := &c.banks[isa.VBank(r)]
		bank.prune(now)
		bank.reads = append(bank.reads, portWindow{s, e})
	}
}

// pickVectorFU selects the functional unit for c's head vector arithmetic
// op: FU1 when allowed and free, else FU2. On failure it returns the
// earliest retry cycle.
func (m *Machine) pickVectorFU(c *hwContext) (fu *fuState, unit int, retry Cycle) {
	now := m.now
	if !c.head.FU1OK { // mul/div/sqrt run on FU2 only (Section 3)
		if m.fu2.freeAt > now {
			return nil, 0, m.fu2.freeAt
		}
		return &m.fu2, stats.UnitFU2, 0
	}
	switch {
	case m.fu1.freeAt <= now:
		return &m.fu1, stats.UnitFU1, 0
	case m.fu2.freeAt <= now:
		return &m.fu2, stats.UnitFU2, 0
	default:
		retry = m.fu1.freeAt
		if m.fu2.freeAt < retry {
			retry = m.fu2.freeAt
		}
		return nil, 0, retry
	}
}

func (m *Machine) checkVectorArith(c *hwContext) (bool, Cycle) {
	d := c.head
	now := m.now
	vl := Cycle(d.VL)

	if fu, _, retry := m.pickVectorFU(c); fu == nil {
		return false, retry
	}

	// Scalar operand (vector-scalar forms) must be ready at dispatch.
	if d.Src2.Class == isa.ClassS {
		if ok, r := c.scalarReady(d.Src2, now); !ok {
			return false, r
		}
	}

	// Vector sources: chaining constraints.
	srcs := c.head.VSrcs[:c.head.NVSrc]
	for _, r := range srcs {
		if ok, retry := chainReady(&c.vregs[r], now); !ok {
			return false, retry
		}
	}
	s := now

	// Destination.
	redDest := d.Dst.Class == isa.ClassS // reduction writes an S register
	if redDest {
		if ok, r := c.scalarReady(d.Dst, now); !ok {
			return false, r
		}
	} else {
		if ok, retry := destFree(&c.vregs[d.Dst.Reg], now); !ok {
			return false, retry
		}
	}

	readEnd := s + vl
	fw := s + m.vecDepth[d.Op]
	lw := fw + vl - 1

	// Register-bank ports.
	if ok, retry := c.checkBankReads(srcs, s, readEnd); !ok {
		return false, retry
	}
	if !redDest {
		ok, retry := c.banks[isa.VBank(d.Dst.Reg)].writePortFree(fw, lw+1)
		if !ok {
			return false, retry
		}
	}
	return true, 0
}

// commitVectorArith is the fused form of checkVectorArith followed by
// applyVectorArith: one constraint walk, booking on success with the
// values already in hand.
func (m *Machine) commitVectorArith(c *hwContext) (bool, Cycle) {
	d := c.head
	now := m.now
	vl := Cycle(d.VL)

	fu, unit, retry := m.pickVectorFU(c)
	if fu == nil {
		return false, retry
	}

	if d.Src2.Class == isa.ClassS {
		if ok, r := c.scalarReady(d.Src2, now); !ok {
			return false, r
		}
	}

	srcs := c.head.VSrcs[:c.head.NVSrc]
	for _, r := range srcs {
		if ok, retry := chainReady(&c.vregs[r], now); !ok {
			return false, retry
		}
	}
	s := now

	redDest := d.Dst.Class == isa.ClassS
	var dv *vregState
	if redDest {
		if ok, r := c.scalarReady(d.Dst, now); !ok {
			return false, r
		}
	} else {
		dv = &c.vregs[d.Dst.Reg]
		if ok, retry := destFree(dv, now); !ok {
			return false, retry
		}
	}

	readEnd := s + vl
	fw := s + m.vecDepth[d.Op]
	lw := fw + vl - 1

	if ok, retry := c.checkBankReads(srcs, s, readEnd); !ok {
		return false, retry
	}
	if !redDest {
		ok, retry := c.banks[isa.VBank(d.Dst.Reg)].writePortFree(fw, lw+1)
		if !ok {
			return false, retry
		}
	}

	fu.freeAt = s + vl
	m.tl.AddBusy(unit, s, s+vl)
	c.commitReads(srcs, s, readEnd, now)
	if redDest {
		c.setScalarReady(d.Dst, lw+1)
	} else {
		dv.wFirst, dv.wLast, dv.chainable = fw, lw, true
		bank := &c.banks[isa.VBank(d.Dst.Reg)]
		bank.prune(now)
		bank.writes = append(bank.writes, portWindow{fw, lw + 1})
	}
	m.vectorArithOps += int64(vl)
	m.vectorOps += int64(vl)
	return true, 0
}

// commitVectorMem is the fused form of checkVectorMem followed by
// applyVectorMem.
func (m *Machine) commitVectorMem(c *hwContext) (bool, Cycle) {
	d := c.head
	info := c.head
	now := m.now
	vl := int(d.VL)

	if m.ld.freeAt > now {
		return false, m.ld.freeAt
	}
	if pf := m.mem.PortFreeAt(info.Load); pf > now {
		return false, pf
	}

	for _, o := range [...]isa.Operand{d.Src1, d.Src2} {
		if o.Class == isa.ClassA {
			if ok, r := c.scalarReady(o, now); !ok {
				return false, r
			}
		}
	}

	srcs := c.head.VSrcs[:c.head.NVSrc]
	for _, r := range srcs {
		if ok, retry := chainReady(&c.vregs[r], now); !ok {
			return false, retry
		}
	}
	s := now

	var dv *vregState
	if info.Load {
		dv = &c.vregs[d.Dst.Reg]
		if ok, retry := destFree(dv, now); !ok {
			return false, retry
		}
	}

	start, firstData, busyFor := m.mem.ProbeVector(s, vl, d.Stride, info.Load)
	readEnd := start + busyFor
	var fw, lw Cycle
	if info.Load {
		fw = firstData + Cycle(m.lat.VectorStartup+m.lat.WriteXbar)
		lw = fw + busyFor - 1
	}

	if ok, retry := c.checkBankReads(srcs, start, readEnd); !ok {
		return false, retry
	}
	if info.Load {
		ok, retry := c.banks[isa.VBank(d.Dst.Reg)].writePortFree(fw, lw+1)
		if !ok {
			return false, retry
		}
	}

	m.mem.ScheduleVector(s, vl, d.Stride, info.Load)
	m.ld.freeAt = start + busyFor
	m.tl.AddBusy(stats.UnitLD, start, start+busyFor)
	c.commitReads(srcs, start, readEnd, now)
	if info.Load {
		dv.wFirst, dv.wLast, dv.chainable = fw, lw, false
		bank := &c.banks[isa.VBank(d.Dst.Reg)]
		bank.prune(now)
		bank.writes = append(bank.writes, portWindow{fw, lw + 1})
	}
	m.vectorOps += int64(vl)
	return true, 0
}

func (m *Machine) applyVectorArith(c *hwContext) {
	d := c.head
	now := m.now
	vl := Cycle(d.VL)
	fu, unit, _ := m.pickVectorFU(c)

	s := now
	readEnd := s + vl
	fw := s + m.vecDepth[d.Op]
	lw := fw + vl - 1
	redDest := d.Dst.Class == isa.ClassS
	srcs := c.head.VSrcs[:c.head.NVSrc]

	fu.freeAt = s + vl
	m.tl.AddBusy(unit, s, s+vl)
	c.commitReads(srcs, s, readEnd, now)
	if redDest {
		c.setScalarReady(d.Dst, lw+1)
	} else {
		dv := &c.vregs[d.Dst.Reg]
		dv.wFirst, dv.wLast, dv.chainable = fw, lw, true
		bank := &c.banks[isa.VBank(d.Dst.Reg)]
		bank.prune(now)
		bank.writes = append(bank.writes, portWindow{fw, lw + 1})
	}
	m.vectorArithOps += int64(vl)
	m.vectorOps += int64(vl)
}

func (m *Machine) checkVectorMem(c *hwContext) (bool, Cycle) {
	d := c.head
	info := c.head
	now := m.now
	vl := int(d.VL)

	if m.ld.freeAt > now {
		return false, m.ld.freeAt
	}
	if pf := m.mem.PortFreeAt(info.Load); pf > now {
		return false, pf
	}

	// Base-address register (loads/stores carry it; structural read).
	for _, o := range [...]isa.Operand{d.Src1, d.Src2} {
		if o.Class == isa.ClassA {
			if ok, r := c.scalarReady(o, now); !ok {
				return false, r
			}
		}
	}

	// Vector sources: store data and gather/scatter index registers.
	srcs := c.head.VSrcs[:c.head.NVSrc]
	for _, r := range srcs {
		if ok, retry := chainReady(&c.vregs[r], now); !ok {
			return false, retry
		}
	}
	s := now

	if info.Load {
		if ok, retry := destFree(&c.vregs[d.Dst.Reg], now); !ok {
			return false, retry
		}
	}

	start, firstData, busyFor := m.mem.ProbeVector(s, vl, d.Stride, info.Load)
	readEnd := start + busyFor
	var fw, lw Cycle
	if info.Load {
		fw = firstData + Cycle(m.lat.VectorStartup+m.lat.WriteXbar)
		lw = fw + busyFor - 1
	}

	if ok, retry := c.checkBankReads(srcs, start, readEnd); !ok {
		return false, retry
	}
	if info.Load {
		ok, retry := c.banks[isa.VBank(d.Dst.Reg)].writePortFree(fw, lw+1)
		if !ok {
			return false, retry
		}
	}
	return true, 0
}

func (m *Machine) applyVectorMem(c *hwContext) {
	d := c.head
	info := c.head
	now := m.now
	vl := int(d.VL)
	srcs := c.head.VSrcs[:c.head.NVSrc]

	start, firstData, busyFor := m.mem.ScheduleVector(now, vl, d.Stride, info.Load)
	readEnd := start + busyFor
	m.ld.freeAt = start + busyFor
	m.tl.AddBusy(stats.UnitLD, start, start+busyFor)
	c.commitReads(srcs, start, readEnd, now)
	if info.Load {
		fw := firstData + Cycle(m.lat.VectorStartup+m.lat.WriteXbar)
		lw := fw + busyFor - 1
		dv := &c.vregs[d.Dst.Reg]
		dv.wFirst, dv.wLast, dv.chainable = fw, lw, false
		bank := &c.banks[isa.VBank(d.Dst.Reg)]
		bank.prune(now)
		bank.writes = append(bank.writes, portWindow{fw, lw + 1})
	}
	m.vectorOps += int64(vl)
}
