package core

import (
	"mtvec/internal/isa"
	"mtvec/internal/stats"
)

// tryDispatch attempts to dispatch context c's head instruction at m.now.
// With commit=false it only probes (the switch logic's "known not to be
// blocked" test and the skip-ahead estimator use this). On failure it
// returns a sound lower bound on the cycle the dispatch could first
// succeed, used to fast-forward when every thread is blocked.
func (m *Machine) tryDispatch(c *hwContext, commit bool) (bool, Cycle) {
	d := &c.head
	info := isa.InfoOf(d.Op)
	switch info.Kind {
	case isa.KindScalar, isa.KindBranch, isa.KindVLVS:
		return m.dispatchScalar(c, d, commit)
	case isa.KindScalarMem:
		return m.dispatchScalarMem(c, d, info, commit)
	case isa.KindVector:
		return m.dispatchVectorArith(c, d, commit)
	case isa.KindVectorMem:
		return m.dispatchVectorMem(c, d, info, commit)
	}
	return false, m.now + 1
}

// scalarReady checks an A/S operand's scoreboard entry.
func (c *hwContext) scalarReady(o isa.Operand, now Cycle) (bool, Cycle) {
	switch o.Class {
	case isa.ClassA:
		if r := c.aReady[o.Reg]; r > now {
			return false, r
		}
	case isa.ClassS:
		if r := c.sReady[o.Reg]; r > now {
			return false, r
		}
	}
	return true, 0
}

// setScalarReady books a result into the scalar scoreboard.
func (c *hwContext) setScalarReady(o isa.Operand, at Cycle) {
	switch o.Class {
	case isa.ClassA:
		c.aReady[o.Reg] = at
	case isa.ClassS:
		c.sReady[o.Reg] = at
	}
}

func (m *Machine) dispatchScalar(c *hwContext, d *isa.DynInst, commit bool) (bool, Cycle) {
	now := m.now
	if ok, r := c.scalarReady(d.Src1, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Src2, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Dst, now); !ok { // WAW on a pending result
		return false, r
	}
	if !commit {
		return true, 0
	}
	if d.Dst.IsReg() {
		c.setScalarReady(d.Dst, now+Cycle(m.lat.Scalar(d.Op)))
	}
	return true, 0
}

func (m *Machine) dispatchScalarMem(c *hwContext, d *isa.DynInst, info isa.Info, commit bool) (bool, Cycle) {
	now := m.now
	if ok, r := c.scalarReady(d.Src1, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Src2, now); !ok {
		return false, r
	}
	if ok, r := c.scalarReady(d.Dst, now); !ok {
		return false, r
	}
	if pf := m.mem.PortFreeAt(info.Load); pf > now {
		return false, pf
	}
	if !commit {
		return true, 0
	}
	_, data := m.mem.ScheduleScalar(now, info.Load)
	if info.Load && d.Dst.IsReg() {
		c.setScalarReady(d.Dst, data)
	}
	return true, 0
}

// chainReady reports whether vector register r can start being read at
// cycle now. A consumer of an in-flight FU result chains once the first
// element has been written (flexible chaining, Section 3); a consumer of
// an in-flight load waits for the last element. The paper's in-order
// decode loses the cycle ("the instruction can not proceed") until then,
// so dispatch blocks rather than reserving resources ahead of time.
func chainReady(v *vregState, now Cycle) (bool, Cycle) {
	if !v.writerActive(now) {
		return true, 0
	}
	if !v.chainable {
		// Memory loads do not chain into consumers; wait for the last
		// element (Section 3).
		return false, v.wLast + 1
	}
	if s := v.wFirst + 1; s > now {
		return false, s
	}
	return true, 0
}

// destFree checks WAW/WAR on a vector destination register.
func destFree(v *vregState, now Cycle) (bool, Cycle) {
	if v.writerActive(now) {
		return false, v.wLast + 1
	}
	if v.readersActive(now) {
		return false, v.lastReadEnd(now)
	}
	return true, 0
}

// checkBankReads verifies read-port capacity for the given source
// registers over [s, e), counting sources that share a bank together.
func (c *hwContext) checkBankReads(srcs []uint8, s, e Cycle) (bool, Cycle) {
	var perBank [isa.NumVBanks]int
	for _, r := range srcs {
		perBank[isa.VBank(r)]++
	}
	for bank, k := range perBank {
		if k == 0 {
			continue
		}
		need := isa.BankReadPorts - k + 1
		if need < 1 {
			// More simultaneous readers than ports in one bank: the
			// compiler avoids this, but guard anyway.
			return false, s + 1
		}
		ok, retry := portFree(c.banks[bank].reads, s, e, need)
		if !ok {
			return false, retry
		}
	}
	return true, 0
}

// commitReads records read windows and port usage for sources.
func (c *hwContext) commitReads(srcs []uint8, s, e Cycle, now Cycle) {
	for _, r := range srcs {
		c.vregs[r].addReader(now, e)
		bank := &c.banks[isa.VBank(r)]
		bank.prune(now)
		bank.reads = append(bank.reads, portWindow{s, e})
	}
}

func (m *Machine) dispatchVectorArith(c *hwContext, d *isa.DynInst, commit bool) (bool, Cycle) {
	now := m.now
	vl := Cycle(d.VL)

	// Functional unit selection: FU1 when allowed and free, else FU2.
	var fu *fuState
	var unit int
	if d.Op.FU2Only() {
		if m.fu2.freeAt > now {
			return false, m.fu2.freeAt
		}
		fu, unit = &m.fu2, stats.UnitFU2
	} else {
		switch {
		case m.fu1.freeAt <= now:
			fu, unit = &m.fu1, stats.UnitFU1
		case m.fu2.freeAt <= now:
			fu, unit = &m.fu2, stats.UnitFU2
		default:
			retry := m.fu1.freeAt
			if m.fu2.freeAt < retry {
				retry = m.fu2.freeAt
			}
			return false, retry
		}
	}

	// Scalar operand (vector-scalar forms) must be ready at dispatch.
	if d.Src2.Class == isa.ClassS {
		if ok, r := c.scalarReady(d.Src2, now); !ok {
			return false, r
		}
	}

	// Vector sources: chaining constraints.
	var srcBuf [2]uint8
	n := d.Inst.VSources(&srcBuf)
	srcs := srcBuf[:n]
	for _, r := range srcs {
		if ok, retry := chainReady(&c.vregs[r], now); !ok {
			return false, retry
		}
	}
	s := now

	// Destination.
	redDest := d.Dst.Class == isa.ClassS // reduction writes an S register
	var dv *vregState
	if redDest {
		if ok, r := c.scalarReady(d.Dst, now); !ok {
			return false, r
		}
	} else {
		dv = &c.vregs[d.Dst.Reg]
		if ok, retry := destFree(dv, now); !ok {
			return false, retry
		}
	}

	depth := Cycle(m.lat.VectorStartup + m.lat.ReadXbar + m.lat.VectorFU(d.Op) + m.lat.WriteXbar)
	readEnd := s + vl
	fw := s + depth
	lw := fw + vl - 1

	// Register-bank ports.
	if ok, retry := c.checkBankReads(srcs, s, readEnd); !ok {
		return false, retry
	}
	if !redDest {
		ok, retry := c.banks[isa.VBank(d.Dst.Reg)].writePortFree(fw, lw+1)
		if !ok {
			return false, retry
		}
	}

	if !commit {
		return true, 0
	}

	fu.freeAt = s + vl
	m.tl.AddBusy(unit, s, s+vl)
	c.commitReads(srcs, s, readEnd, now)
	if redDest {
		c.setScalarReady(d.Dst, lw+1)
	} else {
		dv.wFirst, dv.wLast, dv.chainable = fw, lw, true
		bank := &c.banks[isa.VBank(d.Dst.Reg)]
		bank.prune(now)
		bank.writes = append(bank.writes, portWindow{fw, lw + 1})
	}
	m.vectorArithOps += int64(vl)
	m.vectorOps += int64(vl)
	return true, 0
}

func (m *Machine) dispatchVectorMem(c *hwContext, d *isa.DynInst, info isa.Info, commit bool) (bool, Cycle) {
	now := m.now
	vl := int(d.VL)

	if m.ld.freeAt > now {
		return false, m.ld.freeAt
	}
	if pf := m.mem.PortFreeAt(info.Load); pf > now {
		return false, pf
	}

	// Base-address register (loads/stores carry it; structural read).
	for _, o := range [...]isa.Operand{d.Src1, d.Src2} {
		if o.Class == isa.ClassA {
			if ok, r := c.scalarReady(o, now); !ok {
				return false, r
			}
		}
	}

	// Vector sources: store data and gather/scatter index registers.
	var srcBuf [2]uint8
	n := d.Inst.VSources(&srcBuf)
	srcs := srcBuf[:n]
	for _, r := range srcs {
		if ok, retry := chainReady(&c.vregs[r], now); !ok {
			return false, retry
		}
	}
	s := now

	var dv *vregState
	if info.Load {
		dv = &c.vregs[d.Dst.Reg]
		if ok, retry := destFree(dv, now); !ok {
			return false, retry
		}
	}

	start, firstData, busyFor := m.mem.ProbeVector(s, vl, d.Stride, info.Load)
	readEnd := start + busyFor
	var fw, lw Cycle
	if info.Load {
		fw = firstData + Cycle(m.lat.VectorStartup+m.lat.WriteXbar)
		lw = fw + busyFor - 1
	}

	if ok, retry := c.checkBankReads(srcs, start, readEnd); !ok {
		return false, retry
	}
	if info.Load {
		ok, retry := c.banks[isa.VBank(d.Dst.Reg)].writePortFree(fw, lw+1)
		if !ok {
			return false, retry
		}
	}

	if !commit {
		return true, 0
	}

	m.mem.ScheduleVector(s, vl, d.Stride, info.Load)
	m.ld.freeAt = start + busyFor
	m.tl.AddBusy(stats.UnitLD, start, start+busyFor)
	c.commitReads(srcs, start, readEnd, now)
	if info.Load {
		dv.wFirst, dv.wLast, dv.chainable = fw, lw, false
		bank := &c.banks[isa.VBank(d.Dst.Reg)]
		bank.prune(now)
		bank.writes = append(bank.writes, portWindow{fw, lw + 1})
	}
	m.vectorOps += int64(vl)
	return true, 0
}
