package core

import (
	"testing"

	"mtvec/internal/isa"
	"mtvec/internal/prog"
	"mtvec/internal/stats"
)

// testConfig returns a reference machine with memory latency 50 and the
// default Table 1 latencies (vector add depth = 1+2+4+2 = 9, mul = 12).
func testConfig(contexts int) Config {
	cfg := DefaultConfig()
	cfg.Contexts = contexts
	return cfg
}

// mkProgram wraps instructions into a one-block program.
func mkProgram(name string, insts ...isa.Inst) *prog.Program {
	return &prog.Program{Name: name, Blocks: []prog.BasicBlock{{Label: "b", Insts: insts}}}
}

// streamOf builds a fresh stream executing the single block `reps` times.
func streamOf(p *prog.Program, reps int, vls []int64, strides []int64, addrs []uint64) *prog.Stream {
	bbs := make([]int, reps)
	return prog.NewStream(p, &prog.SliceSource{BBs: bbs, VLs: vls, Strides: strides, Addrs: addrs})
}

// runSingle runs one single-shot program on a machine with config cfg.
func runSingle(t *testing.T, cfg Config, p *prog.Program, reps int, addrs []uint64) *stats.Report {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetThreadStream(0, p.Name, streamOf(p, reps, nil, nil, addrs)); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(Stop{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func manyAddrs(n int) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = uint64(0x1000 + i*1024)
	}
	return a
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Contexts = 0
	if bad.Validate() == nil {
		t.Error("0 contexts accepted")
	}
	bad = DefaultConfig()
	bad.Contexts = 3
	bad.DualScalar = true
	if bad.Validate() == nil {
		t.Error("dual scalar with 3 contexts accepted")
	}
	bad = testConfig(2)
	bad.IssueWidth = 3
	if bad.Validate() == nil {
		t.Error("issue width beyond contexts accepted")
	}
}

func TestScalarChainTiming(t *testing.T) {
	// movi a0 (ready t=1); aadd a0,a0,#1 waits for it; br a0 waits again.
	p := mkProgram("sc",
		isa.Inst{Op: isa.OpMovI, Dst: isa.A(0), Src2: isa.Imm()},
		isa.Inst{Op: isa.OpAAdd, Dst: isa.A(0), Src1: isa.A(0), Src2: isa.Imm(), Imm: 1},
		isa.Inst{Op: isa.OpBr, Src1: isa.A(0)},
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// t0 movi, t1 aadd (a0 ready), t2 br, result of aadd ready t2 -> 3.
	if rep.Cycles != 3 {
		t.Fatalf("cycles = %d, want 3", rep.Cycles)
	}
	if rep.Insts != 3 {
		t.Fatalf("insts = %d", rep.Insts)
	}
}

func TestScalarLoadLatency(t *testing.T) {
	// sload s1 <- [a0]; sadd s2, s1, s1 waits for the load.
	p := mkProgram("sl",
		isa.Inst{Op: isa.OpSLoad, Dst: isa.S(1), Src1: isa.A(0)},
		isa.Inst{Op: isa.OpSAdd, Dst: isa.S(2), Src1: isa.S(1), Src2: isa.S(1)},
	)
	// Default machine: scalar accesses hit the 4-cycle scalar cache.
	rep := runSingle(t, testConfig(1), p, 1, manyAddrs(1))
	// Load at t=0 -> data at 4; add dispatches at 4, ready 6.
	if rep.Cycles != 6 {
		t.Fatalf("cycles = %d, want 6 (scalar cache)", rep.Cycles)
	}
	// Without a scalar cache the use stalls the full memory latency.
	cfg := testConfig(1)
	cfg.Mem.ScalarLatency = 0
	rep = runSingle(t, cfg, p, 1, manyAddrs(1))
	if rep.Cycles != 52 {
		t.Fatalf("cycles = %d, want 52 (no scalar cache)", rep.Cycles)
	}
}

func TestVectorLoadTiming(t *testing.T) {
	p := mkProgram("vl", isa.Inst{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)})
	rep := runSingle(t, testConfig(1), p, 1, manyAddrs(1))
	// s=0, busy 128 on LD; first element lands 0+50+1+2=53; last 53+127=180.
	if rep.Cycles != 181 {
		t.Fatalf("cycles = %d, want 181", rep.Cycles)
	}
	if got := rep.Breakdown[1<<stats.UnitLD]; got != 128 {
		t.Fatalf("LD-only cycles = %d, want 128", got)
	}
	if rep.MemBusyCycles != 128 {
		t.Fatalf("mem busy = %d, want 128", rep.MemBusyCycles)
	}
}

func TestVectorAddTiming(t *testing.T) {
	p := mkProgram("va", isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)})
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// depth 9; VL=128 default: last write at 9+127=136 -> 137 cycles.
	if rep.Cycles != 137 {
		t.Fatalf("cycles = %d, want 137", rep.Cycles)
	}
	if got := rep.Breakdown[1<<stats.UnitFU1]; got != 128 {
		t.Fatalf("FU1-only = %d, want 128", got)
	}
	if rep.VectorArithOps != 128 {
		t.Fatalf("arith ops = %d", rep.VectorArithOps)
	}
}

func TestFUChainingStartsAtFirstElement(t *testing.T) {
	// vadd writes v1 starting cycle 9; the dependent vmul chains from
	// cycle 10 instead of waiting for completion.
	p := mkProgram("chain",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(1), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVMul, Dst: isa.V(6), Src1: isa.V(1), Src2: isa.V(4)},
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// vmul: s=10, depth 12, last write 10+12+127=149 -> 150.
	if rep.Cycles != 150 {
		t.Fatalf("cycles = %d, want 150 (flexible chaining)", rep.Cycles)
	}
}

func TestLoadsDoNotChain(t *testing.T) {
	// The C3400 does not chain memory loads into functional units: the
	// dependent vadd waits for the load's last element write (cycle 180).
	p := mkProgram("nochain",
		isa.Inst{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(4)},
	)
	rep := runSingle(t, testConfig(1), p, 1, manyAddrs(1))
	// vadd at t=181, depth 9: 181+9+127 = 317 -> 318.
	if rep.Cycles != 318 {
		t.Fatalf("cycles = %d, want 318 (no load chaining)", rep.Cycles)
	}
}

func TestStoreChainsFromFU(t *testing.T) {
	p := mkProgram("stchain",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(1), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVStore, Src1: isa.V(1), Src2: isa.A(0)},
	)
	rep := runSingle(t, testConfig(1), p, 1, manyAddrs(1))
	// Store chains at s=10, holds LD+port through 138.
	if rep.Cycles != 138 {
		t.Fatalf("cycles = %d, want 138 (store chaining)", rep.Cycles)
	}
	if rep.MemBusyCycles != 128 {
		t.Fatalf("mem busy = %d", rep.MemBusyCycles)
	}
}

func TestTwoFUsRunInParallel(t *testing.T) {
	// Second independent vadd takes FU2 one cycle later.
	p := mkProgram("2fu",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(6), Src1: isa.V(3), Src2: isa.V(5)},
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	if rep.Cycles != 138 {
		t.Fatalf("cycles = %d, want 138", rep.Cycles)
	}
	both := rep.Breakdown[1<<stats.UnitFU1|1<<stats.UnitFU2]
	if both != 127 {
		t.Fatalf("dual-FU cycles = %d, want 127", both)
	}
}

func TestThirdVectorOpBlocksOnFUs(t *testing.T) {
	p := mkProgram("3fu",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(6), Src1: isa.V(3), Src2: isa.V(5)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(7), Src1: isa.V(2), Src2: isa.V(5)},
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// Third waits for FU1 (free at 128), then for bank 3's write port
	// (v6's write window [10,138) blocks v7 until 138):
	// 138+9+127 = 274 -> 275.
	if rep.Cycles != 275 {
		t.Fatalf("cycles = %d, want 275 (FU then write-port hazard)", rep.Cycles)
	}
	if rep.LostDecode == 0 {
		t.Error("expected lost decode cycles while blocked")
	}
}

func TestFU2OnlyBlocksEvenIfFU1Free(t *testing.T) {
	p := mkProgram("fu2only",
		isa.Inst{Op: isa.OpVMul, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVMul, Dst: isa.V(6), Src1: isa.V(3), Src2: isa.V(5)},
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// Second mul waits until FU2 frees at 128: 128+12+127 = 267 -> 268.
	if rep.Cycles != 268 {
		t.Fatalf("cycles = %d, want 268 (FU2-only hazard)", rep.Cycles)
	}
	if got := rep.Breakdown[1<<stats.UnitFU1]; got != 0 {
		t.Fatalf("FU1 used %d cycles by mul-only program", got)
	}
}

func TestWAWBlocksOnDestination(t *testing.T) {
	p := mkProgram("waw",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(3), Src2: isa.V(5)},
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// Writer active through 136; retry at 137: 137+9+127 = 273 -> 274.
	if rep.Cycles != 274 {
		t.Fatalf("cycles = %d, want 274 (WAW)", rep.Cycles)
	}
}

func TestWARBlocksOnActiveReader(t *testing.T) {
	p := mkProgram("war",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(2), Src1: isa.V(3), Src2: isa.V(5)},
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// v2 is read [0,128): overwrite dispatches at 128 -> 128+9+128 = 265.
	if rep.Cycles != 265 {
		t.Fatalf("cycles = %d, want 265 (WAR)", rep.Cycles)
	}
}

func TestBankWritePortConflict(t *testing.T) {
	// v0 and v1 share bank 0's single write port.
	p := mkProgram("wport",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(1), Src1: isa.V(3), Src2: isa.V(5)},
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// First writes bank0 [9,137); second blocked until 137: 137+9+128=274.
	if rep.Cycles != 274 {
		t.Fatalf("cycles = %d, want 274 (bank write port)", rep.Cycles)
	}
}

func TestBankReadPortConflict(t *testing.T) {
	// Three concurrent readers of bank 1 (v2, v3) exceed its two read
	// ports; third op must wait. Each op uses distinct FUs/destinations.
	p := mkProgram("rport",
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)}, // bank1 reader 1
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(6), Src1: isa.V(3), Src2: isa.V(5)}, // bank1 reader 2
		isa.Inst{Op: isa.OpVMul, Dst: isa.V(7), Src1: isa.V(2), Src2: isa.V(4)}, // needs a third bank1 port
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// Bank 1's two read ports are held [0,128) and [1,129); the port
	// frees at 128 but FU2 (held by the second vadd) frees at 129:
	// 129+12+127 = 268 -> 269.
	if rep.Cycles != 269 {
		t.Fatalf("cycles = %d, want 269 (bank read ports)", rep.Cycles)
	}
}

func TestVectorScalarOperandMustBeReady(t *testing.T) {
	p := mkProgram("vs",
		isa.Inst{Op: isa.OpSLoad, Dst: isa.S(1), Src1: isa.A(0)},
		isa.Inst{Op: isa.OpVAddS, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.S(1)},
	)
	rep := runSingle(t, testConfig(1), p, 1, manyAddrs(1))
	// s1 ready at 4 (scalar cache); vadds at 4: 4+9+127 = 140 -> 141.
	if rep.Cycles != 141 {
		t.Fatalf("cycles = %d, want 141", rep.Cycles)
	}
}

func TestReductionWritesScalar(t *testing.T) {
	p := mkProgram("red",
		isa.Inst{Op: isa.OpVRedAdd, Dst: isa.S(1), Src1: isa.V(2)},
		isa.Inst{Op: isa.OpSAdd, Dst: isa.S(2), Src1: isa.S(1), Src2: isa.S(1)},
	)
	rep := runSingle(t, testConfig(1), p, 1, nil)
	// Reduction result at 9+127+1 = 137; sadd at 137 ready 139.
	if rep.Cycles != 139 {
		t.Fatalf("cycles = %d, want 139", rep.Cycles)
	}
}

func TestSetVLChangesVectorLength(t *testing.T) {
	p := mkProgram("vlchg",
		isa.Inst{Op: isa.OpSetVL, Src1: isa.A(0)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)},
	)
	m, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	s := prog.NewStream(p, &prog.SliceSource{BBs: []int{0}, VLs: []int64{32}})
	if err := m.SetThreadStream(0, "vlchg", s); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(Stop{})
	if err != nil {
		t.Fatal(err)
	}
	// setvl t=0; vadd t=1 at VL=32: 1+9+31 = 41 -> 42.
	if rep.Cycles != 42 {
		t.Fatalf("cycles = %d, want 42", rep.Cycles)
	}
	if rep.VectorArithOps != 32 {
		t.Fatalf("arith ops = %d, want 32", rep.VectorArithOps)
	}
}

func TestMemoryPortSerializesLoads(t *testing.T) {
	p := mkProgram("2ld",
		isa.Inst{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)},
		isa.Inst{Op: isa.OpVLoad, Dst: isa.V(4), Src1: isa.A(1)},
	)
	rep := runSingle(t, testConfig(1), p, 1, manyAddrs(2))
	// Second load starts at 128: last write 128+53+127 = 308 -> 309.
	if rep.Cycles != 309 {
		t.Fatalf("cycles = %d, want 309", rep.Cycles)
	}
	if rep.MemBusyCycles != 256 {
		t.Fatalf("mem busy = %d, want 256", rep.MemBusyCycles)
	}
}

func TestCrossbarLatencyKnob(t *testing.T) {
	// Section 8: raising read/write crossbar latency from 2 to 3 delays
	// results by exactly 2 cycles on a single instruction.
	cfg := testConfig(1)
	cfg.Lat.ReadXbar, cfg.Lat.WriteXbar = 3, 3
	p := mkProgram("xbar", isa.Inst{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(2), Src2: isa.V(4)})
	rep := runSingle(t, cfg, p, 1, nil)
	if rep.Cycles != 139 {
		t.Fatalf("cycles = %d, want 139 (3-cycle crossbars)", rep.Cycles)
	}
}

func TestMemoryLatencySensitivity(t *testing.T) {
	// A load-use chain's run time moves one-for-one with memory latency.
	mk := func(lat int) Cycle {
		cfg := testConfig(1)
		cfg.Mem.Latency = lat
		p := mkProgram("lat",
			isa.Inst{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)},
			isa.Inst{Op: isa.OpVAdd, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(4)},
		)
		return runSingle(t, cfg, p, 1, manyAddrs(1)).Cycles
	}
	c1, c100 := mk(1), mk(100)
	if c100-c1 != 99 {
		t.Fatalf("latency 1 -> %d, latency 100 -> %d; delta %d, want 99", c1, c100, c100-c1)
	}
}
