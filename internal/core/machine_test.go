package core

import (
	"math/rand"
	"testing"

	"mtvec/internal/isa"
	"mtvec/internal/prog"
	"mtvec/internal/sched"
	"mtvec/internal/stats"
)

// loadUseProgram builds a memory-bound program with a non-chainable
// load-use dependence per iteration — the pattern that leaves the memory
// port idle on the reference machine and that multithreading fills.
func loadUseProgram() *prog.Program {
	return mkProgram("loaduse",
		isa.Inst{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)},
		isa.Inst{Op: isa.OpVAdd, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(4)},
		isa.Inst{Op: isa.OpVStore, Src1: isa.V(2), Src2: isa.A(1)},
	)
}

func loadUseStream(reps int) *prog.Stream {
	return streamOf(loadUseProgram(), reps, nil, nil, manyAddrs(2*reps))
}

// runThreads runs the same load-use program once per context.
func runThreads(t *testing.T, cfg Config, reps int) *stats.Report {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Contexts; i++ {
		if err := m.SetThreadStream(i, "loaduse", loadUseStream(reps)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.Run(Stop{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestMultithreadingHidesLatency(t *testing.T) {
	reps := 20
	single := runThreads(t, testConfig(1), reps)
	dual := runThreads(t, testConfig(2), reps)

	// Two programs' worth of work must cost less than twice one
	// program (latency hiding) but at least as much as one.
	if dual.Cycles >= 2*single.Cycles {
		t.Fatalf("2-thread run (%d) not faster than sequential (%d)", dual.Cycles, 2*single.Cycles)
	}
	if dual.Cycles <= single.Cycles {
		t.Fatalf("2-thread run (%d) impossibly fast vs single (%d)", dual.Cycles, single.Cycles)
	}
	// Memory-port occupation must rise.
	if dual.MemOccupation() <= single.MemOccupation() {
		t.Fatalf("occupation did not improve: %f vs %f", dual.MemOccupation(), single.MemOccupation())
	}
}

func TestFourContextsKeepImproving(t *testing.T) {
	reps := 12
	occ := make([]float64, 0, 3)
	for _, n := range []int{1, 2, 4} {
		rep := runThreads(t, testConfig(n), reps)
		occ = append(occ, rep.MemOccupation())
	}
	if !(occ[0] < occ[1] && occ[1] < occ[2]) {
		t.Fatalf("occupation not monotonic in contexts: %v", occ)
	}
}

func TestUnfairFavorsThreadZero(t *testing.T) {
	// Thread 0 with a companion should finish close to its solo time.
	reps := 20
	solo := runThreads(t, testConfig(1), reps)

	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetThreadStream(0, "primary", loadUseStream(reps)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetThread(1, Repeat("companion", func() *prog.Stream { return loadUseStream(reps) })); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(Stop{Thread0Complete: true})
	if err != nil {
		t.Fatal(err)
	}
	slowdown := float64(rep.Cycles) / float64(solo.Cycles)
	if slowdown > 1.35 {
		t.Fatalf("thread 0 slowed down %.2fx under unfair policy", slowdown)
	}
	// The companion must have made real progress meanwhile.
	if rep.Threads[1].Dispatched == 0 {
		t.Fatal("companion thread starved completely")
	}
}

func TestRepeatRestartsCompanion(t *testing.T) {
	// A long thread-0 program with a short companion: the companion
	// restarts several times (Section 4.1 methodology).
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetThreadStream(0, "long", loadUseStream(30)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetThread(1, Repeat("short", func() *prog.Stream { return loadUseStream(2) })); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(Stop{Thread0Complete: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Threads[1].Completions < 2 {
		t.Fatalf("companion completed %d runs, want several", rep.Threads[1].Completions)
	}
	if rep.Threads[0].Completions != 1 {
		t.Fatalf("thread 0 completions = %d, want 1", rep.Threads[0].Completions)
	}
}

func TestJobQueueDrainsInOrder(t *testing.T) {
	q := NewJobQueue()
	for _, name := range []string{"j0", "j1", "j2", "j3", "j4"} {
		name := name
		q.Add(name, func() *prog.Stream { return loadUseStream(4) })
	}
	cfg := testConfig(2)
	cfg.RecordSpans = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := q.Source()
	m.SetThread(0, src)
	m.SetThread(1, src)
	rep, err := m.Run(Stop{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) != 5 {
		t.Fatalf("spans = %d, want 5 (one per job)", len(rep.Spans))
	}
	seen := map[string]bool{}
	for _, sp := range rep.Spans {
		if sp.End <= sp.Start {
			t.Errorf("span %v is empty", sp)
		}
		seen[sp.Program] = true
	}
	if len(seen) != 5 {
		t.Fatalf("distinct programs in spans = %d", len(seen))
	}
	// First two jobs start on threads 0 and 1.
	if rep.Spans[0].Start != 0 && rep.Spans[1].Start != 0 {
		t.Error("initial jobs should start at cycle 0")
	}
}

func TestStopMaxThread0Insts(t *testing.T) {
	m, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	m.SetThreadStream(0, "p", loadUseStream(50))
	rep, err := m.Run(Stop{MaxThread0Insts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Threads[0].Dispatched != 10 {
		t.Fatalf("dispatched = %d, want exactly 10", rep.Threads[0].Dispatched)
	}
	full := runThreads(t, testConfig(1), 50)
	if rep.Cycles >= full.Cycles {
		t.Fatal("partial run should cost less than the full run")
	}
}

func TestStopMaxCycles(t *testing.T) {
	m, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	m.SetThreadStream(0, "p", loadUseStream(1000))
	rep, err := m.Run(Stop{MaxCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles < 500 || rep.Cycles > 1200 {
		t.Fatalf("cycles = %d with MaxCycles 500", rep.Cycles)
	}
}

func TestMachineSingleUse(t *testing.T) {
	m, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	m.SetThreadStream(0, "p", loadUseStream(1))
	if _, err := m.Run(Stop{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(Stop{}); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *stats.Report {
		m, _ := New(testConfig(3))
		for i := 0; i < 3; i++ {
			m.SetThreadStream(i, "p", loadUseStream(15))
		}
		rep, err := m.Run(Stop{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.MemBusyCycles != b.MemBusyCycles ||
		a.Insts != b.Insts || a.LostDecode != b.LostDecode || a.Breakdown != b.Breakdown {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestDualScalarBeatsSharedDecodeOnScalarCode(t *testing.T) {
	// Two scalar-heavy threads: the Fujitsu-style machine decodes both
	// per cycle; the shared-decode multithreaded machine alternates.
	scalarProg := mkProgram("scal",
		isa.Inst{Op: isa.OpSAddI, Dst: isa.S(1), Src1: isa.S(2), Src2: isa.S(3)},
		isa.Inst{Op: isa.OpSAddI, Dst: isa.S(4), Src1: isa.S(2), Src2: isa.S(3)},
		isa.Inst{Op: isa.OpSAddI, Dst: isa.S(5), Src1: isa.S(2), Src2: isa.S(3)},
		isa.Inst{Op: isa.OpSAddI, Dst: isa.S(6), Src1: isa.S(2), Src2: isa.S(3)},
	)
	run := func(dual bool) Cycle {
		cfg := testConfig(2)
		cfg.DualScalar = dual
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			m.SetThreadStream(i, "scal", streamOf(scalarProg, 200, nil, nil, nil))
		}
		rep, err := m.Run(Stop{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles
	}
	shared, dual := run(false), run(true)
	if float64(dual) > 0.6*float64(shared) {
		t.Fatalf("dual scalar %d vs shared %d: expected near-2x speedup on scalar code", dual, shared)
	}
}

func TestIssueWidthTwoHelps(t *testing.T) {
	// The future-work simultaneous-issue knob must help two independent
	// scalar threads roughly like dual-scalar does.
	scalarProg := mkProgram("scal",
		isa.Inst{Op: isa.OpSAddI, Dst: isa.S(1), Src1: isa.S(2), Src2: isa.S(3)},
		isa.Inst{Op: isa.OpSAddI, Dst: isa.S(4), Src1: isa.S(2), Src2: isa.S(3)},
	)
	run := func(width int) Cycle {
		cfg := testConfig(2)
		cfg.IssueWidth = width
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			m.SetThreadStream(i, "scal", streamOf(scalarProg, 300, nil, nil, nil))
		}
		rep, err := m.Run(Stop{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles
	}
	w1, w2 := run(1), run(2)
	if float64(w2) > 0.6*float64(w1) {
		t.Fatalf("issue width 2 (%d) should nearly halve width 1 (%d)", w2, w1)
	}
}

func TestPolicies(t *testing.T) {
	// All policies must complete the same workload with identical total
	// work; cycle counts may differ.
	for _, name := range sched.Names() {
		cfg := testConfig(3)
		cfg.Policy = sched.ByName(name)
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			m.SetThreadStream(i, "p", loadUseStream(10))
		}
		rep, err := m.Run(Stop{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Insts != 3*30 {
			t.Errorf("%s: insts = %d, want 90", name, rep.Insts)
		}
	}
}

func TestStreamErrorSurfaces(t *testing.T) {
	// An address-trace underrun must turn into a Run error.
	p := mkProgram("bad", isa.Inst{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)})
	s := prog.NewStream(p, &prog.SliceSource{BBs: []int{0, 0}, Addrs: []uint64{1}})
	m, _ := New(testConfig(1))
	m.SetThreadStream(0, "bad", s)
	if _, err := m.Run(Stop{}); err == nil {
		t.Fatal("stream error not surfaced")
	}
}

func TestReportInvariantsQuick(t *testing.T) {
	// Randomized invariant checking over generated programs: breakdown
	// covers the whole run, occupation and VOPC stay in range, cycles
	// dominate the IDEAL bound.
	ops := []isa.Inst{
		{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(0)},
		{Op: isa.OpVLoad, Dst: isa.V(4), Src1: isa.A(1)},
		{Op: isa.OpVAdd, Dst: isa.V(2), Src1: isa.V(0), Src2: isa.V(4)},
		{Op: isa.OpVMul, Dst: isa.V(6), Src1: isa.V(2), Src2: isa.V(4)},
		{Op: isa.OpVStore, Src1: isa.V(2), Src2: isa.A(2)},
		{Op: isa.OpSAddI, Dst: isa.S(1), Src1: isa.S(2), Src2: isa.S(3)},
		{Op: isa.OpSLoad, Dst: isa.S(4), Src1: isa.A(3)},
		{Op: isa.OpBr, Src1: isa.A(4)},
	}
	for trial := 0; trial < 25; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		n := r.Intn(30) + 3
		insts := make([]isa.Inst, n)
		memRefs := 0
		for i := range insts {
			insts[i] = ops[r.Intn(len(ops))]
			if insts[i].Op.IsMem() {
				memRefs++
			}
		}
		p := mkProgram("rand", insts...)
		contexts := r.Intn(4) + 1
		cfg := testConfig(contexts)
		cfg.Mem.Latency = []int{1, 20, 50, 100}[r.Intn(4)]

		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var demand prog.Stats
		for c := 0; c < contexts; c++ {
			src := &prog.SliceSource{BBs: make([]int, 3), Addrs: make([]uint64, 3*memRefs)}
			for i := range src.Addrs {
				src.Addrs[i] = uint64(0x1000 * (i + 1))
			}
			// Account demand with an identical replica stream.
			rsrc := &prog.SliceSource{BBs: make([]int, 3), Addrs: src.Addrs}
			_, st, err := prog.NewStream(p, rsrc).Drain()
			if err != nil {
				t.Fatal(err)
			}
			demand.Merge(&st)
			m.SetThreadStream(c, "rand", prog.NewStream(p, src))
		}
		rep, err := m.Run(Stop{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		if rep.Breakdown.Total() != rep.Cycles {
			t.Fatalf("trial %d: breakdown %d != cycles %d", trial, rep.Breakdown.Total(), rep.Cycles)
		}
		if occ := rep.MemOccupation(); occ < 0 || occ > 1 {
			t.Fatalf("trial %d: occupation %f out of range", trial, occ)
		}
		if v := rep.VOPC(); v < 0 || v > 2 {
			t.Fatalf("trial %d: VOPC %f out of range", trial, v)
		}
		if ideal := demand.IdealCycles(); rep.Cycles < ideal {
			t.Fatalf("trial %d: cycles %d beat the IDEAL bound %d", trial, rep.Cycles, ideal)
		}
		if rep.Insts != demand.Insts() {
			t.Fatalf("trial %d: dispatched %d != expected %d", trial, rep.Insts, demand.Insts())
		}
	}
}

func TestIdealCyclesHelper(t *testing.T) {
	var a, b prog.Stats
	a.ScalarInsts = 100
	a.VectorMemElems = 500
	b.VectorMemElems = 700
	if got := IdealCycles(a, b); got != 1200 {
		t.Fatalf("IdealCycles = %d, want 1200", got)
	}
}

func TestFastForwardEquivalence(t *testing.T) {
	// The all-blocked clock skip must be observationally equivalent to
	// stepping every cycle: identical cycles, breakdown, memory
	// counters, per-thread progress — across context counts, latencies
	// and modes.
	run := func(disable bool, contexts, latency int, dual bool) *stats.Report {
		cfg := testConfig(contexts)
		cfg.Mem.Latency = latency
		cfg.DisableFastForward = disable
		cfg.DualScalar = dual
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < contexts; i++ {
			m.SetThreadStream(i, "p", loadUseStream(12+3*i))
		}
		rep, err := m.Run(Stop{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cases := []struct {
		contexts, latency int
		dual              bool
	}{
		{1, 50, false}, {1, 100, false}, {2, 1, false}, {2, 50, false},
		{3, 70, false}, {4, 100, false}, {2, 50, true}, {2, 100, true},
	}
	for _, c := range cases {
		fast := run(false, c.contexts, c.latency, c.dual)
		slow := run(true, c.contexts, c.latency, c.dual)
		if fast.Cycles != slow.Cycles || fast.Breakdown != slow.Breakdown ||
			fast.MemBusyCycles != slow.MemBusyCycles || fast.Insts != slow.Insts ||
			fast.LostDecode != slow.LostDecode {
			t.Errorf("case %+v: fast-forward changed observables:\nfast: cyc=%d lost=%d\nslow: cyc=%d lost=%d",
				c, fast.Cycles, fast.LostDecode, slow.Cycles, slow.LostDecode)
		}
		for i := range fast.Threads {
			if fast.Threads[i] != slow.Threads[i] {
				t.Errorf("case %+v thread %d: %+v vs %+v", c, i, fast.Threads[i], slow.Threads[i])
			}
		}
	}
}
