package core

import (
	"context"
	"fmt"

	"mtvec/internal/stats"
)

// DefaultBatchWindow is the lockstep window in dispatched dynamic
// instructions: how far one lane advances before the batch moves on to
// the next. Small enough that the trace region the lanes are walking
// stays cache-resident across all of them, large enough to amortize the
// resume overhead; SetWindow tunes it.
const DefaultBatchWindow = 2048

// batchSlab is the shared structure-of-arrays allocation behind a
// Batch: every lane's hardware contexts, vector register windows and
// bank port windows live in one contiguous block per state kind, so the
// lockstep loop walks dense memory instead of N scattered machines.
type batchSlab struct {
	ctxs  []hwContext
	vregs []vregState
	banks []bankState
}

func (s *batchSlab) takeCtxs(n int) []hwContext {
	out := s.ctxs[:n:n]
	s.ctxs = s.ctxs[n:]
	return out
}

func (s *batchSlab) takeVRegs(n int) []vregState {
	out := s.vregs[:n:n]
	s.vregs = s.vregs[n:]
	return out
}

func (s *batchSlab) takeBanks(n int) []bankState {
	out := s.banks[:n:n]
	s.banks = s.banks[n:]
	return out
}

// Batch advances N independently configured machines ("lanes") in
// lockstep windows over their instruction streams. Lanes share no
// mutable state — each is a complete Machine with its own clock,
// scoreboards and memory model, carved out of one batch-wide
// structure-of-arrays slab — so every lane's Report is byte-identical
// to the same configuration run solo, by construction. What lanes do
// share is their input: when all lanes replay the same predecoded
// trace (a sweep over machine parameters), the lockstep window keeps
// the trace region being walked hot in cache across all of them
// instead of re-streaming the whole trace once per lane.
//
// A Batch is single-use, like the machines it owns: build it, attach
// each lane's threads through Machine(i), run once, read the per-lane
// results. Batches are not safe for concurrent use.
type Batch struct {
	lanes  []*Machine
	window int64
	ran    bool
}

// NewBatch builds one machine per config, allocating all lanes' mutable
// state out of shared structure-of-arrays slabs. Any invalid config
// fails the whole batch.
func NewBatch(cfgs []Config) (*Batch, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("core: batch needs at least one lane config")
	}
	// Pre-derive every lane's shape to size the shared slabs.
	var slab batchSlab
	nctx, nvregs, nbanks := 0, 0, 0
	for i := range cfgs {
		cfg := cfgs[i].Normalized()
		der, err := cfg.Spec.Derive(cfg.Contexts)
		if err != nil {
			return nil, fmt.Errorf("core: batch lane %d: %w", i, err)
		}
		nctx += cfg.Contexts
		nvregs += cfg.Contexts * der.CtxVRegs
		nbanks += cfg.Contexts * der.NumBanks
	}
	slab.ctxs = make([]hwContext, nctx)
	slab.vregs = make([]vregState, nvregs)
	slab.banks = make([]bankState, nbanks)
	b := &Batch{lanes: make([]*Machine, len(cfgs)), window: DefaultBatchWindow}
	for i := range cfgs {
		m, err := newMachine(cfgs[i], &slab)
		if err != nil {
			return nil, fmt.Errorf("core: batch lane %d: %w", i, err)
		}
		b.lanes[i] = m
	}
	return b, nil
}

// Lanes returns the number of lanes.
func (b *Batch) Lanes() int { return len(b.lanes) }

// Machine returns lane i's machine for thread attachment (SetThread,
// SetThreadStream). Do not call its Run methods — the batch drives it.
func (b *Batch) Machine(i int) *Machine { return b.lanes[i] }

// SetWindow changes the lockstep window (dispatched instructions per
// lane per round); n <= 0 keeps the current value. The window never
// affects results, only locality.
func (b *Batch) SetWindow(n int64) {
	if n > 0 {
		b.window = n
	}
}

// Run advances all lanes to completion and returns the per-lane reports
// and errors (both always len Lanes(); exactly one of reps[i], errs[i]
// is non-nil).
func (b *Batch) Run(stops []Stop) ([]*stats.Report, []error) {
	return b.RunContext(context.Background(), stops)
}

// RunContext is Run with cancellation: lanes that have not finished
// when ctx is cancelled report ctx.Err() and no Report, exactly like a
// cancelled solo RunContext. stops[i] is lane i's stop rule.
//
// The lockstep loop raises a shared dispatched-instruction target each
// round and advances every live lane up to it; lanes that finish (or
// fail) drop out of the active mask, and the loop ends when the mask is
// empty. Because each lane pauses only between cycles and resumes from
// exactly the machine state it paused in, the schedule of pauses is
// invisible in the results.
func (b *Batch) RunContext(ctx context.Context, stops []Stop) ([]*stats.Report, []error) {
	n := len(b.lanes)
	reps := make([]*stats.Report, n)
	errs := make([]error, n)
	if len(stops) != n {
		err := fmt.Errorf("core: batch has %d lanes, got %d stops", n, len(stops))
		for i := range errs {
			errs[i] = err
		}
		return reps, errs
	}
	if b.ran {
		err := fmt.Errorf("core: batch already ran; build a new one")
		for i := range errs {
			errs[i] = err
		}
		return reps, errs
	}
	b.ran = true

	active := make([]bool, n)
	live := 0
	for i, m := range b.lanes {
		if err := m.begin(); err != nil {
			errs[i] = err
			continue
		}
		active[i] = true
		live++
	}
	for target := b.window; live > 0; target += b.window {
		for i := range b.lanes {
			if !active[i] {
				continue
			}
			finished, err := b.lanes[i].runLoop(ctx, stops[i], target)
			if err != nil {
				errs[i], active[i] = err, false
				live--
				continue
			}
			if finished {
				reps[i], errs[i] = b.lanes[i].finish(stops[i])
				active[i] = false
				live--
			}
		}
	}
	return reps, errs
}
