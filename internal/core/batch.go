package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"mtvec/internal/stats"
)

// DefaultBatchWindow is the lockstep window in dispatched dynamic
// instructions: how far one lane advances before the batch moves on to
// the next. Small enough that the trace region the lanes are walking
// stays cache-resident across all of them, large enough to amortize the
// resume overhead; SetWindow tunes it.
const DefaultBatchWindow = 2048

// batchSlab is the shared structure-of-arrays allocation behind a
// Batch: every lane's hardware contexts, vector register windows and
// bank port windows live in one contiguous block per state kind, so the
// lockstep loop walks dense memory instead of N scattered machines.
type batchSlab struct {
	ctxs  []hwContext
	vregs []vregState
	banks []bankState
	wins  []portWindow
}

func (s *batchSlab) takeCtxs(n int) []hwContext {
	out := s.ctxs[:n:n]
	s.ctxs = s.ctxs[n:]
	return out
}

func (s *batchSlab) takeVRegs(n int) []vregState {
	out := s.vregs[:n:n]
	s.vregs = s.vregs[n:]
	return out
}

func (s *batchSlab) takeBanks(n int) []bankState {
	out := s.banks[:n:n]
	s.banks = s.banks[n:]
	return out
}

func (s *batchSlab) takeWins(n int) []portWindow {
	out := s.wins[:n:n]
	s.wins = s.wins[n:]
	return out
}

// Batch advances N independently configured machines ("lanes") in
// lockstep windows over their instruction streams. Lanes share no
// mutable state — each is a complete Machine with its own clock,
// scoreboards and memory model, carved out of one batch-wide
// structure-of-arrays slab — so every lane's Report is byte-identical
// to the same configuration run solo, by construction. What lanes do
// share is their input: when all lanes replay the same predecoded
// trace (a sweep over machine parameters), the lockstep window keeps
// the trace region being walked hot in cache across all of them
// instead of re-streaming the whole trace once per lane.
//
// A Batch is single-use, like the machines it owns: build it, attach
// each lane's threads through Machine(i), run once, read the per-lane
// results. Batches are not safe for concurrent use.
type Batch struct {
	lanes  []*Machine
	window int64
	par    int      // max goroutines advancing lanes per round (1 = sequential)
	slots  SlotPool // optional limiter the extra goroutines borrow slots from
	ran    bool
}

// SlotPool is a concurrency limiter a Batch can borrow extra slots
// from. TryAcquire claims up to max free slots without blocking and
// returns how many it got; Release returns them. *runner.Gate satisfies
// it. The caller's own admission (the slot it entered the batch under)
// is implicit and never released by the batch.
type SlotPool interface {
	TryAcquire(max int) int
	Release(n int)
}

// NewBatch builds one machine per config, allocating all lanes' mutable
// state out of shared structure-of-arrays slabs. Any invalid config
// fails the whole batch.
func NewBatch(cfgs []Config) (*Batch, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("core: batch needs at least one lane config")
	}
	// Pre-derive every lane's shape to size the shared slabs.
	var slab batchSlab
	nctx, nvregs, nbanks := 0, 0, 0
	for i := range cfgs {
		cfg := cfgs[i].Normalized()
		der, err := cfg.Spec.Derive(cfg.Contexts)
		if err != nil {
			return nil, fmt.Errorf("core: batch lane %d: %w", i, err)
		}
		nctx += cfg.Contexts
		nvregs += cfg.Contexts * der.CtxVRegs
		nbanks += cfg.Contexts * der.NumBanks
	}
	slab.ctxs = make([]hwContext, nctx)
	slab.vregs = make([]vregState, nvregs)
	slab.banks = make([]bankState, nbanks)
	slab.wins = make([]portWindow, 2*bankWinReserve*nbanks)
	b := &Batch{lanes: make([]*Machine, len(cfgs)), window: DefaultBatchWindow}
	for i := range cfgs {
		m, err := newMachine(cfgs[i], &slab)
		if err != nil {
			return nil, fmt.Errorf("core: batch lane %d: %w", i, err)
		}
		b.lanes[i] = m
	}
	return b, nil
}

// Lanes returns the number of lanes.
func (b *Batch) Lanes() int { return len(b.lanes) }

// Machine returns lane i's machine for thread attachment (SetThread,
// SetThreadStream). Do not call its Run methods — the batch drives it.
func (b *Batch) Machine(i int) *Machine { return b.lanes[i] }

// SetWindow changes the lockstep window (dispatched instructions per
// lane per round); n <= 0 keeps the current value. The window never
// affects results, only locality.
func (b *Batch) SetWindow(n int64) {
	if n > 0 {
		b.window = n
	}
}

// SetParallel allows up to n goroutines to advance live lanes within
// one lockstep round; n <= 1 (the default) keeps the sequential walk.
// Lanes are independent machines sharing only immutable inputs, so the
// setting never affects results — each lane's Report is the same
// whichever goroutine advances it.
func (b *Batch) SetParallel(n int) {
	if n > 1 {
		b.par = n
	} else {
		b.par = 1
	}
}

// SetSlots attaches a concurrency limiter the parallel rounds cooperate
// with: each round runs on 1 + TryAcquire(min(par, live)-1) goroutines,
// so the batch widens across idle capacity and narrows back as lanes
// retire or the pool fills. Without a pool (the default), SetParallel
// alone bounds the round width. Results never depend on the pool.
func (b *Batch) SetSlots(p SlotPool) { b.slots = p }

// Run advances all lanes to completion and returns the per-lane reports
// and errors (both always len Lanes(); exactly one of reps[i], errs[i]
// is non-nil).
func (b *Batch) Run(stops []Stop) ([]*stats.Report, []error) {
	return b.RunContext(context.Background(), stops)
}

// RunContext is Run with cancellation: lanes that have not finished
// when ctx is cancelled report ctx.Err() and no Report, exactly like a
// cancelled solo RunContext. stops[i] is lane i's stop rule.
//
// The lockstep loop raises a shared dispatched-instruction target each
// round and advances every live lane up to it; lanes that finish (or
// fail) drop out of the active mask, and the loop ends when the mask is
// empty. Because each lane pauses only between cycles and resumes from
// exactly the machine state it paused in, the schedule of pauses is
// invisible in the results.
func (b *Batch) RunContext(ctx context.Context, stops []Stop) ([]*stats.Report, []error) {
	n := len(b.lanes)
	reps := make([]*stats.Report, n)
	errs := make([]error, n)
	if len(stops) != n {
		err := fmt.Errorf("core: batch has %d lanes, got %d stops", n, len(stops))
		for i := range errs {
			errs[i] = err
		}
		return reps, errs
	}
	if b.ran {
		err := fmt.Errorf("core: batch already ran; build a new one")
		for i := range errs {
			errs[i] = err
		}
		return reps, errs
	}
	b.ran = true

	active := make([]bool, n)
	live := 0
	for i, m := range b.lanes {
		if err := m.begin(); err != nil {
			errs[i] = err
			continue
		}
		active[i] = true
		live++
	}
	if b.par > 1 && live > 1 {
		b.runRounds(ctx, stops, reps, errs, active, live)
		return reps, errs
	}
	for target := b.window; live > 0; target += b.window {
		for i := range b.lanes {
			if !active[i] {
				continue
			}
			finished, err := b.lanes[i].runLoop(ctx, stops[i], target)
			if err != nil {
				errs[i], active[i] = err, false
				live--
				continue
			}
			if finished {
				reps[i], errs[i] = b.lanes[i].finish(stops[i])
				active[i] = false
				live--
			}
		}
	}
	return reps, errs
}

// runRounds is the parallel round loop: each lockstep round, up to
// min(par, live) goroutines claim live lanes off a shared cursor and
// advance them to the round target. A lane is touched by exactly one
// goroutine per round (the atomic cursor hands out each index once),
// and the round barrier orders one round's writes before the next
// round's reads, so the loop is data-race free without per-lane locks.
// With a SlotPool attached, the extra goroutines (beyond the caller,
// who participates on its own admission) each occupy one borrowed slot;
// the batch re-sizes its claim every round as lanes retire and returns
// everything on exit.
func (b *Batch) runRounds(ctx context.Context, stops []Stop, reps []*stats.Report, errs []error, active []bool, live int) {
	var (
		cursor  atomic.Int64 // next lane index to claim this round
		retired atomic.Int64 // lanes finished or failed this round
		target  int64        // current round's dispatched-instruction target
	)
	round := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(b.lanes) {
				return
			}
			if !active[i] {
				continue
			}
			finished, err := b.lanes[i].runLoop(ctx, stops[i], target)
			if err != nil {
				errs[i], active[i] = err, false
				retired.Add(1)
				continue
			}
			if finished {
				reps[i], errs[i] = b.lanes[i].finish(stops[i])
				active[i] = false
				retired.Add(1)
			}
		}
	}

	// Persistent helper goroutines, spawned lazily up to the widest round
	// ever needed: a round wakes `extra` of them, runs the caller's share
	// inline, then joins. done is buffered so a helper never blocks
	// publishing its round completion.
	start := make(chan struct{})
	done := make(chan struct{}, b.par)
	helper := func() {
		for range start {
			round()
			done <- struct{}{}
		}
	}
	spawned, held := 0, 0
	defer func() {
		close(start)
		if b.slots != nil && held > 0 {
			b.slots.Release(held)
		}
	}()

	for target = b.window; live > 0; target += b.window {
		extra := min(b.par, live) - 1
		if b.slots != nil {
			// Hold exactly as many borrowed slots as helpers we can use:
			// shrink as lanes retire, top up when the pool has room.
			if held > extra {
				b.slots.Release(held - extra)
				held = extra
			} else if held < extra {
				held += b.slots.TryAcquire(extra - held)
			}
			extra = held
		}
		for spawned < extra {
			go helper()
			spawned++
		}
		cursor.Store(0)
		retired.Store(0)
		for k := 0; k < extra; k++ {
			start <- struct{}{}
		}
		round()
		for k := 0; k < extra; k++ {
			<-done
		}
		live -= int(retired.Load())
	}
}
