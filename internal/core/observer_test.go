package core

import (
	"context"
	"reflect"
	"testing"

	"mtvec/internal/sched"
	"mtvec/internal/stats"
)

// eventLog records every observer event for sequence comparison.
type eventLog struct {
	progress []([2]int64)
	switches [][3]int64
	spans    []stats.Span
}

func (l *eventLog) Progress(now Cycle, dispatched int64) {
	l.progress = append(l.progress, [2]int64{now, dispatched})
}
func (l *eventLog) ThreadSwitch(now Cycle, from, to int) {
	l.switches = append(l.switches, [3]int64{now, int64(from), int64(to)})
}
func (l *eventLog) Span(s stats.Span) { l.spans = append(l.spans, s) }

// runObserved runs the 2-context load-use pair with an event log.
func runObserved(t *testing.T, fastForward bool) (*stats.Report, *eventLog) {
	t.Helper()
	log := &eventLog{}
	cfg := testConfig(2)
	cfg.Observers = []Observer{log}
	cfg.ProgressStride = 256
	cfg.DisableFastForward = !fastForward
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := m.SetThreadStream(i, "loaduse", loadUseStream(20)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.Run(Stop{})
	if err != nil {
		t.Fatal(err)
	}
	return rep, log
}

func TestObserverEventSequenceDeterministic(t *testing.T) {
	rep1, log1 := runObserved(t, true)
	rep2, log2 := runObserved(t, true)
	if !reflect.DeepEqual(log1, log2) {
		t.Fatal("identical runs produced different event sequences")
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("identical runs produced different reports")
	}
	if len(log1.progress) == 0 {
		t.Fatal("no progress events at stride 256")
	}
	// Progress events land exactly on stride boundaries, in order.
	for i, p := range log1.progress {
		if want := int64(256 * (i + 1)); p[0] != want {
			t.Fatalf("progress %d at cycle %d, want %d", i, p[0], want)
		}
	}
	// First switch comes from the start state.
	if len(log1.switches) == 0 || log1.switches[0][1] != -1 {
		t.Fatalf("first switch = %v, want from=-1", log1.switches)
	}
	// One span per program run, streamed and identical to the report's
	// accounting of two completed threads.
	if len(log1.spans) != 2 {
		t.Fatalf("spans = %v, want 2", log1.spans)
	}
}

// TestObserverFastForwardEquivalence: the fast-forward clock skip must
// be observationally equivalent, including the streamed event sequence.
func TestObserverFastForwardEquivalence(t *testing.T) {
	repFF, logFF := runObserved(t, true)
	repCy, logCy := runObserved(t, false)
	if !reflect.DeepEqual(repFF, repCy) {
		t.Fatal("fast-forward changed the report")
	}
	if !reflect.DeepEqual(logFF, logCy) {
		t.Fatalf("fast-forward changed the event stream:\n  ff %+v\n  cy %+v", logFF, logCy)
	}
}

// TestRecordSpansMatchesObserver: the deprecated RecordSpans flag and an
// attached SpanRecorder observe the same spans.
func TestRecordSpansMatchesObserver(t *testing.T) {
	rec := &SpanRecorder{}
	cfg := testConfig(1)
	cfg.RecordSpans = true
	cfg.Observers = []Observer{rec}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetThreadStream(0, "loaduse", loadUseStream(4)); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(Stop{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) != 1 || !reflect.DeepEqual(rep.Spans, rec.Spans) {
		t.Fatalf("report spans %v != observer spans %v", rep.Spans, rec.Spans)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	mkMachine := func() *Machine {
		m, err := New(testConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetThreadStream(0, "loaduse", loadUseStream(20)); err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, err := mkMachine().Run(Stop{})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := mkMachine().RunContext(context.Background(), Stop{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Fatal("RunContext(Background) differs from Run")
	}
}

func TestRunContextCancelled(t *testing.T) {
	m, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetThreadStream(0, "loaduse", loadUseStream(20)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := m.RunContext(ctx, Stop{})
	if rep != nil || err != context.Canceled {
		t.Fatalf("rep=%v err=%v, want nil/context.Canceled", rep, err)
	}
}

// TestCancelledRunReleasesBacking pins the fix for a leak mtvlint's
// slotpair analyzer surfaced: a cancelled run never reaches report, so
// the pooled timeline storage New acquired used to stay stranded on the
// dead machine instead of returning to the pool.
func TestCancelledRunReleasesBacking(t *testing.T) {
	m, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetThreadStream(0, "loaduse", loadUseStream(20)); err != nil {
		t.Fatal(err)
	}
	if !m.tl.HasBacking() {
		t.Fatal("new machine has no pooled timeline backing")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunContext(ctx, Stop{}); err != context.Canceled {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if m.tl.HasBacking() {
		t.Fatal("cancelled run kept its pooled timeline backing")
	}
}

// TestPolicyCloneIsolation: one Config carrying a stateful policy can
// back many machines without cross-run interference.
func TestPolicyCloneIsolation(t *testing.T) {
	cfg := testConfig(2)
	cfg.Policy = sched.ByName("lru")
	run := func() *stats.Report {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := m.SetThreadStream(i, "loaduse", loadUseStream(20)); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := m.Run(Stop{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	first := run()
	second := run() // reuses cfg — and with it the policy instance
	if !reflect.DeepEqual(first, second) {
		t.Fatal("reusing a Config with a stateful policy changed the result")
	}
}
