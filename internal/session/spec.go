package session

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"mtvec/internal/arch"
	"mtvec/internal/core"
	"mtvec/internal/memsys"
	"mtvec/internal/prog"
	"mtvec/internal/sched"
	"mtvec/internal/vcomp"
	"mtvec/internal/workload"
)

// Mode selects a run's methodology: which paper section's setup the
// machine's contexts are fed with.
type Mode int

const (
	// ModeSolo runs one workload to completion on thread 0 — the
	// reference methodology.
	ModeSolo Mode = iota + 1
	// ModeGroup runs a primary on thread 0 while companions restart
	// until it completes (Section 4.1).
	ModeGroup
	// ModeQueue drains a fixed job list with every context (Section 7).
	ModeQueue
	// ModeCompiled runs a user-compiled kernel under an invocation
	// schedule on thread 0.
	ModeCompiled
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSolo:
		return "solo"
	case ModeGroup:
		return "group"
	case ModeQueue:
		return "queue"
	case ModeCompiled:
		return "compiled"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// RunSpec declares one simulation point: a mode, its workloads, and the
// machine options that build the core.Config. Specs are values — build
// one with Solo, Group, Queue or Compiled, derive variants with With —
// and are validated when run (or eagerly via Validate).
type RunSpec struct {
	mode      Mode
	workloads []*workload.Workload
	compiled  *vcomp.Compiled
	schedule  []vcomp.Invocation
	// opts is consumed into the plan before any key is computed; every
	// option's effect lands in a field appendMachineKey already encodes.
	//mtvlint:allow keycomplete -- options are resolved into plan/cfg fields that the key functions encode
	opts []Option
}

// Solo declares a reference run: w alone on thread 0, to completion.
func Solo(w *workload.Workload, opts ...Option) RunSpec {
	return RunSpec{mode: ModeSolo, workloads: []*workload.Workload{w}, opts: opts}
}

// Group declares a Section 4.1 grouped run: primary on thread 0,
// companions restarting until it completes. When WithContexts is not
// given, the context count defaults to 1+len(companions).
func Group(primary *workload.Workload, companions []*workload.Workload, opts ...Option) RunSpec {
	ws := append([]*workload.Workload{primary}, companions...)
	return RunSpec{mode: ModeGroup, workloads: ws, opts: opts}
}

// Queue declares a Section 7 job-queue run: ws in order, drained by all
// contexts, ending when every job is done.
func Queue(ws []*workload.Workload, opts ...Option) RunSpec {
	return RunSpec{mode: ModeQueue, workloads: append([]*workload.Workload(nil), ws...), opts: opts}
}

// Compiled declares a run of a user-compiled kernel under the given
// invocation schedule (thread 0 only).
func Compiled(c *vcomp.Compiled, schedule []vcomp.Invocation, opts ...Option) RunSpec {
	return RunSpec{mode: ModeCompiled, compiled: c, schedule: append([]vcomp.Invocation(nil), schedule...), opts: opts}
}

// With returns a copy of the spec with more options appended; later
// options win.
func (s RunSpec) With(opts ...Option) RunSpec {
	s.opts = append(append([]Option(nil), s.opts...), opts...)
	return s
}

// Mode returns the spec's methodology.
func (s RunSpec) Mode() Mode { return s.mode }

// Validate reports every diagnosable problem with the spec — invalid
// options, invalid option combinations, and mode-level inconsistencies —
// without running anything.
func (s RunSpec) Validate() error {
	_, err := s.prepare()
	return err
}

// build accumulates the machine configuration as options apply.
type build struct {
	cfg core.Config
	// contextsSet records an explicit WithContexts/WithConfig so group
	// mode can distinguish "defaulted" from "mismatched".
	contextsSet bool
	// Policy identity for the memo key: named policies share by name;
	// custom instances share by session-registry identity, which is
	// conservative (no cross-instance sharing) but never wrong.
	policyName string
	policyInst sched.Policy
	stop       core.Stop
	observers  []core.Observer
	errs       []error
}

// Option configures one aspect of a run's machine or stop rule. Options
// apply in order; later options win. An invalid option records a
// diagnostic that surfaces — joined with every other diagnostic — when
// the spec is validated or run.
type Option func(*build)

func (b *build) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// WithConfig replaces the base configuration wholesale. Options given
// after it still apply on top. Most callers should prefer the granular
// options; WithConfig exists for the legacy Run* entry points and for
// knobs without a dedicated option (DisableFastForward, custom
// latency tables).
func WithConfig(cfg core.Config) Option {
	return func(b *build) {
		b.cfg = cfg
		b.contextsSet = true
		b.policyName, b.policyInst = "", cfg.Policy
		if len(cfg.Observers) > 0 {
			b.observers = append(b.observers, cfg.Observers...)
			b.cfg.Observers = nil
		}
	}
}

// WithContexts sets the number of hardware contexts. The upper bound is
// the machine shape's MaxContexts (8 on the reference architecture),
// checked when the spec validates — after every option, including a
// later WithArch, has applied.
func WithContexts(n int) Option {
	return func(b *build) {
		if n < 1 {
			b.errf("session: contexts %d out of range (need at least 1)", n)
			return
		}
		b.cfg.Contexts = n
		b.contextsSet = true
	}
}

// WithArch replaces the whole machine shape — register file, functional
// unit mix, latency table and memory system — with the given spec
// (usually a preset: arch.ConvexC3400, arch.VP2000, arch.CrayLikePorts,
// or a modified copy). Granular options given after it still apply on
// top, so WithArch(spec) + WithMemLatency(80) is the spec at 80-cycle
// memory.
func WithArch(spec arch.Spec) Option {
	return func(b *build) {
		if spec.IsZero() {
			b.errf("session: zero arch spec (start from a preset like arch.ConvexC3400)")
			return
		}
		b.cfg.Spec = spec
	}
}

// WithRegFile sets the vector register file organization (count, length,
// banking, ports, partitioning) while keeping the rest of the machine
// shape. Workloads must be built for the same compiler-visible
// organization (BuildWorkloadsRegFile / vcomp.Options.RegFile) when it
// changes the register count or length.
func WithRegFile(rf arch.RegFile) Option {
	return func(b *build) {
		if rf.IsZero() {
			b.errf("session: zero register-file organization")
			return
		}
		b.cfg.RegFile = rf
	}
}

// WithVLen sets the vector register length in elements (the Section 8
// study's central register-file axis), keeping the rest of the
// organization.
func WithVLen(n int) Option {
	return func(b *build) {
		if n < 1 {
			b.errf("session: vector length %d < 1", n)
			return
		}
		b.cfg.RegFile = b.cfg.RegFile.Normalize()
		b.cfg.VLen = n
	}
}

// WithBankPorts sets each register bank's read and write ports into the
// crossbars (the reference machine has 2 read, 1 write).
func WithBankPorts(read, write int) Option {
	return func(b *build) {
		if read < 1 || write < 1 {
			b.errf("session: bank ports need at least 1 read and 1 write, have %d/%d", read, write)
			return
		}
		b.cfg.RegFile = b.cfg.RegFile.Normalize()
		b.cfg.BankReadPorts, b.cfg.BankWritePorts = read, write
	}
}

// WithMemLatency sets the main-memory latency in cycles (the paper's
// central parameter; it varies 1..100).
func WithMemLatency(cycles int) Option {
	return func(b *build) {
		if cycles < 1 {
			b.errf("session: memory latency %d < 1", cycles)
			return
		}
		b.cfg.Mem.Latency = cycles
	}
}

// WithScalarLatency sets the scalar-access completion latency (the
// Convex scalar cache); 0 means "same as main memory".
func WithScalarLatency(cycles int) Option {
	return func(b *build) {
		if cycles < 0 {
			b.errf("session: negative scalar latency %d", cycles)
			return
		}
		b.cfg.Mem.ScalarLatency = cycles
	}
}

// WithXbar sets both register-file crossbar latencies (Section 8 charges
// the multithreaded machine 3 cycles instead of the reference 2).
func WithXbar(cycles int) Option {
	return func(b *build) {
		if cycles < 1 {
			b.errf("session: crossbar latency %d < 1", cycles)
			return
		}
		b.cfg.Lat.ReadXbar, b.cfg.Lat.WriteXbar = cycles, cycles
	}
}

// WithPolicy selects a thread-switch policy by name (sched.Names).
func WithPolicy(name string) Option {
	return func(b *build) {
		p := sched.ByName(name)
		if p == nil {
			b.errf("session: unknown policy %q (have %s)", name, strings.Join(sched.Names(), ", "))
			return
		}
		b.cfg.Policy = p
		b.policyName, b.policyInst = name, nil
	}
}

// WithPolicyInstance installs a custom policy value. The machine clones
// it per run (sched.Policy.Clone), so the instance may be shared across
// specs.
func WithPolicyInstance(p sched.Policy) Option {
	return func(b *build) {
		if p == nil {
			b.errf("session: nil policy instance")
			return
		}
		b.cfg.Policy = p
		b.policyName, b.policyInst = "", p
	}
}

// WithDualScalar toggles the Fujitsu VP2000 dual-scalar mode of
// Section 9 (requires exactly 2 contexts).
func WithDualScalar(enabled bool) Option {
	return func(b *build) { b.cfg.DualScalar = enabled }
}

// WithIssueWidth sets the decode slots per cycle (the paper's
// future-work simultaneous-issue study; 1 is the paper's machine).
func WithIssueWidth(n int) Option {
	return func(b *build) {
		if n < 1 {
			b.errf("session: issue width %d < 1", n)
			return
		}
		b.cfg.IssueWidth = n
	}
}

// WithMemPorts replaces the single general-purpose address port with
// dedicated load and store ports — the Cray-like extension of
// Section 10. Like the ablation it reproduces, it also disables the
// scalar cache (scalar accesses pay full memory latency); banking set
// by WithMemBanks is preserved. Apply after WithMemLatency.
func WithMemPorts(load, store int) Option {
	return func(b *build) {
		if load < 1 || store < 1 {
			b.errf("session: dedicated ports need at least 1 load and 1 store, have %d/%d", load, store)
			return
		}
		b.cfg.Mem = memsys.Config{
			Latency:    b.cfg.Mem.Latency,
			LoadPorts:  load,
			StorePorts: store,
			Banks:      b.cfg.Mem.Banks,
			BankBusy:   b.cfg.Mem.BankBusy,
		}
	}
}

// WithMemBanks enables the banked-conflict memory model: banks must be a
// power of two, busy is the bank recovery time in cycles. busy must be
// at least 1 — a zero recovery time would make the conflict model a
// silent no-op (memsys.Config.Validate rejects that shape too); busy 1
// is the explicit "banked but conflict-free" spelling.
func WithMemBanks(banks, busy int) Option {
	return func(b *build) {
		if banks < 1 {
			b.errf("session: bank count %d < 1 (use the zero config, not WithMemBanks, for conflict-free memory)", banks)
			return
		}
		if busy < 1 {
			b.errf("session: bank busy time %d < 1 would silently disable the %d-bank conflict model (busy 1 means a bank recovers by the next cycle)", busy, banks)
			return
		}
		b.cfg.Mem.Banks, b.cfg.Mem.BankBusy = banks, busy
	}
}

// WithSpans enables Figure 9 execution-profile capture into
// Report.Spans (a built-in SpanRecorder observer; unlike WithObserver
// the captured spans are part of the memoized Report).
func WithSpans() Option {
	return func(b *build) { b.cfg.RecordSpans = true }
}

// WithObserver attaches streaming run observers (progress, thread
// switches, spans). Observation is a side effect, so a spec carrying
// observers is never served from the session's memo cache — every Run
// simulates.
func WithObserver(obs ...core.Observer) Option {
	return func(b *build) {
		for _, o := range obs {
			if o == nil {
				b.errf("session: nil observer")
				return
			}
		}
		b.observers = append(b.observers, obs...)
	}
}

// WithProgressStride sets the simulated-cycle interval between
// Observer.Progress events; 0 selects core.DefaultProgressStride.
func WithProgressStride(cycles core.Cycle) Option {
	return func(b *build) {
		if cycles < 0 {
			b.errf("session: negative progress stride %d", cycles)
			return
		}
		b.cfg.ProgressStride = cycles
	}
}

// WithMaxCycles bounds the run to the given cycle count (a safety stop;
// 0 disables).
func WithMaxCycles(n core.Cycle) Option {
	return func(b *build) {
		if n < 0 {
			b.errf("session: negative cycle bound %d", n)
			return
		}
		b.stop.MaxCycles = n
	}
}

// WithMaxThread0Insts stops the run once thread 0 has dispatched n
// dynamic instructions — the partial reference runs of the Section 4.1
// speedup formula. 0 disables.
func WithMaxThread0Insts(n int64) Option {
	return func(b *build) {
		if n < 0 {
			b.errf("session: negative instruction bound %d", n)
			return
		}
		b.stop.MaxThread0Insts = n
	}
}

// plan is a validated, runnable form of a RunSpec.
type plan struct {
	cfg  core.Config
	stop core.Stop
	// memoizable is false when the run carries observers — observation
	// is a side effect a cache hit would skip.
	memoizable bool
	// Policy identity for the memo key (see build).
	policyName string
	policyInst sched.Policy
}

// prepare applies the options, runs every validation layer, and builds
// the memo key. All diagnostics are joined so a caller sees the full
// list at once.
func (s RunSpec) prepare() (plan, error) {
	b := build{cfg: core.DefaultConfig()}
	for _, opt := range s.opts {
		if opt == nil {
			b.errf("session: nil option")
			continue
		}
		opt(&b)
	}

	switch s.mode {
	case ModeSolo:
		if len(s.workloads) != 1 || s.workloads[0] == nil {
			b.errf("session: solo mode needs exactly one workload")
		}
	case ModeGroup:
		if len(s.workloads) == 0 || s.workloads[0] == nil {
			b.errf("session: group mode needs a primary workload")
		}
		for i, w := range s.workloads[1:] {
			if w == nil {
				b.errf("session: group mode: companion %d is nil", i)
			}
		}
		if !b.contextsSet {
			b.cfg.Contexts = len(s.workloads)
		} else if b.cfg.Contexts != len(s.workloads) {
			b.errf("session: group mode: %d contexts for %d programs (leave WithContexts unset to default)",
				b.cfg.Contexts, len(s.workloads))
		}
		b.stop.Thread0Complete = true
	case ModeQueue:
		if len(s.workloads) == 0 {
			b.errf("session: queue mode needs at least one workload")
		}
		for i, w := range s.workloads {
			if w == nil {
				b.errf("session: queue mode: workload %d is nil", i)
			}
		}
	case ModeCompiled:
		if s.compiled == nil {
			b.errf("session: compiled mode needs a compiled kernel")
		}
	default:
		b.errf("session: spec has no mode; build it with Solo, Group, Queue or Compiled")
	}

	// Normalize before validating and keying: a defaulted shape and its
	// explicit arch.ConvexC3400() spelling are the same machine, so they
	// must share a memo entry.
	b.cfg = b.cfg.Normalized()
	if len(b.errs) == 0 {
		if err := b.cfg.Validate(); err != nil {
			b.errs = append(b.errs, err)
		}
	}
	if len(b.errs) > 0 {
		return plan{}, errors.Join(b.errs...)
	}

	b.cfg.Observers = b.observers
	return plan{
		cfg:        b.cfg,
		stop:       b.stop,
		memoizable: len(b.observers) == 0,
		policyName: b.policyName,
		policyInst: b.policyInst,
	}, nil
}

// memoKey canonically encodes everything a run's Report depends on. It
// is computed lazily — only when a memoizing session actually consults
// the cache — so the memo-less fast path pays nothing for it.
// Workloads, compiled kernels and custom policy instances are
// identified by the session's identity registry (idOf), which retains
// the artifact, so a recycled allocation can never collide with a
// cached key: two specs share a simulation only when they share the
// built artifacts — exactly the invariant the experiment Env maintains.
func (s RunSpec) memoKey(p *plan, idOf func(any) uint64) string {
	// Hand-rolled encoding: the key is computed once per memoized Run
	// and the reflective fmt path dominated the cache-hit profile. Any
	// injective encoding works — the cache is in-memory only.
	b := make([]byte, 0, 256)
	b = append(b, "mode="...)
	b = appendNum(b, int64(s.mode))
	b = append(b, "|ws="...)
	for _, w := range s.workloads {
		b = appendNum(b, int64(idOf(w)))
	}
	if s.compiled != nil {
		b = append(b, "|compiled="...)
		b = appendNum(b, int64(idOf(s.compiled)))
		b = append(b, "|sched="...)
		for _, inv := range s.schedule {
			b = appendNum(b, int64(inv.Unit))
			b = append(b, ':')
			b = appendNum(b, inv.N)
		}
	}
	b = append(b, "|policy="...)
	switch {
	case p.policyName != "":
		b = append(b, "name:"...)
		b = append(b, p.policyName...)
	case p.policyInst != nil:
		b = append(b, "inst:"...)
		b = appendNum(b, int64(idOf(p.policyInst)))
	default:
		b = append(b, "default"...)
	}
	b = appendMachineKey(b, p)
	return string(b)
}

// provenanceKey encodes the spec's instruction supply — mode, workload
// identities, compiled kernel and schedule — and nothing of the machine
// shape. RunAll groups memo-missed points by this key: points that
// share it replay the same dynamic streams, so simulating them as
// lockstep batch lanes keeps the shared predecoded trace hot across
// the whole group. The key orders nothing and caches nothing; it only
// groups.
func (s RunSpec) provenanceKey(idOf func(any) uint64) string {
	b := make([]byte, 0, 64)
	b = append(b, "mode="...)
	b = appendNum(b, int64(s.mode))
	b = append(b, "|ws="...)
	for _, w := range s.workloads {
		b = appendNum(b, int64(idOf(w)))
	}
	if s.compiled != nil {
		b = append(b, "|compiled="...)
		b = appendNum(b, int64(idOf(s.compiled)))
		b = append(b, "|sched="...)
		for _, inv := range s.schedule {
			b = appendNum(b, int64(inv.Unit))
			b = append(b, ':')
			b = appendNum(b, inv.N)
		}
	}
	return string(b)
}

// persistKey canonically encodes the spec for the on-disk result store,
// where keys must be stable across processes: run artifacts are
// identified by build provenance (catalog program, scale, compiler
// options) instead of in-memory identity. ok is false when some
// artifact has no such stable identity — user-compiled kernels, custom
// policy instances, or hand-assembled workloads — in which case the run
// is memoized in memory only, never persisted.
func (s RunSpec) persistKey(p *plan) (string, bool) {
	if s.compiled != nil || p.policyInst != nil {
		return "", false
	}
	b := make([]byte, 0, 320)
	b = append(b, "mode="...)
	b = appendNum(b, int64(s.mode))
	b = append(b, "|ws="...)
	for _, w := range s.workloads {
		id, ok := stableWorkloadID(w)
		if !ok {
			return "", false
		}
		b = append(b, id...)
		b = append(b, ',')
	}
	b = append(b, "|policy="...)
	if p.policyName != "" {
		b = append(b, "name:"...)
		b = append(b, p.policyName...)
	} else {
		b = append(b, "default"...)
	}
	b = appendMachineKey(b, p)
	return string(b), true
}

// stableWorkloadID derives a process-stable content identity for a
// workload: the registered catalog spec it was built from, the build
// inputs (scale, compiler options), and a fingerprint of the built
// artifact's dynamic profile. Hand-assembled workloads — a Spec not in
// the catalog, or none at all — have no such identity.
//
// The fingerprint hashes the workload's full dynamic statistics
// (including the per-opcode histogram), so editing a benchmark kernel,
// the compiler, or the calibration planner changes the key and retires
// every stored result built from the old code — a store directory that
// outlives a source change misses instead of serving stale Reports.
// (Changes to the cycle engine itself alter Reports without altering
// workloads; those must bump store.Schema, and the golden CI gate is
// what detects them.)
func stableWorkloadID(w *workload.Workload) (string, bool) {
	if w == nil || w.Spec == nil || w.Trace == nil || workload.ByName(w.Spec.Name) != w.Spec {
		return "", false
	}
	id := w.Spec.Name + "@" + strconv.FormatFloat(w.Scale, 'g', -1, 64)
	if w.Opts.NoHoist {
		id += "+nohoist"
	}
	if rf := w.Opts.RegFile.BuildKey(); rf != arch.DefaultRegFile().BuildKey() {
		id += fmt.Sprintf("+rf%d.%d.%d", rf.VRegs, rf.VLen, rf.VRegsPerBank)
	}
	return id + "+fp" + strconv.FormatUint(statsFingerprint(&w.Stats), 16), true
}

// statsFingerprint hashes a dynamic profile (FNV-1a over every counter,
// including the per-opcode histogram). It is a pure function of the
// workload's content, so it is identical across processes and build
// orders.
func statsFingerprint(st *prog.Stats) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v int64) {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime64
		}
	}
	mix(st.ScalarInsts)
	mix(st.VectorInsts)
	mix(st.VectorOps)
	mix(st.VectorArithElems)
	mix(st.FU2OnlyArithElems)
	mix(st.VectorMemElems)
	mix(st.ScalarMemRefs)
	mix(st.VectorLoadElems)
	mix(st.VectorStoreElems)
	for _, n := range st.PerOp {
		mix(n)
	}
	return h
}

// appendNum is the keys' shared integer encoding.
func appendNum(b []byte, v int64) []byte {
	b = strconv.AppendInt(b, v, 10)
	return append(b, ',')
}

// appendMachineKey encodes the machine-shape and stop-rule dimensions a
// run's Report depends on — contexts, the full register-file
// organization (arch/VLen dims), FU mix, latency tables, memory system,
// flags, issue width and stop bounds. The memo key and the persist key
// share this tail; they differ only in how run artifacts are named.
func appendMachineKey(b []byte, p *plan) []byte {
	b = append(b, "|ctx="...)
	b = appendNum(b, int64(p.cfg.Contexts))
	b = append(b, "|rf="...)
	rf := &p.cfg.RegFile
	b = appendNum(b, int64(rf.VRegs))
	b = appendNum(b, int64(rf.VLen))
	b = appendNum(b, int64(rf.VRegsPerBank))
	b = appendNum(b, int64(rf.BankReadPorts))
	b = appendNum(b, int64(rf.BankWritePorts))
	if rf.PartitionPerContext {
		b = append(b, 'p')
	}
	b = append(b, "|fu="...)
	b = appendNum(b, int64(p.cfg.RestrictedFUs))
	b = appendNum(b, int64(p.cfg.GeneralFUs))
	b = appendNum(b, int64(p.cfg.MaxContexts))
	b = append(b, "|lat="...)
	lat := &p.cfg.Lat
	for _, tab := range [][]int{lat.ScalarInt[:], lat.ScalarFP[:], lat.Vector[:]} {
		for _, v := range tab {
			b = appendNum(b, int64(v))
		}
		b = append(b, ';')
	}
	b = appendNum(b, int64(lat.VectorStartup))
	b = appendNum(b, int64(lat.ReadXbar))
	b = appendNum(b, int64(lat.WriteXbar))
	b = append(b, "|mem="...)
	mem := &p.cfg.Mem
	b = appendNum(b, int64(mem.Latency))
	b = appendNum(b, int64(mem.ScalarLatency))
	b = appendNum(b, int64(mem.GeneralPorts))
	b = appendNum(b, int64(mem.LoadPorts))
	b = appendNum(b, int64(mem.StorePorts))
	b = appendNum(b, int64(mem.Banks))
	b = appendNum(b, int64(mem.BankBusy))
	b = append(b, "|flags="...)
	for _, f := range [...]bool{p.cfg.DualScalar, p.cfg.RecordSpans, p.cfg.DisableFastForward, p.stop.Thread0Complete} {
		if f {
			b = append(b, 't')
		} else {
			b = append(b, 'f')
		}
	}
	b = append(b, "|iw="...)
	b = appendNum(b, int64(p.cfg.IssueWidth))
	b = append(b, "|stop="...)
	b = appendNum(b, p.stop.MaxThread0Insts)
	b = appendNum(b, p.stop.MaxCycles)
	return b
}
