package session

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"mtvec/internal/core"
	"mtvec/internal/sched"
	"mtvec/internal/stats"
	"mtvec/internal/store"
	"mtvec/internal/vcomp"
	"mtvec/internal/workload"
)

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func reportJSON(t *testing.T, rep *stats.Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStoreSecondSessionZeroSimulations is the tentpole acceptance
// check at session level: a fresh session (modelling a new process)
// over a warm store reproduces byte-identical Reports with zero
// simulations.
func TestStoreSecondSessionZeroSimulations(t *testing.T) {
	w := testWorkload(t)
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := []RunSpec{
		Solo(w),
		Solo(w, WithMemLatency(80)),
		Group(w, []*workload.Workload{w}, WithMemLatency(80)),
		Queue([]*workload.Workload{w, w}, WithContexts(2)),
		Solo(w, WithSpans()),
	}

	s1 := New(WithStore(st1))
	var want []string
	for _, spec := range specs {
		rep, src, err := s1.RunTracked(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if src != SourceSim {
			t.Fatalf("cold run source = %v, want sim", src)
		}
		want = append(want, reportJSON(t, rep))
	}
	if s1.Simulations() != int64(len(specs)) {
		t.Fatalf("cold session simulations = %d, want %d", s1.Simulations(), len(specs))
	}

	// New session, new store handle: nothing in memory survives.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(WithStore(st2))
	for i, spec := range specs {
		rep, src, err := s2.RunTracked(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if src != SourceStore {
			t.Fatalf("spec %d: warm run source = %v, want store", i, src)
		}
		if got := reportJSON(t, rep); got != want[i] {
			t.Fatalf("spec %d: warm report differs from cold:\ngot  %s\nwant %s", i, got, want[i])
		}
	}
	if s2.Simulations() != 0 {
		t.Fatalf("warm session simulations = %d, want 0", s2.Simulations())
	}
	if s2.StoreHits() != int64(len(specs)) {
		t.Fatalf("warm session store hits = %d, want %d", s2.StoreHits(), len(specs))
	}
}

// TestStoreKeyStability pins the persist key's shape: a rebuilt (but
// identical) workload in a different process must map to the same key,
// while every content dimension must change it.
func TestStoreKeyStability(t *testing.T) {
	w := testWorkload(t)
	// A second build of the same (spec, scale, opts) — a new object, as
	// a fresh process would hold.
	w2, err := workload.ByShort("tf").Build(testScale)
	if err != nil {
		t.Fatal(err)
	}
	pkey := func(spec RunSpec) string {
		t.Helper()
		p, err := spec.prepare()
		if err != nil {
			t.Fatal(err)
		}
		key, ok := spec.persistKey(&p)
		if !ok {
			t.Fatal("spec unexpectedly unpersistable")
		}
		return key
	}
	if pkey(Solo(w)) != pkey(Solo(w2)) {
		t.Fatal("identical rebuilt workloads keyed differently")
	}
	keys := map[string]string{
		"base":    pkey(Solo(w)),
		"latency": pkey(Solo(w, WithMemLatency(80))),
		"policy":  pkey(Solo(w, WithPolicy("roundrobin"))),
		"vlen":    pkey(Solo(w, WithVLen(64))),
		"banks":   pkey(Solo(w, WithMemBanks(64, 8))),
		"spans":   pkey(Solo(w, WithSpans())),
		"queue":   pkey(Queue([]*workload.Workload{w})),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("specs %q and %q share persist key %s", name, prev, k)
		}
		seen[k] = name
	}

	// Different build provenance must not share a key.
	wn, err := workload.ByShort("tf").BuildOpts(testScale, vcomp.Options{NoHoist: true})
	if err != nil {
		t.Fatal(err)
	}
	if pkey(Solo(w)) == pkey(Solo(wn)) {
		t.Fatal("hoisting and no-hoist builds share a persist key")
	}
	wscale, err := workload.ByShort("tf").Build(testScale / 2)
	if err != nil {
		t.Fatal(err)
	}
	if pkey(Solo(w)) == pkey(Solo(wscale)) {
		t.Fatal("different scales share a persist key")
	}
}

// TestStoreUnstableSpecsNotPersisted: artifacts without content
// identity (hand-rolled workloads, custom policies) must bypass the
// store entirely.
func TestStoreUnstableSpecsNotPersisted(t *testing.T) {
	w := testWorkload(t)
	handRolled := &workload.Workload{Spec: &workload.Spec{Name: "custom"}, Scale: 1, Trace: w.Trace}

	for name, spec := range map[string]RunSpec{
		"hand-rolled workload": Solo(handRolled),
		"custom policy":        Solo(w, WithPolicyInstance(sched.ByName("unfair").Clone())),
	} {
		p, err := spec.prepare()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if key, ok := spec.persistKey(&p); ok {
			t.Errorf("%s: unexpectedly persistable as %q", name, key)
		}
	}

	// And running one against a store leaves the store empty.
	st := openStore(t)
	s := New(WithStore(st))
	if _, src, err := s.RunTracked(context.Background(), Solo(handRolled)); err != nil || src != SourceSim {
		t.Fatalf("hand-rolled run: src=%v err=%v", src, err)
	}
	if st.Stats().Writes != 0 {
		t.Fatalf("unstable spec written to store: %+v", st.Stats())
	}
}

// TestStoreServesObserverSpecs: a persisted result answers an
// observer-carrying spec without simulating (so no events fire), while
// a cold store still simulates it with events.
func TestStoreServesObserverSpecs(t *testing.T) {
	w := testWorkload(t)
	st := openStore(t)
	s := New(WithStore(st))

	var events int64
	obs := core.ProgressFunc(func(now core.Cycle, insts int64) { events++ })
	spec := Solo(w, WithObserver(obs), WithProgressStride(64))

	rep1, src, err := s.RunTracked(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceSim {
		t.Fatalf("cold observer run source = %v, want sim", src)
	}
	if events == 0 {
		t.Fatal("cold observer run emitted no events")
	}

	// Same spec again: the write-through result now answers from disk,
	// and the observer sees nothing.
	events = 0
	rep2, src, err := s.RunTracked(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceStore {
		t.Fatalf("warm observer run source = %v, want store", src)
	}
	if events != 0 {
		t.Fatalf("store-served run emitted %d events", events)
	}
	if reportJSON(t, rep1) != reportJSON(t, rep2) {
		t.Fatal("store-served observer report differs")
	}
}

// TestStoreForgetOnCancel: a cancelled run must leave nothing on disk.
func TestStoreForgetOnCancel(t *testing.T) {
	w := testWorkload(t)
	st := openStore(t)
	s := New(WithStore(st))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.RunTracked(ctx, Solo(w)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if stats := st.Stats(); stats.Writes != 0 {
		t.Fatalf("cancelled run persisted: %+v", stats)
	}
	// The key is free: a live context simulates and persists.
	if _, src, err := s.RunTracked(context.Background(), Solo(w)); err != nil || src != SourceSim {
		t.Fatalf("post-cancel run: src=%v err=%v", src, err)
	}
	if stats := st.Stats(); stats.Writes != 1 {
		t.Fatalf("post-cancel run not persisted: %+v", stats)
	}
}

// TestCachedNeverSimulates covers the non-blocking lookup used by the
// serving layer.
func TestCachedNeverSimulates(t *testing.T) {
	w := testWorkload(t)
	st := openStore(t)
	s := New(WithStore(st))
	spec := Solo(w)

	if _, _, ok := s.Cached(spec); ok {
		t.Fatal("cold Cached hit")
	}
	if s.Simulations() != 0 {
		t.Fatal("Cached simulated")
	}
	if _, err := s.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	rep, src, ok := s.Cached(spec)
	if !ok || rep == nil {
		t.Fatal("warm Cached miss")
	}
	if src != SourceMemo {
		t.Fatalf("Cached source = %v, want memo", src)
	}
	// A fresh session over the same store answers from disk.
	s2 := New(WithStore(st))
	if _, src, ok := s2.Cached(spec); !ok || src != SourceStore {
		t.Fatalf("fresh-session Cached: ok=%v src=%v, want store hit", ok, src)
	}
	// Observer specs are served too — Cached never runs, so no event
	// obligations arise.
	if _, _, ok := s2.Cached(Solo(w, WithObserver(&core.SwitchCounter{}))); !ok {
		t.Fatal("Cached refused an observer spec")
	}
	if s2.Simulations() != 0 {
		t.Fatal("Cached simulated in fresh session")
	}
}

// TestBankNoOpRejectedThroughSession proves the conflict model can
// never be silently disabled through the option path: the joined
// diagnostic names the hole.
func TestBankNoOpRejectedThroughSession(t *testing.T) {
	w := testWorkload(t)
	err := Solo(w, WithMemBanks(64, 0)).Validate()
	if err == nil {
		t.Fatal("WithMemBanks(64, 0) validated")
	}
	// And the raw-config route (WithConfig) is caught by memsys.Validate.
	cfg := core.DefaultConfig()
	cfg.Mem.Banks = 64
	if err := Solo(w, WithConfig(cfg)).Validate(); err == nil {
		t.Fatal("WithConfig with BankBusy 0 validated")
	}
}

// TestPeerBackendReportsSourcePeer: a session over a Tiered backend
// whose record lives only on a peer answers with SourcePeer, counts it
// in PeerHits, and the peer hit warm-starts the local tier.
func TestPeerBackendReportsSourcePeer(t *testing.T) {
	w := testWorkload(t)
	spec := Solo(w)

	// Warm a "remote worker's" store.
	remote := openStore(t)
	warm := New(WithStore(remote))
	want, err := warm.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(store.RecordHandler(remote))
	defer srv.Close()
	peer, err := store.NewHTTPPeer(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	local := openStore(t)
	s := New(WithStore(store.NewTiered(local, peer)))

	rep, src, err := s.RunTracked(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourcePeer {
		t.Fatalf("source = %v, want peer", src)
	}
	if reportJSON(t, rep) != reportJSON(t, want) {
		t.Fatal("peer-served report differs")
	}
	if s.Simulations() != 0 {
		t.Fatalf("simulations = %d, want 0", s.Simulations())
	}
	if s.StoreHits() != 1 || s.PeerHits() != 1 {
		t.Fatalf("store/peer hits = %d/%d, want 1/1", s.StoreHits(), s.PeerHits())
	}
	// Written back: a session over just the local tier now hits locally.
	s2 := New(WithStore(local))
	if _, src, err := s2.RunTracked(context.Background(), spec); err != nil || src != SourceStore {
		t.Fatalf("after write-back: src=%v err=%v, want store", src, err)
	}
}

// TestPersistKeyPublic pins the public sharding handle the cluster
// coordinator uses: stable specs expose a key, unstable ones do not,
// and the key matches the internal one the store tier uses.
func TestPersistKeyPublic(t *testing.T) {
	w := testWorkload(t)
	s := New()
	key, ok := s.PersistKey(Solo(w))
	if !ok || key == "" {
		t.Fatalf("PersistKey = (%q, %v), want a stable key", key, ok)
	}
	spec := Solo(w)
	p, err := spec.prepare()
	if err != nil {
		t.Fatal(err)
	}
	internal, _ := spec.persistKey(&p)
	if key != internal {
		t.Fatalf("public key %q != internal key %q", key, internal)
	}
	handRolled := &workload.Workload{Spec: &workload.Spec{Name: "custom"}, Scale: 1, Trace: w.Trace}
	if _, ok := s.PersistKey(Solo(handRolled)); ok {
		t.Fatal("unstable spec reported a persist key")
	}
	if _, ok := s.PersistKey(RunSpec{}); ok {
		t.Fatal("invalid spec reported a persist key")
	}
}

// TestSetPacePadsGatedSlots pins the capacity-emulation knob: with a
// pace set, one simulation takes at least the pace window, and results
// are unchanged.
func TestSetPacePadsGatedSlots(t *testing.T) {
	w := testWorkload(t)
	base, err := New().Run(context.Background(), Solo(w))
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.SetPace(50 * time.Millisecond)
	if s.Pace() != 50*time.Millisecond {
		t.Fatalf("Pace = %v", s.Pace())
	}
	start := time.Now()
	rep, err := s.Run(context.Background(), Solo(w))
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Fatalf("paced run took %v, want >= 50ms", took)
	}
	if reportJSON(t, rep) != reportJSON(t, base) {
		t.Fatal("pacing changed the report")
	}
	// A cancelled context cuts the pace sleep short rather than hanging.
	s.SetPace(time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Run(ctx, Solo(w, WithMemLatency(80)))
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pace sleep ignored cancellation")
	}
	s.SetPace(-1) // negative clamps to disabled
	if s.Pace() != 0 {
		t.Fatalf("negative pace not clamped: %v", s.Pace())
	}
}
