package session

import (
	"context"
	"sync"
	"time"

	"mtvec/internal/core"
	"mtvec/internal/runner"
	"mtvec/internal/stats"
)

// Lockstep batching: RunAll groups memo-and-store-missed points that
// share one instruction supply (same workloads, same compiled kernel
// and schedule — see RunSpec.provenanceKey) into core.Batch lanes of up
// to maxBatchLanes, so a machine-parameter sweep walks its shared
// predecoded trace once per window instead of once per point. Batching
// is a scheduling detail, never a semantic one: each lane is a complete
// independent Machine, so per-lane Reports are byte-identical to solo
// runs (proved by internal/core's differential harness), and every
// point still resolves through the same memo singleflight, so callers
// outside RunAll share results exactly as before.
//
// Batching is bypassed per point when it could change semantics or
// cannot help: observer-carrying specs (never memoized), memo-less
// sessions, provenance groups with a single distinct point, and
// sessions with SetBatching(false).

// maxBatchLanes bounds one core.Batch: wide enough to amortize the
// trace walk, narrow enough that all lanes' machine state stays
// cache-resident alongside the trace window.
const maxBatchLanes = 8

// WithoutBatching disables RunAll's lockstep batching on a new session:
// every point dispatches through the per-point path. Results are
// identical either way; the knob exists for benchmarking the batch
// engine against per-point dispatch and as an escape hatch.
func WithoutBatching() SessionOption {
	return func(s *Session) { s.SetBatching(false) }
}

// SetBatching toggles RunAll's lockstep batching (on by default).
// Results never depend on the setting. Safe to call concurrently with
// runs; in-flight RunAll calls keep the mode they started with.
func (s *Session) SetBatching(on bool) { s.nobatch.Store(!on) }

// Batching reports whether RunAll lockstep batching is enabled.
func (s *Session) Batching() bool { return !s.nobatch.Load() }

// Result is one RunAllTracked point: the Report (nil on error), which
// cache tier answered, the wall time the point took inside RunAll —
// for a batched point this is the time until its whole batch resolved —
// and the point's error, if any.
type Result struct {
	Report  *stats.Report
	Source  Source
	Elapsed time.Duration
	Err     error
}

// batchGroup is one chunk of up to maxBatchLanes distinct sweep points
// sharing an instruction supply. Whichever member's memo closure runs
// first simulates the whole chunk (under one gate slot); the others
// read their lane's result. once gives every reader a happens-before
// edge on the filled slices.
type batchGroup struct {
	once  sync.Once
	specs []RunSpec
	plans []plan

	reps []*stats.Report
	srcs []Source
	errs []error
}

func (g *batchGroup) run(ctx context.Context, s *Session) {
	g.once.Do(func() { s.simulateBatch(ctx, g) })
}

// simulateBatch resolves every lane of the group: store hits are served
// from disk, the remaining lanes simulate in one core.Batch under a
// single gate slot, and fresh results are written through to the store.
// Unlike the per-point path, batched lanes skip the store's
// cross-process lock-file singleflight — two processes sweeping the
// same cold points may both simulate them (both write the same bytes);
// the within-process memo singleflight is unaffected.
func (s *Session) simulateBatch(ctx context.Context, g *batchGroup) {
	n := len(g.specs)
	g.reps = make([]*stats.Report, n)
	g.srcs = make([]Source, n)
	g.errs = make([]error, n)

	st := s.backend()
	keys := make([]string, n)
	var lanes []int // lane indices that must simulate
	for i := range g.specs {
		g.srcs[i] = SourceSim
		if st != nil {
			if key, ok := g.specs[i].persistKey(&g.plans[i]); ok {
				keys[i] = key
				if rep, tier := st.Get(key); tier.Hit() {
					g.reps[i], g.srcs[i] = rep, s.storeSource(tier)
					continue
				}
			}
		}
		lanes = append(lanes, i)
	}
	if len(lanes) == 0 {
		return
	}
	fail := func(err error) {
		for _, i := range lanes {
			g.errs[i] = err
		}
	}
	if err := ctx.Err(); err != nil {
		fail(err)
		return
	}
	s.gate.Do(func() {
		// Re-check after possibly parking on the gate.
		if err := ctx.Err(); err != nil {
			fail(err)
			return
		}
		start := time.Now()
		defer s.paceSlot(ctx, start, len(lanes))
		cfgs := make([]core.Config, len(lanes))
		stops := make([]core.Stop, len(lanes))
		for k, i := range lanes {
			cfgs[k] = g.plans[i].cfg
			stops[k] = g.plans[i].stop
		}
		b, err := core.NewBatch(cfgs)
		if err != nil {
			fail(err)
			return
		}
		// Compiled groups share kernel and schedule (that is the group
		// key), so synthesize and predecode the trace once for every
		// lane instead of once per lane.
		spec0 := g.specs[lanes[0]]
		if spec0.mode == ModeCompiled {
			tr, err := spec0.compiled.Trace(spec0.schedule)
			if err != nil {
				fail(err)
				return
			}
			for k := range lanes {
				if err := b.Machine(k).SetThreadStream(0, spec0.compiled.Prog.Name, tr.Stream()); err != nil {
					fail(err)
					return
				}
			}
		} else {
			bad := false
			for k, i := range lanes {
				if err := attachThreads(b.Machine(k), g.specs[i], g.plans[i].cfg); err != nil {
					g.errs[i] = err
					bad = true
				}
			}
			if bad {
				// Rare (a lane's thread attachment failed): the batch
				// can no longer run as built, so fall back to solo
				// machines for the healthy lanes, inside this slot.
				for _, i := range lanes {
					if g.errs[i] != nil {
						continue
					}
					m, err := core.New(g.plans[i].cfg)
					if err == nil {
						err = attachThreads(m, g.specs[i], g.plans[i].cfg)
					}
					if err != nil {
						g.errs[i] = err
						continue
					}
					s.sims.Add(1)
					g.reps[i], g.errs[i] = m.RunContext(ctx, g.plans[i].stop)
				}
				return
			}
		}
		s.sims.Add(int64(len(lanes)))
		reps, errs := b.RunContext(ctx, stops)
		for k, i := range lanes {
			g.reps[i], g.errs[i] = reps[k], errs[k]
		}
	})
	if st != nil {
		for _, i := range lanes {
			if keys[i] != "" && g.errs[i] == nil && g.reps[i] != nil {
				// Write-through is best-effort, like the per-point path.
				_ = st.Put(keys[i], g.reps[i])
			}
		}
	}
}

// member routes one RunAll index to its batch group lane.
type member struct {
	g    *batchGroup
	lane int
}

// planBatches partitions the batchable points (memoizable, prepared)
// into groups by shared instruction-supply provenance, deduplicates
// identical points within a group, and chunks each group into batches
// of up to maxBatchLanes distinct lanes. Chunks of one point gain
// nothing from the batch engine and stay on the per-point path.
// Assignment is a pure function of the input order, so which points
// batch together — and therefore every result — is deterministic.
func (s *Session) planBatches(specs []RunSpec, plans []plan, ok []bool) []*member {
	members := make([]*member, len(specs))
	type provGroup struct {
		idxs []int          // first occurrence of each distinct point
		dups map[string]int // memoKey -> position in idxs
	}
	byProv := make(map[string]*provGroup)
	var order []string
	memoKeys := make([]string, len(specs))
	for i := range specs {
		if !ok[i] || !plans[i].memoizable {
			continue
		}
		pk := specs[i].provenanceKey(s.idOf)
		pg := byProv[pk]
		if pg == nil {
			pg = &provGroup{dups: make(map[string]int)}
			byProv[pk] = pg
			order = append(order, pk)
		}
		mk := specs[i].memoKey(&plans[i], s.idOf)
		memoKeys[i] = mk
		if pos, seen := pg.dups[mk]; seen {
			// Identical point requested twice: both ride the same lane
			// through the memo singleflight.
			members[i] = &member{lane: pos} // group filled below
			continue
		}
		pg.dups[mk] = len(pg.idxs)
		pg.idxs = append(pg.idxs, i)
	}
	for _, pk := range order {
		pg := byProv[pk]
		for base := 0; base < len(pg.idxs); base += maxBatchLanes {
			end := base + maxBatchLanes
			if end > len(pg.idxs) {
				end = len(pg.idxs)
			}
			chunk := pg.idxs[base:end]
			if len(chunk) < 2 {
				continue // singleton: per-point path
			}
			g := &batchGroup{
				specs: make([]RunSpec, len(chunk)),
				plans: make([]plan, len(chunk)),
			}
			for lane, i := range chunk {
				g.specs[lane] = specs[i]
				g.plans[lane] = plans[i]
				members[i] = &member{g: g, lane: lane}
			}
		}
	}
	// Point duplicates at their originals' groups; drop any that landed
	// on a singleton (no group) back to the per-point path.
	for i := range members {
		m := members[i]
		if m == nil || m.g != nil {
			continue
		}
		pk := specs[i].provenanceKey(s.idOf)
		pg := byProv[pk]
		orig := pg.idxs[pg.dups[memoKeys[i]]]
		if om := members[orig]; om != nil && om.g != nil {
			members[i] = &member{g: om.g, lane: om.lane}
		} else {
			members[i] = nil
		}
	}
	return members
}

// RunAllTracked is RunAll plus per-point metadata: for each spec, the
// Report, the cache tier that answered, the point's wall time inside
// the call, and its error. Results are pinned to input order no matter
// how the points are scheduled, batched, or cancelled. Memo-and-store-
// missed points sharing an instruction supply are simulated in lockstep
// batches of up to 8 lanes (see this file's package comment); every
// other point takes the same path as Session.RunTracked.
func (s *Session) RunAllTracked(ctx context.Context, specs ...RunSpec) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(specs)
	results := make([]Result, n)

	var members []*member
	plans := make([]plan, n)
	perr := make([]error, n)
	if s.memo && s.Batching() {
		ok := make([]bool, n)
		for i := range specs {
			plans[i], perr[i] = specs[i].prepare()
			ok[i] = perr[i] == nil
		}
		members = s.planBatches(specs, plans, ok)
	} else {
		members = make([]*member, n)
		for i := range specs {
			plans[i], perr[i] = specs[i].prepare()
		}
	}

	// The pool only orchestrates: leaf simulations admit through the
	// session's gate, so width beyond Jobs() just keeps gate slots fed
	// while some tasks park on shared singleflight entries.
	pool := runner.New(4 * s.Jobs())
	_ = pool.Map(n, func(i int) error {
		start := time.Now()
		defer func() { results[i].Elapsed = time.Since(start) }()
		if perr[i] != nil {
			results[i].Err = perr[i]
			return nil
		}
		if m := members[i]; m != nil {
			src := SourceMemo // overwritten iff this caller computes
			rep, err := s.runs.DoContext(ctx, specs[i].memoKey(&plans[i], s.idOf), func() (*stats.Report, error) {
				m.g.run(ctx, s)
				src = m.g.srcs[m.lane]
				return m.g.reps[m.lane], m.g.errs[m.lane]
			})
			results[i].Report, results[i].Source, results[i].Err = rep, src, err
			return nil
		}
		rep, src, err := s.RunTracked(ctx, specs[i])
		results[i].Report, results[i].Source, results[i].Err = rep, src, err
		return nil
	})
	return results
}
