package session

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mtvec/internal/core"
	"mtvec/internal/runner"
	"mtvec/internal/stats"
	"mtvec/internal/store"
)

// Lockstep batching: RunAll groups memo-and-store-missed points that
// share one instruction supply (same workloads, same compiled kernel
// and schedule — see RunSpec.provenanceKey) into core.Batch lanes, so a
// machine-parameter sweep walks its shared predecoded trace once per
// window instead of once per point, and advances its lanes on parallel
// goroutines borrowed from the session gate. Batching is a scheduling
// detail, never a semantic one: each lane is a complete independent
// Machine, so per-lane Reports are byte-identical to solo runs (proved
// by internal/core's differential harness), and every point still
// resolves through the same memo singleflight, so callers outside
// RunAll share results exactly as before.
//
// Batching is bypassed per point when it could change semantics or
// cannot help: observer-carrying specs (never memoized), memo-less
// sessions, provenance groups with a single distinct point, and
// sessions with SetBatching(false).
//
// # Adaptive batch shaping
//
// How many lanes one batch carries (its width) and how far each lane
// advances per lockstep round (its window) are sized per provenance
// group by a cost model instead of fixed constants. The inputs:
//
//   - Simulated cycles per instruction. Scalar-heavy supplies (~1
//     cycle/inst) are decode-dominated: the shared trace walk is most
//     of the run, so wide batches amortize best. Long-vector supplies
//     (tens of cycles/inst) are simulation-dominated: amortization is
//     marginal, so batches stay narrow and lean on parallel lanes
//     instead. The session estimates CPI up front from the supply's
//     static composition (prog.Stats.IdealCycles for workloads, the
//     compiler's exact invocation counts for kernels) and refines it
//     with measured cycles/instructions from every batch that resolves.
//   - Available gate slots. A batch narrower than the gate's
//     parallelism would strand free cores, so width never shapes below
//     min(Jobs, wide cap).
//   - Supply length. The window targets a fixed number of lockstep
//     rounds over the whole supply, clamped so short supplies still
//     lockstep and long supplies keep their working window cache-sized.
//
// Shaping never affects results or cache keys — width and window are
// scheduling only, and SetBatchWidth/SetBatchWindow pin them explicitly
// when measurement beats the model.

// Batch-shaping bounds. Width: wide enough to amortize the trace walk,
// narrow enough that all lanes' machine state stays cache-resident
// alongside the trace window. Window: dispatched instructions per lane
// per lockstep round.
const (
	wideBatchWidth    = 16 // supply-dominated groups (CPI <= cpiWide)
	defaultBatchWidth = 8  // mixed supplies
	narrowBatchWidth  = 4  // simulation-dominated groups (CPI >= cpiNarrow)
	maxBatchWidthCap  = 64 // SetBatchWidth validation ceiling

	minBatchWindow    = 256     // short supplies still lockstep
	maxBatchWindowCap = 1 << 20 // SetBatchWindow validation ceiling
	maxAutoWindow     = 32768   // model ceiling: ~1.5 MiB of predecoded trace
	targetRounds      = 8       // auto window aims for this many rounds per supply

	cpiWide   = 4.0  // at or below: decode-dominated, batch wide
	cpiNarrow = 24.0 // at or above: simulation-dominated, batch narrow
)

// WithoutBatching disables RunAll's lockstep batching on a new session:
// every point dispatches through the per-point path. Results are
// identical either way; the knob exists for benchmarking the batch
// engine against per-point dispatch and as an escape hatch.
func WithoutBatching() SessionOption {
	return func(s *Session) { s.SetBatching(false) }
}

// SetBatching toggles RunAll's lockstep batching (on by default).
// Results never depend on the setting. Safe to call concurrently with
// runs; in-flight RunAll calls keep the mode they started with.
func (s *Session) SetBatching(on bool) { s.nobatch.Store(!on) }

// Batching reports whether RunAll lockstep batching is enabled.
func (s *Session) Batching() bool { return !s.nobatch.Load() }

// WithBatchWidth pins the lockstep batch width (lanes per batch) on a
// new session, bypassing adaptive shaping; 0 restores the adaptive
// model. It panics on a value SetBatchWidth would reject — a
// construction-time programmer error, like an invalid regexp.
func WithBatchWidth(n int) SessionOption {
	return func(s *Session) {
		if err := s.SetBatchWidth(n); err != nil {
			panic(err)
		}
	}
}

// WithBatchWindow pins the lockstep window (dispatched instructions per
// lane per round) on a new session; 0 restores the adaptive model. It
// panics on a value SetBatchWindow would reject.
func WithBatchWindow(n int64) SessionOption {
	return func(s *Session) {
		if err := s.SetBatchWindow(n); err != nil {
			panic(err)
		}
	}
}

// SetBatchWidth pins how many lanes one lockstep batch carries: 0 (the
// default) restores adaptive shaping, 1 effectively disables batching
// (every chunk becomes a singleton on the per-point path), and values
// above the cap or below zero are rejected. Width is scheduling only:
// results and cache keys never depend on it. Safe to call concurrently
// with runs; in-flight RunAll calls keep the shape they planned with.
func (s *Session) SetBatchWidth(n int) error {
	if n < 0 || n > maxBatchWidthCap {
		return fmt.Errorf("session: batch width %d out of range [0, %d]", n, maxBatchWidthCap)
	}
	s.batchWidth.Store(int64(n))
	return nil
}

// BatchWidth returns the pinned batch width (0 = adaptive).
func (s *Session) BatchWidth() int { return int(s.batchWidth.Load()) }

// SetBatchWindow pins the lockstep window in dispatched instructions
// per lane per round: 0 (the default) restores adaptive shaping; values
// below zero or above the cap are rejected. Like width, the window is
// scheduling only — it tunes locality, never results or cache keys.
func (s *Session) SetBatchWindow(n int64) error {
	if n < 0 || n > maxBatchWindowCap {
		return fmt.Errorf("session: batch window %d out of range [0, %d]", n, int64(maxBatchWindowCap))
	}
	s.batchWindow.Store(n)
	return nil
}

// BatchWindow returns the pinned lockstep window (0 = adaptive).
func (s *Session) BatchWindow() int64 { return s.batchWindow.Load() }

// cpiTrack accumulates measured simulated cycles and dispatched
// instructions for one instruction-supply provenance.
type cpiTrack struct {
	mu     sync.Mutex
	cycles float64
	insts  float64
}

// noteCPI folds one resolved lane's measurement into the provenance's
// running estimate.
func (s *Session) noteCPI(prov string, rep *stats.Report) {
	if rep == nil || rep.Insts <= 0 || rep.Cycles <= 0 {
		return
	}
	v, _ := s.cpi.LoadOrStore(prov, &cpiTrack{})
	tr := v.(*cpiTrack)
	tr.mu.Lock()
	tr.cycles += float64(rep.Cycles)
	tr.insts += float64(rep.Insts)
	tr.mu.Unlock()
}

// measuredCPI returns the provenance's measured cycles-per-instruction,
// if any lane of it has resolved in this session.
func (s *Session) measuredCPI(prov string) (float64, bool) {
	v, ok := s.cpi.Load(prov)
	if !ok {
		return 0, false
	}
	tr := v.(*cpiTrack)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.insts <= 0 {
		return 0, false
	}
	return tr.cycles / tr.insts, true
}

// supplyEstimate returns the group's dynamic instruction count and a
// static cycles-per-instruction prior, both possibly 0 (unknown). For
// workload modes both come from the recorded prog.Stats (IdealCycles is
// the paper's resource-bound lower bound, so the prior classifies the
// regime, not the exact cost); for compiled kernels the compiler's
// exact invocation counts give the instruction total and vector
// ops/instruction stands in for cycle weight.
func supplyEstimate(spec *RunSpec) (insts int64, cpi float64) {
	if spec.mode == ModeCompiled {
		if spec.compiled == nil {
			return 0, 0
		}
		var scalar, vec, vecOps int64
		for _, inv := range spec.schedule {
			sc, v, ops := spec.compiled.EstimateInvocation(inv.Unit, inv.N)
			scalar += sc
			vec += v
			vecOps += ops
		}
		insts = scalar + vec
		if insts > 0 {
			// Elements per instruction: ~0 for scalar loops, ~VL for
			// long-vector ones — the same axis IdealCycles captures.
			cpi = float64(scalar+vecOps) / float64(insts)
		}
		return insts, cpi
	}
	var ideal int64
	for _, w := range spec.workloads {
		if w == nil {
			continue
		}
		insts += w.Stats.Insts()
		ideal += w.Stats.IdealCycles()
	}
	if insts > 0 {
		cpi = float64(ideal) / float64(insts)
	}
	return insts, cpi
}

// batchShape sizes one provenance group's batches. See the package
// comment ("Adaptive batch shaping") for the model; explicit
// SetBatchWidth/SetBatchWindow pins win over it.
func (s *Session) batchShape(spec *RunSpec, prov string) (width int, window int64) {
	insts, cpi := supplyEstimate(spec)
	if m, ok := s.measuredCPI(prov); ok {
		cpi = m
	}
	width = defaultBatchWidth
	switch {
	case cpi > 0 && cpi <= cpiWide:
		width = wideBatchWidth
	case cpi >= cpiNarrow:
		width = narrowBatchWidth
	}
	// Parallel lanes change the calculus: a batch narrower than the
	// gate's parallelism would strand free slots, so width never shapes
	// below min(Jobs, wide cap).
	if j := s.Jobs(); width < j {
		width = min(j, wideBatchWidth)
	}
	if pin := int(s.batchWidth.Load()); pin > 0 {
		width = pin
	}

	window = int64(core.DefaultBatchWindow)
	if insts > 0 {
		window = insts / targetRounds
		if window < minBatchWindow {
			window = minBatchWindow
		}
		if window > maxAutoWindow {
			window = maxAutoWindow
		}
	}
	if pin := s.batchWindow.Load(); pin > 0 {
		window = pin
	}
	return width, window
}

// Result is one RunAllTracked point: the Report (nil on error), which
// cache tier answered, the wall time the point took inside RunAll —
// for a batched point this is the time until its whole batch resolved —
// and the point's error, if any.
type Result struct {
	Report  *stats.Report
	Source  Source
	Elapsed time.Duration
	Err     error
}

// batchGroup is one chunk of distinct sweep points sharing an
// instruction supply, shaped by the session's batch cost model.
// Whichever member's memo closure runs first simulates the whole chunk
// (on one blocking gate slot, widened across free slots); the others
// read their lane's result. once gives every reader a happens-before
// edge on the filled slices.
type batchGroup struct {
	once  sync.Once
	specs []RunSpec
	plans []plan

	prov   string // instruction-supply provenance (CPI feedback key)
	window int64  // lockstep window from batchShape

	reps []*stats.Report
	srcs []Source
	errs []error
}

func (g *batchGroup) run(ctx context.Context, s *Session) {
	g.once.Do(func() { s.simulateBatch(ctx, g) })
}

// simulateBatch resolves every lane of the group: store hits are served
// from disk, the remaining lanes simulate in one core.Batch — on one
// blocking gate slot, widened across free slots so live lanes advance
// on parallel goroutines — and fresh results are written through to the
// store. Batched lanes take the store's per-key cross-process locks
// best-effort before simulating and release them on write-through: two
// processes sweeping the same cold points into one store now coordinate
// exactly like the per-point path, except that a lane whose lock is
// held elsewhere simulates anyway instead of waiting (both processes
// write identical bytes, so the worst case is duplicate work, never a
// wrong record). The within-process memo singleflight is unaffected.
func (s *Session) simulateBatch(ctx context.Context, g *batchGroup) {
	n := len(g.specs)
	g.reps = make([]*stats.Report, n)
	g.srcs = make([]Source, n)
	g.errs = make([]error, n)

	st := s.backend()
	keys := make([]string, n)
	var lanes []int // lane indices that must simulate
	for i := range g.specs {
		g.srcs[i] = SourceSim
		if st != nil {
			if key, ok := g.specs[i].persistKey(&g.plans[i]); ok {
				keys[i] = key
				if rep, tier := st.Get(key); tier.Hit() {
					g.reps[i], g.srcs[i] = rep, s.storeSource(tier)
					continue
				}
			}
		}
		lanes = append(lanes, i)
	}
	if len(lanes) == 0 {
		return
	}
	// Best-effort cross-process single-flight: claim each missed key's
	// lock file now, release after write-through (deferred, so every
	// early return unlocks too). Failure to claim is not failure to run.
	var unlocks []func()
	if tl, ok := st.(store.TryLocker); ok {
		unlocks = make([]func(), 0, len(lanes))
		for _, i := range lanes {
			if keys[i] == "" {
				continue
			}
			if release := tl.TryLock(keys[i]); release != nil {
				unlocks = append(unlocks, release)
			}
		}
	}
	defer func() {
		for _, release := range unlocks {
			release()
		}
	}()
	fail := func(err error) {
		for _, i := range lanes {
			g.errs[i] = err
		}
	}
	if err := ctx.Err(); err != nil {
		fail(err)
		return
	}
	s.gate.Do(func() {
		// Re-check after possibly parking on the gate.
		if err := ctx.Err(); err != nil {
			fail(err)
			return
		}
		start := time.Now()
		defer s.paceSlot(ctx, start, len(lanes))
		cfgs := make([]core.Config, len(lanes))
		stops := make([]core.Stop, len(lanes))
		for k, i := range lanes {
			cfgs[k] = g.plans[i].cfg
			stops[k] = g.plans[i].stop
		}
		b, err := core.NewBatch(cfgs)
		if err != nil {
			fail(err)
			return
		}
		b.SetWindow(g.window)
		// Widen across idle gate capacity: the batch holds this blocking
		// slot and borrows up to min(live, free) more each round, so
		// live lanes advance on parallel goroutines while the global
		// simulation bound still holds (*runner.Gate is the SlotPool).
		if par := min(len(lanes), s.Jobs()); par > 1 {
			b.SetParallel(par)
			b.SetSlots(s.gate)
		}
		// Compiled groups share kernel and schedule (that is the group
		// key), so synthesize and predecode the trace once for every
		// lane instead of once per lane.
		spec0 := g.specs[lanes[0]]
		if spec0.mode == ModeCompiled {
			tr, err := spec0.compiled.Trace(spec0.schedule)
			if err != nil {
				fail(err)
				return
			}
			for k := range lanes {
				if err := b.Machine(k).SetThreadStream(0, spec0.compiled.Prog.Name, tr.Stream()); err != nil {
					fail(err)
					return
				}
			}
		} else {
			bad := false
			for k, i := range lanes {
				if err := attachThreads(b.Machine(k), g.specs[i], g.plans[i].cfg); err != nil {
					g.errs[i] = err
					bad = true
				}
			}
			if bad {
				// Rare (a lane's thread attachment failed): the batch
				// can no longer run as built, so fall back to solo
				// machines for the healthy lanes, inside this slot.
				for _, i := range lanes {
					if g.errs[i] != nil {
						continue
					}
					m, err := core.New(g.plans[i].cfg)
					if err == nil {
						err = attachThreads(m, g.specs[i], g.plans[i].cfg)
					}
					if err != nil {
						g.errs[i] = err
						continue
					}
					s.sims.Add(1)
					g.reps[i], g.errs[i] = m.RunContext(ctx, g.plans[i].stop)
				}
				return
			}
		}
		s.sims.Add(int64(len(lanes)))
		reps, errs := b.RunContext(ctx, stops)
		for k, i := range lanes {
			g.reps[i], g.errs[i] = reps[k], errs[k]
		}
	})
	// Feed measured cycles-per-instruction back into the shaping model
	// for later batches of the same supply.
	for _, i := range lanes {
		if g.errs[i] == nil {
			s.noteCPI(g.prov, g.reps[i])
		}
	}
	if st != nil {
		for _, i := range lanes {
			if keys[i] != "" && g.errs[i] == nil && g.reps[i] != nil {
				// Write-through is best-effort, like the per-point path.
				_ = st.Put(keys[i], g.reps[i])
			}
		}
	}
}

// member routes one RunAll index to its batch group lane. A nil group
// means the index takes the per-point path; members travel by value so
// a sweep plans without one heap allocation per point.
type member struct {
	g    *batchGroup
	lane int
}

// planBatches partitions the batchable points (memoizable, prepared)
// into groups by shared instruction-supply provenance, deduplicates
// identical points within a group, and chunks each group into batches
// shaped by the session's cost model (batchShape). Chunks of one point
// gain nothing from the batch engine and stay on the per-point path.
// Assignment is a pure function of the input order and the session's
// shaping state; every point's *result* is deterministic regardless —
// shaping only decides which points simulate side by side. The returned
// memoKeys slice carries each batched point's memo key (empty for
// per-point ones) so RunAllTracked need not re-derive them.
func (s *Session) planBatches(specs []RunSpec, plans []plan, ok []bool) ([]member, []string) {
	members := make([]member, len(specs))
	for i := range members {
		members[i].lane = -1 // per-point until assigned
	}
	type provGroup struct {
		idxs []int          // first occurrence of each distinct point
		dups map[string]int // memoKey -> position in idxs
	}
	byProv := make(map[string]*provGroup)
	var order []string
	memoKeys := make([]string, len(specs))
	for i := range specs {
		if !ok[i] || !plans[i].memoizable {
			continue
		}
		pk := specs[i].provenanceKey(s.idOf)
		pg := byProv[pk]
		if pg == nil {
			pg = &provGroup{dups: make(map[string]int)}
			byProv[pk] = pg
			order = append(order, pk)
		}
		mk := specs[i].memoKey(&plans[i], s.idOf)
		memoKeys[i] = mk
		if pos, seen := pg.dups[mk]; seen {
			// Identical point requested twice: both ride the same lane
			// through the memo singleflight. The non-negative lane with
			// a nil group marks the duplicate until the fixup below.
			members[i] = member{lane: pos}
			continue
		}
		pg.dups[mk] = len(pg.idxs)
		pg.idxs = append(pg.idxs, i)
	}
	for _, pk := range order {
		pg := byProv[pk]
		width, window := s.batchShape(&specs[pg.idxs[0]], pk)
		for base := 0; base < len(pg.idxs); base += width {
			end := base + width
			if end > len(pg.idxs) {
				end = len(pg.idxs)
			}
			chunk := pg.idxs[base:end]
			if len(chunk) < 2 {
				continue // singleton: per-point path
			}
			g := &batchGroup{
				specs:  make([]RunSpec, len(chunk)),
				plans:  make([]plan, len(chunk)),
				prov:   pk,
				window: window,
			}
			for lane, i := range chunk {
				g.specs[lane] = specs[i]
				g.plans[lane] = plans[i]
				members[i] = member{g: g, lane: lane}
			}
		}
	}
	// Point duplicates at their originals' groups; drop any that landed
	// on a singleton (no group) back to the per-point path.
	for i := range members {
		if members[i].g != nil || members[i].lane < 0 {
			continue
		}
		pk := specs[i].provenanceKey(s.idOf)
		pg := byProv[pk]
		orig := pg.idxs[pg.dups[memoKeys[i]]]
		if om := members[orig]; om.g != nil {
			members[i] = om
		} else {
			members[i] = member{lane: -1}
		}
	}
	return members, memoKeys
}

// RunAllTracked is RunAll plus per-point metadata: for each spec, the
// Report, the cache tier that answered, the point's wall time inside
// the call, and its error. Results are pinned to input order no matter
// how the points are scheduled, batched, or cancelled. Memo-and-store-
// missed points sharing an instruction supply are simulated in lockstep
// batches — shaped by the adaptive cost model and advanced on parallel
// lanes (see this file's package comment); every other point takes the
// same path as Session.RunTracked.
func (s *Session) RunAllTracked(ctx context.Context, specs ...RunSpec) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(specs)
	results := make([]Result, n)

	var (
		members  []member
		memoKeys []string
	)
	plans := make([]plan, n)
	perr := make([]error, n)
	if s.memo && s.Batching() {
		ok := make([]bool, n)
		for i := range specs {
			plans[i], perr[i] = specs[i].prepare()
			ok[i] = perr[i] == nil
		}
		members, memoKeys = s.planBatches(specs, plans, ok)
	} else {
		members = make([]member, n)
		for i := range specs {
			plans[i], perr[i] = specs[i].prepare()
		}
	}

	// The pool only orchestrates: leaf simulations admit through the
	// session's gate, so width beyond Jobs() just keeps gate slots fed
	// while some tasks park on shared singleflight entries.
	pool := runner.New(4 * s.Jobs())
	_ = pool.Map(n, func(i int) error {
		start := time.Now()
		defer func() { results[i].Elapsed = time.Since(start) }()
		if perr[i] != nil {
			results[i].Err = perr[i]
			return nil
		}
		if m := members[i]; m.g != nil {
			src := SourceMemo // overwritten iff this caller computes
			rep, err := s.runs.DoContext(ctx, memoKeys[i], func() (*stats.Report, error) {
				m.g.run(ctx, s)
				src = m.g.srcs[m.lane]
				return m.g.reps[m.lane], m.g.errs[m.lane]
			})
			results[i].Report, results[i].Source, results[i].Err = rep, src, err
			return nil
		}
		rep, src, err := s.RunTracked(ctx, specs[i])
		results[i].Report, results[i].Source, results[i].Err = rep, src, err
		return nil
	})
	return results
}
