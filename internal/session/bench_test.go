package session

import (
	"context"
	"testing"
)

// BenchmarkRunAllBatched drives the full cold sweep path — planBatches,
// lockstep lanes, memo write — with a fresh session per iteration, so
// B/op here is the allocation budget of one memo-missed 8-point sweep.
// The bench gate proper lives in cmd/mtvbench; this one exists for
// `go test -bench . -memprofile` when hunting allocations.
func BenchmarkRunAllBatched(b *testing.B) {
	w, err := buildOnce()
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]RunSpec, 8)
	for i := range specs {
		specs[i] = Solo(w, WithMemLatency(10+i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(WithJobs(1))
		if _, err := s.RunAll(context.Background(), specs...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllParallel is the same sweep with four gate slots: the
// parallel-lane round loop plus slot borrowing.
func BenchmarkRunAllParallel(b *testing.B) {
	w, err := buildOnce()
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]RunSpec, 8)
	for i := range specs {
		specs[i] = Solo(w, WithMemLatency(10+i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(WithJobs(4))
		if _, err := s.RunAll(context.Background(), specs...); err != nil {
			b.Fatal(err)
		}
	}
}
