package session

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mtvec/internal/arch"
	"mtvec/internal/core"
	"mtvec/internal/workload"
)

const testScale = 5e-5

var buildOnce = sync.OnceValues(func() (*workload.Workload, error) {
	return workload.ByShort("tf").Build(testScale)
})

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := buildOnce()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// keySession provides stable artifact identities across keyOf calls
// within the test binary, mirroring how one Session keys its cache.
var keySession = New()

func keyOf(t *testing.T, spec RunSpec) string {
	t.Helper()
	p, err := spec.prepare()
	if err != nil {
		t.Fatal(err)
	}
	if !p.memoizable {
		t.Fatal("spec unexpectedly unmemoizable")
	}
	return spec.memoKey(&p, keySession.idOf)
}

func TestMemoKeyCanonical(t *testing.T) {
	w := testWorkload(t)

	// Identical specs produce identical keys, independently of how the
	// options are spelled.
	a := keyOf(t, Solo(w, WithMemLatency(50)))
	b := keyOf(t, Solo(w).With(WithMemLatency(50)))
	if a != b {
		t.Fatalf("equivalent specs keyed differently:\n a=%s\n b=%s", a, b)
	}

	// Every knob that can change a Report must change the key.
	distinct := map[string]string{
		"base":     keyOf(t, Solo(w)),
		"latency":  keyOf(t, Solo(w, WithMemLatency(51))),
		"contexts": keyOf(t, Solo(w, WithContexts(2))),
		"xbar":     keyOf(t, Solo(w, WithXbar(3))),
		"policy":   keyOf(t, Solo(w, WithPolicy("lru"))),
		"issue":    keyOf(t, Solo(w, WithContexts(2), WithIssueWidth(2))),
		"ports":    keyOf(t, Solo(w, WithMemPorts(2, 1))),
		"banks":    keyOf(t, Solo(w, WithMemBanks(16, 4))),
		"spans":    keyOf(t, Solo(w, WithSpans())),
		"stop":     keyOf(t, Solo(w, WithMaxCycles(100))),
		"insts":    keyOf(t, Solo(w, WithMaxThread0Insts(10))),
		"queue":    keyOf(t, Queue([]*workload.Workload{w})),
		"vlen":     keyOf(t, Solo(w, WithVLen(64))),
		"bankport": keyOf(t, Solo(w, WithBankPorts(1, 1))),
		"regfile":  keyOf(t, Solo(w, WithRegFile(arch.RegFile{VRegs: 8, VLen: 128, VRegsPerBank: 1, BankReadPorts: 2, BankWritePorts: 1}))),
		"arch":     keyOf(t, Solo(w, WithArch(arch.VP2000()), WithVLen(128))),
		"partition": keyOf(t, Solo(w, WithRegFile(arch.RegFile{
			VRegs: 8, VLen: 128, VRegsPerBank: 2, BankReadPorts: 2, BankWritePorts: 1, PartitionPerContext: true,
		}))),
	}
	seen := map[string]string{}
	for name, key := range distinct {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s and %s share a memo key: %s", name, prev, key)
		}
		seen[key] = name
	}

	// The defaulted shape and its explicit spellings are the same
	// machine, so they must share one memo entry.
	for name, spec := range map[string]RunSpec{
		"explicit preset":  Solo(w, WithArch(arch.ConvexC3400())),
		"explicit regfile": Solo(w, WithRegFile(arch.DefaultRegFile())),
	} {
		if keyOf(t, spec) != distinct["base"] {
			t.Errorf("%s of the reference shape keyed differently from the default", name)
		}
	}
}

func TestWithDoesNotMutateOriginal(t *testing.T) {
	w := testWorkload(t)
	base := Solo(w)
	derived := base.With(WithMemLatency(99))
	if keyOf(t, base) == keyOf(t, derived) {
		t.Fatal("With did not change the derived spec")
	}
	if keyOf(t, base) != keyOf(t, Solo(w)) {
		t.Fatal("With mutated the original spec")
	}
}

func TestObserverSpecHasNoKey(t *testing.T) {
	w := testWorkload(t)
	probe := core.ProgressFunc(func(int64, int64) {})
	p, err := Solo(w, WithObserver(probe)).prepare()
	if err != nil {
		t.Fatal(err)
	}
	if p.memoizable {
		t.Fatal("observer spec is memoizable")
	}
}

func TestRunNilContext(t *testing.T) {
	w := testWorkload(t)
	rep, err := New().Run(nil, Solo(w)) //nolint:staticcheck // nil ctx is part of the contract
	if err != nil || rep == nil {
		t.Fatalf("nil ctx run: rep=%v err=%v", rep, err)
	}
}

func TestCancelDoesNotPoisonCache(t *testing.T) {
	w := testWorkload(t)
	s := New()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(cancelled, Solo(w)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	rep, err := s.Run(context.Background(), Solo(w))
	if err != nil || rep == nil {
		t.Fatalf("retry after cancellation failed: rep=%v err=%v", rep, err)
	}
	if n := s.Simulations(); n != 1 {
		t.Fatalf("simulations = %d, want 1 (cancelled attempt never simulated)", n)
	}
}

// TestSpecSharedAcrossConcurrentSessions pins the arch.Spec reuse
// contract: one Spec value (and one RunSpec built from it) may back any
// number of concurrent Sessions, every run sees the same machine, and
// no run mutates the shared value. Run with -race in CI.
func TestSpecSharedAcrossConcurrentSessions(t *testing.T) {
	w := testWorkload(t)
	shape := arch.ConvexC3400()
	shape.VLen = 128
	shape.Mem.Latency = 30
	want := shape // the value no run may disturb

	const sessions = 4
	reps := make([]*struct {
		cycles int64
		err    error
	}, sessions)
	var wg sync.WaitGroup
	for i := range reps {
		reps[i] = &struct {
			cycles int64
			err    error
		}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := New().Run(context.Background(), Solo(w, WithArch(shape)))
			if err != nil {
				reps[i].err = err
				return
			}
			reps[i].cycles = rep.Cycles
		}(i)
	}
	wg.Wait()
	for i, r := range reps {
		if r.err != nil {
			t.Fatalf("session %d: %v", i, r.err)
		}
		if r.cycles != reps[0].cycles {
			t.Fatalf("session %d diverged: %d vs %d cycles", i, r.cycles, reps[0].cycles)
		}
	}
	if !reflect.DeepEqual(shape, want) {
		t.Fatal("a run mutated the shared arch.Spec")
	}
}

func TestValidationListsAllProblems(t *testing.T) {
	w := testWorkload(t)
	err := Solo(w, WithMemLatency(0), WithXbar(0), WithPolicy("nope")).Validate()
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	for _, want := range []string{"latency", "crossbar", "policy"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}
