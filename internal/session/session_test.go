package session

import (
	"context"
	"strings"
	"sync"
	"testing"

	"mtvec/internal/core"
	"mtvec/internal/workload"
)

const testScale = 5e-5

var buildOnce = sync.OnceValues(func() (*workload.Workload, error) {
	return workload.ByShort("tf").Build(testScale)
})

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := buildOnce()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// keySession provides stable artifact identities across keyOf calls
// within the test binary, mirroring how one Session keys its cache.
var keySession = New()

func keyOf(t *testing.T, spec RunSpec) string {
	t.Helper()
	p, err := spec.prepare()
	if err != nil {
		t.Fatal(err)
	}
	if !p.memoizable {
		t.Fatal("spec unexpectedly unmemoizable")
	}
	return spec.memoKey(&p, keySession.idOf)
}

func TestMemoKeyCanonical(t *testing.T) {
	w := testWorkload(t)

	// Identical specs produce identical keys, independently of how the
	// options are spelled.
	a := keyOf(t, Solo(w, WithMemLatency(50)))
	b := keyOf(t, Solo(w).With(WithMemLatency(50)))
	if a != b {
		t.Fatalf("equivalent specs keyed differently:\n a=%s\n b=%s", a, b)
	}

	// Every knob that can change a Report must change the key.
	distinct := map[string]string{
		"base":     keyOf(t, Solo(w)),
		"latency":  keyOf(t, Solo(w, WithMemLatency(51))),
		"contexts": keyOf(t, Solo(w, WithContexts(2))),
		"xbar":     keyOf(t, Solo(w, WithXbar(3))),
		"policy":   keyOf(t, Solo(w, WithPolicy("lru"))),
		"issue":    keyOf(t, Solo(w, WithContexts(2), WithIssueWidth(2))),
		"ports":    keyOf(t, Solo(w, WithMemPorts(2, 1))),
		"banks":    keyOf(t, Solo(w, WithMemBanks(16, 4))),
		"spans":    keyOf(t, Solo(w, WithSpans())),
		"stop":     keyOf(t, Solo(w, WithMaxCycles(100))),
		"insts":    keyOf(t, Solo(w, WithMaxThread0Insts(10))),
		"queue":    keyOf(t, Queue([]*workload.Workload{w})),
	}
	seen := map[string]string{}
	for name, key := range distinct {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s and %s share a memo key: %s", name, prev, key)
		}
		seen[key] = name
	}
}

func TestWithDoesNotMutateOriginal(t *testing.T) {
	w := testWorkload(t)
	base := Solo(w)
	derived := base.With(WithMemLatency(99))
	if keyOf(t, base) == keyOf(t, derived) {
		t.Fatal("With did not change the derived spec")
	}
	if keyOf(t, base) != keyOf(t, Solo(w)) {
		t.Fatal("With mutated the original spec")
	}
}

func TestObserverSpecHasNoKey(t *testing.T) {
	w := testWorkload(t)
	probe := core.ProgressFunc(func(int64, int64) {})
	p, err := Solo(w, WithObserver(probe)).prepare()
	if err != nil {
		t.Fatal(err)
	}
	if p.memoizable {
		t.Fatal("observer spec is memoizable")
	}
}

func TestRunNilContext(t *testing.T) {
	w := testWorkload(t)
	rep, err := New().Run(nil, Solo(w)) //nolint:staticcheck // nil ctx is part of the contract
	if err != nil || rep == nil {
		t.Fatalf("nil ctx run: rep=%v err=%v", rep, err)
	}
}

func TestCancelDoesNotPoisonCache(t *testing.T) {
	w := testWorkload(t)
	s := New()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(cancelled, Solo(w)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	rep, err := s.Run(context.Background(), Solo(w))
	if err != nil || rep == nil {
		t.Fatalf("retry after cancellation failed: rep=%v err=%v", rep, err)
	}
	if n := s.Simulations(); n != 1 {
		t.Fatalf("simulations = %d, want 1 (cancelled attempt never simulated)", n)
	}
}

func TestValidationListsAllProblems(t *testing.T) {
	w := testWorkload(t)
	err := Solo(w, WithMemLatency(0), WithXbar(0), WithPolicy("nope")).Validate()
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	for _, want := range []string{"latency", "crossbar", "policy"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}
