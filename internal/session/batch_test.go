package session

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"mtvec/internal/core"
	"mtvec/internal/stats"
	"mtvec/internal/store"
	"mtvec/internal/workload"
)

// latencySweep builds a memo-missable sweep sharing one workload — the
// shape RunAll batches — with n distinct memory latencies.
func latencySweep(t *testing.T, n int) []RunSpec {
	t.Helper()
	w := testWorkload(t)
	specs := make([]RunSpec, n)
	for i := range specs {
		specs[i] = Solo(w, WithMemLatency(10+i))
	}
	return specs
}

// TestRunAllBatchedMatchesSolo is the session-level differential gate:
// a batched RunAll sweep returns exactly the Reports that per-point
// dispatch (batching off) and direct solo Runs return, in input order.
func TestRunAllBatchedMatchesSolo(t *testing.T) {
	specs := latencySweep(t, 11) // 8-lane chunk + 3-lane chunk

	ref := New(WithoutBatching())
	want, err := ref.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}

	s := New()
	if !s.Batching() {
		t.Fatal("batching not on by default")
	}
	got, err := s.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("point %d: batched report differs from per-point dispatch", i)
		}
	}
	if s.Simulations() != int64(len(specs)) {
		t.Errorf("batched session simulated %d points, want %d", s.Simulations(), len(specs))
	}
}

// TestRunAllTrackedSources pins the per-point metadata: a cold sweep
// simulates every distinct point once, duplicates share through the
// memo, and a re-run answers entirely from the memo tier.
func TestRunAllTrackedSources(t *testing.T) {
	specs := latencySweep(t, 5)
	specs = append(specs, specs[2]) // duplicate point rides the same lane

	s := New()
	results := s.RunAllTracked(context.Background(), specs...)
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("point %d: %v", i, r.Err)
		}
		if r.Report == nil {
			t.Fatalf("point %d: nil report", i)
		}
	}
	if !reflect.DeepEqual(results[2].Report, results[5].Report) {
		t.Error("duplicate points disagree")
	}
	if s.Simulations() != 5 {
		t.Errorf("simulated %d, want 5 (duplicate must not re-run)", s.Simulations())
	}
	again := s.RunAllTracked(context.Background(), specs...)
	for i, r := range again {
		if r.Source != SourceMemo {
			t.Errorf("re-run point %d answered from %v, want memo", i, r.Source)
		}
	}
	if s.Simulations() != 5 {
		t.Errorf("re-run simulated more points (%d)", s.Simulations())
	}
}

// TestRunAllMixedValidity: invalid points error in place without
// disturbing their neighbours, and the joined error keeps input order.
func TestRunAllMixedValidity(t *testing.T) {
	w := testWorkload(t)
	specs := []RunSpec{
		Solo(w, WithMemLatency(20)),
		Solo(w, WithMemLatency(-1)), // invalid
		Solo(w, WithMemLatency(21)),
	}
	s := New()
	reps, err := s.RunAll(context.Background(), specs...)
	if err == nil {
		t.Fatal("invalid point did not surface")
	}
	if reps[0] == nil || reps[2] == nil {
		t.Error("valid neighbours of an invalid point did not run")
	}
	if reps[1] != nil {
		t.Error("invalid point produced a report")
	}
}

// cancelObserver cancels a context after the first progress event.
type cancelObserver struct {
	cancel context.CancelFunc
	fired  atomic.Bool
}

func (c *cancelObserver) Progress(now core.Cycle, dispatched int64) {
	if !c.fired.Swap(true) {
		c.cancel()
	}
}
func (c *cancelObserver) ThreadSwitch(now core.Cycle, from, to int) {}
func (c *cancelObserver) Span(s stats.Span)                         {}

// TestRunAllCancelKeepsInputOrder is the regression test for the
// completion-order bug: when the worker gate is saturated and the
// context is cancelled mid-batch, RunAll must still return a
// len(specs)-sized, input-indexed result slice where every non-nil
// reps[i] is exactly specs[i]'s solo Report, with the cancellation
// joined into the error. Cancellation is triggered deterministically
// from inside the first spec's own simulation via an observer.
func TestRunAllCancelKeepsInputOrder(t *testing.T) {
	w := testWorkload(t)
	mk := func(i int) RunSpec { return Solo(w, WithMemLatency(30+i)) }

	// Reference reports from an independent session.
	ref := New()
	nPoints := 6
	want := make([]*stats.Report, nPoints)
	for i := range want {
		rep, err := ref.Run(context.Background(), mk(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelObserver{cancel: cancel}
	specs := make([]RunSpec, 0, nPoints+1)
	// The canceller runs first and saturates the 1-slot gate; the rest
	// of the sweep is batched or queued behind it.
	specs = append(specs, mk(0).With(WithObserver(obs), WithProgressStride(64)))
	for i := 1; i < nPoints; i++ {
		specs = append(specs, mk(i))
	}

	s := New(WithJobs(1))
	reps, err := s.RunAll(ctx, specs...)
	if len(reps) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(reps), len(specs))
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not joined into the error: %v", err)
	}
	for i, rep := range reps {
		if rep == nil {
			continue // cancelled point: no partial results allowed
		}
		if !reflect.DeepEqual(rep, want[i]) {
			t.Errorf("slot %d holds a different point's report (completion-order leak)", i)
		}
	}
	// The session stays usable and correct after the cancelled sweep.
	reps, err = s.RunAll(context.Background(), specs[1:]...)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if !reflect.DeepEqual(rep, want[i+1]) {
			t.Errorf("post-cancel slot %d wrong", i)
		}
	}
}

// TestRunAllBatchGrouping: only points sharing an instruction supply
// batch together; a lone point per provenance stays on the per-point
// path. Both shapes must produce solo-identical results.
func TestRunAllBatchGrouping(t *testing.T) {
	w := testWorkload(t)
	var specs []RunSpec
	// Two provenances interleaved: solo(w) sweep and queue(w,w) sweep.
	for i := 0; i < 3; i++ {
		specs = append(specs,
			Solo(w, WithMemLatency(40+i)),
			Queue([]*workload.Workload{w, w}, WithContexts(2), WithMemLatency(40+i)),
		)
	}
	ref := New(WithoutBatching())
	want, err := ref.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	got, err := s.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("point %d (%s): batched != per-point", i, specs[i].Mode())
		}
	}
}

// TestBatchStoreWriteThrough: a batched sweep writes every fresh lane
// through to the persistent store, and a later session's batched sweep
// over the same points answers entirely from disk — zero simulations.
func TestBatchStoreWriteThrough(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := latencySweep(t, 9)

	s1 := New(WithStore(st))
	want, err := s1.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Simulations() != int64(len(specs)) {
		t.Fatalf("cold sweep simulated %d, want %d", s1.Simulations(), len(specs))
	}

	s2 := New(WithStore(st))
	results := s2.RunAllTracked(context.Background(), specs...)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("point %d: %v", i, r.Err)
		}
		if r.Source != SourceStore {
			t.Errorf("point %d answered from %v, want store", i, r.Source)
		}
		if !reflect.DeepEqual(r.Report, want[i]) {
			t.Errorf("point %d: stored report differs", i)
		}
	}
	if s2.Simulations() != 0 {
		t.Errorf("warm sweep simulated %d points, want 0", s2.Simulations())
	}
}

// TestProvenanceKeyGroupsBySupply: machine options must not split a
// group; workloads and mode must.
func TestProvenanceKeyGroupsBySupply(t *testing.T) {
	w := testWorkload(t)
	s := New()
	a := Solo(w, WithMemLatency(10)).provenanceKey(s.idOf)
	b := Solo(w, WithMemLatency(90), WithContexts(2)).provenanceKey(s.idOf)
	if a != b {
		t.Error("machine knobs split a shared-supply group")
	}
	q := Queue([]*workload.Workload{w}).provenanceKey(s.idOf)
	if a == q {
		t.Error("different modes grouped")
	}
}

// TestBatchObserverBypass: observer-carrying points never batch (they
// are not memoizable), yet ride the same RunAll with correct results.
func TestBatchObserverBypass(t *testing.T) {
	w := testWorkload(t)
	var seen atomic.Int64
	obs := core.ProgressFunc(func(now core.Cycle, dispatched int64) { seen.Add(1) })
	specs := []RunSpec{
		Solo(w, WithMemLatency(60)),
		Solo(w, WithMemLatency(60), WithObserver(obs), WithProgressStride(64)),
		Solo(w, WithMemLatency(61)),
	}
	s := New()
	reps, err := s.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	if seen.Load() == 0 {
		t.Error("observer saw no events")
	}
	if !reflect.DeepEqual(reps[0], reps[1]) {
		t.Error("observer point's report differs from plain point")
	}
	_ = fmt.Sprintf("%v", reps[2])
}
