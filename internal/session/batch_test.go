package session

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"mtvec/internal/core"
	"mtvec/internal/stats"
	"mtvec/internal/store"
	"mtvec/internal/workload"
)

// latencySweep builds a memo-missable sweep sharing one workload — the
// shape RunAll batches — with n distinct memory latencies.
func latencySweep(t *testing.T, n int) []RunSpec {
	t.Helper()
	w := testWorkload(t)
	specs := make([]RunSpec, n)
	for i := range specs {
		specs[i] = Solo(w, WithMemLatency(10+i))
	}
	return specs
}

// TestRunAllBatchedMatchesSolo is the session-level differential gate:
// a batched RunAll sweep returns exactly the Reports that per-point
// dispatch (batching off) and direct solo Runs return, in input order.
func TestRunAllBatchedMatchesSolo(t *testing.T) {
	specs := latencySweep(t, 11) // 8-lane chunk + 3-lane chunk

	ref := New(WithoutBatching())
	want, err := ref.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}

	s := New()
	if !s.Batching() {
		t.Fatal("batching not on by default")
	}
	got, err := s.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("point %d: batched report differs from per-point dispatch", i)
		}
	}
	if s.Simulations() != int64(len(specs)) {
		t.Errorf("batched session simulated %d points, want %d", s.Simulations(), len(specs))
	}
}

// TestRunAllTrackedSources pins the per-point metadata: a cold sweep
// simulates every distinct point once, duplicates share through the
// memo, and a re-run answers entirely from the memo tier.
func TestRunAllTrackedSources(t *testing.T) {
	specs := latencySweep(t, 5)
	specs = append(specs, specs[2]) // duplicate point rides the same lane

	s := New()
	results := s.RunAllTracked(context.Background(), specs...)
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("point %d: %v", i, r.Err)
		}
		if r.Report == nil {
			t.Fatalf("point %d: nil report", i)
		}
	}
	if !reflect.DeepEqual(results[2].Report, results[5].Report) {
		t.Error("duplicate points disagree")
	}
	if s.Simulations() != 5 {
		t.Errorf("simulated %d, want 5 (duplicate must not re-run)", s.Simulations())
	}
	again := s.RunAllTracked(context.Background(), specs...)
	for i, r := range again {
		if r.Source != SourceMemo {
			t.Errorf("re-run point %d answered from %v, want memo", i, r.Source)
		}
	}
	if s.Simulations() != 5 {
		t.Errorf("re-run simulated more points (%d)", s.Simulations())
	}
}

// TestRunAllMixedValidity: invalid points error in place without
// disturbing their neighbours, and the joined error keeps input order.
func TestRunAllMixedValidity(t *testing.T) {
	w := testWorkload(t)
	specs := []RunSpec{
		Solo(w, WithMemLatency(20)),
		Solo(w, WithMemLatency(-1)), // invalid
		Solo(w, WithMemLatency(21)),
	}
	s := New()
	reps, err := s.RunAll(context.Background(), specs...)
	if err == nil {
		t.Fatal("invalid point did not surface")
	}
	if reps[0] == nil || reps[2] == nil {
		t.Error("valid neighbours of an invalid point did not run")
	}
	if reps[1] != nil {
		t.Error("invalid point produced a report")
	}
}

// cancelObserver cancels a context after the first progress event.
type cancelObserver struct {
	cancel context.CancelFunc
	fired  atomic.Bool
}

func (c *cancelObserver) Progress(now core.Cycle, dispatched int64) {
	if !c.fired.Swap(true) {
		c.cancel()
	}
}
func (c *cancelObserver) ThreadSwitch(now core.Cycle, from, to int) {}
func (c *cancelObserver) Span(s stats.Span)                         {}

// TestRunAllCancelKeepsInputOrder is the regression test for the
// completion-order bug: when the worker gate is saturated and the
// context is cancelled mid-batch, RunAll must still return a
// len(specs)-sized, input-indexed result slice where every non-nil
// reps[i] is exactly specs[i]'s solo Report, with the cancellation
// joined into the error. Cancellation is triggered deterministically
// from inside the first spec's own simulation via an observer.
func TestRunAllCancelKeepsInputOrder(t *testing.T) {
	w := testWorkload(t)
	mk := func(i int) RunSpec { return Solo(w, WithMemLatency(30+i)) }

	// Reference reports from an independent session.
	ref := New()
	nPoints := 6
	want := make([]*stats.Report, nPoints)
	for i := range want {
		rep, err := ref.Run(context.Background(), mk(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelObserver{cancel: cancel}
	specs := make([]RunSpec, 0, nPoints+1)
	// The canceller runs first and saturates the 1-slot gate; the rest
	// of the sweep is batched or queued behind it.
	specs = append(specs, mk(0).With(WithObserver(obs), WithProgressStride(64)))
	for i := 1; i < nPoints; i++ {
		specs = append(specs, mk(i))
	}

	s := New(WithJobs(1))
	reps, err := s.RunAll(ctx, specs...)
	if len(reps) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(reps), len(specs))
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not joined into the error: %v", err)
	}
	for i, rep := range reps {
		if rep == nil {
			continue // cancelled point: no partial results allowed
		}
		if !reflect.DeepEqual(rep, want[i]) {
			t.Errorf("slot %d holds a different point's report (completion-order leak)", i)
		}
	}
	// The session stays usable and correct after the cancelled sweep.
	reps, err = s.RunAll(context.Background(), specs[1:]...)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if !reflect.DeepEqual(rep, want[i+1]) {
			t.Errorf("post-cancel slot %d wrong", i)
		}
	}
}

// TestRunAllBatchGrouping: only points sharing an instruction supply
// batch together; a lone point per provenance stays on the per-point
// path. Both shapes must produce solo-identical results.
func TestRunAllBatchGrouping(t *testing.T) {
	w := testWorkload(t)
	var specs []RunSpec
	// Two provenances interleaved: solo(w) sweep and queue(w,w) sweep.
	for i := 0; i < 3; i++ {
		specs = append(specs,
			Solo(w, WithMemLatency(40+i)),
			Queue([]*workload.Workload{w, w}, WithContexts(2), WithMemLatency(40+i)),
		)
	}
	ref := New(WithoutBatching())
	want, err := ref.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	got, err := s.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("point %d (%s): batched != per-point", i, specs[i].Mode())
		}
	}
}

// TestBatchStoreWriteThrough: a batched sweep writes every fresh lane
// through to the persistent store, and a later session's batched sweep
// over the same points answers entirely from disk — zero simulations.
func TestBatchStoreWriteThrough(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := latencySweep(t, 9)

	s1 := New(WithStore(st))
	want, err := s1.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Simulations() != int64(len(specs)) {
		t.Fatalf("cold sweep simulated %d, want %d", s1.Simulations(), len(specs))
	}

	s2 := New(WithStore(st))
	results := s2.RunAllTracked(context.Background(), specs...)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("point %d: %v", i, r.Err)
		}
		if r.Source != SourceStore {
			t.Errorf("point %d answered from %v, want store", i, r.Source)
		}
		if !reflect.DeepEqual(r.Report, want[i]) {
			t.Errorf("point %d: stored report differs", i)
		}
	}
	if s2.Simulations() != 0 {
		t.Errorf("warm sweep simulated %d points, want 0", s2.Simulations())
	}
}

// TestBatchKnobValidation pins the width/window knob contract: 0 means
// adaptive, in-range values stick, out-of-range values are rejected by
// the setters and panic in the construction options.
func TestBatchKnobValidation(t *testing.T) {
	s := New()
	if s.BatchWidth() != 0 || s.BatchWindow() != 0 {
		t.Fatalf("fresh session not adaptive: width %d window %d", s.BatchWidth(), s.BatchWindow())
	}
	if err := s.SetBatchWidth(12); err != nil || s.BatchWidth() != 12 {
		t.Fatalf("SetBatchWidth(12): %v (width %d)", err, s.BatchWidth())
	}
	if err := s.SetBatchWidth(0); err != nil || s.BatchWidth() != 0 {
		t.Fatalf("SetBatchWidth(0): %v (width %d)", err, s.BatchWidth())
	}
	if err := s.SetBatchWidth(-1); err == nil {
		t.Error("negative width accepted")
	}
	if err := s.SetBatchWidth(maxBatchWidthCap + 1); err == nil {
		t.Error("over-cap width accepted")
	}
	if err := s.SetBatchWindow(4096); err != nil || s.BatchWindow() != 4096 {
		t.Fatalf("SetBatchWindow(4096): %v (window %d)", err, s.BatchWindow())
	}
	if err := s.SetBatchWindow(-5); err == nil {
		t.Error("negative window accepted")
	}
	if err := s.SetBatchWindow(maxBatchWindowCap + 1); err == nil {
		t.Error("over-cap window accepted")
	}
	if got := New(WithBatchWidth(6), WithBatchWindow(512)); got.BatchWidth() != 6 || got.BatchWindow() != 512 {
		t.Errorf("options did not stick: width %d window %d", got.BatchWidth(), got.BatchWindow())
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("WithBatchWidth(-1)", func() { New(WithBatchWidth(-1)) })
	mustPanic("WithBatchWindow(-1)", func() { New(WithBatchWindow(-1)) })
}

// TestBatchKnobNeutrality is the memo-key neutrality gate: batch width
// and window shape scheduling only. Every shape must produce reports
// identical to per-point dispatch, and changing the shape between runs
// must still answer from the memo — the keys cannot depend on it.
func TestBatchKnobNeutrality(t *testing.T) {
	specs := latencySweep(t, 9)
	ref := New(WithoutBatching())
	want, err := ref.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct {
		name  string
		width int
		win   int64
	}{
		{"width1", 1, 0}, // singleton chunks: per-point path
		{"narrow", 3, 0},
		{"wide", 32, 0},
		{"smallwin", 0, 64},
		{"pinned", 5, 1024},
	}
	for _, sh := range shapes {
		s := New(WithBatchWidth(sh.width), WithBatchWindow(sh.win))
		got, err := s.RunAll(context.Background(), specs...)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		for i := range specs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%s: point %d differs from per-point dispatch", sh.name, i)
			}
		}
		// Reshape and re-run: everything must come from the memo.
		if err := s.SetBatchWidth((sh.width + 7) % maxBatchWidthCap); err != nil {
			t.Fatal(err)
		}
		if err := s.SetBatchWindow(sh.win + 777); err != nil {
			t.Fatal(err)
		}
		sims := s.Simulations()
		for i, r := range s.RunAllTracked(context.Background(), specs...) {
			if r.Err != nil || r.Source != SourceMemo {
				t.Errorf("%s: reshaped re-run point %d: source %v err %v (memo key depends on shape?)", sh.name, i, r.Source, r.Err)
			}
		}
		if s.Simulations() != sims {
			t.Errorf("%s: reshaped re-run simulated %d extra points", sh.name, s.Simulations()-sims)
		}
	}
}

// TestBatchShapeModel exercises the adaptive cost model directly: CPI
// classifies the regime, measurement overrides the static prior, pins
// override everything, and the window tracks supply length.
func TestBatchShapeModel(t *testing.T) {
	w := testWorkload(t)
	s := New(WithJobs(1)) // keep the gate-slot clause out of the way
	spec := Solo(w)
	prov := spec.provenanceKey(s.idOf)

	insts, _ := supplyEstimate(&spec)
	if insts != w.Stats.Insts() || insts <= 0 {
		t.Fatalf("supplyEstimate insts = %d, want %d", insts, w.Stats.Insts())
	}
	_, win := s.batchShape(&spec, prov)
	wantWin := insts / targetRounds
	if wantWin < minBatchWindow {
		wantWin = minBatchWindow
	}
	if wantWin > maxAutoWindow {
		wantWin = maxAutoWindow
	}
	if win != wantWin {
		t.Errorf("window = %d, want %d for a %d-inst supply", win, wantWin, insts)
	}

	// Measured CPI overrides the static prior: feed a simulation-
	// dominated measurement and the group shapes narrow...
	s.noteCPI(prov, &stats.Report{Cycles: 50_000, Insts: 1_000})
	if width, _ := s.batchShape(&spec, prov); width != narrowBatchWidth {
		t.Errorf("width = %d after 50-CPI measurement, want %d", width, narrowBatchWidth)
	}
	// ...a decode-dominated one shapes wide (fresh provenance, fresh session).
	s2 := New(WithJobs(1))
	prov2 := spec.provenanceKey(s2.idOf)
	s2.noteCPI(prov2, &stats.Report{Cycles: 1_100, Insts: 1_000})
	if width, _ := s2.batchShape(&spec, prov2); width != wideBatchWidth {
		t.Errorf("width = %d after 1.1-CPI measurement, want %d", width, wideBatchWidth)
	}
	// The gate clause: a narrow group on a many-slot gate widens to use
	// the slots.
	s3 := New(WithJobs(10))
	prov3 := spec.provenanceKey(s3.idOf)
	s3.noteCPI(prov3, &stats.Report{Cycles: 50_000, Insts: 1_000})
	if width, _ := s3.batchShape(&spec, prov3); width != 10 {
		t.Errorf("width = %d with 10 gate slots, want 10", width)
	}
	// Pins trump the model.
	if err := s3.SetBatchWidth(2); err != nil {
		t.Fatal(err)
	}
	if err := s3.SetBatchWindow(999); err != nil {
		t.Fatal(err)
	}
	if width, win := s3.batchShape(&spec, prov3); width != 2 || win != 999 {
		t.Errorf("pinned shape = (%d, %d), want (2, 999)", width, win)
	}
}

// TestRunAllParallelLanesMatchSolo is the session-level differential
// gate for parallel lane execution: with several gate slots, a batched
// sweep widens across them and must still return exactly the per-point
// reports. Run under -race in CI, it is also the session-layer
// data-race proof.
func TestRunAllParallelLanesMatchSolo(t *testing.T) {
	specs := latencySweep(t, 13)
	ref := New(WithoutBatching(), WithJobs(1))
	want, err := ref.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 4, 8} {
		s := New(WithJobs(jobs))
		got, err := s.RunAll(context.Background(), specs...)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range specs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("jobs=%d: point %d: parallel-lane report differs from solo", jobs, i)
			}
		}
		if s.Simulations() != int64(len(specs)) {
			t.Errorf("jobs=%d: simulated %d, want %d", jobs, s.Simulations(), len(specs))
		}
	}
}

// TestProvenanceKeyGroupsBySupply: machine options must not split a
// group; workloads and mode must.
func TestProvenanceKeyGroupsBySupply(t *testing.T) {
	w := testWorkload(t)
	s := New()
	a := Solo(w, WithMemLatency(10)).provenanceKey(s.idOf)
	b := Solo(w, WithMemLatency(90), WithContexts(2)).provenanceKey(s.idOf)
	if a != b {
		t.Error("machine knobs split a shared-supply group")
	}
	q := Queue([]*workload.Workload{w}).provenanceKey(s.idOf)
	if a == q {
		t.Error("different modes grouped")
	}
}

// TestBatchObserverBypass: observer-carrying points never batch (they
// are not memoizable), yet ride the same RunAll with correct results.
func TestBatchObserverBypass(t *testing.T) {
	w := testWorkload(t)
	var seen atomic.Int64
	obs := core.ProgressFunc(func(now core.Cycle, dispatched int64) { seen.Add(1) })
	specs := []RunSpec{
		Solo(w, WithMemLatency(60)),
		Solo(w, WithMemLatency(60), WithObserver(obs), WithProgressStride(64)),
		Solo(w, WithMemLatency(61)),
	}
	s := New()
	reps, err := s.RunAll(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	if seen.Load() == 0 {
		t.Error("observer saw no events")
	}
	if !reflect.DeepEqual(reps[0], reps[1]) {
		t.Error("observer point's report differs from plain point")
	}
	_ = fmt.Sprintf("%v", reps[2])
}
