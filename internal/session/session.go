// Package session is the unified run engine behind the public API: one
// composable entry point for every simulation methodology the paper
// uses (solo reference runs, Section 4.1 grouped runs, Section 7 job
// queues, user-compiled kernels).
//
// A Session owns a concurrency-safe, singleflight-memoized run cache —
// the generalization of the experiment Env's per-table memo maps to any
// run request — plus the worker gate that bounds how many simulations
// execute at once across every layer of a nested orchestration. A
// RunSpec declares a simulation point (mode, workloads, machine
// options); Session.Run simulates it under a context.Context, and
// Session.RunAll fans a batch out over the gate with deterministic
// collection order.
//
// # Concurrency and determinism
//
// All Session methods are safe for concurrent use. Each distinct
// memoizable spec simulates exactly once per session no matter how many
// goroutines request it, and concurrent requesters share the same
// *stats.Report. Because every simulation is a pure function of its
// spec, results are byte-identical at any jobs value, including 1.
//
// # Cancellation
//
// Run honors ctx cancellation and deadlines: a cancelled run returns
// ctx.Err() and never a partial Report. A memoized run joined by
// several callers executes under the first caller's context; if that
// run is cancelled the session forgets the cache entry, and waiters
// whose own context is still live retry it, so one caller's deadline
// never poisons the cache for the others.
//
// # Persistence
//
// SetStore (or WithStore) attaches an on-disk result store as a second
// cache tier below the in-memory memo: a run whose spec has a stable
// content identity (catalog workloads, named policies — see
// RunSpec.persistKey) is looked up on disk before simulating and
// written through after. The store obeys the same cancellation rule —
// a cancelled run is never persisted — and adds cross-process
// single-flight, so any number of processes sharing one store
// directory simulate each distinct point once between them. Unlike the
// memo tier, the store also serves observer-carrying specs: a
// persisted result returns immediately and the observers see no
// events, because no simulation runs (RunTracked reports which tier
// answered).
package session

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mtvec/internal/core"
	"mtvec/internal/prog"
	"mtvec/internal/runner"
	"mtvec/internal/stats"
	"mtvec/internal/store"
)

// Session executes RunSpecs: it memoizes results, bounds concurrency,
// and plumbs cancellation into the simulator. The zero value is not
// usable; construct with New.
type Session struct {
	jobs atomic.Int64 // concurrency bound, mirrored into gate
	sims atomic.Int64 // machine runs actually executed
	memo bool

	// nobatch disables RunAll's lockstep batching (see batch.go); the
	// zero value means batching is on.
	nobatch atomic.Bool

	// batchWidth / batchWindow pin RunAll's batch shape; 0 (the zero
	// value) selects adaptive shaping. cpi refines the shaping model
	// with measured cycles-per-instruction, keyed by instruction-supply
	// provenance. All three are scheduling state only — results and
	// cache keys never depend on them (see batch.go).
	batchWidth  atomic.Int64
	batchWindow atomic.Int64
	cpi         sync.Map // provenance key -> *cpiTrack

	// st boxes the optional persistent second cache tier (nil box or nil
	// backend = none); storeHits counts runs this session served from it,
	// peerHits the subset served by a remote peer tier. The pointer-to-box
	// indirection exists because atomic.Value cannot swap between distinct
	// concrete Backend types.
	st        atomic.Pointer[backendBox]
	storeHits atomic.Int64
	peerHits  atomic.Int64

	// pace, when positive, is the minimum wall duration of one gated
	// simulation slot (see SetPace) in nanoseconds.
	pace atomic.Int64

	// gate admits at most Jobs() concurrent leaf sections (machine runs
	// and, via Do, workload builds). Orchestration layers above may
	// spawn freely; parked goroutines hold no slot, so the bound holds
	// across nested fan-outs.
	gate *runner.Gate
	runs runner.Cache[string, *stats.Report]

	// idTab assigns session-stable identities to run artifacts
	// (workloads, compiled kernels, policy instances) for memo keys.
	// Retaining the reference here is deliberate: the artifact's
	// address can never be recycled by the GC into a colliding key
	// while a cached result still depends on it.
	idMu  sync.Mutex
	idTab map[any]uint64
}

// idOf returns the session-stable identity of a run artifact.
func (s *Session) idOf(x any) uint64 {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	if s.idTab == nil {
		s.idTab = make(map[any]uint64)
	}
	id, ok := s.idTab[x]
	if !ok {
		id = uint64(len(s.idTab)) + 1
		s.idTab[x] = id
	}
	return id
}

// SessionOption configures a new Session.
type SessionOption func(*Session)

// WithJobs bounds how many simulations may execute concurrently;
// n <= 0 selects runtime.NumCPU(). Results never depend on the setting.
func WithJobs(n int) SessionOption {
	return func(s *Session) { s.SetJobs(n) }
}

// WithoutMemo disables the run cache: every Run simulates, and repeated
// identical specs return fresh Reports. The legacy Run* entry points
// use a memo-less default session to keep their original semantics.
// An attached store is unaffected — persistence is orthogonal to the
// in-memory memo tier.
func WithoutMemo() SessionOption {
	return func(s *Session) { s.memo = false }
}

// backendBox wraps a store.Backend for atomic swapping.
type backendBox struct{ b store.Backend }

// WithStore attaches a persistent result backend to a new session (see
// Session.SetStore).
func WithStore(st store.Backend) SessionOption {
	return func(s *Session) { s.SetStore(st) }
}

// New creates a session. Memoization is on by default; the simulation
// concurrency bound defaults to runtime.NumCPU().
func New(opts ...SessionOption) *Session {
	s := &Session{gate: runner.NewGate(0), memo: true}
	s.SetJobs(0)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// SetJobs changes the simulation concurrency bound; n <= 0 selects
// runtime.NumCPU().
func (s *Session) SetJobs(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	s.jobs.Store(int64(n))
	s.gate.SetLimit(n)
}

// Jobs returns the session's simulation concurrency bound.
func (s *Session) Jobs() int { return int(s.jobs.Load()) }

// Simulations returns how many machine runs this session has executed —
// cache misses, not requests; the quantity memoization exists to bound.
func (s *Session) Simulations() int64 { return s.sims.Load() }

// SetStore attaches (or, with nil, detaches) a persistent result
// backend: stable specs are served from it when a prior process
// simulated them and written through when this one does. Any
// store.Backend works — an on-disk store.Dir, a remote store.HTTPPeer,
// or a store.Tiered composite. Safe to call concurrently with runs;
// in-flight runs keep the backend they started with.
func (s *Session) SetStore(st store.Backend) {
	if st == nil {
		s.st.Store(nil)
		return
	}
	s.st.Store(&backendBox{b: st})
}

// Store returns the attached persistent backend, or nil.
func (s *Session) Store() store.Backend { return s.backend() }

// backend unwraps the attached backend (nil when detached).
func (s *Session) backend() store.Backend {
	if box := s.st.Load(); box != nil {
		return box.b
	}
	return nil
}

// StoreHits returns how many runs this session served from the
// persistent store — work some earlier process (or session) paid for.
func (s *Session) StoreHits() int64 { return s.storeHits.Load() }

// PeerHits returns the subset of StoreHits served by a remote peer tier
// rather than local disk.
func (s *Session) PeerHits() int64 { return s.peerHits.Load() }

// Active returns how many gated leaf sections (simulations, Do work)
// are executing right now — instantaneous gate occupancy in [0, Jobs()].
func (s *Session) Active() int { return s.gate.Active() }

// SetPace sets a minimum wall duration per simulation inside a gated
// slot: a slot that finishes sooner sleeps out the remainder while
// still holding the slot, and a lockstep batch of n lanes pads n
// windows. Zero (the default) disables. Results are unaffected
// — only timing changes. The knob exists for capacity emulation in load
// tests (see docs/CLUSTER.md): on a machine with fewer cores than the
// deployment being modelled, pacing makes a node's simulation capacity
// the bottleneck, so horizontal scaling behaves as it would at size.
func (s *Session) SetPace(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.pace.Store(int64(d))
}

// Pace returns the gated-slot minimum wall duration (0 = disabled).
func (s *Session) Pace() time.Duration { return time.Duration(s.pace.Load()) }

// paceSlot sleeps out the remainder of the pace window for a gated slot
// that started at start and ran n machine simulations. A lockstep batch
// pads n windows, not one: the knob emulates per-simulation capacity,
// and batching must not make emulated work look free. Called while
// still inside the gate; a cancelled ctx cuts the sleep short.
func (s *Session) paceSlot(ctx context.Context, start time.Time, n int) {
	d := time.Duration(s.pace.Load()) * time.Duration(n)
	if d <= 0 {
		return
	}
	rem := d - time.Since(start)
	if rem <= 0 {
		return
	}
	t := time.NewTimer(rem)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// PersistKey returns the spec's store persist key — its process-stable
// content identity — and whether it has one. Specs without stable
// identities (ad-hoc workloads, compiled kernels, custom policy
// instances) are not persistable and therefore not shardable by key.
// The cluster coordinator hashes this key to route sweep points.
func (s *Session) PersistKey(spec RunSpec) (string, bool) {
	p, err := spec.prepare()
	if err != nil {
		return "", false
	}
	return spec.persistKey(&p)
}

// Busy returns the cumulative wall time spent inside gated sections
// (simulations and Do work) — the serial-equivalent cost of the
// session's work.
func (s *Session) Busy() time.Duration { return s.gate.Busy() }

// Do runs fn under the session's worker gate, so non-simulation leaf
// work (workload builds, trace generation) counts against the same
// global concurrency bound as the simulations themselves.
func (s *Session) Do(fn func()) { s.gate.Do(fn) }

// Source names the cache tier that answered a run.
type Source int

const (
	// SourceSim: the session executed the simulation.
	SourceSim Source = iota
	// SourceMemo: served from the in-memory memo cache (including
	// joining an in-flight computation).
	SourceMemo
	// SourceStore: served from the persistent store's local disk tier.
	SourceStore
	// SourcePeer: served from a remote peer tier of the persistent store
	// (a store.HTTPPeer, usually inside a store.Tiered).
	SourcePeer
)

// String names the source ("sim", "memo", "store", "peer").
func (s Source) String() string {
	switch s {
	case SourceSim:
		return "sim"
	case SourceMemo:
		return "memo"
	case SourceStore:
		return "store"
	case SourcePeer:
		return "peer"
	}
	return "unknown"
}

// storeSource maps a backend hit tier to the run source it reports, and
// bumps the session's hit counters.
func (s *Session) storeSource(tier store.Tier) Source {
	s.storeHits.Add(1)
	if tier == store.TierPeer {
		s.peerHits.Add(1)
		return SourcePeer
	}
	return SourceStore
}

// Run simulates the spec and returns its Report. Identical memoizable
// specs simulate once and share the result; specs carrying observers
// always simulate unless a persistent store already holds the result.
// A nil ctx means context.Background().
func (s *Session) Run(ctx context.Context, spec RunSpec) (*stats.Report, error) {
	rep, _, err := s.RunTracked(ctx, spec)
	return rep, err
}

// RunTracked is Run plus cache metadata: which tier produced the Report
// — a fresh simulation, the in-memory memo, or the persistent store.
// Waiters that join another caller's in-flight simulation report
// SourceMemo (they did not run it).
func (s *Session) RunTracked(ctx context.Context, spec RunSpec) (*stats.Report, Source, error) {
	p, err := spec.prepare()
	if err != nil {
		return nil, SourceSim, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st := s.backend()
	if !s.memo || !p.memoizable {
		// Memo-less path (session-wide or observer-carrying spec): the
		// store still applies when the spec is persistable. A store hit
		// skips the simulation, so attached observers see no events.
		key, persistable := "", false
		if st != nil {
			key, persistable = spec.persistKey(&p)
		}
		if persistable {
			if rep, tier := st.Get(key); tier.Hit() {
				if s.memo {
					// Promote to the memo tier: repeated requests for a
					// hot point should not re-read and re-verify the
					// disk record every time.
					s.runs.Add(spec.memoKey(&p, s.idOf), rep)
				}
				return rep, s.storeSource(tier), nil
			}
		}
		rep, err := s.simulate(ctx, spec, p)
		if err == nil {
			if persistable {
				// Write-through is best-effort: a full disk degrades
				// the store to a miss next time, never the run itself.
				_ = st.Put(key, rep)
			}
			if s.memo && !p.memoizable {
				// Reports are observation-invariant, so an observer
				// run's result is exactly what a plain Run of the same
				// spec would memoize — install it (the memo key ignores
				// observers) and let future plain or Cached requests
				// hit. Observer-carrying requests still always reach
				// this branch and simulate.
				s.runs.Add(spec.memoKey(&p, s.idOf), rep)
			}
		}
		return rep, SourceSim, err
	}
	src := SourceMemo // overwritten iff this caller computes
	rep, err := s.runs.DoContext(ctx, spec.memoKey(&p, s.idOf), func() (*stats.Report, error) {
		if st != nil {
			if key, ok := spec.persistKey(&p); ok {
				rep, tier, err := st.Do(ctx, key, func() (*stats.Report, error) {
					return s.simulate(ctx, spec, p)
				})
				if tier.Hit() {
					src = s.storeSource(tier)
				} else if err == nil {
					src = SourceSim
				}
				return rep, err
			}
		}
		src = SourceSim
		return s.simulate(ctx, spec, p)
	})
	return rep, src, err
}

// Cached returns the spec's Report if some cache tier already holds it
// — the in-memory memo (completed entries only; it never blocks on an
// in-flight run) or the persistent store — without ever simulating.
// Because Cached never runs anything, it answers for observer-carrying
// specs too (the memo key ignores observers; no events fire either
// way). Invalid specs report a miss.
func (s *Session) Cached(spec RunSpec) (*stats.Report, Source, bool) {
	p, err := spec.prepare()
	if err != nil {
		return nil, SourceSim, false
	}
	if s.memo {
		if rep, ok := s.runs.Peek(spec.memoKey(&p, s.idOf)); ok {
			return rep, SourceMemo, true
		}
	}
	if st := s.backend(); st != nil {
		if key, ok := spec.persistKey(&p); ok {
			if rep, tier := st.Get(key); tier.Hit() {
				if s.memo {
					// Promote to the memo tier (see RunTracked): the
					// next lookup answers from memory.
					s.runs.Add(spec.memoKey(&p, s.idOf), rep)
				}
				return rep, s.storeSource(tier), true
			}
		}
	}
	return nil, SourceSim, false
}

// RunAll simulates the specs concurrently under the session's jobs
// bound and returns the Reports pinned to input order — slot i is
// specs[i]'s Report (or nil on its error) no matter in which order the
// points complete, batch together, or get cancelled. Every spec runs
// even if an earlier one fails; errors are joined in input order, so
// both results and error text are independent of scheduling.
// Memo-and-store-missed points that share an instruction supply are
// simulated in lockstep batches (see RunAllTracked and batch.go);
// results are byte-identical either way.
func (s *Session) RunAll(ctx context.Context, specs ...RunSpec) ([]*stats.Report, error) {
	results := s.RunAllTracked(ctx, specs...)
	reps := make([]*stats.Report, len(results))
	errs := make([]error, len(results))
	for i := range results {
		reps[i], errs[i] = results[i].Report, results[i].Err
	}
	return reps, errors.Join(errs...)
}

// simulate executes one machine run under the gate.
func (s *Session) simulate(ctx context.Context, spec RunSpec, p plan) (rep *stats.Report, err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.gate.Do(func() {
		// Re-check after possibly parking on the gate.
		if err = ctx.Err(); err != nil {
			return
		}
		start := time.Now()
		defer s.paceSlot(ctx, start, 1)
		var m *core.Machine
		if m, err = core.New(p.cfg); err != nil {
			return
		}
		if err = attachThreads(m, spec, p.cfg); err != nil {
			return
		}
		s.sims.Add(1)
		rep, err = m.RunContext(ctx, p.stop)
	})
	return rep, err
}

// attachThreads feeds the machine's contexts according to the spec's
// mode, reproducing the Run* methodologies exactly.
func attachThreads(m *core.Machine, spec RunSpec, cfg core.Config) error {
	switch spec.mode {
	case ModeSolo:
		w := spec.workloads[0]
		return m.SetThreadStream(0, w.Spec.Short, w.Stream())
	case ModeGroup:
		primary := spec.workloads[0]
		if err := m.SetThreadStream(0, primary.Spec.Short, primary.Stream()); err != nil {
			return err
		}
		for i, comp := range spec.workloads[1:] {
			comp := comp
			err := m.SetThread(i+1, core.Repeat(comp.Spec.Short, func() *prog.Stream { return comp.Stream() }))
			if err != nil {
				return err
			}
		}
		return nil
	case ModeQueue:
		q := core.NewJobQueue()
		for _, w := range spec.workloads {
			w := w
			q.Add(w.Spec.Short, func() *prog.Stream { return w.Stream() })
		}
		src := q.Source()
		for i := 0; i < cfg.Contexts; i++ {
			if err := m.SetThread(i, src); err != nil {
				return err
			}
		}
		return nil
	case ModeCompiled:
		tr, err := spec.compiled.Trace(spec.schedule)
		if err != nil {
			return err
		}
		return m.SetThreadStream(0, spec.compiled.Prog.Name, tr.Stream())
	}
	return errors.New("session: spec has no mode")
}

// IsContextErr reports whether err came from a cancelled or expired
// context — the one error class the engine never memoizes, because it
// would not fail identically on retry.
func IsContextErr(err error) bool { return runner.IsContextErr(err) }
