package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapRunsEveryIndex(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 33} {
		var hits [100]atomic.Int32
		p := New(jobs)
		if err := p.Map(len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, n)
			}
		}
	}
}

func TestMapJoinsErrorsInIndexOrder(t *testing.T) {
	fail := map[int]bool{3: true, 7: true, 11: true}
	want := "task 3\ntask 7\ntask 11"
	for _, jobs := range []int{1, 4} {
		p := New(jobs)
		err := p.Map(16, func(i int) error {
			if fail[i] {
				return fmt.Errorf("task %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != want {
			t.Fatalf("jobs=%d: err = %q, want %q", jobs, err, want)
		}
	}
}

func TestMapContinuesPastFailures(t *testing.T) {
	var ran atomic.Int32
	p := New(2)
	err := p.Map(20, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if n := ran.Load(); n != 20 {
		t.Fatalf("ran %d of 20 tasks after a failure", n)
	}
}

func TestNewDefaultsAndBusy(t *testing.T) {
	if New(0).Jobs() < 1 {
		t.Fatal("default pool has no workers")
	}
	if New(-3).Jobs() < 1 {
		t.Fatal("negative jobs not defaulted")
	}
	p := New(4)
	if p.Jobs() != 4 {
		t.Fatalf("Jobs() = %d", p.Jobs())
	}
	if err := p.Run([]Task{func() error { time.Sleep(time.Millisecond); return nil }}); err != nil {
		t.Fatal(err)
	}
	if p.Busy() <= 0 {
		t.Fatal("Busy() not accumulated")
	}
	if err := p.Map(0, nil); err != nil {
		t.Fatal("empty Map should be a no-op")
	}
}

func TestCacheSingleflight(t *testing.T) {
	var c Cache[string, int]
	var executions atomic.Int32
	var wg sync.WaitGroup
	const goroutines = 64
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Do("k", func() (int, error) {
				executions.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the race window
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := executions.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one key", n)
	}
	if c.Misses() != 1 || c.Len() != 1 {
		t.Fatalf("misses=%d len=%d, want 1/1", c.Misses(), c.Len())
	}
}

func TestCacheDistinctKeys(t *testing.T) {
	var c Cache[int, int]
	p := New(8)
	if err := p.Map(256, func(i int) error {
		v, err := c.Do(i%16, func() (int, error) { return i % 16, nil })
		if err != nil || v != i%16 {
			return fmt.Errorf("key %d: got %d, %v", i%16, v, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.Misses() != 16 {
		t.Fatalf("misses = %d, want 16", c.Misses())
	}
}

func TestCacheMemoizesErrors(t *testing.T) {
	var c Cache[string, int]
	var executions atomic.Int32
	boom := func() (int, error) {
		executions.Add(1)
		return 0, errors.New("boom")
	}
	if _, err := c.Do("k", boom); err == nil {
		t.Fatal("error swallowed")
	}
	_, err := c.Do("k", boom)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("memoized err = %v", err)
	}
	if executions.Load() != 1 {
		t.Fatal("failing compute retried; deterministic failures must be memoized")
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	g := NewGate(3)
	if g.Limit() != 3 {
		t.Fatalf("Limit() = %d", g.Limit())
	}
	var in, max atomic.Int32
	p := New(16)
	if err := p.Map(64, func(int) error {
		g.Do(func() {
			n := in.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			in.Add(-1)
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > 3 {
		t.Fatalf("%d sections inside a 3-slot gate", m)
	}
	if g.Busy() <= 0 {
		t.Fatal("gate busy time not accumulated")
	}
	if NewGate(0).Limit() < 1 {
		t.Fatal("default gate limit")
	}
}

func TestGateTryAcquire(t *testing.T) {
	g := NewGate(4)
	if got := g.TryAcquire(0); got != 0 {
		t.Fatalf("TryAcquire(0) = %d", got)
	}
	if got := g.TryAcquire(-3); got != 0 {
		t.Fatalf("TryAcquire(-3) = %d", got)
	}
	// Claim more than the limit: capped at the free slots.
	if got := g.TryAcquire(10); got != 4 {
		t.Fatalf("TryAcquire(10) on an idle 4-slot gate = %d", got)
	}
	if got := g.Active(); got != 4 {
		t.Fatalf("Active() = %d after claiming 4", got)
	}
	// Fully claimed: nothing free, and TryAcquire must not block.
	if got := g.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire(1) on a full gate = %d", got)
	}
	g.Release(3)
	if got := g.TryAcquire(10); got != 3 {
		t.Fatalf("TryAcquire(10) after Release(3) = %d", got)
	}
	g.Release(4)
	if got := g.Active(); got != 0 {
		t.Fatalf("Active() = %d after releasing everything", got)
	}
	// Release of nothing is a no-op.
	g.Release(0)
	g.Release(-1)
	if got := g.Active(); got != 0 {
		t.Fatalf("Active() = %d after no-op releases", got)
	}
}

func TestGateTryAcquireInsideDo(t *testing.T) {
	// The batched-simulation pattern: a section already inside Do widens
	// across idle slots. TryAcquire while holding a slot must not block,
	// and claimed slots must count against concurrent Do admissions.
	g := NewGate(3)
	admitted := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go g.Do(func() {
		got := g.TryAcquire(8) // 2 free beyond our own slot
		close(admitted)
		<-release
		g.Release(got)
		done <- got
	})
	<-admitted
	// All three slots are spoken for: a second Do must wait.
	var second atomic.Bool
	go g.Do(func() { second.Store(true) })
	time.Sleep(10 * time.Millisecond)
	if second.Load() {
		t.Fatal("Do admitted while TryAcquire held every slot")
	}
	close(release)
	if got := <-done; got != 2 {
		t.Fatalf("TryAcquire(8) inside a 3-slot Do = %d, want 2", got)
	}
	// Released slots wake the parked Do.
	deadline := time.Now().Add(2 * time.Second)
	for !second.Load() {
		if time.Now().After(deadline) {
			t.Fatal("parked Do never admitted after Release")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheForget(t *testing.T) {
	var c Cache[string, int]
	calls := 0
	compute := func() (int, error) { calls++; return calls, nil }
	if v, _ := c.Do("k", compute); v != 1 {
		t.Fatalf("first Do = %d", v)
	}
	if v, _ := c.Do("k", compute); v != 1 {
		t.Fatalf("cached Do = %d, want memoized 1", v)
	}
	c.Forget("k")
	if v, _ := c.Do("k", compute); v != 2 {
		t.Fatalf("post-Forget Do = %d, want recompute 2", v)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d", n)
	}
	c.Forget("absent") // forgetting a missing key is a no-op
}

// TestDoContextCancelledLeaderWaiterRetries: a waiter that observes the
// singleflight leader's cancellation recomputes under its own live
// context, and the poisoned entry is never memoized.
func TestDoContextCancelledLeaderWaiterRetries(t *testing.T) {
	var c Cache[string, int]
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	lctx, lcancel := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	var leaderErr, waiterErr error
	var waiterVal int
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, leaderErr = c.DoContext(lctx, "k", func() (int, error) {
			close(leaderStarted)
			<-release
			return 0, lctx.Err()
		})
	}()
	<-leaderStarted
	wg.Add(1)
	go func() {
		defer wg.Done()
		waiterVal, waiterErr = c.DoContext(context.Background(), "k", func() (int, error) {
			return 42, nil
		})
	}()
	lcancel()
	close(release)
	wg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", leaderErr)
	}
	if waiterErr != nil || waiterVal != 42 {
		t.Fatalf("waiter got %d/%v, want 42/nil", waiterVal, waiterErr)
	}
	// The good recomputation is memoized; the cancellation is not.
	if v, err := c.DoContext(context.Background(), "k", func() (int, error) {
		t.Error("good entry was evicted")
		return -1, nil
	}); v != 42 || err != nil {
		t.Fatalf("memoized value = %d/%v", v, err)
	}
}

// TestDoContextCancelledCallerNotMemoized: a compute that fails with the
// caller's own cancellation leaves no entry behind.
func TestDoContextCancelledCallerNotMemoized(t *testing.T) {
	var c Cache[string, int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.DoContext(ctx, "k", func() (int, error) { return 0, ctx.Err() }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("cancelled compute left %d entries", n)
	}
	if v, err := c.DoContext(context.Background(), "k", func() (int, error) { return 7, nil }); v != 7 || err != nil {
		t.Fatalf("retry = %d/%v", v, err)
	}
}

// TestDoContextWaiterRespondsToOwnCancellation: a waiter parked on an
// in-flight entry unblocks with its own ctx.Err() without waiting for
// the leader, and the leader's result is still memoized.
func TestDoContextWaiterRespondsToOwnCancellation(t *testing.T) {
	var c Cache[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.DoContext(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
		if v != 42 || err != nil {
			t.Errorf("leader got %d/%v", v, err)
		}
	}()
	<-started

	wctx, wcancel := context.WithCancel(context.Background())
	wcancel()
	if _, err := c.DoContext(wctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("parked waiter err = %v, want context.Canceled", err)
	}

	close(release)
	<-done
	if v, err := c.DoContext(context.Background(), "k", nil); v != 42 || err != nil {
		t.Fatalf("memoized = %d/%v", v, err)
	}
	if n := c.Misses(); n != 1 {
		t.Fatalf("misses = %d, want 1", n)
	}
}
