// Package runner is the concurrent execution engine behind the
// experiment harness: a bounded worker pool that fans independent
// simulation points out over the machine's cores, a singleflight
// memoization cache that guarantees each distinct (workload, config)
// simulation runs exactly once no matter how many goroutines request
// it, and a Gate that bounds how many simulations execute at once
// across every layer of a nested orchestration.
//
// # Concurrency model
//
// A Pool runs at most Jobs() tasks at a time. Tasks must be independent
// of one another; they may share data only through concurrency-safe
// structures such as Cache. Map always executes every index and joins
// the errors in index order, so the outcome of a run — results and
// error text alike — is identical for any worker count, including 1.
// Pools bound only their own tasks; when fan-outs nest (a pool task
// that itself fans out), the global "at most N simulations in flight"
// contract is enforced by a shared Gate around the leaf work instead.
//
// # Determinism
//
// The engine parallelizes only work whose result is a pure function of
// its key: simulations here are deterministic, so a value computed by
// one worker is byte-for-byte the value any other schedule would have
// produced. Callers keep aggregation deterministic by collecting into
// index-addressed slots (as Map does) rather than in completion order.
package runner

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one independent unit of work.
type Task = func() error

// Pool executes independent tasks on a bounded set of workers.
type Pool struct {
	jobs int
	busy atomic.Int64 // cumulative task nanoseconds
}

// New creates a pool running at most jobs tasks concurrently; jobs <= 0
// selects runtime.NumCPU().
func New(jobs int) *Pool {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	return &Pool{jobs: jobs}
}

// Jobs returns the pool's concurrency bound.
func (p *Pool) Jobs() int { return p.jobs }

// Busy returns the cumulative wall time spent inside tasks across all
// workers — the serial-equivalent cost of the work the pool has run.
func (p *Pool) Busy() time.Duration { return time.Duration(p.busy.Load()) }

// Map runs fn(0) .. fn(n-1) on up to Jobs() workers. Every index runs
// even if an earlier one fails; the errors are joined in index order, so
// the returned error does not depend on scheduling.
func (p *Pool) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	run := func(i int) {
		start := time.Now()
		errs[i] = fn(i)
		p.busy.Add(int64(time.Since(start)))
	}
	if p.jobs == 1 || n == 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return errors.Join(errs...)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	workers := p.jobs
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return errors.Join(errs...)
}

// Run executes the tasks with Map semantics.
func (p *Pool) Run(tasks []Task) error {
	return p.Map(len(tasks), func(i int) error { return tasks[i]() })
}
