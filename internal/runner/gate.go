package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Gate bounds how many goroutines are inside leaf work sections at
// once. Unlike a Pool — which bounds its own tasks only — one Gate can
// be shared by every layer of an orchestration: outer fan-outs spawn
// freely and block cheaply, while the Gate keeps the number of
// simulations actually executing at the limit. Guard only leaf
// sections: code inside Do must not call Do on the same Gate, or it can
// deadlock holding the slot it waits for.
type Gate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	limit int
	in    int
	busy  atomic.Int64 // cumulative nanoseconds inside Do
}

// NewGate creates a gate admitting at most limit concurrent sections;
// limit <= 0 selects runtime.NumCPU().
func NewGate(limit int) *Gate {
	g := &Gate{}
	g.cond = sync.NewCond(&g.mu)
	g.SetLimit(limit)
	return g
}

// SetLimit changes the admission limit; limit <= 0 selects
// runtime.NumCPU(). Sections already admitted are unaffected.
func (g *Gate) SetLimit(limit int) {
	if limit <= 0 {
		limit = runtime.NumCPU()
	}
	g.mu.Lock()
	g.limit = limit
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Limit returns the current admission limit.
func (g *Gate) Limit() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.limit
}

// Do runs fn once a slot is free.
func (g *Gate) Do(fn func()) {
	g.mu.Lock()
	for g.in >= g.limit {
		g.cond.Wait()
	}
	g.in++
	g.mu.Unlock()

	start := time.Now()
	fn()
	g.busy.Add(int64(time.Since(start)))

	g.mu.Lock()
	g.in--
	g.mu.Unlock()
	// One exit frees one slot; SetLimit broadcasts for bulk changes.
	g.cond.Signal()
}

// TryAcquire claims up to max free slots without blocking and returns
// how many it got (possibly zero). It exists for work that can *use*
// extra parallelism but never needs it: a batched simulation already
// inside Do widens across idle slots when the machine has them and
// degrades to its own slot when it does not. Because TryAcquire never
// waits, it is safe to call while holding a Do slot — the deadlock rule
// for nested Do does not apply. Every claimed slot must be returned
// with Release.
func (g *Gate) TryAcquire(max int) int {
	if max <= 0 {
		return 0
	}
	g.mu.Lock()
	n := g.limit - g.in
	if n > max {
		n = max
	}
	if n < 0 {
		n = 0
	}
	g.in += n
	g.mu.Unlock()
	return n
}

// Release returns n slots claimed by TryAcquire.
func (g *Gate) Release(n int) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.in -= n
	g.mu.Unlock()
	if n == 1 {
		g.cond.Signal()
	} else {
		g.cond.Broadcast()
	}
}

// Busy returns the cumulative wall time spent inside gated sections —
// the serial-equivalent cost of the guarded work. Extra slots claimed
// via TryAcquire do not add to Busy: the section that claimed them is
// already timing its own wall clock, and counting the helpers again
// would double-bill the same work.
func (g *Gate) Busy() time.Duration { return time.Duration(g.busy.Load()) }

// Active returns how many sections are inside the gate right now —
// instantaneous occupancy, between 0 and Limit().
func (g *Gate) Active() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.in
}
