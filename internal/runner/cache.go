package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Cache is a concurrency-safe memoization table with singleflight
// semantics: for each key the compute function runs exactly once, while
// concurrent requesters for the same key block until that one execution
// finishes and then share its result. Errors are memoized too — the
// simulations this engine caches are deterministic, so a failed compute
// would fail identically on retry.
//
// The zero Cache is ready to use.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry[V]
	misses  atomic.Int64
}

type cacheEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the memoized value for key, computing it with fn on the
// first request. fn must not call Do with the same key (it would
// deadlock on itself).
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[K]*cacheEntry[V])
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	e.val, e.err = fn()
	close(e.done)
	return e.val, e.err
}

// Forget removes key's entry, so the next Do for it recomputes.
// Goroutines already waiting on the entry still receive its result.
func (c *Cache[K, V]) Forget(key K) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// forgetEntry removes key only if it still maps to e, so a retry never
// evicts a newer (good or in-flight) entry another caller installed.
func (c *Cache[K, V]) forgetEntry(key K, e *cacheEntry[V]) {
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok && cur == e {
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

// IsContextErr reports a cancelled or expired context — the one error
// class the engine never memoizes, because it would not fail
// identically on retry. The session engine and the CLIs share this
// single predicate.
func IsContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// DoContext is Do with cancellation discipline: entries whose compute
// failed with a context error are forgotten (never memoized), the
// computing caller returns its own cancellation, a parked waiter stays
// responsive to its own ctx (it unblocks with ctx.Err() while the
// leader's computation continues for the others), and a waiter that
// observes another caller's cancellation retries the computation under
// its own still-live ctx. The single-computation guarantee holds for
// every entry that does not end in a cancellation.
func (c *Cache[K, V]) DoContext(ctx context.Context, key K, fn func() (V, error)) (V, error) {
	for {
		c.mu.Lock()
		if c.entries == nil {
			c.entries = make(map[K]*cacheEntry[V])
		}
		if e, ok := c.entries[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				var zero V
				return zero, ctx.Err()
			}
			if e.err == nil || !IsContextErr(e.err) {
				return e.val, e.err
			}
			// The computing caller was cancelled. Drop the poisoned
			// entry (only if it is still the installed one); if our own
			// context is live the cancellation was not ours, so retry.
			c.forgetEntry(key, e)
			if err := ctx.Err(); err != nil {
				var zero V
				return zero, err
			}
			continue
		}
		e := &cacheEntry[V]{done: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()

		c.misses.Add(1)
		e.val, e.err = fn()
		close(e.done)
		if e.err != nil && IsContextErr(e.err) {
			c.forgetEntry(key, e)
		}
		return e.val, e.err
	}
}

// Add installs an externally-computed value for key if the cache has no
// entry for it (in-flight or done), reporting whether it was installed.
// It never disturbs an existing entry, so the single-computation
// guarantee for Do callers is unaffected.
func (c *Cache[K, V]) Add(key K, val V) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[K]*cacheEntry[V])
	}
	if _, ok := c.entries[key]; ok {
		return false
	}
	e := &cacheEntry[V]{done: make(chan struct{}), val: val}
	close(e.done)
	c.entries[key] = e
	return true
}

// Peek returns key's value if its computation has finished
// successfully. It never blocks: in-flight entries, errored entries and
// absent keys all report ok=false.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	var zero V
	if !ok {
		return zero, false
	}
	select {
	case <-e.done:
	default:
		return zero, false
	}
	if e.err != nil {
		return zero, false
	}
	return e.val, true
}

// Misses returns how many times a compute function actually ran — the
// number of distinct keys ever requested.
func (c *Cache[K, V]) Misses() int64 { return c.misses.Load() }

// Len returns the number of cached keys (including in-flight ones).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
