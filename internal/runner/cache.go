package runner

import (
	"sync"
	"sync/atomic"
)

// Cache is a concurrency-safe memoization table with singleflight
// semantics: for each key the compute function runs exactly once, while
// concurrent requesters for the same key block until that one execution
// finishes and then share its result. Errors are memoized too — the
// simulations this engine caches are deterministic, so a failed compute
// would fail identically on retry.
//
// The zero Cache is ready to use.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry[V]
	misses  atomic.Int64
}

type cacheEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the memoized value for key, computing it with fn on the
// first request. fn must not call Do with the same key (it would
// deadlock on itself).
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[K]*cacheEntry[V])
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	e.val, e.err = fn()
	close(e.done)
	return e.val, e.err
}

// Misses returns how many times a compute function actually ran — the
// number of distinct keys ever requested.
func (c *Cache[K, V]) Misses() int64 { return c.misses.Load() }

// Len returns the number of cached keys (including in-flight ones).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
