package isa

import "fmt"

// operand signature requirements per kind of operand slot.
type slotReq uint8

const (
	slotNone slotReq = iota // must be absent
	slotA                   // A register
	slotS                   // S register
	slotV                   // V register
	slotAS                  // A or S register
	slotVS                  // V register or S broadcast
	slotImm                 // immediate
	slotAnyR                // any register class
	slotOptS                // S register or absent
	slotOptR                // any register or absent
)

func slotOK(r slotReq, o Operand) bool {
	switch r {
	case slotNone:
		return o.Class == ClassNone
	case slotA:
		return o.Class == ClassA
	case slotS:
		return o.Class == ClassS
	case slotV:
		return o.Class == ClassV
	case slotAS:
		return o.Class == ClassA || o.Class == ClassS
	case slotVS:
		return o.Class == ClassV || o.Class == ClassS
	case slotImm:
		return o.Class == ClassImm
	case slotAnyR:
		return o.IsReg()
	case slotOptS:
		return o.Class == ClassS || o.Class == ClassNone
	case slotOptR:
		return o.IsReg() || o.Class == ClassNone
	}
	return false
}

type signature struct{ dst, src1, src2 slotReq }

var opSigs = map[Op]signature{
	OpNop:    {slotNone, slotNone, slotNone},
	OpMovI:   {slotAS, slotNone, slotImm},
	OpAAdd:   {slotA, slotA, slotImm},
	OpAShl:   {slotA, slotA, slotImm},
	OpSAddI:  {slotAS, slotAS, slotAS},
	OpSMulI:  {slotAS, slotAS, slotAS},
	OpSDivI:  {slotAS, slotAS, slotAS},
	OpSLogic: {slotAS, slotAS, slotAS},
	OpSShift: {slotAS, slotAS, slotImm},
	OpSCmp:   {slotAS, slotAS, slotAS},

	OpSAdd:  {slotS, slotS, slotS},
	OpSMul:  {slotS, slotS, slotS},
	OpSDiv:  {slotS, slotS, slotS},
	OpSSqrt: {slotS, slotS, slotNone},

	OpSLoad:  {slotAS, slotA, slotNone},
	OpSStore: {slotNone, slotAS, slotA},

	OpBr:    {slotNone, slotAS, slotNone},
	OpJmp:   {slotNone, slotNone, slotNone},
	OpSetVL: {slotNone, slotAS, slotNone},
	OpSetVS: {slotNone, slotAS, slotNone},

	OpVAdd:   {slotV, slotV, slotV},
	OpVSub:   {slotV, slotV, slotV},
	OpVMul:   {slotV, slotV, slotV},
	OpVDiv:   {slotV, slotV, slotV},
	OpVSqrt:  {slotV, slotV, slotNone},
	OpVAnd:   {slotV, slotV, slotV},
	OpVOr:    {slotV, slotV, slotV},
	OpVXor:   {slotV, slotV, slotV},
	OpVShl:   {slotV, slotV, slotNone},
	OpVShr:   {slotV, slotV, slotNone},
	OpVCmp:   {slotV, slotV, slotV},
	OpVMerge: {slotV, slotV, slotV},

	OpVAddS: {slotV, slotV, slotS},
	OpVMulS: {slotV, slotV, slotS},

	OpVRedAdd: {slotS, slotV, slotNone},

	OpVLoad:    {slotV, slotA, slotNone},
	OpVStore:   {slotNone, slotV, slotA},
	OpVGather:  {slotV, slotV, slotA},
	OpVScatter: {slotNone, slotV, slotV},
}

func classMax(c RegClass) uint8 {
	switch c {
	case ClassA:
		return NumA
	case ClassS:
		return NumS
	case ClassV:
		return VRegLimit
	}
	return 0
}

func checkOperand(o Operand) error {
	if !o.IsReg() {
		return nil
	}
	if o.Reg >= classMax(o.Class) {
		return fmt.Errorf("register %s out of range", o)
	}
	return nil
}

// Validate checks that the instruction is well formed: known opcode,
// operand classes matching the opcode's signature, register indices in
// range.
func (in Inst) Validate() error {
	sig, ok := opSigs[in.Op]
	if !ok {
		return fmt.Errorf("isa: unknown opcode %d", uint8(in.Op))
	}
	if !slotOK(sig.dst, in.Dst) {
		return fmt.Errorf("isa: %s: bad destination %s", in.Op, in.Dst)
	}
	if !slotOK(sig.src1, in.Src1) {
		return fmt.Errorf("isa: %s: bad source1 %s", in.Op, in.Src1)
	}
	if !slotOK(sig.src2, in.Src2) {
		return fmt.Errorf("isa: %s: bad source2 %s", in.Op, in.Src2)
	}
	for _, o := range [...]Operand{in.Dst, in.Src1, in.Src2} {
		if err := checkOperand(o); err != nil {
			return fmt.Errorf("isa: %s: %v", in.Op, err)
		}
	}
	return nil
}

// VSources returns the vector-register sources of the instruction
// (0, 1 or 2 of them) in srcs, reporting how many were filled.
func (in Inst) VSources(srcs *[2]uint8) int {
	n := 0
	if in.Src1.Class == ClassV {
		srcs[n] = in.Src1.Reg
		n++
	}
	if in.Src2.Class == ClassV {
		srcs[n] = in.Src2.Reg
		n++
	}
	return n
}

// ScalarSources returns the A/S-register sources of the instruction.
func (in Inst) ScalarSources(srcs *[2]Operand) int {
	n := 0
	if in.Src1.Class == ClassA || in.Src1.Class == ClassS {
		srcs[n] = in.Src1
		n++
	}
	if in.Src2.Class == ClassA || in.Src2.Class == ClassS {
		srcs[n] = in.Src2
		n++
	}
	return n
}
