package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding of static instructions, used by the trace container.
// Layout: op(1) dst(2) src1(2) src2(2) imm(zigzag varint). Operands encode
// as class(1) reg(1).

// AppendInst appends the binary encoding of in to b.
func AppendInst(b []byte, in Inst) []byte {
	b = append(b, byte(in.Op))
	b = appendOperand(b, in.Dst)
	b = appendOperand(b, in.Src1)
	b = appendOperand(b, in.Src2)
	b = binary.AppendVarint(b, in.Imm)
	return b
}

func appendOperand(b []byte, o Operand) []byte {
	return append(b, byte(o.Class), o.Reg)
}

// DecodeInst decodes one instruction from b, returning it and the number
// of bytes consumed.
func DecodeInst(b []byte) (Inst, int, error) {
	var in Inst
	if len(b) < 7 {
		return in, 0, fmt.Errorf("isa: truncated instruction encoding")
	}
	in.Op = Op(b[0])
	if in.Op >= NumOps {
		return in, 0, fmt.Errorf("isa: invalid opcode %d", b[0])
	}
	in.Dst = Operand{RegClass(b[1]), b[2]}
	in.Src1 = Operand{RegClass(b[3]), b[4]}
	in.Src2 = Operand{RegClass(b[5]), b[6]}
	imm, n := binary.Varint(b[7:])
	if n <= 0 {
		return in, 0, fmt.Errorf("isa: truncated immediate")
	}
	in.Imm = imm
	if err := in.Validate(); err != nil {
		return in, 0, err
	}
	return in, 7 + n, nil
}
