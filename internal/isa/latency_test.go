package isa

import "testing"

func TestDefaultLatenciesValid(t *testing.T) {
	lt := DefaultLatencies()
	if err := lt.Validate(); err != nil {
		t.Fatalf("default table invalid: %v", err)
	}
}

func TestDefaultLatenciesPaperProperties(t *testing.T) {
	lt := DefaultLatencies()
	// Section 3.1: vector latencies exceed scalar latencies for every
	// class except division and square root.
	for _, c := range []LatClass{LatAdd, LatLogic, LatShift, LatMul} {
		if lt.Vector[c] <= lt.ScalarFP[c] && lt.Vector[c] <= lt.ScalarInt[c] {
			t.Errorf("class %v: vector latency %d should exceed scalar (%d int / %d fp)",
				c, lt.Vector[c], lt.ScalarInt[c], lt.ScalarFP[c])
		}
	}
	for _, c := range []LatClass{LatDiv, LatSqrt} {
		// Vector div/sqrt undercut at least the scalar integer column.
		if lt.Vector[c] >= lt.ScalarInt[c] {
			t.Errorf("class %v: vector %d should undercut scalar int %d", c, lt.Vector[c], lt.ScalarInt[c])
		}
	}
	if lt.ReadXbar != 2 || lt.WriteXbar != 2 {
		t.Errorf("reference crossbars should default to 2 cycles, got %d/%d", lt.ReadXbar, lt.WriteXbar)
	}
}

func TestScalarLatencySelectsColumn(t *testing.T) {
	lt := DefaultLatencies()
	if lt.Scalar(OpSAddI) != 1 {
		t.Errorf("int add = %d, want 1", lt.Scalar(OpSAddI))
	}
	if lt.Scalar(OpSAdd) != 2 {
		t.Errorf("fp add = %d, want 2", lt.Scalar(OpSAdd))
	}
	if lt.Scalar(OpSDivI) != 34 {
		t.Errorf("int div = %d, want 34", lt.Scalar(OpSDivI))
	}
	if lt.Scalar(OpSDiv) != 9 {
		t.Errorf("fp div = %d, want 9", lt.Scalar(OpSDiv))
	}
	// Ops with unset latency classes still take at least a cycle.
	if lt.Scalar(OpNop) < 1 {
		t.Error("scalar latency must be >= 1")
	}
}

func TestVectorFULatency(t *testing.T) {
	lt := DefaultLatencies()
	if lt.VectorFU(OpVAdd) != 4 {
		t.Errorf("vadd = %d, want 4", lt.VectorFU(OpVAdd))
	}
	if lt.VectorFU(OpVMul) != 7 {
		t.Errorf("vmul = %d, want 7", lt.VectorFU(OpVMul))
	}
	if lt.VectorFU(OpVDiv) != 20 {
		t.Errorf("vdiv = %d, want 20", lt.VectorFU(OpVDiv))
	}
	if lt.VectorFU(OpVLoad) < 1 {
		t.Error("vector FU latency must be >= 1")
	}
}

func TestValidateCatchesNegatives(t *testing.T) {
	lt := DefaultLatencies()
	lt.ReadXbar = -1
	if lt.Validate() == nil {
		t.Error("negative crossbar latency accepted")
	}
	lt = DefaultLatencies()
	lt.Vector[LatMul] = -3
	if lt.Validate() == nil {
		t.Error("negative vector latency accepted")
	}
}
