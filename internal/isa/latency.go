package isa

import "fmt"

// LatencyTable reproduces Table 1 of the paper: per-latency-class
// functional-unit latencies for the scalar unit (integer and floating point
// columns) and the vector units, plus the vector start-up cost and the
// vector register file read/write crossbar latencies.
//
// Memory latency is deliberately absent: the paper varies it as the central
// experimental parameter, so it lives in the machine configuration.
type LatencyTable struct {
	ScalarInt [numLatClass]int
	ScalarFP  [numLatClass]int
	Vector    [numLatClass]int

	// VectorStartup is charged once at the head of every vector
	// instruction's pipeline.
	VectorStartup int

	// ReadXbar / WriteXbar are the vector register file crossbar
	// traversal latencies. The reference machine uses 2 cycles each;
	// Section 8 studies charging the multithreaded machine 3.
	ReadXbar  int
	WriteXbar int
}

// DefaultLatencies returns the Table 1 reconstruction documented in
// DESIGN.md. All values are in processor cycles.
func DefaultLatencies() LatencyTable {
	var t LatencyTable
	t.ScalarInt[LatAdd] = 1
	t.ScalarInt[LatLogic] = 1
	t.ScalarInt[LatShift] = 1
	t.ScalarInt[LatMul] = 5
	t.ScalarInt[LatDiv] = 34
	t.ScalarInt[LatSqrt] = 34
	t.ScalarInt[LatCtl] = 1

	t.ScalarFP[LatAdd] = 2
	t.ScalarFP[LatLogic] = 1
	t.ScalarFP[LatShift] = 1
	t.ScalarFP[LatMul] = 2
	t.ScalarFP[LatDiv] = 9
	t.ScalarFP[LatSqrt] = 9
	t.ScalarFP[LatCtl] = 1

	t.Vector[LatAdd] = 4
	t.Vector[LatLogic] = 4
	t.Vector[LatShift] = 4
	t.Vector[LatMul] = 7
	t.Vector[LatDiv] = 20
	t.Vector[LatSqrt] = 20

	t.VectorStartup = 1
	t.ReadXbar = 2
	t.WriteXbar = 2
	return t
}

// Scalar returns the scalar-unit latency for op (1 cycle minimum).
func (t *LatencyTable) Scalar(op Op) int {
	info := InfoOf(op)
	var l int
	if info.FP {
		l = t.ScalarFP[info.Lat]
	} else {
		l = t.ScalarInt[info.Lat]
	}
	if l < 1 {
		l = 1
	}
	return l
}

// VectorFU returns the vector functional-unit latency for op. Memory
// latency is not included; the memory system owns it.
func (t *LatencyTable) VectorFU(op Op) int {
	l := t.Vector[InfoOf(op).Lat]
	if l < 1 {
		l = 1
	}
	return l
}

// Validate reports a configuration error, if any.
func (t *LatencyTable) Validate() error {
	if t.VectorStartup < 0 || t.ReadXbar < 0 || t.WriteXbar < 0 {
		return fmt.Errorf("isa: negative startup/crossbar latency")
	}
	for c := LatClass(1); c < numLatClass; c++ {
		if t.ScalarInt[c] < 0 || t.ScalarFP[c] < 0 || t.Vector[c] < 0 {
			return fmt.Errorf("isa: negative latency for class %v", c)
		}
	}
	return nil
}
