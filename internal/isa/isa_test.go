package isa

import (
	"strings"
	"testing"
)

func TestEveryOpHasInfo(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		info := InfoOf(op)
		if info.Name == "" {
			t.Errorf("op %d has no name", op)
		}
		if strings.Contains(info.Name, "(") {
			t.Errorf("op %d has placeholder name %q", op, info.Name)
		}
	}
}

func TestEveryOpHasSignature(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if _, ok := opSigs[op]; !ok {
			t.Errorf("op %v has no operand signature", op)
		}
	}
}

func TestUnknownOpInfo(t *testing.T) {
	info := InfoOf(NumOps + 3)
	if info.Name == "" {
		t.Fatal("out-of-range op should still produce a printable name")
	}
}

func TestVectorClassification(t *testing.T) {
	cases := []struct {
		op        Op
		vector    bool
		vectorMem bool
		mem       bool
		fu2Only   bool
	}{
		{OpVAdd, true, false, false, false},
		{OpVMul, true, false, false, true},
		{OpVDiv, true, false, false, true},
		{OpVSqrt, true, false, false, true},
		{OpVMulS, true, false, false, true},
		{OpVAnd, true, false, false, false},
		{OpVLoad, true, true, true, false},
		{OpVStore, true, true, true, false},
		{OpVGather, true, true, true, false},
		{OpVScatter, true, true, true, false},
		{OpSLoad, false, false, true, false},
		{OpSStore, false, false, true, false},
		{OpSAdd, false, false, false, false},
		{OpBr, false, false, false, false},
		{OpSetVL, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsVector(); got != c.vector {
			t.Errorf("%v.IsVector() = %v, want %v", c.op, got, c.vector)
		}
		if got := c.op.IsVectorMem(); got != c.vectorMem {
			t.Errorf("%v.IsVectorMem() = %v, want %v", c.op, got, c.vectorMem)
		}
		if got := c.op.IsMem(); got != c.mem {
			t.Errorf("%v.IsMem() = %v, want %v", c.op, got, c.mem)
		}
		if got := c.op.FU2Only(); got != c.fu2Only {
			t.Errorf("%v.FU2Only() = %v, want %v", c.op, got, c.fu2Only)
		}
	}
}

func TestFU1RestrictionMatchesPaper(t *testing.T) {
	// Section 3: FU1 executes all vector instructions except
	// multiplication, division and square root.
	for op := Op(0); op < NumOps; op++ {
		info := InfoOf(op)
		if info.Kind != KindVector {
			continue
		}
		isMulDivSqrt := info.Lat == LatMul || info.Lat == LatDiv || info.Lat == LatSqrt
		if isMulDivSqrt && info.FU1OK {
			t.Errorf("%v: mul/div/sqrt must be FU2-only", op)
		}
		if !isMulDivSqrt && !info.FU1OK {
			t.Errorf("%v: non-mul/div/sqrt vector op should run on FU1", op)
		}
	}
}

func TestVBank(t *testing.T) {
	// Two registers per bank: v0,v1 -> bank 0 ... v6,v7 -> bank 3.
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for r := uint8(0); r < NumV; r++ {
		if VBank(r) != want[r] {
			t.Errorf("VBank(%d) = %d, want %d", r, VBank(r), want[r])
		}
	}
}

func TestOperandConstructorsAndString(t *testing.T) {
	if got := A(3).String(); got != "a3" {
		t.Errorf("A(3) = %q", got)
	}
	if got := S(5).String(); got != "s5" {
		t.Errorf("S(5) = %q", got)
	}
	if got := V(7).String(); got != "v7" {
		t.Errorf("V(7) = %q", got)
	}
	if got := None.String(); got != "-" {
		t.Errorf("None = %q", got)
	}
	if !V(1).IsReg() || Imm().IsReg() || None.IsReg() {
		t.Error("IsReg misclassifies operands")
	}
}

func TestInstString(t *testing.T) {
	in := Inst{Op: OpVAdd, Dst: V(0), Src1: V(1), Src2: V(2)}
	if got := in.String(); got != "vadd v0, v1, v2" {
		t.Errorf("String() = %q", got)
	}
	mi := Inst{Op: OpMovI, Dst: A(1), Src2: Imm(), Imm: 42}
	if got := mi.String(); got != "movi a1, #42" {
		t.Errorf("String() = %q", got)
	}
}

func TestDynInstStringAndOps(t *testing.T) {
	d := DynInst{
		Inst: Inst{Op: OpVLoad, Dst: V(2), Src1: A(0)},
		VL:   64, Stride: 8, Addr: 0x1000,
	}
	if d.Ops() != 64 {
		t.Errorf("Ops() = %d, want 64", d.Ops())
	}
	if s := d.String(); !strings.Contains(s, "vl=64") || !strings.Contains(s, "0x1000") {
		t.Errorf("String() = %q missing dynamic fields", s)
	}
	sc := DynInst{Inst: Inst{Op: OpSAdd, Dst: S(0), Src1: S(1), Src2: S(2)}}
	if sc.Ops() != 1 {
		t.Errorf("scalar Ops() = %d, want 1", sc.Ops())
	}
	sv := DynInst{Inst: Inst{Op: OpSetVL, Src1: A(1)}, SetVal: 99}
	if s := sv.String(); !strings.Contains(s, "=99") {
		t.Errorf("SetVL String() = %q", s)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	good := []Inst{
		{Op: OpNop},
		{Op: OpMovI, Dst: S(0), Src2: Imm(), Imm: 7},
		{Op: OpAAdd, Dst: A(1), Src1: A(1), Src2: Imm(), Imm: 8},
		{Op: OpSAdd, Dst: S(1), Src1: S(2), Src2: S(3)},
		{Op: OpSLoad, Dst: S(0), Src1: A(0)},
		{Op: OpSStore, Src1: S(0), Src2: A(0)},
		{Op: OpBr, Src1: S(0)},
		{Op: OpSetVL, Src1: A(2)},
		{Op: OpVAdd, Dst: V(0), Src1: V(1), Src2: V(2)},
		{Op: OpVSqrt, Dst: V(0), Src1: V(1)},
		{Op: OpVAddS, Dst: V(0), Src1: V(1), Src2: S(2)},
		{Op: OpVRedAdd, Dst: S(0), Src1: V(1)},
		{Op: OpVLoad, Dst: V(0), Src1: A(0)},
		{Op: OpVStore, Src1: V(0), Src2: A(0)},
		{Op: OpVGather, Dst: V(0), Src1: V(1), Src2: A(0)},
		{Op: OpVScatter, Src1: V(0), Src2: V(1)},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", in, err)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []Inst{
		{Op: NumOps}, // unknown op
		{Op: OpVAdd, Dst: S(0), Src1: V(1), Src2: V(2)},         // wrong dst class
		{Op: OpVAdd, Dst: V(0), Src1: A(1), Src2: V(2)},         // wrong src class
		{Op: OpVAdd, Dst: V(VRegLimit), Src1: V(1), Src2: V(2)}, // reg out of range
		{Op: OpSAdd, Dst: S(0), Src1: S(1)},                     // missing src2
		{Op: OpNop, Dst: S(0)},                                  // extraneous dst
		{Op: OpVLoad, Dst: V(0), Src1: S(1)},                    // base must be A
		{Op: OpMovI, Dst: S(0), Src2: S(1)},                     // imm required
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%s) accepted malformed instruction", in)
		}
	}
}

func TestVSourcesAndScalarSources(t *testing.T) {
	var vs [2]uint8
	in := Inst{Op: OpVAdd, Dst: V(0), Src1: V(3), Src2: V(5)}
	if n := in.VSources(&vs); n != 2 || vs[0] != 3 || vs[1] != 5 {
		t.Errorf("VSources = %d %v", n, vs)
	}
	in2 := Inst{Op: OpVAddS, Dst: V(0), Src1: V(3), Src2: S(2)}
	if n := in2.VSources(&vs); n != 1 || vs[0] != 3 {
		t.Errorf("VSources(vadds) = %d %v", n, vs)
	}
	var ss [2]Operand
	if n := in2.ScalarSources(&ss); n != 1 || ss[0] != S(2) {
		t.Errorf("ScalarSources(vadds) = %d %v", n, ss)
	}
}
