package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomValidInst builds a random well-formed instruction.
func randomValidInst(r *rand.Rand) Inst {
	ops := []Inst{
		{Op: OpNop},
		{Op: OpMovI, Dst: S(uint8(r.Intn(NumS))), Src2: Imm(), Imm: r.Int63n(1 << 40)},
		{Op: OpAAdd, Dst: A(uint8(r.Intn(NumA))), Src1: A(uint8(r.Intn(NumA))), Src2: Imm(), Imm: int64(r.Intn(4096) - 2048)},
		{Op: OpSAdd, Dst: S(uint8(r.Intn(NumS))), Src1: S(uint8(r.Intn(NumS))), Src2: S(uint8(r.Intn(NumS)))},
		{Op: OpSLoad, Dst: S(uint8(r.Intn(NumS))), Src1: A(uint8(r.Intn(NumA)))},
		{Op: OpSStore, Src1: S(uint8(r.Intn(NumS))), Src2: A(uint8(r.Intn(NumA)))},
		{Op: OpBr, Src1: S(uint8(r.Intn(NumS)))},
		{Op: OpSetVL, Src1: A(uint8(r.Intn(NumA)))},
		{Op: OpVAdd, Dst: V(uint8(r.Intn(NumV))), Src1: V(uint8(r.Intn(NumV))), Src2: V(uint8(r.Intn(NumV)))},
		{Op: OpVMulS, Dst: V(uint8(r.Intn(NumV))), Src1: V(uint8(r.Intn(NumV))), Src2: S(uint8(r.Intn(NumS)))},
		{Op: OpVLoad, Dst: V(uint8(r.Intn(NumV))), Src1: A(uint8(r.Intn(NumA)))},
		{Op: OpVStore, Src1: V(uint8(r.Intn(NumV))), Src2: A(uint8(r.Intn(NumA)))},
	}
	return ops[r.Intn(len(ops))]
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		in := randomValidInst(r)
		b := AppendInst(nil, in)
		got, n, err := DecodeInst(b)
		if err != nil {
			t.Fatalf("decode(%s): %v", in, err)
		}
		if n != len(b) {
			t.Fatalf("decode(%s) consumed %d of %d bytes", in, n, len(b))
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("round trip: got %+v, want %+v", got, in)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	// Property: round-trip through the codec is the identity on valid
	// instructions, regardless of how they are concatenated.
	f := func(seed int64, count uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(count%16) + 1
		insts := make([]Inst, n)
		var buf []byte
		for i := range insts {
			insts[i] = randomValidInst(r)
			buf = AppendInst(buf, insts[i])
		}
		for i := 0; i < n; i++ {
			in, used, err := DecodeInst(buf)
			if err != nil || !reflect.DeepEqual(in, insts[i]) {
				return false
			}
			buf = buf[used:]
		}
		return len(buf) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeInst(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := DecodeInst([]byte{1, 2, 3}); err == nil {
		t.Error("truncated input accepted")
	}
	if _, _, err := DecodeInst([]byte{255, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("invalid opcode accepted")
	}
	// Valid opcode, malformed operand classes.
	b := []byte{byte(OpVAdd), byte(ClassS), 0, byte(ClassV), 1, byte(ClassV), 2, 0}
	if _, _, err := DecodeInst(b); err == nil {
		t.Error("semantically invalid instruction accepted")
	}
}

func TestDecodeTruncatedImmediate(t *testing.T) {
	in := Inst{Op: OpMovI, Dst: S(0), Src2: Imm(), Imm: 1 << 50}
	b := AppendInst(nil, in)
	if _, _, err := DecodeInst(b[:len(b)-2]); err == nil {
		t.Error("truncated immediate accepted")
	}
}
