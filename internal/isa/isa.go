// Package isa defines the instruction set architecture of the modelled
// machine: a Convex C3400-class register-register vector architecture with
// three architectural register classes (A address registers, S scalar
// registers, V vector registers), a vector-length register and a
// vector-stride register.
//
// The package is purely declarative: opcodes, operand classes, latency
// classes, functional-unit eligibility and a disassembler. Timing semantics
// live in internal/core; this package only states *what* an instruction is.
package isa

import "fmt"

// Architectural constants of the modelled machine (Section 3 of the paper).
const (
	NumA = 8 // address registers per context
	NumS = 8 // scalar registers per context
	NumV = 8 // vector registers per context

	// MaxVL is the hardware vector length: each V register holds up to
	// 128 elements of 64 bits.
	MaxVL = 128

	// ElemBytes is the size of one vector element.
	ElemBytes = 8

	// The eight vector registers are grouped two per bank; every bank has
	// two read ports and one write port into the crossbars.
	VRegsPerBank   = 2
	NumVBanks      = NumV / VRegsPerBank
	BankReadPorts  = 2
	BankWritePorts = 1

	// VRegLimit is the largest vector register count the ISA encoding
	// can name. The constants above describe the reference Convex C3400
	// shape; the arch layer (internal/arch) may declare machines with up
	// to VRegLimit vector registers, and those machines enforce their
	// own per-context limit at run time.
	VRegLimit = 64
)

// VBank returns the register-bank index holding vector register v.
func VBank(v uint8) int { return int(v) / VRegsPerBank }

// RegClass identifies an architectural register file.
type RegClass uint8

const (
	ClassNone RegClass = iota // operand unused
	ClassA                    // address registers
	ClassS                    // scalar registers
	ClassV                    // vector registers
	ClassImm                  // immediate operand (uses Inst.Imm)
)

func (c RegClass) String() string {
	switch c {
	case ClassNone:
		return "-"
	case ClassA:
		return "a"
	case ClassS:
		return "s"
	case ClassV:
		return "v"
	case ClassImm:
		return "#"
	}
	return fmt.Sprintf("RegClass(%d)", uint8(c))
}

// Operand names one architectural register (or an immediate slot).
type Operand struct {
	Class RegClass
	Reg   uint8
}

// None is the absent operand.
var None = Operand{}

// A, S and V construct operands of the three register classes.
func A(r uint8) Operand { return Operand{ClassA, r} }
func S(r uint8) Operand { return Operand{ClassS, r} }
func V(r uint8) Operand { return Operand{ClassV, r} }

// Imm marks an immediate operand; the value travels in Inst.Imm.
func Imm() Operand { return Operand{ClassImm, 0} }

func (o Operand) String() string {
	switch o.Class {
	case ClassNone:
		return "-"
	case ClassImm:
		return "#imm"
	default:
		return fmt.Sprintf("%s%d", o.Class, o.Reg)
	}
}

// IsReg reports whether the operand names an architectural register.
func (o Operand) IsReg() bool {
	return o.Class == ClassA || o.Class == ClassS || o.Class == ClassV
}

// LatClass groups opcodes that share a functional-unit latency (Table 1).
type LatClass uint8

const (
	LatNone  LatClass = iota
	LatAdd            // add/subtract/compare/merge
	LatLogic          // logical operations
	LatShift          // shifts
	LatMul            // multiply
	LatDiv            // divide
	LatSqrt           // square root
	LatMem            // memory access (latency set by the memory system)
	LatCtl            // control transfer and VL/VS updates
	numLatClass
)

var latClassNames = [...]string{
	LatNone: "none", LatAdd: "add", LatLogic: "logic", LatShift: "shift",
	LatMul: "mul", LatDiv: "div", LatSqrt: "sqrt", LatMem: "mem", LatCtl: "ctl",
}

func (l LatClass) String() string {
	if int(l) < len(latClassNames) {
		return latClassNames[l]
	}
	return fmt.Sprintf("LatClass(%d)", uint8(l))
}

// Op enumerates the opcodes of the modelled ISA.
type Op uint8

const (
	OpNop Op = iota

	// Scalar integer / address arithmetic (A or S destinations).
	OpMovI  // dst ← imm
	OpAAdd  // address add
	OpAShl  // address shift
	OpSAddI // integer add
	OpSMulI // integer multiply
	OpSDivI // integer divide
	OpSLogic
	OpSShift
	OpSCmp

	// Scalar floating point (S registers).
	OpSAdd
	OpSMul
	OpSDiv
	OpSSqrt

	// Scalar memory.
	OpSLoad  // dst ← mem[addr]
	OpSStore // mem[addr] ← src1

	// Control.
	OpBr  // conditional branch on src1
	OpJmp // unconditional jump
	OpSetVL
	OpSetVS

	// Vector arithmetic (element-wise over VL elements).
	OpVAdd
	OpVSub
	OpVMul
	OpVDiv
	OpVSqrt
	OpVAnd
	OpVOr
	OpVXor
	OpVShl
	OpVShr
	OpVCmp
	OpVMerge

	// Vector-scalar forms: src2 is an S register broadcast.
	OpVAddS
	OpVMulS

	// Vector reduction: dst is an S register, VL operations performed.
	OpVRedAdd

	// Vector memory.
	OpVLoad    // dst(V) ← mem[base + i*stride]
	OpVStore   // mem[base + i*stride] ← src1(V)
	OpVGather  // dst(V) ← mem[base + index(V)[i]]
	OpVScatter // mem[base + index(V)[i]] ← src1(V)

	NumOps // sentinel; not a real opcode
)

// Kind is a coarse classification used by the simulator's dispatch logic.
type Kind uint8

const (
	KindScalar    Kind = iota // scalar arithmetic / moves
	KindScalarMem             // scalar load/store
	KindBranch                // control transfer
	KindVLVS                  // SetVL / SetVS
	KindVector                // vector arithmetic (uses FU1/FU2)
	KindVectorMem             // vector load/store/gather/scatter (uses LD)
)

// Info describes static properties of an opcode.
type Info struct {
	Name string
	Kind Kind
	Lat  LatClass
	FP   bool // floating-point flavour (selects scalar fp latency column)
	// FU1OK reports whether the restricted FU1 can execute the op;
	// FU2 executes every vector arithmetic op. (Mul, div and sqrt are
	// FU2-only per Section 3.)
	FU1OK bool
	// Ops-per-element: vector opcodes perform VL "operations" in the
	// paper's Table 3 accounting; OpsPerElem is 1 for them, 0 for moves
	// that the paper does not count as computation.
	Arith bool // counts toward vector-operation totals / VOPC
	Load  bool // reads memory
	Store bool // writes memory
}

var opInfos = [NumOps]Info{
	OpNop:    {Name: "nop", Kind: KindScalar, Lat: LatCtl},
	OpMovI:   {Name: "movi", Kind: KindScalar, Lat: LatAdd},
	OpAAdd:   {Name: "aadd", Kind: KindScalar, Lat: LatAdd},
	OpAShl:   {Name: "ashl", Kind: KindScalar, Lat: LatShift},
	OpSAddI:  {Name: "saddi", Kind: KindScalar, Lat: LatAdd},
	OpSMulI:  {Name: "smuli", Kind: KindScalar, Lat: LatMul},
	OpSDivI:  {Name: "sdivi", Kind: KindScalar, Lat: LatDiv},
	OpSLogic: {Name: "slogic", Kind: KindScalar, Lat: LatLogic},
	OpSShift: {Name: "sshift", Kind: KindScalar, Lat: LatShift},
	OpSCmp:   {Name: "scmp", Kind: KindScalar, Lat: LatAdd},

	OpSAdd:  {Name: "sadd", Kind: KindScalar, Lat: LatAdd, FP: true},
	OpSMul:  {Name: "smul", Kind: KindScalar, Lat: LatMul, FP: true},
	OpSDiv:  {Name: "sdiv", Kind: KindScalar, Lat: LatDiv, FP: true},
	OpSSqrt: {Name: "ssqrt", Kind: KindScalar, Lat: LatSqrt, FP: true},

	OpSLoad:  {Name: "sload", Kind: KindScalarMem, Lat: LatMem, Load: true},
	OpSStore: {Name: "sstore", Kind: KindScalarMem, Lat: LatMem, Store: true},

	OpBr:    {Name: "br", Kind: KindBranch, Lat: LatCtl},
	OpJmp:   {Name: "jmp", Kind: KindBranch, Lat: LatCtl},
	OpSetVL: {Name: "setvl", Kind: KindVLVS, Lat: LatCtl},
	OpSetVS: {Name: "setvs", Kind: KindVLVS, Lat: LatCtl},

	OpVAdd:   {Name: "vadd", Kind: KindVector, Lat: LatAdd, FU1OK: true, Arith: true},
	OpVSub:   {Name: "vsub", Kind: KindVector, Lat: LatAdd, FU1OK: true, Arith: true},
	OpVMul:   {Name: "vmul", Kind: KindVector, Lat: LatMul, Arith: true},
	OpVDiv:   {Name: "vdiv", Kind: KindVector, Lat: LatDiv, Arith: true},
	OpVSqrt:  {Name: "vsqrt", Kind: KindVector, Lat: LatSqrt, Arith: true},
	OpVAnd:   {Name: "vand", Kind: KindVector, Lat: LatLogic, FU1OK: true, Arith: true},
	OpVOr:    {Name: "vor", Kind: KindVector, Lat: LatLogic, FU1OK: true, Arith: true},
	OpVXor:   {Name: "vxor", Kind: KindVector, Lat: LatLogic, FU1OK: true, Arith: true},
	OpVShl:   {Name: "vshl", Kind: KindVector, Lat: LatShift, FU1OK: true, Arith: true},
	OpVShr:   {Name: "vshr", Kind: KindVector, Lat: LatShift, FU1OK: true, Arith: true},
	OpVCmp:   {Name: "vcmp", Kind: KindVector, Lat: LatAdd, FU1OK: true, Arith: true},
	OpVMerge: {Name: "vmerge", Kind: KindVector, Lat: LatLogic, FU1OK: true, Arith: true},

	OpVAddS: {Name: "vadds", Kind: KindVector, Lat: LatAdd, FU1OK: true, Arith: true},
	OpVMulS: {Name: "vmuls", Kind: KindVector, Lat: LatMul, Arith: true},

	OpVRedAdd: {Name: "vredadd", Kind: KindVector, Lat: LatAdd, FU1OK: true, Arith: true},

	OpVLoad:    {Name: "vload", Kind: KindVectorMem, Lat: LatMem, Load: true},
	OpVStore:   {Name: "vstore", Kind: KindVectorMem, Lat: LatMem, Store: true},
	OpVGather:  {Name: "vgather", Kind: KindVectorMem, Lat: LatMem, Load: true},
	OpVScatter: {Name: "vscatter", Kind: KindVectorMem, Lat: LatMem, Store: true},
}

// InfoOf returns the static properties of op.
func InfoOf(op Op) Info {
	if op >= NumOps {
		return Info{Name: fmt.Sprintf("op(%d)", uint8(op))}
	}
	return opInfos[op]
}

// unknownInfo is what InfoPtr returns for out-of-range opcodes. The Name
// is generic (no embedded number) so the shared pointer stays allocation-
// free; decoding paths validate opcodes before ever hitting it.
var unknownInfo = Info{Name: "op(?)"}

// InfoPtr returns a pointer to the static properties of op. It is the
// allocation- and copy-free variant of InfoOf for hot decode paths: the
// returned Info is shared and must not be mutated.
func InfoPtr(op Op) *Info {
	if op >= NumOps {
		return &unknownInfo
	}
	return &opInfos[op]
}

// KindOf returns the dispatch kind of op — a single table load, for hot
// paths that only need the coarse classification.
func KindOf(op Op) Kind {
	if op >= NumOps {
		return KindScalar
	}
	return opInfos[op].Kind
}

func (op Op) String() string { return InfoOf(op).Name }

// IsVector reports whether op executes in the vector unit (FU1/FU2/LD).
func (op Op) IsVector() bool {
	k := InfoOf(op).Kind
	return k == KindVector || k == KindVectorMem
}

// IsVectorMem reports whether op is a vector memory operation.
func (op Op) IsVectorMem() bool { return InfoOf(op).Kind == KindVectorMem }

// IsMem reports whether op references memory at all.
func (op Op) IsMem() bool {
	i := InfoOf(op)
	return i.Load || i.Store
}

// FU2Only reports whether a vector arithmetic op must run on FU2.
func (op Op) FU2Only() bool {
	i := InfoOf(op)
	return i.Kind == KindVector && !i.FU1OK
}

// Inst is one static instruction as it appears in a basic block.
type Inst struct {
	Op   Op
	Dst  Operand
	Src1 Operand
	Src2 Operand
	Imm  int64
}

func (in Inst) String() string {
	s := in.Op.String()
	if in.Dst != None {
		s += " " + in.Dst.String()
	}
	if in.Src1 != None {
		s += ", " + in.Src1.String()
	}
	if in.Src2 != None {
		if in.Src2.Class == ClassImm {
			s += fmt.Sprintf(", #%d", in.Imm)
		} else {
			s += ", " + in.Src2.String()
		}
	}
	return s
}

// DynInst is a dynamic instruction: a static instruction plus the values
// resolved at trace time — the vector length and stride in force, the
// memory base address, and the value written by SetVL/SetVS.
//
// DynInst is the unit the simulators consume; it carries everything the
// timing model needs and nothing more (data values are irrelevant to a
// trace-driven timing simulation).
type DynInst struct {
	Inst
	PC     uint32 // static instruction index within the program
	VL     uint16 // vector length at execution time (vector ops)
	Stride int64  // stride in bytes (vector memory ops)
	Addr   uint64 // base address (memory ops)
	SetVal int64  // value installed by SetVL / SetVS
}

// Ops returns the number of operations the instruction performs under the
// paper's Table 3 accounting: VL for vector instructions, 1 otherwise.
func (d *DynInst) Ops() int64 {
	if d.Op.IsVector() {
		return int64(d.VL)
	}
	return 1
}

func (d *DynInst) String() string {
	s := d.Inst.String()
	if d.Op.IsVector() {
		s += fmt.Sprintf(" {vl=%d", d.VL)
		if d.Op.IsVectorMem() {
			s += fmt.Sprintf(" addr=%#x stride=%d", d.Addr, d.Stride)
		}
		s += "}"
	} else if d.Op.IsMem() {
		s += fmt.Sprintf(" {addr=%#x}", d.Addr)
	} else if d.Op == OpSetVL || d.Op == OpSetVS {
		s += fmt.Sprintf(" {=%d}", d.SetVal)
	}
	return s
}
