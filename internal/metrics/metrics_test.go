package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mtvec_runs_total", "Total runs.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("mtvec_gate_active", "Gate occupancy.")
	g.Set(3)
	g.Add(-1)
	r.GaugeFunc("mtvec_gate_limit", "Gate limit.", func() float64 { return 8 })

	out := r.Render()
	for _, want := range []string{
		"# HELP mtvec_runs_total Total runs.\n# TYPE mtvec_runs_total counter\nmtvec_runs_total 3\n",
		"# TYPE mtvec_gate_active gauge\nmtvec_gate_active 2\n",
		"mtvec_gate_limit 8\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("counter value = %d", c.Value())
	}
}

func TestLabelledSeriesSortDeterministically(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("mtvec_runs_by_source_total", "Runs by cache tier.", "source")
	v.With("store").Add(5)
	v.With("sim").Inc()
	v.With("memo").Add(2)

	out := r.Render()
	want := `# HELP mtvec_runs_by_source_total Runs by cache tier.
# TYPE mtvec_runs_by_source_total counter
mtvec_runs_by_source_total{source="memo"} 2
mtvec_runs_by_source_total{source="sim"} 1
mtvec_runs_by_source_total{source="store"} 5
`
	if out != want {
		t.Errorf("render:\n%s\nwant:\n%s", out, want)
	}
	if r.Render() != out {
		t.Error("repeated render not byte-identical")
	}
	// Same family handle again: identity, not a new family.
	if got := r.CounterVec("mtvec_runs_by_source_total", "Runs by cache tier.", "source").With("sim").Value(); got != 1 {
		t.Errorf("re-registered vec lost state: %d", got)
	}
}

// TestRenderOrderIndependentOfInsertion locks the full-scrape ordering
// contract mtvlint's determinism analyzer polices mechanically: two
// registries populated with the same families and series in opposite
// orders must render byte-identically, and the text must follow sorted
// family names with sorted label sets inside each family.
func TestRenderOrderIndependentOfInsertion(t *testing.T) {
	forward := func() *Registry {
		r := NewRegistry()
		r.Counter("mtvec_a_total", "A.").Inc()
		v := r.CounterVec("mtvec_b_total", "B.", "worker", "tier")
		v.With("w1", "memo").Inc()
		v.With("w1", "sim").Add(2)
		v.With("w0", "sim").Add(3)
		r.Gauge("mtvec_c", "C.").Set(7)
		return r
	}
	backward := func() *Registry {
		r := NewRegistry()
		r.Gauge("mtvec_c", "C.").Set(7)
		v := r.CounterVec("mtvec_b_total", "B.", "worker", "tier")
		v.With("w0", "sim").Add(3)
		v.With("w1", "sim").Add(2)
		v.With("w1", "memo").Inc()
		r.Counter("mtvec_a_total", "A.").Inc()
		return r
	}
	want := `# HELP mtvec_a_total A.
# TYPE mtvec_a_total counter
mtvec_a_total 1
# HELP mtvec_b_total B.
# TYPE mtvec_b_total counter
mtvec_b_total{worker="w0",tier="sim"} 3
mtvec_b_total{worker="w1",tier="memo"} 1
mtvec_b_total{worker="w1",tier="sim"} 2
# HELP mtvec_c C.
# TYPE mtvec_c gauge
mtvec_c 7
`
	f, b := forward().Render(), backward().Render()
	if f != want {
		t.Errorf("forward render:\n%s\nwant:\n%s", f, want)
	}
	if f != b {
		t.Errorf("insertion order leaked into the scrape:\nforward:\n%s\nbackward:\n%s", f, b)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mtvec_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := r.Render()
	want := `# HELP mtvec_latency_seconds Latency.
# TYPE mtvec_latency_seconds histogram
mtvec_latency_seconds_bucket{le="0.1"} 1
mtvec_latency_seconds_bucket{le="1"} 3
mtvec_latency_seconds_bucket{le="10"} 4
mtvec_latency_seconds_bucket{le="+Inf"} 5
mtvec_latency_seconds_sum 56.05
mtvec_latency_seconds_count 5
`
	if out != want {
		t.Errorf("render:\n%s\nwant:\n%s", out, want)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("mtvec_shard_seconds", "Per-shard latency.", []float64{1}, "worker")
	v.With("w0").Observe(0.5)
	v.With("w0").Observe(2)
	out := r.Render()
	for _, want := range []string{
		`mtvec_shard_seconds_bucket{worker="w0",le="1"} 1`,
		`mtvec_shard_seconds_bucket{worker="w0",le="+Inf"} 2`,
		`mtvec_shard_seconds_count{worker="w0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("mtvec_esc_total", "", "v").With("a\"b\\c\nd").Inc()
	out := r.Render()
	want := `mtvec_esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("render missing %q:\n%s", want, out)
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad metric name", func() { r.Counter("9bad", "") })
	mustPanic("bad label name", func() { r.CounterVec("ok_total", "", "le-gal") })
	mustPanic("reserved label", func() { r.CounterVec("ok2_total", "", "__name") })
	r.Counter("twice", "")
	mustPanic("kind conflict", func() { r.Gauge("twice", "") })
	mustPanic("label conflict", func() { r.CounterVec("twice", "", "x") })
	mustPanic("negative counter", func() { r.Counter("neg_total", "").Add(-1) })
	mustPanic("unsorted buckets", func() { r.Histogram("h", "", []float64{2, 1}) })
	v := r.CounterVec("vec_total", "", "a", "b")
	mustPanic("label arity", func() { v.With("only-one") })
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_hist", "", []float64{0.5})
	v := r.CounterVec("conc_vec_total", "", "i")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				v.With("x").Inc()
				_ = r.Render()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 || h.Sum() != 2000 {
		t.Errorf("hist count/sum = %d/%v", h.Count(), h.Sum())
	}
	if v.With("x").Value() != 8000 {
		t.Errorf("vec = %d", v.With("x").Value())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "help").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	buf := make([]byte, 1<<12)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 1") {
		t.Errorf("body = %q", buf[:n])
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}
