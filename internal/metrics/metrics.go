// Package metrics is a dependency-free Prometheus-text-format metrics
// registry: counters, gauges and histograms, with optional labels,
// rendered in the text exposition format any Prometheus-compatible
// scraper understands. It exists so mtvserve nodes expose /metrics
// without pulling a client library into the module.
//
// The output is deterministic: families sort by name and series by
// label values, so two scrapes of identical state are byte-identical —
// the same property the rest of the repo holds simulation output to.
//
// All collectors are safe for concurrent use. Registration is
// idempotent: asking a registry for a collector that already exists
// returns the existing one (names are the identity), and asking for an
// existing name with a different collector type or label set panics —
// that is a programming error, not a runtime condition.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A kind is a family's collector type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // insertion order; rendering sorts a copy
}

// family is one named metric with its help text and series.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]series // key = rendered label pairs
	funcs  map[string]func() float64
}

// series is one labelled time series of a family.
type series interface {
	value() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName matches the Prometheus metric-name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabel matches the Prometheus label-name charset (no colons).
func validLabel(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// register finds or creates the family, enforcing identity invariants.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %q re-registered as %s(%v), was %s(%v)",
				name, k, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %q re-registered with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]series),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// seriesKey renders the label pairs of one series ("" for none).
func (f *family) seriesKey(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// get finds or creates the series for the label values.
func (f *family) get(values []string, mk func() series) series {
	key := f.seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) value() float64 { return float64(c.v.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe concurrently).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) value() float64 { return g.Value() }

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	uppers  []float64 // sorted ascending; +Inf implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v (buckets are cumulative at
	// render time, so only one physical bucket increments).
	i := sort.SearchFloat64s(h.uppers, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) value() float64 { return float64(h.count.Load()) }

// DefBuckets is a latency-oriented default bucket layout, in seconds.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter returns the (label-less) counter with this name, creating it
// if needed.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return f.get(nil, func() series { return &Counter{} }).(*Counter)
}

// Gauge returns the (label-less) gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return f.get(nil, func() series { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time — for instantaneous quantities the program already tracks (gate
// occupancy, goroutine counts).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil).setFunc(fn)
}

// CounterFunc registers a counter whose value is read from fn at render
// time — for monotonic counts the program already tracks (session
// simulation and store-hit counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, nil, nil).setFunc(fn)
}

func (f *family) setFunc(fn func() float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.funcs == nil {
		f.funcs = make(map[string]func() float64)
	}
	f.funcs[""] = fn
}

// Histogram returns the (label-less) histogram with this name. buckets
// are upper bounds, ascending; nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, normBuckets(buckets))
	return f.get(nil, func() series { return newHistogram(f.buckets) }).(*Histogram)
}

func normBuckets(buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	out := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(out) {
		panic("metrics: histogram buckets not ascending")
	}
	return out
}

func newHistogram(uppers []float64) *Histogram {
	return &Histogram{uppers: uppers, counts: make([]atomic.Int64, len(uppers))}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labelled counter family with this name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (created on first
// use). The number of values must match the declared labels.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() series { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labelled gauge family with this name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() series { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labelled histogram family with this name.
// buckets are upper bounds, ascending; nil selects DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, normBuckets(buckets))}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() series { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Render writes the whole registry in the text exposition format.
// Families sort by name and series by label key, so identical state
// renders byte-identically.
func (r *Registry) Render() string {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	return b.String()
}

func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series)+len(f.funcs))
	vals := make(map[string]series, len(f.series))
	for k, s := range f.series {
		keys = append(keys, k)
		vals[k] = s
	}
	fns := make(map[string]func() float64, len(f.funcs))
	for k, fn := range f.funcs {
		keys = append(keys, k)
		fns[k] = fn
	}
	f.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, k := range keys {
		if fn, ok := fns[k]; ok {
			fmt.Fprintf(b, "%s%s %s\n", f.name, k, fmtFloat(fn()))
			continue
		}
		s := vals[k]
		if h, ok := s.(*Histogram); ok {
			renderHistogram(b, f.name, k, h)
			continue
		}
		fmt.Fprintf(b, "%s%s %s\n", f.name, k, fmtFloat(s.value()))
	}
}

// renderHistogram emits the cumulative _bucket/_sum/_count triplet.
func renderHistogram(b *strings.Builder, name, key string, h *Histogram) {
	// Re-open the label set to append le: "{a="x"}" -> `{a="x",le="..."}`.
	pre := "{"
	if key != "" {
		pre = key[:len(key)-1] + ","
	}
	var cum int64
	for i, upper := range h.uppers {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%sle=%q} %d\n", name, pre, fmtFloat(upper), cum)
	}
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", name, pre, h.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", name, key, fmtFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, key, h.Count())
}

// fmtFloat renders a sample value: integers without a decimal point,
// everything else in shortest-round-trip form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at GET /metrics in the text exposition
// format (version 0.0.4).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		fmt.Fprint(w, r.Render())
	})
}
