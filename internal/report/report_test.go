package report

import (
	"bytes"
	"strings"
	"testing"

	"mtvec/internal/stats"
)

func sample() *Table {
	t := NewTable("Sample", "prog", "cycles", "occ")
	t.AddRow("swm256", "12345", "0.81")
	t.AddRow("hy", "99", "0.92")
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Sample") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "prog") || !strings.Contains(lines[1], "occ") {
		t.Errorf("header: %q", lines[1])
	}
	// Column alignment: "cycles" column starts at the same offset in
	// every row.
	idx := strings.Index(lines[1], "cycles")
	if !strings.HasPrefix(lines[3][idx:], "12345") {
		t.Errorf("misaligned data row: %q", lines[3])
	}
}

func TestMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| prog | cycles | occ |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Errorf("markdown separator missing:\n%s", out)
	}
	if !strings.Contains(out, "| swm256 | 12345 | 0.81 |") {
		t.Errorf("markdown row missing:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(`x,y`, `he said "hi"`)
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Error("F broken")
	}
	if I(42) != "42" {
		t.Error("I broken")
	}
	if Pct(0.856) != "85.6%" {
		t.Error("Pct broken")
	}
}

func TestChartContainsSeriesAndScale(t *testing.T) {
	xs := []float64{1, 20, 40, 60, 80, 100}
	s := []Series{
		{Name: "baseline", Ys: []float64{10, 20, 30, 40, 50, 60}},
		{Name: "2 threads", Ys: []float64{12, 13, 14, 15, 16, 17}},
	}
	out := Chart("Fig", "latency", xs, s, 40, 10)
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "2 threads") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "60") || !strings.Contains(out, "10") {
		t.Fatalf("y scale missing:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestChartDegenerate(t *testing.T) {
	if out := Chart("empty", "x", nil, nil, 30, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
	// Flat series must not divide by zero.
	out := Chart("flat", "x", []float64{0, 1}, []Series{{Name: "f", Ys: []float64{5, 5}}}, 30, 8)
	if !strings.Contains(out, "f") {
		t.Fatal("flat chart broken")
	}
}

func TestGantt(t *testing.T) {
	spans := []stats.Span{
		{Thread: 0, Program: "tf", Start: 0, End: 500},
		{Thread: 0, Program: "su", Start: 500, End: 1000},
		{Thread: 1, Program: "sw", Start: 0, End: 1000},
	}
	out := Gantt(spans, 40)
	if !strings.Contains(out, "ctx0") || !strings.Contains(out, "ctx1") {
		t.Fatalf("lanes missing:\n%s", out)
	}
	if !strings.Contains(out, "1000 cycles") {
		t.Fatalf("scale missing:\n%s", out)
	}
	if Gantt(nil, 40) != "(no spans)\n" {
		t.Fatal("empty gantt broken")
	}
}
