// Package report renders experiment results: aligned text tables,
// markdown and CSV writers, ASCII line charts for the paper's
// latency-sweep figures and a Gantt profile for Figure 9.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"mtvec/internal/stats"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Cell formats helpers. They use strconv directly — cells are formatted
// once per simulation point across every experiment table, and the
// reflection-driven fmt path showed up in build profiles.

// F formats a float with the given decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// I formats an integer.
func I(v int64) string { return strconv.FormatInt(v, 10) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return strconv.FormatFloat(100*v, 'f', 1, 64) + "%" }

func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, width := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := width - len(c); pad > 0; pad-- {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Markdown writes the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		copy(cells, row)
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	rows := append([][]string{t.Columns}, t.Rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Series is one line of a chart.
type Series struct {
	Name string
	Ys   []float64
}

// Chart renders an ASCII line chart of the series over shared x values.
// Each series is drawn with its own marker; a legend follows.
func Chart(title, xlabel string, xs []float64, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	markers := "ox*+#@%&"
	var minY, maxY float64
	first := true
	for _, s := range series {
		for _, y := range s.Ys {
			if first {
				minY, maxY, first = y, y, false
				continue
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if first {
		return title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	var minX, maxX float64 = xs[0], xs[0]
	for _, x := range xs {
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, m byte) {
		col := int((x - minX) / (maxX - minX) * float64(width-1))
		row := int((maxY - y) / (maxY - minY) * float64(height-1))
		grid[row][col] = m
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, y := range s.Ys {
			if i < len(xs) {
				plot(xs[i], y, m)
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%10.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%10.3g", minY)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%s %-*s\n", strings.Repeat(" ", 10),
		width+2, fmt.Sprintf(" %.4g .. %.4g (%s)", minX, maxX, xlabel))
	for si, s := range series {
		fmt.Fprintf(&b, "%s %c = %s\n", strings.Repeat(" ", 10), markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Gantt renders Figure 9's execution profile: one lane per thread, one
// segment per program span.
func Gantt(spans []stats.Span, width int) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	if width < 20 {
		width = 20
	}
	var maxEnd stats.Cycle
	maxThread := 0
	for _, sp := range spans {
		if sp.End > maxEnd {
			maxEnd = sp.End
		}
		if sp.Thread > maxThread {
			maxThread = sp.Thread
		}
	}
	if maxEnd == 0 {
		maxEnd = 1
	}
	var b strings.Builder
	for th := 0; th <= maxThread; th++ {
		lane := []byte(strings.Repeat(".", width))
		for _, sp := range spans {
			if sp.Thread != th {
				continue
			}
			s := int(sp.Start * stats.Cycle(width) / maxEnd)
			e := int(sp.End * stats.Cycle(width) / maxEnd)
			if e <= s {
				e = s + 1
			}
			if e > width {
				e = width
			}
			tag := sp.Program
			for i := s; i < e && i < width; i++ {
				idx := i - s
				if idx < len(tag) {
					lane[i] = tag[idx]
				} else {
					lane[i] = '='
				}
			}
			if s < width {
				lane[s] = '|'
			}
		}
		fmt.Fprintf(&b, "ctx%d %s\n", th, lane)
	}
	fmt.Fprintf(&b, "     0 .. %d cycles\n", maxEnd)
	return b.String()
}
