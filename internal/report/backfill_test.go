package report

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mtvec/internal/stats"
)

// failAfter is a writer that accepts n writes and then fails, steering
// each renderer down every short-circuit return in turn.
type failAfter struct {
	n   int
	err error
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// writeCount counts the writes a successful render performs, so the
// failure tests can enumerate every prefix.
func writeCount(render func(w *failAfter) error) int {
	probe := &failAfter{n: 1 << 20, err: errors.New("unreachable")}
	if err := render(probe); err != nil {
		panic(err)
	}
	return 1<<20 - probe.n
}

// TestRenderersPropagateWriteErrors drives Render, Markdown and CSV into
// a writer failing at every possible position: each must surface the
// writer's error rather than swallow it.
func TestRenderersPropagateWriteErrors(t *testing.T) {
	renderers := map[string]func(*failAfter) error{
		"render":   func(w *failAfter) error { return sample().Render(w) },
		"markdown": func(w *failAfter) error { return sample().Markdown(w) },
		"csv":      func(w *failAfter) error { return sample().CSV(w) },
	}
	for name, render := range renderers {
		writes := writeCount(render)
		if writes == 0 {
			t.Fatalf("%s performed no writes", name)
		}
		for n := 0; n < writes; n++ {
			boom := errors.New("disk full")
			if err := render(&failAfter{n: n, err: boom}); !errors.Is(err, boom) {
				t.Errorf("%s with writer failing at write %d: err = %v, want propagated", name, n, err)
			}
		}
	}
}

// TestRenderUntitled: an empty title renders no title line and no blank
// markdown header.
func TestRenderUntitled(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("1", "2")

	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n"); len(lines) != 3 {
		t.Errorf("untitled table rendered %d lines, want 3:\n%s", len(lines), buf.String())
	}

	buf.Reset()
	if err := tbl.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf.String(), "**") {
		t.Errorf("untitled markdown emitted a title: %q", buf.String())
	}
}

// TestMarkdownPadsShortRows: rows narrower than the header still render
// one cell per column.
func TestMarkdownPadsShortRows(t *testing.T) {
	tbl := NewTable("T", "a", "b", "c")
	tbl.AddRow("1")
	var buf bytes.Buffer
	if err := tbl.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	last := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if got := last[len(last)-1]; strings.Count(got, "|") != 4 {
		t.Errorf("short row rendered %q, want 4 pipes", got)
	}
}

// TestChartClampsAndFlatSeries: undersized dimensions clamp to the
// minimum canvas, flat series and single x values get synthetic ranges,
// and every series still lands on the grid.
func TestChartClampsAndFlatSeries(t *testing.T) {
	out := Chart("flat", "x", []float64{5}, []Series{{Name: "s", Ys: []float64{2, 2}}}, 1, 1)
	if !strings.Contains(out, "flat") || !strings.Contains(out, "s") {
		t.Fatalf("degenerate chart missing title or legend:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 12+16+2+2 {
			t.Fatalf("clamped chart wider than the 16-column minimum: %q", line)
		}
	}
	if !strings.Contains(out, "o") {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}

// TestChartNoData: series without points render the no-data placeholder.
func TestChartNoData(t *testing.T) {
	out := Chart("empty", "x", nil, []Series{{Name: "s"}}, 40, 8)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart = %q", out)
	}
}

// TestGanttEdgeCases: zero-length spans still paint one cell with their
// start marker, long programs truncate into '=' fill, spans at the right
// edge stay inside the lane, and the empty profile short-circuits.
func TestGanttEdgeCases(t *testing.T) {
	if out := Gantt(nil, 40); !strings.Contains(out, "no spans") {
		t.Errorf("empty gantt = %q", out)
	}
	spans := []stats.Span{
		{Thread: 0, Program: "longname", Start: 0, End: 100},
		{Thread: 1, Program: "z", Start: 50, End: 50}, // zero-length mid-lane
	}
	out := Gantt(spans, 10) // width clamps up to 20
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lanes = %d, want ctx0+ctx1+scale:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "=") || !strings.Contains(lines[0], "|") {
		t.Errorf("long span not painted with tag+fill: %q", lines[0])
	}
	if !strings.Contains(lines[1], "|") {
		t.Errorf("zero-length span at the edge left no mark: %q", lines[1])
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("lanes differ in width: %q vs %q", lines[0], lines[1])
	}
}

// TestGanttZeroEnd: all-zero spans must not divide by zero.
func TestGanttZeroEnd(t *testing.T) {
	out := Gantt([]stats.Span{{Thread: 0, Program: "p", Start: 0, End: 0}}, 20)
	if !strings.Contains(out, "ctx0") {
		t.Errorf("zero-cycle gantt = %q", out)
	}
}
