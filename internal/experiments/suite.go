package experiments

import (
	"context"
	"fmt"
	"time"

	"mtvec/internal/runner"
)

// SuiteStats summarizes one RunSuite execution for wall-clock/speedup
// reporting.
type SuiteStats struct {
	Jobs        int           // simulation concurrency bound
	Points      int           // prefetched simulation points
	Simulations int64         // machine runs this suite executed (cache misses only)
	Busy        time.Duration // serial-equivalent time inside simulations and builds
	Wall        time.Duration // elapsed wall-clock time
}

// Parallelism is Busy/Wall: the average number of tasks in flight. On
// unoversubscribed CPU-bound runs it approximates the speedup over a
// serial execution of the same task set.
func (s *SuiteStats) Parallelism() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Wall)
}

// RunSuite executes the experiments on env with at most jobs concurrent
// simulations (jobs <= 0 selects runtime.NumCPU()).
//
// It fans out in two phases: every experiment's declared sweep points
// run first (shared points are simulated once via the Env's singleflight
// caches), then the experiments' Run functions execute concurrently
// against the warm caches. Results are collected by registry index, and
// errors are joined in that order too, so output is deterministic: any
// jobs value — including 1 — produces byte-identical results.
func RunSuite(env *Env, exps []Experiment, jobs int) ([]*Result, *SuiteStats, error) {
	return RunSuiteContext(context.Background(), env, exps, jobs)
}

// RunSuiteContext is RunSuite under a context: cancellation or deadline
// expiry aborts in-flight simulations, the joined error includes
// ctx.Err() for every affected experiment, and no partial results are
// returned. The Env's memo caches are not poisoned, and the Env's own
// context is restored on return — so after a cancelled suite, direct
// Env calls (or a later RunSuite) resume where the cancelled one
// stopped instead of replaying the stale cancellation.
func RunSuiteContext(ctx context.Context, env *Env, exps []Experiment, jobs int) ([]*Result, *SuiteStats, error) {
	start := time.Now()
	prev := env.runCtx()
	env.SetContext(ctx)
	defer env.SetContext(prev)
	env.SetJobs(jobs)
	sims0, busy0 := env.Simulations(), env.BusyTime()
	// The pool only orchestrates; actual simulations admit through the
	// Env's gate, which enforces the jobs bound globally (including
	// inside nested sweeps like GroupedRuns). Extra width lets tasks
	// parked on shared singleflight entries coexist with running ones.
	pool := runner.New(4 * env.Jobs())

	var points []runner.Task
	for _, exp := range exps {
		if exp.Points != nil {
			points = append(points, exp.Points(env)...)
		}
	}
	// Prefetch errors are deliberately dropped here: the Env memoizes
	// them, so the owning experiment's Run re-reports the identical error
	// with its experiment ID attached.
	_ = pool.Run(points)

	results := make([]*Result, len(exps))
	err := pool.Map(len(exps), func(i int) error {
		res, err := exps[i].Run(env)
		if err != nil {
			return fmt.Errorf("%s: %w", exps[i].ID, err)
		}
		results[i] = res
		return nil
	})
	st := &SuiteStats{
		Jobs:        env.Jobs(),
		Points:      len(points),
		Simulations: env.Simulations() - sims0,
		Busy:        env.BusyTime() - busy0,
		Wall:        time.Since(start),
	}
	if err != nil {
		return nil, st, err
	}
	return results, st, nil
}

// Point-builder helpers shared by the experiment definitions.

// refPoints enumerates solo reference runs of the ten programs at each
// latency.
func refPoints(e *Env, lats []int) []func() error {
	var ps []func() error
	for _, short := range shortNames() {
		for _, lat := range lats {
			short, lat := short, lat
			ps = append(ps, func() error { _, err := e.RefReport(short, lat); return err })
		}
	}
	return ps
}

// queuePoints enumerates job-queue runs for each spec.
func queuePoints(e *Env, specs []QueueSpec) []func() error {
	ps := make([]func() error, len(specs))
	for i, s := range specs {
		s := s
		ps[i] = func() error { _, err := e.QueueRun(s); return err }
	}
	return ps
}

// workloadPoints enumerates the ten workload builds.
func workloadPoints(e *Env) []func() error {
	var ps []func() error
	for _, short := range shortNames() {
		short := short
		ps = append(ps, func() error { _, err := e.W(short); return err })
	}
	return ps
}
