package experiments

import (
	"mtvec/internal/core"
	"mtvec/internal/prog"
	"mtvec/internal/report"
	"mtvec/internal/stats"
	"mtvec/internal/vcomp"
	"mtvec/internal/workload"
)

// extCompilerExp quantifies the Convex compiler's instruction scheduling.
// Section 3 notes the compiler "schedules vector instructions taking the
// lack of load chaining into account"; here the same ten workloads are
// rebuilt with load hoisting disabled and rerun, showing how much a
// naive compiler costs the reference machine and how far multithreading
// compensates for it.
func extCompilerExp() Experiment {
	return Experiment{
		ID:         "ext-compiler",
		Title:      "Extension: compiler load scheduling (hoisting on/off)",
		PaperShape: "the machine depends on compiler scheduling because loads do not chain; a naive compiler should hurt the reference machine most",
		Run: func(e *Env) (*Result, error) {
			naive, err := buildNoHoistSuite(e.Scale)
			if err != nil {
				return nil, err
			}
			t := report.NewTable("Ten-program queue at latency 50",
				"compiler", "contexts", "cycles", "mem occ", "vs scheduled")
			for _, ctx := range []int{1, 2, 3} {
				sched, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: 50})
				if err != nil {
					return nil, err
				}
				naiveRep, err := runQueueOn(naive, ctx, 50)
				if err != nil {
					return nil, err
				}
				t.AddRow("scheduled", report.I(int64(ctx)), report.I(sched.Cycles),
					report.Pct(sched.MemOccupation()), "1.0000")
				t.AddRow("naive", report.I(int64(ctx)), report.I(naiveRep.Cycles),
					report.Pct(naiveRep.MemOccupation()),
					report.F(float64(naiveRep.Cycles)/float64(sched.Cycles), 4))
			}
			return &Result{
				ID: "ext-compiler", Title: "Compiler scheduling",
				Tables: []*report.Table{t},
				Notes: []string{
					"Load hoisting overlaps later statements' memory traffic with earlier statements' compute; without it each load-use chain exposes the full memory latency.",
					"Multithreading substitutes for compiler scheduling quality: the naive compiler's penalty on the reference machine is fully absorbed by three contexts, the same mechanism that tolerates slow memory.",
				},
			}, nil
		},
	}
}

// buildNoHoistSuite builds the queue-order workloads with hoisting off.
func buildNoHoistSuite(scale float64) ([]*workload.Workload, error) {
	var out []*workload.Workload
	for _, spec := range workload.QueueOrder() {
		w, err := spec.BuildOpts(scale, vcomp.Options{NoHoist: true})
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// runQueueOn runs the given prebuilt workloads as a job queue.
func runQueueOn(ws []*workload.Workload, contexts, latency int) (*stats.Report, error) {
	cfg := refConfig(latency)
	cfg.Contexts = contexts
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	q := core.NewJobQueue()
	for _, w := range ws {
		w := w
		q.Add(w.Spec.Short, func() *prog.Stream { return w.Stream() })
	}
	src := q.Source()
	for i := 0; i < contexts; i++ {
		if err := m.SetThread(i, src); err != nil {
			return nil, err
		}
	}
	return m.Run(core.Stop{})
}
