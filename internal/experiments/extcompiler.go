package experiments

import (
	"mtvec/internal/report"
)

// extCompilerExp quantifies the Convex compiler's instruction scheduling.
// Section 3 notes the compiler "schedules vector instructions taking the
// lack of load chaining into account"; here the same ten workloads are
// rebuilt with load hoisting disabled and rerun, showing how much a
// naive compiler costs the reference machine and how far multithreading
// compensates for it.
func extCompilerExp() Experiment {
	return Experiment{
		ID:         "ext-compiler",
		Points:     extCompilerPoints,
		Title:      "Extension: compiler load scheduling (hoisting on/off)",
		PaperShape: "the machine depends on compiler scheduling because loads do not chain; a naive compiler should hurt the reference machine most",
		Run: func(e *Env) (*Result, error) {
			t := report.NewTable("Ten-program queue at latency 50",
				"compiler", "contexts", "cycles", "mem occ", "vs scheduled")
			for _, ctx := range []int{1, 2, 3} {
				sched, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: 50})
				if err != nil {
					return nil, err
				}
				naiveRep, err := e.NaiveQueueRun(ctx, 50)
				if err != nil {
					return nil, err
				}
				t.AddRow("scheduled", report.I(int64(ctx)), report.I(sched.Cycles),
					report.Pct(sched.MemOccupation()), "1.0000")
				t.AddRow("naive", report.I(int64(ctx)), report.I(naiveRep.Cycles),
					report.Pct(naiveRep.MemOccupation()),
					report.F(float64(naiveRep.Cycles)/float64(sched.Cycles), 4))
			}
			return &Result{
				ID: "ext-compiler", Title: "Compiler scheduling",
				Tables: []*report.Table{t},
				Notes: []string{
					"Load hoisting overlaps later statements' memory traffic with earlier statements' compute; without it each load-use chain exposes the full memory latency.",
					"Multithreading substitutes for compiler scheduling quality: the naive compiler's penalty on the reference machine is fully absorbed by three contexts, the same mechanism that tolerates slow memory.",
				},
			}, nil
		},
	}
}

// extCompilerPoints enumerates the scheduled and naive queue runs at
// contexts 1-3.
func extCompilerPoints(e *Env) []func() error {
	var ps []func() error
	for _, ctx := range []int{1, 2, 3} {
		ctx := ctx
		ps = append(ps,
			func() error { _, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: 50}); return err },
			func() error { _, err := e.NaiveQueueRun(ctx, 50); return err })
	}
	return ps
}
