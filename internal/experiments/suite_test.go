package experiments

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"mtvec/internal/stats"
)

// testScale keeps suite-level tests fast; it matches testEnv's scale.
const testScale = 1e-4

func TestRunSuiteParallelMatchesSerial(t *testing.T) {
	serial, sst, err := RunSuite(NewEnv(testScale), All(), 1)
	if err != nil {
		t.Fatalf("serial suite: %v", err)
	}
	parallel, pst, err := RunSuite(NewEnv(testScale), All(), 8)
	if err != nil {
		t.Fatalf("parallel suite: %v", err)
	}
	if len(serial) != len(All()) {
		t.Fatalf("results = %d, want %d", len(serial), len(All()))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("experiment %s: parallel result differs from serial", All()[i].ID)
		}
	}
	// The engine must not trade memoization for parallelism: the same
	// distinct simulation set runs under any schedule.
	if sst.Simulations != pst.Simulations {
		t.Errorf("simulations: serial %d, parallel %d", sst.Simulations, pst.Simulations)
	}
	if sst.Jobs != 1 || pst.Jobs != 8 {
		t.Errorf("stats jobs = %d/%d, want 1/8", sst.Jobs, pst.Jobs)
	}
	if pst.Wall <= 0 || pst.Busy <= 0 || pst.Points == 0 {
		t.Errorf("suite stats not populated: %+v", pst)
	}
	if pst.Parallelism() <= 0 {
		t.Errorf("parallelism = %v", pst.Parallelism())
	}
}

func TestSharedPointsSimulatedOnce(t *testing.T) {
	// Figures 4 and 5 read the exact same sweep: ten programs at four
	// latencies. Running both concurrently must cost exactly 40
	// simulations — the cache's single-simulation guarantee.
	e := NewEnv(testScale)
	exps := []Experiment{*ByID("fig4"), *ByID("fig5")}
	_, st, err := RunSuite(e, exps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Simulations != 40 {
		t.Fatalf("simulations = %d, want 40 (10 programs x 4 latencies, shared between fig4 and fig5)", st.Simulations)
	}
	// Re-running the experiments on the same Env is free.
	_, st2, err := RunSuite(e, exps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Simulations != 0 {
		t.Fatalf("rerun executed %d new simulations, want 0", st2.Simulations)
	}
}

func TestEnvConcurrentSingleflight(t *testing.T) {
	e := NewEnv(testScale)
	const goroutines = 16
	reports := make([]*stats.Report, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = e.RefReport("tf", 50)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if reports[i] != reports[0] {
			t.Fatal("concurrent requesters got different report instances")
		}
	}
	if n := e.Simulations(); n != 1 {
		t.Fatalf("%d simulations for one key under contention", n)
	}
}

func TestRunSuiteReportsExperimentErrors(t *testing.T) {
	bad := Experiment{
		ID:    "bad",
		Title: "always fails",
		Points: func(e *Env) []func() error {
			return []func() error{func() error { _, err := e.W("zz"); return err }}
		},
		Run: func(e *Env) (*Result, error) {
			_, err := e.W("zz")
			return nil, err
		},
	}
	for _, jobs := range []int{1, 4} {
		_, _, err := RunSuite(NewEnv(testScale), []Experiment{*ByID("table1"), bad}, jobs)
		if err == nil {
			t.Fatalf("jobs=%d: point/run failure not reported", jobs)
		}
		want := `bad: experiments: unknown workload "zz"`
		if err.Error() != want {
			t.Fatalf("jobs=%d: err = %q, want %q (deterministic, experiment-attributed)", jobs, err, want)
		}
	}
}

// TestRunSuiteContextRestoresEnvContext: a cancelled suite must not
// leave its dead context installed on the shared Env — later direct Env
// calls run normally.
func TestRunSuiteContextRestoresEnvContext(t *testing.T) {
	env := NewEnv(testScale)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RunSuiteContext(ctx, env, []Experiment{*ByID("table3")}, 2); err == nil {
		t.Fatal("cancelled suite reported success")
	}
	if _, err := env.RefReport("tf", 50); err != nil {
		t.Fatalf("env poisoned after cancelled suite: %v", err)
	}
	if n := env.Simulations(); n != 1 {
		t.Fatalf("simulations = %d, want 1", n)
	}
}
