package experiments

import (
	"fmt"

	"mtvec/internal/report"
)

// Result is one reproduced table or figure.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	Charts []string
	Notes  []string
}

// Experiment reproduces one artifact of the paper's evaluation.
type Experiment struct {
	ID    string
	Title string
	// PaperShape states what the paper reports, for EXPERIMENTS.md
	// comparison.
	PaperShape string
	Run        func(*Env) (*Result, error)
	// Points enumerates the experiment's independent simulation points
	// as prefetch tasks. RunSuite fans them out over the worker pool to
	// warm the Env caches before Run aggregates them serially; nil means
	// the experiment has no parallelizable sweep. Each task must be
	// memoized by the Env, so running it twice costs one simulation.
	Points func(*Env) []func() error
}

// All returns every experiment in paper order, followed by the
// extensions.
func All() []Experiment {
	return []Experiment{
		table1Exp(), table2Exp(), table3Exp(),
		fig4Exp(), fig5Exp(), fig6Exp(), fig7Exp(), fig8Exp(),
		fig9Exp(), fig10Exp(), fig11Exp(), fig12Exp(),
		extPoliciesExp(), extPortsExp(), extBanksExp(), extIssueExp(), extCompilerExp(),
		extRegfileExp(), extBenchsuiteExp(),
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// IDs lists the experiment identifiers.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

func note(format string, args ...any) string { return fmt.Sprintf(format, args...) }
