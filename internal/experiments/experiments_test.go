package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Shared env: experiments memoize heavily, so run them all against one
// environment at a small scale.
var testEnv = NewEnv(1e-4)

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	exp := ByID(id)
	if exp == nil {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := exp.Run(testEnv)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result id %q != %q", res.ID, id)
	}
	if len(res.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	return res
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 19 {
		t.Fatalf("experiments = %d, want 19 (3 tables + 9 figures + 7 extensions)", len(ids))
	}
	for _, id := range ids {
		if ByID(id) == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("unknown id resolved")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestTables(t *testing.T) {
	t1 := runExp(t, "table1")
	if len(t1.Tables) != 2 {
		t.Fatal("table1 should emit two tables")
	}
	t2 := runExp(t, "table2")
	if len(t2.Tables[0].Rows) != 5 {
		t.Fatal("table2 should list 5 column-2 programs")
	}
	t3 := runExp(t, "table3")
	if len(t3.Tables[0].Rows) != 10 {
		t.Fatal("table3 should list 10 programs")
	}
}

// cell parses a leading float from a table cell like "1.23 (1.1..1.4)".
func cell(t *testing.T, s string) float64 {
	t.Helper()
	f := strings.Fields(strings.TrimSuffix(s, "%"))
	if len(f) == 0 {
		t.Fatalf("empty cell")
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(f[0], "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestFig4BreakdownSumsTo100(t *testing.T) {
	res := runExp(t, "fig4")
	tab := res.Tables[0]
	if len(tab.Rows) != 40 {
		t.Fatalf("rows = %d, want 10 programs x 4 latencies", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		sum := 0.0
		for _, c := range row[3:] {
			sum += cell(t, c)
		}
		if sum < 99.5 || sum > 100.5 {
			t.Fatalf("row %v sums to %.2f", row, sum)
		}
	}
}

func TestFig4LatencyIncreasesIdle(t *testing.T) {
	res := runExp(t, "fig4")
	tab := res.Tables[0]
	// Column 3 is the all-idle state <,,>. Compare latency 1 vs 100 for
	// each program: idle grows with latency.
	byProg := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		if byProg[row[0]] == nil {
			byProg[row[0]] = map[string]float64{}
		}
		byProg[row[0]][row[1]] = cell(t, row[3])
	}
	for prog, m := range byProg {
		// Allow two points of wiggle: load hoisting makes a couple of
		// programs nearly latency-flat, where the share can dip.
		if m["100"] < m["1"]-2.0 {
			t.Errorf("%s: all-idle at lat100 (%.1f) below lat1 (%.1f)", prog, m["100"], m["1"])
		}
	}
}

func TestFig5IdleInPaperRange(t *testing.T) {
	res := runExp(t, "fig5")
	tab := res.Tables[0]
	// Paper: at latency 70, idle ranges between ~30% and ~65%.
	for _, row := range tab.Rows {
		idle70 := cell(t, row[3])
		if idle70 < 15 || idle70 > 80 {
			t.Errorf("%s: idle@70 = %.1f%%, far outside the paper's 30-65%% band", row[0], idle70)
		}
	}
}

func TestFig6SpeedupShape(t *testing.T) {
	res := runExp(t, "fig6")
	tab := res.Tables[0]
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		s2, s3, s4 := cell(t, row[1]), cell(t, row[2]), cell(t, row[3])
		if s2 < 1.0 {
			t.Errorf("%s: 2-thread speedup %.2f < 1", row[0], s2)
		}
		if s2 > 2.2 || s3 > 3.2 || s4 > 4.2 {
			t.Errorf("%s: speedups out of plausible range: %.2f %.2f %.2f", row[0], s2, s3, s4)
		}
		// More contexts should not hurt substantially.
		if s3 < s2*0.9 || s4 < s3*0.92 {
			t.Errorf("%s: speedup regresses with contexts: %.2f %.2f %.2f", row[0], s2, s3, s4)
		}
	}
}

func TestFig7OccupationShape(t *testing.T) {
	res := runExp(t, "fig7")
	for _, row := range res.Tables[0].Rows {
		for i := 1; i < 7; i += 2 {
			mth, ref := cell(t, row[i]), cell(t, row[i+1])
			if mth <= ref {
				t.Errorf("%s: mth occupation %.1f%% not above ref %.1f%%", row[0], mth, ref)
			}
			if mth > 100 {
				t.Errorf("%s: occupation %.1f%% over 100%%", row[0], mth)
			}
		}
		// Occupation grows with contexts.
		if cell(t, row[5]) < cell(t, row[1]) {
			t.Errorf("%s: 4-thread occupation below 2-thread", row[0])
		}
	}
}

func TestFig8VOPCShape(t *testing.T) {
	res := runExp(t, "fig8")
	for _, row := range res.Tables[0].Rows {
		for i := 1; i < 7; i += 2 {
			mth, ref := cell(t, row[i]), cell(t, row[i+1])
			// The "ref" tuple average includes full companion runs
			// whereas the mth run is dominated by the primary, so for
			// the gather-heavy (low-arith) programs the mth value can
			// sit slightly below the tuple reference.
			if mth < ref*0.85 {
				t.Errorf("%s: mth VOPC %.2f far below ref %.2f", row[0], mth, ref)
			}
			if mth > 2.0 {
				t.Errorf("%s: VOPC %.2f exceeds 2 FUs", row[0], mth)
			}
		}
	}
}

func TestFig9SpansCoverAllPrograms(t *testing.T) {
	res := runExp(t, "fig9")
	tab := res.Tables[0]
	if len(tab.Rows) != 10 {
		t.Fatalf("spans = %d, want 10", len(tab.Rows))
	}
	if len(res.Charts) == 0 || !strings.Contains(res.Charts[0], "ctx0") {
		t.Fatal("gantt chart missing")
	}
}

func TestFig10Shape(t *testing.T) {
	res := runExp(t, "fig10")
	tab := res.Tables[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var base, mth2 []float64
	var ideal float64
	for _, row := range tab.Rows {
		base = append(base, cell(t, row[1]))
		mth2 = append(mth2, cell(t, row[2]))
		ideal = cell(t, row[5])
		// Ordering at each latency: mth3 <= mth2 < baseline, all >=
		// IDEAL. mth4 may trail mth3 slightly: with ten jobs dealt in
		// the paper's fixed order, trfd lands on the lowest-priority
		// context and its short-vector, latency-bound invocations
		// become the makespan tail (the paper's own end-of-run
		// imbalance caveat) — but it must stay well below mth2.
		b, m2, m3, m4 := cell(t, row[1]), cell(t, row[2]), cell(t, row[3]), cell(t, row[4])
		if !(m3 <= m2*1.02 && m2 < b) {
			t.Errorf("lat %s: ordering violated: base %.0f mth %.0f %.0f %.0f", row[0], b, m2, m3, m4)
		}
		if m4 > m3*1.08 || m4 > m2 {
			t.Errorf("lat %s: mth4 %.0f too slow (mth3 %.0f, mth2 %.0f)", row[0], m4, m3, m2)
		}
		if m4 < ideal {
			t.Errorf("lat %s: mth4 %.0f beats IDEAL %.0f", row[0], m4, ideal)
		}
	}
	// Baseline grows strongly with latency; 2-thread curve is much
	// flatter (paper: ~6.8% vs near-linear).
	baseGrowth := base[len(base)-1] / base[0]
	mthGrowth := mth2[len(mth2)-1] / mth2[0]
	if baseGrowth < 1.15 {
		t.Errorf("baseline growth %.2f too flat", baseGrowth)
	}
	if mthGrowth > (baseGrowth-1)*0.65+1 {
		t.Errorf("2-thread growth %.2f not much flatter than baseline %.2f", mthGrowth, baseGrowth)
	}
}

func TestFig11SlowdownSmall(t *testing.T) {
	res := runExp(t, "fig11")
	for _, row := range res.Tables[0].Rows {
		// The 2-thread column is the paper's headline: below 1.009.
		if slow := cell(t, row[1]); slow > 1.009 || slow < 0.998 {
			t.Errorf("lat %s: 2-thread crossbar slowdown %.4f outside the paper's <1.009", row[0], slow)
		}
		// At 3-4 contexts job-to-thread assignment can flip when the
		// extra cycle shifts a completion past a queue pull — the
		// paper's own Section 8 anomaly — so only bound the noise.
		for _, c := range row[2:] {
			slow := cell(t, c)
			if slow > 1.07 || slow < 0.93 {
				t.Errorf("lat %s: crossbar ratio %.4f beyond scheduling noise", row[0], slow)
			}
		}
	}
}

func TestFig12DualScalarShape(t *testing.T) {
	res := runExp(t, "fig12")
	rows := res.Tables[0].Rows
	first, last := rows[0], rows[len(rows)-1]
	ratioLow := cell(t, first[6])
	ratioHigh := cell(t, last[6])
	// The paper gives the Fujitsu machine a ~3% edge at latency 1,
	// converging by latency 100. In this reproduction the edge is
	// within scheduling noise (see EXPERIMENTS.md); assert that the
	// two machines stay close and the dual decoder never hurts much.
	if ratioLow > 1.02 || ratioHigh > 1.02 {
		t.Errorf("fujitsu/mth2 = %.4f -> %.4f, should stay near or below 1", ratioLow, ratioHigh)
	}
	// mth3 and mth4 beat both at every latency.
	for _, row := range rows {
		fuj, m3 := cell(t, row[1]), cell(t, row[3])
		if m3 > fuj {
			t.Errorf("lat %s: mth3 (%.0f) behind fujitsu (%.0f)", row[0], m3, fuj)
		}
	}
}

func TestExtensions(t *testing.T) {
	pol := runExp(t, "ext-policies")
	if len(pol.Tables[0].Rows) != 8 {
		t.Fatalf("policy rows = %d, want 4 policies x 2 context counts", len(pol.Tables[0].Rows))
	}
	ports := runExp(t, "ext-ports")
	if len(ports.Tables[0].Rows) == 0 {
		t.Fatal("ports experiment empty")
	}
	banks := runExp(t, "ext-banks")
	for _, row := range banks.Tables[0].Rows {
		if row[0] == "64 banks, busy 8" {
			if v := cell(t, row[3]); v < 1.0 || v > 1.5 {
				t.Errorf("banked slowdown %.3f implausible", v)
			}
		}
	}
	issue := runExp(t, "ext-issue")
	for _, row := range issue.Tables[0].Rows {
		if row[1] == "2" {
			if v := cell(t, row[3]); v < 0.95 || v > 1.6 {
				t.Errorf("issue-width-2 gain %.3f implausible", v)
			}
		}
	}
	comp := runExp(t, "ext-compiler")
	penalty := map[string]float64{}
	for _, row := range comp.Tables[0].Rows {
		if row[0] != "naive" {
			continue
		}
		v := cell(t, row[4])
		// At 3 contexts scheduling noise can flip the sign slightly;
		// a real speedup beyond noise would mean hoisting is harmful.
		if v < 0.97 {
			t.Errorf("naive compiler distinctly faster (%.4f) at %s contexts", v, row[1])
		}
		penalty[row[1]] = v
	}
	// The reference machine suffers most from naive scheduling, and the
	// penalty shrinks monotonically (within noise) as contexts absorb
	// the exposed latency — multithreading substitutes for compiler
	// scheduling quality.
	if penalty["1"] < 1.05 {
		t.Errorf("naive compiler barely hurts the reference machine: %.4f", penalty["1"])
	}
	if penalty["2"] > penalty["1"] || penalty["3"] > penalty["2"]+0.02 {
		t.Errorf("penalty should shrink with contexts: %v", penalty)
	}
}

func TestExtBenchsuite(t *testing.T) {
	res := runExp(t, "ext-benchsuite")
	if len(res.Tables) != 3 {
		t.Fatalf("tables = %d, want characterization + latency sweep + policy sweep", len(res.Tables))
	}
	ct := res.Tables[0]
	if len(ct.Rows) != 7 {
		t.Fatalf("characterization rows = %d, want 7 kernels", len(ct.Rows))
	}
	for _, row := range ct.Rows {
		if v := cell(t, row[1]); v < 50 || v > 100 {
			t.Errorf("%s: vectorization %.1f%% implausible", row[0], v)
		}
	}
	// Latency tolerance on real dataflow: at latency 100 the 4-context
	// queue must beat the single context clearly (7 heterogeneous jobs
	// on 4 contexts leave a serial tail, so well short of 4x).
	for _, row := range res.Tables[1].Rows {
		if row[0] == "100" && row[1] == "4" {
			if v := cell(t, row[3]); v < 1.2 {
				t.Errorf("4-context speedup at latency 100 = %.3f, want > 1.2", v)
			}
		}
	}
	if rows := len(res.Tables[2].Rows); rows != 8 {
		t.Errorf("policy rows = %d, want 4 policies x 2 context counts", rows)
	}

	// The suite runs through the same memoized session paths as the
	// Table 3 programs.
	q1, err := testEnv.BenchQueueRun(QueueSpec{Contexts: 2, Latency: 50})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := testEnv.BenchQueueRun(QueueSpec{Contexts: 2, Latency: 50})
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("bench queue runs not memoized")
	}
}

func TestEnvMemoization(t *testing.T) {
	e := NewEnv(1e-4)
	r1, err := e.RefReport("tf", 50)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.RefReport("tf", 50)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("reference reports not memoized")
	}
	q1, err := e.QueueRun(QueueSpec{Contexts: 2, Latency: 50})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.QueueRun(QueueSpec{Contexts: 2, Latency: 50})
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("queue runs not memoized")
	}
	if _, err := e.QueueRun(QueueSpec{Contexts: 2, Latency: 50, Policy: "nope"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := e.W("zz"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSpeedupAccountingAgainstPaperFormula(t *testing.T) {
	// Directly validate the Section 4.1 bookkeeping on one grouped run:
	// recompute the speedup from its components.
	runs, err := testEnv.GroupedRuns()
	if err != nil {
		t.Fatal(err)
	}
	r := runs[0] // first 2-thread grouping
	if r.Contexts != 2 {
		t.Fatalf("first grouping has %d contexts", r.Contexts)
	}
	c0, err := testEnv.RefCycles(r.Primary, 50)
	if err != nil {
		t.Fatal(err)
	}
	comp := r.Rep.Threads[1]
	full, err := testEnv.RefCycles(r.Companions[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := testEnv.RefPartialCycles(r.Companions[0], 50, comp.PartialInsts)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(c0+comp.Completions*full+partial) / float64(r.Rep.Cycles)
	if diff := want - r.Speedup; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("speedup %.6f != recomputed %.6f", r.Speedup, want)
	}
}
