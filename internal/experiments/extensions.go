package experiments

import (
	"fmt"

	"mtvec/internal/report"
	"mtvec/internal/sched"
)

// The extension experiments quantify the paper's stated future work and
// the idealizations DESIGN.md calls out. All use the ten-program job
// queue at 50-cycle memory latency unless stated otherwise.

// extPoliciesSpecs enumerates the policy-study queue runs.
func extPoliciesSpecs() []QueueSpec {
	var specs []QueueSpec
	for _, pol := range sched.Names() {
		for _, ctx := range []int{2, 4} {
			specs = append(specs, QueueSpec{Contexts: ctx, Latency: 50, Policy: pol})
		}
	}
	return specs
}

// extPortsSpecs enumerates the multi-port memory study runs.
func extPortsSpecs() []QueueSpec {
	var specs []QueueSpec
	for _, ctx := range []int{1, 2, 4} {
		specs = append(specs, QueueSpec{Contexts: ctx, Latency: 50})
	}
	for _, ctx := range []int{2, 4} {
		for _, iw := range []int{1, 2} {
			if iw > ctx {
				continue
			}
			specs = append(specs, QueueSpec{
				Contexts: ctx, Latency: 50, LoadPorts: 2, StorePorts: 1, IssueWidth: iw,
			})
		}
	}
	return specs
}

// extBanksSpecs enumerates the banked-memory study runs.
func extBanksSpecs() []QueueSpec {
	var specs []QueueSpec
	for _, ctx := range []int{1, 2} {
		specs = append(specs,
			QueueSpec{Contexts: ctx, Latency: 50},
			QueueSpec{Contexts: ctx, Latency: 50, Banks: 64, BankBusy: 8})
	}
	return specs
}

// extIssueSpecs enumerates the multi-thread issue study runs.
func extIssueSpecs() []QueueSpec {
	var specs []QueueSpec
	for _, ctx := range []int{2, 3, 4} {
		for _, iw := range []int{1, 2} {
			specs = append(specs, QueueSpec{Contexts: ctx, Latency: 50, IssueWidth: iw})
		}
	}
	return specs
}

// extPoliciesExp compares thread-switch policies ("studies of other
// policies are currently underway", Section 2).
func extPoliciesExp() Experiment {
	return Experiment{
		ID:         "ext-policies",
		Points:     func(e *Env) []func() error { return queuePoints(e, extPoliciesSpecs()) },
		Title:      "Extension: thread-switch policy study",
		PaperShape: "paper argues run-until-block preserves chaining; fine-grain interleave should lose",
		Run: func(e *Env) (*Result, error) {
			t := report.NewTable("Ten-program queue at latency 50",
				"policy", "contexts", "cycles", "mem occ", "VOPC", "lost decode")
			for _, pol := range sched.Names() {
				for _, ctx := range []int{2, 4} {
					rep, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: 50, Policy: pol})
					if err != nil {
						return nil, err
					}
					t.AddRow(pol, report.I(int64(ctx)), report.I(rep.Cycles),
						report.Pct(rep.MemOccupation()), report.F(rep.VOPC(), 2),
						report.I(rep.LostDecode))
				}
			}
			return &Result{ID: "ext-policies", Title: "Policy study", Tables: []*report.Table{t}}, nil
		},
	}
}

// extPortsExp is the Cray-like multi-port memory future work (Section 10).
func extPortsExp() Experiment {
	return Experiment{
		ID:         "ext-ports",
		Points:     func(e *Env) []func() error { return queuePoints(e, extPortsSpecs()) },
		Title:      "Extension: Cray-like 2-load/1-store memory ports",
		PaperShape: "paper predicts multi-port machines need simultaneous multi-thread issue to saturate",
		Run: func(e *Env) (*Result, error) {
			t := report.NewTable("Ten-program queue at latency 50",
				"memory", "contexts", "issue width", "cycles", "occ/port")
			for _, ctx := range []int{1, 2, 4} {
				rep, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: 50})
				if err != nil {
					return nil, err
				}
				t.AddRow("1 port", report.I(int64(ctx)), "1", report.I(rep.Cycles), report.Pct(rep.MemOccupation()))
			}
			for _, ctx := range []int{2, 4} {
				for _, iw := range []int{1, 2} {
					if iw > ctx {
						continue
					}
					rep, err := e.QueueRun(QueueSpec{
						Contexts: ctx, Latency: 50, LoadPorts: 2, StorePorts: 1, IssueWidth: iw,
					})
					if err != nil {
						return nil, err
					}
					t.AddRow("2L+1S ports", report.I(int64(ctx)), report.I(int64(iw)),
						report.I(rep.Cycles), report.Pct(rep.MemOccupation()))
				}
			}
			return &Result{
				ID: "ext-ports", Title: "Multi-port memory",
				Tables: []*report.Table{t},
				Notes: []string{
					"Per-port occupation drops with 3 ports at issue width 1: a single decode slot cannot feed them (the paper's Section 10 prediction); width 2 recovers part of it.",
				},
			}, nil
		},
	}
}

// extBanksExp quantifies the flat-memory idealization with a banked
// conflict model.
func extBanksExp() Experiment {
	return Experiment{
		ID:         "ext-banks",
		Points:     func(e *Env) []func() error { return queuePoints(e, extBanksSpecs()) },
		Title:      "Extension: banked memory with conflict stalls",
		PaperShape: "the paper assumes a conflict-free memory; banking should cost little at unit stride",
		Run: func(e *Env) (*Result, error) {
			t := report.NewTable("Ten-program queue at latency 50",
				"memory model", "contexts", "cycles", "vs flat")
			for _, ctx := range []int{1, 2} {
				flat, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: 50})
				if err != nil {
					return nil, err
				}
				banked, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: 50, Banks: 64, BankBusy: 8})
				if err != nil {
					return nil, err
				}
				t.AddRow("flat", report.I(int64(ctx)), report.I(flat.Cycles), "1.0000")
				t.AddRow("64 banks, busy 8", report.I(int64(ctx)), report.I(banked.Cycles),
					report.F(float64(banked.Cycles)/float64(flat.Cycles), 4))
			}
			return &Result{
				ID: "ext-banks", Title: "Banked memory",
				Tables: []*report.Table{t},
				Notes: []string{
					"Workloads are dominated by unit-stride streams; only nasa7's long-stride column walks conflict, so the flat-memory idealization is mild.",
				},
			}, nil
		},
	}
}

// extIssueExp is the future-work simultaneous multi-thread issue knob.
func extIssueExp() Experiment {
	return Experiment{
		ID:         "ext-issue",
		Points:     func(e *Env) []func() error { return queuePoints(e, extIssueSpecs()) },
		Title:      "Extension: simultaneous issue from several threads",
		PaperShape: "paper expects little gain on a single-port machine (decode is rarely the bottleneck)",
		Run: func(e *Env) (*Result, error) {
			t := report.NewTable("Ten-program queue at latency 50",
				"contexts", "issue width", "cycles", "speed vs width 1", "mem occ")
			for _, ctx := range []int{2, 3, 4} {
				var base int64
				for _, iw := range []int{1, 2} {
					rep, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: 50, IssueWidth: iw})
					if err != nil {
						return nil, err
					}
					rel := "1.000"
					if iw == 1 {
						base = rep.Cycles
					} else {
						rel = report.F(float64(base)/float64(rep.Cycles), 3)
					}
					t.AddRow(report.I(int64(ctx)), report.I(int64(iw)), report.I(rep.Cycles),
						rel, report.Pct(rep.MemOccupation()))
				}
			}
			return &Result{
				ID: "ext-issue", Title: "Multi-thread issue",
				Tables: []*report.Table{t},
				Notes: []string{
					fmt.Sprintf("With one memory port the address bus, not decode, bounds throughput; gains stay small, matching the paper's argument for keeping the decode unit simple."),
				},
			}, nil
		},
	}
}
