// Package experiments reproduces every table and figure of the paper's
// evaluation (Tables 1-3, Figures 4-12) plus the ablation studies listed
// in DESIGN.md. Each experiment runs against a shared Env that memoizes
// workload builds and simulation runs, because several figures share the
// same underlying data (Figures 6-8 share the grouped runs; Figures 10
// and 12 share the job-queue sweeps).
//
// # Concurrency and determinism
//
// Env is a specialization of the session engine (internal/session): its
// simulation memoization, singleflight sharing and global -jobs bound
// all come from an embedded session.Session, with Env adding only the
// paper-specific vocabulary (workload builds by short tag, reference
// runs, queue sweeps, the Table 2 grouping enumeration). A simulation
// point requested by several experiments at once is simulated exactly
// once and the result shared. RunSuite fans the suite out over a worker
// pool — first the experiments' declared sweep points
// (Experiment.Points), then the experiments themselves — and collects
// results in registry order. Because each simulation is a pure function
// of its (workload, config) key, the rendered output is byte-identical
// for any worker count, including 1.
package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"mtvec/internal/arch"
	"mtvec/internal/prog"
	"mtvec/internal/runner"
	"mtvec/internal/session"
	"mtvec/internal/stats"
	"mtvec/internal/store"
	"mtvec/internal/vcomp"
	"mtvec/internal/workload"
)

// Env caches workloads and simulation results for one reproduction scale.
// All methods are safe for concurrent use; each distinct simulation runs
// exactly once per Env regardless of how many goroutines request it.
type Env struct {
	Scale float64

	// ses owns the run memoization and the global -jobs gate; every
	// simulation and workload build admits through it.
	ses *session.Session

	// ctx (atomically boxed) governs cancellation of the Env's runs;
	// see SetContext.
	ctx atomic.Pointer[ctxBox]

	workloads runner.Cache[string, *workload.Workload]
	naive     runner.Cache[struct{}, []*workload.Workload]
	grouped   runner.Cache[struct{}, []GroupedRun]
	// archSuites caches the queue-order suite per compiler-visible
	// register-file organization (arch.RegFile.BuildKey), for the
	// register-file organization study.
	archSuites runner.Cache[arch.RegFile, []*workload.Workload]
	// benchArch is archSuites for the real benchmark suite (BenchOrder);
	// the zero-key entry is the default-organization build.
	benchArch runner.Cache[arch.RegFile, []*workload.Workload]
}

// ctxBox wraps a context for atomic storage (contexts have varying
// concrete types).
type ctxBox struct{ c context.Context }

// NewEnv creates an environment at the given workload scale. Internal
// sweeps (GroupedRuns) parallelize over runtime.NumCPU() workers; use
// SetJobs to change that.
func NewEnv(scale float64) *Env {
	e := &Env{Scale: scale, ses: session.New()}
	e.ctx.Store(&ctxBox{context.Background()})
	return e
}

// Session exposes the run engine the Env specializes, for callers that
// want to mix bespoke RunSpecs with the paper's memoized sweeps.
func (e *Env) Session() *session.Session { return e.ses }

// SetContext installs the context governing subsequent runs: cancelling
// it aborts in-flight simulations with ctx.Err() without poisoning the
// memo caches. The swap is atomic (safe against concurrent Env use),
// but runs already in flight keep the context they started with, and
// concurrent suites on one Env share whichever context was stored last.
func (e *Env) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx.Store(&ctxBox{ctx})
}

// runCtx returns the context governing new runs.
func (e *Env) runCtx() context.Context { return e.ctx.Load().c }

// SetStore attaches a persistent result backend to the Env's session:
// simulation points some earlier process already ran are served from
// disk (or a remote peer tier), and fresh ones are written through — a
// warm store regenerates the whole evaluation with zero simulations.
// Workload builds are not persisted (they are cheap relative to runs
// and carry unexported state); only run Reports are.
func (e *Env) SetStore(st store.Backend) { e.ses.SetStore(st) }

// StoreHits returns how many runs the Env served from the persistent
// store.
func (e *Env) StoreHits() int64 { return e.ses.StoreHits() }

// SetJobs bounds how many simulations (and workload builds) may execute
// concurrently; n <= 0 selects runtime.NumCPU(). Results do not depend
// on the setting.
func (e *Env) SetJobs(n int) { e.ses.SetJobs(n) }

// Jobs returns the Env's simulation concurrency bound.
func (e *Env) Jobs() int { return e.ses.Jobs() }

// Simulations returns how many machine runs this Env has executed (cache
// misses, not requests) — the quantity the memoization exists to bound.
func (e *Env) Simulations() int64 { return e.ses.Simulations() }

// BusyTime returns the cumulative wall time spent inside simulations and
// workload builds — the serial-equivalent cost of the Env's work.
func (e *Env) BusyTime() time.Duration { return e.ses.Busy() }

// W builds (once) and returns the workload with the given short tag.
func (e *Env) W(short string) (*workload.Workload, error) {
	return e.workloads.DoContext(e.runCtx(), short, func() (w *workload.Workload, err error) {
		spec := workload.ByShort(short)
		if spec == nil {
			return nil, fmt.Errorf("experiments: unknown workload %q", short)
		}
		if err := e.runCtx().Err(); err != nil {
			return nil, err
		}
		e.ses.Do(func() { w, err = spec.Build(e.Scale) })
		return w, err
	})
}

// RefReport runs (once) the program alone on the reference architecture.
func (e *Env) RefReport(short string, latency int) (*stats.Report, error) {
	w, err := e.W(short)
	if err != nil {
		return nil, err
	}
	rep, err := e.ses.Run(e.runCtx(), session.Solo(w, session.WithMemLatency(latency)))
	if err != nil {
		return nil, fmt.Errorf("experiments: reference run of %s: %w", short, err)
	}
	return rep, nil
}

// RefCycles is the reference execution time C_i of Section 4.1.
func (e *Env) RefCycles(short string, latency int) (int64, error) {
	r, err := e.RefReport(short, latency)
	if err != nil {
		return 0, err
	}
	return r.Cycles, nil
}

// RefPartialCycles is F_i of Section 4.1: reference cycles to reach the
// given dynamic-instruction index.
func (e *Env) RefPartialCycles(short string, latency int, insts int64) (int64, error) {
	if insts <= 0 {
		return 0, nil
	}
	w, err := e.W(short)
	if err != nil {
		return 0, err
	}
	rep, err := e.ses.Run(e.runCtx(), session.Solo(w,
		session.WithMemLatency(latency), session.WithMaxThread0Insts(insts)))
	if err != nil {
		return 0, fmt.Errorf("experiments: partial reference run of %s: %w", short, err)
	}
	return rep.Cycles, nil
}

// QueueSpec selects one Section 7 job-queue run: all ten programs in the
// paper's fixed order, threads pulling the next job as they finish.
type QueueSpec struct {
	Contexts   int
	Latency    int
	Xbar       int // read/write crossbar latency (Section 8; default 2)
	DualScalar bool
	Policy     string // "" = unfair
	IssueWidth int    // 0 -> 1

	LoadPorts  int // Cray-like extension ports (0 for the paper machine)
	StorePorts int
	Banks      int // banked-memory extension (0 = conflict-free)
	BankBusy   int

	// RegFile selects a vector register file organization for both the
	// machine and the workload build (the suite is recompiled per
	// distinct compiler-visible organization). Zero is the reference
	// organization and shares the default suite.
	RegFile arch.RegFile

	// Partition runs the Section 8 register-splitting alternative: the
	// machine holds one physical file of Contexts x RegFile.VRegs
	// registers split evenly, instead of replicating RegFile per
	// context. RegFile describes what each context sees (and what the
	// suite is compiled for).
	Partition bool

	RecordSpans bool
}

// options translates the QueueSpec into the session's machine options.
func (s QueueSpec) options() []session.Option {
	opts := []session.Option{
		session.WithContexts(s.Contexts),
		session.WithMemLatency(s.Latency),
	}
	if s.Xbar > 0 {
		opts = append(opts, session.WithXbar(s.Xbar))
	}
	if s.DualScalar {
		opts = append(opts, session.WithDualScalar(true))
	}
	if s.Policy != "" {
		opts = append(opts, session.WithPolicy(s.Policy))
	}
	if s.IssueWidth > 0 {
		opts = append(opts, session.WithIssueWidth(s.IssueWidth))
	}
	if s.LoadPorts > 0 || s.StorePorts > 0 {
		opts = append(opts, session.WithMemPorts(s.LoadPorts, s.StorePorts))
	}
	if s.Banks > 0 {
		opts = append(opts, session.WithMemBanks(s.Banks, s.BankBusy))
	}
	if !s.RegFile.IsZero() || s.Partition {
		rf := s.RegFile.Normalize()
		if s.Partition {
			// The machine's physical file pools every context's share;
			// each context still sees rf.VRegs registers.
			rf.VRegs *= s.Contexts
			rf.PartitionPerContext = true
		}
		opts = append(opts, session.WithRegFile(rf))
	}
	if s.RecordSpans {
		opts = append(opts, session.WithSpans())
	}
	return opts
}

// suite returns the queue-order workloads, built once.
func (e *Env) suite() ([]*workload.Workload, error) {
	specs := workload.QueueOrder()
	ws := make([]*workload.Workload, 0, len(specs))
	for _, spec := range specs {
		w, err := e.W(spec.Short)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// QueueRun executes (once) the ten-program job queue under the spec.
func (e *Env) QueueRun(s QueueSpec) (*stats.Report, error) {
	ws, err := e.suiteFor(s.RegFile)
	if err != nil {
		return nil, err
	}
	rep, err := e.ses.Run(e.runCtx(), session.Queue(ws, s.options()...))
	if err != nil {
		return nil, fmt.Errorf("experiments: queue run (%d ctx, lat %d): %w", s.Contexts, s.Latency, err)
	}
	return rep, nil
}

// suiteFor returns the queue-order workloads compiled for the given
// register-file organization, building each distinct compiler-visible
// organization once. The zero (and reference) organization shares the
// default suite.
func (e *Env) suiteFor(rf arch.RegFile) ([]*workload.Workload, error) {
	key := rf.BuildKey()
	if rf.IsZero() || key == arch.DefaultRegFile().BuildKey() {
		return e.suite()
	}
	return e.archSuites.DoContext(e.runCtx(), key, func() ([]*workload.Workload, error) {
		specs := workload.QueueOrder()
		out := make([]*workload.Workload, len(specs))
		pool := runner.New(4 * e.Jobs())
		err := pool.Map(len(specs), func(i int) (err error) {
			if err := e.runCtx().Err(); err != nil {
				return err
			}
			e.ses.Do(func() { out[i], err = specs[i].BuildOpts(e.Scale, vcomp.Options{RegFile: key}) })
			return err
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	})
}

// BenchSuite builds (once) the real vectorizable benchmark suite
// (workload.BenchOrder) compiled for the given register-file
// organization; the zero organization is the reference build. The
// kernels resolve through the same registry as the Table 3 programs, so
// they run through the identical session machinery (memoization, store
// persistence, lockstep batching).
func (e *Env) BenchSuite(rf arch.RegFile) ([]*workload.Workload, error) {
	key := arch.RegFile{}
	if !rf.IsZero() && rf.BuildKey() != arch.DefaultRegFile().BuildKey() {
		key = rf.BuildKey()
	}
	return e.benchArch.DoContext(e.runCtx(), key, func() ([]*workload.Workload, error) {
		specs := workload.BenchOrder()
		out := make([]*workload.Workload, len(specs))
		pool := runner.New(4 * e.Jobs())
		err := pool.Map(len(specs), func(i int) (err error) {
			if err := e.runCtx().Err(); err != nil {
				return err
			}
			if key.IsZero() {
				out[i], err = e.W(specs[i].Short) // admits through the gate itself
			} else {
				e.ses.Do(func() { out[i], err = specs[i].BuildOpts(e.Scale, vcomp.Options{RegFile: key}) })
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	})
}

// BenchQueueRun executes (once) the benchmark-suite job queue under the
// spec: all kernels in catalog order, threads pulling the next job as
// they finish — the Section 7 methodology applied to the real suite.
func (e *Env) BenchQueueRun(s QueueSpec) (*stats.Report, error) {
	ws, err := e.BenchSuite(s.RegFile)
	if err != nil {
		return nil, err
	}
	rep, err := e.ses.Run(e.runCtx(), session.Queue(ws, s.options()...))
	if err != nil {
		return nil, fmt.Errorf("experiments: bench queue run (%d ctx, lat %d): %w", s.Contexts, s.Latency, err)
	}
	return rep, nil
}

// NaiveSuite builds (once) the queue-order workloads with the compiler's
// load hoisting disabled — the ext-compiler counterfactual.
func (e *Env) NaiveSuite() ([]*workload.Workload, error) {
	return e.naive.DoContext(e.runCtx(), struct{}{}, func() ([]*workload.Workload, error) {
		specs := workload.QueueOrder()
		out := make([]*workload.Workload, len(specs))
		pool := runner.New(4 * e.Jobs())
		err := pool.Map(len(specs), func(i int) (err error) {
			if err := e.runCtx().Err(); err != nil {
				return err
			}
			e.ses.Do(func() { out[i], err = specs[i].BuildOpts(e.Scale, vcomp.Options{NoHoist: true}) })
			return err
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	})
}

// NaiveQueueRun executes (once) the job queue built by the naive
// (no-hoist) compiler on the reference-style machine.
func (e *Env) NaiveQueueRun(contexts, latency int) (*stats.Report, error) {
	ws, err := e.NaiveSuite()
	if err != nil {
		return nil, err
	}
	rep, err := e.ses.Run(e.runCtx(), session.Queue(ws,
		session.WithContexts(contexts), session.WithMemLatency(latency)))
	if err != nil {
		return nil, fmt.Errorf("experiments: naive queue run (%d ctx, lat %d): %w", contexts, latency, err)
	}
	return rep, nil
}

// SuiteDemand merges the ten programs' demand statistics (for the IDEAL
// bound).
func (e *Env) SuiteDemand() (prog.Stats, error) {
	var merged prog.Stats
	for _, spec := range workload.QueueOrder() {
		w, err := e.W(spec.Short)
		if err != nil {
			return merged, err
		}
		merged.Merge(&w.Stats)
	}
	return merged, nil
}

// GroupedRun is one Section 4.1 grouped simulation: the primary program
// on thread 0 with restarting companions, plus the derived metrics.
type GroupedRun struct {
	Primary    string
	Companions []string
	Contexts   int

	Rep     *stats.Report
	Speedup float64

	RefOcc  float64 // tuple's memory-port occupation run sequentially on the reference machine
	RefVOPC float64
}

// GroupedRuns produces (once) the full Table 2 experiment set: for every
// program, 5 two-thread, 10 three-thread and 10 four-thread groupings at
// 50-cycle memory latency. The groupings are simulated concurrently on
// the Env's worker budget; the returned slice is always in the same
// deterministic enumeration order.
func (e *Env) GroupedRuns() ([]GroupedRun, error) {
	return e.grouped.DoContext(e.runCtx(), struct{}{}, func() ([]GroupedRun, error) {
		const latency = 50
		g := workload.DefaultGroupings()
		var runs []GroupedRun

		for _, primary := range workload.Specs() {
			// 2 threads: primary + each column-2 program.
			for _, c2 := range g.Col2 {
				runs = append(runs, GroupedRun{Primary: primary.Short, Companions: []string{c2.Short}})
			}
			// 3 threads: primary + col2 + col3.
			for _, c2 := range g.Col2 {
				for _, c3 := range g.Col3 {
					runs = append(runs, GroupedRun{Primary: primary.Short, Companions: []string{c2.Short, c3.Short}})
				}
			}
			// 4 threads: primary + col2 + col3 + col4.
			for _, c2 := range g.Col2 {
				for _, c3 := range g.Col3 {
					for _, c4 := range g.Col4 {
						runs = append(runs, GroupedRun{Primary: primary.Short, Companions: []string{c2.Short, c3.Short, c4.Short}})
					}
				}
			}
		}

		// The pool only orchestrates: leaf simulations admit through the
		// session's gate, so width beyond Jobs() just keeps gate slots
		// fed while some tasks park on shared singleflight entries. The
		// reference runs feed every grouping's speedup denominator;
		// warming them first keeps the fan-out from bunching up on their
		// entries.
		pool := runner.New(4 * e.Jobs())
		shorts := workload.Specs()
		if err := pool.Map(len(shorts), func(i int) error {
			_, err := e.RefReport(shorts[i].Short, latency)
			return err
		}); err != nil {
			return nil, err
		}
		if err := pool.Map(len(runs), func(i int) error {
			return e.runGrouped(&runs[i], latency)
		}); err != nil {
			return nil, err
		}
		return runs, nil
	})
}

func (e *Env) runGrouped(r *GroupedRun, latency int) error {
	r.Contexts = 1 + len(r.Companions)
	pw, err := e.W(r.Primary)
	if err != nil {
		return err
	}
	cws := make([]*workload.Workload, len(r.Companions))
	for i, comp := range r.Companions {
		if cws[i], err = e.W(comp); err != nil {
			return err
		}
	}
	rep, err := e.ses.Run(e.runCtx(), session.Group(pw, cws, session.WithMemLatency(latency)))
	if err != nil {
		return fmt.Errorf("grouped run %s+%v: %w", r.Primary, r.Companions, err)
	}
	r.Rep = rep

	// Section 4.1 speedup: reference work for exactly what the
	// multithreaded machine completed.
	refWork, err := e.RefCycles(r.Primary, latency)
	if err != nil {
		return err
	}
	for i, comp := range r.Companions {
		th := rep.Threads[i+1]
		full, err := e.RefCycles(comp, latency)
		if err != nil {
			return err
		}
		// Completions counts finished runs; the current unfinished run
		// contributes its partial reference time.
		refWork += th.Completions * full
		partial, err := e.RefPartialCycles(comp, latency, th.PartialInsts)
		if err != nil {
			return err
		}
		refWork += partial
	}
	r.Speedup = stats.Speedup(refWork, rep.Cycles)

	// Sequential-reference tuple metrics for Figures 7 and 8.
	var busy, cycles, arith int64
	members := append([]string{r.Primary}, r.Companions...)
	for _, mname := range members {
		rr, err := e.RefReport(mname, latency)
		if err != nil {
			return err
		}
		busy += rr.MemBusyCycles
		cycles += rr.Cycles
		arith += rr.VectorArithOps
	}
	if cycles > 0 {
		r.RefOcc = float64(busy) / float64(cycles)
		r.RefVOPC = float64(arith) / float64(cycles)
	}
	return nil
}
