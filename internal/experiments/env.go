// Package experiments reproduces every table and figure of the paper's
// evaluation (Tables 1-3, Figures 4-12) plus the ablation studies listed
// in DESIGN.md. Each experiment runs against a shared Env that memoizes
// workload builds and simulation runs, because several figures share the
// same underlying data (Figures 6-8 share the grouped runs; Figures 10
// and 12 share the job-queue sweeps).
package experiments

import (
	"fmt"

	"mtvec/internal/core"
	"mtvec/internal/memsys"
	"mtvec/internal/prog"
	"mtvec/internal/sched"
	"mtvec/internal/stats"
	"mtvec/internal/workload"
)

// Env caches workloads and simulation results for one reproduction scale.
type Env struct {
	Scale float64

	workloads map[string]*workload.Workload
	refs      map[refKey]*stats.Report
	queues    map[queueKey]*stats.Report
	grouped   []GroupedRun
}

// NewEnv creates an environment at the given workload scale.
func NewEnv(scale float64) *Env {
	return &Env{
		Scale:     scale,
		workloads: make(map[string]*workload.Workload),
		refs:      make(map[refKey]*stats.Report),
		queues:    make(map[queueKey]*stats.Report),
	}
}

type refKey struct {
	short   string
	latency int
}

// W builds (once) and returns the workload with the given short tag.
func (e *Env) W(short string) (*workload.Workload, error) {
	if w, ok := e.workloads[short]; ok {
		return w, nil
	}
	spec := workload.ByShort(short)
	if spec == nil {
		return nil, fmt.Errorf("experiments: unknown workload %q", short)
	}
	w, err := spec.Build(e.Scale)
	if err != nil {
		return nil, err
	}
	e.workloads[short] = w
	return w, nil
}

// refConfig is the reference architecture at the given memory latency.
func refConfig(latency int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mem.Latency = latency
	return cfg
}

// RefReport runs (once) the program alone on the reference architecture.
func (e *Env) RefReport(short string, latency int) (*stats.Report, error) {
	k := refKey{short, latency}
	if r, ok := e.refs[k]; ok {
		return r, nil
	}
	w, err := e.W(short)
	if err != nil {
		return nil, err
	}
	m, err := core.New(refConfig(latency))
	if err != nil {
		return nil, err
	}
	if err := m.SetThreadStream(0, short, w.Stream()); err != nil {
		return nil, err
	}
	rep, err := m.Run(core.Stop{})
	if err != nil {
		return nil, fmt.Errorf("experiments: reference run of %s: %w", short, err)
	}
	e.refs[k] = rep
	return rep, nil
}

// RefCycles is the reference execution time C_i of Section 4.1.
func (e *Env) RefCycles(short string, latency int) (int64, error) {
	r, err := e.RefReport(short, latency)
	if err != nil {
		return 0, err
	}
	return r.Cycles, nil
}

// RefPartialCycles is F_i of Section 4.1: reference cycles to reach the
// given dynamic-instruction index.
func (e *Env) RefPartialCycles(short string, latency int, insts int64) (int64, error) {
	if insts <= 0 {
		return 0, nil
	}
	w, err := e.W(short)
	if err != nil {
		return 0, err
	}
	m, err := core.New(refConfig(latency))
	if err != nil {
		return 0, err
	}
	if err := m.SetThreadStream(0, short, w.Stream()); err != nil {
		return 0, err
	}
	rep, err := m.Run(core.Stop{MaxThread0Insts: insts})
	if err != nil {
		return 0, err
	}
	return rep.Cycles, nil
}

// QueueSpec selects one Section 7 job-queue run: all ten programs in the
// paper's fixed order, threads pulling the next job as they finish.
type QueueSpec struct {
	Contexts   int
	Latency    int
	Xbar       int // read/write crossbar latency (Section 8; default 2)
	DualScalar bool
	Policy     string // "" = unfair
	IssueWidth int    // 0 -> 1

	LoadPorts  int // Cray-like extension ports (0 for the paper machine)
	StorePorts int
	Banks      int // banked-memory extension (0 = conflict-free)
	BankBusy   int

	RecordSpans bool
}

type queueKey struct {
	contexts, latency, xbar int
	dual                    bool
	policy                  string
	issueWidth              int
	loadPorts, storePorts   int
	banks, bankBusy         int
	spans                   bool
}

func (s QueueSpec) key() queueKey {
	return queueKey{
		s.Contexts, s.Latency, s.Xbar, s.DualScalar, s.Policy,
		s.IssueWidth, s.LoadPorts, s.StorePorts, s.Banks, s.BankBusy,
		s.RecordSpans,
	}
}

func (s QueueSpec) config() (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Contexts = s.Contexts
	cfg.Mem.Latency = s.Latency
	if s.Xbar > 0 {
		cfg.Lat.ReadXbar, cfg.Lat.WriteXbar = s.Xbar, s.Xbar
	}
	cfg.DualScalar = s.DualScalar
	if s.Policy != "" {
		p := sched.ByName(s.Policy)
		if p == nil {
			return cfg, fmt.Errorf("experiments: unknown policy %q", s.Policy)
		}
		cfg.Policy = p
	}
	if s.IssueWidth > 0 {
		cfg.IssueWidth = s.IssueWidth
	}
	if s.LoadPorts > 0 || s.StorePorts > 0 {
		cfg.Mem = memsys.Config{
			Latency:    s.Latency,
			LoadPorts:  s.LoadPorts,
			StorePorts: s.StorePorts,
		}
	}
	if s.Banks > 0 {
		cfg.Mem.Banks, cfg.Mem.BankBusy = s.Banks, s.BankBusy
	}
	cfg.RecordSpans = s.RecordSpans
	return cfg, nil
}

// QueueRun executes (once) the ten-program job queue under the spec.
func (e *Env) QueueRun(s QueueSpec) (*stats.Report, error) {
	k := s.key()
	if r, ok := e.queues[k]; ok {
		return r, nil
	}
	cfg, err := s.config()
	if err != nil {
		return nil, err
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	q := core.NewJobQueue()
	for _, spec := range workload.QueueOrder() {
		w, err := e.W(spec.Short)
		if err != nil {
			return nil, err
		}
		name := spec.Short
		q.Add(name, func() *prog.Stream { return w.Stream() })
	}
	src := q.Source()
	for i := 0; i < cfg.Contexts; i++ {
		if err := m.SetThread(i, src); err != nil {
			return nil, err
		}
	}
	rep, err := m.Run(core.Stop{})
	if err != nil {
		return nil, fmt.Errorf("experiments: queue run (%d ctx, lat %d): %w", s.Contexts, s.Latency, err)
	}
	e.queues[k] = rep
	return rep, nil
}

// SuiteDemand merges the ten programs' demand statistics (for the IDEAL
// bound).
func (e *Env) SuiteDemand() (prog.Stats, error) {
	var merged prog.Stats
	for _, spec := range workload.QueueOrder() {
		w, err := e.W(spec.Short)
		if err != nil {
			return merged, err
		}
		merged.Merge(&w.Stats)
	}
	return merged, nil
}

// GroupedRun is one Section 4.1 grouped simulation: the primary program
// on thread 0 with restarting companions, plus the derived metrics.
type GroupedRun struct {
	Primary    string
	Companions []string
	Contexts   int

	Rep     *stats.Report
	Speedup float64

	RefOcc  float64 // tuple's memory-port occupation run sequentially on the reference machine
	RefVOPC float64
}

// GroupedRuns produces (once) the full Table 2 experiment set: for every
// program, 5 two-thread, 10 three-thread and 10 four-thread groupings at
// 50-cycle memory latency.
func (e *Env) GroupedRuns() ([]GroupedRun, error) {
	if e.grouped != nil {
		return e.grouped, nil
	}
	const latency = 50
	g := workload.DefaultGroupings()
	var runs []GroupedRun

	for _, primary := range workload.Specs() {
		// 2 threads: primary + each column-2 program.
		for _, c2 := range g.Col2 {
			runs = append(runs, GroupedRun{Primary: primary.Short, Companions: []string{c2.Short}})
		}
		// 3 threads: primary + col2 + col3.
		for _, c2 := range g.Col2 {
			for _, c3 := range g.Col3 {
				runs = append(runs, GroupedRun{Primary: primary.Short, Companions: []string{c2.Short, c3.Short}})
			}
		}
		// 4 threads: primary + col2 + col3 + col4.
		for _, c2 := range g.Col2 {
			for _, c3 := range g.Col3 {
				for _, c4 := range g.Col4 {
					runs = append(runs, GroupedRun{Primary: primary.Short, Companions: []string{c2.Short, c3.Short, c4.Short}})
				}
			}
		}
	}

	for i := range runs {
		if err := e.runGrouped(&runs[i], latency); err != nil {
			return nil, err
		}
	}
	e.grouped = runs
	return runs, nil
}

func (e *Env) runGrouped(r *GroupedRun, latency int) error {
	r.Contexts = 1 + len(r.Companions)
	cfg := refConfig(latency)
	cfg.Contexts = r.Contexts
	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	pw, err := e.W(r.Primary)
	if err != nil {
		return err
	}
	if err := m.SetThreadStream(0, r.Primary, pw.Stream()); err != nil {
		return err
	}
	for i, comp := range r.Companions {
		cw, err := e.W(comp)
		if err != nil {
			return err
		}
		if err := m.SetThread(i+1, core.Repeat(comp, func() *prog.Stream { return cw.Stream() })); err != nil {
			return err
		}
	}
	rep, err := m.Run(core.Stop{Thread0Complete: true})
	if err != nil {
		return fmt.Errorf("grouped run %s+%v: %w", r.Primary, r.Companions, err)
	}
	r.Rep = rep

	// Section 4.1 speedup: reference work for exactly what the
	// multithreaded machine completed.
	refWork, err := e.RefCycles(r.Primary, latency)
	if err != nil {
		return err
	}
	for i, comp := range r.Companions {
		th := rep.Threads[i+1]
		full, err := e.RefCycles(comp, latency)
		if err != nil {
			return err
		}
		// Completions counts finished runs; the current unfinished run
		// contributes its partial reference time.
		refWork += th.Completions * full
		partial, err := e.RefPartialCycles(comp, latency, th.PartialInsts)
		if err != nil {
			return err
		}
		refWork += partial
	}
	r.Speedup = stats.Speedup(refWork, rep.Cycles)

	// Sequential-reference tuple metrics for Figures 7 and 8.
	var busy, cycles, arith int64
	members := append([]string{r.Primary}, r.Companions...)
	for _, mname := range members {
		rr, err := e.RefReport(mname, latency)
		if err != nil {
			return err
		}
		busy += rr.MemBusyCycles
		cycles += rr.Cycles
		arith += rr.VectorArithOps
	}
	if cycles > 0 {
		r.RefOcc = float64(busy) / float64(cycles)
		r.RefVOPC = float64(arith) / float64(cycles)
	}
	return nil
}
