package experiments

import (
	"fmt"

	"mtvec/internal/arch"
	"mtvec/internal/report"
)

// The register-file organization study sweeps the three axes the arch
// layer exposes on top of the paper's Section 8 register-file analysis:
// vector register length, bank/port geometry, and per-context register
// partitioning, each across 1..4 hardware contexts on the ten-program
// job queue at 50-cycle memory latency. The suite is recompiled for
// every compiler-visible organization (strip-mining length, register
// count, bank spread), so each machine runs code a Convex-style
// compiler would have produced for it.

// regfileVLens is the register-length axis (128 is the reference).
var regfileVLens = []int{64, 128, 256, 512}

// regfileGeoms is the bank-geometry axis.
var regfileGeoms = []struct {
	label           string
	perBank, rp, wp int
}{
	{"8 banks x 1 reg, 1R/1W", 1, 1, 1},
	{"4 banks x 2 regs, 2R/1W (ref)", 2, 2, 1},
	{"1 bank x 8 regs, 2R/1W", 8, 2, 1},
}

var regfileCtxs = []int{1, 2, 4}

// vlenSpec is the queue run at the given register length.
func vlenSpec(vlen, ctx int) QueueSpec {
	rf := arch.DefaultRegFile()
	rf.VLen = vlen
	return QueueSpec{Contexts: ctx, Latency: 50, RegFile: rf}
}

// geomSpec is the queue run at the given bank geometry.
func geomSpec(perBank, rp, wp, ctx int) QueueSpec {
	rf := arch.DefaultRegFile()
	rf.VRegsPerBank, rf.BankReadPorts, rf.BankWritePorts = perBank, rp, wp
	return QueueSpec{Contexts: ctx, Latency: 50, RegFile: rf}
}

// partitionSpec is the Section 8 register-splitting run: one physical
// 8-register file split across 2 contexts, code compiled for the
// 4-register half each context sees.
func partitionSpec() QueueSpec {
	rf := arch.DefaultRegFile()
	rf.VRegs = 4
	return QueueSpec{Contexts: 2, Latency: 50, RegFile: rf, Partition: true}
}

// extRegfileSpecs enumerates every simulation point of the study.
func extRegfileSpecs() []QueueSpec {
	var specs []QueueSpec
	for _, vlen := range regfileVLens {
		for _, ctx := range regfileCtxs {
			specs = append(specs, vlenSpec(vlen, ctx))
		}
	}
	for _, g := range regfileGeoms {
		for _, ctx := range regfileCtxs {
			specs = append(specs, geomSpec(g.perBank, g.rp, g.wp, ctx))
		}
	}
	specs = append(specs, partitionSpec())
	return specs
}

// extRegfileExp is the register-file organization study.
func extRegfileExp() Experiment {
	return Experiment{
		ID:         "ext-regfile",
		Points:     func(e *Env) []func() error { return queuePoints(e, extRegfileSpecs()) },
		Title:      "Extension: register-file organization study (vreg length x bank ports x contexts)",
		PaperShape: "Section 8 prices the register file; shorter registers add strip overhead, fewer ports add conflicts, splitting trades capacity for contexts",
		Run: func(e *Env) (*Result, error) {
			ref := make(map[int]int64) // reference cycles per context count
			for _, ctx := range regfileCtxs {
				rep, err := e.QueueRun(vlenSpec(128, ctx))
				if err != nil {
					return nil, err
				}
				ref[ctx] = rep.Cycles
			}
			rel := func(cycles int64, ctx int) string {
				return report.F(float64(cycles)/float64(ref[ctx]), 4)
			}

			vt := report.NewTable("Vector register length (8 regs, 2R/1W banks, queue at latency 50)",
				"elements/reg", "contexts", "cycles", "vs 128-elem", "mem occ", "VOPC")
			for _, vlen := range regfileVLens {
				for _, ctx := range regfileCtxs {
					rep, err := e.QueueRun(vlenSpec(vlen, ctx))
					if err != nil {
						return nil, err
					}
					vt.AddRow(report.I(int64(vlen)), report.I(int64(ctx)), report.I(rep.Cycles),
						rel(rep.Cycles, ctx), report.Pct(rep.MemOccupation()), report.F(rep.VOPC(), 2))
				}
			}

			gt := report.NewTable("Bank geometry (8 regs of 128 elements, queue at latency 50)",
				"organization", "contexts", "cycles", "vs ref", "lost decode")
			worstGeom := 1.0
			for _, g := range regfileGeoms {
				for _, ctx := range regfileCtxs {
					rep, err := e.QueueRun(geomSpec(g.perBank, g.rp, g.wp, ctx))
					if err != nil {
						return nil, err
					}
					if r := float64(rep.Cycles) / float64(ref[ctx]); r > worstGeom {
						worstGeom = r
					}
					gt.AddRow(g.label, report.I(int64(ctx)), report.I(rep.Cycles),
						rel(rep.Cycles, ctx), report.I(rep.LostDecode))
				}
			}

			pt := report.NewTable("Per-context register splitting (2 contexts, queue at latency 50)",
				"register file", "regs/context", "cycles", "vs replicated")
			repl, err := e.QueueRun(vlenSpec(128, 2))
			if err != nil {
				return nil, err
			}
			split, err := e.QueueRun(partitionSpec())
			if err != nil {
				return nil, err
			}
			pt.AddRow("replicated: 8 regs per context", report.I(8), report.I(repl.Cycles), "1.0000")
			pt.AddRow("split: one 8-reg file, 4 per context", report.I(4), report.I(split.Cycles),
				report.F(float64(split.Cycles)/float64(repl.Cycles), 4))

			return &Result{
				ID: "ext-regfile", Title: "Register-file organization study",
				Tables: []*report.Table{vt, gt, pt},
				Notes: []string{
					"Workloads are recompiled per organization: shorter registers pay their own extra strip-mining control (the scalar fraction grows beyond the Table 3 calibration), longer ones amortize it.",
					fmt.Sprintf("Bank geometry costs up to %.1f%% over the reference (a shared bank serializes operand reads); extra contexts hide most of it, the same latency-tolerance effect the paper shows for memory.", 100*(worstGeom-1)),
					"Splitting one physical file across contexts (Section 8's cheaper alternative) costs cycles versus replication because 4-register code spills loads it could have hoisted — but it halves the register-file area for the second context.",
				},
			}, nil
		},
	}
}
