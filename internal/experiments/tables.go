package experiments

import (
	"fmt"
	"strings"

	"mtvec/internal/isa"
	"mtvec/internal/report"
	"mtvec/internal/workload"
)

// table1Exp dumps the Table 1 latency reconstruction.
func table1Exp() Experiment {
	return Experiment{
		ID:         "table1",
		Title:      "Table 1: latency parameters",
		PaperShape: "scalar int/fp and vector unit latencies; 2-cycle crossbars; 1-cycle vector startup",
		Run: func(e *Env) (*Result, error) {
			lt := isa.DefaultLatencies()
			t := report.NewTable("Functional-unit latencies (cycles)",
				"class", "scalar int", "scalar fp", "vector")
			for _, c := range []isa.LatClass{isa.LatAdd, isa.LatLogic, isa.LatShift, isa.LatMul, isa.LatDiv, isa.LatSqrt} {
				t.AddRow(c.String(),
					report.I(int64(lt.ScalarInt[c])),
					report.I(int64(lt.ScalarFP[c])),
					report.I(int64(lt.Vector[c])))
			}
			t2 := report.NewTable("Pipeline-front parameters (cycles)", "parameter", "reference", "multithreaded")
			t2.AddRow("read crossbar", report.I(int64(lt.ReadXbar)), report.I(int64(lt.ReadXbar))+" (3 in §8 study)")
			t2.AddRow("write crossbar", report.I(int64(lt.WriteXbar)), report.I(int64(lt.WriteXbar))+" (3 in §8 study)")
			t2.AddRow("vector startup", report.I(int64(lt.VectorStartup)), report.I(int64(lt.VectorStartup)))
			return &Result{
				ID: "table1", Title: "Table 1",
				Tables: []*report.Table{t, t2},
				Notes: []string{
					"Memory latency is the experimental variable (default 50 cycles).",
				},
			}, nil
		},
	}
}

// table2Exp reports the grouping scheme reconstruction.
func table2Exp() Experiment {
	return Experiment{
		ID:         "table2",
		Title:      "Table 2: randomly selected companion programs",
		PaperShape: "5 two-thread, 10 three-thread, 10 four-thread simulations per program",
		Run: func(e *Env) (*Result, error) {
			g := workload.DefaultGroupings()
			t := report.NewTable("Companion programs per thread count", "2 threads", "3 threads", "4 threads")
			rows := len(g.Col2)
			for i := 0; i < rows; i++ {
				c2 := g.Col2[i].Short
				c3, c4 := "", ""
				if i < len(g.Col3) {
					c3 = g.Col3[i].Short
				}
				if i < len(g.Col4) {
					c4 = g.Col4[i].Short
				}
				t.AddRow(c2, c3, c4)
			}
			perProgram := len(g.Col2) + len(g.Col2)*len(g.Col3) + len(g.Col2)*len(g.Col3)*len(g.Col4)
			return &Result{
				ID: "table2", Title: "Table 2",
				Tables: []*report.Table{t},
				Notes: []string{
					note("%d grouped simulations per program (%d total), matching the paper's 5+10+10.",
						perProgram, perProgram*len(workload.Specs())),
					"Column 2 follows the Figure 7 caption; columns 3-4 are documented reconstructions (DESIGN.md).",
				},
			}, nil
		},
	}
}

// table3Exp compares every workload's measured dynamic profile with its
// published Table 3 row.
func table3Exp() Experiment {
	return Experiment{
		ID:         "table3",
		Points:     workloadPoints,
		Title:      "Table 3: basic operation counts",
		PaperShape: "per-program scalar/vector instructions (M), vector operations (M), %vectorized, average VL",
		Run: func(e *Env) (*Result, error) {
			t := report.NewTable(
				fmt.Sprintf("Dynamic profiles at scale %g (counts rescaled to paper millions)", e.Scale),
				"program", "suite",
				"S-insn M (paper)", "V-insn M (paper)", "V-ops M (paper)",
				"%vect (paper)", "avg VL (paper)")
			for _, spec := range workload.Specs() {
				w, err := e.W(spec.Short)
				if err != nil {
					return nil, err
				}
				toM := func(v int64) string {
					return report.F(float64(v)/1e6/e.Scale, 1)
				}
				st := &w.Stats
				t.AddRow(spec.Name, spec.Suite,
					fmt.Sprintf("%s (%.1f)", toM(st.ScalarInsts), spec.ScalarM),
					fmt.Sprintf("%s (%.1f)", toM(st.VectorInsts), spec.VectorM),
					fmt.Sprintf("%s (%.1f)", toM(st.VectorOps), spec.OpsM),
					fmt.Sprintf("%.1f (%.1f)", st.PctVectorized(), spec.PctVect),
					fmt.Sprintf("%.0f (%.0f)", st.AvgVL(), spec.AvgVL),
				)
			}
			return &Result{
				ID: "table3", Title: "Table 3",
				Tables: []*report.Table{t},
				Notes: []string{
					"bdna's scalar count uses the self-consistent 239.6M (see DESIGN.md).",
					"All ten reconstructions are calibrated within test tolerances of the published rows.",
				},
			}, nil
		},
	}
}

// shortNames returns the ten programs' short tags in Table 3 order.
func shortNames() []string {
	specs := workload.Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Short
	}
	return out
}

// joinShorts renders a companion list.
func joinShorts(ss []string) string { return strings.Join(ss, "+") }
