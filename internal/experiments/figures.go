package experiments

import (
	"fmt"

	"mtvec/internal/report"
	"mtvec/internal/stats"
)

// fig4Latencies are the memory latencies of Figures 4 and 5.
var fig4Latencies = []int{1, 20, 70, 100}

// fig10Latencies are the sweep points of Figures 10 and 12.
var fig10Latencies = []int{1, 20, 40, 60, 80, 100}

// fig11Latencies are the sweep points of Figure 11.
var fig11Latencies = []int{1, 10, 30, 50, 70, 90, 100}

// fig4Points enumerates the 40 solo reference runs shared by Figures 4
// and 5.
func fig4Points(e *Env) []func() error { return refPoints(e, fig4Latencies) }

// groupedPoints exposes the Table 2 grouped-run set (Figures 6-8) as a
// single task; GroupedRuns fans its ~250 simulations out internally.
func groupedPoints(e *Env) []func() error {
	return []func() error{func() error { _, err := e.GroupedRuns(); return err }}
}

// fig10QueueSpecs are the multithreaded queue runs of Figures 10 and 12.
func fig10QueueSpecs() []QueueSpec {
	var specs []QueueSpec
	for _, lat := range fig10Latencies {
		for _, ctx := range []int{2, 3, 4} {
			specs = append(specs, QueueSpec{Contexts: ctx, Latency: lat})
		}
	}
	return specs
}

// fig10Points covers the baseline reference runs and the queue sweep.
func fig10Points(e *Env) []func() error {
	return append(refPoints(e, fig10Latencies), queuePoints(e, fig10QueueSpecs())...)
}

// fig11Points enumerates both crossbar variants of the queue sweep.
func fig11Points(e *Env) []func() error {
	var specs []QueueSpec
	for _, lat := range fig11Latencies {
		for _, ctx := range []int{2, 3, 4} {
			for _, xbar := range []int{2, 3} {
				specs = append(specs, QueueSpec{Contexts: ctx, Latency: lat, Xbar: xbar})
			}
		}
	}
	return queuePoints(e, specs)
}

// fig12Points adds the dual-scalar runs to the shared Figure 10 sweep.
func fig12Points(e *Env) []func() error {
	specs := fig10QueueSpecs()
	for _, lat := range fig10Latencies {
		specs = append(specs, QueueSpec{Contexts: 2, Latency: lat, DualScalar: true})
	}
	return queuePoints(e, specs)
}

// fig4Exp reproduces the reference machine's 8-state breakdown.
func fig4Exp() Experiment {
	return Experiment{
		ID:         "fig4",
		Points:     fig4Points,
		Title:      "Figure 4: functional-unit usage on the reference architecture",
		PaperShape: "peak states rare and shrinking with latency; <,,> grows with latency; DYFESM/TRFD/FLO52 most latency-sensitive",
		Run: func(e *Env) (*Result, error) {
			cols := []string{"program", "latency", "cycles"}
			for s := 0; s < stats.NumStates; s++ {
				cols = append(cols, stats.StateName(stats.State(s)))
			}
			t := report.NewTable("Execution-time breakdown into the 8 machine states (% of cycles)", cols...)
			for _, short := range shortNames() {
				for _, lat := range fig4Latencies {
					rep, err := e.RefReport(short, lat)
					if err != nil {
						return nil, err
					}
					row := []string{short, report.I(int64(lat)), report.I(rep.Cycles)}
					for s := 0; s < stats.NumStates; s++ {
						row = append(row, report.F(100*float64(rep.Breakdown[s])/float64(rep.Cycles), 1))
					}
					t.AddRow(row...)
				}
			}
			return &Result{ID: "fig4", Title: "Figure 4", Tables: []*report.Table{t}}, nil
		},
	}
}

// fig5Exp reproduces the memory-port idle percentages.
func fig5Exp() Experiment {
	return Experiment{
		ID:         "fig5",
		Points:     fig4Points,
		Title:      "Figure 5: percentage of cycles with the memory port idle",
		PaperShape: "30-65% idle at latency 70 across the ten programs",
		Run: func(e *Env) (*Result, error) {
			cols := []string{"program"}
			for _, lat := range fig4Latencies {
				cols = append(cols, fmt.Sprintf("lat %d", lat))
			}
			t := report.NewTable("Memory-port idle cycles (% of execution)", cols...)
			var series []report.Series
			var xs []float64
			for _, lat := range fig4Latencies {
				xs = append(xs, float64(lat))
			}
			for _, short := range shortNames() {
				row := []string{short}
				ys := make([]float64, 0, len(fig4Latencies))
				for _, lat := range fig4Latencies {
					rep, err := e.RefReport(short, lat)
					if err != nil {
						return nil, err
					}
					idle := 100 * rep.MemIdleFraction()
					row = append(row, report.F(idle, 1))
					ys = append(ys, idle)
				}
				t.AddRow(row...)
				series = append(series, report.Series{Name: short, Ys: ys})
			}
			chart := report.Chart("Memory-port idle % vs latency", "memory latency (cycles)", xs, series, 60, 14)
			return &Result{ID: "fig5", Title: "Figure 5", Tables: []*report.Table{t}, Charts: []string{chart}}, nil
		},
	}
}

// groupedAverages folds the grouped runs into per-program, per-context
// aggregates.
type groupAgg struct {
	speedupSum, speedupMin, speedupMax float64
	occSum, refOccSum                  float64
	vopcSum, refVopcSum                float64
	n                                  int
}

func aggregateGrouped(runs []GroupedRun) map[string]map[int]*groupAgg {
	out := make(map[string]map[int]*groupAgg)
	for _, r := range runs {
		byCtx := out[r.Primary]
		if byCtx == nil {
			byCtx = make(map[int]*groupAgg)
			out[r.Primary] = byCtx
		}
		a := byCtx[r.Contexts]
		if a == nil {
			a = &groupAgg{speedupMin: r.Speedup, speedupMax: r.Speedup}
			byCtx[r.Contexts] = a
		}
		if r.Speedup < a.speedupMin {
			a.speedupMin = r.Speedup
		}
		if r.Speedup > a.speedupMax {
			a.speedupMax = r.Speedup
		}
		a.speedupSum += r.Speedup
		a.occSum += r.Rep.MemOccupation()
		a.refOccSum += r.RefOcc
		a.vopcSum += r.Rep.VOPC()
		a.refVopcSum += r.RefVOPC
		a.n++
	}
	return out
}

// fig6Exp reproduces the grouped-run speedups.
func fig6Exp() Experiment {
	return Experiment{
		ID:         "fig6",
		Points:     groupedPoints,
		Title:      "Figure 6: multithreaded speedup at memory latency 50",
		PaperShape: "2 threads: 1.2-1.4; 3 threads: ~1.3 up to 1.51; 4 threads: small further gain; dyfesm/trfd highest",
		Run: func(e *Env) (*Result, error) {
			runs, err := e.GroupedRuns()
			if err != nil {
				return nil, err
			}
			agg := aggregateGrouped(runs)
			t := report.NewTable("Average speedup over the reference machine (min..max across groupings)",
				"program", "2 threads", "3 threads", "4 threads")
			for _, short := range shortNames() {
				row := []string{short}
				for _, ctx := range []int{2, 3, 4} {
					a := agg[short][ctx]
					row = append(row, fmt.Sprintf("%.2f (%.2f..%.2f)",
						a.speedupSum/float64(a.n), a.speedupMin, a.speedupMax))
				}
				t.AddRow(row...)
			}
			return &Result{ID: "fig6", Title: "Figure 6", Tables: []*report.Table{t}}, nil
		},
	}
}

// fig7Exp reproduces memory-port occupation, multithreaded vs reference.
func fig7Exp() Experiment {
	return Experiment{
		ID:         "fig7",
		Points:     groupedPoints,
		Title:      "Figure 7: memory-port occupation, multithreaded vs sequential reference",
		PaperShape: "~80-86% at 2 threads, ~90% at 3, 90-95% at 4; reference runs well below; less-vectorized programs lower",
		Run: func(e *Env) (*Result, error) {
			runs, err := e.GroupedRuns()
			if err != nil {
				return nil, err
			}
			agg := aggregateGrouped(runs)
			t := report.NewTable("Average memory-port occupation (mth vs ref)",
				"program", "2 thr mth", "2 thr ref", "3 thr mth", "3 thr ref", "4 thr mth", "4 thr ref")
			for _, short := range shortNames() {
				row := []string{short}
				for _, ctx := range []int{2, 3, 4} {
					a := agg[short][ctx]
					row = append(row,
						report.Pct(a.occSum/float64(a.n)),
						report.Pct(a.refOccSum/float64(a.n)))
				}
				t.AddRow(row...)
			}
			return &Result{ID: "fig7", Title: "Figure 7", Tables: []*report.Table{t}}, nil
		},
	}
}

// fig8Exp reproduces vector operations per cycle.
func fig8Exp() Experiment {
	return Experiment{
		ID:         "fig8",
		Points:     groupedPoints,
		Title:      "Figure 8: vector arithmetic operations per cycle (VOPC)",
		PaperShape: "reference 0.5-0.85; top-6 programs reach ~1 at 2 threads, >1 at 3; trfd/dyfesm stay low",
		Run: func(e *Env) (*Result, error) {
			runs, err := e.GroupedRuns()
			if err != nil {
				return nil, err
			}
			agg := aggregateGrouped(runs)
			t := report.NewTable("Average VOPC (mth vs ref)",
				"program", "2 thr mth", "2 thr ref", "3 thr mth", "3 thr ref", "4 thr mth", "4 thr ref")
			for _, short := range shortNames() {
				row := []string{short}
				for _, ctx := range []int{2, 3, 4} {
					a := agg[short][ctx]
					row = append(row,
						report.F(a.vopcSum/float64(a.n), 2),
						report.F(a.refVopcSum/float64(a.n), 2))
				}
				t.AddRow(row...)
			}
			return &Result{ID: "fig8", Title: "Figure 8", Tables: []*report.Table{t}}, nil
		},
	}
}

// fig9Exp reproduces the job-queue execution profile.
func fig9Exp() Experiment {
	return Experiment{
		ID:         "fig9",
		Title:      "Figure 9: execution profile of the 10 programs on a 2-context machine (latency 50)",
		PaperShape: "threads pull jobs in order TF SW SU TI TO A7 HY NA SR SD; a short tail runs alone at the end",
		Run: func(e *Env) (*Result, error) {
			rep, err := e.QueueRun(QueueSpec{Contexts: 2, Latency: 50, RecordSpans: true})
			if err != nil {
				return nil, err
			}
			t := report.NewTable("Job spans", "thread", "program", "start", "end")
			for _, sp := range rep.Spans {
				t.AddRow(report.I(int64(sp.Thread)), sp.Program, report.I(sp.Start), report.I(sp.End))
			}
			chart := report.Gantt(rep.Spans, 100)
			return &Result{
				ID: "fig9", Title: "Figure 9",
				Tables: []*report.Table{t},
				Charts: []string{chart},
				Notes:  []string{note("Total execution: %d cycles.", rep.Cycles)},
			}, nil
		},
	}
}

// fig10Exp reproduces the latency sweep with the IDEAL bound.
func fig10Exp() Experiment {
	return Experiment{
		ID:         "fig10",
		Points:     fig10Points,
		Title:      "Figure 10: total execution time vs memory latency",
		PaperShape: "baseline ~linear in latency; 2-context curve nearly flat (~6.8% from 1 to 100); speedup 1.15 at latency 1, 1.45 at 100",
		Run: func(e *Env) (*Result, error) {
			demand, err := e.SuiteDemand()
			if err != nil {
				return nil, err
			}
			ideal := demand.IdealCycles()

			t := report.NewTable("Ten-program suite execution time (cycles)",
				"latency", "baseline", "2 threads", "3 threads", "4 threads", "IDEAL")
			series := make([]report.Series, 5)
			series[0].Name = "baseline"
			series[1].Name = "2 threads"
			series[2].Name = "3 threads"
			series[3].Name = "4 threads"
			series[4].Name = "IDEAL"
			var xs []float64

			baseline := map[int]int64{}
			mth := map[[2]int]int64{}
			for _, lat := range fig10Latencies {
				var base int64
				for _, short := range shortNames() {
					c, err := e.RefCycles(short, lat)
					if err != nil {
						return nil, err
					}
					base += c
				}
				baseline[lat] = base
				row := []string{report.I(int64(lat)), report.I(base)}
				xs = append(xs, float64(lat))
				series[0].Ys = append(series[0].Ys, float64(base))
				for i, ctx := range []int{2, 3, 4} {
					rep, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: lat})
					if err != nil {
						return nil, err
					}
					mth[[2]int{ctx, lat}] = rep.Cycles
					row = append(row, report.I(rep.Cycles))
					series[1+i].Ys = append(series[1+i].Ys, float64(rep.Cycles))
				}
				row = append(row, report.I(ideal))
				series[4].Ys = append(series[4].Ys, float64(ideal))
				t.AddRow(row...)
			}
			chart := report.Chart("Execution time vs memory latency", "memory latency (cycles)", xs, series, 64, 16)

			lo, hi := fig10Latencies[0], fig10Latencies[len(fig10Latencies)-1]
			sp1 := float64(baseline[lo]) / float64(mth[[2]int{2, lo}])
			sp100 := float64(baseline[hi]) / float64(mth[[2]int{2, hi}])
			deg := 100 * (float64(mth[[2]int{2, hi}])/float64(mth[[2]int{2, lo}]) - 1)
			return &Result{
				ID: "fig10", Title: "Figure 10",
				Tables: []*report.Table{t},
				Charts: []string{chart},
				Notes: []string{
					note("2-thread speedup over baseline: %.2f at latency %d, %.2f at latency %d (paper: 1.15 and 1.45).", sp1, lo, sp100, hi),
					note("2-thread degradation from latency %d to %d: %.1f%% (paper: 6.8%%).", lo, hi, deg),
					"At 4 contexts the fixed job order places trfd on the lowest-priority context; its short-vector, latency-bound invocations can become the makespan tail (the paper's end-of-run imbalance caveat), so the 4-thread curve can overlap the 3-thread one.",
				},
			}, nil
		},
	}
}

// fig11Exp reproduces the crossbar-latency study.
func fig11Exp() Experiment {
	return Experiment{
		ID:         "fig11",
		Points:     fig11Points,
		Title:      "Figure 11: slowdown from 3-cycle register-file crossbars",
		PaperShape: "slowdown below ~1.009 everywhere; chaining, vector length and multithreading absorb the extra cycle",
		Run: func(e *Env) (*Result, error) {
			t := report.NewTable("T(crossbar=3) / T(crossbar=2) on the ten-program queue",
				"latency", "2 threads", "3 threads", "4 threads")
			series := make([]report.Series, 3)
			var xs []float64
			maxSlow := 0.0
			for _, lat := range fig11Latencies {
				row := []string{report.I(int64(lat))}
				xs = append(xs, float64(lat))
				for i, ctx := range []int{2, 3, 4} {
					base, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: lat, Xbar: 2})
					if err != nil {
						return nil, err
					}
					slow3, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: lat, Xbar: 3})
					if err != nil {
						return nil, err
					}
					ratio := float64(slow3.Cycles) / float64(base.Cycles)
					if ratio > maxSlow {
						maxSlow = ratio
					}
					row = append(row, report.F(ratio, 4))
					series[i].Name = fmt.Sprintf("%d threads", ctx)
					series[i].Ys = append(series[i].Ys, ratio)
				}
				t.AddRow(row...)
			}
			chart := report.Chart("Crossbar slowdown vs latency", "memory latency (cycles)", xs, series, 64, 12)
			return &Result{
				ID: "fig11", Title: "Figure 11",
				Tables: []*report.Table{t},
				Charts: []string{chart},
				Notes: []string{
					note("Maximum slowdown observed: %.4f (paper: <1.009; their 2-thread bound holds here too).", maxSlow),
					"At 3-4 contexts the ratio is noisy either way: the extra crossbar cycle can shift a program completion past a queue pull and reassign later jobs to different threads — the paper's own Section 8 anomaly (their latency-50, 3-thread point ran faster with slower crossbars).",
				},
			}, nil
		},
	}
}

// fig12Exp reproduces the Fujitsu dual-scalar comparison.
func fig12Exp() Experiment {
	return Experiment{
		ID:         "fig12",
		Points:     fig12Points,
		Title:      "Figure 12: dual scalar units (Fujitsu VP2000 style) vs multithreaded decode",
		PaperShape: "Fujitsu-style ~3% ahead of 2-thread mth at latency 1, converging by latency 100; 3 and 4 threads beat both",
		Run: func(e *Env) (*Result, error) {
			demand, err := e.SuiteDemand()
			if err != nil {
				return nil, err
			}
			t := report.NewTable("Ten-program suite execution time (cycles)",
				"latency", "fujitsu 2ctx", "mth 2", "mth 3", "mth 4", "IDEAL", "fuj/mth2")
			series := make([]report.Series, 4)
			series[0].Name = "fujitsu"
			series[1].Name = "mth 2"
			series[2].Name = "mth 3"
			series[3].Name = "mth 4"
			var xs []float64
			var advLow, advHigh float64
			for li, lat := range fig10Latencies {
				fuj, err := e.QueueRun(QueueSpec{Contexts: 2, Latency: lat, DualScalar: true})
				if err != nil {
					return nil, err
				}
				row := []string{report.I(int64(lat)), report.I(fuj.Cycles)}
				xs = append(xs, float64(lat))
				series[0].Ys = append(series[0].Ys, float64(fuj.Cycles))
				var mth2 int64
				for i, ctx := range []int{2, 3, 4} {
					rep, err := e.QueueRun(QueueSpec{Contexts: ctx, Latency: lat})
					if err != nil {
						return nil, err
					}
					if ctx == 2 {
						mth2 = rep.Cycles
					}
					row = append(row, report.I(rep.Cycles))
					series[1+i].Ys = append(series[1+i].Ys, float64(rep.Cycles))
				}
				ratio := float64(fuj.Cycles) / float64(mth2)
				row = append(row, report.I(demand.IdealCycles()), report.F(ratio, 4))
				t.AddRow(row...)
				if li == 0 {
					advLow = ratio
				}
				advHigh = ratio
			}
			chart := report.Chart("Dual-scalar vs multithreaded", "memory latency (cycles)", xs, series, 64, 14)
			return &Result{
				ID: "fig12", Title: "Figure 12",
				Tables: []*report.Table{t},
				Charts: []string{chart},
				Notes: []string{
					note("Fujitsu/mth2 time ratio: %.4f at latency %d, %.4f at latency %d (paper: ~0.97 converging to ~1.00).",
						advLow, fig10Latencies[0], advHigh, fig10Latencies[len(fig10Latencies)-1]),
					"With the compiler's load hoisting the shared decode unit is rarely the bottleneck, so the dual-scalar edge sits inside scheduling noise here; the mechanism itself is exercised by the core dual-scalar tests.",
				},
			}, nil
		},
	}
}
