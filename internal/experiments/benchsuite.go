package experiments

import (
	"fmt"

	"mtvec/internal/report"
	"mtvec/internal/sched"
	"mtvec/internal/workload"
)

// The benchmark-suite study runs the real vectorizable kernels
// (docs/BENCHMARKS.md) through the paper's Section 7 job-queue
// methodology: the suite in catalog order, threads pulling the next
// kernel as they finish, swept across hardware contexts, memory
// latencies and thread-switch policies. Where the Table 3 programs are
// synthetic loop nests calibrated to published profiles, these kernels
// have genuine dataflow — so the sweep shows which paper effects
// (latency tolerance, policy sensitivity, port saturation) carry over
// to real memory-access patterns.

var benchCtxs = []int{1, 2, 4}
var benchLats = []int{1, 50, 100}

// extBenchsuiteSpecs enumerates every queue point of the study.
func extBenchsuiteSpecs() []QueueSpec {
	var specs []QueueSpec
	for _, lat := range benchLats {
		for _, ctx := range benchCtxs {
			specs = append(specs, QueueSpec{Contexts: ctx, Latency: lat})
		}
	}
	for _, pol := range sched.Names() {
		for _, ctx := range []int{2, 4} {
			specs = append(specs, QueueSpec{Contexts: ctx, Latency: 50, Policy: pol})
		}
	}
	return specs
}

// benchPoints prefetches the suite's solo characterization runs and
// queue sweep.
func benchPoints(e *Env) []func() error {
	ps := []func() error{func() error {
		_, err := e.BenchSuite(QueueSpec{}.RegFile)
		return err
	}}
	for _, s := range workload.BenchOrder() {
		short := s.Short
		ps = append(ps, func() error { _, err := e.RefReport(short, 50); return err })
	}
	for _, s := range extBenchsuiteSpecs() {
		s := s
		ps = append(ps, func() error { _, err := e.BenchQueueRun(s); return err })
	}
	return ps
}

// extBenchsuiteExp is the real-suite characterization and sweep.
func extBenchsuiteExp() Experiment {
	return Experiment{
		ID:         "ext-benchsuite",
		Points:     benchPoints,
		Title:      "Extension: real vectorizable benchmark suite (axpy/dot/gemm/spmv/stencils/blackscholes)",
		PaperShape: "the paper's effects measured on kernels with genuine dataflow: latency tolerance should survive, but memory-bound kernels saturate the single port sooner than the calibrated suite",
		Run: func(e *Env) (*Result, error) {
			ct := report.NewTable("Suite characterization (each kernel solo on the reference machine, latency 50)",
				"kernel", "vectorized", "avg VL", "cycles", "VOPC", "mem occ")
			for _, s := range workload.BenchOrder() {
				w, err := e.W(s.Short)
				if err != nil {
					return nil, err
				}
				rep, err := e.RefReport(s.Short, 50)
				if err != nil {
					return nil, err
				}
				ct.AddRow(s.Name, report.Pct(w.Stats.PctVectorized()/100), report.F(w.Stats.AvgVL(), 1),
					report.I(rep.Cycles), report.F(rep.VOPC(), 2), report.Pct(rep.MemOccupation()))
			}

			lt := report.NewTable("Suite job queue: contexts x memory latency",
				"latency", "contexts", "cycles", "speedup", "mem occ")
			var tol1, tol4 float64 // latency 1 -> 100 slowdown at 1 and 4 contexts
			for _, lat := range benchLats {
				var base int64
				for _, ctx := range benchCtxs {
					rep, err := e.BenchQueueRun(QueueSpec{Contexts: ctx, Latency: lat})
					if err != nil {
						return nil, err
					}
					if ctx == 1 {
						base = rep.Cycles
					}
					lt.AddRow(report.I(int64(lat)), report.I(int64(ctx)), report.I(rep.Cycles),
						report.F(float64(base)/float64(rep.Cycles), 3), report.Pct(rep.MemOccupation()))
					switch {
					case lat == 1 && ctx == 1:
						tol1 = float64(rep.Cycles)
					case lat == 1 && ctx == 4:
						tol4 = float64(rep.Cycles)
					case lat == 100 && ctx == 1:
						tol1 = float64(rep.Cycles) / tol1
					case lat == 100 && ctx == 4:
						tol4 = float64(rep.Cycles) / tol4
					}
				}
			}

			pt := report.NewTable("Suite job queue: thread-switch policies at latency 50",
				"policy", "contexts", "cycles", "mem occ", "lost decode")
			for _, pol := range sched.Names() {
				for _, ctx := range []int{2, 4} {
					rep, err := e.BenchQueueRun(QueueSpec{Contexts: ctx, Latency: 50, Policy: pol})
					if err != nil {
						return nil, err
					}
					pt.AddRow(pol, report.I(int64(ctx)), report.I(rep.Cycles),
						report.Pct(rep.MemOccupation()), report.I(rep.LostDecode))
				}
			}

			return &Result{
				ID: "ext-benchsuite", Title: "Real benchmark suite",
				Tables: []*report.Table{ct, lt, pt},
				Notes: []string{
					"spmv's short CSR rows keep its average vector length far below the register length, so it leans on the scalar pipeline the way the paper's low-AvgVL programs (bdna, dyfesm) do.",
					"blackscholes is compute-bound (sqrt/divide chains) and barely notices memory latency; the streaming kernels (axpy, stencils) are the latency-tolerance showcase, recovering through multithreading what the single-context machine loses.",
					fmt.Sprintf("Raising latency 1 -> 100 costs the single-context queue %.2fx but the 4-context queue only %.2fx — the paper's central claim, reproduced on real dataflow.", tol1, tol4),
				},
			}, nil
		},
	}
}
