// Package stats computes the paper's evaluation metrics: the eight-state
// functional-unit occupancy breakdown of Figure 4, memory-port occupation
// (Figures 5 and 7), vector operations per cycle (Figure 8) and the
// weighted-work speedup of Section 4.1.
package stats

import (
	"fmt"
	"sync"
)

// Cycle counts processor cycles.
type Cycle = int64

// Unit indices for the three vector-side units of the machine state
// 3-tuple ⟨FU2, FU1, LD⟩.
const (
	UnitLD = iota
	UnitFU1
	UnitFU2
	NumUnits
)

// State is a bitmask over the three units; 8 possible machine states.
type State uint8

const NumStates = 8

// StateName renders a state in the paper's ⟨FU2,FU1,LD⟩ notation.
func StateName(s State) string {
	part := func(bit int, name string) string {
		if s&(1<<bit) != 0 {
			return name
		}
		return ""
	}
	return fmt.Sprintf("<%s,%s,%s>", part(UnitFU2, "FU2"), part(UnitFU1, "FU1"), part(UnitLD, "LD"))
}

// Breakdown is the cycles spent in each of the eight states.
type Breakdown [NumStates]Cycle

// Total returns the cycles accounted for.
func (b *Breakdown) Total() Cycle {
	var t Cycle
	for _, c := range b {
		t += c
	}
	return t
}

// MemIdle returns the cycles in the four states where the LD unit (and
// hence the memory port's master) is idle — the paper's Figure 5
// numerator.
func (b *Breakdown) MemIdle() Cycle {
	var t Cycle
	for s := 0; s < NumStates; s++ {
		if s&(1<<UnitLD) == 0 {
			t += b[s]
		}
	}
	return t
}

// AllIdle returns the cycles where no vector unit is working.
func (b *Breakdown) AllIdle() Cycle { return b[0] }

// interval is a half-open busy window [S, E).
type interval struct{ S, E Cycle }

// UnitTimeline accumulates per-unit busy intervals during a run and
// sweeps them into a state breakdown afterwards. Intervals must be added
// per unit in non-decreasing start order with no overlap, which dispatch
// order guarantees.
type UnitTimeline struct {
	busy [NumUnits][]interval
	// box, when non-nil, is the pooled storage AcquireBacking borrowed;
	// ReleaseBacking hands the (possibly regrown) lists back through it.
	box *[NumUnits][]interval
}

// timelineBacking recycles per-unit interval storage across runs. The
// lists are the dominant per-lane transient of a simulation — without
// reuse every lane regrows them from nil through repeated doubling —
// and their needed capacity is unknowable ahead of time (adjacent busy
// windows merge at a workload-dependent rate), so pooling beats any
// static presize: capacities converge to the high-water mark of what
// runs actually needed. Entries are pointer-free, so pooled garbage
// costs the collector nothing to scan.
var timelineBacking = sync.Pool{New: func() any { return new([NumUnits][]interval) }}

// AcquireBacking equips the timeline with pooled per-unit storage.
// Optional: a timeline works without it, allocating as it grows.
func (tl *UnitTimeline) AcquireBacking() {
	box := timelineBacking.Get().(*[NumUnits][]interval)
	for u := range box {
		tl.busy[u] = box[u][:0]
	}
	tl.box = box
}

// HasBacking reports whether the timeline currently holds pooled
// storage — acquired and not yet released. Lets owners assert the
// acquire/release pairing on error paths.
func (tl *UnitTimeline) HasBacking() bool { return tl.box != nil }

// ReleaseBacking returns pooled storage for reuse by a later timeline.
// Call once, after the final Sweep/BusyCycles; the timeline reads as
// empty afterwards. No-op when AcquireBacking was never called.
func (tl *UnitTimeline) ReleaseBacking() {
	if tl.box == nil {
		return
	}
	*tl.box = tl.busy
	tl.busy = [NumUnits][]interval{}
	timelineBacking.Put(tl.box)
	tl.box = nil
}

// AddBusy records that unit was busy over [start, end).
func (tl *UnitTimeline) AddBusy(unit int, start, end Cycle) {
	if end <= start {
		return
	}
	list := tl.busy[unit]
	if n := len(list); n > 0 {
		last := &list[n-1]
		if start < last.E {
			// Clamp defensively; dispatch order should prevent this.
			start = last.E
			if end <= start {
				return
			}
		}
		if start == last.E {
			last.E = end
			return
		}
	}
	tl.busy[unit] = append(list, interval{start, end})
}

// BusyCycles returns the total busy cycles of one unit (clipped to total).
func (tl *UnitTimeline) BusyCycles(unit int, total Cycle) Cycle {
	var sum Cycle
	for _, iv := range tl.busy[unit] {
		s, e := iv.S, iv.E
		if s >= total {
			break
		}
		if e > total {
			e = total
		}
		sum += e - s
	}
	return sum
}

// Sweep computes the state breakdown over [0, total).
func (tl *UnitTimeline) Sweep(total Cycle) Breakdown {
	var b Breakdown
	var idx [NumUnits]int
	t := Cycle(0)
	for t < total {
		state := State(0)
		next := total
		for u := 0; u < NumUnits; u++ {
			list := tl.busy[u]
			// Advance past intervals that ended at or before t.
			for idx[u] < len(list) && list[idx[u]].E <= t {
				idx[u]++
			}
			if idx[u] >= len(list) {
				continue
			}
			iv := list[idx[u]]
			if iv.S <= t {
				state |= 1 << u
				if iv.E < next {
					next = iv.E
				}
			} else if iv.S < next {
				next = iv.S
			}
		}
		if next <= t {
			next = t + 1
		}
		b[state] += next - t
		t = next
	}
	return b
}

// ThreadReport describes one hardware context's progress at run end.
type ThreadReport struct {
	Program      string
	Completions  int64 // full program runs finished
	PartialInsts int64 // dynamic instructions into the unfinished run
	Dispatched   int64 // total instructions dispatched by this context
}

// Span is one segment of Figure 9's execution profile: program occupying
// a context over a cycle range.
type Span struct {
	Thread  int
	Program string
	Start   Cycle
	End     Cycle
}

// Report carries every metric of one simulation run.
type Report struct {
	Cycles    Cycle
	Breakdown Breakdown

	MemBusyCycles int64 // address-port busy cycles
	MemRequests   int64 // requests sent on the address bus
	MemPorts      int   // number of address ports

	VectorArithOps int64 // operations executed on FU1+FU2
	VectorOps      int64 // including memory elements
	Insts          int64 // instructions dispatched
	LostDecode     int64 // decode cycles without a dispatch

	Threads []ThreadReport
	Spans   []Span
}

// MemOccupation is requests over cycles per port (0..1).
func (r *Report) MemOccupation() float64 {
	if r.Cycles <= 0 || r.MemPorts <= 0 {
		return 0
	}
	return float64(r.MemBusyCycles) / float64(r.Cycles) / float64(r.MemPorts)
}

// MemIdleFraction is the paper's Figure 5 metric.
func (r *Report) MemIdleFraction() float64 {
	if r.Cycles <= 0 {
		return 0
	}
	return float64(r.Breakdown.MemIdle()) / float64(r.Cycles)
}

// VOPC is vector arithmetic operations per cycle (0..2 with two vector
// units).
func (r *Report) VOPC() float64 {
	if r.Cycles <= 0 {
		return 0
	}
	return float64(r.VectorArithOps) / float64(r.Cycles)
}

// Speedup implements Section 4.1: reference cycles for the same amount of
// work divided by the multithreaded run's cycles.
func Speedup(referenceWork, multithreadedCycles Cycle) float64 {
	if multithreadedCycles <= 0 {
		return 0
	}
	return float64(referenceWork) / float64(multithreadedCycles)
}
