package stats

import "testing"

// TestAddBusyClampsOverlap: dispatch order should prevent overlapping
// intervals, but AddBusy clamps defensively — an interval starting
// inside the previous one loses its covered prefix, and one fully
// contained is dropped.
func TestAddBusyClampsOverlap(t *testing.T) {
	var tl UnitTimeline
	tl.AddBusy(UnitLD, 0, 10)
	tl.AddBusy(UnitLD, 5, 8) // fully inside [0,10): dropped
	if got := tl.BusyCycles(UnitLD, 100); got != 10 {
		t.Errorf("contained overlap changed busy cycles: %d, want 10", got)
	}
	tl.AddBusy(UnitLD, 5, 14) // prefix clamped to [10,14), merges
	if got := tl.BusyCycles(UnitLD, 100); got != 14 {
		t.Errorf("clamped overlap busy cycles = %d, want 14", got)
	}
	tl.AddBusy(UnitLD, 14, 14) // empty: no-op
	tl.AddBusy(UnitLD, 20, 6)  // inverted: no-op
	if got := tl.BusyCycles(UnitLD, 100); got != 14 {
		t.Errorf("degenerate intervals changed busy cycles: %d, want 14", got)
	}
	// The breakdown agrees with the clamped timeline.
	b := tl.Sweep(20)
	if busy := b.Total() - b.AllIdle(); busy != 14 {
		t.Errorf("sweep busy = %d, want 14", busy)
	}
}

// TestBusyCyclesClipsAndStops: intervals past the horizon are skipped
// entirely, intervals straddling it are clipped.
func TestBusyCyclesClipsAndStops(t *testing.T) {
	var tl UnitTimeline
	tl.AddBusy(UnitFU2, 0, 5)
	tl.AddBusy(UnitFU2, 6, 20)
	tl.AddBusy(UnitFU2, 30, 40)
	if got := tl.BusyCycles(UnitFU2, 8); got != 7 {
		t.Errorf("clipped busy = %d, want 7 (5 + [6,8))", got)
	}
	if got := tl.BusyCycles(UnitFU2, 50); got != 29 {
		t.Errorf("full busy = %d, want 29", got)
	}
}

// TestSweepZeroTotal: an empty horizon yields an all-zero breakdown.
func TestSweepZeroTotal(t *testing.T) {
	var tl UnitTimeline
	tl.AddBusy(UnitFU1, 0, 5)
	b := tl.Sweep(0)
	if b.Total() != 0 {
		t.Errorf("zero-horizon breakdown totals %d cycles", b.Total())
	}
}

// TestSweepIntervalPastHorizon: units whose first interval starts beyond
// the horizon contribute nothing and do not shorten the idle tail.
func TestSweepIntervalPastHorizon(t *testing.T) {
	var tl UnitTimeline
	tl.AddBusy(UnitFU1, 2, 4)
	tl.AddBusy(UnitFU2, 90, 95)
	b := tl.Sweep(10)
	if b.Total() != 10 {
		t.Errorf("total = %d, want 10", b.Total())
	}
	if b.AllIdle() != 8 {
		t.Errorf("idle = %d, want 8", b.AllIdle())
	}
	if got := b[1<<UnitFU1]; got != 2 {
		t.Errorf("FU1-only cycles = %d, want 2", got)
	}
}
