package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestStateName(t *testing.T) {
	if got := StateName(0); got != "<,,>" {
		t.Errorf("empty state = %q", got)
	}
	full := State(1<<UnitFU2 | 1<<UnitFU1 | 1<<UnitLD)
	if got := StateName(full); got != "<FU2,FU1,LD>" {
		t.Errorf("full state = %q", got)
	}
	if got := StateName(1 << UnitLD); !strings.Contains(got, "LD") || strings.Contains(got, "FU") {
		t.Errorf("LD-only state = %q", got)
	}
}

func TestSweepSimple(t *testing.T) {
	var tl UnitTimeline
	tl.AddBusy(UnitLD, 0, 10)   // LD busy [0,10)
	tl.AddBusy(UnitFU1, 5, 15)  // FU1 busy [5,15)
	tl.AddBusy(UnitFU2, 20, 25) // FU2 busy [20,25)
	b := tl.Sweep(30)

	if b.Total() != 30 {
		t.Fatalf("total = %d, want 30", b.Total())
	}
	if got := b[1<<UnitLD]; got != 5 { // [0,5): LD only
		t.Errorf("LD-only = %d, want 5", got)
	}
	if got := b[1<<UnitLD|1<<UnitFU1]; got != 5 { // [5,10)
		t.Errorf("LD+FU1 = %d, want 5", got)
	}
	if got := b[1<<UnitFU1]; got != 5 { // [10,15)
		t.Errorf("FU1-only = %d, want 5", got)
	}
	if got := b[0]; got != 10 { // [15,20) and [25,30)
		t.Errorf("idle = %d, want 10", got)
	}
	if got := b[1<<UnitFU2]; got != 5 { // [20,25)
		t.Errorf("FU2-only = %d, want 5", got)
	}
}

func TestSweepClipsToTotal(t *testing.T) {
	var tl UnitTimeline
	tl.AddBusy(UnitLD, 5, 100)
	b := tl.Sweep(10)
	if b.Total() != 10 {
		t.Fatalf("total = %d, want 10", b.Total())
	}
	if b[1<<UnitLD] != 5 || b[0] != 5 {
		t.Fatalf("breakdown = %+v", b)
	}
	if tl.BusyCycles(UnitLD, 10) != 5 {
		t.Fatalf("BusyCycles clipped = %d", tl.BusyCycles(UnitLD, 10))
	}
}

func TestAddBusyMergesAdjacent(t *testing.T) {
	var tl UnitTimeline
	tl.AddBusy(UnitFU1, 0, 5)
	tl.AddBusy(UnitFU1, 5, 10)
	if len(tl.busy[UnitFU1]) != 1 {
		t.Fatalf("adjacent intervals not merged: %v", tl.busy[UnitFU1])
	}
	tl.AddBusy(UnitFU1, 3, 12) // overlapping: clamped to [10,12)
	if got := tl.BusyCycles(UnitFU1, 100); got != 12 {
		t.Fatalf("busy = %d, want 12", got)
	}
	tl.AddBusy(UnitFU1, 20, 20) // empty: ignored
	if got := tl.BusyCycles(UnitFU1, 100); got != 12 {
		t.Fatalf("busy after empty add = %d", got)
	}
}

func TestMemIdle(t *testing.T) {
	var b Breakdown
	b[0] = 10                   // all idle
	b[1<<UnitFU1] = 7           // FU1 only: LD idle
	b[1<<UnitLD] = 20           // LD busy
	b[1<<UnitLD|1<<UnitFU2] = 3 // LD busy
	if got := b.MemIdle(); got != 17 {
		t.Fatalf("MemIdle = %d, want 17", got)
	}
	if b.AllIdle() != 10 {
		t.Fatalf("AllIdle = %d", b.AllIdle())
	}
}

func TestSweepPropertyTotalAndBusy(t *testing.T) {
	// Property: the breakdown always covers exactly `total` cycles, and
	// per-unit busy counts from the breakdown match BusyCycles.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tl UnitTimeline
		for u := 0; u < NumUnits; u++ {
			t := Cycle(0)
			for i := 0; i < 20; i++ {
				t += Cycle(r.Intn(10))
				e := t + Cycle(r.Intn(15))
				tl.AddBusy(u, t, e)
				t = e
			}
		}
		total := Cycle(150)
		b := tl.Sweep(total)
		if b.Total() != total {
			return false
		}
		for u := 0; u < NumUnits; u++ {
			var fromBreakdown Cycle
			for s := 0; s < NumStates; s++ {
				if s&(1<<u) != 0 {
					fromBreakdown += b[s]
				}
			}
			if fromBreakdown != tl.BusyCycles(u, total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReportMetrics(t *testing.T) {
	r := Report{
		Cycles:         1000,
		MemBusyCycles:  800,
		MemPorts:       1,
		VectorArithOps: 1500,
	}
	r.Breakdown[0] = 300
	r.Breakdown[1<<UnitLD] = 700
	if got := r.MemOccupation(); got != 0.8 {
		t.Errorf("occupation = %f", got)
	}
	if got := r.VOPC(); got != 1.5 {
		t.Errorf("VOPC = %f", got)
	}
	if got := r.MemIdleFraction(); got != 0.3 {
		t.Errorf("idle fraction = %f", got)
	}
	var empty Report
	if empty.MemOccupation() != 0 || empty.VOPC() != 0 || empty.MemIdleFraction() != 0 {
		t.Error("empty report should yield zeros")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(1400, 1000); got != 1.4 {
		t.Errorf("speedup = %f", got)
	}
	if Speedup(100, 0) != 0 {
		t.Error("zero-cycle speedup should be 0")
	}
}

// TestBackingPoolRoundTrip exercises the pooled timeline storage
// in-package: acquire attaches reusable per-unit lists, release hands
// them back (idempotently) and leaves the timeline empty, and a backed
// timeline sweeps identically to a plain one.
func TestBackingPoolRoundTrip(t *testing.T) {
	var tl UnitTimeline
	if tl.HasBacking() {
		t.Fatal("fresh timeline claims pooled backing")
	}
	tl.ReleaseBacking() // no-op without backing

	tl.AcquireBacking()
	if !tl.HasBacking() {
		t.Fatal("AcquireBacking did not attach backing")
	}
	tl.AddBusy(UnitLD, 0, 10)
	tl.AddBusy(UnitFU1, 5, 15)
	var plain UnitTimeline
	plain.AddBusy(UnitLD, 0, 10)
	plain.AddBusy(UnitFU1, 5, 15)
	if got, want := tl.Sweep(20), plain.Sweep(20); got != want {
		t.Fatalf("backed sweep %v != plain sweep %v", got, want)
	}

	tl.ReleaseBacking()
	if tl.HasBacking() {
		t.Fatal("ReleaseBacking left backing attached")
	}
	if got := tl.Sweep(20); got[0] != 20 {
		t.Fatalf("released timeline not empty: %v", got)
	}
	tl.ReleaseBacking() // second release is a no-op

	// Re-acquire: pooled or fresh, the timeline must come back empty.
	tl.AcquireBacking()
	defer tl.ReleaseBacking()
	if got := tl.Sweep(20); got[0] != 20 {
		t.Fatalf("re-acquired timeline not empty: %v", got)
	}
}
