package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// deterministicPkgs are the packages whose entire output must be
// byte-reproducible (docs/GOLDEN.txt pins the suite; internal/metrics
// promises byte-identical scrapes): every map iteration there must use
// a sorted-keys or pure-collection idiom, and wall clocks and random
// sources are banned outright.
var deterministicPkgs = []string{
	"internal/core",
	"internal/stats",
	"internal/report",
	"internal/metrics",
}

// Determinism flags the constructs that make output depend on map
// iteration order or ambient state:
//
//   - in the deterministic packages: any time.Now call, any math/rand
//     import, and any range over a map whose body is not a pure
//     collection (append / map insert / delete / integer accumulate /
//     guarded extremum);
//   - in every package: a map-range body that returns a value derived
//     from the iteration variables (which diagnostic wins depends on
//     hash order), or that feeds rendered output (report cell
//     formatters, table rows, fmt.Fprint*, or Write* methods) directly
//     from the iteration.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags wall clocks, random sources and order-dependent map iteration in deterministic output paths",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	scoped := false
	for _, p := range deterministicPkgs {
		if pkgIs(pass.Pkg.Path, p) {
			scoped = true
			break
		}
	}
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		if scoped {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil &&
					(path == "math/rand" || path == "math/rand/v2") {
					pass.Reportf(imp.Pos(), "deterministic package imports %s; seedable randomness has no place in reproducible simulation output", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if scoped && isPkgFunc(info, n, "time", "Now") {
					pass.Reportf(n.Pos(), "deterministic package calls time.Now; simulated time must come from the machine clock")
				}
			case *ast.RangeStmt:
				checkMapRange(pass, scoped, n)
			}
			return true
		})
	}
}

// checkMapRange applies the map-iteration rules to one range statement.
func checkMapRange(pass *Pass, scoped bool, rng *ast.RangeStmt) {
	info := pass.Pkg.TypesInfo
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	if scoped && !collectIdiom(info, rng.Body) {
		pass.Reportf(rng.Pos(), "map iteration in a deterministic package is not a pure collection; iterate sorted keys or collect-then-sort")
		return
	}

	// Everywhere: a return whose value derives from the iteration
	// variables makes "which entry answered" depend on hash order.
	iterVars := rangeVarObjs(info, rng)
	var flagged bool
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if flagged {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesAny(info, res, iterVars) {
					pass.Reportf(n.Pos(), "return inside map iteration depends on the iteration variables; which entry is reported varies run to run — sort the keys first")
					flagged = true
					return false
				}
			}
		case *ast.CallExpr:
			if !scoped && rendersOutput(info, n) {
				pass.Reportf(n.Pos(), "map iteration feeds rendered output (%s); emit from sorted keys instead", exprString(pass.Pkg.Fset, n.Fun))
				flagged = true
				return false
			}
		}
		return true
	})
}

// rangeVarObjs collects the key/value variable objects of a range
// statement.
func rangeVarObjs(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[id]; obj != nil { // `=` instead of `:=`
				vars[obj] = true
			}
		}
	}
	return vars
}

// usesAny reports whether the expression references any of the objects.
func usesAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// rendersOutput reports whether a call emits user-visible text: the
// report package's cell formatters and table builders, fmt's writer
// family, or a Write*/String-building method.
func rendersOutput(info *types.Info, call *ast.CallExpr) bool {
	if isPkgFunc(info, call, "internal/report", "*") {
		return true
	}
	obj := calleeObj(info, call)
	if obj == nil {
		return false
	}
	if pkgIs(pkgPathOf(obj), "fmt") {
		switch obj.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
		return false
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			switch fn.Name() {
			case "Write", "WriteString", "WriteByte", "WriteRune", "AddRow":
				return true
			}
		}
	}
	return false
}

// collectIdiom reports whether a loop body is a pure collection: every
// statement only gathers entries (append, map/set insert, delete),
// accumulates commutatively (integer `+=`/`++`; float accumulation is
// order-sensitive and rejected), tracks a guarded extremum, or recurses
// into such statements. A body like that produces identical results in
// any iteration order; everything else must iterate sorted keys.
func collectIdiom(info *types.Info, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if !collectStmt(info, st, false) {
			return false
		}
	}
	return true
}

func collectStmt(info *types.Info, st ast.Stmt, inGuard bool) bool {
	switch st := st.(type) {
	case *ast.AssignStmt:
		return collectAssign(info, st, inGuard)
	case *ast.IncDecStmt:
		return isInteger(info.TypeOf(st.X))
	case *ast.DeclStmt:
		return true
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
				return true
			}
		}
		return false
	case *ast.BlockStmt:
		for _, s := range st.List {
			if !collectStmt(info, s, inGuard) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if st.Init != nil && !collectStmt(info, st.Init, inGuard) {
			return false
		}
		if !pureExpr(info, st.Cond) {
			return false
		}
		// A comparison guard admits plain assignments inside: the
		// max/min-tracking idiom (`if v > best { best = v }`).
		guard := inGuard || comparisonCond(st.Cond)
		if !collectStmt(info, st.Body, guard) {
			return false
		}
		return st.Else == nil || collectStmt(info, st.Else, guard)
	case *ast.BranchStmt:
		return st.Tok.String() == "continue" // break leaks iteration order
	case *ast.RangeStmt:
		// Nested iteration over the current value is still collection as
		// long as the inner body is.
		return collectStmt(info, st.Body, inGuard)
	case *ast.ForStmt:
		if st.Cond != nil && !pureExpr(info, st.Cond) {
			return false
		}
		return collectStmt(info, st.Body, inGuard)
	default:
		return false
	}
}

func collectAssign(info *types.Info, st *ast.AssignStmt, inGuard bool) bool {
	// Compound arithmetic: only integer accumulation commutes exactly.
	switch st.Tok.String() {
	case "+=", "-=", "|=", "&=", "^=", "*=":
		for _, l := range st.Lhs {
			if !isInteger(info.TypeOf(l)) {
				return false
			}
		}
		return true
	case ":=":
		return true // fresh locals are inert until used by a disallowed statement
	case "=":
	default:
		return false
	}
	for i, l := range st.Lhs {
		switch ast.Unparen(l).(type) {
		case *ast.IndexExpr:
			// Map or slice insert keyed by loop data.
			continue
		case *ast.Ident, *ast.SelectorExpr:
			if i < len(st.Rhs) {
				if call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
						if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
							continue // x = append(x, ...)
						}
					}
				}
			}
			if inGuard {
				continue // extremum tracking under a comparison guard
			}
			return false
		default:
			return false
		}
	}
	return true
}

// comparisonCond reports whether an expression is (or contains at its
// top level) an ordering comparison — the shape of an extremum guard.
func comparisonCond(e ast.Expr) bool {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op.String() {
	case "<", ">", "<=", ">=", "==", "!=":
		return true
	case "&&", "||":
		return comparisonCond(b.X) || comparisonCond(b.Y)
	}
	return false
}

// pureExpr conservatively reports that evaluating an expression cannot
// have side effects: identifiers, selectors, indexing, literals,
// arithmetic and len/cap calls only.
func pureExpr(info *types.Info, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
					return true
				}
			}
			pure = false
			return false
		case *ast.FuncLit:
			pure = false
			return false
		}
		return pure
	})
	return pure
}
