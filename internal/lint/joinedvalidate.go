package lint

import (
	"go/ast"
	"go/types"
)

// joinedValidatePkgs are the validation layers whose contract — set by
// the session option layer in PR 2 and extended to memsys in PR 5 — is
// that a caller sees every diagnosable problem at once, joined, instead
// of fixing one and tripping over the next.
var joinedValidatePkgs = []string{
	"internal/arch",
	"internal/memsys",
	"internal/session",
}

// JoinedValidate flags Validate-named functions that bail out with a
// freshly-constructed error (fmt.Errorf / errors.New) instead of
// accumulating diagnostics for errors.Join: a direct `return
// fmt.Errorf(...)` hides every later check from the caller.
var JoinedValidate = &Analyzer{
	Name: "joinedvalidate",
	Doc:  "Validate* functions in arch/memsys/session must accumulate diagnostics via errors.Join, not return the first one",
	Run:  runJoinedValidate,
}

func runJoinedValidate(pass *Pass) {
	scoped := false
	for _, p := range joinedValidatePkgs {
		if pkgIs(pass.Pkg.Path, p) {
			scoped = true
			break
		}
	}
	if !scoped {
		return
	}
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isValidateName(fd.Name.Name) || !returnsError(info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // diagnostic-collector closures construct errors on purpose
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					if freshError(info, res) {
						pass.Reportf(ret.Pos(), "%s returns its first diagnostic directly; accumulate into a slice and return errors.Join so callers see every problem at once", fd.Name.Name)
						return false
					}
				}
				return true
			})
		}
	}
}

func isValidateName(name string) bool {
	return name == "Validate" || (len(name) > len("Validate") && name[:len("Validate")] == "Validate")
}

// returnsError reports whether the function's last result is error.
func returnsError(info *types.Info, fd *ast.FuncDecl) bool {
	obj := info.Defs[fd.Name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return last.String() == "error"
}

// freshError reports whether the expression constructs a new diagnostic
// in place: fmt.Errorf(...) or errors.New(...).
func freshError(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isPkgFunc(info, call, "fmt", "Errorf") || isPkgFunc(info, call, "errors", "New")
}
