package lint

import (
	"go/ast"
	"go/types"
)

// statePkgs are the packages whose values an observer must treat as
// read-only: mutating machine, report or session state from an observer
// callback would break TestObserverInvariance's guarantee that
// observation never perturbs results (and that a warm cache can skip
// observation-free replays).
var statePkgs = []string{
	"internal/core",
	"internal/stats",
	"internal/session",
}

// ObserverPure inspects every type implementing core.Observer and flags
// callback bodies that write foreign machine/report/session state:
// assignments (or ++/--) whose target is a field of a state-package
// type not rooted at the observer's own receiver, and calls to
// pointer-receiver methods on such values. An observer may freely
// mutate itself — that is what SpanRecorder and SwitchCounter are for.
var ObserverPure = &Analyzer{
	Name: "observerpure",
	Doc:  "core.Observer callbacks must not write machine, report or session state",
	Run:  runObserverPure,
}

func runObserverPure(pass *Pass) {
	core := pass.Index.Lookup("internal/core")
	if core == nil {
		return
	}
	obj, ok := core.Types.Scope().Lookup("Observer").(*types.TypeName)
	if !ok {
		return
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	callbacks := make(map[string]bool)
	for i := 0; i < iface.NumMethods(); i++ {
		callbacks[iface.Method(i).Name()] = true
	}

	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !callbacks[fd.Name.Name] {
				continue
			}
			recvType := info.Defs[fd.Name].(*types.Func).Type().(*types.Signature).Recv().Type()
			base := namedOf(recvType)
			if base == nil {
				continue
			}
			// Only types that actually satisfy the interface are observers;
			// an unrelated method that happens to be called Span is not.
			if !types.Implements(base.Obj().Type(), iface) &&
				!types.Implements(types.NewPointer(base.Obj().Type()), iface) {
				continue
			}
			var recvObj types.Object
			if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recvObj = info.Defs[fd.Recv.List[0].Names[0]]
			}
			checkObserverBody(pass, fd, base, recvObj)
		}
	}
}

func checkObserverBody(pass *Pass, fd *ast.FuncDecl, obsType *types.Named, recvObj types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				checkObserverWrite(pass, fd, l, obsType, recvObj)
			}
		case *ast.IncDecStmt:
			checkObserverWrite(pass, fd, n.X, obsType, recvObj)
		case *ast.CallExpr:
			checkObserverCall(pass, fd, n, obsType, recvObj)
		}
		return true
	})
}

// foreignTarget decides whether writing through (or calling a mutating
// method on) sel escapes the observer: the owner must be a
// state-package type other than the observer itself, and the value must
// be shared — reached through a pointer from the receiver, or rooted at
// something that is not a plain value local (a value local is a copy;
// mutating it stays private to the callback).
func foreignTarget(pass *Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr, owner, obsType *types.Named, recvObj types.Object) bool {
	if owner == nil || !isStatePkg(pkgPathOf(owner.Obj())) {
		return false
	}
	// The observer's own type may live in a state package (core's
	// SpanRecorder does); mutating itself is the point.
	if obsType != nil && owner.Obj() == obsType.Obj() {
		return false
	}
	info := pass.Pkg.TypesInfo
	root := rootIdent(sel.X)
	if root == nil {
		return true
	}
	rootObj := info.Uses[root]
	if rootObj == recvObj {
		// Reached from the receiver: a value field chain is the
		// observer's own memory, a pointer hop leads to shared state.
		if t := info.TypeOf(sel.X); t != nil {
			_, isPtr := t.Underlying().(*types.Pointer)
			return isPtr
		}
		return true
	}
	if v, ok := rootObj.(*types.Var); ok {
		if _, isPtr := v.Type().Underlying().(*types.Pointer); !isPtr && insideFunc(pass, fd, v) {
			return false
		}
	}
	return true
}

// checkObserverWrite flags an assignment target that is foreign state.
func checkObserverWrite(pass *Pass, fd *ast.FuncDecl, lhs ast.Expr, obsType *types.Named, recvObj types.Object) {
	info := pass.Pkg.TypesInfo
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	owner := namedOf(s.Recv())
	if !foreignTarget(pass, fd, sel, owner, obsType, recvObj) {
		return
	}
	pass.Reportf(sel.Pos(), "observer callback %s writes %s state (%s.%s); observers must only mutate their own fields",
		fd.Name.Name, owner.Obj().Pkg().Name(), owner.Obj().Name(), sel.Sel.Name)
}

// checkObserverCall flags calls to pointer-receiver methods of
// state-package types on values the observer does not own — the
// method-shaped spelling of a state write (m.Bump(), rep.Add(...)).
func checkObserverCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, obsType *types.Named, recvObj types.Object) {
	info := pass.Pkg.TypesInfo
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return
	}
	if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
		return // value receiver cannot mutate the callee
	}
	owner := namedOf(sig.Recv().Type())
	if !foreignTarget(pass, fd, sel, owner, obsType, recvObj) {
		return
	}
	pass.Reportf(call.Pos(), "observer callback %s calls %s.%s, a pointer-receiver method on %s state; observers must not mutate what they observe",
		fd.Name.Name, owner.Obj().Name(), fn.Name(), owner.Obj().Pkg().Name())
}

func isStatePkg(path string) bool {
	for _, p := range statePkgs {
		if pkgIs(path, p) {
			return true
		}
	}
	return false
}

// insideFunc reports whether a variable is declared within the
// function (parameter or local), as opposed to captured or global.
func insideFunc(pass *Pass, fd *ast.FuncDecl, v *types.Var) bool {
	return fd.Pos() <= v.Pos() && v.Pos() <= fd.End()
}
