package lint

import (
	"go/ast"
	"go/types"
)

// keyFuncNames are the cache-key encoders. memoKey and persistKey are
// the roots; appendMachineKey is the shared machine-dimension tail both
// delegate to.
var keyFuncNames = map[string]bool{
	"memoKey":          true,
	"persistKey":       true,
	"appendMachineKey": true,
}

// KeyComplete structurally compares the fields of the run-describing
// structs — the key functions' receiver (RunSpec) plus arch.Spec and
// arch.RegFile — against the fields those functions actually read.
// A machine-shape field that never reaches the key is exactly the PR
// 4/5 bug class: two different machines share one cached Report. The
// check walks the key functions and everything they call inside their
// package, crediting every field touched along a selection path
// (embedded promotion included); a field that is deliberately not part
// of a run's identity carries an //mtvlint:allow keycomplete directive
// at its declaration.
var KeyComplete = &Analyzer{
	Name: "keycomplete",
	Doc:  "every machine-shape field must be encoded by memoKey/appendMachineKey/persistKey (or be explicitly exempted)",
	Run:  runKeyComplete,
}

func runKeyComplete(pass *Pass) {
	info := pass.Pkg.TypesInfo
	decls := funcDecls(pass.Pkg)

	// Roots: the key functions declared in this package. Packages
	// without them (everything but internal/session) are a no-op.
	var roots []*ast.FuncDecl
	var recvTypes []*types.Named
	for obj, fd := range decls {
		if keyFuncNames[fd.Name.Name] {
			roots = append(roots, fd)
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				if n := namedOf(sig.Recv().Type()); n != nil {
					recvTypes = append(recvTypes, n)
				}
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	// Transitive closure over same-package calls: a helper like
	// appendNum or a future splitKey still credits the fields it reads.
	referenced := make(map[*types.Var]bool)
	seen := make(map[*ast.FuncDecl]bool)
	var walk func(fd *ast.FuncDecl)
	walk = func(fd *ast.FuncDecl) {
		if fd == nil || seen[fd] || fd.Body == nil {
			return
		}
		seen[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				creditSelection(info, n, referenced)
			case *ast.CallExpr:
				if obj := calleeObj(info, n); obj != nil {
					walk(decls[obj])
				}
			}
			return true
		})
	}
	for _, fd := range roots {
		walk(fd)
	}

	// Targets: the key functions' receiver structs plus the arch-layer
	// shape structs, wherever the arch package lives in this load.
	targets := make(map[*types.Named]bool)
	for _, n := range recvTypes {
		targets[n] = true
	}
	if arch := pass.Index.Lookup("internal/arch"); arch != nil {
		for _, name := range []string{"Spec", "RegFile"} {
			if obj, ok := arch.Types.Scope().Lookup(name).(*types.TypeName); ok {
				if n, ok := obj.Type().(*types.Named); ok {
					targets[n] = true
				}
			}
		}
	}

	for named := range targets {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if referenced[field] {
				continue
			}
			pass.Reportf(field.Pos(), "field %s.%s never reaches memoKey/appendMachineKey/persistKey; a run differing only in it would collide in the cache (encode it, or exempt it with //mtvlint:allow keycomplete -- reason)",
				named.Obj().Name(), field.Name())
		}
	}
}

// creditSelection marks every field traversed by a field selection,
// including the embedded hops of a promoted access (p.cfg.MaxContexts
// credits both the embedded Spec and Spec.MaxContexts).
func creditSelection(info *types.Info, sel *ast.SelectorExpr, referenced map[*types.Var]bool) {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	t := s.Recv()
	for _, idx := range s.Index() {
		for {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		f := st.Field(idx)
		referenced[f] = true
		t = f.Type()
	}
}
