// Package lint is the repository's own static-analysis suite: five
// analyzers that mechanically enforce invariants the rest of the module
// holds by convention — byte-deterministic rendering, cache-key
// completeness, gate-slot acquire/release hygiene, joined validation
// diagnostics and observer purity. cmd/mtvlint drives them over the
// module; docs/LINT.md catalogues the invariants and the history behind
// each one.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature
// (Analyzer, Pass, report-with-position, testdata fixtures with
// `// want` expectations) but is built on the standard library alone:
// packages load through `go list -deps -json` and type-check from
// source, so the tool needs no module dependencies and works offline.
//
// False positives are suppressed in place with a directive comment on
// (or directly above) the offending line:
//
//	//mtvlint:allow determinism -- ordering proven by TestX
//
// Every suppression should carry a reason after "--".
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mtvlint:allow directives.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass is one analyzer's view of one package under analysis.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Index    *Index

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an //mtvlint:allow directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Index.Allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		KeyComplete,
		SlotPair,
		JoinedValidate,
		ObserverPure,
	}
}

// Run applies each analyzer to each package and returns every surviving
// diagnostic, sorted by position.
func Run(pkgs []*Package, ix *Index, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Index: ix, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// ---- shared helpers ----

// pkgIs reports whether an import path is the given path or ends with
// "/"+path — so "mtvec/internal/core" matches "internal/core" and the
// fixture trees can mirror real paths.
func pkgIs(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// pkgOf returns the defining package path of a named type's object, or
// "".
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// exprString renders an expression compactly ("b.slots", "m.tl") for
// receiver matching and messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return fmt.Sprintf("%T", e)
	}
	return b.String()
}

// calleeObj resolves a call expression's callee object (function or
// method), or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether a call resolves to the named function (or
// any function when name is "*") of a package matched by pkgIs.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	if obj == nil || !pkgIs(pkgPathOf(obj), pkgPath) {
		return false
	}
	if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
		return name == "*" || fn.Name() == name
	}
	return false
}

// funcDecls maps a package's function objects to their declarations,
// for intra-package call-graph walks.
func funcDecls(pkg *Package) map[types.Object]*ast.FuncDecl {
	m := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pkg.TypesInfo.Defs[fd.Name]; obj != nil {
					m[obj] = fd
				}
			}
		}
	}
	return m
}

// isInteger reports whether a type's underlying kind is an integer.
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// rootIdent returns the leftmost identifier of a selector/index/star
// chain ("b" for b.slots.x[i]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
