package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SlotPair enforces the Gate.TryAcquire protocol introduced in PR 9:
// every slot (or pooled resource) claimed through an Acquire-family
// method must be returned by the matching Release on all paths out of
// the claiming function — including panics and early returns, which is
// exactly what a deferred Release guarantees and ad-hoc call-site
// pairing does not.
//
// Mechanically: a call x.M(...) where M is "Acquire", "TryAcquire" or
// "Acquire<Suffix>"/"TryAcquire<Suffix>", and x's type also has the
// matching "Release"/"Release<Suffix>" method, creates an obligation in
// the enclosing function. The obligation is met by a `defer` — either
// `defer x.Release(...)` directly or a deferred closure whose body
// calls x.Release — on the same receiver expression. Protocols that
// intentionally span functions (a constructor acquires, a finalizer
// releases) carry an //mtvlint:allow slotpair directive at the acquire
// site naming where the release lives.
var SlotPair = &Analyzer{
	Name: "slotpair",
	Doc:  "every Acquire/TryAcquire must be matched by a deferred Release on all paths (panic- and early-return-safe)",
	Run:  runSlotPair,
}

func runSlotPair(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSlotFunc(pass, fd)
		}
	}
}

// acquireCall is one obligation-creating call site.
type acquireCall struct {
	call        *ast.CallExpr
	recv        string // canonical receiver text, e.g. "b.slots"
	releaseName string
}

func checkSlotFunc(pass *Pass, fd *ast.FuncDecl) {
	var acquires []acquireCall
	released := make(map[string]bool) // recv + "\x00" + releaseName seen under defer

	// walk visits the body tracking whether execution is inside a
	// deferred context (a deferred call or a deferred closure's body).
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				noteCall(pass, m.Call, true, &acquires, released)
				if fl, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(fl.Body, true)
				}
				for _, a := range m.Call.Args {
					walk(a, deferred) // arguments evaluate at defer time, not unwind
				}
				return false
			case *ast.CallExpr:
				noteCall(pass, m, deferred, &acquires, released)
			}
			return true
		})
	}
	walk(fd.Body, false)

	for _, a := range acquires {
		key := a.recv + "\x00" + a.releaseName
		if released[key] {
			continue
		}
		pass.Reportf(a.call.Pos(), "%s.%s result is not matched by a deferred %s.%s in this function; a panic or early return leaks the claimed slots (defer the release, or //mtvlint:allow slotpair -- where it is released)",
			a.recv, methodName(a.call), a.recv, a.releaseName)
	}
}

// noteCall classifies one call as acquire, deferred release, or
// neither.
func noteCall(pass *Pass, call *ast.CallExpr, deferred bool, acquires *[]acquireCall, released map[string]bool) {
	info := pass.Pkg.TypesInfo
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	recvType := info.TypeOf(sel.X)
	if recvType == nil {
		return
	}
	recv := exprString(pass.Pkg.Fset, sel.X)

	if deferred && strings.HasPrefix(name, "Release") {
		released[recv+"\x00"+name] = true
		return
	}
	suffix, isAcquire := acquireSuffix(name)
	if !isAcquire {
		return
	}
	releaseName := "Release" + suffix
	if !hasMethod(recvType, releaseName) {
		return // not a paired protocol (e.g. sync/semaphore-unrelated names)
	}
	*acquires = append(*acquires, acquireCall{call: call, recv: recv, releaseName: releaseName})
}

// acquireSuffix matches the Acquire-family method names and returns the
// pairing suffix ("" for Acquire/TryAcquire, "Backing" for
// AcquireBacking, ...).
func acquireSuffix(name string) (string, bool) {
	if s, ok := strings.CutPrefix(name, "TryAcquire"); ok {
		return s, true
	}
	if s, ok := strings.CutPrefix(name, "Acquire"); ok {
		return s, true
	}
	return "", false
}

// hasMethod reports whether t (or *t) has a method with the given name.
func hasMethod(t types.Type, name string) bool {
	if _, ok := t.Underlying().(*types.Interface); ok {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		_, isFunc := obj.(*types.Func)
		return isFunc
	}
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(tt)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "?"
}
