package lint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	runFixture(t, Determinism, "det/internal/core", "det/plain")
}

func TestKeyComplete(t *testing.T) {
	runFixture(t, KeyComplete, "keys/session", "keys/internal/arch")
}

func TestSlotPair(t *testing.T) {
	runFixture(t, SlotPair, "slots/pool")
}

func TestJoinedValidate(t *testing.T) {
	runFixture(t, JoinedValidate, "jv/internal/memsys", "jv/plain")
}

func TestObserverPure(t *testing.T) {
	runFixture(t, ObserverPure, "obs/internal/core", "obs/impl")
}

// TestRepoIsClean runs the whole suite over the actual module — the
// same gate CI applies via cmd/mtvlint. A finding here means either new
// code broke an invariant or an analyzer grew a false positive; both
// block the build on purpose.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, ix, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load matched no packages")
	}
	for _, d := range Run(pkgs, ix, All()) {
		t.Errorf("%s", d)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "determinism",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "boom",
	}
	if got, want := d.String(), "x.go:3:7: determinism: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestLookupPrefersExactThenLexical(t *testing.T) {
	ix := &Index{pkgs: map[string]*Package{
		"b/internal/arch": {Path: "b/internal/arch"},
		"a/internal/arch": {Path: "a/internal/arch"},
		"internal/arch":   {Path: "internal/arch"},
	}}
	if p := ix.Lookup("internal/arch"); p == nil || p.Path != "internal/arch" {
		t.Fatalf("exact lookup = %v", p)
	}
	delete(ix.pkgs, "internal/arch")
	// With only suffix matches left, ties must break lexically — never
	// by map iteration order.
	for i := 0; i < 10; i++ {
		if p := ix.Lookup("internal/arch"); p == nil || p.Path != "a/internal/arch" {
			t.Fatalf("suffix lookup = %v, want a/internal/arch", p)
		}
	}
	if p := ix.Lookup("no/such/pkg"); p != nil {
		t.Fatalf("missing lookup = %v, want nil", p)
	}
}

func TestAllowDirectiveParsing(t *testing.T) {
	ix := &Index{fset: token.NewFileSet(), allow: map[string]map[int][]string{
		"f.go": {10: {"determinism", "slotpair"}},
	}}
	for _, tc := range []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"determinism", 10, true},  // same line
		{"slotpair", 11, true},     // directive directly above
		{"determinism", 12, false}, // too far below
		{"keycomplete", 10, false}, // different analyzer
		{"determinism", 9, false},  // directive below the diagnostic
	} {
		pos := token.Position{Filename: "f.go", Line: tc.line}
		if got := ix.Allowed(tc.analyzer, pos); got != tc.want {
			t.Errorf("Allowed(%s, line %d) = %v, want %v", tc.analyzer, tc.line, got, tc.want)
		}
	}
}

func TestAnalyzerNamesAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 5 {
		t.Fatalf("expected 5 analyzers, have %d", len(seen))
	}
}

func TestLoadRejectsBrokenPatterns(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(root, "./no/such/dir/..."); err == nil {
		t.Fatal("Load of a nonexistent pattern succeeded")
	} else if !strings.Contains(err.Error(), "go list") {
		t.Fatalf("unexpected error: %v", err)
	}
}
