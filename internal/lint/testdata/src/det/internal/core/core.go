// Package core is a determinism fixture standing in for the real
// mtvec/internal/core: its import path ends in internal/core, so the
// scoped rules (no wall clock, no randomness, collection-only map
// iteration) apply.
package core

import (
	"fmt"
	"math/rand" // want `deterministic package imports math/rand`
	"sort"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want `deterministic package calls time.Now`
}

func seed() int { return rand.Int() }

// emit renders directly from map order: flagged.
func emit(m map[string]int) string {
	out := ""
	for k, v := range m { // want `map iteration in a deterministic package is not a pure collection`
		out += fmt.Sprintf("%s=%d\n", k, v)
	}
	return out
}

// render collects then sorts: the loop body is a pure collection, the
// rendering reads the sorted slice. Clean.
func render(m map[string]int) string {
	keys := make([]string, 0, len(m))
	total := 0
	for k, v := range m {
		keys = append(keys, k)
		total += v
	}
	sort.Strings(keys)
	out := fmt.Sprintf("total=%d\n", total)
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d\n", k, m[k])
	}
	return out
}

// maxOf tracks a guarded extremum: order-insensitive, clean.
func maxOf(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// invert builds a reverse map: inserts keyed by loop data, clean.
func invert(m map[string]int) map[int]string {
	r := make(map[int]string, len(m))
	for k, v := range m {
		r[v] = k
	}
	return r
}

// prune deletes while iterating: delete is order-insensitive, clean.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// histogram nests iteration with continue and integer ++: clean.
func histogram(rows map[string][]int) map[int]int {
	h := make(map[int]int)
	n := 0
	for _, vs := range rows {
		for _, v := range vs {
			if v < 0 {
				continue
			}
			h[v]++
			n++
		}
	}
	h[-1] = n
	return h
}

// countWide guards on len: a pure condition, clean.
func countWide(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		if len(vs) > 3 {
			n++
		}
	}
	return n
}

// sumFloat accumulates floats, whose rounding is order-sensitive:
// flagged.
func sumFloat(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m { // want `map iteration in a deterministic package is not a pure collection`
		t += v
	}
	return t
}

// firstNonEmpty breaks out mid-iteration, so which entry wins depends
// on hash order: flagged.
func firstNonEmpty(m map[string]string) string {
	got := ""
	for _, v := range m { // want `map iteration in a deterministic package is not a pure collection`
		if v != "" {
			got = v
			break
		}
	}
	return got
}

// impureGuard calls through the condition, which could do anything:
// flagged.
func impureGuard(m map[string]int, f func(int) bool) int {
	n := 0
	for _, v := range m { // want `map iteration in a deterministic package is not a pure collection`
		if f(v) {
			n++
		}
	}
	return n
}
