// Package plain is a determinism fixture outside the deterministic
// packages: only the everywhere rules apply — no order-dependent
// returns from map iteration, no rendering straight off map order.
package plain

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// firstBad reports whichever entry hash order reaches first: flagged.
func firstBad(m map[string]bool) error {
	for k := range m {
		if !m[k] {
			return fmt.Errorf("bad %q", k) // want `return inside map iteration depends on the iteration variables`
		}
	}
	return nil
}

// dump writes in map order: flagged.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration feeds rendered output`
	}
}

// has returns a constant from inside the loop: carries no entry
// identity, clean.
func has(m map[string]int) bool {
	for range m {
		return true
	}
	return false
}

// build feeds a string builder straight from map order: flagged.
func build(b *strings.Builder, m map[string]int) {
	for k := range m {
		b.WriteString(k) // want `map iteration feeds rendered output`
	}
}

// keysQuoted formats into a collected slice — Sprintf does not render
// to a sink, and the slice can be sorted later: clean.
func keysQuoted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, fmt.Sprintf("%q", k))
	}
	return out
}

// dumpSorted iterates sorted keys: clean.
func dumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
