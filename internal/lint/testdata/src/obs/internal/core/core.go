// Package core is an observerpure fixture standing in for
// mtvec/internal/core: it declares the Observer interface and the
// machine state observers must not mutate.
package core

type Cycle uint64

type Span struct{ Unit, N int }

type Observer interface {
	Progress(now Cycle, dispatched int64)
	ThreadSwitch(now Cycle, from, to int)
	Span(s Span)
}

type Machine struct {
	Dispatched int64
	tick       int
}

func (m *Machine) Bump() { m.tick++ }

// SpanRecorder lives in the state package itself and mutates only its
// own fields: legal, exactly like the real core.SpanRecorder.
type SpanRecorder struct{ Spans []Span }

func (r *SpanRecorder) Progress(now Cycle, dispatched int64) {}
func (r *SpanRecorder) ThreadSwitch(now Cycle, from, to int) {}
func (r *SpanRecorder) Span(s Span)                          { r.Spans = append(r.Spans, s) }
