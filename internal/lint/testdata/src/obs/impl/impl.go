// Package impl holds observerpure fixture implementations: one that
// reaches through a pointer into machine state (flagged) and one that
// only mutates itself (clean).
package impl

import "obs/internal/core"

type Meddler struct {
	M     *core.Machine
	total int64
}

func (o *Meddler) Progress(now core.Cycle, dispatched int64) {
	o.total += dispatched
	o.M.Dispatched = dispatched // want `observer callback Progress writes core state`
}

func (o *Meddler) ThreadSwitch(now core.Cycle, from, to int) {
	o.M.Bump() // want `observer callback ThreadSwitch calls Machine.Bump, a pointer-receiver method on core state`
}

func (o *Meddler) Span(s core.Span) {
	s.N = 0 // a value parameter is the callback's own copy: clean
}

type Counter struct{ switches int }

func (c *Counter) Progress(now core.Cycle, dispatched int64) {}
func (c *Counter) ThreadSwitch(now core.Cycle, from, to int) { c.switches++ }
func (c *Counter) Span(s core.Span)                          {}
