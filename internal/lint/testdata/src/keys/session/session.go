// Package session is a keycomplete fixture: it declares the key
// functions, so its RunSpec plus the sibling arch targets must have
// every field either encoded or exempted.
package session

import "keys/internal/arch"

type RunSpec struct {
	mode int
	opts []int // want `field RunSpec.opts never reaches memoKey`
}

func (s *RunSpec) memoKey(sp *arch.Spec) string {
	b := appendMachineKey(nil, sp)
	b = append(b, byte(s.mode))
	return string(b)
}

// appendMachineKey encodes sp.VRegs (a promoted RegFile field — the
// embedded hop must be credited too) and sp.Widgets, but not VLen,
// Ghost or Name.
func appendMachineKey(b []byte, sp *arch.Spec) []byte {
	b = append(b, byte(sp.VRegs), byte(sp.Widgets))
	return b
}
