// Package arch is a keycomplete fixture standing in for
// mtvec/internal/arch: Spec and RegFile are picked up as key-coverage
// targets by name whenever a sibling package declares key functions.
package arch

type RegFile struct {
	VRegs int
	VLen  int // want `field RegFile.VLen never reaches memoKey`
}

type Spec struct {
	Name string //mtvlint:allow keycomplete -- display label, carries no semantics
	RegFile
	Widgets int
	Ghost   int // want `field Spec.Ghost never reaches memoKey`
}
