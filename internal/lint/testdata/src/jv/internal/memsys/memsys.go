// Package memsys is a joinedvalidate fixture standing in for
// mtvec/internal/memsys: Validate-named functions here must accumulate
// diagnostics for errors.Join instead of returning the first one.
package memsys

import (
	"errors"
	"fmt"
)

type Config struct{ Banks, Ports int }

func (c Config) Validate() error {
	if c.Banks < 1 {
		return fmt.Errorf("banks %d < 1", c.Banks) // want `Validate returns its first diagnostic directly`
	}
	if c.Ports < 1 {
		return errors.New("no ports") // want `Validate returns its first diagnostic directly`
	}
	return nil
}

type Shape struct{ A, B int }

// ValidateShape accumulates and joins: clean.
func (s Shape) ValidateShape() error {
	var errs []error
	if s.A < 0 {
		errs = append(errs, fmt.Errorf("a %d < 0", s.A))
	}
	if s.B < 0 {
		errs = append(errs, fmt.Errorf("b %d < 0", s.B))
	}
	return errors.Join(errs...)
}

// check is not Validate-named: out of the invariant's reach.
func (c Config) check() error {
	if c.Banks < 1 {
		return fmt.Errorf("banks")
	}
	return nil
}
