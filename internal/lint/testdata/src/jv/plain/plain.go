// Package plain is a joinedvalidate negative fixture: identical code
// outside arch/memsys/session draws no diagnostics.
package plain

import "fmt"

type Config struct{ Banks int }

func (c Config) Validate() error {
	if c.Banks < 1 {
		return fmt.Errorf("banks %d < 1", c.Banks)
	}
	return nil
}
