// Package pool is a slotpair fixture: Acquire-family calls on types
// with a matching Release must pair with a deferred release in the same
// function.
package pool

type Gate struct{ n int }

func (g *Gate) TryAcquire(max int) int { return max }
func (g *Gate) Release(n int)          {}

type Pool struct{ slots *Gate }

func leak(p *Pool) int {
	return p.slots.TryAcquire(4) // want `p.slots.TryAcquire result is not matched by a deferred p.slots.Release`
}

func good(p *Pool) {
	n := p.slots.TryAcquire(4)
	defer p.slots.Release(n)
}

func goodClosure(p *Pool) {
	n := p.slots.TryAcquire(4)
	defer func() { p.slots.Release(n) }()
}

// Timeline pairs by suffix: AcquireBacking demands ReleaseBacking.
type Timeline struct{}

func (t *Timeline) AcquireBacking() {}
func (t *Timeline) ReleaseBacking() {}

type M struct{ tl Timeline }

func leakSuffix(m *M) {
	m.tl.AcquireBacking() // want `m.tl.AcquireBacking result is not matched by a deferred m.tl.ReleaseBacking`
}

func goodSuffix(m *M) {
	m.tl.AcquireBacking()
	defer m.tl.ReleaseBacking()
}

func crossFunction(m *M) {
	//mtvlint:allow slotpair -- released by a finalizer elsewhere; fixture for the directive
	m.tl.AcquireBacking()
}

// Src has Acquire but no Release: not a paired protocol, no obligation.
type Src struct{}

func (s *Src) Acquire() {}

func unpaired(s *Src) {
	s.Acquire()
}
