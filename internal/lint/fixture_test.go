package lint

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRE matches analysistest-style expectations in fixture sources:
//
//	someOffendingCode() // want `regexp the message must match`
var wantRE = regexp.MustCompile("//\\s*want `([^`]*)`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// runFixture loads the fixture packages under testdata/src, applies one
// analyzer, and cross-checks its diagnostics against the `// want`
// comments in the fixture sources — every diagnostic must be expected
// on its exact line, and every expectation must fire. Deleting an
// analyzer's check therefore fails its fixture test.
func runFixture(t *testing.T, a *Analyzer, paths ...string) {
	t.Helper()
	pkgs, ix, err := LoadFixture(filepath.Join("testdata", "src"), paths...)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range Run(pkgs, ix, []*Analyzer{a}) {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched, found = true, true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
