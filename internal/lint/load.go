package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package. Packages under analysis
// (the module's own) carry their syntax and full type information;
// dependency packages — the standard library — are type-checked only as
// deep as import resolution needs.
type Package struct {
	// Path is the package's import path ("mtvec/internal/core"). For
	// fixture packages it is the path under the fixture root.
	Path string

	// Dir is the directory holding the package's sources.
	Dir string

	// Files is the parsed syntax, in file-name order.
	Files []*ast.File

	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet

	// Types and TypesInfo are the go/types results. TypesInfo is nil
	// for dependency packages loaded only to resolve imports.
	Types     *types.Package
	TypesInfo *types.Info
}

// Index gives analyzers access to every package of a load — the
// analyzed set plus type-checked dependencies — and to the shared
// suppression-directive table.
type Index struct {
	fset  *token.FileSet
	pkgs  map[string]*Package
	allow map[string]map[int][]string // filename -> line -> analyzer names
}

// Lookup returns the loaded package with the given import path, or the
// lexically-first one whose path ends in "/"+suffix, or nil. Exact
// matches win; ties break by path so the answer never depends on map
// iteration order.
func (ix *Index) Lookup(path string) *Package {
	if p := ix.pkgs[path]; p != nil {
		return p
	}
	var best *Package
	for _, p := range ix.pkgs {
		if strings.HasSuffix(p.Path, "/"+path) && (best == nil || p.Path < best.Path) {
			best = p
		}
	}
	return best
}

// Allowed reports whether a diagnostic from the named analyzer at pos
// is suppressed by an `//mtvlint:allow name` directive on the same line
// or the line directly above.
func (ix *Index) Allowed(analyzer string, pos token.Position) bool {
	lines := ix.allow[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// recordDirectives scans a file's comments for mtvlint:allow directives
// and records which analyzers they suppress on which lines.
func (ix *Index) recordDirectives(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//mtvlint:allow")
			if !ok {
				continue
			}
			// Drop the optional "-- reason" tail, then split names.
			if i := strings.Index(text, "--"); i >= 0 {
				text = text[:i]
			}
			pos := ix.fset.Position(c.Pos())
			m := ix.allow[pos.Filename]
			if m == nil {
				m = make(map[int][]string)
				ix.allow[pos.Filename] = m
			}
			for _, name := range strings.FieldsFunc(text, func(r rune) bool {
				return r == ',' || r == ' ' || r == '\t'
			}) {
				m[pos.Line] = append(m[pos.Line], name)
			}
		}
	}
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// loader resolves, parses and type-checks packages. It implements
// types.Importer so the checker can pull dependencies on demand.
type loader struct {
	fset    *token.FileSet
	dir     string                // directory `go list` runs in
	raw     map[string]*listedPkg // import path -> metadata
	done    map[string]*Package   // import path -> checked package
	scope   map[string]bool       // packages loaded with full syntax+info
	fixRoot string                // fixture source root ("" for go list loads)
	errs    []error
}

// Load loads and type-checks the packages matching the go list patterns
// (run from dir), plus everything they import. The returned slice holds
// only the matched packages, sorted by path; the Index holds the full
// closure.
func Load(dir string, patterns ...string) ([]*Package, *Index, error) {
	ld := newLoader(dir)
	if _, err := ld.goList(patterns...); err != nil {
		return nil, nil, err
	}
	// A second, dependency-free listing separates "what the patterns
	// matched" (analyzed with full syntax and type info) from "what that
	// needs" (type-checked for import resolution only).
	matched, err := ld.goMatch(patterns...)
	if err != nil {
		return nil, nil, err
	}
	return ld.finish(matched)
}

// LoadFixture loads the packages at the given import paths relative to
// srcRoot (an analysistest-style tree: srcRoot/<import path>/*.go).
// Imports resolve against the fixture tree first and the standard
// library second.
func LoadFixture(srcRoot string, paths ...string) ([]*Package, *Index, error) {
	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, nil, err
	}
	ld := newLoader(abs)
	ld.fixRoot = abs
	return ld.finish(paths)
}

func newLoader(dir string) *loader {
	return &loader{
		fset:  token.NewFileSet(),
		dir:   dir,
		raw:   make(map[string]*listedPkg),
		done:  make(map[string]*Package),
		scope: make(map[string]bool),
	}
}

// finish checks every root with full syntax and assembles the Index.
func (ld *loader) finish(roots []string) ([]*Package, *Index, error) {
	for _, p := range roots {
		ld.scope[p] = true
	}
	ix := &Index{fset: ld.fset, pkgs: make(map[string]*Package), allow: make(map[string]map[int][]string)}
	var out []*Package
	for _, path := range roots {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: loading %s: %w", path, err)
		}
		out = append(out, pkg)
	}
	if len(ld.errs) > 0 {
		return nil, nil, fmt.Errorf("lint: type errors in analyzed packages: %v", ld.errs[0])
	}
	for path, pkg := range ld.done {
		ix.pkgs[path] = pkg
		for _, f := range pkg.Files {
			ix.recordDirectives(f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, ix, nil
}

// goList resolves patterns to package metadata for the full import
// closure (one `go list` execution; works offline — only the local
// module and GOROOT are consulted).
func (ld *loader) goList(patterns ...string) ([]string, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,GoFiles,Standard,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.dir
	// CGO off selects the pure-Go file sets (net, os/user, ...) so every
	// dependency type-checks from source without a C toolchain.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var roots []string
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		lp := p
		ld.raw[p.ImportPath] = &lp
		if !p.Standard {
			roots = append(roots, p.ImportPath)
		}
	}
	return roots, nil
}

// goMatch lists just the packages the patterns match (no dependencies).
func (ld *loader) goMatch(patterns ...string) ([]string, error) {
	args := append([]string{"list"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return strings.Fields(string(stdout)), nil
}

// resolve finds a package's directory and file list.
func (ld *loader) resolve(path string) (*listedPkg, error) {
	if p, ok := ld.raw[path]; ok {
		return p, nil
	}
	// GOROOT-vendored dependencies (golang.org/x/crypto/... inside
	// crypto/tls, for example) are listed under "vendor/<path>" but
	// imported by their logical path.
	if p, ok := ld.raw["vendor/"+path]; ok {
		return p, nil
	}
	if ld.fixRoot != "" {
		dir := filepath.Join(ld.fixRoot, filepath.FromSlash(path))
		if names, err := os.ReadDir(dir); err == nil {
			p := &listedPkg{ImportPath: path, Dir: dir}
			for _, e := range names {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
					p.GoFiles = append(p.GoFiles, e.Name())
				}
			}
			if len(p.GoFiles) > 0 {
				ld.raw[path] = p
				return p, nil
			}
		}
		// Not in the fixture tree: resolve as a standard-library path and
		// merge its dependency closure for later imports.
		if _, err := ld.goList(path); err != nil {
			return nil, err
		}
		if p, ok := ld.raw[path]; ok {
			return p, nil
		}
	}
	return nil, fmt.Errorf("unknown import path %q", path)
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	pkg, err := ld.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// load parses and type-checks one package (memoized).
func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.done[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return pkg, nil
	}
	ld.done[path] = nil // cycle marker
	raw, err := ld.resolve(path)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(raw.GoFiles))
	for _, name := range raw.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(raw.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	inScope := ld.scope[path]
	var info *types.Info
	if inScope {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
	}
	cfg := types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			// Collect in-scope errors (they fail the load: analyzers need
			// sound types); tolerate nothing from dependencies either —
			// a dependency that fails to check poisons its importers.
			ld.errs = append(ld.errs, err)
		},
	}
	tpkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: raw.Dir, Files: files, Fset: ld.fset, Types: tpkg, TypesInfo: info}
	ld.done[path] = pkg
	return pkg, nil
}
