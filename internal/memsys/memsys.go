// Package memsys models the main-memory subsystem of Section 3.1: a
// single address bus shared by all memory transactions (scalar/vector,
// load/store) with physically separate data buses for sending and
// receiving, and a configurable main-memory latency — the paper's central
// experimental parameter.
//
// A vector load (or gather) issues one request per cycle over the address
// bus, pays the latency once, and then receives one datum per cycle.
// Vector stores occupy the bus the same way but complete without waiting.
//
// Two extensions beyond the paper are provided as ablations: multiple
// address ports (the Cray-like 2-load/1-store future work of Section 10)
// and a banked memory with bank-conflict stalls (the paper assumes a
// conflict-free memory).
package memsys

import (
	"errors"
	"fmt"
)

// Cycle counts processor cycles.
type Cycle = int64

// Config selects the memory system's shape.
type Config struct {
	// Latency is the main-memory access time in cycles (the paper
	// varies it from 1 to 100; 50 is the default elsewhere).
	Latency int

	// ScalarLatency is the completion latency of scalar accesses. The
	// Convex C34 series gave the scalar unit a small data cache, and the
	// paper's own numbers require scalar loops to run near one
	// instruction per cycle (Section 6.2), so scalar accesses complete
	// quickly while still spending an address-bus cycle. Zero means
	// "same as Latency" (no scalar cache).
	ScalarLatency int

	// GeneralPorts is the number of address ports usable by any
	// transaction. The paper's machine has exactly one.
	GeneralPorts int

	// LoadPorts and StorePorts are dedicated ports (the Cray-like
	// extension: 2 load + 1 store). Zero for the paper's machine.
	LoadPorts  int
	StorePorts int

	// Banks > 0 enables the banked-conflict model: strided streams
	// whose addresses revisit a bank within BankBusy cycles stall the
	// request stream. Banks == 0 is the paper's conflict-free memory.
	// A banked configuration requires BankBusy >= 1 — with a zero
	// recovery time no stream can ever conflict, which would silently
	// disable the model rather than configure it. (BankBusy == 1 is the
	// explicit "banked but conflict-free" spelling: a bank that recovers
	// by the next cycle never collides.)
	Banks    int
	BankBusy int
}

// DefaultConfig is the paper's memory system at 50-cycle latency with a
// 4-cycle scalar cache.
func DefaultConfig() Config {
	return Config{Latency: 50, ScalarLatency: 4, GeneralPorts: 1}
}

// Validate reports every problem with the configuration, joined.
func (c Config) Validate() error {
	var errs []error
	ef := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if c.Latency < 1 {
		ef("memsys: latency %d < 1", c.Latency)
	}
	if c.ScalarLatency < 0 {
		ef("memsys: negative scalar latency %d", c.ScalarLatency)
	}
	if c.GeneralPorts+c.LoadPorts < 1 || c.GeneralPorts+c.StorePorts < 1 {
		ef("memsys: no port can serve loads or stores")
	}
	if c.Banks < 0 || c.BankBusy < 0 {
		ef("memsys: negative bank parameters")
	}
	if c.Banks > 0 {
		if c.Banks&(c.Banks-1) != 0 {
			ef("memsys: banks must be a power of two, have %d", c.Banks)
		}
		if c.BankBusy == 0 {
			ef("memsys: %d banks with bank busy time 0 silently disables the conflict model; set BankBusy >= 1, or Banks = 0 for conflict-free memory", c.Banks)
		}
	}
	return errors.Join(errs...)
}

// System is the memory subsystem state during one simulation.
type System struct {
	cfg Config

	// portFree[i] is the cycle port i next accepts a request. Ports are
	// ordered: general, load-only, store-only.
	portFree []Cycle

	// single short-circuits port selection for the paper's machine (one
	// general port, no dedicated ports) — the overwhelmingly common
	// configuration on the dispatch hot path.
	single bool
	// noBanks caches cfg.Banks == 0 (the paper's conflict-free memory).
	noBanks bool
	// lat / scalarLat are the widened latencies, resolved once.
	lat       int64
	scalarLat int64

	busy         int64 // address-port busy cycles (occupation numerator)
	requests     int64 // memory requests sent
	loadElems    int64
	storeElems   int64
	scalarLoads  int64
	scalarStores int64
}

// New creates a memory system. The configuration must validate.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.GeneralPorts + cfg.LoadPorts + cfg.StorePorts
	s := &System{
		cfg:      cfg,
		portFree: make([]Cycle, n),
		single:   n == 1 && cfg.GeneralPorts == 1,
		noBanks:  cfg.Banks == 0,
		lat:      int64(cfg.Latency),
	}
	s.scalarLat = s.lat
	if cfg.ScalarLatency > 0 {
		s.scalarLat = int64(cfg.ScalarLatency)
	}
	return s, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Ports returns the number of address ports.
func (s *System) Ports() int { return len(s.portFree) }

// eligible reports whether port i can carry a load/store.
func (s *System) eligible(i int, load bool) bool {
	switch {
	case i < s.cfg.GeneralPorts:
		return true
	case i < s.cfg.GeneralPorts+s.cfg.LoadPorts:
		return load
	default:
		return !load
	}
}

// pickPort returns the eligible port that frees earliest.
func (s *System) pickPort(load bool) int {
	if s.single {
		return 0
	}
	best := -1
	for i := range s.portFree {
		if !s.eligible(i, load) {
			continue
		}
		if best < 0 || s.portFree[i] < s.portFree[best] {
			best = i
		}
	}
	return best
}

// PortFreeAt returns the earliest cycle any port eligible for the access
// kind accepts a new transaction (dispatch logic uses it to decide
// whether a thread blocks).
func (s *System) PortFreeAt(load bool) Cycle {
	if s.single {
		return s.portFree[0]
	}
	return s.portFree[s.pickPort(load)]
}

// conflictFactor returns the cycles per element a strided stream
// sustains: 1 when conflict-free, more when the stride revisits banks
// within the bank busy time. Gathers (stride 0 by convention here) are
// assumed spread well enough to run at full rate.
func (s *System) conflictFactor(strideBytes int64) int64 {
	if s.noBanks {
		return 1
	}
	se := strideBytes / 8
	if se < 0 {
		se = -se
	}
	if se == 0 {
		return 1
	}
	g := gcd(se, int64(s.cfg.Banks))
	distinct := int64(s.cfg.Banks) / g
	if distinct >= int64(s.cfg.BankBusy) {
		return 1
	}
	f := (int64(s.cfg.BankBusy) + distinct - 1) / distinct
	return f
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ProbeVector computes, without booking anything, the schedule
// ScheduleVector would produce for the same request now.
func (s *System) ProbeVector(earliest Cycle, n int, strideBytes int64, load bool) (start, firstData, busyFor Cycle) {
	p := s.pickPort(load)
	start = max64(earliest, s.portFree[p])
	busyFor = int64(n) * s.conflictFactor(strideBytes)
	if load {
		firstData = start + s.lat
	}
	return start, firstData, busyFor
}

// ScheduleVector books an address port for an n-element vector access
// starting no earlier than `earliest`. It returns the start cycle, the
// cycle the first datum is available (loads; meaningless for stores) and
// the number of cycles the port stays busy.
func (s *System) ScheduleVector(earliest Cycle, n int, strideBytes int64, load bool) (start, firstData, busyFor Cycle) {
	p := s.pickPort(load)
	start = max64(earliest, s.portFree[p])
	factor := s.conflictFactor(strideBytes)
	busyFor = int64(n) * factor
	s.portFree[p] = start + busyFor
	s.busy += busyFor
	s.requests += int64(n)
	if load {
		s.loadElems += int64(n)
		firstData = start + s.lat
	} else {
		s.storeElems += int64(n)
	}
	return start, firstData, busyFor
}

// ScheduleScalar books one request; for loads, data returns at
// start+ScalarLatency (start+Latency without a scalar cache).
func (s *System) ScheduleScalar(earliest Cycle, load bool) (start, data Cycle) {
	p := s.pickPort(load)
	start = max64(earliest, s.portFree[p])
	s.portFree[p] = start + 1
	s.busy++
	s.requests++
	if load {
		s.scalarLoads++
		data = start + s.scalarLat
	} else {
		s.scalarStores++
	}
	return start, data
}

// BusyCycles returns total address-port busy cycles.
func (s *System) BusyCycles() int64 { return s.busy }

// Requests returns the total memory requests sent over the address bus.
func (s *System) Requests() int64 { return s.requests }

// Occupation is the paper's memory-port occupation metric: requests sent
// over the address bus divided by total cycles, per port.
func (s *System) Occupation(total Cycle) float64 {
	if total <= 0 {
		return 0
	}
	return float64(s.busy) / float64(total) / float64(len(s.portFree))
}

// Traffic summarizes the element counts moved.
type Traffic struct {
	LoadElems    int64
	StoreElems   int64
	ScalarLoads  int64
	ScalarStores int64
}

// Traffic returns the access counters.
func (s *System) Traffic() Traffic {
	return Traffic{s.loadElems, s.storeElems, s.scalarLoads, s.scalarStores}
}

func max64(a, b Cycle) Cycle {
	if a > b {
		return a
	}
	return b
}
