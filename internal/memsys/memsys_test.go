package memsys

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Latency: 0, GeneralPorts: 1},
		{Latency: 10},                             // no ports at all
		{Latency: 10, LoadPorts: 2},               // stores unservable
		{Latency: 10, StorePorts: 1},              // loads unservable
		{Latency: 10, GeneralPorts: 1, Banks: 3},  // non-power-of-two
		{Latency: 10, GeneralPorts: 1, Banks: -4}, // negative
		{Latency: 10, GeneralPorts: 1, Banks: 8, BankBusy: -1},
		{Latency: 10, GeneralPorts: 1, Banks: 8}, // BankBusy 0: silent no-op
		{Latency: 10, GeneralPorts: 1, Banks: 1}, // even one bank needs a busy time
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	// Dedicated-port-only config is fine if both kinds are covered.
	ok := Config{Latency: 10, LoadPorts: 2, StorePorts: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("cray-like config rejected: %v", err)
	}
	// Banked with a real recovery time is fine, including the explicit
	// "banked but conflict-free" spelling BankBusy == 1.
	for _, busy := range []int{1, 8} {
		c := Config{Latency: 10, GeneralPorts: 1, Banks: 16, BankBusy: busy}
		if err := c.Validate(); err != nil {
			t.Errorf("banked config (busy %d) rejected: %v", busy, err)
		}
	}
}

func TestValidateJoinsAllDiagnostics(t *testing.T) {
	// Every problem must surface at once, not just the first.
	c := Config{Latency: 0, ScalarLatency: -1, Banks: 8}
	err := c.Validate()
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	for _, want := range []string{"latency 0", "scalar latency", "port", "bank busy time 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined diagnostic missing %q: %v", want, err)
		}
	}
}

func TestBankModelNeverSilentlyDisabled(t *testing.T) {
	// The hole this guards: Banks > 0 with BankBusy == 0 used to
	// validate, and conflictFactor's distinct >= BankBusy test was then
	// vacuously true for every stride — a banked machine that could
	// never conflict. Such a system must now be unconstructible.
	if _, err := New(Config{Latency: 10, GeneralPorts: 1, Banks: 64}); err == nil {
		t.Fatal("New accepted Banks=64 BankBusy=0")
	}
}

func TestBankConflictEdgeCases(t *testing.T) {
	// Banks=1: every element of any strided stream revisits the single
	// bank, so the stream sustains exactly BankBusy cycles per element.
	s := mustNew(t, Config{Latency: 10, GeneralPorts: 1, Banks: 1, BankBusy: 8})
	if _, _, busy := s.ScheduleVector(0, 64, 8, true); busy != 64*8 {
		t.Errorf("single-bank unit stride busy = %d, want %d", busy, 64*8)
	}
	// Gathers are still assumed spread across... the one bank — by the
	// model's convention they run at full rate regardless.
	if _, _, busy := s.ScheduleVector(0, 64, 0, true); busy != 64 {
		t.Errorf("single-bank gather busy = %d, want 64", busy)
	}

	// BankBusy=1: a bank recovers by the next cycle, so even the worst
	// stride (every element on one bank) runs at one element per cycle —
	// the explicit banked-but-conflict-free configuration.
	s1 := mustNew(t, Config{Latency: 10, GeneralPorts: 1, Banks: 16, BankBusy: 1})
	for _, strideBytes := range []int64{8, 16 * 8, 7 * 8, 0} {
		if _, _, busy := s1.ScheduleVector(0, 64, strideBytes, true); busy != 64 {
			t.Errorf("busy-1 stride %d busy = %d, want 64", strideBytes, busy)
		}
	}

	// Stride hitting exactly one of many banks: stride == Banks elements
	// lands every element on the same bank, the worst case.
	sb := mustNew(t, Config{Latency: 10, GeneralPorts: 1, Banks: 8, BankBusy: 4})
	if _, _, busy := sb.ScheduleVector(0, 32, 8*8, true); busy != 32*4 {
		t.Errorf("one-bank stride busy = %d, want %d", busy, 32*4)
	}
	// And the conflict factor never exceeds BankBusy nor drops below 1.
	for se := int64(1); se <= 64; se++ {
		f := sb.conflictFactor(se * 8)
		if f < 1 || f > 4 {
			t.Fatalf("stride %d elements: factor %d out of range [1,4]", se, f)
		}
	}
}

// TestGatherShortRowShapes pins the access shapes sparse kernels
// produce — indexed gathers (stride 0 by the model's convention) and
// short rows (tiny n, the CSR row-by-row pattern) — under every memory
// model: flat, banked, and worst-case banked.
func TestGatherShortRowShapes(t *testing.T) {
	systems := map[string]*System{
		"flat":         mustNew(t, Config{Latency: 40, GeneralPorts: 1}),
		"banked":       mustNew(t, Config{Latency: 40, GeneralPorts: 1, Banks: 16, BankBusy: 4}),
		"banked-worst": mustNew(t, Config{Latency: 40, GeneralPorts: 1, Banks: 2, BankBusy: 8}),
	}
	for name, s := range systems {
		// Gathers run at one element per cycle regardless of banking:
		// the model assumes indexed streams spread across banks.
		if _, _, busy := s.ScheduleVector(0, 128, 0, true); busy != 128 {
			t.Errorf("%s: gather busy = %d, want 128", name, busy)
		}
		// A negative-stride access (backwards row walk) conflicts
		// exactly like its positive mirror.
		_, _, fwd := s.ScheduleVector(0, 32, 16, true)
		_, _, bwd := s.ScheduleVector(0, 32, -16, true)
		if fwd != bwd {
			t.Errorf("%s: stride sign changes busy: +16 -> %d, -16 -> %d", name, fwd, bwd)
		}
	}

	// Short rows: port occupancy is exactly n*factor even at n=1, and
	// back-to-back rows queue with no gaps and no overlap — the port
	// timeline of a CSR sweep is the sum of its rows.
	s := mustNew(t, Config{Latency: 40, GeneralPorts: 1, Banks: 8, BankBusy: 4})
	var prevEnd Cycle
	for i, n := range []int{1, 2, 3, 1, 5, 1} {
		start, first, busy := s.ScheduleVector(0, n, 0, true)
		if busy != int64(n) {
			t.Fatalf("row %d: busy = %d, want %d", i, busy, n)
		}
		if start != prevEnd {
			t.Fatalf("row %d: start = %d, want previous end %d", i, start, prevEnd)
		}
		if first != start+40 {
			t.Fatalf("row %d: first datum = %d, want %d", i, first, start+40)
		}
		prevEnd = start + busy
	}
	if s.BusyCycles() != prevEnd {
		t.Errorf("busy cycles = %d, want %d (gapless short rows)", s.BusyCycles(), prevEnd)
	}

	// A zero-length row (empty CSR row) books nothing: the port frees
	// instantly and the next access is unaffected.
	empty := mustNew(t, Config{Latency: 40, GeneralPorts: 1})
	if _, _, busy := empty.ScheduleVector(0, 0, 8, true); busy != 0 {
		t.Errorf("empty row busy = %d, want 0", busy)
	}
	if start, _, _ := empty.ScheduleVector(0, 4, 8, true); start != 0 {
		t.Errorf("access after empty row starts at %d, want 0", start)
	}

	// Probe/Schedule agreement on the gather shape: probing must not
	// book, and the probed schedule must be what booking then returns.
	pr := mustNew(t, Config{Latency: 40, GeneralPorts: 1, Banks: 16, BankBusy: 4})
	ps, pf, pb := pr.ProbeVector(5, 7, 0, true)
	gs, gf, gb := pr.ScheduleVector(5, 7, 0, true)
	if ps != gs || pf != gf || pb != gb {
		t.Errorf("probe (%d,%d,%d) != schedule (%d,%d,%d)", ps, pf, pb, gs, gf, gb)
	}
}

func TestVectorLoadTiming(t *testing.T) {
	s := mustNew(t, Config{Latency: 50, GeneralPorts: 1})
	start, first, busy := s.ScheduleVector(10, 64, 8, true)
	if start != 10 {
		t.Errorf("start = %d, want 10", start)
	}
	if first != 60 {
		t.Errorf("first datum = %d, want start+latency = 60", first)
	}
	if busy != 64 {
		t.Errorf("busy = %d, want 64", busy)
	}
	// Port is held for 64 cycles: the next access queues behind it.
	start2, _, _ := s.ScheduleVector(0, 10, 8, false)
	if start2 != 74 {
		t.Errorf("second access start = %d, want 74", start2)
	}
	if s.BusyCycles() != 74 {
		t.Errorf("busy cycles = %d, want 74", s.BusyCycles())
	}
	if s.Requests() != 74 {
		t.Errorf("requests = %d, want 74", s.Requests())
	}
}

func TestScalarTiming(t *testing.T) {
	s := mustNew(t, Config{Latency: 20, GeneralPorts: 1})
	start, data := s.ScheduleScalar(5, true)
	if start != 5 || data != 25 {
		t.Errorf("scalar load start=%d data=%d", start, data)
	}
	start2, _ := s.ScheduleScalar(5, false)
	if start2 != 6 {
		t.Errorf("scalar store start = %d, want 6", start2)
	}
	tr := s.Traffic()
	if tr.ScalarLoads != 1 || tr.ScalarStores != 1 {
		t.Errorf("traffic %+v", tr)
	}
}

func TestOccupation(t *testing.T) {
	s := mustNew(t, Config{Latency: 1, GeneralPorts: 1})
	s.ScheduleVector(0, 50, 8, true)
	if got := s.Occupation(100); got != 0.5 {
		t.Errorf("occupation = %f, want 0.5", got)
	}
	if s.Occupation(0) != 0 {
		t.Error("zero-total occupation should be 0")
	}
}

func TestDedicatedPortsOverlap(t *testing.T) {
	// Cray-like: loads and stores proceed in parallel on separate ports.
	s := mustNew(t, Config{Latency: 10, LoadPorts: 2, StorePorts: 1})
	l1, _, _ := s.ScheduleVector(0, 100, 8, true)
	l2, _, _ := s.ScheduleVector(0, 100, 8, true)
	st, _, _ := s.ScheduleVector(0, 100, 8, false)
	if l1 != 0 || l2 != 0 || st != 0 {
		t.Fatalf("starts %d %d %d, want all 0 (three ports)", l1, l2, st)
	}
	// Third load queues behind one of the two load ports.
	l3, _, _ := s.ScheduleVector(0, 10, 8, true)
	if l3 != 100 {
		t.Errorf("third load start = %d, want 100", l3)
	}
	// Stores must not use load-only ports.
	st2, _, _ := s.ScheduleVector(0, 10, 8, false)
	if st2 != 100 {
		t.Errorf("second store start = %d, want 100", st2)
	}
}

func TestPortFreeAt(t *testing.T) {
	s := mustNew(t, Config{Latency: 10, GeneralPorts: 1})
	if s.PortFreeAt(true) != 0 {
		t.Error("fresh system should be free at 0")
	}
	s.ScheduleVector(0, 42, 8, true)
	if s.PortFreeAt(false) != 42 {
		t.Errorf("PortFreeAt = %d, want 42", s.PortFreeAt(false))
	}
}

func TestBankConflicts(t *testing.T) {
	// 16 banks, 8-cycle bank busy: unit stride touches 16 distinct banks
	// (conflict-free); stride 16 elements revisits a bank every cycle
	// cycle (16/gcd(16,16) = 1 distinct bank -> 8 cycles/element).
	s := mustNew(t, Config{Latency: 10, GeneralPorts: 1, Banks: 16, BankBusy: 8})
	_, _, busyUnit := s.ScheduleVector(0, 64, 8, true)
	if busyUnit != 64 {
		t.Errorf("unit stride busy = %d, want 64", busyUnit)
	}
	_, _, busyBad := s.ScheduleVector(0, 64, 16*8, true)
	if busyBad != 64*8 {
		t.Errorf("stride-16 busy = %d, want %d", busyBad, 64*8)
	}
	// Stride 2: 8 distinct banks >= busy 8 -> still full rate.
	_, _, busy2 := s.ScheduleVector(0, 64, 16, true)
	if busy2 != 64 {
		t.Errorf("stride-2 busy = %d, want 64", busy2)
	}
	// Stride 4: 4 distinct banks < 8 -> 2 cycles per element.
	_, _, busy4 := s.ScheduleVector(0, 64, 32, true)
	if busy4 != 128 {
		t.Errorf("stride-4 busy = %d, want 128", busy4)
	}
	// Gathers (stride 0) assumed conflict-free.
	_, _, busyG := s.ScheduleVector(0, 64, 0, true)
	if busyG != 64 {
		t.Errorf("gather busy = %d, want 64", busyG)
	}
	// Negative strides behave like their magnitude.
	_, _, busyN := s.ScheduleVector(0, 64, -32, true)
	if busyN != 128 {
		t.Errorf("negative stride busy = %d, want 128", busyN)
	}
}

func TestSchedulingInvariants(t *testing.T) {
	// Property: starts never precede `earliest`, port times are
	// monotonic, busy cycles equal the sum of busyFor.
	f := func(ops []struct {
		N      uint8
		Stride int8
		Load   bool
		Gap    uint8
	}) bool {
		s, err := New(Config{Latency: 30, GeneralPorts: 1, Banks: 16, BankBusy: 4})
		if err != nil {
			return false
		}
		var now Cycle
		var sum int64
		for _, op := range ops {
			n := int(op.N%64) + 1
			now += Cycle(op.Gap)
			start, _, busy := s.ScheduleVector(now, n, int64(op.Stride)*8, op.Load)
			if start < now || busy < int64(n) {
				return false
			}
			sum += busy
		}
		return s.BusyCycles() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
