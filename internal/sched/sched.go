// Package sched provides the thread-selection policies of the
// multithreaded decode unit. The paper's baseline (Section 3) runs a
// thread until it blocks, then switches to the lowest-numbered non-blocked
// thread (the "unfair" scheme, biased so thread 0 sees little slowdown and
// chaining windows stay long). The alternatives answer the paper's
// "studies of other policies are currently underway".
//
// A Policy may carry per-run state (LRU does), so a policy instance
// belongs to exactly one machine. Machines take ownership by calling
// Clone at construction, so reusing one policy value — or one
// core.Config — across concurrent runs is safe by construction.
// Policies are deterministic; given the same sequence of machine states
// they make the same picks.
package sched

// MachineView is what a policy may inspect: per-thread work availability
// and whether a thread's next instruction could dispatch this cycle.
type MachineView interface {
	NumThreads() int
	HasWork(thread int) bool
	Dispatchable(thread int) bool
}

// Policy selects the thread the decode unit examines each cycle.
//
// current is the thread examined last cycle (-1 at start); blocked
// reports whether that examination failed to dispatch. Pick returns -1
// when no thread has work.
//
// Clone returns an instance safe to hand to a new machine: stateless
// policies return themselves, stateful ones return a fresh value with
// no per-run state. core.New clones its configured policy, so one
// Policy (and therefore one core.Config) can be shared across
// concurrent runs.
type Policy interface {
	Name() string
	Pick(m MachineView, current int, blocked bool) int
	Clone() Policy
}

// Unfair is the paper's baseline policy.
type Unfair struct{}

func (Unfair) Name() string    { return "unfair" }
func (p Unfair) Clone() Policy { return p }

func (Unfair) Pick(m MachineView, current int, blocked bool) int {
	if current >= 0 && !blocked && m.HasWork(current) {
		return current
	}
	// Switch: lowest-numbered thread known not to be blocked.
	first := -1
	for t := 0; t < m.NumThreads(); t++ {
		if !m.HasWork(t) {
			continue
		}
		if first < 0 {
			first = t
		}
		if m.Dispatchable(t) {
			return t
		}
	}
	return first // everyone blocked (or no work): attempt the lowest
}

// RoundRobin switches to the next thread in circular order on a block,
// starting the search after the current thread.
type RoundRobin struct{}

func (RoundRobin) Name() string    { return "roundrobin" }
func (p RoundRobin) Clone() Policy { return p }

func (RoundRobin) Pick(m MachineView, current int, blocked bool) int {
	n := m.NumThreads()
	if current >= 0 && !blocked && m.HasWork(current) {
		return current
	}
	start := 0
	if current >= 0 {
		start = (current + 1) % n
	}
	first := -1
	for i := 0; i < n; i++ {
		t := (start + i) % n
		if !m.HasWork(t) {
			continue
		}
		if first < 0 {
			first = t
		}
		if m.Dispatchable(t) {
			return t
		}
	}
	return first
}

// EveryCycle rotates threads each cycle regardless of blocking — the
// fine-grain interleaving the paper argues against because it breaks
// chaining opportunities.
type EveryCycle struct{}

func (EveryCycle) Name() string    { return "everycycle" }
func (p EveryCycle) Clone() Policy { return p }

func (EveryCycle) Pick(m MachineView, current int, blocked bool) int {
	n := m.NumThreads()
	start := 0
	if current >= 0 {
		start = (current + 1) % n
	}
	first := -1
	for i := 0; i < n; i++ {
		t := (start + i) % n
		if !m.HasWork(t) {
			continue
		}
		if first < 0 {
			first = t
		}
		if m.Dispatchable(t) {
			return t
		}
	}
	return first
}

// LRU picks, on a block, the dispatchable thread that ran least recently,
// equalizing progress across threads (a fair counterpoint to Unfair).
type LRU struct {
	lastRun []int64
	tick    int64
}

func (*LRU) Name() string { return "lru" }

// Clone returns a fresh LRU with no recency state, so a shared Config
// never leaks one run's history into another.
func (*LRU) Clone() Policy { return &LRU{} }

func (p *LRU) Pick(m MachineView, current int, blocked bool) int {
	n := m.NumThreads()
	if p.lastRun == nil {
		p.lastRun = make([]int64, n)
	}
	p.tick++
	if current >= 0 && !blocked && m.HasWork(current) {
		p.lastRun[current] = p.tick
		return current
	}
	best, bestTime := -1, int64(0)
	first := -1
	for t := 0; t < n; t++ {
		if !m.HasWork(t) {
			continue
		}
		if first < 0 {
			first = t
		}
		if m.Dispatchable(t) && (best < 0 || p.lastRun[t] < bestTime) {
			best, bestTime = t, p.lastRun[t]
		}
	}
	if best < 0 {
		best = first
	}
	if best >= 0 {
		p.lastRun[best] = p.tick
	}
	return best
}

// ByName returns a fresh policy instance by name, or nil.
func ByName(name string) Policy {
	switch name {
	case "unfair":
		return Unfair{}
	case "roundrobin":
		return RoundRobin{}
	case "everycycle":
		return EveryCycle{}
	case "lru":
		return &LRU{}
	}
	return nil
}

// Names lists the available policies.
func Names() []string { return []string{"unfair", "roundrobin", "everycycle", "lru"} }
