package sched

import "testing"

// fakeView is a scriptable MachineView.
type fakeView struct {
	work         []bool
	dispatchable []bool
}

func (f *fakeView) NumThreads() int         { return len(f.work) }
func (f *fakeView) HasWork(t int) bool      { return f.work[t] }
func (f *fakeView) Dispatchable(t int) bool { return f.dispatchable[t] }

func TestUnfairKeepsRunningThread(t *testing.T) {
	v := &fakeView{work: []bool{true, true, true}, dispatchable: []bool{true, true, true}}
	p := Unfair{}
	if got := p.Pick(v, 2, false); got != 2 {
		t.Fatalf("unblocked current thread not kept: %d", got)
	}
}

func TestUnfairSwitchesToLowestUnblocked(t *testing.T) {
	v := &fakeView{work: []bool{true, true, true}, dispatchable: []bool{false, true, true}}
	p := Unfair{}
	if got := p.Pick(v, 0, true); got != 1 {
		t.Fatalf("switch target = %d, want 1", got)
	}
	// Thread 0 regains priority the moment it is dispatchable.
	v.dispatchable[0] = true
	if got := p.Pick(v, 2, true); got != 0 {
		t.Fatalf("switch target = %d, want 0 (lowest)", got)
	}
}

func TestUnfairAllBlockedAttemptsLowest(t *testing.T) {
	v := &fakeView{work: []bool{false, true, true}, dispatchable: []bool{false, false, false}}
	p := Unfair{}
	if got := p.Pick(v, 1, true); got != 1 {
		t.Fatalf("all-blocked pick = %d, want 1 (lowest with work)", got)
	}
}

func TestUnfairNoWork(t *testing.T) {
	v := &fakeView{work: []bool{false, false}, dispatchable: []bool{false, false}}
	p := Unfair{}
	if got := p.Pick(v, 0, true); got != -1 {
		t.Fatalf("pick with no work = %d, want -1", got)
	}
}

func TestUnfairSkipsFinishedCurrent(t *testing.T) {
	v := &fakeView{work: []bool{false, true}, dispatchable: []bool{false, true}}
	p := Unfair{}
	if got := p.Pick(v, 0, false); got != 1 {
		t.Fatalf("finished current not abandoned: %d", got)
	}
}

func TestRoundRobinStartsAfterCurrent(t *testing.T) {
	v := &fakeView{work: []bool{true, true, true}, dispatchable: []bool{true, false, true}}
	p := RoundRobin{}
	if got := p.Pick(v, 0, true); got != 2 {
		t.Fatalf("round-robin pick = %d, want 2 (1 blocked)", got)
	}
	if got := p.Pick(v, 2, true); got != 0 {
		t.Fatalf("round-robin wrap = %d, want 0", got)
	}
	// Unblocked current stays.
	if got := p.Pick(v, 0, false); got != 0 {
		t.Fatalf("round-robin kept = %d, want 0", got)
	}
}

func TestEveryCycleRotates(t *testing.T) {
	v := &fakeView{work: []bool{true, true, true}, dispatchable: []bool{true, true, true}}
	p := EveryCycle{}
	if got := p.Pick(v, 0, false); got != 1 {
		t.Fatalf("every-cycle pick = %d, want 1", got)
	}
	if got := p.Pick(v, 2, false); got != 0 {
		t.Fatalf("every-cycle wrap = %d, want 0", got)
	}
}

func TestLRUEqualizes(t *testing.T) {
	v := &fakeView{work: []bool{true, true, true}, dispatchable: []bool{true, true, true}}
	p := &LRU{}
	// Thread 0 runs a while.
	for i := 0; i < 5; i++ {
		if got := p.Pick(v, 0, false); got != 0 {
			t.Fatalf("LRU kept = %d", got)
		}
	}
	// On block, least recently run (1 or 2, both never) wins; ties by
	// scan order give 1, then 2.
	if got := p.Pick(v, 0, true); got != 1 {
		t.Fatalf("LRU pick = %d, want 1", got)
	}
	if got := p.Pick(v, 1, true); got != 2 {
		t.Fatalf("LRU pick = %d, want 2", got)
	}
	// Now thread 0 is the stalest.
	if got := p.Pick(v, 2, true); got != 0 {
		t.Fatalf("LRU pick = %d, want 0", got)
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, n := range Names() {
		p := ByName(n)
		if p == nil || p.Name() != n {
			t.Errorf("ByName(%q) broken", n)
		}
	}
	if ByName("nope") != nil {
		t.Error("unknown policy should be nil")
	}
}

func TestCloneReturnsUsableInstances(t *testing.T) {
	for _, name := range Names() {
		p := ByName(name)
		c := p.Clone()
		if c == nil || c.Name() != name {
			t.Fatalf("%s: Clone() = %v", name, c)
		}
	}
}

// TestLRUCloneDropsState: a cloned LRU must not inherit the original's
// recency history, so one Config can back many machines.
func TestLRUCloneDropsState(t *testing.T) {
	p := &LRU{}
	v := &fakeView{work: []bool{true, true, true}, dispatchable: []bool{true, true, true}}
	// Bias the original: run thread 2 so it becomes most-recent.
	p.Pick(v, 2, false)
	p.Pick(v, 2, false)

	c := p.Clone().(*LRU)
	if c.lastRun != nil || c.tick != 0 {
		t.Fatalf("clone inherited state: lastRun=%v tick=%d", c.lastRun, c.tick)
	}
	// A fresh instance and the clone make the same first pick; the
	// original, carrying history, must not be affected by the clone.
	fresh := &LRU{}
	if got, want := c.Pick(v, 0, true), fresh.Pick(v, 0, true); got != want {
		t.Fatalf("clone pick %d != fresh pick %d", got, want)
	}
	if p.lastRun == nil {
		t.Fatal("original lost its state after Clone")
	}
}
