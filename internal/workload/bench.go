package workload

import (
	"fmt"
	"sync"

	"mtvec/internal/kernel"
	"mtvec/internal/vcomp"
)

// The benchmark suite: real vectorizable kernels (in the spirit of the
// RiVEC / Ara RVV suites) expressed in the same kernel IR as the
// Table 3 reconstructions, but scheduled from actual problem sizes
// rather than calibrated to published instruction budgets. Problem
// sizes scale linearly with the build scale (DefaultScale is the
// nominal size), so the same sweep machinery runs the suite at any
// fraction of full size. docs/BENCHMARKS.md describes each kernel's
// math, vector shape, memory pattern and expected bank behavior.

// BenchSpecs returns the benchmark-suite specs. Like Specs, the specs
// themselves are built once and shared; each call returns a fresh
// slice. ByName/ByShort resolve these alongside the Table 3 catalog,
// which is what makes the suite sweepable, store-persistable and
// servable with no session or cluster changes.
func BenchSpecs() []*Spec {
	benchOnce.Do(func() { benchShared = buildBenchSpecs() })
	out := make([]*Spec, len(benchShared))
	copy(out, benchShared)
	return out
}

var (
	benchOnce   sync.Once
	benchShared []*Spec
)

// BenchOrder returns the suite in its fixed catalog order; the
// ext-benchsuite experiment queues the kernels in this order.
func BenchOrder() []*Spec { return BenchSpecs() }

// benchSize scales a nominal problem size (elements, rows) by
// scale/DefaultScale, never below one element.
func benchSize(nominal int64, scale float64) int64 {
	n := int64(float64(nominal) * (scale / DefaultScale))
	if n < 1 {
		n = 1
	}
	return n
}

// passSchedule alternates a fixed number of serial setup iterations with
// one full invocation of unit, the shape of a repeated whole-array sweep
// (axpy passes, stencil timesteps, ...).
func passSchedule(c *vcomp.Compiled, unit string, n, passes, serialIters int64) ([]vcomp.Invocation, error) {
	u := c.UnitIndex(unit)
	serial := c.UnitIndex("serial")
	if u < 0 || serial < 0 {
		return nil, fmt.Errorf("kernel is missing unit %q or serial loop", unit)
	}
	sched := make([]vcomp.Invocation, 0, 2*passes)
	for p := int64(0); p < passes; p++ {
		if serialIters > 0 {
			sched = append(sched, vcomp.Invocation{Unit: serial, N: serialIters})
		}
		sched = append(sched, vcomp.Invocation{Unit: u, N: n})
	}
	return sched, nil
}

func buildBenchSpecs() []*Spec {
	return []*Spec{
		{
			Name: "axpy", Short: "ax", Suite: "Bench",
			build: func() (*kernel.Kernel, []phase) {
				return &kernel.Kernel{Name: "axpy", Units: []kernel.Unit{
					benchAxpyLoop("daxpy", 0x4000_0000),
				}}, nil
			},
			schedule: func(c *vcomp.Compiled, scale float64) ([]vcomp.Invocation, error) {
				return passSchedule(c, "daxpy", benchSize(100_000, scale), 4, 64)
			},
		},
		{
			Name: "dot", Short: "dp", Suite: "Bench",
			build: func() (*kernel.Kernel, []phase) {
				return &kernel.Kernel{Name: "dot", Units: []kernel.Unit{
					benchDotLoop("ddot", 0x4100_0000),
				}}, nil
			},
			schedule: func(c *vcomp.Compiled, scale float64) ([]vcomp.Invocation, error) {
				return passSchedule(c, "ddot", benchSize(120_000, scale), 4, 64)
			},
		},
		{
			Name: "gemm", Short: "gm", Suite: "Bench",
			build: func() (*kernel.Kernel, []phase) {
				return &kernel.Kernel{Name: "gemm", Units: []kernel.Unit{
					gemmInnerLoop("inner", 0x4200_0000),
				}}, nil
			},
			// Blocked C += A·B: rows of C are processed in register-blocked
			// pairs; for each of the K inner-product steps the inner loop
			// streams one row of B against both accumulator rows. Scale
			// grows the row-pair count; K and the vectorized row length
			// stay fixed so blocking behavior is size-invariant.
			schedule: func(c *vcomp.Compiled, scale float64) ([]vcomp.Invocation, error) {
				inner := c.UnitIndex("inner")
				serial := c.UnitIndex("serial")
				if inner < 0 || serial < 0 {
					return nil, fmt.Errorf("kernel is missing unit %q or serial loop", "inner")
				}
				const kSteps, rowLen = 64, 256
				rowPairs := benchSize(32, scale)
				sched := make([]vcomp.Invocation, 0, rowPairs*(kSteps+1))
				for b := int64(0); b < rowPairs; b++ {
					sched = append(sched, vcomp.Invocation{Unit: serial, N: 8})
					for k := 0; k < kSteps; k++ {
						sched = append(sched, vcomp.Invocation{Unit: inner, N: rowLen})
					}
				}
				return sched, nil
			},
		},
		{
			Name: "spmv", Short: "sp", Suite: "Bench",
			build: func() (*kernel.Kernel, []phase) {
				return &kernel.Kernel{Name: "spmv", Units: []kernel.Unit{
					spmvRowLoop("row", 0x4300_0000),
				}}, nil
			},
			// CSR sparse matrix-vector product: one gather-reduction per
			// row, trip count = that row's nonzero count. The deterministic
			// nonzero pattern mixes short and full vectors (average ~81),
			// the hallmark of sparse workloads.
			schedule: func(c *vcomp.Compiled, scale float64) ([]vcomp.Invocation, error) {
				row := c.UnitIndex("row")
				serial := c.UnitIndex("serial")
				if row < 0 || serial < 0 {
					return nil, fmt.Errorf("kernel is missing unit %q or serial loop", "row")
				}
				rows := benchSize(4096, scale)
				sched := make([]vcomp.Invocation, 0, rows+rows/64+1)
				for r := int64(0); r < rows; r++ {
					if r%64 == 0 {
						// Row-pointer and index bookkeeping between bands.
						sched = append(sched, vcomp.Invocation{Unit: serial, N: 16})
					}
					sched = append(sched, vcomp.Invocation{Unit: row, N: spmvNNZ[r%int64(len(spmvNNZ))]})
				}
				return sched, nil
			},
		},
		{
			Name: "stencil1d", Short: "s1", Suite: "Bench",
			build: func() (*kernel.Kernel, []phase) {
				return &kernel.Kernel{Name: "stencil1d", Units: []kernel.Unit{
					stencil3ptLoop("heat", 0x4400_0000),
				}}, nil
			},
			schedule: func(c *vcomp.Compiled, scale float64) ([]vcomp.Invocation, error) {
				return passSchedule(c, "heat", benchSize(65536, scale), 4, 32)
			},
		},
		{
			Name: "stencil2d", Short: "s2", Suite: "Bench",
			build: func() (*kernel.Kernel, []phase) {
				return &kernel.Kernel{Name: "stencil2d", Units: []kernel.Unit{
					stencil5ptLoop("jacobi", 0x4500_0000, 512*8),
				}}, nil
			},
			// 5-point Jacobi relaxation over a rows x 512 grid, swept row
			// by row: each invocation relaxes one row (north/south
			// neighbors live a full row-stride away), with per-row pointer
			// arithmetic in the serial loop. Scale grows the row count.
			schedule: func(c *vcomp.Compiled, scale float64) ([]vcomp.Invocation, error) {
				jacobi := c.UnitIndex("jacobi")
				serial := c.UnitIndex("serial")
				if jacobi < 0 || serial < 0 {
					return nil, fmt.Errorf("kernel is missing unit %q or serial loop", "jacobi")
				}
				const steps, cols = 2, 512
				rows := benchSize(256, scale)
				sched := make([]vcomp.Invocation, 0, steps*rows*2)
				for t := 0; t < steps; t++ {
					for r := int64(0); r < rows; r++ {
						sched = append(sched,
							vcomp.Invocation{Unit: serial, N: 2},
							vcomp.Invocation{Unit: jacobi, N: cols})
					}
				}
				return sched, nil
			},
		},
		{
			Name: "blackscholes", Short: "bs", Suite: "Bench",
			build: func() (*kernel.Kernel, []phase) {
				return &kernel.Kernel{Name: "blackscholes", Units: []kernel.Unit{
					blackscholesLoop("price", 0x4600_0000),
				}}, nil
			},
			schedule: func(c *vcomp.Compiled, scale float64) ([]vcomp.Invocation, error) {
				return passSchedule(c, "price", benchSize(49152, scale), 2, 64)
			},
		},
	}
}

// spmvNNZ is the deterministic per-row nonzero pattern of the spmv
// matrix: a mix of short rows (strip-control dominated) and rows longer
// than one hardware strip.
var spmvNNZ = [...]int64{16, 32, 64, 96, 128, 192, 48, 80}

// benchAxpyLoop is the BLAS-1 daxpy: y = a*x + y. Two unit-stride
// streams in, one out; arithmetic-to-memory ratio 2/3, so memory ports
// are the bottleneck — the canonical bandwidth-bound kernel.
func benchAxpyLoop(name string, base uint64) *kernel.VectorLoop {
	x := &kernel.Array{Name: name + ".x", Base: base, Stride: 8}
	y := &kernel.Array{Name: name + ".y", Base: base + 1<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Dst: y,
		E: &kernel.Bin{Op: kernel.Add,
			L: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "a"}, R: &kernel.Ref{Arr: x}},
			R: &kernel.Ref{Arr: y}},
	}}}
}

// benchDotLoop is the BLAS-1 ddot: sum += x[i]*y[i], a pure
// load-multiply-reduce with no store traffic.
func benchDotLoop(name string, base uint64) *kernel.VectorLoop {
	x := &kernel.Array{Name: name + ".x", Base: base, Stride: 8}
	y := &kernel.Array{Name: name + ".y", Base: base + 1<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Reduce: "dot",
		E:      &kernel.Bin{Op: kernel.Mul, L: &kernel.Ref{Arr: x}, R: &kernel.Ref{Arr: y}},
	}}}
}

// gemmInnerLoop is the inner loop of a register-blocked gemm: one row of
// B updates two accumulator rows of C (c0 += a0*b; c1 += a1*b). The
// shared B row is loaded once — the load-reuse that blocking buys.
func gemmInnerLoop(name string, base uint64) *kernel.VectorLoop {
	b := &kernel.Array{Name: name + ".b", Base: base, Stride: 8}
	c0 := &kernel.Array{Name: name + ".c0", Base: base + 1<<20, Stride: 8}
	c1 := &kernel.Array{Name: name + ".c1", Base: base + 2<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{
		{Dst: c0, E: &kernel.Bin{Op: kernel.Add,
			L: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "a0"}, R: &kernel.Ref{Arr: b}},
			R: &kernel.Ref{Arr: c0}}},
		{Dst: c1, E: &kernel.Bin{Op: kernel.Add,
			L: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "a1"}, R: &kernel.Ref{Arr: b}},
			R: &kernel.Ref{Arr: c1}}},
	}}
}

// spmvRowLoop is one CSR row: y_r = sum(val[j] * x[col[j]]). The value
// and column-index streams are unit-stride; the x accesses are a gather
// through the index vector — the random-bank traffic sparse codes are
// known for.
func spmvRowLoop(name string, base uint64) *kernel.VectorLoop {
	val := &kernel.Array{Name: name + ".val", Base: base, Stride: 8}
	col := &kernel.Array{Name: name + ".col", Base: base + 1<<20, Stride: 8}
	x := &kernel.Array{Name: name + ".x", Base: base + 2<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Reduce: "y",
		E: &kernel.Bin{Op: kernel.Mul,
			L: &kernel.Ref{Arr: val},
			R: &kernel.Gather{Data: x, Index: col}},
	}}}
}

// stencil3ptLoop is the 1-D heat equation step: out[i] = c0*in[i-1] +
// c1*in[i] + c2*in[i+1]. The three taps are the same stream at element
// offsets -1/0/+1, so consecutive strips re-touch the same banks.
func stencil3ptLoop(name string, base uint64) *kernel.VectorLoop {
	west := &kernel.Array{Name: name + ".west", Base: base, Stride: 8}
	mid := &kernel.Array{Name: name + ".mid", Base: base + 8, Stride: 8}
	east := &kernel.Array{Name: name + ".east", Base: base + 16, Stride: 8}
	out := &kernel.Array{Name: name + ".out", Base: base + 1<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Dst: out,
		E: &kernel.Bin{Op: kernel.Add,
			L: &kernel.Bin{Op: kernel.Add,
				L: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "c0"}, R: &kernel.Ref{Arr: west}},
				R: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "c1"}, R: &kernel.Ref{Arr: mid}}},
			R: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "c2"}, R: &kernel.Ref{Arr: east}}},
	}}}
}

// stencil5ptLoop is one row of a 2-D 5-point Jacobi sweep: out = c*(N +
// S + E + W) + center. East/west taps are one element away, north/south
// a full row (rowBytes) away — five concurrent unit-stride streams whose
// bases straddle rows.
func stencil5ptLoop(name string, base uint64, rowBytes uint64) *kernel.VectorLoop {
	north := &kernel.Array{Name: name + ".n", Base: base, Stride: 8}
	west := &kernel.Array{Name: name + ".w", Base: base + rowBytes - 8, Stride: 8}
	center := &kernel.Array{Name: name + ".c", Base: base + rowBytes, Stride: 8}
	east := &kernel.Array{Name: name + ".e", Base: base + rowBytes + 8, Stride: 8}
	south := &kernel.Array{Name: name + ".s", Base: base + 2*rowBytes, Stride: 8}
	out := &kernel.Array{Name: name + ".out", Base: base + 1<<24 + rowBytes, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Dst: out,
		E: &kernel.Bin{Op: kernel.Add,
			L: &kernel.Bin{Op: kernel.Mul,
				L: &kernel.ScalarArg{Name: "c"},
				R: &kernel.Bin{Op: kernel.Add,
					L: &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: north}, R: &kernel.Ref{Arr: south}},
					R: &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: east}, R: &kernel.Ref{Arr: west}}}},
			R: &kernel.Ref{Arr: center}},
	}}}
}

// blackscholesLoop is the elementwise option-pricing kernel: per
// element, a square root, a divide and a compare-merge (the in-the-money
// select) — the FU2-heavy, predicated profile of financial codes.
//
//	sig   = vol * sqrt(t)
//	d1    = (logSK + rate*t) / sig
//	price = (d1 > strike) ? ... : spot - strike   (merged select)
func blackscholesLoop(name string, base uint64) *kernel.VectorLoop {
	t := &kernel.Array{Name: name + ".t", Base: base, Stride: 8}
	logSK := &kernel.Array{Name: name + ".logsk", Base: base + 1<<20, Stride: 8}
	spot := &kernel.Array{Name: name + ".spot", Base: base + 2<<20, Stride: 8}
	strike := &kernel.Array{Name: name + ".strike", Base: base + 3<<20, Stride: 8}
	sig := &kernel.Array{Name: name + ".sig", Base: base + 4<<20, Stride: 8}
	d1 := &kernel.Array{Name: name + ".d1", Base: base + 5<<20, Stride: 8}
	price := &kernel.Array{Name: name + ".price", Base: base + 6<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{
		{Dst: sig, E: &kernel.Bin{Op: kernel.Mul,
			L: &kernel.ScalarArg{Name: "vol"},
			R: &kernel.Un{Op: kernel.Sqrt, X: &kernel.Ref{Arr: t}}}},
		{Dst: d1, E: &kernel.Bin{Op: kernel.Div,
			L: &kernel.Bin{Op: kernel.Add,
				L: &kernel.Ref{Arr: logSK},
				R: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "rate"}, R: &kernel.Ref{Arr: t}}},
			R: &kernel.Ref{Arr: sig}}},
		{Dst: price, E: &kernel.Bin{Op: kernel.Merge,
			L: &kernel.Bin{Op: kernel.CmpGT, L: &kernel.Ref{Arr: d1}, R: &kernel.Ref{Arr: strike}},
			R: &kernel.Bin{Op: kernel.Sub, L: &kernel.Ref{Arr: spot}, R: &kernel.Ref{Arr: strike}}}},
	}}
}
