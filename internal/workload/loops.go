package workload

import (
	"fmt"

	"mtvec/internal/kernel"
)

// Loop builders: small, domain-flavoured vector loops the ten benchmark
// reconstructions are assembled from. Base addresses are spaced so the
// arrays of different loops never alias.

// stencilLoop builds a width-point relaxation sweep: out_k = c*(in_k +
// in_{k+1}) for k < width. Adjacent statements share an input array, so
// the compiler's load caching keeps roughly 4 vector instructions per
// statement (one fresh load, add, scalar multiply, store).
func stencilLoop(name string, base uint64, width int) *kernel.VectorLoop {
	in := make([]*kernel.Array, width+1)
	out := make([]*kernel.Array, width)
	for i := range in {
		in[i] = &kernel.Array{Name: fmt.Sprintf("%s.in%d", name, i), Base: base + uint64(i)<<16, Stride: 8}
	}
	l := &kernel.VectorLoop{Name: name}
	for k := 0; k < width; k++ {
		out[k] = &kernel.Array{Name: fmt.Sprintf("%s.out%d", name, k), Base: base + uint64(width+1+k)<<16, Stride: 8}
		smoothed := kernel.Expr(&kernel.Bin{Op: kernel.Mul,
			L: &kernel.ScalarArg{Name: "c"},
			R: &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: in[k]}, R: &kernel.Ref{Arr: in[k+1]}}})
		if k%2 == 1 {
			// Alternate statements add a relaxation term, keeping the
			// loop's arithmetic-to-memory ratio near the ~1.2 of the
			// paper's highly-vectorized codes (visible in Figure 8's
			// VOPC levels).
			smoothed = &kernel.Bin{Op: kernel.Add, L: smoothed, R: &kernel.Ref{Arr: in[k]}}
		}
		l.Body = append(l.Body, kernel.Stmt{Dst: out[k], E: smoothed})
	}
	return l
}

// axpyLoop builds y = a*x + b*y (6 vector instructions). The two scalar
// multiplies keep the arithmetic-to-memory ratio near 1, like the
// paper's linear-algebra kernels.
func axpyLoop(name string, base uint64) *kernel.VectorLoop {
	x := &kernel.Array{Name: name + ".x", Base: base, Stride: 8}
	y := &kernel.Array{Name: name + ".y", Base: base + 1<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Dst: y,
		E: &kernel.Bin{Op: kernel.Add,
			L: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "a"}, R: &kernel.Ref{Arr: x}},
			R: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "b"}, R: &kernel.Ref{Arr: y}}},
	}}}
}

// dotLoop builds sum += x[i]*y[i] (4 vector instructions, reduction).
func dotLoop(name string, base uint64) *kernel.VectorLoop {
	x := &kernel.Array{Name: name + ".x", Base: base, Stride: 8}
	y := &kernel.Array{Name: name + ".y", Base: base + 1<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Reduce: "sum",
		E:      &kernel.Bin{Op: kernel.Mul, L: &kernel.Ref{Arr: x}, R: &kernel.Ref{Arr: y}},
	}}}
}

// sqrtLoop builds out = c*sqrt(x*y) (6 vector instructions, FU2-heavy).
func sqrtLoop(name string, base uint64) *kernel.VectorLoop {
	x := &kernel.Array{Name: name + ".x", Base: base, Stride: 8}
	y := &kernel.Array{Name: name + ".y", Base: base + 1<<20, Stride: 8}
	out := &kernel.Array{Name: name + ".out", Base: base + 2<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Dst: out,
		E: &kernel.Bin{Op: kernel.Mul,
			L: &kernel.ScalarArg{Name: "c"},
			R: &kernel.Un{Op: kernel.Sqrt, X: &kernel.Bin{Op: kernel.Mul, L: &kernel.Ref{Arr: x}, R: &kernel.Ref{Arr: y}}}},
	}}}
}

// gatherLoop builds out = g*data[idx] + y (6 vector instructions).
func gatherLoop(name string, base uint64) *kernel.VectorLoop {
	data := &kernel.Array{Name: name + ".data", Base: base, Stride: 8}
	idx := &kernel.Array{Name: name + ".idx", Base: base + 1<<20, Stride: 8}
	y := &kernel.Array{Name: name + ".y", Base: base + 2<<20, Stride: 8}
	out := &kernel.Array{Name: name + ".out", Base: base + 3<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Dst: out,
		E: &kernel.Bin{Op: kernel.Add,
			L: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "g"}, R: &kernel.Gather{Data: data, Index: idx}},
			R: &kernel.Ref{Arr: y}},
	}}}
}

// scatterLoop builds out[idx[i]] = x + y (5 vector instructions).
func scatterLoop(name string, base uint64) *kernel.VectorLoop {
	x := &kernel.Array{Name: name + ".x", Base: base, Stride: 8}
	y := &kernel.Array{Name: name + ".y", Base: base + 1<<20, Stride: 8}
	idx := &kernel.Array{Name: name + ".idx", Base: base + 2<<20, Stride: 8}
	out := &kernel.Array{Name: name + ".out", Base: base + 3<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Dst: out, ScatterIdx: idx,
		E: &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: x}, R: &kernel.Ref{Arr: y}},
	}}}
}

// colLoop mixes a unit-stride row walk with a long-stride column walk,
// forcing vector-stride register traffic inside the strip body (matrix
// transposition / FFT-style access).
func colLoop(name string, base uint64, rowBytes int64) *kernel.VectorLoop {
	row := &kernel.Array{Name: name + ".row", Base: base, Stride: 8}
	col := &kernel.Array{Name: name + ".col", Base: base + 1<<20, Stride: rowBytes}
	out := &kernel.Array{Name: name + ".out", Base: base + 8<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{{
		Dst: out,
		E: &kernel.Bin{Op: kernel.Add,
			L: &kernel.Bin{Op: kernel.Mul,
				L: &kernel.ScalarArg{Name: "w"},
				R: &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: row}, R: &kernel.Ref{Arr: col}}},
			R: &kernel.Ref{Arr: row}},
	}}}
}
