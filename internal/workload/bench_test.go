package workload

import (
	"testing"

	"mtvec/internal/isa"
	"mtvec/internal/vcomp"
)

func TestBenchSpecsRegistered(t *testing.T) {
	specs := BenchSpecs()
	if len(specs) != 7 {
		t.Fatalf("bench suite has %d specs, want 7", len(specs))
	}
	names := make(map[string]bool)
	shorts := make(map[string]bool)
	for _, s := range Specs() {
		names[s.Name] = true
		shorts[s.Short] = true
	}
	for _, s := range specs {
		if s.Suite != "Bench" {
			t.Errorf("%s: suite = %q, want Bench", s.Name, s.Suite)
		}
		if names[s.Name] || shorts[s.Short] {
			t.Errorf("%s/%s collides with another registered spec", s.Name, s.Short)
		}
		names[s.Name] = true
		shorts[s.Short] = true
		if ByName(s.Name) != s {
			t.Errorf("ByName(%q) does not resolve to the registered spec", s.Name)
		}
		if ByShort(s.Short) != s {
			t.Errorf("ByShort(%q) does not resolve to the registered spec", s.Short)
		}
	}
}

func TestBenchBuildAll(t *testing.T) {
	for _, s := range BenchSpecs() {
		w, err := s.Build(DefaultScale)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		st := w.Stats
		if st.VectorInsts == 0 || st.VectorOps == 0 {
			t.Fatalf("%s: no vector work (%+v)", s.Name, st)
		}
		if pv := st.PctVectorized(); pv < 50 {
			t.Errorf("%s: only %.1f%% vectorized", s.Name, pv)
		}
		if avl := st.AvgVL(); avl <= 1 || avl > float64(isa.MaxVL) {
			t.Errorf("%s: average VL %.1f out of range", s.Name, avl)
		}
	}
}

func TestBenchBuildDeterminism(t *testing.T) {
	s := ByShort("sp")
	w1, err := s.Build(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Build(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Stats != w2.Stats {
		t.Fatal("two builds of the same bench spec differ")
	}
	if len(w1.Trace.BBs) != len(w2.Trace.BBs) {
		t.Fatal("trace lengths differ across builds")
	}
}

func TestBenchScaleLinearity(t *testing.T) {
	s := ByShort("ax")
	w1, err := s.Build(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Build(2 * DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(w2.Stats.VectorOps) / float64(w1.Stats.VectorOps)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("ops ratio = %.2f, want ~2", ratio)
	}
}

func TestBenchTinyScale(t *testing.T) {
	// The suite must stay buildable at the small scales the cluster CI
	// smoke uses.
	for _, s := range BenchSpecs() {
		if _, err := s.Build(5e-5); err != nil {
			t.Errorf("%s at scale 5e-5: %v", s.Name, err)
		}
	}
}

func TestBenchCharacter(t *testing.T) {
	// Per-kernel structural signatures: the properties docs/BENCHMARKS.md
	// claims for each kernel must hold in the built traces.
	build := func(short string) *Workload {
		t.Helper()
		w, err := ByShort(short).Build(DefaultScale)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	if st := build("sp").Stats; st.PerOp[isa.OpVGather] == 0 {
		t.Error("spmv has no gathers")
	} else if avl := st.AvgVL(); avl > 100 {
		t.Errorf("spmv average VL %.1f, want short-vector profile", avl)
	}
	if st := build("dp").Stats; st.PerOp[isa.OpVRedAdd] == 0 || st.VectorStoreElems != 0 {
		t.Error("dot must reduce without store traffic")
	}
	if st := build("bs").Stats; st.PerOp[isa.OpVSqrt] == 0 || st.PerOp[isa.OpVDiv] == 0 ||
		st.PerOp[isa.OpVMerge] == 0 || st.PerOp[isa.OpVCmp] == 0 {
		t.Error("blackscholes must exercise sqrt/div/compare/merge")
	}
	if st := build("gm").Stats; st.VectorLoadElems <= st.VectorStoreElems {
		t.Error("gemm blocking should reuse loads across two accumulator rows")
	}
	if st := build("ax").Stats; st.PerOp[isa.OpVMulS] == 0 {
		t.Error("axpy must broadcast the scalar coefficient")
	}
}

func TestBenchBuildOptsRegFile(t *testing.T) {
	// Bench kernels compile at non-default register lengths (the sweep
	// path the ext-regfile style experiments use).
	s := ByShort("s2")
	rf := s.mustBuildRF(t, 32)
	if rf.Trace.MaxVL != 32 {
		t.Fatalf("MaxVL = %d, want 32", rf.Trace.MaxVL)
	}
	if rf.Stats.AvgVL() > 32 {
		t.Fatalf("average VL %.1f exceeds the register length", rf.Stats.AvgVL())
	}
}

// mustBuildRF builds the spec with a VLen-override register file.
func (s *Spec) mustBuildRF(t *testing.T, vlen int) *Workload {
	t.Helper()
	opts := vcomp.Options{}
	opts.RegFile = opts.RegFile.Normalize()
	opts.RegFile.VLen = vlen
	w, err := s.BuildOpts(DefaultScale, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFromTrace(t *testing.T) {
	w, err := ByShort("ax").Build(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := FromTrace("imported", w.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Stats != w.Stats {
		t.Error("imported workload's measured profile differs from the source build")
	}
	if imp.Spec.Name != "imported" || imp.Spec.Short != "imported" {
		t.Errorf("synthesized spec = %+v", imp.Spec)
	}
	// The synthesized spec must NOT be registered — even under a name
	// that collides with a catalog entry — so the session layer keeps
	// imported traces out of the persistent store.
	imp2, err := FromTrace("axpy", w.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if ByName("axpy") == imp2.Spec {
		t.Error("imported spec aliases the registered catalog spec")
	}

	if _, err := FromTrace("x", nil); err == nil {
		t.Error("nil trace accepted")
	}
}
