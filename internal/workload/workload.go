// Package workload turns kernel IR into runnable benchmark programs:
// compiled traces plus the metadata the session, store and serving
// tiers key on.
//
// Two catalogs are registered:
//
//   - Specs: the paper's ten Perfect Club / SPECfp92 programs (Table 3)
//     as synthetic kernels calibrated to the published dynamic profiles
//     — scalar instruction count, vector instruction count, vector
//     operation count, degree of vectorization and average vector
//     length. The real programs cannot be traced without a Convex C3480
//     and its Fortran compiler; per DESIGN.md the substitution preserves
//     the quantities the paper's effects depend on. Each workload is a
//     kernel of domain-flavoured vector loops (stencils, axpy,
//     reductions, gather/scatter, strided column walks) plus a serial
//     loop, with an invocation schedule solved by the calibration
//     planner in plan.go.
//
//   - BenchSpecs: a real vectorizable benchmark suite (axpy, dot, a
//     blocked gemm, CSR spmv, 1-D/2-D stencils, a Black-Scholes-class
//     elementwise kernel) expressed in the same IR but scheduled from
//     actual problem sizes (bench.go) rather than published instruction
//     budgets. See docs/BENCHMARKS.md.
//
// # Registration contract
//
// ByName and ByShort resolve over the union of both catalogs, and the
// session layer defines a workload's identity by registry membership: a
// *Workload whose Spec pointer is reachable through ByName(Spec.Name)
// gets a stable, content-addressed persist key of the form
// "name@scale[+options]+fp<stats fingerprint>", which is what lets the
// on-disk store and the cluster tier share results across processes.
// New kernels therefore MUST be added to one of the two registries (and
// keep their recipes deterministic — same Spec + Scale + Options must
// always produce the identical trace) to be store-persistable; an
// unregistered Spec (a user kernel, or a trace imported with FromTrace)
// still works everywhere but is memoized per-process only.
package workload

import (
	"fmt"

	"mtvec/internal/kernel"
	"mtvec/internal/prog"
	"mtvec/internal/trace"
	"mtvec/internal/vcomp"
)

// DefaultScale is the fraction of the paper's dynamic instruction counts
// the standard reproduction uses (Table 3 counts are in millions; 1e-3
// keeps every ratio intact at roughly thousandth size).
const DefaultScale = 1e-3

// Spec describes one benchmark program: its catalog row and the kernel
// construction recipe. Specs are immutable once published through
// Specs/BenchSpecs; the pointer itself is the registry identity the
// session layer checks when deriving persist keys.
type Spec struct {
	Name  string // program name, e.g. "swm256" or "spmv"
	Short string // short tag, e.g. "sw" (paper) or "sp" (bench suite)
	Suite string // "Spec", "Perf." (Table 3) or "Bench"

	// Table 3 columns, in millions of instructions/operations. Zero for
	// the bench suite, whose dynamic profile is measured from the built
	// trace instead of calibrated to a published row.
	ScalarM float64
	VectorM float64
	OpsM    float64
	PctVect float64 // published degree of vectorization (%)
	AvgVL   float64 // published average vector length

	// build constructs the kernel and, for calibrated specs, the phases
	// the Table 3 planner consumes.
	build func() (*kernel.Kernel, []phase)

	// schedule, when non-nil, replaces the calibration planner: it
	// receives the compiled kernel and the requested scale and returns
	// the invocation schedule directly. Bench-suite specs use it to
	// scale real problem sizes (elements, matrix dimensions) instead of
	// instruction budgets. It must be deterministic in (c, scale).
	schedule func(c *vcomp.Compiled, scale float64) ([]vcomp.Invocation, error)
}

// phase is one vector loop of the recipe: trip count per invocation and
// the share of the program's total vector operations it contributes.
type phase struct {
	unit  string
	n     int64
	share float64
}

// Workload is a built benchmark: the compiled program, its full trace at
// the requested scale, and the measured dynamic statistics.
type Workload struct {
	Spec  *Spec
	Scale float64
	Trace *trace.Trace
	Stats prog.Stats

	// Opts is the build's compiler provenance. Together with Spec and
	// Scale it makes the workload a pure function of declarative inputs,
	// which is what lets the persistent result store key runs on content
	// instead of process-local object identity.
	Opts vcomp.Options
}

// Build compiles the benchmark and solves the invocation schedule for the
// given scale.
func (s *Spec) Build(scale float64) (*Workload, error) {
	return s.BuildOpts(scale, vcomp.Options{})
}

// BuildOpts is Build with explicit compiler options (the ext-compiler
// ablation builds the suite with load hoisting disabled).
func (s *Spec) BuildOpts(scale float64, opts vcomp.Options) (*Workload, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("workload: %s: non-positive scale %g", s.Name, scale)
	}
	k, phases := s.build()
	k.Units = append(k.Units, serialLoop())
	c, err := vcomp.CompileOpts(k, opts)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", s.Name, err)
	}
	var sched []vcomp.Invocation
	if s.schedule != nil {
		sched, err = s.schedule(c, scale)
	} else {
		sched, err = plan(c, s, phases, scale)
	}
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", s.Name, err)
	}
	tr, err := c.Trace(sched)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", s.Name, err)
	}
	// Validate the replay and measure its dynamic statistics through the
	// source path, leaving the trace's predecode cache to the first run
	// that actually streams it (build-only consumers like the Table 3
	// counts never pay for materialization).
	_, st, err := prog.NewStreamVL(tr.Prog, tr.Source(), tr.MaxVL).Drain()
	if err != nil {
		return nil, fmt.Errorf("workload: %s: generated trace does not replay: %w", s.Name, err)
	}
	return &Workload{Spec: s, Scale: scale, Trace: tr, Stats: st, Opts: opts}, nil
}

// Stream returns a fresh dynamic instruction stream of the workload.
func (w *Workload) Stream() *prog.Stream { return w.Trace.Stream() }

// serialLoop is the standard non-vectorized loop used for every
// benchmark's scalar portion: 2 loads and 1 store per 9 instructions,
// reproducing the paper's observation that scalar loops sustain at most
// about 1/3 memory-port occupation (Section 6.2).
func serialLoop() *kernel.ScalarLoop {
	return &kernel.ScalarLoop{Name: "serial", Loads: 2, Stores: 1, IntOps: 2, FPOps: 1}
}

// BuildAll builds every benchmark at the given scale, in Table 3 order.
func BuildAll(scale float64) ([]*Workload, error) {
	specs := Specs()
	out := make([]*Workload, 0, len(specs))
	for _, s := range specs {
		w, err := s.Build(scale)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// ByShort returns the registered spec with the given short tag — from
// the Table 3 catalog or the bench suite — or nil.
func ByShort(short string) *Spec {
	for _, s := range Specs() {
		if s.Short == short {
			return s
		}
	}
	for _, s := range BenchSpecs() {
		if s.Short == short {
			return s
		}
	}
	return nil
}

// ByName returns the registered spec with the given program name — from
// the Table 3 catalog or the bench suite — or nil.
func ByName(name string) *Spec {
	for _, s := range Specs() {
		if s.Name == name {
			return s
		}
	}
	for _, s := range BenchSpecs() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// FromTrace wraps an externally supplied trace — decoded from a .mtvt
// file or imported from an RVV-flavoured text trace — as a runnable
// Workload. The trace is replay-validated and profiled exactly like a
// built workload. The synthesized Spec is deliberately NOT registered:
// the session layer will run, memoize and batch the workload normally,
// but never persist it to the store (an external trace has no
// content-addressed recipe to key on, only process-local identity).
// Machines replaying the workload must be configured with a register
// file whose VLen matches the trace's MaxVL when it differs from the
// reference length.
func FromTrace(name string, tr *trace.Trace) (*Workload, error) {
	if tr == nil || tr.Prog == nil {
		return nil, fmt.Errorf("workload: FromTrace: nil trace")
	}
	if name == "" {
		name = tr.Prog.Name
	}
	if name == "" {
		return nil, fmt.Errorf("workload: FromTrace: trace has no program name")
	}
	_, st, err := prog.NewStreamVL(tr.Prog, tr.Source(), tr.MaxVL).Drain()
	if err != nil {
		return nil, fmt.Errorf("workload: %s: trace does not replay: %w", name, err)
	}
	spec := &Spec{Name: name, Short: name, Suite: "Import"}
	return &Workload{Spec: spec, Scale: 1, Trace: tr, Stats: st}, nil
}

// QueueOrder returns the ten specs in the fixed random order of the
// paper's Section 7 job-queue benchmark: TF SW SU TI TO A7 HY NA SR SD.
func QueueOrder() []*Spec {
	order := []string{"tf", "sw", "su", "ti", "to", "a7", "hy", "na", "sr", "sd"}
	out := make([]*Spec, len(order))
	for i, sh := range order {
		out[i] = ByShort(sh)
	}
	return out
}

// Groupings reconstructs Table 2: the randomly-selected companion
// programs for the 2-, 3- and 4-thread speedup experiments. Column 2 is
// taken from the paper's Figure 7 caption (hydro2d's five companions);
// columns 3 and 4 are documented reconstructions (DESIGN.md).
type Groupings struct {
	Col2 []*Spec // 2-thread companions (5 programs)
	Col3 []*Spec // additional 3rd-thread programs (2)
	Col4 []*Spec // additional 4th-thread program (1)
}

// DefaultGroupings returns the Table 2 reconstruction.
func DefaultGroupings() Groupings {
	pick := func(shorts ...string) []*Spec {
		out := make([]*Spec, len(shorts))
		for i, sh := range shorts {
			out[i] = ByShort(sh)
		}
		return out
	}
	return Groupings{
		Col2: pick("hy", "na", "su", "to", "sw"),
		Col3: pick("tf", "a7"),
		Col4: pick("sr"),
	}
}
