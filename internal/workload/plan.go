package workload

import (
	"fmt"

	"mtvec/internal/isa"
	"mtvec/internal/vcomp"
)

// interleaveGroups controls how finely the planner interleaves the
// benchmark's phases; real programs alternate their kernels inside outer
// timestep loops, and the interleaving matters once several workloads
// share a multithreaded machine.
const interleaveGroups = 32

// plan solves the invocation schedule that hits the spec's Table 3
// targets at the requested scale.
//
// For each vector phase it chooses how many invocations reproduce the
// phase's share of the vector-operation target (plus one partial
// invocation for the remainder), then soaks the remaining scalar-
// instruction budget with iterations of the "serial" loop. It fails if
// the vector loops' own control overhead already exceeds the scalar
// budget by more than 10% — that means the recipe's loop bodies are too
// small for the program being modelled.
func plan(c *vcomp.Compiled, s *Spec, phases []phase, scale float64) ([]vcomp.Invocation, error) {
	opsTarget := s.OpsM * 1e6 * scale
	scalarTarget := s.ScalarM * 1e6 * scale

	var shareSum float64
	for _, ph := range phases {
		shareSum += ph.share
	}
	if len(phases) == 0 || shareSum < 0.99 || shareSum > 1.01 {
		return nil, fmt.Errorf("phase shares sum to %.3f, want 1", shareSum)
	}

	type phasePlan struct {
		unit     int
		n        int64
		full     int64 // full invocations
		partialN int64 // trip count of one final partial invocation (0 = none)
	}
	plans := make([]phasePlan, 0, len(phases))
	var scalarSpent float64

	for _, ph := range phases {
		unit := c.UnitIndex(ph.unit)
		if unit < 0 {
			return nil, fmt.Errorf("phase names unknown unit %q", ph.unit)
		}
		scInv, vecInv, opsInv := c.EstimateInvocation(unit, ph.n)
		if vecInv == 0 || opsInv == 0 {
			return nil, fmt.Errorf("unit %q is not a vector loop", ph.unit)
		}
		want := opsTarget * ph.share
		full := int64(want / float64(opsInv))
		rem := want - float64(full)*float64(opsInv)
		opsPerElem := float64(opsInv) / float64(ph.n)
		partialN := int64(rem / opsPerElem)
		pp := phasePlan{unit: unit, n: ph.n, full: full, partialN: partialN}
		plans = append(plans, pp)

		scalarSpent += float64(full * scInv)
		if partialN > 0 {
			scP, _, _ := c.EstimateInvocation(unit, partialN)
			scalarSpent += float64(scP)
		}
	}

	// Serial-loop budget.
	serial := c.UnitIndex("serial")
	if serial < 0 {
		return nil, fmt.Errorf("kernel has no serial loop")
	}
	residual := scalarTarget - scalarSpent
	if residual < -0.10*scalarTarget {
		// At the reference vector length this means the recipe's loop
		// bodies are too small for the program being modelled — a bug in
		// the recipe. At a swept (shorter) register length the extra
		// strip-control overhead is the modelled machine's own cost:
		// keep the schedule and let the workload carry the higher scalar
		// fraction, which is exactly what short registers do.
		if c.RegFile().VLen == isa.MaxVL {
			return nil, fmt.Errorf("vector loop control overhead (%.0f) exceeds scalar budget (%.0f); enlarge loop bodies",
				scalarSpent, scalarTarget)
		}
	}
	sc1, _, _ := c.EstimateInvocation(serial, 1)
	sc2, _, _ := c.EstimateInvocation(serial, 2)
	perIter := sc2 - sc1
	entry := sc1 - perIter
	var serialIters int64
	if residual > float64(entry) && perIter > 0 {
		serialIters = int64(residual / float64(perIter))
	}

	// Interleave: split every phase's invocations (and the serial
	// iterations) across interleaveGroups rounds.
	groups := int64(interleaveGroups)
	var sched []vcomp.Invocation
	for g := int64(0); g < groups; g++ {
		for _, pp := range plans {
			count := pp.full / groups
			if g < pp.full%groups {
				count++
			}
			for i := int64(0); i < count; i++ {
				sched = append(sched, vcomp.Invocation{Unit: pp.unit, N: pp.n})
			}
		}
		iters := serialIters / groups
		if g < serialIters%groups {
			iters++
		}
		if iters > 0 {
			sched = append(sched, vcomp.Invocation{Unit: serial, N: iters})
		}
	}
	for _, pp := range plans {
		if pp.partialN > 0 {
			sched = append(sched, vcomp.Invocation{Unit: pp.unit, N: pp.partialN})
		}
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("empty schedule at scale %g; increase scale", scale)
	}
	return sched, nil
}
