package workload

import (
	"sync"

	"mtvec/internal/kernel"
)

// The ten benchmark reconstructions, in Table 3 order. Each recipe picks
// loop shapes and per-invocation trip counts so that the calibration
// planner can hit the published scalar/vector instruction counts, vector
// operation counts and average vector lengths:
//
//   - trip counts set the average vector length (n/ceil(n/MaxVL));
//   - loop body sizes set the vector-control-to-vector-instruction ratio;
//   - the serial loop soaks the remaining scalar budget.
//
// Loop flavours follow the source programs: swm256 is a wide shallow-
// water stencil; hydro2d and tomcatv are relaxation stencils; arc2d mixes
// in square roots; flo52 is a multigrid mix; nasa7 includes strided
// column walks (its matrix/FFT kernels); su2cor is dot-product heavy with
// a large scalar Monte Carlo part; bdna and trfd use gather/scatter and
// short vectors; dyfesm is short-vector finite elements with scatters.

// Specs returns the ten benchmark specs. The specs themselves are built
// once and shared (they are immutable recipes); each call returns a
// fresh slice so callers may reorder freely.
func Specs() []*Spec {
	specsOnce.Do(func() { specsShared = buildSpecs() })
	out := make([]*Spec, len(specsShared))
	copy(out, specsShared)
	return out
}

var (
	specsOnce   sync.Once
	specsShared []*Spec
)

func buildSpecs() []*Spec {
	return []*Spec{
		{
			Name: "swm256", Short: "sw", Suite: "Spec",
			ScalarM: 6.2, VectorM: 74.5, OpsM: 9534.3, PctVect: 99.9, AvgVL: 127,
			build: func() (*kernel.Kernel, []phase) {
				k := &kernel.Kernel{Name: "swm256", Units: []kernel.Unit{
					stencilLoop("shallow", 0x1000_0000, 9),
				}}
				return k, []phase{{unit: "shallow", n: 25600, share: 1.0}}
			},
		},
		{
			Name: "hydro2d", Short: "hy", Suite: "Spec",
			ScalarM: 41.5, VectorM: 39.2, OpsM: 3973.8, PctVect: 99.0, AvgVL: 101,
			build: func() (*kernel.Kernel, []phase) {
				k := &kernel.Kernel{Name: "hydro2d", Units: []kernel.Unit{
					stencilLoop("gas", 0x1000_0000, 3),
					axpyLoop("flux", 0x2000_0000),
				}}
				return k, []phase{
					{unit: "gas", n: 101, share: 0.7},
					{unit: "flux", n: 101, share: 0.3},
				}
			},
		},
		{
			Name: "arc2d", Short: "sr", Suite: "Perf.",
			ScalarM: 63.3, VectorM: 42.9, OpsM: 4086.5, PctVect: 98.5, AvgVL: 95,
			build: func() (*kernel.Kernel, []phase) {
				k := &kernel.Kernel{Name: "arc2d", Units: []kernel.Unit{
					sqrtLoop("visc", 0x1000_0000),
					stencilLoop("euler", 0x2000_0000, 2),
					axpyLoop("rhs", 0x3000_0000),
				}}
				return k, []phase{
					{unit: "visc", n: 95, share: 0.4},
					{unit: "euler", n: 95, share: 0.4},
					{unit: "rhs", n: 95, share: 0.2},
				}
			},
		},
		{
			Name: "flo52", Short: "tf", Suite: "Perf.",
			ScalarM: 37.7, VectorM: 22.8, OpsM: 1242.0, PctVect: 97.1, AvgVL: 54,
			build: func() (*kernel.Kernel, []phase) {
				k := &kernel.Kernel{Name: "flo52", Units: []kernel.Unit{
					stencilLoop("euler", 0x1000_0000, 2),
					axpyLoop("smooth", 0x2000_0000),
				}}
				return k, []phase{
					{unit: "euler", n: 54, share: 0.5},
					{unit: "smooth", n: 54, share: 0.5},
				}
			},
		},
		{
			Name: "nasa7", Short: "a7", Suite: "Spec",
			ScalarM: 152.4, VectorM: 67.3, OpsM: 3911.9, PctVect: 96.2, AvgVL: 58,
			build: func() (*kernel.Kernel, []phase) {
				k := &kernel.Kernel{Name: "nasa7", Units: []kernel.Unit{
					colLoop("mxm", 0x1000_0000, 1024),
					axpyLoop("vpenta", 0x2000_0000),
					dotLoop("emit", 0x3000_0000),
				}}
				return k, []phase{
					{unit: "mxm", n: 58, share: 0.4},
					{unit: "vpenta", n: 58, share: 0.3},
					{unit: "emit", n: 58, share: 0.3},
				}
			},
		},
		{
			Name: "su2cor", Short: "su", Suite: "Spec",
			ScalarM: 152.6, VectorM: 26.8, OpsM: 3356.8, PctVect: 95.7, AvgVL: 125,
			build: func() (*kernel.Kernel, []phase) {
				k := &kernel.Kernel{Name: "su2cor", Units: []kernel.Unit{
					dotLoop("gauge", 0x1000_0000),
					axpyLoop("update", 0x2000_0000),
				}}
				return k, []phase{
					{unit: "gauge", n: 2004, share: 0.5},
					{unit: "update", n: 2004, share: 0.5},
				}
			},
		},
		{
			Name: "tomcatv", Short: "to", Suite: "Spec",
			ScalarM: 125.8, VectorM: 7.2, OpsM: 916.8, PctVect: 87.9, AvgVL: 127,
			build: func() (*kernel.Kernel, []phase) {
				k := &kernel.Kernel{Name: "tomcatv", Units: []kernel.Unit{
					stencilLoop("mesh", 0x1000_0000, 2),
				}}
				return k, []phase{{unit: "mesh", n: 382, share: 1.0}}
			},
		},
		{
			Name: "bdna", Short: "na", Suite: "Perf.",
			// The scan of Table 3 prints 23.9M scalar instructions, but
			// that is inconsistent with the row's own 86.9% degree of
			// vectorization (the formula reproduces every other row);
			// 239.6M makes the row self-consistent. See DESIGN.md.
			ScalarM: 239.6, VectorM: 19.6, OpsM: 1589.9, PctVect: 86.9, AvgVL: 81,
			build: func() (*kernel.Kernel, []phase) {
				dna := gatherChainLoop("dna", 0x1000_0000)
				k := &kernel.Kernel{Name: "bdna", Units: []kernel.Unit{
					dna,
					scatterLoop("force", 0x2000_0000),
				}}
				return k, []phase{
					{unit: "dna", n: 81, share: 0.7},
					{unit: "force", n: 81, share: 0.3},
				}
			},
		},
		{
			Name: "trfd", Short: "ti", Suite: "Perf.",
			ScalarM: 352.2, VectorM: 49.5, OpsM: 1095.3, PctVect: 75.7, AvgVL: 22,
			build: func() (*kernel.Kernel, []phase) {
				k := &kernel.Kernel{Name: "trfd", Units: []kernel.Unit{
					axpyLoop("integrals", 0x1000_0000),
					dotLoop("transform", 0x2000_0000),
					gatherLoop("pairs", 0x3000_0000),
				}}
				return k, []phase{
					{unit: "integrals", n: 22, share: 0.5},
					{unit: "transform", n: 22, share: 0.3},
					{unit: "pairs", n: 22, share: 0.2},
				}
			},
		},
		{
			Name: "dyfesm", Short: "sd", Suite: "Perf.",
			ScalarM: 236.1, VectorM: 33.0, OpsM: 696.2, PctVect: 74.7, AvgVL: 21,
			build: func() (*kernel.Kernel, []phase) {
				k := &kernel.Kernel{Name: "dyfesm", Units: []kernel.Unit{
					stencilLoop("elem", 0x1000_0000, 1),
					scatterLoop("assembly", 0x2000_0000),
				}}
				return k, []phase{
					{unit: "elem", n: 21, share: 0.5},
					{unit: "assembly", n: 21, share: 0.5},
				}
			},
		},
	}
}

// gatherChainLoop is bdna's main kernel: a gather-multiply-accumulate
// followed by dependent element-wise statements, keeping the body large
// enough that strip control stays within the program's small scalar
// budget.
func gatherChainLoop(name string, base uint64) *kernel.VectorLoop {
	data := &kernel.Array{Name: name + ".data", Base: base, Stride: 8}
	idx := &kernel.Array{Name: name + ".idx", Base: base + 1<<20, Stride: 8}
	x := &kernel.Array{Name: name + ".x", Base: base + 2<<20, Stride: 8}
	y := &kernel.Array{Name: name + ".y", Base: base + 3<<20, Stride: 8}
	out := &kernel.Array{Name: name + ".out", Base: base + 4<<20, Stride: 8}
	out2 := &kernel.Array{Name: name + ".out2", Base: base + 5<<20, Stride: 8}
	out3 := &kernel.Array{Name: name + ".out3", Base: base + 6<<20, Stride: 8}
	return &kernel.VectorLoop{Name: name, Body: []kernel.Stmt{
		{Dst: out, E: &kernel.Bin{Op: kernel.Add,
			L: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "g"}, R: &kernel.Gather{Data: data, Index: idx}},
			R: &kernel.Ref{Arr: y}}},
		{Dst: out2, E: &kernel.Bin{Op: kernel.Add, L: &kernel.Ref{Arr: x}, R: &kernel.Ref{Arr: y}}},
		{Dst: out3, E: &kernel.Bin{Op: kernel.Mul, L: &kernel.ScalarArg{Name: "c"}, R: &kernel.Ref{Arr: out2}}},
	}}
}
