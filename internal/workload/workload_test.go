package workload

import (
	"math"
	"testing"

	"mtvec/internal/isa"
)

// testScale keeps the calibration tests fast while large enough that
// rounding effects stay small.
const testScale = 1e-4

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestTenSpecs(t *testing.T) {
	specs := Specs()
	if len(specs) != 10 {
		t.Fatalf("specs = %d, want 10", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Short] {
			t.Errorf("duplicate short name %q", s.Short)
		}
		seen[s.Short] = true
		if s.Suite != "Spec" && s.Suite != "Perf." {
			t.Errorf("%s: bad suite %q", s.Name, s.Suite)
		}
	}
}

func TestCalibrationMatchesTable3(t *testing.T) {
	// The heart of the reproduction's workload substitution: every
	// benchmark's dynamic profile must match its Table 3 row.
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			w, err := s.Build(testScale)
			if err != nil {
				t.Fatal(err)
			}
			st := &w.Stats

			wantS := s.ScalarM * 1e6 * testScale
			wantV := s.VectorM * 1e6 * testScale
			wantOps := s.OpsM * 1e6 * testScale

			if e := relErr(float64(st.VectorOps), wantOps); e > 0.03 {
				t.Errorf("vector ops = %d, want %.0f (err %.1f%%)", st.VectorOps, wantOps, 100*e)
			}
			if e := relErr(float64(st.VectorInsts), wantV); e > 0.08 {
				t.Errorf("vector insts = %d, want %.0f (err %.1f%%)", st.VectorInsts, wantV, 100*e)
			}
			if e := relErr(float64(st.ScalarInsts), wantS); e > 0.12 {
				t.Errorf("scalar insts = %d, want %.0f (err %.1f%%)", st.ScalarInsts, wantS, 100*e)
			}
			if e := relErr(st.AvgVL(), s.AvgVL); e > 0.06 {
				t.Errorf("avg VL = %.1f, want %.0f (err %.1f%%)", st.AvgVL(), s.AvgVL, 100*e)
			}
			if d := math.Abs(st.PctVectorized() - s.PctVect); d > 1.5 {
				t.Errorf("%% vectorized = %.1f, want %.1f", st.PctVectorized(), s.PctVect)
			}
		})
	}
}

func TestVectorizationOrderingPreserved(t *testing.T) {
	// Table 3 orders the programs by decreasing vectorization; the
	// reconstructions must preserve that ordering property.
	ws, err := BuildAll(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ws); i++ {
		prev, cur := ws[i-1].Stats.PctVectorized(), ws[i].Stats.PctVectorized()
		if cur > prev+1.0 {
			t.Errorf("%s (%.1f%%) more vectorized than %s (%.1f%%)",
				ws[i].Spec.Name, cur, ws[i-1].Spec.Name, prev)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	s := ByShort("tf")
	w1, err := s.Build(testScale)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Build(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Stats != w2.Stats {
		t.Fatal("two builds of the same spec differ")
	}
	if len(w1.Trace.BBs) != len(w2.Trace.BBs) {
		t.Fatal("trace lengths differ across builds")
	}
}

func TestScaleLinearity(t *testing.T) {
	// Doubling the scale must roughly double every dynamic count.
	s := ByShort("hy")
	w1, err := s.Build(testScale)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Build(2 * testScale)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(w2.Stats.VectorOps) / float64(w1.Stats.VectorOps)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("ops ratio = %.2f, want ~2", ratio)
	}
}

func TestLookupHelpers(t *testing.T) {
	if ByShort("sw") == nil || ByShort("zz") != nil {
		t.Error("ByShort broken")
	}
	if ByName("tomcatv") == nil || ByName("nope") != nil {
		t.Error("ByName broken")
	}
	if ByShort("sw").Name != "swm256" {
		t.Error("sw is not swm256")
	}
}

func TestQueueOrder(t *testing.T) {
	q := QueueOrder()
	want := []string{"flo52", "swm256", "su2cor", "trfd", "tomcatv", "nasa7", "hydro2d", "bdna", "arc2d", "dyfesm"}
	if len(q) != len(want) {
		t.Fatalf("queue has %d entries", len(q))
	}
	for i, s := range q {
		if s == nil || s.Name != want[i] {
			t.Errorf("queue[%d] = %v, want %s", i, s, want[i])
		}
	}
}

func TestDefaultGroupings(t *testing.T) {
	g := DefaultGroupings()
	if len(g.Col2) != 5 || len(g.Col3) != 2 || len(g.Col4) != 1 {
		t.Fatalf("grouping sizes %d/%d/%d, want 5/2/1", len(g.Col2), len(g.Col3), len(g.Col4))
	}
	// Figure 7 caption: hydro2d's 2-thread companions.
	wantCol2 := map[string]bool{"hy": true, "na": true, "su": true, "to": true, "sw": true}
	for _, s := range g.Col2 {
		if !wantCol2[s.Short] {
			t.Errorf("unexpected column-2 program %s", s.Short)
		}
	}
}

func TestBuildRejectsBadScale(t *testing.T) {
	if _, err := ByShort("sw").Build(0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := ByShort("sw").Build(-1); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestWorkloadStreamsRestart(t *testing.T) {
	// Two streams from the same workload yield identical instruction
	// sequences (companion threads restart programs in the paper's
	// methodology).
	w, err := ByShort("sd").Build(testScale)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := w.Stream(), w.Stream()
	var d1, d2 isa.DynInst
	n := 0
	for n < 5000 {
		ok1 := s1.Next(&d1)
		ok2 := s2.Next(&d2)
		if ok1 != ok2 {
			t.Fatal("streams end at different points")
		}
		if !ok1 {
			break
		}
		if d1 != d2 {
			t.Fatalf("instruction %d differs", n)
		}
		n++
	}
}

func TestWorkloadMixProperties(t *testing.T) {
	// Flavour checks: bdna/trfd gather, dyfesm scatters, arc2d sqrt,
	// nasa7 strided column walks with extra SetVS traffic.
	ws := map[string]*Workload{}
	for _, sh := range []string{"na", "ti", "sd", "sr", "a7", "sw"} {
		w, err := ByShort(sh).Build(testScale)
		if err != nil {
			t.Fatal(err)
		}
		ws[sh] = w
	}
	if ws["na"].Stats.PerOp[isa.OpVGather] == 0 {
		t.Error("bdna has no gathers")
	}
	if ws["ti"].Stats.PerOp[isa.OpVGather] == 0 {
		t.Error("trfd has no gathers")
	}
	if ws["sd"].Stats.PerOp[isa.OpVScatter] == 0 {
		t.Error("dyfesm has no scatters")
	}
	if ws["sr"].Stats.PerOp[isa.OpVSqrt] == 0 {
		t.Error("arc2d has no square roots")
	}
	if ws["a7"].Stats.PerOp[isa.OpSetVS] <= ws["sw"].Stats.PerOp[isa.OpSetVS] {
		t.Error("nasa7 should have more stride traffic than swm256")
	}
}
