package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mtvec/internal/isa"
	"mtvec/internal/prog"
)

func sampleProgram() *prog.Program {
	return &prog.Program{
		Name: "sample",
		Blocks: []prog.BasicBlock{
			{Label: "head", Insts: []isa.Inst{
				{Op: isa.OpSetVS, Src1: isa.A(0)},
				{Op: isa.OpSetVL, Src1: isa.A(1)},
			}},
			{Label: "body", Insts: []isa.Inst{
				{Op: isa.OpVLoad, Dst: isa.V(0), Src1: isa.A(2)},
				{Op: isa.OpVMulS, Dst: isa.V(1), Src1: isa.V(0), Src2: isa.S(1)},
				{Op: isa.OpVStore, Src1: isa.V(1), Src2: isa.A(3)},
				{Op: isa.OpBr, Src1: isa.S(0)},
			}},
		},
	}
}

func sampleTrace(iters int) *Trace {
	t := &Trace{Prog: sampleProgram()}
	t.BBs = append(t.BBs, 0)
	t.VLs = []int64{96}
	t.Strides = []int64{8}
	for i := 0; i < iters; i++ {
		t.BBs = append(t.BBs, 1)
		t.Addrs = append(t.Addrs, uint64(0x10000+i*96*8), uint64(0x80000+i*96*8))
	}
	return t
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace(10)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Prog.Name != tr.Prog.Name {
		t.Errorf("name %q != %q", got.Prog.Name, tr.Prog.Name)
	}
	if !reflect.DeepEqual(got.BBs, tr.BBs) || !reflect.DeepEqual(got.VLs, tr.VLs) ||
		!reflect.DeepEqual(got.Strides, tr.Strides) || !reflect.DeepEqual(got.Addrs, tr.Addrs) {
		t.Error("stream sections did not round-trip")
	}
	for i, b := range got.Prog.Blocks {
		if !reflect.DeepEqual(b.Insts, tr.Prog.Blocks[i].Insts) {
			t.Errorf("block %d instructions differ", i)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	// Property: arbitrary random (but well-formed) traces round-trip.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := &Trace{Prog: sampleProgram()}
		n := r.Intn(50) + 1
		addr := uint64(r.Int63())
		for i := 0; i < n; i++ {
			tr.BBs = append(tr.BBs, int32(r.Intn(2)))
			if r.Intn(3) == 0 {
				tr.VLs = append(tr.VLs, int64(r.Intn(isa.MaxVL)+1))
			}
			if r.Intn(5) == 0 {
				tr.Strides = append(tr.Strides, int64(r.Intn(4096)-2048))
			}
			// Addresses wander both directions to exercise the
			// signed delta encoding.
			addr += uint64(int64(r.Intn(1<<20) - 1<<19))
			tr.Addrs = append(tr.Addrs, addr)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.BBs, tr.BBs) &&
			reflect.DeepEqual(got.VLs, tr.VLs) &&
			reflect.DeepEqual(got.Strides, tr.Strides) &&
			reflect.DeepEqual(got.Addrs, tr.Addrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	tr := sampleTrace(8)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a byte somewhere in the middle of the stream sections.
	for _, pos := range []int{len(raw) / 2, len(raw) - 5, 10} {
		cp := append([]byte(nil), raw...)
		cp[pos] ^= 0x40
		if _, err := Decode(bytes.NewReader(cp)); err == nil {
			t.Errorf("corruption at byte %d went undetected", pos)
		}
	}
}

func TestDecodeRejectsBadHeader(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOPE!"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(bytes.NewReader([]byte{'M', 'T', 'V', 'T', 99})); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	tr := sampleTrace(8)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{6, len(raw) / 3, len(raw) - 3} {
		if _, err := Decode(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestReplaySourceMatchesSlices(t *testing.T) {
	tr := sampleTrace(4)
	src := tr.Source()
	var bbs []int
	for {
		b, ok := src.NextBB()
		if !ok {
			break
		}
		bbs = append(bbs, b)
	}
	if len(bbs) != len(tr.BBs) {
		t.Fatalf("replayed %d blocks, want %d", len(bbs), len(tr.BBs))
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
	// Draining past the end of a value stream is an error.
	src2 := tr.Source()
	for i := 0; i <= len(tr.VLs); i++ {
		src2.NextVL()
	}
	if src2.Err() == nil {
		t.Error("over-reading VL stream not reported")
	}
}

func TestRecordThenReplayIdentity(t *testing.T) {
	// Record from a SliceSource, replay the trace, and compare the two
	// dynamic instruction streams instruction by instruction.
	p := sampleProgram()
	mkSrc := func() *prog.SliceSource {
		return &prog.SliceSource{
			BBs:     []int{0, 1, 1, 1},
			VLs:     []int64{64},
			Strides: []int64{8},
			Addrs:   []uint64{1, 2, 3, 4, 5, 6},
		}
	}
	tr, err := Record(p, mkSrc(), 0)
	if err != nil {
		t.Fatal(err)
	}

	want := prog.NewStream(p, mkSrc())
	got := tr.Stream()
	var dw, dg isa.DynInst
	for {
		okW := want.Next(&dw)
		okG := got.Next(&dg)
		if okW != okG {
			t.Fatalf("stream lengths differ (want-ok=%v got-ok=%v)", okW, okG)
		}
		if !okW {
			break
		}
		if dw != dg {
			t.Fatalf("instruction differs:\n  direct: %v\n  replay: %v", &dw, &dg)
		}
	}
	if want.Err() != nil || got.Err() != nil {
		t.Fatal(want.Err(), got.Err())
	}
}

func TestRecordHonorsMaxInsts(t *testing.T) {
	p := sampleProgram()
	src := &prog.SliceSource{
		BBs:     []int{0, 1, 1, 1, 1, 1},
		VLs:     []int64{64},
		Strides: []int64{8},
		Addrs:   []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	tr, err := Record(p, src, 5)
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := tr.Stream().Drain()
	if err != nil {
		t.Fatal(err)
	}
	// Recording stops at the first block boundary at or after maxInsts.
	if n < 5 || n > 7 {
		t.Fatalf("recorded %d dynamic instructions, want ~5", n)
	}
}

func TestRecordPropagatesSourceError(t *testing.T) {
	p := sampleProgram()
	src := &prog.SliceSource{BBs: []int{0, 1}, VLs: []int64{64}, Strides: []int64{8}}
	if _, err := Record(p, src, 0); err == nil {
		t.Fatal("source error not propagated")
	}
}
