// Package trace is the repository's analogue of the paper's Dixie trace
// system (Section 4.1). A trace file carries a static program together
// with the four dynamic streams Dixie produced on the Convex C3480: the
// basic-block trace, the vector-length trace, the vector-stride trace and
// the memory-address trace. Replaying a trace through prog.Stream
// reconstitutes the exact dynamic instruction stream.
//
// The on-disk format is a versioned, CRC-protected varint encoding.
// Traces at the default reproduction scale are small enough to hold in
// memory, so the API is load/store of a whole Trace value.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"mtvec/internal/isa"
	"mtvec/internal/prog"
)

// Trace is a fully-captured execution of a static program.
//
// The first Stream call may predecode the whole dynamic instruction
// sequence and cache it on the Trace (see Decoded); do not mutate a
// Trace's fields after streams have been created from it.
type Trace struct {
	Prog    *prog.Program
	BBs     []int32
	VLs     []int64
	Strides []int64
	Addrs   []uint64

	// MaxVL is the hardware vector length of the machine the trace was
	// generated for: replays reset the VL register to it and clamp SetVL
	// values against it. 0 means the reference isa.MaxVL. The field is
	// runtime-only (the on-disk format does not carry it; decoded traces
	// replay at the reference length).
	MaxVL int64

	decOnce sync.Once
	dec     []prog.DecodedInst // predecoded dynamic stream, nil if unavailable
}

// maxDecodedInsts caps the predecode cache: traces whose dynamic length
// exceeds it (≈100 MB of DynInsts) replay through the TraceSource path
// instead of being materialized.
const maxDecodedInsts = 2 << 20

// Source returns a TraceSource replaying the captured streams. Each call
// returns an independent replay positioned at the beginning.
func (t *Trace) Source() prog.TraceSource {
	return &replay{t: t}
}

// Stream returns a dynamic instruction stream replaying the trace.
// Reasonably-sized traces are served from a shared predecoded instruction
// sequence, built on the first replay and bit-identical to source replay:
// the paper's methodology replays each program many times — restarting
// companions, grouped sweeps, repeated experiment points — so the
// per-instruction expansion is paid once per trace, not once per run.
// Consumers that never replay (workload builds validating through
// Source-driven streams) never pay for materialization.
func (t *Trace) Stream() *prog.Stream {
	if dec := t.Decoded(); dec != nil {
		return prog.NewDecodedStream(t.Prog, dec)
	}
	return prog.NewStreamVL(t.Prog, t.Source(), t.MaxVL)
}

// dynLen returns the trace's dynamic instruction count, without decoding.
func (t *Trace) dynLen() int64 {
	var perBlock []int64
	if t.Prog != nil {
		perBlock = make([]int64, len(t.Prog.Blocks))
		for i := range t.Prog.Blocks {
			perBlock[i] = int64(len(t.Prog.Blocks[i].Insts))
		}
	}
	var n int64
	for _, b := range t.BBs {
		// Out-of-range ids (either sign) contribute nothing here; the
		// replay itself rejects them with a proper error.
		if b >= 0 && int(b) < len(perBlock) {
			n += perBlock[b]
		}
	}
	return n
}

// Decoded returns the trace's predecoded dynamic instruction sequence,
// building and caching it on first use. It returns nil when the trace is
// too large to materialize or does not replay cleanly — callers fall back
// to Source-driven streaming, which reproduces the same sequence (and
// surfaces the same error at the same instruction, if any).
func (t *Trace) Decoded() []prog.DecodedInst {
	t.decOnce.Do(func() {
		n := t.dynLen()
		if n == 0 || n > maxDecodedInsts {
			return
		}
		dec, err := prog.DecodeAllVL(t.Prog, t.Source(), n, t.MaxVL)
		if err != nil {
			return // let the streaming path surface the error
		}
		t.dec = dec
	})
	return t.dec
}

type replay struct {
	t              *Trace
	bi, vi, si, ai int
	err            error
}

func (r *replay) NextBB() (int, bool) {
	if r.err != nil || r.bi >= len(r.t.BBs) {
		return 0, false
	}
	b := int(r.t.BBs[r.bi])
	r.bi++
	return b, true
}

func (r *replay) NextVL() int64 {
	if r.vi >= len(r.t.VLs) {
		r.err = fmt.Errorf("trace: vector-length stream exhausted")
		return 1
	}
	v := r.t.VLs[r.vi]
	r.vi++
	return v
}

func (r *replay) NextStride() int64 {
	if r.si >= len(r.t.Strides) {
		r.err = fmt.Errorf("trace: stride stream exhausted")
		return 0
	}
	v := r.t.Strides[r.si]
	r.si++
	return v
}

func (r *replay) NextAddr() uint64 {
	if r.ai >= len(r.t.Addrs) {
		r.err = fmt.Errorf("trace: address stream exhausted")
		return 0
	}
	v := r.t.Addrs[r.ai]
	r.ai++
	return v
}

func (r *replay) Err() error { return r.err }

// Record captures up to maxInsts dynamic instructions (all of them if
// maxInsts <= 0) of program p driven by src, returning the captured trace.
// This is the instrumentation step of the Dixie flow: run once, keep the
// four streams.
func Record(p *prog.Program, src prog.TraceSource, maxInsts int64) (*Trace, error) {
	t := &Trace{Prog: p}
	rec := &recorder{src: src, t: t}
	s := prog.NewStream(p, rec)
	var d isa.DynInst
	for s.Next(&d) {
		if maxInsts > 0 && s.Count() >= maxInsts {
			break
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// recorder forwards a TraceSource while appending every value drawn to
// the trace under construction.
type recorder struct {
	src prog.TraceSource
	t   *Trace
}

func (r *recorder) NextBB() (int, bool) {
	b, ok := r.src.NextBB()
	if ok {
		r.t.BBs = append(r.t.BBs, int32(b))
	}
	return b, ok
}

func (r *recorder) NextVL() int64 {
	v := r.src.NextVL()
	r.t.VLs = append(r.t.VLs, v)
	return v
}

func (r *recorder) NextStride() int64 {
	v := r.src.NextStride()
	r.t.Strides = append(r.t.Strides, v)
	return v
}

func (r *recorder) NextAddr() uint64 {
	v := r.src.NextAddr()
	r.t.Addrs = append(r.t.Addrs, v)
	return v
}

func (r *recorder) Err() error { return r.src.Err() }

// --- binary format ---

const (
	magic   = "MTVT"
	version = 1
)

// crcWriter hashes everything written through it.
type crcWriter struct{ sum uint32 }

func (c *crcWriter) Write(p []byte) (int, error) {
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p)
	return len(p), nil
}

// Encode writes the trace in the versioned binary format: header, program
// section, four delta/varint-encoded stream sections, CRC-32 trailer.
func (t *Trace) Encode(w io.Writer) error {
	var crc crcWriter
	if err := t.encodeBody(io.MultiWriter(w, &crc)); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.sum)
	_, err := w.Write(sum[:])
	return err
}

func (t *Trace) encodeBody(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	var buf []byte
	putUvarint := func(v uint64) { buf = binary.AppendUvarint(buf[:0], v); bw.Write(buf) }
	putVarint := func(v int64) { buf = binary.AppendVarint(buf[:0], v); bw.Write(buf) }
	putString := func(s string) { putUvarint(uint64(len(s))); bw.WriteString(s) }

	putString(t.Prog.Name)
	putUvarint(uint64(len(t.Prog.Blocks)))
	for _, b := range t.Prog.Blocks {
		putString(b.Label)
		putUvarint(uint64(len(b.Insts)))
		for _, in := range b.Insts {
			buf = isa.AppendInst(buf[:0], in)
			bw.Write(buf)
		}
	}

	// Basic blocks and addresses delta-encode: deltas are small for
	// loops and array walks.
	putUvarint(uint64(len(t.BBs)))
	prev := int64(0)
	for _, b := range t.BBs {
		putVarint(int64(b) - prev)
		prev = int64(b)
	}
	putUvarint(uint64(len(t.VLs)))
	for _, v := range t.VLs {
		putVarint(v)
	}
	putUvarint(uint64(len(t.Strides)))
	for _, v := range t.Strides {
		putVarint(v)
	}
	putUvarint(uint64(len(t.Addrs)))
	prevA := uint64(0)
	for _, a := range t.Addrs {
		putVarint(int64(a - prevA))
		prevA = a
	}
	return bw.Flush()
}

// Decode reads a trace previously written by Encode, verifying the
// checksum and validating the embedded program.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)

	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:4])
	}
	if head[4] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", head[4])
	}

	getUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	getVarint := func() (int64, error) { return binary.ReadVarint(br) }
	getString := func() (string, error) {
		n, err := getUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: unreasonable string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	t := &Trace{Prog: &prog.Program{}}
	var err error
	if t.Prog.Name, err = getString(); err != nil {
		return nil, fmt.Errorf("trace: program name: %w", err)
	}
	nb, err := getUvarint()
	if err != nil || nb > 1<<20 {
		return nil, fmt.Errorf("trace: block count: %w", err)
	}
	instBuf := make([]byte, 0, 32)
	for i := uint64(0); i < nb; i++ {
		var b prog.BasicBlock
		if b.Label, err = getString(); err != nil {
			return nil, fmt.Errorf("trace: block label: %w", err)
		}
		ni, err := getUvarint()
		if err != nil || ni > 1<<24 {
			return nil, fmt.Errorf("trace: inst count: %w", err)
		}
		for j := uint64(0); j < ni; j++ {
			in, err := readInst(br, &instBuf)
			if err != nil {
				return nil, fmt.Errorf("trace: block %d inst %d: %w", i, j, err)
			}
			b.Insts = append(b.Insts, in)
		}
		t.Prog.Blocks = append(t.Prog.Blocks, b)
	}

	readCount := func(what string) (uint64, error) {
		n, err := getUvarint()
		if err != nil {
			return 0, fmt.Errorf("trace: %s count: %w", what, err)
		}
		if n > 1<<32 {
			return 0, fmt.Errorf("trace: unreasonable %s count %d", what, n)
		}
		return n, nil
	}

	n, err := readCount("basic-block")
	if err != nil {
		return nil, err
	}
	if n > 0 {
		t.BBs = make([]int32, n)
	}
	prev := int64(0)
	for i := range t.BBs {
		d, err := getVarint()
		if err != nil {
			return nil, fmt.Errorf("trace: bb %d: %w", i, err)
		}
		prev += d
		t.BBs[i] = int32(prev)
	}

	if n, err = readCount("vector-length"); err != nil {
		return nil, err
	}
	if n > 0 {
		t.VLs = make([]int64, n)
	}
	for i := range t.VLs {
		if t.VLs[i], err = getVarint(); err != nil {
			return nil, fmt.Errorf("trace: vl %d: %w", i, err)
		}
	}

	if n, err = readCount("stride"); err != nil {
		return nil, err
	}
	if n > 0 {
		t.Strides = make([]int64, n)
	}
	for i := range t.Strides {
		if t.Strides[i], err = getVarint(); err != nil {
			return nil, fmt.Errorf("trace: stride %d: %w", i, err)
		}
	}

	if n, err = readCount("address"); err != nil {
		return nil, err
	}
	if n > 0 {
		t.Addrs = make([]uint64, n)
	}
	prevA := uint64(0)
	for i := range t.Addrs {
		d, err := getVarint()
		if err != nil {
			return nil, fmt.Errorf("trace: addr %d: %w", i, err)
		}
		prevA += uint64(d)
		t.Addrs[i] = prevA
	}

	var want [4]byte
	if _, err := io.ReadFull(br, want[:]); err != nil {
		return nil, fmt.Errorf("trace: reading checksum: %w", err)
	}
	// Recompute the payload checksum by re-encoding the decoded value;
	// any corruption that survived the structural checks surfaces here.
	var crc crcWriter
	if err := t.encodeBody(&crc); err != nil {
		return nil, err
	}
	if crc.sum != binary.LittleEndian.Uint32(want[:]) {
		return nil, fmt.Errorf("trace: checksum mismatch (corrupt trace)")
	}
	if err := t.Prog.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func readInst(br *bufio.Reader, buf *[]byte) (isa.Inst, error) {
	// Instructions are variable length: a fixed 7-byte head followed by
	// a varint immediate.
	b := (*buf)[:0]
	for i := 0; i < 7; i++ {
		c, err := br.ReadByte()
		if err != nil {
			return isa.Inst{}, err
		}
		b = append(b, c)
	}
	for {
		c, err := br.ReadByte()
		if err != nil {
			return isa.Inst{}, err
		}
		b = append(b, c)
		if c&0x80 == 0 {
			break
		}
	}
	*buf = b
	in, _, err := isa.DecodeInst(b)
	return in, err
}
