package trace

import (
	"bytes"
	"strings"
	"testing"

	"mtvec/internal/isa"
	"mtvec/internal/prog"
)

// allOpsTrace exercises every opcode the exporter can name, including
// both stride disciplines, so the round-trip test covers the whole
// mnemonic table.
func allOpsTrace() *Trace {
	blocks := []prog.BasicBlock{{Label: "all", Insts: []isa.Inst{
		{Op: isa.OpNop},
		{Op: isa.OpMovI, Dst: isa.A(2), Src2: isa.Imm(), Imm: 0x1000},
		{Op: isa.OpAAdd, Dst: isa.A(3), Src1: isa.A(2), Src2: isa.Imm(), Imm: 8},
		{Op: isa.OpAShl, Dst: isa.A(3), Src1: isa.A(3), Src2: isa.Imm(), Imm: 3},
		{Op: isa.OpSAddI, Dst: isa.S(1), Src1: isa.S(1), Src2: isa.S(2)},
		{Op: isa.OpSMulI, Dst: isa.S(1), Src1: isa.S(1), Src2: isa.S(2)},
		{Op: isa.OpSDivI, Dst: isa.S(1), Src1: isa.S(1), Src2: isa.S(2)},
		{Op: isa.OpSLogic, Dst: isa.S(1), Src1: isa.S(1), Src2: isa.S(2)},
		{Op: isa.OpSShift, Dst: isa.S(1), Src1: isa.S(1), Src2: isa.Imm(), Imm: 2},
		{Op: isa.OpSCmp, Dst: isa.S(1), Src1: isa.S(1), Src2: isa.S(2)},
		{Op: isa.OpSAdd, Dst: isa.S(3), Src1: isa.S(1), Src2: isa.S(2)},
		{Op: isa.OpSMul, Dst: isa.S(3), Src1: isa.S(1), Src2: isa.S(2)},
		{Op: isa.OpSDiv, Dst: isa.S(3), Src1: isa.S(1), Src2: isa.S(2)},
		{Op: isa.OpSSqrt, Dst: isa.S(3), Src1: isa.S(3)},
		{Op: isa.OpSLoad, Dst: isa.S(4), Src1: isa.A(2)},
		{Op: isa.OpSStore, Src1: isa.S(4), Src2: isa.A(2)},
		{Op: isa.OpSetVS, Src1: isa.A(0)},
		{Op: isa.OpSetVL, Src1: isa.A(1)},
		{Op: isa.OpVAdd, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2)},
		{Op: isa.OpVSub, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2)},
		{Op: isa.OpVMul, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2)},
		{Op: isa.OpVDiv, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2)},
		{Op: isa.OpVSqrt, Dst: isa.V(0), Src1: isa.V(1)},
		{Op: isa.OpVAnd, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2)},
		{Op: isa.OpVOr, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2)},
		{Op: isa.OpVXor, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2)},
		{Op: isa.OpVShl, Dst: isa.V(0), Src1: isa.V(1)},
		{Op: isa.OpVShr, Dst: isa.V(0), Src1: isa.V(1)},
		{Op: isa.OpVCmp, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2)},
		{Op: isa.OpVMerge, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.V(2)},
		{Op: isa.OpVAddS, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.S(1)},
		{Op: isa.OpVMulS, Dst: isa.V(0), Src1: isa.V(1), Src2: isa.S(1)},
		{Op: isa.OpVRedAdd, Dst: isa.S(5), Src1: isa.V(0)},
		{Op: isa.OpVLoad, Dst: isa.V(3), Src1: isa.A(2)},
		{Op: isa.OpVStore, Src1: isa.V(3), Src2: isa.A(3)},
		{Op: isa.OpVGather, Dst: isa.V(4), Src1: isa.V(5), Src2: isa.A(2)},
		{Op: isa.OpVScatter, Src1: isa.V(4), Src2: isa.V(5)},
		{Op: isa.OpBr, Src1: isa.S(0)},
		{Op: isa.OpJmp},
	}}}
	return &Trace{
		Prog:    &prog.Program{Name: "allops", Blocks: blocks},
		BBs:     []int32{0},
		VLs:     []int64{64},
		Strides: []int64{16}, // non-unit: exercises vlse64/vsse64 spellings
		Addrs:   []uint64{0x100, 0x108, 0x2000, 0x3000, 0x4000, 0x5000},
	}
}

// sameReplay fails the test unless the two traces expand to identical
// dynamic instruction streams (program counters aside — the importer
// rebuilds the static layout).
func sameReplay(t *testing.T, want, got *Trace) {
	t.Helper()
	s1 := prog.NewStreamVL(want.Prog, want.Source(), want.MaxVL)
	s2 := prog.NewStreamVL(got.Prog, got.Source(), got.MaxVL)
	var d1, d2 isa.DynInst
	for i := 0; ; i++ {
		ok1, ok2 := s1.Next(&d1), s2.Next(&d2)
		if ok1 != ok2 {
			t.Fatalf("stream lengths differ at dynamic instruction %d (want ended: %v, got ended: %v)", i, !ok1, !ok2)
		}
		if !ok1 {
			break
		}
		d1.PC, d2.PC = 0, 0
		if d1 != d2 {
			t.Fatalf("dynamic instruction %d differs:\nwant %v\ngot  %v", i, &d1, &d2)
		}
	}
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
}

func exportString(t *testing.T, tr *Trace) string {
	t.Helper()
	var buf bytes.Buffer
	if err := ExportRVV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func mustImport(t *testing.T, text string) *Trace {
	t.Helper()
	tr, err := ImportRVV(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRVVRoundTripAllOps(t *testing.T) {
	tr := allOpsTrace()
	text := exportString(t, tr)
	got := mustImport(t, text)
	if got.Prog.Name != "allops" {
		t.Errorf("program name = %q", got.Prog.Name)
	}
	if got.MaxVL != isa.MaxVL {
		t.Errorf("MaxVL = %d, want %d", got.MaxVL, isa.MaxVL)
	}
	sameReplay(t, tr, got)
}

func TestRVVRoundTripLoop(t *testing.T) {
	tr := sampleTrace(25)
	got := mustImport(t, exportString(t, tr))
	sameReplay(t, tr, got)
	// And the canonical text is a fixed point: exporting the imported
	// trace reproduces it byte for byte.
	if again := exportString(t, got); again != exportString(t, tr) {
		t.Error("canonical export is not a fixed point under import")
	}
}

func TestRVVImportHeaders(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
	}{
		{"empty", "", "missing"},
		{"no-format", "vfadd.vv v0, v1, v2\n", "missing"},
		{"version-mismatch", "format: mtvrvv/2\nnop\n", `unsupported format "mtvrvv/2"`},
		{"bad-vlen", "format: mtvrvv/1\nvlen: 0\nnop\n", "out of range"},
		{"huge-vlen", "format: mtvrvv/1\nvlen: 8192\nnop\n", "out of range"},
		{"unknown-header", "format: mtvrvv/1\nflavour: salty\nnop\n", "unknown header"},
		{"late-header", "format: mtvrvv/1\nnop\nvlen: 64\n", "after the first instruction"},
		{"no-insts", "format: mtvrvv/1\nname: empty\n", "no instructions"},
		{"empty-name", "format: mtvrvv/1\nname:\nnop\n", "empty program name"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ImportRVV(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRVVImportJoinedDiagnostics(t *testing.T) {
	in := `format: mtvrvv/1
bogus v0
vfadd.vv v0
li a0
vle64.v v0, a2
`
	_, err := ImportRVV(strings.NewReader(in))
	if err == nil {
		t.Fatal("corrupt trace accepted")
	}
	msg := err.Error()
	// One pass reports every defective line, not just the first.
	for _, want := range []string{"4 error(s)", "line 2:", "line 3:", "line 4:", "line 5:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostics %q missing %q", msg, want)
		}
	}
}

func TestRVVImportErrorCap(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("format: mtvrvv/1\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("bogus v0\n")
	}
	_, err := ImportRVV(strings.NewReader(sb.String()))
	if err == nil {
		t.Fatal("accepted")
	}
	if !strings.Contains(err.Error(), "too many errors") {
		t.Fatalf("unbounded diagnostics: %q", err)
	}
}

func TestRVVImportBadLines(t *testing.T) {
	for _, tc := range []struct {
		name, line, want string
	}{
		{"unknown-mnemonic", "vmacc.vv v0, v1, v2", "unknown mnemonic"},
		{"missing-operand", "vfadd.vv v0, v1", "missing a register"},
		{"leftover-operand", "vfsqrt.v v0, v1, v2", "leftover"},
		{"missing-addr", "vle64.v v0, a2", "needs an @0x"},
		{"addr-on-arith", "vfadd.vv v0, v1, v2 @0x10", "cannot take an address"},
		{"stride-on-indexed", "vluxei64.v v0, v1, a2, 16 @0x10", "cannot take a stride"},
		{"stride-on-unit", "vle64.v v0, a2, 16 @0x10", "does not take a stride"},
		{"missing-stride", "vlse64.v v0, a2 @0x10", "explicit byte stride"},
		{"mask-on-scalar", "fadd.d s1, s2, s3, v0.t", "cannot take a mask"},
		{"bad-register", "vfadd.vv v0, v1, vx", "bad register"},
		{"bad-mask", "vfadd.vv v0, v1, v2, s0.t", "bad mask"},
		{"bad-addr", "vle64.v v0, a2 @zzz", "bad address"},
		{"reg-range", "vfadd.vv v0, v1, v99", "out of range"},
		{"bad-setvl", "vsetvl a1", "wants a register and a value"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := "format: mtvrvv/1\n" + tc.line + "\n"
			_, err := ImportRVV(strings.NewReader(in))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// drainOps replays a trace and returns the opcode sequence.
func drainOps(t *testing.T, tr *Trace) []isa.Op {
	t.Helper()
	s := prog.NewStreamVL(tr.Prog, tr.Source(), tr.MaxVL)
	var d isa.DynInst
	var ops []isa.Op
	for s.Next(&d) {
		ops = append(ops, d.Op)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return ops
}

func opsEqual(a, b []isa.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRVVImportLMUL(t *testing.T) {
	// m2 over AVL 256 at vlen 128: each grouped instruction becomes two
	// full-length parts on consecutive registers.
	tr := mustImport(t, `format: mtvrvv/1
name: lmul
vlen: 128
vsetvli 256 m2
vfadd.vv v0, v2, v4
vle64.v v6, a2 @0x1000
`)
	_, st, err := prog.NewStreamVL(tr.Prog, tr.Source(), tr.MaxVL).Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.VectorArithElems != 256 {
		t.Errorf("arith elements = %d, want 256", st.VectorArithElems)
	}
	if st.VectorMemElems != 256 {
		t.Errorf("memory elements = %d, want 256", st.VectorMemElems)
	}
	want := []isa.Op{isa.OpVAdd, isa.OpVAdd, isa.OpVLoad, isa.OpVLoad}
	if got := drainOps(t, tr); !opsEqual(got, want) {
		t.Errorf("ops = %v, want %v", got, want)
	}
	// The second load part advances by one register and one vector's
	// worth of bytes.
	if tr.Addrs[1] != 0x1000+128*8 {
		t.Errorf("part 1 address = %#x", tr.Addrs[1])
	}
}

func TestRVVImportLMULTail(t *testing.T) {
	// AVL 130 at vlen 128 m2: a full part then a 2-element tail part.
	tr := mustImport(t, `format: mtvrvv/1
vlen: 128
vsetvli 130 m2
vfadd.vv v0, v2, v4
`)
	_, st, err := prog.NewStreamVL(tr.Prog, tr.Source(), tr.MaxVL).Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.VectorArithElems != 130 {
		t.Errorf("arith elements = %d, want 130", st.VectorArithElems)
	}
	want := []isa.Op{isa.OpVAdd, isa.OpSetVL, isa.OpVAdd}
	if got := drainOps(t, tr); !opsEqual(got, want) {
		t.Errorf("ops = %v, want %v", got, want)
	}
}

func TestRVVImportLMULErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
	}{
		{"misaligned", "vsetvli 256 m2\nvfadd.vv v1, v2, v4", "not aligned"},
		{"avl-too-big", "vsetvli 2000 m2\nvfadd.vv v0, v2, v4", "exceeds LMUL"},
		{"bad-lmul", "vsetvli 128 m3", "bad LMUL"},
		{"bad-ew", "vsetvli 128 e32 m2", "element width"},
		{"no-avl", "vsetvli m2", "missing the requested vector length"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := "format: mtvrvv/1\n" + tc.in + "\n"
			_, err := ImportRVV(strings.NewReader(in))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRVVImportMasked(t *testing.T) {
	tr := mustImport(t, `format: mtvrvv/1
vsetvl a1, 64
vfadd.vv v1, v2, v3, v0.t
vse64.v v1, a2, v0.t @0x1000
`)
	// Masked arithmetic merges after the op; masked stores predicate the
	// data register before the store reads it.
	want := []isa.Op{isa.OpSetVL, isa.OpVAdd, isa.OpVMerge, isa.OpVMerge, isa.OpVStore}
	if got := drainOps(t, tr); !opsEqual(got, want) {
		t.Errorf("ops = %v, want %v", got, want)
	}
}

func TestRVVImportMaskedLMUL(t *testing.T) {
	// Grouped masked op: each part carries its own merge.
	tr := mustImport(t, `format: mtvrvv/1
vlen: 128
vsetvli 256 m2
vfmul.vv v0, v2, v4, v6.t
`)
	want := []isa.Op{isa.OpVMul, isa.OpVMerge, isa.OpVMul, isa.OpVMerge}
	if got := drainOps(t, tr); !opsEqual(got, want) {
		t.Errorf("ops = %v, want %v", got, want)
	}
}

func TestRVVImportStrideTracking(t *testing.T) {
	tr := mustImport(t, `format: mtvrvv/1
vle64.v v0, a2 @0x1000
vlse64.v v1, a2, 1024 @0x2000
vlse64.v v2, a2, 1024 @0x3000
vse64.v v0, a3 @0x4000
`)
	// vsetvs instructions appear exactly when the stride in force
	// changes: 8 (initial, no-op) -> 1024 -> 1024 (no-op) -> 8.
	want := []isa.Op{isa.OpVLoad, isa.OpSetVS, isa.OpVLoad, isa.OpVLoad, isa.OpSetVS, isa.OpVStore}
	if got := drainOps(t, tr); !opsEqual(got, want) {
		t.Errorf("ops = %v, want %v", got, want)
	}
	if len(tr.Strides) != 2 || tr.Strides[0] != 1024 || tr.Strides[1] != 8 {
		t.Errorf("strides = %v, want [1024 8]", tr.Strides)
	}
}

func TestRVVImportBinaryBridge(t *testing.T) {
	// An imported text trace encodes to .mtvt and back like any other.
	tr := mustImport(t, exportString(t, sampleTrace(4)))
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got.MaxVL = tr.MaxVL // binary format carries no VL cap
	sameReplay(t, tr, got)
}

func FuzzTraceImport(f *testing.F) {
	var buf bytes.Buffer
	if err := ExportRVV(&buf, allOpsTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("format: mtvrvv/1\nname: g\nvlen: 16\nvsetvli 32 m2\nvfadd.vv v0, v2, v4, v6.t\nvlse64.v v0, a2, 24 @0x80\n")
	f.Add("format: mtvrvv/2\nnop\n")
	f.Add("format: mtvrvv/1\nvsetvl a1, 64\nvluxei64.v v1, v2, a3 @0xffffffffffffffff\n")
	f.Add("vle64.v v0, a2 @0x10\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ImportRVV(strings.NewReader(s))
		if err != nil {
			return // rejected input: fine, as long as we didn't panic
		}
		// Anything accepted must replay, export canonically, and
		// re-import to the identical dynamic stream.
		var out bytes.Buffer
		if err := ExportRVV(&out, tr); err != nil {
			t.Fatalf("accepted trace does not export: %v", err)
		}
		tr2, err := ImportRVV(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("canonical export does not re-import: %v\n%s", err, out.String())
		}
		sameReplay(t, tr, tr2)
	})
}
